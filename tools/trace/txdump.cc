// txdump: reconstruct one transaction's cross-machine timeline from a
// flight-recorder postmortem.
//
//   txdump <postmortem-file> <txid>
//
// The postmortem is what chaos_repro dumps as chaos-seed-N.postmortem (or
// what --flight-out= appends after a run); the txid is either the logged
// form "tx<c,m,t,l>" or the bare "c,m,t,l". Prints the transaction's records
// in causal (time, machine, seq) order with per-record deltas, then a
// per-machine summary. Exits 1 when the postmortem has no record of the tx.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"

namespace {

using farm::flight::DrainedRecord;
using farm::flight::FormatRecord;
using farm::flight::ParseRecordLine;
using farm::flight::Record;

// Accepts "tx<c,m,t,l>" (the logged form) or bare "c,m,t,l".
bool ParseTxId(const std::string& text, uint64_t* config, uint32_t* machine,
               uint32_t* thread, uint64_t* local) {
  std::string body = text;
  if (body.rfind("tx<", 0) == 0 && body.size() > 4 && body.back() == '>') {
    body = body.substr(3, body.size() - 4);
  }
  unsigned long long c = 0;
  unsigned long long l = 0;
  unsigned m = 0;
  unsigned t = 0;
  char tail = 0;
  if (std::sscanf(body.c_str(), "%llu,%u,%u,%llu%c", &c, &m, &t, &l, &tail) != 4) {
    return false;
  }
  *config = c;
  *machine = m;
  *thread = t;
  *local = l;
  return true;
}

bool Matches(const Record& r, uint64_t config, uint32_t machine, uint32_t thread,
             uint64_t local) {
  return (r.flags & Record::kHasTx) != 0 &&
         r.tx_config == static_cast<uint32_t>(config) && r.tx_machine == machine &&
         r.tx_thread == thread && r.tx_local == local;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: txdump <postmortem-file> <txid>\n");
    std::fprintf(stderr, "  txid: tx<c,m,t,l> or c,m,t,l\n");
    return 2;
  }
  uint64_t config = 0;
  uint64_t local = 0;
  uint32_t machine = 0;
  uint32_t thread = 0;
  if (!ParseTxId(argv[2], &config, &machine, &thread, &local)) {
    std::fprintf(stderr, "txdump: cannot parse txid '%s'\n", argv[2]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "txdump: cannot open %s\n", argv[1]);
    return 2;
  }

  std::vector<DrainedRecord> hits;
  std::map<uint32_t, int> per_machine;
  std::string line;
  while (std::getline(in, line)) {
    DrainedRecord dr;
    if (!ParseRecordLine(line, &dr)) {
      continue;  // header / ring-summary lines
    }
    if (Matches(dr.rec, config, machine, thread, local)) {
      hits.push_back(dr);
      per_machine[dr.machine]++;
    }
  }

  if (hits.empty()) {
    std::fprintf(stderr, "txdump: no records for tx<%" PRIu64 ",%u,%u,%" PRIu64 "> in %s\n",
                 config, machine, thread, local, argv[1]);
    return 1;
  }

  // Postmortems are already merge-sorted, but be robust to concatenated
  // sections from --flight-out= appends.
  std::stable_sort(hits.begin(), hits.end(),
                   [](const DrainedRecord& a, const DrainedRecord& b) {
                     if (a.rec.time_ns != b.rec.time_ns) {
                       return a.rec.time_ns < b.rec.time_ns;
                     }
                     if (a.machine != b.machine) {
                       return a.machine < b.machine;
                     }
                     return a.seq < b.seq;
                   });

  std::printf("tx<%" PRIu64 ",%u,%u,%" PRIu64 ">: %zu records across %zu machines\n",
              config, machine, thread, local, hits.size(), per_machine.size());
  uint64_t prev = hits.front().rec.time_ns;
  for (const DrainedRecord& dr : hits) {
    std::printf("  +%8" PRIu64 "ns  %s\n", dr.rec.time_ns - prev, FormatRecord(dr).c_str());
    prev = dr.rec.time_ns;
  }
  std::printf("machines:");
  for (const auto& [m, n] : per_machine) {
    std::printf(" m%u(%d)", m, n);
  }
  std::printf("\n");
  return 0;
}
