#include "tools/farmlint/rules.h"

#include <algorithm>
#include <array>
#include <string_view>
#include <tuple>

#include "tools/farmlint/analyzer.h"
#include "tools/farmlint/diag.h"

namespace farmlint {
namespace {

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

constexpr std::array<std::string_view, 8> kAssocTypes = {
    "map",           "multimap",      "set",           "multiset",
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

// Identifiers that read host wall-clock or monotonic time. Any of these in
// simulator/protocol/bench code breaks same-seed reproducibility.
constexpr std::array<std::string_view, 13> kWallClockIdents = {
    "system_clock", "steady_clock",  "high_resolution_clock", "gettimeofday",
    "clock_gettime", "localtime",    "localtime_r",           "gmtime",
    "gmtime_r",      "mktime",       "strftime",              "timespec_get",
    "ftime"};

// Nondeterministically-seeded or global-state RNGs; all randomness must come
// from the seeded Pcg32 in src/common/rand.h.
constexpr std::array<std::string_view, 10> kRandIdents = {
    "random_device", "mt19937",     "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b", "random_shuffle"};

// libc RNG entry points, matched only in call position (`rand(`).
constexpr std::array<std::string_view, 8> kRandCalls = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "srand48", "srandom", "random"};

// Wall-clock libc entry points, matched only in call position.
constexpr std::array<std::string_view, 2> kTimeCalls = {"time", "clock"};

template <typename Arr>
bool Contains(const Arr& arr, std::string_view s) {
  return std::find(arr.begin(), arr.end(), s) != arr.end();
}

const std::vector<RuleInfo> kRules = {
    {"wall-clock", true,
     "host wall-clock/monotonic time reads; use the simulated clock (src/sim/time.h)"},
    {"raw-rand", true,
     "non-seeded or global-state randomness; use farm::Pcg32 (src/common/rand.h)"},
    {"unordered-iter", true,
     "iteration over an unordered container; hash order can leak into message/"
     "schedule/stats order"},
    {"unordered-decl", false,
     "unordered container declared in a protocol-order-sensitive directory; "
     "justify with an allow comment or use an ordered container"},
    {"chaos-rng", false,
     "Pcg32 seeded with a literal in chaos code; all chaos randomness must "
     "derive from the plan seed or a dumped schedule cannot replay it"},
    {"ptr-key", true,
     "container ordered/keyed by pointer value; addresses differ across runs (ASLR, "
     "allocation order)"},
    {"float-key", true,
     "float/double map/set key; rounding makes order and equality fragile"},
    {"include-guard", true, "header must start with an include guard or #pragma once"},
    {"using-namespace-header", true,
     "using-directive in a header leaks names into every includer"},
    {"recorder-pod", true,
     "flight-recorder records (structs named *Record in files using "
     "src/obs/flight_recorder.h) must stay trivially copyable and pointer-free"},
    {"await-hazard", true,
     "pointer/reference/iterator from an unstable accessor (Placement(), map "
     "find()/at()/operator[], begin()/end()) used across a co_await; "
     "re-resolve after resume or mark the accessor '// farmlint: stable'"},
    {"lock-across-await", true,
     "RAII lock guard held across a co_await; the lock stays taken while the "
     "coroutine is parked"},
    {"iterator-invalidate", true,
     "container mutated while an iterator/reference into it is live in the "
     "same scope and used afterwards"},
    {"bad-allow", true,
     "suppression hygiene: allow(<rule>) naming an unknown rule, or a "
     "'farmlint: stable' annotation that binds to no accessor declaration"},
};

// True when sig[i] is used as a function call target `name(` that is not a
// member access (`x.time()`) and not qualified by a non-std namespace.
bool IsFreeOrStdCall(const std::vector<const Token*>& sig, size_t i) {
  if (i + 1 >= sig.size() || !IsPunct(sig[i + 1], "(")) {
    return false;
  }
  if (i >= 1) {
    const Token* prev = sig[i - 1];
    if (IsPunct(prev, ".") || IsPunct(prev, "->")) {
      return false;
    }
    if (prev->kind == TokKind::kIdentifier) {
      // `uint64_t time()` declares a member named time; `return time(0)`
      // calls the libc function.
      static constexpr std::array<std::string_view, 6> kStmtKeywords = {
          "return", "co_return", "co_await", "co_yield", "else", "case"};
      return Contains(kStmtKeywords, prev->text);
    }
    if (IsPunct(prev, "::")) {
      // Qualified: only std:: (or global ::) counts as the libc/std entity.
      if (i >= 2 && sig[i - 2]->kind == TokKind::kIdentifier) {
        return sig[i - 2]->text == "std";
      }
      return true;  // `::time(...)`
    }
  }
  return true;
}

// Starting at sig[open] == "<", returns the index just past the matching ">"
// (treating ">>" as two closers), or 0 if unbalanced/too long. Fills
// `first_arg` with the tokens of the first template argument.
size_t SkipTemplateArgs(const std::vector<const Token*>& sig, size_t open,
                        std::vector<const Token*>* first_arg) {
  int depth = 0;
  bool in_first = true;
  constexpr size_t kMaxSpan = 512;
  for (size_t i = open; i < sig.size() && i < open + kMaxSpan; ++i) {
    const Token* t = sig[i];
    if (IsPunct(t, "<")) {
      depth++;
      if (i != open && in_first && first_arg != nullptr) {
        first_arg->push_back(t);
      }
      continue;
    }
    if (IsPunct(t, ">") || IsPunct(t, ">>")) {
      depth -= IsPunct(t, ">>") ? 2 : 1;
      if (depth <= 0) {
        return i + 1;
      }
      if (in_first && first_arg != nullptr) {
        first_arg->push_back(t);
      }
      continue;
    }
    // Abort on tokens that cannot appear in a template argument list: this
    // `<` was a comparison, not a template opener.
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) {
      return 0;
    }
    if (depth == 1 && IsPunct(t, ",")) {
      in_first = false;
      continue;
    }
    if (i != open && in_first && first_arg != nullptr) {
      first_arg->push_back(t);
    }
  }
  return 0;
}

void CheckWallClockAndRand(const FileInput& file, const std::vector<const Token*>& sig,
                           Reporter& rep) {
  bool rand_exempt = file.basename == "rand.h" || file.basename == "rand.cc";
  for (size_t i = 0; i < sig.size(); ++i) {
    const Token* t = sig[i];
    if (t->kind != TokKind::kIdentifier || t->in_directive) {
      continue;
    }
    if (Contains(kWallClockIdents, t->text)) {
      rep.Report("wall-clock", t->line, t->col,
                 "'" + t->text + "' reads host time; use SimTime/Simulator::Now()");
      continue;
    }
    if (Contains(kTimeCalls, t->text) && IsFreeOrStdCall(sig, i)) {
      rep.Report("wall-clock", t->line, t->col,
                 "call to '" + t->text + "()' reads host time; use SimTime/Simulator::Now()");
      continue;
    }
    if (rand_exempt) {
      continue;
    }
    if (Contains(kRandIdents, t->text)) {
      rep.Report("raw-rand", t->line, t->col,
                 "'" + t->text + "' is not seed-reproducible; use farm::Pcg32");
      continue;
    }
    if (Contains(kRandCalls, t->text) && IsFreeOrStdCall(sig, i)) {
      rep.Report("raw-rand", t->line, t->col,
                 "call to '" + t->text + "()' uses hidden global RNG state; use farm::Pcg32");
    }
  }
}

void CheckUnorderedIter(const std::vector<const Token*>& sig,
                        const std::set<std::string>& unordered_names, Reporter& rep) {
  for (size_t i = 0; i < sig.size(); ++i) {
    const Token* t = sig[i];
    // Range-for whose range expression mentions a known unordered name.
    if (IsIdent(t, "for") && i + 1 < sig.size() && IsPunct(sig[i + 1], "(")) {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < sig.size() && j < i + 256; ++j) {
        if (IsPunct(sig[j], "(")) {
          depth++;
        } else if (IsPunct(sig[j], ")")) {
          depth--;
          if (depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && IsPunct(sig[j], ":") && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (sig[j]->kind == TokKind::kIdentifier &&
              unordered_names.count(sig[j]->text) != 0) {
            rep.Report("unordered-iter", t->line, t->col,
                       "range-for over unordered container '" + sig[j]->text +
                           "'; hash order is not deterministic");
            break;
          }
        }
      }
      continue;
    }
    // name.begin() / name->cbegin() etc. on a known unordered name.
    if (t->kind == TokKind::kIdentifier && unordered_names.count(t->text) != 0 &&
        i + 3 < sig.size() && (IsPunct(sig[i + 1], ".") || IsPunct(sig[i + 1], "->"))) {
      const std::string& m = sig[i + 2]->text;
      if ((m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") &&
          IsPunct(sig[i + 3], "(")) {
        rep.Report("unordered-iter", t->line, t->col,
                   "iterator walk of unordered container '" + t->text +
                       "'; hash order is not deterministic");
      }
    }
  }
}

void CheckUnorderedDecl(const std::vector<const Token*>& sig, Reporter& rep) {
  for (const Token* t : sig) {
    if (t->kind == TokKind::kIdentifier && !t->in_directive &&
        Contains(kUnorderedTypes, t->text)) {
      rep.Report("unordered-decl", t->line, t->col,
                 "'" + t->text +
                     "' in an order-sensitive directory; use an ordered container or "
                     "justify with an allow comment");
    }
  }
}

// Chaos schedules must be a pure function of (config, seed): every Pcg32 in
// chaos code has to be seeded from the plan seed (a variable or a derivation
// like HashCombine(seed, ...)), never from a hard-coded literal -- a literal
// seed is invisible to the dumped schedule and breaks replay.
void CheckChaosRng(const std::vector<const Token*>& sig, Reporter& rep) {
  for (size_t i = 0; i < sig.size(); ++i) {
    const Token* t = sig[i];
    if (t->kind != TokKind::kIdentifier || t->in_directive || t->text != "Pcg32") {
      continue;
    }
    // `Pcg32(...)` temporary or `Pcg32 name(...)` / `Pcg32 name{...}` decl.
    size_t open = i + 1;
    if (open < sig.size() && sig[open]->kind == TokKind::kIdentifier) {
      open++;
    }
    if (open >= sig.size() ||
        (!IsPunct(sig[open], "(") && !IsPunct(sig[open], "{"))) {
      continue;
    }
    if (open + 1 < sig.size() && sig[open + 1]->kind == TokKind::kNumber) {
      rep.Report("chaos-rng", t->line, t->col,
                 "Pcg32 seeded with a literal; derive the seed from the chaos "
                 "plan seed so dumped schedules replay identically");
    }
  }
}

void CheckKeyTypes(const std::vector<const Token*>& sig, Reporter& rep) {
  for (size_t i = 0; i + 1 < sig.size(); ++i) {
    const Token* t = sig[i];
    if (t->kind != TokKind::kIdentifier || !Contains(kAssocTypes, t->text)) {
      continue;
    }
    // Require std:: qualification so plain identifiers named `set` or
    // comparisons like `map < n` cannot trip the template scan.
    if (i < 2 || !IsPunct(sig[i - 1], "::") || !IsIdent(sig[i - 2], "std")) {
      continue;
    }
    if (!IsPunct(sig[i + 1], "<")) {
      continue;
    }
    std::vector<const Token*> key;
    if (SkipTemplateArgs(sig, i + 1, &key) == 0 || key.empty()) {
      continue;
    }
    if (IsPunct(key.back(), "*")) {
      rep.Report("ptr-key", t->line, t->col,
                 "std::" + t->text +
                     " keyed by pointer; pointer order differs across runs");
      continue;
    }
    std::vector<const Token*> stripped;
    for (const Token* k : key) {
      if (!IsIdent(k, "const")) {
        stripped.push_back(k);
      }
    }
    if (stripped.size() == 1 &&
        (IsIdent(stripped[0], "float") || IsIdent(stripped[0], "double"))) {
      rep.Report("float-key", t->line, t->col,
                 "std::" + t->text + " keyed by " + stripped[0]->text +
                     "; floating-point keys make ordering fragile");
    }
  }
}

// Flight-recorder records are retained in per-machine rings long past the
// lifetime of everything they describe, so any struct named `*Record` in a
// file that defines or includes the recorder must stay a flat POD: no
// pointer or reference members, no owning containers, no virtuals.
constexpr std::array<std::string_view, 10> kNonPodMemberTypes = {
    "string", "vector",     "unique_ptr", "shared_ptr", "weak_ptr",
    "function", "map",      "set",        "deque",      "list"};

bool UsesFlightRecorder(const FileInput& file) {
  if (file.basename == "flight_recorder.h" || file.basename == "flight_recorder.cc") {
    return true;
  }
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::kString &&
        t.text.find("flight_recorder.h") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckRecorderPod(const FileInput& file, const std::vector<const Token*>& sig,
                      Reporter& rep) {
  if (!rep.RuleEnabled("recorder-pod") || !UsesFlightRecorder(file)) {
    return;
  }
  for (size_t i = 0; i + 2 < sig.size(); ++i) {
    if (!IsIdent(sig[i], "struct") || sig[i + 1]->kind != TokKind::kIdentifier) {
      continue;
    }
    const std::string& name = sig[i + 1]->text;
    constexpr std::string_view kSuffix = "Record";
    if (name.size() < kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
      continue;
    }
    // Find the body (skip base clauses; `struct FooRecord;` forward decls
    // have none).
    size_t open = i + 2;
    while (open < sig.size() && !IsPunct(sig[open], "{") && !IsPunct(sig[open], ";")) {
      open++;
    }
    if (open >= sig.size() || IsPunct(sig[open], ";")) {
      continue;
    }
    // Walk the body one declaration at a time. A declaration ends at a `;`
    // at struct depth or when a nested brace group closes back to struct
    // depth (method bodies, brace initializers).
    auto check_stmt = [&](size_t b, size_t e) {
      bool has_paren = false;
      for (size_t k = b; k < e; ++k) {
        if (IsPunct(sig[k], "(")) {
          has_paren = true;
          break;
        }
      }
      for (size_t k = b; k < e; ++k) {
        const Token* t = sig[k];
        if (IsIdent(t, "virtual")) {
          rep.Report("recorder-pod", t->line, t->col,
                     "'" + name + "' has a virtual member; records must stay "
                     "trivially copyable");
          return;
        }
        if (!has_paren && t->kind == TokKind::kIdentifier &&
            Contains(kNonPodMemberTypes, t->text)) {
          rep.Report("recorder-pod", t->line, t->col,
                     "'" + name + "' member uses '" + t->text +
                         "'; records must hold only flat scalar data");
          return;
        }
        if (!has_paren &&
            (IsPunct(t, "*") || IsPunct(t, "&") || IsPunct(t, "&&"))) {
          rep.Report("recorder-pod", t->line, t->col,
                     "'" + name + "' has a pointer/reference member; records "
                     "outlive everything they point at");
          return;
        }
      }
    };
    int depth = 1;
    size_t stmt_begin = open + 1;
    for (size_t j = open + 1; j < sig.size() && depth > 0; ++j) {
      if (IsPunct(sig[j], "{")) {
        depth++;
      } else if (IsPunct(sig[j], "}")) {
        depth--;
      }
      if (depth == 0 || (depth == 1 && (IsPunct(sig[j], ";") || IsPunct(sig[j], "}")))) {
        check_stmt(stmt_begin, j);
        stmt_begin = j + 1;
      }
    }
  }
}

void CheckHeaderHygiene(const FileInput& file, const std::vector<const Token*>& sig,
                        Reporter& rep) {
  if (!file.is_header) {
    return;
  }
  // Include guard: the first directives must be `#pragma once` or
  // `#ifndef G` / `#define G`.
  bool guarded = false;
  for (size_t i = 0; i + 2 < sig.size(); ++i) {
    if (!IsPunct(sig[i], "#")) {
      if (sig[i]->in_directive) {
        continue;
      }
      break;  // first non-preprocessor token before any guard: unguarded
    }
    if (IsIdent(sig[i + 1], "pragma") && IsIdent(sig[i + 2], "once")) {
      guarded = true;
      break;
    }
    if (IsIdent(sig[i + 1], "ifndef") && i + 5 < sig.size() &&
        sig[i + 2]->kind == TokKind::kIdentifier && IsPunct(sig[i + 3], "#") &&
        IsIdent(sig[i + 4], "define") && sig[i + 5]->text == sig[i + 2]->text) {
      guarded = true;
      break;
    }
    break;  // some other directive (e.g. #include) leads the file
  }
  if (!guarded && !sig.empty()) {
    rep.Report("include-guard", 1, 1,
               "header lacks a leading include guard (#ifndef/#define pair) or #pragma once");
  }

  for (size_t i = 0; i + 1 < sig.size(); ++i) {
    if (IsIdent(sig[i], "using") && IsIdent(sig[i + 1], "namespace")) {
      rep.Report("using-namespace-header", sig[i]->line, sig[i]->col,
                 "using-directive in a header pollutes every includer's namespace");
    }
  }
}

// Suppression hygiene: an allow() naming an unknown rule silently suppresses
// nothing and usually means a typo left a real diagnostic unguarded.
void CheckAllowHygiene(const FileInput& file, Reporter& rep) {
  for (const AllowName& a : ParseAllowNames(file.tokens)) {
    if (!IsKnownRule(a.rule)) {
      rep.Report("bad-allow", a.line, a.col,
                 "allow() names unknown rule '" + a.rule +
                     "'; see farmlint --list-rules");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& AllRules() { return kRules; }

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& r : kRules) {
    if (name == r.name) {
      return true;
    }
  }
  return false;
}

void Linter::CollectDeclarations(const FileInput& file) {
  std::vector<const Token*> sig = Significant(file.tokens);
  for (size_t i = 0; i < sig.size(); ++i) {
    const Token* t = sig[i];
    if (t->kind != TokKind::kIdentifier || t->in_directive ||
        !Contains(kUnorderedTypes, t->text)) {
      continue;
    }
    if (i + 1 >= sig.size() || !IsPunct(sig[i + 1], "<")) {
      continue;
    }
    size_t after = SkipTemplateArgs(sig, i + 1, nullptr);
    if (after == 0) {
      continue;
    }
    // Skip declarator decorations, then expect `name` followed by a
    // declaration terminator. This intentionally misses aliases; it only
    // needs to catch variable and member declarations.
    while (after < sig.size() &&
           (IsPunct(sig[after], "&") || IsPunct(sig[after], "*") ||
            IsPunct(sig[after], "&&") || IsIdent(sig[after], "const"))) {
      after++;
    }
    if (after + 1 >= sig.size() || sig[after]->kind != TokKind::kIdentifier) {
      continue;
    }
    const Token* term = sig[after + 1];
    if (IsPunct(term, ";") || IsPunct(term, "=") || IsPunct(term, "{") ||
        IsPunct(term, ",") || IsPunct(term, ")")) {
      const std::string& name = sig[after]->text;
      if (name.back() == '_') {
        unordered_names_.insert(name);  // member: visible repo-wide
      } else {
        local_unordered_names_[file.path].insert(name);
      }
    }
  }
  // Annotation index: accessors marked `// farmlint: stable` in any input
  // file are exempt from await-hazard provenance everywhere.
  std::set<std::string> stable = CollectStableAnnotations(file, nullptr);
  stable_names_.insert(stable.begin(), stable.end());
}

std::vector<Diagnostic> Linter::Lint(const FileInput& file,
                                     const FileConfig& config) const {
  std::vector<Diagnostic> out;
  Reporter rep(file.path, file.tokens, config.rules, out);
  std::vector<const Token*> sig = Significant(file.tokens);
  CheckWallClockAndRand(file, sig, rep);
  std::set<std::string> unordered = unordered_names_;
  auto locals = local_unordered_names_.find(file.path);
  if (locals != local_unordered_names_.end()) {
    unordered.insert(locals->second.begin(), locals->second.end());
  }
  CheckUnorderedIter(sig, unordered, rep);
  CheckUnorderedDecl(sig, rep);
  CheckChaosRng(sig, rep);
  CheckKeyTypes(sig, rep);
  CheckRecorderPod(file, sig, rep);
  CheckHeaderHygiene(file, sig, rep);
  CheckAllowHygiene(file, rep);
  if (rep.RuleEnabled("bad-allow")) {
    CollectStableAnnotations(file, &rep);  // validation only; index is global
  }
  AnalyzeAwaitSafety(file, config.await, stable_names_, rep);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.line, a.rule, a.col) < std::tie(b.line, b.rule, b.col);
  });
  // De-duplicate repeated reports of one rule on one line (e.g. a macro that
  // expands the same hazard several times): keep the first (smallest column).
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return a.line == b.line && a.rule == b.rule;
                        }),
            out.end());
  return out;
}

}  // namespace farmlint
