#include "tools/farmlint/lexer.h"

#include <cctype>

namespace farmlint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  int line() const { return line_; }
  int col() const { return col_; }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from) const { return src_.substr(from, pos_ - from); }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      line_++;
      col_ = 1;
    } else {
      col_++;
    }
    return c;
  }

  // Consumes a backslash-newline splice if one starts here.
  bool ConsumeSplice() {
    if (Peek() == '\\' && (Peek(1) == '\n' || (Peek(1) == '\r' && Peek(2) == '\n'))) {
      Advance();
      while (Peek() == '\r') {
        Advance();
      }
      Advance();
      return true;
    }
    return false;
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> out;
  Cursor c(source);
  bool at_line_start = true;
  bool in_directive = false;
  bool directive_is_include = false;

  auto push = [&](TokKind kind, std::string text, int line, int col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    t.at_line_start = at_line_start;
    t.in_directive = in_directive;
    at_line_start = false;
    out.push_back(std::move(t));
  };

  while (!c.AtEnd()) {
    if (c.ConsumeSplice()) {
      continue;  // a spliced line does not end a directive
    }
    char ch = c.Peek();
    if (ch == '\n') {
      c.Advance();
      at_line_start = true;
      in_directive = false;
      directive_is_include = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.Advance();
      continue;
    }

    int line = c.line();
    int col = c.col();
    size_t start = c.pos();

    // Comments.
    if (ch == '/' && c.Peek(1) == '/') {
      while (!c.AtEnd() && c.Peek() != '\n') {
        if (!c.ConsumeSplice()) {
          c.Advance();
        }
      }
      push(TokKind::kComment, std::string(c.Slice(start)), line, col);
      continue;
    }
    if (ch == '/' && c.Peek(1) == '*') {
      c.Advance();
      c.Advance();
      while (!c.AtEnd() && !(c.Peek() == '*' && c.Peek(1) == '/')) {
        c.Advance();
      }
      if (!c.AtEnd()) {
        c.Advance();
        c.Advance();
      }
      push(TokKind::kComment, std::string(c.Slice(start)), line, col);
      continue;
    }

    // Preprocessor directive start.
    if (ch == '#' && at_line_start) {
      c.Advance();
      push(TokKind::kPunct, "#", line, col);
      in_directive = true;
      // Peek the directive name to special-case #include's <header>.
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (ch == 'R' && c.Peek(1) == '"') {
      c.Advance();  // R
      c.Advance();  // "
      std::string delim;
      while (!c.AtEnd() && c.Peek() != '(') {
        delim += c.Advance();
      }
      if (!c.AtEnd()) {
        c.Advance();  // (
      }
      std::string closer = ")" + delim + "\"";
      while (!c.AtEnd()) {
        if (c.Peek() == ')') {
          bool matched = true;
          for (size_t i = 0; i < closer.size(); ++i) {
            if (c.Peek(i) != closer[i]) {
              matched = false;
              break;
            }
          }
          if (matched) {
            for (size_t i = 0; i < closer.size(); ++i) {
              c.Advance();
            }
            break;
          }
        }
        c.Advance();
      }
      push(TokKind::kString, std::string(c.Slice(start)), line, col);
      continue;
    }

    // String / char literals.
    if (ch == '"' || ch == '\'') {
      char quote = c.Advance();
      while (!c.AtEnd() && c.Peek() != quote && c.Peek() != '\n') {
        if (c.Peek() == '\\') {
          c.Advance();
          if (!c.AtEnd()) {
            c.Advance();
          }
        } else {
          c.Advance();
        }
      }
      if (!c.AtEnd() && c.Peek() == quote) {
        c.Advance();
      }
      push(TokKind::kString, std::string(c.Slice(start)), line, col);
      continue;
    }

    // #include <header>: lex the angle-bracket name as one string token.
    if (ch == '<' && directive_is_include) {
      while (!c.AtEnd() && c.Peek() != '>' && c.Peek() != '\n') {
        c.Advance();
      }
      if (!c.AtEnd() && c.Peek() == '>') {
        c.Advance();
      }
      push(TokKind::kString, std::string(c.Slice(start)), line, col);
      directive_is_include = false;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(ch)) {
      while (!c.AtEnd() && IsIdentCont(c.Peek())) {
        c.Advance();
      }
      std::string text(c.Slice(start));
      if (in_directive && out.size() >= 1 && out.back().text == "#" && text == "include") {
        directive_is_include = true;
      }
      push(TokKind::kIdentifier, std::move(text), line, col);
      continue;
    }

    // Number (pp-number approximation; exact value is irrelevant to rules).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.Peek(1))))) {
      while (!c.AtEnd() &&
             (IsIdentCont(c.Peek()) || c.Peek() == '.' || c.Peek() == '\'')) {
        c.Advance();
      }
      push(TokKind::kNumber, std::string(c.Slice(start)), line, col);
      continue;
    }

    // Punctuation: the multi-character ones rules care about, else one char.
    static constexpr std::string_view kTwoChar[] = {"::", "->", "<<", ">>", "<=",
                                                    ">=", "==", "!=", "&&", "||"};
    std::string text(1, c.Advance());
    for (std::string_view two : kTwoChar) {
      if (text[0] == two[0] && c.Peek() == two[1]) {
        text += c.Advance();
        break;
      }
    }
    push(TokKind::kPunct, std::move(text), line, col);
  }

  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = c.line();
  eof.col = c.col();
  out.push_back(eof);
  return out;
}

}  // namespace farmlint
