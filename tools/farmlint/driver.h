// farmlint driver: file discovery, per-directory `.farmlint` config
// resolution, and the two-pass lint run (collect declarations, then lint).
#ifndef TOOLS_FARMLINT_DRIVER_H_
#define TOOLS_FARMLINT_DRIVER_H_

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "tools/farmlint/rules.h"

namespace farmlint {

struct DriverOptions {
  // Directory the per-directory config walk stops at (usually the repo
  // root). Config files between root and each source file apply root-first.
  std::string root = ".";
  // Files or directories (searched recursively for C++ sources).
  std::vector<std::string> paths;
};

// Expands `paths` into the list of lintable files (sorted, deduplicated).
std::vector<std::string> DiscoverFiles(const std::vector<std::string>& paths);

// Effective rule set for `file`: rule defaults, then `enable`/`disable`
// lines from every `.farmlint` between `root` and the file's directory,
// applied outermost first.
std::set<std::string> ResolveEnabledRules(const std::string& root, const std::string& file);

// Reads and tokenizes one file. Returns false if unreadable.
bool LoadFile(const std::string& path, FileInput* out);

// Full run: discover, collect, lint, print diagnostics to `out`.
// Returns the number of diagnostics (0 == clean).
int RunFarmlint(const DriverOptions& options, std::ostream& out);

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_DRIVER_H_
