// farmlint driver: file discovery (directory glob or compile_commands.json),
// per-directory `.farmlint` config resolution, and the two-pass lint run
// (collect declarations/annotations, then lint).
#ifndef TOOLS_FARMLINT_DRIVER_H_
#define TOOLS_FARMLINT_DRIVER_H_

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "tools/farmlint/rules.h"

namespace farmlint {

struct DriverOptions {
  // Directory the per-directory config walk stops at (usually the repo
  // root). Config files between root and each source file apply root-first.
  std::string root = ".";
  // Files or directories (searched recursively for C++ sources).
  std::vector<std::string> paths;
  // Optional path to a compile_commands.json. When set, the translation-unit
  // list comes from the build graph (every compiled TU under `root` is
  // linted, so generated or newly added TUs cannot escape), and `paths` is
  // only globbed for headers, which a compilation database does not list.
  std::string compdb;
};

// Expands `paths` into the list of lintable files (sorted, deduplicated).
std::vector<std::string> DiscoverFiles(const std::vector<std::string>& paths);

// Parses a compile_commands.json and returns the normalized "file" entries
// that exist on disk and lie under `root`. Returns false (and sets *error)
// if the database cannot be read or contains no entries.
bool FilesFromCompDb(const std::string& compdb_path, const std::string& root,
                     std::vector<std::string>* out, std::string* error);

// Effective configuration for `file`: rule defaults and the await-safety
// accessor/guard lists, overlaid with `enable`/`disable`/`unstable`/`stable`/
// `guard` lines from every `.farmlint` between `root` and the file's
// directory, applied outermost first.
FileConfig ResolveFileConfig(const std::string& root, const std::string& file);

// Reads and tokenizes one file. Returns false if unreadable.
bool LoadFile(const std::string& path, FileInput* out);

// Full run: discover, collect, lint, print diagnostics to `out`.
// Returns the number of diagnostics (0 == clean).
int RunFarmlint(const DriverOptions& options, std::ostream& out);

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_DRIVER_H_
