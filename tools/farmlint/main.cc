// farmlint: determinism/protocol lint for this repository.
//
// Usage: farmlint [--root <dir>] [--compdb <json>] [--list-rules] <file-or-dir>...
//
// Exit status: 0 when clean, 1 when any diagnostic fired, 2 on usage error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tools/farmlint/driver.h"

int main(int argc, char** argv) {
  farmlint::DriverOptions options;
  bool list_rules = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "farmlint: --root needs a directory\n";
        return 2;
      }
      options.root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(std::strlen("--root="));
    } else if (arg == "--compdb") {
      if (i + 1 >= argc) {
        std::cerr << "farmlint: --compdb needs a compile_commands.json path\n";
        return 2;
      }
      options.compdb = argv[++i];
    } else if (arg.rfind("--compdb=", 0) == 0) {
      options.compdb = arg.substr(std::strlen("--compdb="));
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: farmlint [--root <dir>] [--compdb <json>] [--list-rules]"
                << " <file-or-dir>...\n"
                << "With --compdb, translation units come from the compilation\n"
                << "database (every TU under --root) and the positional paths are\n"
                << "only globbed for headers.\n"
                << "Suppress a finding with: // farmlint: allow(<rule>): why\n"
                << "Per-directory config: .farmlint files with `enable <rule>` /\n"
                << "`disable <rule>` / `unstable <accessor> [yield]` / `stable\n"
                << "<accessor>` / `guard <Type>` lines, applied from --root downward.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "farmlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (list_rules) {
    for (const farmlint::RuleInfo& r : farmlint::AllRules()) {
      std::cout << r.name << (r.default_on ? "" : " (off by default)") << ": "
                << r.description << "\n";
    }
    return 0;
  }
  if (positional.empty()) {
    std::cerr << "farmlint: no files or directories given (try --help)\n";
    return 2;
  }
  options.paths = positional;
  int diagnostics = farmlint::RunFarmlint(options, std::cout);
  if (diagnostics > 0) {
    std::cout << "farmlint: " << diagnostics << " finding(s)\n";
    return 1;
  }
  return 0;
}
