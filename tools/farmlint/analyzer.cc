#include "tools/farmlint/analyzer.h"

#include <algorithm>
#include <array>
#include <string_view>

#include "tools/farmlint/rules.h"

namespace farmlint {
namespace {

template <typename Arr>
bool Contains(const Arr& arr, std::string_view s) {
  return std::find(arr.begin(), arr.end(), s) != arr.end();
}

// Starting at sig[open] == "<", returns the index just past the matching ">"
// (treating ">>" as two closers), or 0 if unbalanced/too long.
size_t SkipAngles(const std::vector<const Token*>& sig, size_t open) {
  int depth = 0;
  constexpr size_t kMaxSpan = 512;
  for (size_t i = open; i < sig.size() && i < open + kMaxSpan; ++i) {
    const Token* t = sig[i];
    if (IsPunct(t, "<")) {
      depth++;
    } else if (IsPunct(t, ">") || IsPunct(t, ">>")) {
      depth -= IsPunct(t, ">>") ? 2 : 1;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) {
      return 0;  // a comparison, not a template argument list
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Scope tree
// ---------------------------------------------------------------------------

enum class ScopeKind { kFile, kNamespace, kClass, kFunction, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kFile;
  int parent = -1;
  int function = -1;      // index of the innermost enclosing function scope
  size_t open = 0;        // sig index of the '{' (0 for the file scope)
  size_t close = 0;       // sig index of the matching '}' (sig.size() if none)
};

// Walks backwards from sig[open] == '{' to the start of the statement that
// introduced it: the token after the previous ';'/'{'/'}' at paren level 0.
// Walking out of an enclosing '(' also stops (for-header semicolons live at
// paren depth > 0 and must not terminate the walk early... they cannot:
// depth is counted from the '{', which is never inside those parens).
size_t StatementStart(const std::vector<const Token*>& sig, size_t open) {
  int pdepth = 0;
  size_t j = open;
  while (j > 0) {
    const Token* t = sig[j - 1];
    if (IsPunct(t, ")")) {
      pdepth++;
    } else if (IsPunct(t, "(")) {
      if (pdepth == 0) {
        break;  // exited an enclosing paren: statement starts here
      }
      pdepth--;
    } else if (pdepth == 0 &&
               (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}"))) {
      break;
    }
    j--;
  }
  return j;
}

constexpr std::array<std::string_view, 8> kControlKw = {
    "if", "for", "while", "switch", "catch", "do", "else", "try"};
constexpr std::array<std::string_view, 4> kClassKw = {"class", "struct", "union",
                                                     "enum"};
// Tokens that can trail a function signature before its body: cv/ref
// qualifiers, exception/virtual specifiers, and trailing-return-type tokens.
constexpr std::array<std::string_view, 7> kSigTrailerKw = {
    "const", "noexcept", "override", "final", "mutable", "requires", "throw"};

ScopeKind ClassifyBrace(const std::vector<const Token*>& sig, size_t open) {
  size_t start = StatementStart(sig, open);
  if (start == open) {
    return ScopeKind::kBlock;
  }
  const Token* first = sig[start];
  if (first->kind == TokKind::kIdentifier && Contains(kControlKw, first->text)) {
    return ScopeKind::kBlock;
  }
  if (IsIdent(first, "case") || IsIdent(first, "default")) {
    return ScopeKind::kBlock;
  }
  bool has_namespace = false;
  bool has_class_kw = false;
  bool has_assign = false;
  int pdepth = 0;
  for (size_t j = start; j < open; ++j) {
    const Token* t = sig[j];
    if (IsPunct(t, "(")) {
      pdepth++;
    } else if (IsPunct(t, ")")) {
      pdepth--;
    } else if (pdepth == 0) {
      if (IsIdent(t, "namespace")) {
        has_namespace = true;
      } else if (t->kind == TokKind::kIdentifier && Contains(kClassKw, t->text)) {
        has_class_kw = true;
      } else if (IsPunct(t, "=")) {
        has_assign = true;
      }
    }
  }
  if (has_namespace) {
    return ScopeKind::kNamespace;
  }
  // Strip signature trailers, then look for the ')' (function/lambda with
  // parameter list) or ']' (parameterless lambda) that precedes the body.
  size_t j = open;
  while (j > start) {
    const Token* t = sig[j - 1];
    bool skip = t->kind == TokKind::kIdentifier &&
                (Contains(kSigTrailerKw, t->text) || !Contains(kClassKw, t->text));
    skip = skip || t->kind == TokKind::kNumber || IsPunct(t, "::") ||
           IsPunct(t, "<") || IsPunct(t, ">") || IsPunct(t, ">>") ||
           IsPunct(t, "*") || IsPunct(t, "&") || IsPunct(t, "&&") ||
           IsPunct(t, "->");
    if (!skip) {
      break;
    }
    j--;
  }
  if (j > start && IsPunct(sig[j - 1], ")")) {
    return ScopeKind::kFunction;
  }
  if (j > start && IsPunct(sig[j - 1], "]") && !has_assign) {
    return ScopeKind::kFunction;  // `[captures] { ... }` lambda
  }
  if (j > start && IsPunct(sig[j - 1], "]") && has_assign) {
    // Could be `auto l = [&] {` (lambda) or `int a[] = {` (aggregate init):
    // a capture list's '[' is preceded by '=' or ',' or '(' or statement
    // start; an array declarator's '[' is preceded by the array name.
    for (size_t k = j - 1; k > start; --k) {
      if (IsPunct(sig[k - 1], "[")) {
        const Token* before = k >= 2 ? sig[k - 2] : nullptr;
        if (before == nullptr || before->kind != TokKind::kIdentifier) {
          return ScopeKind::kFunction;
        }
        break;
      }
    }
  }
  if (has_class_kw) {
    return ScopeKind::kClass;
  }
  return ScopeKind::kBlock;
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Decl {
  std::string name;
  size_t name_tok = 0;       // sig index of the declared name
  size_t init_begin = 0;     // token range of the initializer (0,0 if none)
  size_t init_end = 0;
  int scope = 0;             // scope the declaration lives in
  bool is_ptr = false;       // declared T* / auto*
  bool is_ref = false;       // declared T& / auto&
  bool is_auto = false;      // type is plain `auto`
  bool is_iterator_type = false;  // spelled ...::iterator / ...::const_iterator
  bool is_value = false;     // plain by-value object (candidate frame owner)
  std::string type_last;     // last identifier of the type (guard matching)
};

constexpr std::array<std::string_view, 22> kNotADeclLeader = {
    "return", "co_return", "co_await", "co_yield", "delete",  "throw",
    "goto",   "break",     "continue", "case",     "default", "using",
    "typedef", "template",  "friend",   "public",   "private", "protected",
    "else",   "do",        "new",      "operator"};

// Tries to parse a declaration from sig[s, e). Returns true and fills `d`
// when the statement (or for/if header fragment) declares a named variable.
bool ParseDecl(const std::vector<const Token*>& sig, size_t s, size_t e, Decl* d) {
  // Skip statement-introducer noise: `for (`, `if (`, `while (`, and leading
  // cv/storage specifiers.
  while (s < e) {
    const Token* t = sig[s];
    if (t->kind == TokKind::kIdentifier &&
        (Contains(kControlKw, t->text) || t->text == "static" ||
         t->text == "constexpr" || t->text == "const")) {
      s++;
      continue;
    }
    if (IsPunct(t, "(") || IsPunct(t, "{")) {
      s++;
      continue;
    }
    break;
  }
  if (s >= e || sig[s]->kind != TokKind::kIdentifier) {
    return false;
  }
  if (Contains(kNotADeclLeader, sig[s]->text)) {
    return false;
  }
  // Type: identifier chain with :: and template arguments. An identifier is
  // part of the type when what follows can continue a type (another
  // identifier, '::', template arguments) or start a declarator ('*', '&');
  // otherwise it is the candidate declared name and the chain ends.
  size_t i = s;
  std::string last_ident;
  bool saw_type = false;
  while (i < e) {
    const Token* t = sig[i];
    if (t->kind == TokKind::kIdentifier) {
      if (Contains(kNotADeclLeader, t->text)) {
        return false;
      }
      size_t nxt = i + 1;
      if (nxt < e && IsPunct(sig[nxt], "<")) {
        size_t after = SkipAngles(sig, nxt);
        if (after != 0) {
          last_ident = t->text;
          saw_type = true;
          i = after;
          continue;
        }
        break;  // a comparison: this identifier is the candidate name
      }
      bool type_continues =
          nxt < e && (sig[nxt]->kind == TokKind::kIdentifier || IsPunct(sig[nxt], "::"));
      bool declarator_next = nxt < e && (IsPunct(sig[nxt], "*") ||
                                         IsPunct(sig[nxt], "&") || IsPunct(sig[nxt], "&&"));
      if (type_continues || declarator_next) {
        last_ident = t->text;
        saw_type = true;
        i = nxt;
        continue;
      }
      break;  // this identifier is the candidate declared name
    }
    if (IsPunct(t, "::")) {
      i++;
      continue;
    }
    break;
  }
  if (!saw_type || i >= e) {
    return false;
  }
  // Declarator decorations between the type chain and the name.
  bool is_ptr = false;
  bool is_ref = false;
  while (i < e && (IsPunct(sig[i], "*") || IsPunct(sig[i], "&") ||
                   IsPunct(sig[i], "&&") || IsIdent(sig[i], "const"))) {
    if (IsPunct(sig[i], "*")) {
      is_ptr = true;
    } else if (IsPunct(sig[i], "&") || IsPunct(sig[i], "&&")) {
      is_ref = true;
    }
    i++;
  }
  if (i >= e || sig[i]->kind != TokKind::kIdentifier) {
    return false;
  }
  const std::string& name = sig[i]->text;
  size_t after_name = i + 1;
  // A declaration is terminated by an initializer or the statement end. A
  // '(' / '{' after the name is a constructor-style initializer; anything
  // else (., ->, [, operators) means this was an expression, not a decl.
  size_t init_b = 0;
  size_t init_e = 0;
  if (after_name < e) {
    const Token* t = sig[after_name];
    if (IsPunct(t, "=")) {
      if (after_name + 1 < e && IsPunct(sig[after_name + 1], "=")) {
        return false;  // `a == b`
      }
      init_b = after_name + 1;
      init_e = e;
    } else if (IsPunct(t, "(") || IsPunct(t, "{")) {
      init_b = after_name + 1;
      init_e = e;
    } else if (!IsPunct(t, ",") && !IsPunct(t, ")")) {
      return false;
    }
  }
  d->name = name;
  d->name_tok = i;
  d->init_begin = init_b;
  d->init_end = init_e;
  d->is_ptr = is_ptr;
  d->is_ref = is_ref;
  d->is_auto = last_ident == "auto";
  d->is_iterator_type = last_ident == "iterator" || last_ident == "const_iterator";
  d->is_value = !is_ptr && !is_ref;
  d->type_last = last_ident;
  return true;
}

// One unstable-accessor hit inside an initializer expression.
struct Provenance {
  bool hit = false;
  std::string accessor;     // e.g. "Placement", "find", "operator[]"
  Yield yield = Yield::kReference;
  std::string receiver;     // simple receiver identifier ("" if none/complex)
  std::string container;    // receiver for iterator tracking (same as above)
};

// Scans an initializer for calls to unstable accessors and for subscripts.
// Returns the first hit whose receiver is not exempted by `stable_locals`
// (locals owned by this coroutine frame); if every hit is exempt, returns
// the first exempt hit with hit=false but container filled (so the iterator
// rule can still track it).
Provenance ScanInit(const std::vector<const Token*>& sig, size_t b, size_t e,
                    const AwaitConfig& config, const std::set<std::string>& stable_names,
                    const std::set<std::string>& value_locals, Provenance* exempt) {
  Provenance none;
  for (size_t i = b; i < e && i < sig.size(); ++i) {
    const Token* t = sig[i];
    // Member/free call `name(` where name is an unstable accessor.
    if (t->kind == TokKind::kIdentifier && i + 1 < e && IsPunct(sig[i + 1], "(")) {
      auto it = config.unstable.find(t->text);
      if (it == config.unstable.end() || stable_names.count(t->text) != 0) {
        continue;
      }
      Provenance p;
      p.hit = true;
      p.accessor = t->text;
      p.yield = it->second;
      if (i >= 2 && (IsPunct(sig[i - 1], ".") || IsPunct(sig[i - 1], "->")) &&
          sig[i - 2]->kind == TokKind::kIdentifier) {
        p.receiver = sig[i - 2]->text;
        p.container = p.receiver;
        // Dot-calls on a by-value local are frame-owned: the coroutine frame
        // keeps the container alive across suspension. (Arrow access means
        // the local is a pointer, so the pointee is NOT frame-owned; and
        // mutation while an iterator is live is iterator-invalidate's
        // business.)
        bool member_access = i >= 3 && (IsPunct(sig[i - 3], ".") || IsPunct(sig[i - 3], "->"));
        if (!member_access && IsPunct(sig[i - 1], ".") &&
            value_locals.count(p.receiver) != 0) {
          if (exempt != nullptr && !exempt->hit) {
            *exempt = p;
            exempt->hit = false;
          }
          continue;
        }
      }
      return p;
    }
    // Subscript `recv[...]` yields a reference into the container.
    if (IsPunct(t, "[") && i > b && sig[i - 1]->kind == TokKind::kIdentifier) {
      const std::string& recv = sig[i - 1]->text;
      Provenance p;
      p.hit = true;
      p.accessor = "operator[]";
      p.yield = Yield::kReference;
      p.receiver = recv;
      p.container = recv;
      bool member_access =
          i >= 2 && i - 1 > b && (IsPunct(sig[i - 2], ".") || IsPunct(sig[i - 2], "->"));
      if (!member_access && value_locals.count(recv) != 0) {
        if (exempt != nullptr && !exempt->hit) {
          *exempt = p;
          exempt->hit = false;
        }
        continue;
      }
      return p;
    }
  }
  return none;
}

constexpr std::array<std::string_view, 16> kMutators = {
    "insert",       "erase",      "emplace",   "emplace_back", "emplace_front",
    "push_back",    "push_front", "pop_back",  "pop_front",    "clear",
    "resize",       "rehash",     "reserve",   "assign",       "shrink_to_fit",
    "try_emplace"};

const char* YieldName(Yield y) {
  switch (y) {
    case Yield::kPointer:
      return "pointer";
    case Yield::kIterator:
      return "iterator";
    case Yield::kReference:
      return "reference";
  }
  return "?";
}

}  // namespace

AwaitConfig DefaultAwaitConfig() {
  AwaitConfig c;
  c.unstable = {
      {"Placement", Yield::kPointer},  // config_.Placement(): freed on reconfig
      {"find", Yield::kIterator},      {"lower_bound", Yield::kIterator},
      {"upper_bound", Yield::kIterator}, {"equal_range", Yield::kIterator},
      {"begin", Yield::kIterator},     {"end", Yield::kIterator},
      {"cbegin", Yield::kIterator},    {"cend", Yield::kIterator},
      {"rbegin", Yield::kIterator},    {"rend", Yield::kIterator},
      {"at", Yield::kReference},       {"front", Yield::kReference},
      {"back", Yield::kReference},     {"top", Yield::kReference},
      {"data", Yield::kPointer},
  };
  c.guards = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return c;
}

std::set<std::string> CollectStableAnnotations(const FileInput& file, Reporter* rep) {
  std::set<std::string> names;
  // Code lines, for the comment -> declaration binding walk.
  std::set<int> code_lines;
  std::map<int, std::vector<const Token*>> by_line;
  for (const Token& t : file.tokens) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kEof) {
      code_lines.insert(t.line);
      by_line[t.line].push_back(&t);
    }
  }
  // A comment line is an annotation only when, after the comment markers,
  // it STARTS with `farmlint: stable` followed by nothing or a `:`
  // justification. Mid-line mentions (docs quoting the annotation) don't
  // count.
  auto annotation_lines = [](const Token& t) {
    std::vector<int> lines;
    std::string_view text = t.text;
    int offset = 0;
    while (!text.empty()) {
      size_t nl = text.find('\n');
      std::string_view line = text.substr(0, nl);
      while (!line.empty() &&
             (line.front() == ' ' || line.front() == '\t' || line.front() == '/' ||
              line.front() == '*')) {
        line.remove_prefix(1);
      }
      constexpr std::string_view kDirective = "farmlint: stable";
      if (line.substr(0, kDirective.size()) == kDirective) {
        std::string_view rest = line.substr(kDirective.size());
        if (rest.empty() || rest.front() == ' ' || rest.front() == ':' ||
            rest.front() == '\r') {
          lines.push_back(t.line + offset);
        }
      }
      if (nl == std::string_view::npos) {
        break;
      }
      text.remove_prefix(nl + 1);
      offset++;
    }
    return lines;
  };
  auto bind_annotation = [&](const Token& t, int ann_line) {
    // Bind to the declaration on the comment's own line (trailing form) or
    // the first code line within reach (preceding form).
    int bound_line = 0;
    if (code_lines.count(ann_line) != 0) {
      bound_line = ann_line;
    } else {
      constexpr int kMaxReach = 8;
      for (int l = ann_line + 1; l <= ann_line + kMaxReach; ++l) {
        if (code_lines.count(l) != 0) {
          bound_line = l;
          break;
        }
      }
    }
    std::string accessor;
    if (bound_line != 0) {
      // The accessor is the last identifier directly followed by '(' on the
      // bound line: `const RegionPlacement* Placement(RegionId r) const;`.
      const std::vector<const Token*>& toks = by_line[bound_line];
      for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i]->kind == TokKind::kIdentifier && IsPunct(toks[i + 1], "(")) {
          accessor = toks[i]->text;
        }
      }
    }
    if (accessor.empty()) {
      if (rep != nullptr) {
        rep->Report("bad-allow", ann_line, t.col,
                    "'farmlint: stable' annotation does not precede an accessor "
                    "declaration (expected `name(...)` on this or the next line)");
      }
      return;
    }
    names.insert(accessor);
  };
  for (const Token& t : file.tokens) {
    if (t.kind != TokKind::kComment) {
      continue;
    }
    for (int ann_line : annotation_lines(t)) {
      bind_annotation(t, ann_line);
    }
  }
  return names;
}

void AnalyzeAwaitSafety(const FileInput& file, const AwaitConfig& config,
                        const std::set<std::string>& stable_names, Reporter& rep) {
  if (!rep.RuleEnabled("await-hazard") && !rep.RuleEnabled("lock-across-await") &&
      !rep.RuleEnabled("iterator-invalidate")) {
    return;
  }
  std::vector<const Token*> sig = Significant(file.tokens);

  // -------------------------------------------------------------------------
  // Pass 1: scope tree + per-token scope ids + statement ids.
  // -------------------------------------------------------------------------
  std::vector<Scope> scopes;
  scopes.push_back(Scope{ScopeKind::kFile, -1, -1, 0, sig.size()});
  std::vector<int> scope_of(sig.size(), 0);
  std::vector<int> stmt_of(sig.size(), 0);
  std::vector<int> stack = {0};
  int stmt = 0;
  for (size_t i = 0; i < sig.size(); ++i) {
    const Token* t = sig[i];
    if (IsPunct(t, "{") && !t->in_directive) {
      Scope s;
      s.kind = ClassifyBrace(sig, i);
      s.parent = stack.back();
      s.function = s.kind == ScopeKind::kFunction ? static_cast<int>(scopes.size())
                                                  : scopes[s.parent].function;
      s.open = i;
      s.close = sig.size();
      scope_of[i] = stack.back();
      stack.push_back(static_cast<int>(scopes.size()));
      scopes.push_back(s);
      stmt++;
      continue;
    }
    if (IsPunct(t, "}") && !t->in_directive) {
      if (stack.size() > 1) {
        scopes[stack.back()].close = i;
        stack.pop_back();
      }
      scope_of[i] = stack.back();
      stmt++;
      continue;
    }
    scope_of[i] = stack.back();
    stmt_of[i] = stmt;
    if (IsPunct(t, ";")) {
      stmt++;
    }
  }

  // -------------------------------------------------------------------------
  // Pass 2: suspension points.
  // -------------------------------------------------------------------------
  struct Await {
    size_t tok;
    int function;  // innermost function scope (-1 if at file/class level)
  };
  std::vector<Await> awaits;
  for (size_t i = 0; i < sig.size(); ++i) {
    if (IsIdent(sig[i], "co_await") && !sig[i]->in_directive) {
      awaits.push_back(Await{i, scopes[scope_of[i]].function});
    }
  }

  // -------------------------------------------------------------------------
  // Pass 3: declarations, per statement, inside function scopes only.
  // -------------------------------------------------------------------------
  std::vector<Decl> decls;
  {
    size_t s = 0;
    for (size_t i = 0; i <= sig.size(); ++i) {
      bool boundary = i == sig.size() || IsPunct(sig[i], ";") ||
                      IsPunct(sig[i], "{") || IsPunct(sig[i], "}");
      if (!boundary) {
        continue;
      }
      if (i > s) {
        int sc = scope_of[s];
        // Only function-body statements declare locals we track. Class and
        // namespace scopes hold members/globals, whose lifetime rules
        // differ; skip them to avoid member-decl false positives.
        if (scopes[sc].function >= 0 || scopes[sc].kind == ScopeKind::kFunction) {
          Decl d;
          if (ParseDecl(sig, s, i, &d)) {
            d.scope = sc;
            decls.push_back(d);
          }
        }
      }
      s = i + 1;
    }
  }

  // Value locals per function scope: receivers owned by the coroutine frame.
  // `auto` (no * or &) counts: it copies/moves into the frame. If the
  // initializer deduced a pointer type, dot-access on it would not compile,
  // and ScanInit only exempts dot-access receivers.
  std::map<int, std::set<std::string>> value_locals_by_fn;
  for (const Decl& d : decls) {
    if (d.is_value) {
      value_locals_by_fn[scopes[d.scope].function].insert(d.name);
    }
  }

  auto uses_of = [&](const Decl& d) {
    std::vector<size_t> uses;
    size_t end = scopes[d.scope].close;
    size_t from = d.init_end != 0
                      ? d.init_end
                      : d.name_tok + 1;
    for (size_t i = from; i < end && i < sig.size(); ++i) {
      if (sig[i]->kind == TokKind::kIdentifier && sig[i]->text == d.name) {
        uses.push_back(i);
      }
    }
    return uses;
  };

  // -------------------------------------------------------------------------
  // await-hazard + lock-across-await + iterator-invalidate
  // -------------------------------------------------------------------------
  for (const Decl& d : decls) {
    int fn = scopes[d.scope].function;

    // lock-across-await: RAII guard live (in scope) across a suspension.
    if (config.guards.count(d.type_last) != 0) {
      size_t scope_end = scopes[d.scope].close;
      for (const Await& a : awaits) {
        if (a.tok > d.name_tok && a.tok < scope_end && a.function == fn &&
            stmt_of[a.tok] != stmt_of[d.name_tok]) {
          rep.Report("lock-across-await", sig[d.name_tok]->line, sig[d.name_tok]->col,
                     "lock guard '" + d.name + "' ('" + d.type_last +
                         "') is held across the co_await at line " +
                         std::to_string(sig[a.tok]->line) +
                         "; scope the guard to end before suspending");
          break;
        }
      }
      continue;
    }

    if (d.init_begin == 0) {
      continue;  // provenance rules need an initializer
    }
    const std::set<std::string>& value_locals = value_locals_by_fn[fn];
    Provenance exempt;
    Provenance p = ScanInit(sig, d.init_begin, d.init_end, config, stable_names,
                            value_locals, &exempt);

    // await-hazard. The value a use reads comes from the latest assignment
    // ("producer") before it: the declaration's initializer, or a later
    // `name = ...` re-resolve (pointers/iterators only; assigning through a
    // reference writes the referent and is itself a use). A use after a
    // co_await is hazardous when its producer ran before that await and
    // derived from an unstable accessor.
    std::vector<size_t> uses = uses_of(d);
    struct Producer {
      size_t pos;
      Provenance prov;
    };
    std::vector<Producer> producers = {{d.name_tok, p}};
    std::set<size_t> reassign_lhs;
    if (!d.is_ref) {
      for (size_t u : uses) {
        bool lhs = u + 1 < sig.size() && IsPunct(sig[u + 1], "=") &&
                   !(u + 2 < sig.size() && IsPunct(sig[u + 2], "=")) &&
                   !(u >= 1 && IsPunct(sig[u - 1], "*"));
        if (!lhs) {
          continue;
        }
        size_t rb = u + 2;
        size_t re = rb;
        while (re < sig.size() && stmt_of[re] == stmt_of[u] && !IsPunct(sig[re], ";")) {
          re++;
        }
        producers.push_back(
            {u, ScanInit(sig, rb, re, config, stable_names, value_locals, nullptr)});
        reassign_lhs.insert(u);
      }
    }
    bool shape_fixed = d.is_ptr || d.is_ref || d.is_iterator_type;
    bool reported = false;
    for (const Await& a : awaits) {
      if (reported) {
        break;
      }
      if (a.tok <= d.name_tok || a.function != fn) {
        continue;
      }
      for (size_t u : uses) {
        if (u <= a.tok || reassign_lhs.count(u) != 0) {
          continue;  // not a read, or read before this suspension
        }
        const Producer* prod = &producers[0];
        for (const Producer& pr : producers) {
          if (pr.pos < u && pr.pos >= prod->pos) {
            prod = &pr;
          }
        }
        if (prod->pos >= a.tok || !prod->prov.hit ||
            stmt_of[a.tok] == stmt_of[prod->pos]) {
          continue;  // value (re-)resolved after resuming, or stable source
        }
        bool shape = shape_fixed || (d.is_auto && prod->prov.yield != Yield::kReference);
        if (!shape) {
          continue;
        }
        const Provenance& pv = prod->prov;
        rep.Report(
            "await-hazard", sig[d.name_tok]->line, sig[d.name_tok]->col,
            "'" + d.name + "' (" + YieldName(pv.yield) + " from unstable accessor '" +
                pv.accessor + (pv.receiver.empty() ? "" : "' on '" + pv.receiver) +
                "') is used after the co_await at line " +
                std::to_string(sig[a.tok]->line) +
                "; re-resolve it after resuming or mark the accessor "
                "'// farmlint: stable'");
        reported = true;
        break;
      }
    }

    // iterator-invalidate: container mutated while an iterator/reference
    // into it is live in the same scope and used again afterwards.
    const Provenance& src = p.hit ? p : exempt;
    bool iter_shape = d.is_ptr || d.is_ref || d.is_iterator_type ||
                      (d.is_auto && !src.accessor.empty() &&
                       src.yield != Yield::kReference);
    if (!src.container.empty() && iter_shape) {
      // Mutation events on the source container within the decl's scope.
      size_t scope_end = scopes[d.scope].close;
      struct Mut {
        size_t tok;
        std::string method;
      };
      std::vector<Mut> muts;
      for (size_t i = d.name_tok + 1; i < scope_end && i + 3 < sig.size(); ++i) {
        if (sig[i]->kind == TokKind::kIdentifier && sig[i]->text == src.container &&
            (IsPunct(sig[i + 1], ".") || IsPunct(sig[i + 1], "->")) &&
            sig[i + 2]->kind == TokKind::kIdentifier &&
            Contains(kMutators, sig[i + 2]->text) && IsPunct(sig[i + 3], "(")) {
          muts.push_back(Mut{i + 2, sig[i + 2]->text});
        }
      }
      if (!muts.empty() && !uses.empty()) {
        // Reassignments of the iterator re-seat it (`it = c.erase(it)`).
        std::set<int> reseat_stmts;
        for (size_t u : uses) {
          if (u + 1 < sig.size() && IsPunct(sig[u + 1], "=") &&
              !(u + 2 < sig.size() && IsPunct(sig[u + 2], "="))) {
            reseat_stmts.insert(stmt_of[u]);
          }
        }
        for (const Mut& m : muts) {
          if (reseat_stmts.count(stmt_of[m.tok]) != 0) {
            continue;  // `it = c.erase(it)` style re-seat
          }
          // A use in a strictly later statement reads a dead iterator,
          // unless some re-seat happened in between.
          for (size_t u : uses) {
            if (stmt_of[u] <= stmt_of[m.tok]) {
              continue;
            }
            bool reseated = false;
            for (int rs : reseat_stmts) {
              if (rs > stmt_of[m.tok] && rs <= stmt_of[u]) {
                reseated = true;
                break;
              }
            }
            if (reseated) {
              break;
            }
            rep.Report("iterator-invalidate", sig[u]->line, sig[u]->col,
                       "'" + d.name + "' into '" + src.container +
                           "' is used after '" + src.container + "." + m.method +
                           "(...)' at line " + std::to_string(sig[m.tok]->line) +
                           " invalidated it; re-resolve after mutating");
            break;
          }
        }
      }
    }
  }

  // Range-for bodies that mutate the container they iterate.
  for (size_t i = 0; i + 1 < sig.size(); ++i) {
    if (!IsIdent(sig[i], "for") || !IsPunct(sig[i + 1], "(")) {
      continue;
    }
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < sig.size() && j < i + 256; ++j) {
      if (IsPunct(sig[j], "(")) {
        depth++;
      } else if (IsPunct(sig[j], ")")) {
        depth--;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && IsPunct(sig[j], ":") && colon == 0) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0 || close + 1 >= sig.size() ||
        !IsPunct(sig[close + 1], "{")) {
      continue;
    }
    // Range expression must be a simple (possibly member) identifier; calls
    // and casts are out of scope for this check.
    if (close - colon != 1 || sig[colon + 1]->kind != TokKind::kIdentifier) {
      continue;
    }
    const std::string& cont = sig[colon + 1]->text;
    size_t body_open = close + 1;
    int body_scope = -1;
    for (size_t s = 0; s < scopes.size(); ++s) {
      if (scopes[s].open == body_open) {
        body_scope = static_cast<int>(s);
        break;
      }
    }
    if (body_scope < 0) {
      continue;
    }
    for (size_t j = body_open; j < scopes[body_scope].close && j + 3 < sig.size();
         ++j) {
      if (sig[j]->kind == TokKind::kIdentifier && sig[j]->text == cont &&
          (IsPunct(sig[j + 1], ".") || IsPunct(sig[j + 1], "->")) &&
          sig[j + 2]->kind == TokKind::kIdentifier &&
          Contains(kMutators, sig[j + 2]->text) && IsPunct(sig[j + 3], "(")) {
        rep.Report("iterator-invalidate", sig[j + 2]->line, sig[j + 2]->col,
                   "range-for over '" + cont + "' mutates it via '" +
                       sig[j + 2]->text + "(...)'; collect changes and apply "
                       "after the loop");
        break;
      }
    }
  }
}

}  // namespace farmlint
