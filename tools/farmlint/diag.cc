#include "tools/farmlint/diag.h"

namespace farmlint {

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": error: [" +
         rule + "] " + message;
}

std::vector<const Token*> Significant(const std::vector<Token>& tokens) {
  std::vector<const Token*> sig;
  sig.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kEof) {
      sig.push_back(&t);
    }
  }
  return sig;
}

std::vector<AllowName> ParseAllowNames(const std::vector<Token>& tokens) {
  std::vector<AllowName> names;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) {
      continue;
    }
    // Directive form only: after the comment markers, a line must START with
    // `farmlint: allow(`. Mid-line mentions (documentation quoting the
    // syntax) are neither suppressions nor hygiene errors.
    std::string_view text = t.text;
    int offset = 0;
    while (!text.empty()) {
      size_t nl = text.find('\n');
      std::string_view line = text.substr(0, nl);
      while (!line.empty() &&
             (line.front() == ' ' || line.front() == '\t' || line.front() == '/' ||
              line.front() == '*')) {
        line.remove_prefix(1);
      }
      constexpr std::string_view kDirective = "farmlint: allow(";
      if (line.substr(0, kDirective.size()) == kDirective) {
        std::string_view list = line.substr(kDirective.size());
        size_t end = list.find(')');
        if (end != std::string_view::npos) {
          list = list.substr(0, end);
          size_t i = 0;
          while (i <= list.size()) {
            size_t j = list.find(',', i);
            if (j == std::string_view::npos) {
              j = list.size();
            }
            std::string_view name = list.substr(i, j - i);
            while (!name.empty() && name.front() == ' ') {
              name.remove_prefix(1);
            }
            while (!name.empty() && name.back() == ' ') {
              name.remove_suffix(1);
            }
            if (!name.empty()) {
              names.push_back(AllowName{t.line + offset, t.col, std::string(name)});
            }
            i = j + 1;
          }
        }
      }
      if (nl == std::string_view::npos) {
        break;
      }
      text.remove_prefix(nl + 1);
      offset++;
    }
  }
  return names;
}

AllowMap ParseAllows(const std::vector<Token>& tokens) {
  std::set<int> code_lines;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kEof) {
      code_lines.insert(t.line);
    }
  }
  AllowMap allows;
  for (const AllowName& a : ParseAllowNames(tokens)) {
    // An allow covers its own line (trailing-comment form) and extends
    // forward over comment-only/blank lines to the first line that has code
    // (preceding-comment form, including multi-line justifications).
    allows[a.line].insert(a.rule);
    constexpr int kMaxReach = 8;  // give up on huge comment blocks
    for (int l = a.line + 1; l <= a.line + kMaxReach; ++l) {
      allows[l].insert(a.rule);
      if (code_lines.count(l) != 0) {
        break;
      }
    }
  }
  return allows;
}

}  // namespace farmlint
