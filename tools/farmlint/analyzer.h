// Scope/flow-aware analysis pass for coroutine suspension safety.
//
// Layered on the lexer (not a full C++ front end): a lightweight
// declaration-and-statement parser builds a scope tree per file, tracks
// local variable declarations with their provenance (the expression that
// initialized them), and records every `co_await` suspension point. Three
// rule families run on top:
//
//   await-hazard        a raw pointer, reference, or iterator derived from a
//                       non-owning "unstable accessor" (Placement(), map
//                       find()/at()/operator[], begin()/end(), &c[i]) is
//                       still live across a later co_await. Reconfiguration
//                       or a concurrent coroutine may free/move the referent
//                       between suspension and resume; re-resolve after the
//                       await or mark the accessor `// farmlint: stable`.
//   lock-across-await   an RAII lock guard is live across a suspension
//                       point: the lock is held while the coroutine is
//                       parked, which deadlocks or serializes the simulator.
//   iterator-invalidate a container is mutated while an iterator/reference
//                       into it is live in the same scope and used again
//                       afterwards (no co_await required).
//
// A variable is "live across" an await when its declaration precedes the
// await and it is used again after it (for guards: when its scope simply
// extends past the await -- the destructor is the use). Calls on container
// locals *owned by the coroutine frame* (declared by value in the same
// function) are exempt from await-hazard: the frame keeps them alive across
// suspension, and same-scope mutation is iterator-invalidate's job.
#ifndef TOOLS_FARMLINT_ANALYZER_H_
#define TOOLS_FARMLINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "tools/farmlint/diag.h"
#include "tools/farmlint/lexer.h"

namespace farmlint {

// What an unstable accessor yields. Pointer/iterator results are hazardous
// even through plain `auto` (the deduced type is the pointer/iterator);
// reference results are only hazardous when bound to a reference/pointer
// declarator (`auto` makes a value copy, which is safe).
enum class Yield {
  kPointer,
  kIterator,
  kReference,
};

struct AwaitConfig {
  // Accessor name -> yield kind. Seeded by DefaultAwaitConfig(); extended
  // per-directory with `.farmlint` lines `unstable <name> <yield>` and
  // trimmed with `stable <name>`.
  std::map<std::string, Yield> unstable;
  // RAII lock guard type names (last identifier of the declared type).
  std::set<std::string> guards;
};

AwaitConfig DefaultAwaitConfig();

// Runs the await-safety rules over one file. `stable_names` is the
// cross-file annotation index: accessor names whose declarations carry a
// `// farmlint: stable` comment anywhere in the input set.
void AnalyzeAwaitSafety(const FileInput& file, const AwaitConfig& config,
                        const std::set<std::string>& stable_names, Reporter& rep);

// Scans one file for `farmlint: stable` annotations and returns the accessor
// names they bind to (the declaration on the comment's line or the next code
// line). Unbindable annotations are reported via `rep` as `bad-allow` when a
// Reporter is supplied (pass nullptr during the collection pass).
std::set<std::string> CollectStableAnnotations(const FileInput& file, Reporter* rep);

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_ANALYZER_H_
