// Shared diagnostic machinery for farmlint passes: token matching helpers,
// `farmlint: allow(...)` suppression parsing, and the Reporter that filters
// and accumulates diagnostics. Split out of rules.cc so the token-stream
// rules (rules.cc) and the scope-aware analyzer (analyzer.cc) report through
// one suppression path.
#ifndef TOOLS_FARMLINT_DIAG_H_
#define TOOLS_FARMLINT_DIAG_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/farmlint/lexer.h"

namespace farmlint {

struct Diagnostic {
  std::string file;  // as given to the driver (repo-relative in CI)
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  std::string ToString() const;
};

// Significant tokens: everything except comments. Rules index into this.
std::vector<const Token*> Significant(const std::vector<Token>& tokens);

inline bool IsIdent(const Token* t, std::string_view text) {
  return t->kind == TokKind::kIdentifier && t->text == text;
}
inline bool IsPunct(const Token* t, std::string_view text) {
  return t->kind == TokKind::kPunct && t->text == text;
}

// One rule name appearing inside a `farmlint: allow(...)` comment, with the
// position of the comment (for validating unknown rule names).
struct AllowName {
  int line = 0;
  int col = 0;
  std::string rule;
};

// Extracts every rule name from every allow comment, in file order.
std::vector<AllowName> ParseAllowNames(const std::vector<Token>& tokens);

// line -> rules allowed on that line. An allow comment covers its own line
// (trailing-comment form) and extends forward over comment-only/blank lines
// to the first line that has code (preceding-comment form, including
// multi-line justification comments).
using AllowMap = std::map<int, std::set<std::string>>;

AllowMap ParseAllows(const std::vector<Token>& tokens);

struct FileInput;  // rules.h

class Reporter {
 public:
  Reporter(const std::string& path, const std::vector<Token>& tokens,
           const std::set<std::string>& enabled, std::vector<Diagnostic>& out)
      : path_(path), enabled_(enabled), allows_(ParseAllows(tokens)), out_(out) {}

  bool RuleEnabled(const std::string& rule) const { return enabled_.count(rule) != 0; }

  void Report(const std::string& rule, int line, int col, std::string message) {
    if (!RuleEnabled(rule)) {
      return;
    }
    auto it = allows_.find(line);
    if (it != allows_.end() && it->second.count(rule) != 0) {
      return;
    }
    out_.push_back(Diagnostic{path_, line, col, rule, std::move(message)});
  }

 private:
  const std::string& path_;
  const std::set<std::string>& enabled_;
  AllowMap allows_;
  std::vector<Diagnostic>& out_;
};

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_DIAG_H_
