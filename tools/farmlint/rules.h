// farmlint rule engine.
//
// Rules operate on the token stream from lexer.h. Cross-file knowledge (which
// variable names are declared as unordered containers anywhere in the repo,
// which accessor names carry a `farmlint: stable` annotation) is gathered in
// a collection pass over every input file before any file is linted, so
// `for (auto& [k, v] : inflight_)` in a .cc file is caught even when
// `inflight_` is declared in the corresponding header.
//
// Suppression: a comment containing `farmlint: allow(rule-a, rule-b)`
// suppresses those rules on its own line and on the following line, so both
// trailing and preceding-line comments work. Convention: follow the closing
// parenthesis with a one-line justification. Naming an unknown rule in an
// allow list is itself an error (`bad-allow`).
#ifndef TOOLS_FARMLINT_RULES_H_
#define TOOLS_FARMLINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/farmlint/analyzer.h"
#include "tools/farmlint/diag.h"
#include "tools/farmlint/lexer.h"

namespace farmlint {

struct RuleInfo {
  const char* name;
  bool default_on;
  const char* description;
};

// Every rule farmlint knows about, with its default enablement. Rules that
// are off by default (`unordered-decl`) are switched on for specific
// directories via `.farmlint` config files.
const std::vector<RuleInfo>& AllRules();
bool IsKnownRule(const std::string& name);

struct FileInput {
  std::string path;            // display path for diagnostics
  bool is_header = false;      // .h / .hpp: include hygiene rules apply
  std::string basename;        // e.g. "rand.h" (drives the raw-rand exemption)
  std::vector<Token> tokens;
};

// Effective configuration for linting one file: which rules run, plus the
// await-safety accessor/guard lists (both tunable via `.farmlint`).
struct FileConfig {
  std::set<std::string> rules;
  AwaitConfig await;
};

class Linter {
 public:
  // Collection pass: record names declared with an unordered container type
  // and accessor names annotated `// farmlint: stable`. Call for every input
  // file before the first Lint() call.
  void CollectDeclarations(const FileInput& file);

  // Runs all rules in `config.rules` against one file. Diagnostics
  // suppressed by `farmlint: allow(...)` comments are dropped here, and
  // repeated reports for the same (line, rule) are de-duplicated.
  std::vector<Diagnostic> Lint(const FileInput& file, const FileConfig& config) const;

  const std::set<std::string>& unordered_names() const { return unordered_names_; }
  const std::set<std::string>& stable_names() const { return stable_names_; }

 private:
  // Member names (trailing underscore, per the codebase style) are visible
  // repo-wide: a member declared unordered in a header is iterated from
  // other translation units. Plain local names only apply within the file
  // that declares them, so an unordered local `m` in one test does not taint
  // every `m` in the repository.
  std::set<std::string> unordered_names_;
  std::map<std::string, std::set<std::string>> local_unordered_names_;  // by file path
  // Accessor names whose declaration carries a `farmlint: stable` comment
  // anywhere in the input set: the annotation index. A stable accessor is
  // exempt from await-hazard provenance no matter which file calls it.
  std::set<std::string> stable_names_;
};

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_RULES_H_
