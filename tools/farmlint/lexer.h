// A small, self-contained C++ lexer for farmlint.
//
// This is deliberately not a full C++ front end: farmlint's rules only need a
// token stream that correctly skips comments, string/char literals (including
// raw strings), and preprocessor noise, while preserving line/column
// positions and the comment text (comments carry `farmlint: allow(...)`
// suppressions). Tokenizing instead of regex-grepping is what lets rules
// distinguish `rand(` the libc call from `brand(` or `"rand("` in a string.
#ifndef TOOLS_FARMLINT_LEXER_H_
#define TOOLS_FARMLINT_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace farmlint {

enum class TokKind {
  kIdentifier,   // identifiers and keywords (rules match on spelling)
  kNumber,       // numeric literal (no semantic value needed)
  kString,       // "..." / R"(...)" / '...' / <header> after #include
  kPunct,        // one operator/punctuator, e.g. "::", "<", "->", "#"
  kComment,      // // or /* */, text includes the delimiters
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;    // exact source spelling
  int line = 0;        // 1-based
  int col = 0;         // 1-based
  bool at_line_start = false;  // first non-whitespace token on its line
  bool in_directive = false;   // token belongs to a preprocessor line
};

// Tokenizes an entire source buffer. Never fails: malformed input degrades to
// single-character punctuation tokens, which at worst makes a rule miss.
std::vector<Token> Lex(std::string_view source);

}  // namespace farmlint

#endif  // TOOLS_FARMLINT_LEXER_H_
