// Fixture: justified iterator-invalidate suppressions; must be clean.
#include <map>

int NodeStableContainer(int key) {
  auto it = sessions_.find(key);
  sessions_.erase(kStaleKey);
  // std::map erase only invalidates iterators to the erased element, and
  // kStaleKey is never the looked-up key here.
  // farmlint: allow(iterator-invalidate): map erase of a different key
  return it->second;
}
