// Fixture: declares an unordered member that cross_file_iter.cc iterates.
// The declaration itself is fine under default rules; the iteration in the
// other translation unit must still be caught (two-pass collection).
#ifndef TOOLS_FARMLINT_TESTDATA_CROSS_FILE_DECL_H_
#define TOOLS_FARMLINT_TESTDATA_CROSS_FILE_DECL_H_

#include <cstdint>
#include <unordered_map>

struct CrossFixture {
  uint64_t Sum() const;
  std::unordered_map<uint64_t, uint64_t> cross_map_;
};

#endif  // TOOLS_FARMLINT_TESTDATA_CROSS_FILE_DECL_H_
