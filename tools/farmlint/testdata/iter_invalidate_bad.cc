// Fixture: iterators/references used after the container they point into was
// mutated. All three functions must fire iterator-invalidate (and nothing
// else). No coroutines needed: invalidation is a same-scope bug.
#include <map>
#include <vector>

int EraseWhileHeld(int key) {
  auto it = sessions_.find(key);
  sessions_.erase(kStaleKey);  // may rebalance/free the node `it` points at
  return it->second;
}

int PushWhileHeld() {
  const Frame& f = frames_.front();
  frames_.push_back(MakeFrame());  // may reallocate the backing array
  return f.sequence;
}

void MutateInRangeFor() {
  for (const auto& s : pending_) {
    if (s.done) {
      pending_.erase(s.id);  // invalidates the loop's hidden iterator
    }
  }
}
