// Fixture: raw pointers/references/iterators derived from unstable accessors
// and still used after a co_await. Every function here must fire await-hazard
// (and nothing else).
#include <map>
#include <vector>

Task<int> HeldPointer(int region) {
  const RegionPlacement* p = config_.Placement(region);  // hazard: pointer
  co_await Suspend();
  co_return p->primary;
}

Task<int> HeldIterator(int key) {
  auto it = index_.find(key);  // hazard: iterator
  co_await Suspend();
  co_return it->second;
}

Task<int> HeldReference(int key) {
  const Row& r = table_.at(key);  // hazard: reference
  co_await Suspend();
  co_return r.version;
}

Task<int> HeldSubscript(int key) {
  const Row& r = rows_[key];  // hazard: operator[] reference
  co_await Suspend();
  co_return r.version;
}
