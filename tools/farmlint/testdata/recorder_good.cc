// Fixture: flat scalar *Record structs (and methods taking pointers) are
// fine under recorder-pod.
#include "src/obs/flight_recorder.h"

struct WireRecord {
  static constexpr unsigned kHasTx = 1 << 0;

  unsigned long long time_ns = 0;
  unsigned int detail = 0;
  unsigned short flags = 0;
  unsigned char kind = 0;

  bool HasTx() const { return (flags & kHasTx) != 0; }
};

// Pointers outside *Record structs are unrestricted.
struct RingView {
  const WireRecord* data = nullptr;
  unsigned long long count = 0;
};

int Use(const WireRecord& r) { return static_cast<int>(r.kind); }
