// Fixture: await-safe variants of every await_hazard_bad.cc shape; must be
// completely clean. The safe idioms: copy the needed values before
// suspending, resolve after resuming, or keep the container in a by-value
// local that the coroutine frame owns across suspension.
#include <map>
#include <vector>

Task<int> CopyBeforeAwait(int region) {
  int primary = config_.Placement(region)->primary;  // value copy: safe
  co_await Suspend();
  co_return primary;
}

Task<int> ResolveAfterResume(int key) {
  co_await Suspend();
  auto it = index_.find(key);  // resolved after the suspension: safe
  co_return it->second;
}

Task<int> ValueCopyOfReference(int key) {
  auto row = table_.at(key);  // auto (no &) copies the row: safe
  co_await Suspend();
  co_return row.version;
}

Task<int> FrameOwnedContainer(int key) {
  std::map<int, int> scratch;
  scratch.insert({key, 1});
  auto it = scratch.find(key);  // frame owns `scratch` across the await: safe
  co_await Suspend();
  co_return it->second;
}

int NotACoroutine(int key) {
  auto it = index_.find(key);  // no suspension anywhere: safe
  return it->second;
}

Task<int> DeadBeforeAwait(int region) {
  const RegionPlacement* p = config_.Placement(region);
  int primary = p->primary;  // last use of `p` is before the await: safe
  co_await Suspend();
  co_return primary;
}
