// Fixture: the safe counterparts of iter_invalidate_bad.cc; must be clean.
#include <map>
#include <vector>

int ReseatAfterErase(int key) {
  auto it = sessions_.find(key);
  it = sessions_.erase(it);  // erase returns the next iterator: re-seated
  return it->second;
}

int CopyThenMutate(int key) {
  int v = sessions_.at(key);  // value copy, no reference into the container
  sessions_.erase(key);
  return v;
}

int MutateAfterLastUse(int key) {
  auto it = sessions_.find(key);
  int v = it->second;
  sessions_.erase(key);  // iterator already dead: fine
  return v;
}

void CollectThenApply() {
  std::vector<int> done;
  for (const auto& s : pending_) {
    if (s.second) {
      done.push_back(s.first);  // mutating `done`, not the iterated container
    }
  }
  for (int id : done) {
    pending_.erase(id);
  }
}
