// Fixture: RAII lock guards held across a co_await. The lock stays taken
// while the coroutine is parked, which stalls every other task on the same
// mutex until this one is resumed. Both functions must fire
// lock-across-await (and nothing else).
#include <mutex>

Task<void> GuardAcrossAwait() {
  std::lock_guard<std::mutex> g(mu_);
  co_await Suspend();
  state_ = 1;
}

Task<void> UniqueLockAcrossAwait() {
  std::unique_lock<std::mutex> u(mu_);
  pending_ = 2;
  co_await Suspend();
}
