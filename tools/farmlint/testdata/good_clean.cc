// Fixture: deterministic idioms; must produce no diagnostics.
//
// Note the decoys: identifiers and strings that merely *mention* banned
// names must not fire ("rand(" inside a string, member functions named
// time(), ordered-map iteration).
#include <cstdint>
#include <map>
#include <string>

struct SimClock {
  uint64_t now_ns = 0;
  uint64_t time() const { return now_ns; }  // member named time(): fine
};

uint64_t Clean() {
  SimClock clock_state;
  uint64_t t = clock_state.time();
  std::map<uint64_t, uint64_t> ordered;
  ordered[1] = 2;
  uint64_t sum = t;
  for (const auto& [k, v] : ordered) {  // ordered iteration: deterministic
    sum += k + v;
  }
  std::string decoy = "calling rand() or time(nullptr) in a string is fine";
  // Mentioning system_clock in a comment is fine too.
  return sum + decoy.size();
}
