// Fixture for .farmlint await-safety verbs: RawSlot() is unstable here (one
// await-hazard), Placement() is stable here (clean), and SpinGuard is a
// guard type (one lock-across-await).

Task<int> CustomAccessor(int slot, int region) {
  const Slot* s = RawSlot(slot);             // unstable via .farmlint
  const RegionPlacement* p = Placement(region);  // stable via .farmlint
  co_await Suspend();
  co_return s->value + p->primary;
}

Task<void> CustomGuard() {
  SpinGuard g(latch_);
  co_await Suspend();
}
