// Fixture: suppression-hygiene violations; exactly two bad-allow findings.

int TypoedAllow() {
  // farmlint: allow(awiat-hazard): typo'd rule name suppresses nothing
  return 1;
}

// farmlint: stable
int kNotAnAccessor = 3;  // annotation binds to no `name(...)` declaration
