// Fixture: iterates an ORDERED map that happens to share its name with the
// unordered local in local_scope_a.cc. Must produce no diagnostics.
#include <cstdint>
#include <map>

uint64_t LocalB() {
  std::map<uint64_t, uint64_t> scratch;
  scratch[1] = 2;
  uint64_t sum = 0;
  for (const auto& [k, v] : scratch) {
    sum += k + v;
  }
  return sum;
}
