// Fixture: holds a pointer from an accessor marked `farmlint: stable` in
// stable_accessor.h across a co_await; must be clean when that header was
// collected first.
#include "stable_accessor.h"

Task<int> UsePinned(const PinnedConfig& cfg, int region) {
  const RegionPlacement* p = cfg.Placement(region);
  co_await Suspend();
  co_return p->primary;
}
