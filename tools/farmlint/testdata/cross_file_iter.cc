// Fixture: iterates an unordered member declared in cross_file_decl.h.
#include "tools/farmlint/testdata/cross_file_decl.h"

uint64_t CrossFixture::Sum() const {
  uint64_t sum = 0;
  for (const auto& [k, v] : cross_map_) {  // unordered-iter via cross-file decl
    sum += k + v;
  }
  return sum;
}
