// Fixture: every statement here must trigger the wall-clock rule.
#include <chrono>
#include <ctime>

long long Violations() {
  auto a = std::chrono::system_clock::now();            // wall-clock
  auto b = std::chrono::steady_clock::now();            // wall-clock
  auto c = std::chrono::high_resolution_clock::now();   // wall-clock
  std::time_t d = std::time(nullptr);                   // wall-clock
  std::time_t e = time(nullptr);                        // wall-clock
  long f = clock();                                     // wall-clock
  struct timespec ts;
  clock_gettime(0, &ts);                                // wall-clock
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count() + d + e + f + ts.tv_nsec;
}
