// Fixture: #pragma once is also an accepted guard.
#pragma once

#include <cstdint>

inline uint64_t Thrice(uint64_t x) { return x * 3; }
