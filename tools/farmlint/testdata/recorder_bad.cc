// Fixture: recorder-pod must flag non-POD members of *Record structs in a
// file that uses the flight recorder.
#include "src/obs/flight_recorder.h"

struct DebugRecord {
  const char* label = nullptr;  // hit: pointer member
  unsigned long long time_ns = 0;
};

struct OwningRecord {
  std::string note;       // hit: owning container member
  std::vector<int> path;  // hit: owning container member
};

struct VirtualRecord {
  virtual ~VirtualRecord() {}  // hit: virtual member
  int x = 0;
};

// Not named *Record: pointers are unrestricted here.
struct RingCursor {
  const DebugRecord* at = nullptr;
};
