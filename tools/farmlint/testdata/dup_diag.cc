// Fixture: two hazards on one line must collapse into a single diagnostic
// (de-duplication on (line, rule)).

Task<int> TwoOnOneLine() {
  const Row* a = table_.data(); const Row* b = table_.data();
  co_await Suspend();
  co_return a->version + b->version;
}
