// Fixture: classic include guard; must produce no diagnostics.
#ifndef TOOLS_FARMLINT_TESTDATA_GOOD_GUARD_H_
#define TOOLS_FARMLINT_TESTDATA_GOOD_GUARD_H_

#include <cstdint>

inline uint64_t Twice(uint64_t x) { return x * 2; }

#endif  // TOOLS_FARMLINT_TESTDATA_GOOD_GUARD_H_
