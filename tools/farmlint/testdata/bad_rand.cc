// Fixture: every statement here must trigger the raw-rand rule.
#include <cstdlib>
#include <random>

int Violations() {
  std::random_device rd;                 // raw-rand
  std::mt19937 gen(rd());                // raw-rand (x2: mt19937 + rd use is decl-only)
  std::default_random_engine eng;        // raw-rand
  srand(42);                             // raw-rand
  int x = rand();                        // raw-rand
  x += std::rand();                      // raw-rand
  return x + static_cast<int>(gen()) + static_cast<int>(eng());
}
