// Fixture: real violations silenced by farmlint: allow comments, both
// trailing and preceding-line forms. Must produce no diagnostics.
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

uint64_t Suppressed() {
  int noise = rand();  // farmlint: allow(raw-rand): fixture exercises trailing allow
  std::unordered_map<uint64_t, uint64_t> m;
  m[1] = 2;
  uint64_t sum = static_cast<uint64_t>(noise);
  // farmlint: allow(unordered-iter): fixture exercises preceding-line allow
  for (const auto& [k, v] : m) {
    sum += k + v;
  }
  // farmlint: allow(raw-rand): a multi-line justification comment must keep
  // covering until the first line of actual code, i.e. the srand below.
  srand(7);
  return sum;
}
