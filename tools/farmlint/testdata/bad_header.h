// Fixture: header with no include guard and a using-directive.
#include <vector>

using namespace std;  // using-namespace-header

inline int Twice(int x) { return x * 2; }
