// Fixture: declares an unordered LOCAL named `scratch`. Because it has no
// trailing underscore it is not a member, so the name must not taint other
// files that use `scratch` for an ordered container (see local_scope_b.cc).
#include <cstdint>
#include <unordered_map>

uint64_t LocalA() {
  std::unordered_map<uint64_t, uint64_t> scratch;
  scratch[1] = 2;
  return scratch.count(1);
}
