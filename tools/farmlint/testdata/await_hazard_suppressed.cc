// Fixture: hazard shapes with justified allow comments; must be clean.

Task<int> PinnedEpoch(int region) {
  // The caller holds a config epoch pin for the whole transaction, so the
  // placement table cannot be freed while this coroutine is parked.
  // farmlint: allow(await-hazard): epoch pinned by caller for the txn
  const RegionPlacement* p = config_.Placement(region);
  co_await Suspend();
  co_return p->primary;
}

Task<int> TrailingForm(int key) {
  auto it = index_.find(key);  // farmlint: allow(await-hazard): index_ is append-only
  co_await Suspend();
  co_return it->second;
}
