// Fixture: under configdir/.farmlint, declaring an unordered container
// fires unordered-decl, while the ptr-key below is disabled by config.
#include <cstdint>
#include <map>
#include <unordered_map>

int ConfigScoped() {
  std::unordered_map<uint64_t, int> m;   // unordered-decl (enabled by .farmlint)
  std::map<int*, int> p;                 // ptr-key, but disabled by .farmlint
  return static_cast<int>(m.size() + p.size());
}
