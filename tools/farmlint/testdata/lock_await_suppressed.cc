// Fixture: a justified lock held across a suspension; must be clean.
#include <mutex>

Task<void> CheckpointExclusion() {
  // Checkpointing must exclude all writers across the flush await; the
  // simulator runs one task at a time so this cannot deadlock.
  // farmlint: allow(lock-across-await): checkpoint needs writer exclusion
  std::lock_guard<std::mutex> g(mu_);
  co_await FlushAll();
}
