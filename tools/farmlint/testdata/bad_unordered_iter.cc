// Fixture: iterating unordered containers must trigger unordered-iter.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

uint64_t Violations() {
  std::unordered_map<uint64_t, uint64_t> counts;
  std::unordered_set<uint64_t> seen;
  counts[1] = 2;
  seen.insert(3);
  uint64_t sum = 0;
  for (const auto& [k, v] : counts) {  // unordered-iter (range-for)
    sum += k + v;
  }
  for (uint64_t v : seen) {  // unordered-iter (range-for)
    sum += v;
  }
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // unordered-iter (.begin())
    sum += it->second;
  }
  // Keyed lookups are fine: no diagnostic for these.
  sum += counts.count(7);
  auto found = counts.find(1);
  if (found != counts.end()) {
    sum += found->second;
  }
  return sum;
}
