// Fixture: lock guards correctly scoped to end before the suspension point;
// must be clean.
#include <mutex>

Task<void> ScopedGuard() {
  {
    std::lock_guard<std::mutex> g(mu_);
    state_ = 1;
  }  // guard released here, before suspending
  co_await Suspend();
}

void NoSuspension() {
  std::lock_guard<std::mutex> g(mu_);  // not a coroutine: fine
  state_ = 2;
}

Task<void> GuardAfterAwait() {
  co_await Suspend();
  std::lock_guard<std::mutex> g(mu_);  // taken after the last suspension: fine
  state_ = 3;
}
