// Fixture: named rand.cc, so the raw-rand exemption for the repository's
// RNG implementation applies. Must produce no raw-rand diagnostics.
#include <random>

unsigned Exempt() {
  std::mt19937 gen(12345);  // allowed here: this is the RNG implementation file
  return gen();
}
