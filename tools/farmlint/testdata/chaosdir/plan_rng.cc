// Fixture for the chaos-rng rule: Pcg32 streams in chaos code must be
// seeded from the plan seed, never from hard-coded literals.
#include <cstdint>

struct Pcg32 {
  explicit Pcg32(uint64_t seed, uint64_t stream = 0);
};
uint64_t HashCombine(uint64_t a, uint64_t b);

void Good(uint64_t seed) {
  constexpr uint64_t kStream = 0xc4a05c4a05ULL;
  Pcg32 plan_rng(seed, kStream);                  // seed is plan-derived: ok
  Pcg32 derived(HashCombine(seed, 0x77ULL));      // derivation call: ok
  (void)plan_rng;
  (void)derived;
}

void Bad() {
  Pcg32 adhoc(42);        // literal seed: not replayable from a dumped plan
  Pcg32 braced{0x1234};   // brace-init literal seed
  (void)adhoc;
  (void)braced;
}
