// Fixture: the exact shape of the PR 4 use-after-free in Node::ResolveRef.
// config_.Placement() returns a pointer into the current configuration;
// reconfiguration frees the old configuration while this coroutine sleeps,
// so reading `p` after SleepFor resumed dereferenced freed memory.
// await-hazard must flag this.

Task<RefState> ResolveRef(RegionId region) {
  const RegionPlacement* p = config_.Placement(region);
  while (p->primary != id_) {
    co_await SleepFor(backoff_);
  }
  co_return RefState{p->primary, p->epoch};
}
