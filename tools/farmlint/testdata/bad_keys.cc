// Fixture: pointer-keyed and float-keyed associative containers.
#include <map>
#include <set>

struct Obj {
  int x = 0;
};

int Violations() {
  std::map<Obj*, int> by_ptr;            // ptr-key
  std::set<const Obj*> ptr_set;          // ptr-key
  std::map<double, int> by_double;       // float-key
  std::set<float> by_float;              // float-key
  std::map<int, Obj*> ptr_values_ok;     // fine: pointer is the value
  std::set<long> longs_ok;               // fine
  by_double[1.5] = 2;
  return static_cast<int>(by_ptr.size() + ptr_set.size() + by_double.size() +
                          by_float.size() + ptr_values_ok.size() + longs_ok.size());
}
