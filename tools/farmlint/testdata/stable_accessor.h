// Fixture: header declaring an accessor whose results are await-stable. The
// annotation below is indexed by CollectDeclarations and exempts Placement()
// calls on PinnedConfig in every linted file.
#ifndef TOOLS_FARMLINT_TESTDATA_STABLE_ACCESSOR_H_
#define TOOLS_FARMLINT_TESTDATA_STABLE_ACCESSOR_H_

struct PinnedConfig {
  // Every in-flight transaction holds a refcount on this configuration, so
  // placement pointers stay valid across suspension.
  // farmlint: stable
  const RegionPlacement* Placement(int region) const;
};

#endif  // TOOLS_FARMLINT_TESTDATA_STABLE_ACCESSOR_H_
