// farmlint's own tests: lexer unit tests plus fixture files under testdata/
// that must (or must not) trigger specific rules.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/farmlint/driver.h"
#include "tools/farmlint/lexer.h"
#include "tools/farmlint/rules.h"

namespace farmlint {
namespace {

std::string Testdata(const std::string& name) {
  return std::string(FARMLINT_TESTDATA) + "/" + name;
}

FileConfig DefaultRules() {
  FileConfig config;
  for (const RuleInfo& r : AllRules()) {
    if (r.default_on) {
      config.rules.insert(r.name);
    }
  }
  config.await = DefaultAwaitConfig();
  return config;
}

// Lints one fixture (collecting declarations from `extra_decl_files` first)
// and returns rule -> count.
std::map<std::string, int> LintFixture(const std::string& name,
                                       const FileConfig& config,
                                       const std::vector<std::string>& extra_decl_files = {}) {
  Linter linter;
  std::vector<FileInput> inputs;
  for (const std::string& extra : extra_decl_files) {
    FileInput in;
    EXPECT_TRUE(LoadFile(Testdata(extra), &in)) << extra;
    linter.CollectDeclarations(in);
  }
  FileInput target;
  EXPECT_TRUE(LoadFile(Testdata(name), &target)) << name;
  linter.CollectDeclarations(target);
  std::map<std::string, int> hits;
  for (const Diagnostic& d : linter.Lint(target, config)) {
    hits[d.rule]++;
  }
  return hits;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesIdentifiersStringsAndComments) {
  auto toks = Lex("int x = rand(); // trailing\n\"rand()\" /* block */");
  // 0:int 1:x 2:= 3:rand 4:( 5:) 6:; 7:comment 8:string 9:comment 10:eof
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[3].text, "rand");
  EXPECT_EQ(toks[3].line, 1);
  EXPECT_EQ(toks[7].kind, TokKind::kComment);
  EXPECT_EQ(toks[8].kind, TokKind::kString);
  EXPECT_EQ(toks[8].line, 2);
  EXPECT_EQ(toks[9].kind, TokKind::kComment);
}

TEST(LexerTest, BannedNamesInsideStringsStayStrings) {
  auto toks = Lex("const char* s = \"time(nullptr) rand()\";");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LexerTest, RawStringsAreOneToken) {
  auto toks = Lex("auto s = R\"(rand() \" unclosed)\"; int after = 1;");
  bool saw_after = false;
  for (const Token& t : toks) {
    if (t.text == "after") {
      saw_after = true;
    }
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_TRUE(saw_after);
}

TEST(LexerTest, IncludeHeaderNameIsOneToken) {
  auto toks = Lex("#include <unordered_map>\nint x;");
  bool saw_header = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString && t.text == "<unordered_map>") {
      saw_header = true;
    }
    EXPECT_NE(t.text, "unordered_map");
  }
  EXPECT_TRUE(saw_header);
}

TEST(LexerTest, DirectiveTokensAreMarked) {
  auto toks = Lex("#ifndef FOO_H_\n#define FOO_H_\nint x;\n#endif\n");
  ASSERT_GT(toks.size(), 3u);
  EXPECT_TRUE(toks[1].in_directive);  // ifndef
  EXPECT_EQ(toks[1].text, "ifndef");
  bool x_in_directive = true;
  for (const Token& t : toks) {
    if (t.text == "x") {
      x_in_directive = t.in_directive;
    }
  }
  EXPECT_FALSE(x_in_directive);
}

// ---------------------------------------------------------------------------
// Rules on fixtures
// ---------------------------------------------------------------------------

TEST(RuleFixtureTest, WallClock) {
  auto hits = LintFixture("bad_wallclock.cc", DefaultRules());
  EXPECT_EQ(hits["wall-clock"], 7);
  EXPECT_EQ(hits.size(), 1u) << "only wall-clock may fire";
}

TEST(RuleFixtureTest, RawRand) {
  auto hits = LintFixture("bad_rand.cc", DefaultRules());
  EXPECT_EQ(hits["raw-rand"], 6);
  EXPECT_EQ(hits.size(), 1u) << "only raw-rand may fire";
}

TEST(RuleFixtureTest, UnorderedIter) {
  auto hits = LintFixture("bad_unordered_iter.cc", DefaultRules());
  EXPECT_EQ(hits["unordered-iter"], 3);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(RuleFixtureTest, UnorderedIterAcrossFiles) {
  // The member is declared in the header; the iteration lives in the .cc.
  auto hits = LintFixture("cross_file_iter.cc", DefaultRules(), {"cross_file_decl.h"});
  EXPECT_EQ(hits["unordered-iter"], 1);
}

TEST(RuleFixtureTest, UnorderedLocalsDoNotTaintOtherFiles) {
  // local_scope_a.cc declares an unordered local `scratch`; local_scope_b.cc
  // iterates an ordered std::map with the same name. Only members (trailing
  // underscore) are matched across files.
  EXPECT_TRUE(LintFixture("local_scope_b.cc", DefaultRules(), {"local_scope_a.cc"}).empty());
  auto hits = LintFixture("local_scope_a.cc", DefaultRules());
  EXPECT_TRUE(hits.empty()) << "declaring (without iterating) is fine by default";
}

TEST(RuleFixtureTest, PointerAndFloatKeys) {
  auto hits = LintFixture("bad_keys.cc", DefaultRules());
  EXPECT_EQ(hits["ptr-key"], 2);
  EXPECT_EQ(hits["float-key"], 2);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RuleFixtureTest, HeaderHygiene) {
  auto hits = LintFixture("bad_header.h", DefaultRules());
  EXPECT_EQ(hits["include-guard"], 1);
  EXPECT_EQ(hits["using-namespace-header"], 1);
}

TEST(RuleFixtureTest, GuardedHeadersAreClean) {
  EXPECT_TRUE(LintFixture("good_guard.h", DefaultRules()).empty());
  EXPECT_TRUE(LintFixture("good_pragma.h", DefaultRules()).empty());
}

TEST(RuleFixtureTest, CleanFileHasNoFindings) {
  EXPECT_TRUE(LintFixture("good_clean.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, AllowCommentsSuppress) {
  EXPECT_TRUE(LintFixture("good_suppressed.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, RandImplementationFileIsExempt) {
  EXPECT_TRUE(LintFixture("rand.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, UnorderedDeclIsOffByDefault) {
  auto hits = LintFixture("configdir/decl_only.cc", DefaultRules());
  EXPECT_EQ(hits.count("unordered-decl"), 0u);
  EXPECT_EQ(hits["ptr-key"], 1);  // default rules: ptr-key still on
}

TEST(RuleFixtureTest, ChaosRngIsOffByDefault) {
  auto hits = LintFixture("chaosdir/plan_rng.cc", DefaultRules());
  EXPECT_EQ(hits.count("chaos-rng"), 0u);
}

TEST(RuleFixtureTest, RecorderPodFlagsNonPodRecords) {
  auto hits = LintFixture("recorder_bad.cc", DefaultRules());
  EXPECT_EQ(hits["recorder-pod"], 4);
  EXPECT_EQ(hits.size(), 1u) << "only recorder-pod may fire";
}

TEST(RuleFixtureTest, RecorderPodAllowsFlatRecords) {
  EXPECT_TRUE(LintFixture("recorder_good.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, ChaosRngFlagsLiteralSeeds) {
  FileConfig config = DefaultRules();
  config.rules.insert("chaos-rng");
  auto hits = LintFixture("chaosdir/plan_rng.cc", config);
  EXPECT_EQ(hits["chaos-rng"], 2);
  EXPECT_EQ(hits.size(), 1u) << "plan-derived seeds must not fire";
}

// ---------------------------------------------------------------------------
// Await-safety rules (scope/flow-aware analyzer)
// ---------------------------------------------------------------------------

TEST(AwaitRuleTest, AwaitHazardTriple) {
  auto bad = LintFixture("await_hazard_bad.cc", DefaultRules());
  EXPECT_GE(bad["await-hazard"], 4) << "pointer, iterator, reference, subscript";
  EXPECT_EQ(bad.size(), 1u) << "only await-hazard may fire";
  EXPECT_TRUE(LintFixture("await_hazard_good.cc", DefaultRules()).empty());
  EXPECT_TRUE(LintFixture("await_hazard_suppressed.cc", DefaultRules()).empty());
}

TEST(AwaitRuleTest, ResolveRefPatternIsCaught) {
  // The exact shape of the PR 4 use-after-free in Node::ResolveRef: a
  // RegionPlacement* from config_.Placement() held across co_await while
  // reconfiguration frees the old config.
  auto hits = LintFixture("resolve_ref_uaf.cc", DefaultRules());
  EXPECT_GE(hits["await-hazard"], 1);
}

TEST(AwaitRuleTest, LockAcrossAwaitTriple) {
  auto bad = LintFixture("lock_await_bad.cc", DefaultRules());
  EXPECT_GE(bad["lock-across-await"], 2);
  EXPECT_EQ(bad.size(), 1u) << "only lock-across-await may fire";
  EXPECT_TRUE(LintFixture("lock_await_good.cc", DefaultRules()).empty());
  EXPECT_TRUE(LintFixture("lock_await_suppressed.cc", DefaultRules()).empty());
}

TEST(AwaitRuleTest, IteratorInvalidateTriple) {
  auto bad = LintFixture("iter_invalidate_bad.cc", DefaultRules());
  EXPECT_GE(bad["iterator-invalidate"], 2);
  EXPECT_EQ(bad.size(), 1u) << "only iterator-invalidate may fire";
  EXPECT_TRUE(LintFixture("iter_invalidate_good.cc", DefaultRules()).empty());
  EXPECT_TRUE(LintFixture("iter_invalidate_suppressed.cc", DefaultRules()).empty());
}

TEST(AwaitRuleTest, StableAnnotationInHeaderExemptsCallers) {
  // stable_accessor.h marks IndexOf() with `// farmlint: stable`; the .cc
  // holds its result across an await, which must then be clean.
  EXPECT_TRUE(
      LintFixture("stable_user.cc", DefaultRules(), {"stable_accessor.h"}).empty());
}

TEST(AwaitRuleTest, BadAllowNamesUnknownRule) {
  auto hits = LintFixture("bad_allow.cc", DefaultRules());
  EXPECT_EQ(hits["bad-allow"], 2) << "unknown rule in allow() + unbindable stable";
}

TEST(AwaitRuleTest, DiagnosticsAreDeduplicated) {
  // dup_diag.cc provokes the same (line, rule) twice; only one report.
  auto hits = LintFixture("dup_diag.cc", DefaultRules());
  EXPECT_EQ(hits["await-hazard"], 1);
}

// ---------------------------------------------------------------------------
// Driver: per-directory config + end-to-end run
// ---------------------------------------------------------------------------

TEST(DriverTest, ConfigDirTogglesRules) {
  FileConfig config =
      ResolveFileConfig(FARMLINT_TESTDATA, Testdata("configdir/decl_only.cc"));
  EXPECT_EQ(config.rules.count("unordered-decl"), 1u);
  EXPECT_EQ(config.rules.count("ptr-key"), 0u);
  EXPECT_EQ(config.rules.count("wall-clock"), 1u);

  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.paths = {Testdata("configdir")};
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 1) << out.str();
  EXPECT_NE(out.str().find("unordered-decl"), std::string::npos) << out.str();
}

TEST(DriverTest, DiscoverSkipsNonSource) {
  auto files = DiscoverFiles({Testdata("configdir")});
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("decl_only.cc"), std::string::npos);
}

TEST(DriverTest, ChaosDirEnablesChaosRng) {
  FileConfig config =
      ResolveFileConfig(FARMLINT_TESTDATA, Testdata("chaosdir/plan_rng.cc"));
  EXPECT_EQ(config.rules.count("chaos-rng"), 1u);

  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.paths = {Testdata("chaosdir")};
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 2) << out.str();
  EXPECT_NE(out.str().find("chaos-rng"), std::string::npos) << out.str();
}

TEST(DriverTest, KnownRuleNames) {
  EXPECT_TRUE(IsKnownRule("wall-clock"));
  EXPECT_TRUE(IsKnownRule("unordered-iter"));
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
  EXPECT_TRUE(IsKnownRule("chaos-rng"));
  EXPECT_TRUE(IsKnownRule("recorder-pod"));
  EXPECT_TRUE(IsKnownRule("await-hazard"));
  EXPECT_TRUE(IsKnownRule("lock-across-await"));
  EXPECT_TRUE(IsKnownRule("iterator-invalidate"));
  EXPECT_TRUE(IsKnownRule("bad-allow"));
}

TEST(DriverTest, AwaitConfigVerbs) {
  // testdata/awaitdir/.farmlint: unstable RawSlot pointer, stable Placement,
  // guard SpinGuard.
  FileConfig config =
      ResolveFileConfig(FARMLINT_TESTDATA, Testdata("awaitdir/custom.cc"));
  ASSERT_EQ(config.await.unstable.count("RawSlot"), 1u);
  EXPECT_EQ(config.await.unstable.at("RawSlot"), Yield::kPointer);
  EXPECT_EQ(config.await.unstable.count("Placement"), 0u);
  EXPECT_EQ(config.await.guards.count("SpinGuard"), 1u);

  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.paths = {Testdata("awaitdir")};
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 2) << out.str();
  EXPECT_NE(out.str().find("await-hazard"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("lock-across-await"), std::string::npos) << out.str();
}

// Writes a compile_commands.json into the test's scratch directory. Entries
// need absolute testdata paths, so the database is generated at runtime.
std::string WriteCompDb() {
  std::string path = ::testing::TempDir() + "farmlint_compile_commands.json";
  std::ofstream db(path);
  db << "[\n"
     << "  {\n"
     << "    \"directory\": \"" << Testdata("configdir") << "\",\n"
     << "    \"command\": \"c++ -c decl_only.cc -o decl_only.o\",\n"
     << "    \"file\": \"decl_only.cc\"\n"
     << "  },\n"
     << "  {\n"
     << "    \"directory\": \"/\",\n"
     << "    \"command\": \"c++ -c /nonexistent/outside_root.cc\",\n"
     << "    \"file\": \"/nonexistent/outside_root.cc\"\n"
     << "  },\n"
     << "  {\n"
     << "    \"directory\": \"" << FARMLINT_TESTDATA << "\",\n"
     << "    \"command\": \"c++ -c deleted_since_configure.cc\",\n"
     << "    \"file\": \"deleted_since_configure.cc\"\n"
     << "  }\n"
     << "]\n";
  return path;
}

TEST(DriverTest, FilesFromCompDb) {
  // The database lists configdir/decl_only.cc (relative to its "directory"
  // entry), one file outside root, and one missing file; only the first
  // survives.
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(FilesFromCompDb(WriteCompDb(), FARMLINT_TESTDATA, &files, &error)) << error;
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("decl_only.cc"), std::string::npos);

  std::string empty_path = ::testing::TempDir() + "farmlint_empty_compdb.json";
  std::ofstream(empty_path) << "[]\n";
  std::vector<std::string> none;
  EXPECT_FALSE(FilesFromCompDb(empty_path, FARMLINT_TESTDATA, &none, &error));
  EXPECT_FALSE(FilesFromCompDb(Testdata("no_such_compdb.json"), FARMLINT_TESTDATA,
                               &none, &error));
}

TEST(DriverTest, CompDbDrivesLintRun) {
  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.compdb = WriteCompDb();
  options.paths = {Testdata("configdir")};  // globbed for headers only (none)
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 1) << out.str();
  EXPECT_NE(out.str().find("unordered-decl"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace farmlint
