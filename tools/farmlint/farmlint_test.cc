// farmlint's own tests: lexer unit tests plus fixture files under testdata/
// that must (or must not) trigger specific rules.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/farmlint/driver.h"
#include "tools/farmlint/lexer.h"
#include "tools/farmlint/rules.h"

namespace farmlint {
namespace {

std::string Testdata(const std::string& name) {
  return std::string(FARMLINT_TESTDATA) + "/" + name;
}

std::set<std::string> DefaultRules() {
  std::set<std::string> enabled;
  for (const RuleInfo& r : AllRules()) {
    if (r.default_on) {
      enabled.insert(r.name);
    }
  }
  return enabled;
}

// Lints one fixture (collecting declarations from `extra_decl_files` first)
// and returns rule -> count.
std::map<std::string, int> LintFixture(const std::string& name,
                                       const std::set<std::string>& enabled,
                                       const std::vector<std::string>& extra_decl_files = {}) {
  Linter linter;
  std::vector<FileInput> inputs;
  for (const std::string& extra : extra_decl_files) {
    FileInput in;
    EXPECT_TRUE(LoadFile(Testdata(extra), &in)) << extra;
    linter.CollectDeclarations(in);
  }
  FileInput target;
  EXPECT_TRUE(LoadFile(Testdata(name), &target)) << name;
  linter.CollectDeclarations(target);
  std::map<std::string, int> hits;
  for (const Diagnostic& d : linter.Lint(target, enabled)) {
    hits[d.rule]++;
  }
  return hits;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesIdentifiersStringsAndComments) {
  auto toks = Lex("int x = rand(); // trailing\n\"rand()\" /* block */");
  // 0:int 1:x 2:= 3:rand 4:( 5:) 6:; 7:comment 8:string 9:comment 10:eof
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[3].text, "rand");
  EXPECT_EQ(toks[3].line, 1);
  EXPECT_EQ(toks[7].kind, TokKind::kComment);
  EXPECT_EQ(toks[8].kind, TokKind::kString);
  EXPECT_EQ(toks[8].line, 2);
  EXPECT_EQ(toks[9].kind, TokKind::kComment);
}

TEST(LexerTest, BannedNamesInsideStringsStayStrings) {
  auto toks = Lex("const char* s = \"time(nullptr) rand()\";");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LexerTest, RawStringsAreOneToken) {
  auto toks = Lex("auto s = R\"(rand() \" unclosed)\"; int after = 1;");
  bool saw_after = false;
  for (const Token& t : toks) {
    if (t.text == "after") {
      saw_after = true;
    }
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_TRUE(saw_after);
}

TEST(LexerTest, IncludeHeaderNameIsOneToken) {
  auto toks = Lex("#include <unordered_map>\nint x;");
  bool saw_header = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString && t.text == "<unordered_map>") {
      saw_header = true;
    }
    EXPECT_NE(t.text, "unordered_map");
  }
  EXPECT_TRUE(saw_header);
}

TEST(LexerTest, DirectiveTokensAreMarked) {
  auto toks = Lex("#ifndef FOO_H_\n#define FOO_H_\nint x;\n#endif\n");
  ASSERT_GT(toks.size(), 3u);
  EXPECT_TRUE(toks[1].in_directive);  // ifndef
  EXPECT_EQ(toks[1].text, "ifndef");
  bool x_in_directive = true;
  for (const Token& t : toks) {
    if (t.text == "x") {
      x_in_directive = t.in_directive;
    }
  }
  EXPECT_FALSE(x_in_directive);
}

// ---------------------------------------------------------------------------
// Rules on fixtures
// ---------------------------------------------------------------------------

TEST(RuleFixtureTest, WallClock) {
  auto hits = LintFixture("bad_wallclock.cc", DefaultRules());
  EXPECT_EQ(hits["wall-clock"], 7);
  EXPECT_EQ(hits.size(), 1u) << "only wall-clock may fire";
}

TEST(RuleFixtureTest, RawRand) {
  auto hits = LintFixture("bad_rand.cc", DefaultRules());
  EXPECT_EQ(hits["raw-rand"], 6);
  EXPECT_EQ(hits.size(), 1u) << "only raw-rand may fire";
}

TEST(RuleFixtureTest, UnorderedIter) {
  auto hits = LintFixture("bad_unordered_iter.cc", DefaultRules());
  EXPECT_EQ(hits["unordered-iter"], 3);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(RuleFixtureTest, UnorderedIterAcrossFiles) {
  // The member is declared in the header; the iteration lives in the .cc.
  auto hits = LintFixture("cross_file_iter.cc", DefaultRules(), {"cross_file_decl.h"});
  EXPECT_EQ(hits["unordered-iter"], 1);
}

TEST(RuleFixtureTest, UnorderedLocalsDoNotTaintOtherFiles) {
  // local_scope_a.cc declares an unordered local `scratch`; local_scope_b.cc
  // iterates an ordered std::map with the same name. Only members (trailing
  // underscore) are matched across files.
  EXPECT_TRUE(LintFixture("local_scope_b.cc", DefaultRules(), {"local_scope_a.cc"}).empty());
  auto hits = LintFixture("local_scope_a.cc", DefaultRules());
  EXPECT_TRUE(hits.empty()) << "declaring (without iterating) is fine by default";
}

TEST(RuleFixtureTest, PointerAndFloatKeys) {
  auto hits = LintFixture("bad_keys.cc", DefaultRules());
  EXPECT_EQ(hits["ptr-key"], 2);
  EXPECT_EQ(hits["float-key"], 2);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RuleFixtureTest, HeaderHygiene) {
  auto hits = LintFixture("bad_header.h", DefaultRules());
  EXPECT_EQ(hits["include-guard"], 1);
  EXPECT_EQ(hits["using-namespace-header"], 1);
}

TEST(RuleFixtureTest, GuardedHeadersAreClean) {
  EXPECT_TRUE(LintFixture("good_guard.h", DefaultRules()).empty());
  EXPECT_TRUE(LintFixture("good_pragma.h", DefaultRules()).empty());
}

TEST(RuleFixtureTest, CleanFileHasNoFindings) {
  EXPECT_TRUE(LintFixture("good_clean.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, AllowCommentsSuppress) {
  EXPECT_TRUE(LintFixture("good_suppressed.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, RandImplementationFileIsExempt) {
  EXPECT_TRUE(LintFixture("rand.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, UnorderedDeclIsOffByDefault) {
  auto hits = LintFixture("configdir/decl_only.cc", DefaultRules());
  EXPECT_EQ(hits.count("unordered-decl"), 0u);
  EXPECT_EQ(hits["ptr-key"], 1);  // default rules: ptr-key still on
}

TEST(RuleFixtureTest, ChaosRngIsOffByDefault) {
  auto hits = LintFixture("chaosdir/plan_rng.cc", DefaultRules());
  EXPECT_EQ(hits.count("chaos-rng"), 0u);
}

TEST(RuleFixtureTest, RecorderPodFlagsNonPodRecords) {
  auto hits = LintFixture("recorder_bad.cc", DefaultRules());
  EXPECT_EQ(hits["recorder-pod"], 4);
  EXPECT_EQ(hits.size(), 1u) << "only recorder-pod may fire";
}

TEST(RuleFixtureTest, RecorderPodAllowsFlatRecords) {
  EXPECT_TRUE(LintFixture("recorder_good.cc", DefaultRules()).empty());
}

TEST(RuleFixtureTest, ChaosRngFlagsLiteralSeeds) {
  std::set<std::string> enabled = DefaultRules();
  enabled.insert("chaos-rng");
  auto hits = LintFixture("chaosdir/plan_rng.cc", enabled);
  EXPECT_EQ(hits["chaos-rng"], 2);
  EXPECT_EQ(hits.size(), 1u) << "plan-derived seeds must not fire";
}

// ---------------------------------------------------------------------------
// Driver: per-directory config + end-to-end run
// ---------------------------------------------------------------------------

TEST(DriverTest, ConfigDirTogglesRules) {
  std::set<std::string> enabled =
      ResolveEnabledRules(FARMLINT_TESTDATA, Testdata("configdir/decl_only.cc"));
  EXPECT_EQ(enabled.count("unordered-decl"), 1u);
  EXPECT_EQ(enabled.count("ptr-key"), 0u);
  EXPECT_EQ(enabled.count("wall-clock"), 1u);

  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.paths = {Testdata("configdir")};
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 1) << out.str();
  EXPECT_NE(out.str().find("unordered-decl"), std::string::npos) << out.str();
}

TEST(DriverTest, DiscoverSkipsNonSource) {
  auto files = DiscoverFiles({Testdata("configdir")});
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("decl_only.cc"), std::string::npos);
}

TEST(DriverTest, ChaosDirEnablesChaosRng) {
  std::set<std::string> enabled =
      ResolveEnabledRules(FARMLINT_TESTDATA, Testdata("chaosdir/plan_rng.cc"));
  EXPECT_EQ(enabled.count("chaos-rng"), 1u);

  DriverOptions options;
  options.root = FARMLINT_TESTDATA;
  options.paths = {Testdata("chaosdir")};
  std::ostringstream out;
  int n = RunFarmlint(options, out);
  EXPECT_EQ(n, 2) << out.str();
  EXPECT_NE(out.str().find("chaos-rng"), std::string::npos) << out.str();
}

TEST(DriverTest, KnownRuleNames) {
  EXPECT_TRUE(IsKnownRule("wall-clock"));
  EXPECT_TRUE(IsKnownRule("unordered-iter"));
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
  EXPECT_TRUE(IsKnownRule("chaos-rng"));
  EXPECT_TRUE(IsKnownRule("recorder-pod"));
}

}  // namespace
}  // namespace farmlint
