#include "tools/farmlint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace farmlint {
namespace fs = std::filesystem;
namespace {

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

bool IsSkippedDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name == "build" || name == "testdata" ||
         name == "third_party";
}

// Applies one `.farmlint` file to the rule set. Unknown rule names are
// ignored (forward compatibility with configs written for newer farmlints).
void ApplyConfig(const fs::path& config, std::set<std::string>* enabled) {
  std::ifstream in(config);
  if (!in) {
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string verb;
    std::string rule;
    if (!(ls >> verb) || verb[0] == '#') {
      continue;
    }
    ls >> rule;
    if (verb == "enable" && IsKnownRule(rule)) {
      enabled->insert(rule);
    } else if (verb == "disable" && IsKnownRule(rule)) {
      enabled->erase(rule);
    }
  }
}

}  // namespace

std::vector<std::string> DiscoverFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) {
          break;
        }
        if (it->is_directory() && IsSkippedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path().lexically_normal().generic_string());
        }
      }
    } else {
      files.push_back(fs::path(p).lexically_normal().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::set<std::string> ResolveEnabledRules(const std::string& root, const std::string& file) {
  std::set<std::string> enabled;
  for (const RuleInfo& r : AllRules()) {
    if (r.default_on) {
      enabled.insert(r.name);
    }
  }
  // Collect the directory chain root -> file's directory. If the file is not
  // under root, only its own directory's config applies.
  fs::path abs_root = fs::absolute(root).lexically_normal();
  fs::path dir = fs::absolute(fs::path(file)).parent_path().lexically_normal();
  std::vector<fs::path> chain;
  for (fs::path d = dir; !d.empty(); d = d.parent_path()) {
    chain.push_back(d);
    if (d == abs_root || d == d.parent_path()) {
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());
  if (chain.front() != abs_root) {
    chain = {dir};
  }
  for (const fs::path& d : chain) {
    ApplyConfig(d / ".farmlint", &enabled);
  }
  return enabled;
}

bool LoadFile(const std::string& path, FileInput* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string source = buf.str();
  out->path = path;
  fs::path p(path);
  std::string ext = p.extension().string();
  out->is_header = ext == ".h" || ext == ".hpp";
  out->basename = p.filename().string();
  out->tokens = Lex(source);
  return true;
}

int RunFarmlint(const DriverOptions& options, std::ostream& out) {
  std::vector<std::string> files = DiscoverFiles(options.paths);
  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  Linter linter;
  for (const std::string& f : files) {
    FileInput input;
    if (!LoadFile(f, &input)) {
      out << f << ":1:1: error: [driver] cannot read file\n";
      continue;
    }
    linter.CollectDeclarations(input);
    inputs.push_back(std::move(input));
  }
  int count = 0;
  for (const FileInput& input : inputs) {
    std::set<std::string> enabled = ResolveEnabledRules(options.root, input.path);
    for (const Diagnostic& d : linter.Lint(input, enabled)) {
      out << d.ToString() << "\n";
      count++;
    }
  }
  return count;
}

}  // namespace farmlint
