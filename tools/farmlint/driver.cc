#include "tools/farmlint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace farmlint {
namespace fs = std::filesystem;
namespace {

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

bool IsHeaderFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

bool IsSkippedDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name == "build" || name == "testdata" ||
         name == "third_party";
}

// Applies one `.farmlint` file to the config. Unknown rule names are
// ignored (forward compatibility with configs written for newer farmlints).
// Besides `enable <rule>` / `disable <rule>`, the await-safety lists are
// tunable: `unstable <accessor> [pointer|iterator|reference]` adds an
// accessor, `stable <accessor>` removes one, `guard <Type>` adds an RAII
// guard type.
void ApplyConfig(const fs::path& config_path, FileConfig* config) {
  std::ifstream in(config_path);
  if (!in) {
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string verb;
    std::string arg;
    if (!(ls >> verb) || verb[0] == '#') {
      continue;
    }
    ls >> arg;
    if (verb == "enable" && IsKnownRule(arg)) {
      config->rules.insert(arg);
    } else if (verb == "disable" && IsKnownRule(arg)) {
      config->rules.erase(arg);
    } else if (verb == "unstable" && !arg.empty()) {
      std::string yield;
      ls >> yield;
      Yield y = Yield::kPointer;
      if (yield == "iterator") {
        y = Yield::kIterator;
      } else if (yield == "reference") {
        y = Yield::kReference;
      }
      config->await.unstable[arg] = y;
    } else if (verb == "stable" && !arg.empty()) {
      config->await.unstable.erase(arg);
    } else if (verb == "guard" && !arg.empty()) {
      config->await.guards.insert(arg);
    }
  }
}

// Minimal JSON string scanner for compile_commands.json: finds `"key"`
// occurrences and decodes the quoted value that follows the colon. Good
// enough for CMake's escaping (\\ and \" in paths).
bool NextJsonString(const std::string& text, size_t* pos, std::string* out) {
  size_t q = text.find('"', *pos);
  if (q == std::string::npos) {
    return false;
  }
  std::string value;
  size_t i = q + 1;
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) {
      value += text[i + 1];
      i += 2;
    } else {
      value += text[i];
      i += 1;
    }
  }
  if (i >= text.size()) {
    return false;
  }
  *pos = i + 1;
  *out = std::move(value);
  return true;
}

}  // namespace

std::vector<std::string> DiscoverFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) {
          break;
        }
        if (it->is_directory() && IsSkippedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path().lexically_normal().generic_string());
        }
      }
    } else {
      files.push_back(fs::path(p).lexically_normal().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool FilesFromCompDb(const std::string& compdb_path, const std::string& root,
                     std::vector<std::string>* out, std::string* error) {
  std::ifstream in(compdb_path, std::ios::binary);
  if (!in) {
    *error = "cannot read compilation database " + compdb_path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  fs::path abs_root = fs::absolute(root).lexically_normal();
  std::string root_prefix = abs_root.generic_string();
  if (root_prefix.empty() || root_prefix.back() != '/') {
    root_prefix += '/';
  }

  // Split the array into entry objects (brace depth, string-aware), then
  // pull `directory` and `file` out of each (key order is not guaranteed).
  size_t entries = 0;
  int depth = 0;
  bool in_string = false;
  size_t entry_begin = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (++depth == 1) {
        entry_begin = i;
      }
    } else if (c == '}' && depth > 0 && --depth == 0) {
      std::string entry = text.substr(entry_begin, i - entry_begin);
      entries++;
      std::string directory;
      std::string file;
      size_t pos = 0;
      std::string token;
      while (NextJsonString(entry, &pos, &token)) {
        std::string value;
        if ((token == "directory" || token == "file") &&
            NextJsonString(entry, &pos, &value)) {
          (token == "directory" ? directory : file) = value;
        }
      }
      if (file.empty()) {
        continue;
      }
      fs::path p(file);
      if (p.is_relative() && !directory.empty()) {
        p = fs::path(directory) / p;
      }
      p = fs::absolute(p).lexically_normal();
      std::string norm = p.generic_string();
      std::error_code ec;
      if (IsSourceFile(p) && norm.compare(0, root_prefix.size(), root_prefix) == 0 &&
          fs::is_regular_file(p, ec)) {
        out->push_back(norm);
      }
    }
  }
  if (entries == 0) {
    *error = "compilation database " + compdb_path + " contains no entries";
    return false;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

FileConfig ResolveFileConfig(const std::string& root, const std::string& file) {
  FileConfig config;
  for (const RuleInfo& r : AllRules()) {
    if (r.default_on) {
      config.rules.insert(r.name);
    }
  }
  config.await = DefaultAwaitConfig();
  // Collect the directory chain root -> file's directory. If the file is not
  // under root, only its own directory's config applies.
  fs::path abs_root = fs::absolute(root).lexically_normal();
  fs::path dir = fs::absolute(fs::path(file)).parent_path().lexically_normal();
  std::vector<fs::path> chain;
  for (fs::path d = dir; !d.empty(); d = d.parent_path()) {
    chain.push_back(d);
    if (d == abs_root || d == d.parent_path()) {
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());
  if (chain.front() != abs_root) {
    chain = {dir};
  }
  for (const fs::path& d : chain) {
    ApplyConfig(d / ".farmlint", &config);
  }
  return config;
}

bool LoadFile(const std::string& path, FileInput* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string source = buf.str();
  out->path = path;
  fs::path p(path);
  std::string ext = p.extension().string();
  out->is_header = ext == ".h" || ext == ".hpp";
  out->basename = p.filename().string();
  out->tokens = Lex(source);
  return true;
}

int RunFarmlint(const DriverOptions& options, std::ostream& out) {
  std::vector<std::string> files;
  if (!options.compdb.empty()) {
    std::string error;
    if (!FilesFromCompDb(options.compdb, options.root, &files, &error)) {
      out << options.compdb << ":1:1: error: [driver] " << error << "\n";
      return 1;
    }
    // The database lists translation units only; headers still come from
    // the directory walk.
    for (const std::string& f : DiscoverFiles(options.paths)) {
      if (IsHeaderFile(fs::path(f))) {
        files.push_back(fs::absolute(fs::path(f)).lexically_normal().generic_string());
      }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    // Prefer repo-relative display paths when everything is under root.
    fs::path abs_root = fs::absolute(options.root).lexically_normal();
    for (std::string& f : files) {
      std::string rel = fs::path(f).lexically_relative(abs_root).generic_string();
      if (!rel.empty() && rel.compare(0, 2, "..") != 0) {
        f = rel;
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files = DiscoverFiles(options.paths);
  }
  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  Linter linter;
  int count = 0;
  for (const std::string& f : files) {
    FileInput input;
    fs::path load_path = fs::path(f);
    if (load_path.is_relative() && !fs::exists(load_path)) {
      load_path = fs::path(options.root) / load_path;
    }
    if (!LoadFile(load_path.generic_string(), &input)) {
      out << f << ":1:1: error: [driver] cannot read file\n";
      count++;
      continue;
    }
    input.path = f;
    linter.CollectDeclarations(input);
    inputs.push_back(std::move(input));
  }
  for (const FileInput& input : inputs) {
    fs::path resolve_path = fs::path(input.path);
    if (resolve_path.is_relative() && !fs::exists(resolve_path)) {
      resolve_path = fs::path(options.root) / resolve_path;
    }
    FileConfig config = ResolveFileConfig(options.root, resolve_path.generic_string());
    for (const Diagnostic& d : linter.Lint(input, config)) {
      out << d.ToString() << "\n";
      count++;
    }
  }
  return count;
}

}  // namespace farmlint
