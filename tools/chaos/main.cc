// chaos_repro: run seeded chaos sweeps, replay dumped schedules, and
// systematically explore fault points.
//
//   chaos_repro --seed=42            run one seed, print the outcome
//   chaos_repro --sweep=20           run seeds 1..20, fail on first violation
//   chaos_repro --sweep=20 --base=100  sweep seeds 101..120
//   chaos_repro --until-fail=200     run seeds until one fails (exit code
//                                    names the failure class, see below)
//   chaos_repro --plan=FILE          replay a dumped schedule file
//   chaos_repro --explore            fault-point exploration sweep
//     --depth=2                        nested second fault during recovery
//     --machines=5 --horizon-ms=400    per-run sizing
//     --actions=kill,partition         restrict the action set
//     --points=msg-send,ringlog-append restrict the point set
//   chaos_repro --dump-dir=DIR       write failing schedules + event logs +
//                                    postmortems here (liveness timeouts
//                                    dump the watchdog's at-expiry snapshot)
//   chaos_repro --mutate             enable the skip-backup-ack protocol bug
//   chaos_repro --batch              run with data-plane batching enabled
//   chaos_repro --backoff            run with adaptive lock-conflict backoff
//
// Exit status: 0 when every run passes. Failures exit with their class so
// scripts can dispatch without parsing output:
//   1 generic failure (legacy sweep/replay modes)
//   2 bad arguments / unparseable plan
//   3 oracle (consistency invariant violated)
//   4 liveness (cluster stopped committing)
//   5 region-lost (bank region lost its replicas)
//   6 setup (cluster never got off the ground)
// --until-fail, --explore, and --plan replay report class codes; --sweep
// keeps the legacy 0/1 contract for existing CI scripts.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/explore.h"
#include "src/chaos/harness.h"
#include "src/chaos/plan.h"

namespace {

using farm::chaos::ChaosPlan;
using farm::chaos::ChaosRunOptions;
using farm::chaos::ChaosRunResult;
using farm::chaos::ExploreOptions;
using farm::chaos::ExploreResult;
using farm::chaos::FailureClass;
using farm::chaos::FaultAction;

struct Args {
  uint64_t seed = 0;
  int sweep = 0;
  int until_fail = 0;
  uint64_t base = 0;
  std::string plan_file;
  std::string dump_dir;
  bool mutate = false;
  bool batch = false;
  bool backoff = false;
  bool explore = false;
  int depth = 1;
  int machines = 5;
  int horizon_ms = 400;
  std::string actions;  // comma-separated; empty = all
  std::string points;   // comma-separated; empty = all discovered
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* seed = value("--seed=")) {
      out->seed = std::strtoull(seed, nullptr, 10);
    } else if (const char* sweep = value("--sweep=")) {
      out->sweep = std::atoi(sweep);
    } else if (const char* until = value("--until-fail=")) {
      out->until_fail = std::atoi(until);
    } else if (const char* base = value("--base=")) {
      out->base = std::strtoull(base, nullptr, 10);
    } else if (const char* plan = value("--plan=")) {
      out->plan_file = plan;
    } else if (const char* dump = value("--dump-dir=")) {
      out->dump_dir = dump;
    } else if (const char* depth = value("--depth=")) {
      out->depth = std::atoi(depth);
    } else if (const char* machines = value("--machines=")) {
      out->machines = std::atoi(machines);
    } else if (const char* horizon = value("--horizon-ms=")) {
      out->horizon_ms = std::atoi(horizon);
    } else if (const char* actions = value("--actions=")) {
      out->actions = actions;
    } else if (const char* points = value("--points=")) {
      out->points = points;
    } else if (arg == "--explore") {
      out->explore = true;
    } else if (arg == "--mutate") {
      out->mutate = true;
    } else if (arg == "--batch") {
      out->batch = true;
    } else if (arg == "--backoff") {
      out->backoff = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

int ExitCodeFor(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return 0;
    case FailureClass::kOracle:
      return 3;
    case FailureClass::kLiveness:
      return 4;
    case FailureClass::kRegionLost:
      return 5;
    case FailureClass::kSetup:
      return 6;
  }
  return 1;
}

void DumpFailure(const Args& args, const ChaosRunResult& res) {
  if (args.dump_dir.empty()) {
    return;
  }
  std::string base = args.dump_dir + "/chaos-seed-" + std::to_string(res.plan.seed);
  std::ofstream plan_out(base + ".plan");
  plan_out << res.plan.ToText();
  std::ofstream log_out(base + ".log");
  log_out << "failure: " << res.failure << "\n";
  log_out << "class: " << FailureClassName(res.failure_class) << "\n";
  log_out << "commits: " << res.commits << " unknown: " << res.unknown_outcomes << "\n";
  for (const auto& line : res.event_log) {
    log_out << line << "\n";
  }
  if (!res.postmortem.empty()) {
    std::ofstream pm_out(base + ".postmortem");
    pm_out << res.postmortem;
    std::cerr << "dumped " << base << ".postmortem (inspect with txdump)\n";
  }
  std::cerr << "dumped " << base << ".plan (replay with --plan=)\n";
}

bool ReportRun(const Args& args, const ChaosRunResult& res) {
  std::ostringstream events;
  events << res.event_log.size();
  std::cout << "seed " << res.plan.seed << ": " << (res.ok ? "ok" : "FAIL") << " ("
            << res.commits << " commits, " << res.unknown_outcomes << " unknown outcomes, "
            << events.str() << " events)";
  if (!res.ok) {
    std::cout << " [" << FailureClassName(res.failure_class) << "] -- " << res.failure;
  }
  std::cout << "\n";
  if (!res.ok) {
    DumpFailure(args, res);
  }
  return res.ok;
}

int RunExplore(const Args& args) {
  ExploreOptions eo;
  eo.machines = args.machines;
  eo.seed = args.seed == 0 ? 1 : args.seed;
  eo.horizon = static_cast<farm::SimTime>(args.horizon_ms) * farm::kMillisecond;
  eo.max_depth = args.depth;
  eo.mutate_skip_backup_ack = args.mutate;
  eo.batch_data_plane = args.batch;
  eo.adaptive_backoff = args.backoff;
  eo.points = SplitCommas(args.points);
  if (!args.actions.empty()) {
    eo.actions.clear();
    for (const std::string& name : SplitCommas(args.actions)) {
      FaultAction a;
      if (!farm::chaos::FaultActionFromName(name, &a)) {
        std::cerr << "unknown action: " << name << "\n";
        return 2;
      }
      eo.actions.push_back(a);
    }
  }
  farm::metrics::Registry coverage;
  eo.metrics = &coverage;
  eo.progress = [](const std::string& line) { std::cout << line << "\n"; };

  ExploreResult res = farm::chaos::Explore(eo);
  std::cout << res.Report();
  std::cout << coverage.ToText();

  if (!args.dump_dir.empty()) {
    for (size_t i = 0; i < res.failing.size(); i++) {
      const auto& f = res.failing[i];
      std::string base = args.dump_dir + "/explore-fail-" + std::to_string(i);
      std::ofstream(base + ".plan") << f.shrunk.ToText();
      std::ofstream(base + "-full.plan") << f.plan.ToText();
      std::ofstream(base + ".log")
          << "failure: " << f.failure << "\n"
          << "class: " << FailureClassName(f.failure_class) << "\n"
          << "replay-identical: " << (f.replay_identical ? "yes" : "no") << "\n";
      if (!f.postmortem.empty()) {
        std::ofstream(base + ".postmortem") << f.postmortem;
      }
      std::cerr << "dumped " << base << ".plan (replay with --plan=)\n";
    }
  }
  if (res.ok()) {
    return 0;
  }
  return res.failing.empty() ? 1 : ExitCodeFor(res.failing.front().failure_class);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return 2;
  }

  if (args.explore) {
    return RunExplore(args);
  }

  ChaosRunOptions opts;
  opts.mutate_skip_backup_ack = args.mutate;
  opts.batch_data_plane = args.batch;
  opts.adaptive_backoff = args.backoff;

  if (!args.plan_file.empty()) {
    std::ifstream in(args.plan_file);
    if (!in) {
      std::cerr << "cannot open " << args.plan_file << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ChaosPlan plan;
    if (!ChaosPlan::Parse(buf.str(), &plan)) {
      std::cerr << "cannot parse " << args.plan_file << "\n";
      return 2;
    }
    opts.seed = plan.seed;
    ChaosRunResult res = RunChaosPlan(opts, plan);
    return ReportRun(args, res) ? 0 : ExitCodeFor(res.failure_class);
  }

  if (args.until_fail > 0) {
    for (int i = 1; i <= args.until_fail; i++) {
      opts.seed = args.base + static_cast<uint64_t>(i);
      ChaosRunResult res = RunChaos(opts);
      if (!ReportRun(args, res)) {
        return ExitCodeFor(res.failure_class);
      }
    }
    std::cout << "no failure in " << args.until_fail << " runs\n";
    return 0;
  }

  if (args.sweep > 0) {
    int failures = 0;
    for (int i = 1; i <= args.sweep; i++) {
      opts.seed = args.base + static_cast<uint64_t>(i);
      if (!ReportRun(args, RunChaos(opts))) {
        failures++;
      }
    }
    std::cout << (args.sweep - failures) << "/" << args.sweep << " seeds passed\n";
    return failures == 0 ? 0 : 1;
  }

  opts.seed = args.seed;
  ChaosRunResult res = RunChaos(opts);
  return ReportRun(args, res) ? 0 : ExitCodeFor(res.failure_class);
}
