// chaos_repro: run seeded chaos sweeps and replay dumped schedules.
//
//   chaos_repro --seed=42            run one seed, print the outcome
//   chaos_repro --sweep=20           run seeds 1..20, fail on first violation
//   chaos_repro --sweep=20 --base=100  sweep seeds 101..120
//   chaos_repro --plan=FILE          replay a dumped schedule file
//   chaos_repro --dump-dir=DIR       write failing schedules + event logs here
//   chaos_repro --mutate             enable the skip-backup-ack protocol bug
//
// Exit status is 0 when every run passes its invariants, 1 otherwise.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/chaos/harness.h"
#include "src/chaos/plan.h"

namespace {

using farm::chaos::ChaosPlan;
using farm::chaos::ChaosRunOptions;
using farm::chaos::ChaosRunResult;

struct Args {
  uint64_t seed = 0;
  int sweep = 0;
  uint64_t base = 0;
  std::string plan_file;
  std::string dump_dir;
  bool mutate = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* seed = value("--seed=")) {
      out->seed = std::strtoull(seed, nullptr, 10);
    } else if (const char* sweep = value("--sweep=")) {
      out->sweep = std::atoi(sweep);
    } else if (const char* base = value("--base=")) {
      out->base = std::strtoull(base, nullptr, 10);
    } else if (const char* plan = value("--plan=")) {
      out->plan_file = plan;
    } else if (const char* dump = value("--dump-dir=")) {
      out->dump_dir = dump;
    } else if (arg == "--mutate") {
      out->mutate = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

void DumpFailure(const Args& args, const ChaosRunResult& res) {
  if (args.dump_dir.empty()) {
    return;
  }
  std::string base = args.dump_dir + "/chaos-seed-" + std::to_string(res.plan.seed);
  std::ofstream plan_out(base + ".plan");
  plan_out << res.plan.ToText();
  std::ofstream log_out(base + ".log");
  log_out << "failure: " << res.failure << "\n";
  log_out << "commits: " << res.commits << " unknown: " << res.unknown_outcomes << "\n";
  for (const auto& line : res.event_log) {
    log_out << line << "\n";
  }
  if (!res.postmortem.empty()) {
    std::ofstream pm_out(base + ".postmortem");
    pm_out << res.postmortem;
    std::cerr << "dumped " << base << ".postmortem (inspect with txdump)\n";
  }
  std::cerr << "dumped " << base << ".plan (replay with --plan=)\n";
}

bool ReportRun(const Args& args, const ChaosRunResult& res) {
  std::ostringstream events;
  events << res.event_log.size();
  std::cout << "seed " << res.plan.seed << ": " << (res.ok ? "ok" : "FAIL") << " ("
            << res.commits << " commits, " << res.unknown_outcomes << " unknown outcomes, "
            << events.str() << " events)";
  if (!res.ok) {
    std::cout << " -- " << res.failure;
  }
  std::cout << "\n";
  if (!res.ok) {
    DumpFailure(args, res);
  }
  return res.ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return 2;
  }

  ChaosRunOptions opts;
  opts.mutate_skip_backup_ack = args.mutate;

  if (!args.plan_file.empty()) {
    std::ifstream in(args.plan_file);
    if (!in) {
      std::cerr << "cannot open " << args.plan_file << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ChaosPlan plan;
    if (!ChaosPlan::Parse(buf.str(), &plan)) {
      std::cerr << "cannot parse " << args.plan_file << "\n";
      return 2;
    }
    opts.seed = plan.seed;
    return ReportRun(args, RunChaosPlan(opts, plan)) ? 0 : 1;
  }

  if (args.sweep > 0) {
    int failures = 0;
    for (int i = 1; i <= args.sweep; i++) {
      opts.seed = args.base + static_cast<uint64_t>(i);
      if (!ReportRun(args, RunChaos(opts))) {
        failures++;
      }
    }
    std::cout << (args.sweep - failures) << "/" << args.sweep << " seeds passed\n";
    return failures == 0 ? 0 : 1;
  }

  opts.seed = args.seed;
  return ReportRun(args, RunChaos(opts)) ? 0 : 1;
}
