// Closed-loop workload driver: spawns (machines x threads x concurrency)
// workers that repeatedly execute a transaction function, collecting the
// latency histogram and the per-interval throughput timeline the paper's
// figures are built from.
#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <functional>
#include <memory>

#include "src/common/histogram.h"
#include "src/core/cluster.h"

namespace farm {

// Runs one operation; returns true if it committed (false = aborted/retry).
using WorkloadFn = std::function<Task<bool>(Node& node, int thread, Pcg32& rng)>;

struct DriverOptions {
  int threads_per_machine = 2;        // worker threads running transactions
  int concurrency_per_thread = 4;     // outstanding transactions per thread
  SimDuration warmup = 10 * kMillisecond;
  SimDuration measure = 100 * kMillisecond;
  // When set, workers only run on these machines (e.g. TPC-C partitioning
  // places each warehouse's clients on its primary).
  std::vector<MachineId> machines;
  uint64_t seed = 42;
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  Histogram latency;                 // committed-transaction latency, ns
  TimeSeries throughput{kMillisecond};  // committed tx per ms (whole run)
  SimTime measure_start = 0;
  SimTime measure_end = 0;

  double CommittedPerSecond() const {
    double secs = static_cast<double>(measure_end - measure_start) / 1e9;
    return secs > 0 ? static_cast<double>(committed) / secs : 0;
  }
  double OpsPerMicrosecond() const { return CommittedPerSecond() / 1e6; }
};

// Shared state for an in-flight driver run; lets failure benches keep the
// workers running while they kill machines on a schedule.
struct DriverRun {
  DriverOptions options;
  std::shared_ptr<DriverResult> result = std::make_shared<DriverResult>();
  std::shared_ptr<bool> stop = std::make_shared<bool>(false);
  std::shared_ptr<int> active_workers = std::make_shared<int>(0);
};

// Starts the workers (returns immediately; run the simulator to make
// progress). Measurement covers [start+warmup, until Stop()].
DriverRun StartWorkers(Cluster& cluster, WorkloadFn fn, DriverOptions options);

// Stops measurement and signals workers to exit; finalizes result counters.
void StopWorkers(Cluster& cluster, DriverRun& run);

// Convenience: start, run for warmup+measure, stop, return the result.
DriverResult RunClosedLoop(Cluster& cluster, WorkloadFn fn, DriverOptions options);

}  // namespace farm

#endif  // SRC_WORKLOAD_DRIVER_H_
