#include "src/workload/driver.h"

namespace farm {

namespace {

struct WorkerCtx {
  Cluster* cluster;
  WorkloadFn fn;
  std::shared_ptr<DriverResult> result;
  std::shared_ptr<bool> stop;
  std::shared_ptr<int> active;
  SimTime measure_start;
};

Task<void> WorkerLoop(WorkerCtx ctx, MachineId machine, int thread, uint64_t seed) {
  Pcg32 rng(seed);
  Node& node = ctx.cluster->node(machine);
  while (!*ctx.stop && ctx.cluster->machine(machine).alive()) {
    SimTime t0 = ctx.cluster->sim().Now();
    bool committed = co_await ctx.fn(node, thread, rng);
    SimTime t1 = ctx.cluster->sim().Now();
    if (*ctx.stop) {
      break;
    }
    if (t1 >= ctx.measure_start) {
      if (committed) {
        ctx.result->committed++;
        ctx.result->latency.Record(t1 - t0);
        ctx.result->throughput.Record(t1);
      } else {
        ctx.result->aborted++;
      }
    }
  }
  (*ctx.active)--;
}

}  // namespace

DriverRun StartWorkers(Cluster& cluster, WorkloadFn fn, DriverOptions options) {
  DriverRun run;
  run.options = options;
  std::vector<MachineId> machines = options.machines;
  if (machines.empty()) {
    for (int i = 0; i < cluster.num_machines(); i++) {
      machines.push_back(static_cast<MachineId>(i));
    }
  }
  WorkerCtx ctx;
  ctx.cluster = &cluster;
  ctx.fn = std::move(fn);
  ctx.result = run.result;
  ctx.stop = run.stop;
  ctx.active = run.active_workers;
  ctx.measure_start = cluster.sim().Now() + options.warmup;
  run.result->measure_start = ctx.measure_start;

  uint64_t seq = 0;
  for (MachineId m : machines) {
    int threads = std::min(options.threads_per_machine,
                           cluster.node(m).options().worker_threads);
    for (int t = 0; t < threads; t++) {
      for (int c = 0; c < options.concurrency_per_thread; c++) {
        (*run.active_workers)++;
        Spawn(WorkerLoop(ctx, m, t, HashCombine(options.seed, seq++)));
      }
    }
  }
  return run;
}

void StopWorkers(Cluster& cluster, DriverRun& run) {
  *run.stop = true;
  run.result->measure_end = cluster.sim().Now();
}

DriverResult RunClosedLoop(Cluster& cluster, WorkloadFn fn, DriverOptions options) {
  DriverRun run = StartWorkers(cluster, std::move(fn), options);
  cluster.RunFor(options.warmup + options.measure);
  StopWorkers(cluster, run);
  // Let in-flight operations wind down.
  SimTime deadline = cluster.sim().Now() + kSecond;
  while (*run.active_workers > 0 && cluster.sim().Now() < deadline) {
    if (!cluster.sim().Step()) {
      break;
    }
  }
  return *run.result;
}

}  // namespace farm
