// TATP (Telecommunication Application Transaction Processing) benchmark
// implemented against the FaRM API (section 6.2).
//
// Tables are FaRM hash tables. The standard mix is read dominated: 70%
// single-row lookups served by lock-free reads (usually one RDMA read, no
// commit phase), 10% small multi-row reads validated at commit, and 20%
// updates running the full commit protocol. Single-field subscriber updates
// (UPDATE_LOCATION) are function-shipped to the primary as in the paper.
#ifndef SRC_WORKLOAD_TATP_H_
#define SRC_WORKLOAD_TATP_H_

#include <memory>

#include "src/ds/hashtable.h"
#include "src/workload/driver.h"

namespace farm {

struct TatpOptions {
  uint64_t subscribers = 10000;
  bool function_ship_updates = true;  // ship single-field updates to the primary
  uint64_t load_seed = 7;
};

struct TatpStats {
  uint64_t get_subscriber = 0;
  uint64_t get_new_destination = 0;
  uint64_t get_access = 0;
  uint64_t update_subscriber = 0;
  uint64_t update_location = 0;
  uint64_t insert_cf = 0;
  uint64_t delete_cf = 0;
};

class TatpDb {
 public:
  // Creates the four tables and loads `subscribers` rows (plus access-info,
  // special-facility, and call-forwarding rows per the TATP spec).
  static Task<StatusOr<TatpDb>> Create(Cluster& cluster, TatpOptions options);

  // Registers the function-shipping RPC service on every machine. Call once.
  void RegisterServices(Cluster& cluster) const;

  // The standard TATP transaction mix as a driver workload.
  WorkloadFn MakeWorkload() const;

  std::shared_ptr<TatpStats> stats() const { return stats_; }
  const TatpOptions& options() const { return options_; }

  // Individual transactions (also used by tests).
  Task<bool> GetSubscriberData(Node& node, int thread, Pcg32& rng) const;
  Task<bool> GetNewDestination(Node& node, int thread, Pcg32& rng) const;
  Task<bool> GetAccessData(Node& node, int thread, Pcg32& rng) const;
  Task<bool> UpdateSubscriberData(Node& node, int thread, Pcg32& rng) const;
  Task<bool> UpdateLocation(Node& node, int thread, Pcg32& rng) const;
  Task<bool> InsertCallForwarding(Node& node, int thread, Pcg32& rng) const;
  Task<bool> DeleteCallForwarding(Node& node, int thread, Pcg32& rng) const;

  // Table handles (tests and the loader use these).
  const HashTable& SubscriberTable() const { return subscriber_; }
  const HashTable& AccessInfoTable() const { return access_info_; }
  const HashTable& SpecialFacilityTable() const { return special_facility_; }
  const HashTable& CallForwardingTable() const { return call_forwarding_; }

  // Value sizes (bytes).
  static constexpr uint32_t kSubscriberBytes = 40;
  static constexpr uint32_t kAccessInfoBytes = 16;
  static constexpr uint32_t kSpecialFacilityBytes = 16;
  static constexpr uint32_t kCallForwardingBytes = 16;

  // Composite keys.
  static uint64_t SubKey(uint64_t s) { return s; }
  static uint64_t AiKey(uint64_t s, uint32_t ai_type) { return s * 8 + ai_type; }
  static uint64_t SfKey(uint64_t s, uint32_t sf_type) { return s * 8 + sf_type; }
  static uint64_t CfKey(uint64_t s, uint32_t sf_type, uint32_t start_time) {
    return s * 64 + static_cast<uint64_t>(sf_type) * 8 + start_time / 8;
  }

 private:
  uint64_t RandomSubscriber(Pcg32& rng) const { return rng.Uniform64(options_.subscribers) + 1; }
  Task<Status> LoadSubscriber(Transaction& tx, uint64_t sid, Pcg32& rng) const;

  TatpOptions options_;
  HashTable subscriber_;
  HashTable access_info_;
  HashTable special_facility_;
  HashTable call_forwarding_;
  std::shared_ptr<TatpStats> stats_ = std::make_shared<TatpStats>();
};

}  // namespace farm

#endif  // SRC_WORKLOAD_TATP_H_
