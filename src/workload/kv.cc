#include "src/workload/kv.h"

#include <cstring>

namespace farm {

Task<StatusOr<KvDb>> KvDb::Create(Cluster& cluster, KvOptions options) {
  KvDb db;
  db.options_ = options;
  Node& node = cluster.node(0);
  HashTable::Options ht;
  ht.buckets = std::max<uint64_t>(64, options.keys);  // load factor ~0.25
  ht.value_size = options.value_size;
  auto table = co_await HashTable::Create(node, ht, 0);
  if (!table.ok()) {
    co_return table.status();
  }
  db.table_ = *table;

  Pcg32 rng(options.load_seed);
  for (uint64_t k = 1; k <= options.keys; k += 16) {
    for (int attempt = 0; attempt < 5; attempt++) {
      auto tx = node.Begin(0);
      bool ok = true;
      for (uint64_t j = k; j < k + 16 && j <= options.keys && ok; j++) {
        std::vector<uint8_t> value(options.value_size);
        for (auto& b : value) {
          b = static_cast<uint8_t>(rng.Next());
        }
        ok = (co_await db.table_.Put(*tx, j, std::move(value))).ok();
      }
      Status s(StatusCode::kInternal, "load");
      if (ok) {
        s = co_await tx->Commit();
      }
      if (s.ok()) {
        break;
      }
      if (s.code() != StatusCode::kAborted) {
        co_return s;
      }
    }
  }
  co_return db;
}

WorkloadFn KvDb::MakeWorkload() const {
  KvDb db = *this;
  return [db](Node& node, int thread, Pcg32& rng) -> Task<bool> {
    uint64_t key = rng.Uniform64(db.options_.keys) + 1;
    if (db.options_.write_fraction > 0 && rng.Bernoulli(db.options_.write_fraction)) {
      for (int attempt = 0; attempt < 8; attempt++) {
        auto tx = node.Begin(thread);
        auto v = co_await db.table_.Get(*tx, key);
        if (!v.ok() || !v->has_value()) {
          co_return false;
        }
        std::vector<uint8_t> updated = **v;
        updated[0]++;
        (void)co_await db.table_.Put(*tx, key, std::move(updated));
        Status s = co_await tx->Commit();
        if (s.ok()) {
          co_return true;
        }
        if (s.code() != StatusCode::kAborted) {
          co_return false;
        }
      }
      co_return false;
    }
    auto v = co_await db.table_.LockFreeGet(node, key, thread);
    co_return v.ok() && v->has_value();
  };
}

}  // namespace farm
