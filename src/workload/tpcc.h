// TPC-C benchmark against the FaRM API (section 6.2).
//
// The schema is co-partitioned by warehouse as in the paper: each warehouse
// gets its own set of hash-table and B-tree indexes whose regions are
// co-located (locality hints), and the warehouse's clients run on the
// machine hosting its primary. Point indexes are FaRM hash tables; the
// new-order queue and order-line indexes -- which need range queries -- are
// FaRM B-trees. The full transaction mix runs (new-order 45%, payment 43%,
// order-status 4%, delivery 4%, stock-level 4%); results report committed
// "new order" transactions as the paper does.
//
// Documented simplifications: customer lookup is always by id (the spec's
// 60% by-last-name lookups would add one more index); the history table is
// insert-only with a synthetic key; items are valid (the spec's 1% rollback
// is modeled as an explicit abort without the invalid-item plumbing).
#ifndef SRC_WORKLOAD_TPCC_H_
#define SRC_WORKLOAD_TPCC_H_

#include <memory>

#include "src/ds/btree.h"
#include "src/ds/hashtable.h"
#include "src/workload/driver.h"

namespace farm {

struct TpccOptions {
  int warehouses = 4;
  int districts = 10;            // per warehouse (spec)
  int customers = 96;            // per district (scaled from 3000)
  int items = 1000;              // global (scaled from 100000)
  int init_orders = 20;          // per district (scaled from 3000)
  double remote_item_fraction = 0.01;     // spec: ~1% of order lines
  double remote_customer_fraction = 0.15; // spec: 15% of payments
  double rollback_fraction = 0.01;        // spec: 1% of new-orders roll back
  uint64_t load_seed = 11;
};

struct TpccStats {
  uint64_t new_order_committed = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t rollbacks = 0;
};

class TpccDb {
 public:
  static Task<StatusOr<TpccDb>> Create(Cluster& cluster, TpccOptions options);

  WorkloadFn MakeWorkload() const;
  // The machines hosting each warehouse's primary (clients run there).
  std::vector<MachineId> ClientMachines(Cluster& cluster) const;

  std::shared_ptr<TpccStats> stats() const { return stats_; }
  const TpccOptions& options() const { return options_; }

  Task<bool> NewOrder(Node& node, int thread, Pcg32& rng) const;
  Task<bool> Payment(Node& node, int thread, Pcg32& rng) const;
  Task<bool> OrderStatus(Node& node, int thread, Pcg32& rng) const;
  Task<bool> Delivery(Node& node, int thread, Pcg32& rng) const;
  Task<bool> StockLevel(Node& node, int thread, Pcg32& rng) const;

  // Test-only accessors for consistency checks.
  Task<StatusOr<uint32_t>> DistrictRowForTest(Transaction& tx, uint64_t w, uint64_t d) const;
  Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> OrderLineScanForTest(
      Transaction& tx, uint64_t w, uint64_t d) const;

  // --- composite keys (w and d are 1-based) ---
  static uint64_t Wd(uint64_t w, uint64_t d) { return w * 16 + d; }
  static uint64_t CustKey(uint64_t w, uint64_t d, uint64_t c) { return (Wd(w, d) << 16) | c; }
  static uint64_t StockKey(uint64_t i) { return i; }  // per-warehouse table
  static uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) { return (Wd(w, d) << 32) | o; }
  static uint64_t OlKey(uint64_t w, uint64_t d, uint64_t o, uint64_t ol) {
    return (Wd(w, d) << 40) | (o << 8) | ol;
  }

  // --- row sizes ---
  static constexpr uint32_t kWarehouseBytes = 16;  // [ytd u64][tax u32][pad]
  static constexpr uint32_t kDistrictBytes = 24;   // [next_o_id u32][ytd u64][tax u32]
  static constexpr uint32_t kCustomerBytes = 48;   // [balance i64][ytd u64][paymts u32]
                                                   // [deliveries u32][last_order u32]
  static constexpr uint32_t kItemBytes = 24;       // [price u32][name...]
  static constexpr uint32_t kStockBytes = 32;      // [qty u32][ytd u64][orders u32][remote u32]
  static constexpr uint32_t kOrderBytes = 32;      // [c u32][entry u64][carrier u32][lines u32]
  static constexpr uint32_t kHistoryBytes = 24;

 private:
  struct Partition {
    HashTable warehouse;   // 1 row
    HashTable district;    // districts rows
    HashTable customer;
    HashTable stock;
    HashTable order;
    HashTable history;
    BTree new_order;       // OrderKey -> o (range: oldest undelivered)
    BTree order_line;      // OlKey -> packed(item, qty, amount)
    RegionId anchor = kInvalidRegion;
  };

  // Picks the warehouse whose clients run on this node (uniform fallback).
  uint64_t HomeWarehouse(Node& node, Pcg32& rng) const;
  const Partition& Part(uint64_t w) const { return (*parts_)[w - 1]; }
  Task<Status> LoadWarehouse(Cluster& cluster, uint64_t w);

  TpccOptions options_;
  std::shared_ptr<std::vector<Partition>> parts_ = std::make_shared<std::vector<Partition>>();
  std::shared_ptr<std::vector<MachineId>> homes_ = std::make_shared<std::vector<MachineId>>();
  HashTable item_;  // global, read-mostly
  std::shared_ptr<TpccStats> stats_ = std::make_shared<TpccStats>();
  std::shared_ptr<uint64_t> history_seq_ = std::make_shared<uint64_t>(1);
};

}  // namespace farm

#endif  // SRC_WORKLOAD_TPCC_H_
