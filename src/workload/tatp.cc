#include "src/workload/tatp.h"

#include <cstring>

namespace farm {

namespace {

constexpr uint16_t kTatpRpcService = 201;

std::vector<uint8_t> SubscriberRow(Pcg32& rng, uint32_t vlr_location) {
  std::vector<uint8_t> row(TatpDb::kSubscriberBytes, 0);
  for (size_t i = 0; i < 32; i++) {
    row[i] = static_cast<uint8_t>(rng.Next());
  }
  std::memcpy(row.data() + 32, &vlr_location, 4);
  return row;
}

std::vector<uint8_t> SmallRow(Pcg32& rng, uint32_t size, bool active_flag = true) {
  std::vector<uint8_t> row(size, 0);
  row[0] = active_flag ? 1 : 0;
  for (uint32_t i = 1; i < size; i++) {
    row[i] = static_cast<uint8_t>(rng.Next());
  }
  return row;
}

// Retries a transactional closure on conflicts, as applications do.
template <typename Fn>
Task<bool> WithRetries(Fn fn, int attempts = 8) {
  for (int i = 0; i < attempts; i++) {
    Status s = co_await fn();
    if (s.ok()) {
      co_return true;
    }
    if (s.code() != StatusCode::kAborted) {
      co_return false;
    }
  }
  co_return false;
}

}  // namespace

Task<StatusOr<TatpDb>> TatpDb::Create(Cluster& cluster, TatpOptions options) {
  TatpDb db;
  db.options_ = options;
  Node& node = cluster.node(0);

  HashTable::Options ht;
  ht.buckets = std::max<uint64_t>(64, options.subscribers);  // load factor ~0.25
  ht.value_size = kSubscriberBytes;
  auto sub = co_await HashTable::Create(node, ht, 0);
  if (!sub.ok()) {
    co_return sub.status();
  }
  db.subscriber_ = *sub;

  // 1-4 access-info/special-facility rows and up to 12 call-forwarding rows
  // per subscriber: size buckets for a comfortable load factor.
  ht.buckets = std::max<uint64_t>(64, options.subscribers * 2);
  ht.value_size = kAccessInfoBytes;
  auto ai = co_await HashTable::Create(node, ht, 0);
  if (!ai.ok()) {
    co_return ai.status();
  }
  db.access_info_ = *ai;

  ht.value_size = kSpecialFacilityBytes;
  auto sf = co_await HashTable::Create(node, ht, 0);
  if (!sf.ok()) {
    co_return sf.status();
  }
  db.special_facility_ = *sf;

  ht.buckets = std::max<uint64_t>(64, options.subscribers * 3);
  ht.value_size = kCallForwardingBytes;
  auto cf = co_await HashTable::Create(node, ht, 0);
  if (!cf.ok()) {
    co_return cf.status();
  }
  db.call_forwarding_ = *cf;

  // Load: each subscriber has 1-4 access-info rows, 1-4 special-facility
  // rows, and 0-3 call-forwarding rows per special facility (TATP spec).
  // Rows are batched a few per transaction to speed up population.
  uint64_t s = 1;
  while (s <= options.subscribers) {
    Status batch_status = OkStatus();
    uint64_t end = std::min(options.subscribers, s + 3);
    for (int attempt = 0; attempt < 5; attempt++) {
      auto tx = node.Begin(0);
      Pcg32 batch_rng(HashCombine(options.load_seed, s));
      Status build_status = OkStatus();
      for (uint64_t sid = s; sid <= end && build_status.ok(); sid++) {
        build_status = co_await db.LoadSubscriber(*tx, sid, batch_rng);
      }
      if (!build_status.ok()) {
        batch_status = build_status;
        break;
      }
      batch_status = co_await tx->Commit();
      if (batch_status.ok() || batch_status.code() != StatusCode::kAborted) {
        break;
      }
    }
    if (!batch_status.ok()) {
      co_return batch_status;
    }
    s = end + 1;
  }
  co_return db;
}

Task<Status> TatpDb::LoadSubscriber(Transaction& tx, uint64_t sid, Pcg32& rng) const {
  Status s = co_await subscriber_.Put(tx, SubKey(sid), SubscriberRow(rng, rng.Next()));
  if (!s.ok()) {
    co_return s;
  }
  uint32_t nai = rng.Uniform(4) + 1;
  for (uint32_t t = 1; t <= nai; t++) {
    s = co_await access_info_.Put(tx, AiKey(sid, t), SmallRow(rng, kAccessInfoBytes));
    if (!s.ok()) {
      co_return s;
    }
  }
  uint32_t nsf = rng.Uniform(4) + 1;
  for (uint32_t t = 1; t <= nsf; t++) {
    s = co_await special_facility_.Put(
        tx, SfKey(sid, t), SmallRow(rng, kSpecialFacilityBytes, rng.Bernoulli(0.85)));
    if (!s.ok()) {
      co_return s;
    }
    uint32_t ncf = rng.Uniform(4);  // 0-3
    for (uint32_t c = 0; c < ncf; c++) {
      s = co_await call_forwarding_.Put(tx, CfKey(sid, t, c * 8),
                                        SmallRow(rng, kCallForwardingBytes));
      if (!s.ok()) {
        co_return s;
      }
    }
  }
  co_return OkStatus();
}

void TatpDb::RegisterServices(Cluster& cluster) const {
  if (!options_.function_ship_updates) {
    return;
  }
  // UPDATE_LOCATION is function-shipped: the subscriber row's primary runs
  // the whole (now entirely local) transaction.
  for (int i = 0; i < cluster.num_machines(); i++) {
    MachineId m = static_cast<MachineId>(i);
    Node* node = &cluster.node(m);
    HashTable table = subscriber_;
    int hi = node->options().worker_threads - 1;
    auto next_thread = std::make_shared<int>(0);
    cluster.fabric().RegisterRpcService(
        m, kTatpRpcService, 0, hi,
        [node, table, next_thread](MachineId from, std::vector<uint8_t> req,
                                   Fabric::ReplyFn reply) {
          (void)from;
          int thread = (*next_thread)++ % node->options().worker_threads;
          auto run = [](Node* n, HashTable t, int th, std::vector<uint8_t> r,
                        Fabric::ReplyFn rep) -> Task<void> {
            BufReader br(r);
            uint64_t sid = br.GetU64();
            uint32_t location = br.GetU32();
            bool ok = false;
            for (int attempt = 0; attempt < 4 && !ok; attempt++) {
              auto tx = n->Begin(th);
              auto row = co_await t.Get(*tx, TatpDb::SubKey(sid));
              if (!row.ok() || !row->has_value()) {
                break;
              }
              std::vector<uint8_t> updated = **row;
              std::memcpy(updated.data() + 32, &location, 4);
              (void)co_await t.Put(*tx, TatpDb::SubKey(sid), std::move(updated));
              Status s = co_await tx->Commit();
              ok = s.ok();
              if (!s.ok() && s.code() != StatusCode::kAborted) {
                break;
              }
            }
            rep({static_cast<uint8_t>(ok ? 1 : 0)});
          };
          Spawn(run(node, table, thread, std::move(req), std::move(reply)));
        });
  }
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Task<bool> TatpDb::GetSubscriberData(Node& node, int thread, Pcg32& rng) const {
  stats_->get_subscriber++;
  uint64_t s = RandomSubscriber(rng);
  auto v = co_await subscriber_.LockFreeGet(node, SubKey(s), thread);
  co_return v.ok() && v->has_value();
}

Task<bool> TatpDb::GetAccessData(Node& node, int thread, Pcg32& rng) const {
  stats_->get_access++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t ai = rng.Uniform(4) + 1;
  auto v = co_await access_info_.LockFreeGet(node, AiKey(s, ai), thread);
  co_return v.ok();  // a miss is a valid (business-failed) lookup
}

Task<bool> TatpDb::GetNewDestination(Node& node, int thread, Pcg32& rng) const {
  stats_->get_new_destination++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t sf = rng.Uniform(4) + 1;
  auto tx = node.Begin(thread);
  auto sfv = co_await special_facility_.Get(*tx, SfKey(s, sf));
  if (!sfv.ok()) {
    co_return false;
  }
  // Read the 2-4 rows the paper describes: the special facility plus the
  // call-forwarding rows for its start times.
  for (uint32_t st = 0; st < 24; st += 8) {
    auto cfv = co_await call_forwarding_.Get(*tx, CfKey(s, sf, st));
    if (!cfv.ok()) {
      co_return false;
    }
  }
  Status st = co_await tx->Commit();
  co_return st.ok();
}

Task<bool> TatpDb::UpdateSubscriberData(Node& node, int thread, Pcg32& rng) const {
  stats_->update_subscriber++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t sf = rng.Uniform(4) + 1;
  uint8_t bit = static_cast<uint8_t>(rng.Uniform(2));
  uint8_t data_a = static_cast<uint8_t>(rng.Next());
  auto attempt_fn = [&]() -> Task<Status> {
    auto tx = node.Begin(thread);
    auto row = co_await subscriber_.Get(*tx, SubKey(s));
    if (!row.ok() || !row->has_value()) {
      co_return NotFoundStatus("");
    }
    std::vector<uint8_t> updated = **row;
    updated[0] = bit;
    Status st = co_await subscriber_.Put(*tx, SubKey(s), std::move(updated));
    if (!st.ok()) {
      co_return st;
    }
    auto sfrow = co_await special_facility_.Get(*tx, SfKey(s, sf));
    if (sfrow.ok() && sfrow->has_value()) {
      std::vector<uint8_t> u2 = **sfrow;
      u2[2] = data_a;
      st = co_await special_facility_.Put(*tx, SfKey(s, sf), std::move(u2));
      if (!st.ok()) {
        co_return st;
      }
    }
    co_return co_await tx->Commit();
  };
  co_return co_await WithRetries(attempt_fn);
}

Task<bool> TatpDb::UpdateLocation(Node& node, int thread, Pcg32& rng) const {
  stats_->update_location++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t location = rng.Next();
  if (options_.function_ship_updates) {
    // Ship the single-field update to the subscriber row's primary.
    GlobalAddr bucket = subscriber_.KeyBucketAddr(SubKey(s));
    auto ref = co_await node.ResolveRef(bucket.region, thread);
    MachineId target = ref.ok() ? ref->primary : node.id();
    BufWriter w;
    w.PutU64(s);
    w.PutU32(location);
    // Via the messenger so that, with batching on, the shipped update rides
    // the coalesced message rings instead of a dedicated RPC exchange
    // (delegates straight to the fabric when batching is off).
    NetResult r = co_await node.messenger().Call(target, kTatpRpcService, w.Take(), thread,
                                                 50 * kMillisecond);
    co_return r.status.ok() && !r.data.empty() && r.data[0] == 1;
  }
  auto attempt_fn = [&]() -> Task<Status> {
    auto tx = node.Begin(thread);
    auto row = co_await subscriber_.Get(*tx, SubKey(s));
    if (!row.ok() || !row->has_value()) {
      co_return NotFoundStatus("");
    }
    std::vector<uint8_t> updated = **row;
    std::memcpy(updated.data() + 32, &location, 4);
    Status st = co_await subscriber_.Put(*tx, SubKey(s), std::move(updated));
    if (!st.ok()) {
      co_return st;
    }
    co_return co_await tx->Commit();
  };
  co_return co_await WithRetries(attempt_fn);
}

Task<bool> TatpDb::InsertCallForwarding(Node& node, int thread, Pcg32& rng) const {
  stats_->insert_cf++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t sf = rng.Uniform(4) + 1;
  uint32_t st_time = rng.Uniform(3) * 8;
  std::vector<uint8_t> row(kCallForwardingBytes, 0);
  row[0] = static_cast<uint8_t>(st_time + 8);
  for (uint32_t i = 1; i < kCallForwardingBytes; i++) {
    row[i] = static_cast<uint8_t>(rng.Next());
  }
  auto attempt_fn = [&]() -> Task<Status> {
    auto tx = node.Begin(thread);
    auto sfrow = co_await special_facility_.Get(*tx, SfKey(s, sf));
    if (!sfrow.ok() || !sfrow->has_value()) {
      co_return NotFoundStatus("");
    }
    Status st = co_await call_forwarding_.Put(*tx, CfKey(s, sf, st_time), row);
    if (!st.ok()) {
      co_return st;
    }
    co_return co_await tx->Commit();
  };
  co_return co_await WithRetries(attempt_fn);
}

Task<bool> TatpDb::DeleteCallForwarding(Node& node, int thread, Pcg32& rng) const {
  stats_->delete_cf++;
  uint64_t s = RandomSubscriber(rng);
  uint32_t sf = rng.Uniform(4) + 1;
  uint32_t st_time = rng.Uniform(3) * 8;
  auto attempt_fn = [&]() -> Task<Status> {
    auto tx = node.Begin(thread);
    Status st = co_await call_forwarding_.Remove(*tx, CfKey(s, sf, st_time));
    if (!st.ok()) {
      co_return st;
    }
    co_return co_await tx->Commit();
  };
  co_return co_await WithRetries(attempt_fn);
}

WorkloadFn TatpDb::MakeWorkload() const {
  TatpDb db = *this;
  return [db](Node& node, int thread, Pcg32& rng) -> Task<bool> {
    uint32_t dice = rng.Uniform(100);
    if (dice < 35) {
      co_return co_await db.GetSubscriberData(node, thread, rng);
    } else if (dice < 45) {
      co_return co_await db.GetNewDestination(node, thread, rng);
    } else if (dice < 80) {
      co_return co_await db.GetAccessData(node, thread, rng);
    } else if (dice < 82) {
      co_return co_await db.UpdateSubscriberData(node, thread, rng);
    } else if (dice < 96) {
      co_return co_await db.UpdateLocation(node, thread, rng);
    } else if (dice < 98) {
      co_return co_await db.InsertCallForwarding(node, thread, rng);
    } else {
      co_return co_await db.DeleteCallForwarding(node, thread, rng);
    }
  };
}

}  // namespace farm
