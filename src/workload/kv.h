// Key-value lookup workload (section 6.3 "read performance"): uniform
// random lookups of small values served by lock-free reads.
#ifndef SRC_WORKLOAD_KV_H_
#define SRC_WORKLOAD_KV_H_

#include "src/ds/hashtable.h"
#include "src/workload/driver.h"

namespace farm {

struct KvOptions {
  uint64_t keys = 100000;
  uint32_t value_size = 32;  // paper: 16-byte keys, 32-byte values
  double write_fraction = 0.0;
  uint64_t load_seed = 3;
};

class KvDb {
 public:
  static Task<StatusOr<KvDb>> Create(Cluster& cluster, KvOptions options);

  // Uniform lookups (plus write_fraction transactional updates).
  WorkloadFn MakeWorkload() const;

  const HashTable& table() const { return table_; }
  const KvOptions& options() const { return options_; }

 private:
  KvOptions options_;
  HashTable table_;
};

}  // namespace farm

#endif  // SRC_WORKLOAD_KV_H_
