#include "src/workload/tpcc.h"

#include <cstring>

namespace farm {

namespace {

void PutU32At(std::vector<uint8_t>* row, size_t off, uint32_t v) {
  std::memcpy(row->data() + off, &v, 4);
}
void PutU64At(std::vector<uint8_t>* row, size_t off, uint64_t v) {
  std::memcpy(row->data() + off, &v, 8);
}
uint32_t U32At(const std::vector<uint8_t>& row, size_t off) {
  uint32_t v;
  std::memcpy(&v, row.data() + off, 4);
  return v;
}
uint64_t U64At(const std::vector<uint8_t>& row, size_t off) {
  uint64_t v;
  std::memcpy(&v, row.data() + off, 8);
  return v;
}

uint64_t PackOrderLine(uint32_t item, uint32_t qty, uint32_t amount) {
  return (static_cast<uint64_t>(item) << 32) | (static_cast<uint64_t>(qty & 0xff) << 24) |
         (amount & 0xffffff);
}

template <typename Fn>
Task<bool> WithRetries(Fn fn, int attempts = 8) {
  for (int i = 0; i < attempts; i++) {
    Status s = co_await fn();
    if (s.ok()) {
      co_return true;
    }
    if (s.code() != StatusCode::kAborted) {
      co_return false;
    }
  }
  co_return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Creation and loading
// ---------------------------------------------------------------------------

Task<StatusOr<TpccDb>> TpccDb::Create(Cluster& cluster, TpccOptions options) {
  TpccDb db;
  db.options_ = options;
  Node& node = cluster.node(0);

  // Global item table.
  HashTable::Options ht;
  ht.buckets = std::max<uint64_t>(64, static_cast<uint64_t>(options.items));
  ht.value_size = kItemBytes;
  auto items = co_await HashTable::Create(node, ht, 0);
  if (!items.ok()) {
    co_return items.status();
  }
  db.item_ = *items;

  // Per-warehouse co-partitioned indexes (12 hash tables + 4 B-trees in the
  // paper; here 6 hash tables + 2 B-trees per warehouse cover the schema).
  for (int w = 1; w <= options.warehouses; w++) {
    Partition part;
    auto mk = [&](uint64_t buckets, uint32_t vsize,
                  RegionId colocate) -> Task<StatusOr<HashTable>> {
      HashTable::Options o;
      o.buckets = buckets;
      o.value_size = vsize;
      o.colocate_with = colocate;
      co_return co_await HashTable::Create(node, o, 0);
    };
    auto wt = co_await mk(16, kWarehouseBytes, kInvalidRegion);
    if (!wt.ok()) {
      co_return wt.status();
    }
    part.warehouse = *wt;
    part.anchor = part.warehouse.regions()[0];

    auto dt = co_await mk(32, kDistrictBytes, part.anchor);
    if (!dt.ok()) {
      co_return dt.status();
    }
    part.district = *dt;
    auto ct = co_await mk(
        static_cast<uint64_t>(options.districts) * options.customers, kCustomerBytes,
        part.anchor);
    if (!ct.ok()) {
      co_return ct.status();
    }
    part.customer = *ct;
    auto st = co_await mk(static_cast<uint64_t>(options.items), kStockBytes, part.anchor);
    if (!st.ok()) {
      co_return st.status();
    }
    part.stock = *st;
    auto ot = co_await mk(
        static_cast<uint64_t>(options.districts) * (options.init_orders + 4096),
        kOrderBytes, part.anchor);
    if (!ot.ok()) {
      co_return ot.status();
    }
    part.order = *ot;
    auto hist = co_await mk(4096, kHistoryBytes, part.anchor);
    if (!hist.ok()) {
      co_return hist.status();
    }
    part.history = *hist;

    BTree::Options bto;
    bto.colocate_with = part.anchor;
    auto no = co_await BTree::Create(node, bto, 0);
    if (!no.ok()) {
      co_return no.status();
    }
    part.new_order = *no;
    auto ol = co_await BTree::Create(node, bto, 0);
    if (!ol.ok()) {
      co_return ol.status();
    }
    part.order_line = *ol;

    db.parts_->push_back(part);
    const RegionPlacement* placement = node.config().Placement(part.anchor);
    db.homes_->push_back(placement != nullptr ? placement->primary : 0);
  }

  // Load items.
  Pcg32 rng(options.load_seed);
  for (int i = 1; i <= options.items; i += 8) {
    for (int attempt = 0; attempt < 5; attempt++) {
      auto tx = node.Begin(0);
      bool ok = true;
      for (int j = i; j < i + 8 && j <= options.items && ok; j++) {
        std::vector<uint8_t> row(kItemBytes, 0);
        PutU32At(&row, 0, rng.Uniform(9900) + 100);  // price in cents
        ok = (co_await db.item_.Put(*tx, StockKey(static_cast<uint64_t>(j)), std::move(row)))
                 .ok();
      }
      Status s(StatusCode::kInternal, "load");
      if (ok) {
        s = co_await tx->Commit();
      }
      if (s.ok()) {
        break;
      }
      if (s.code() != StatusCode::kAborted) {
        co_return s;
      }
    }
  }

  for (int w = 1; w <= options.warehouses; w++) {
    Status s = co_await db.LoadWarehouse(cluster, static_cast<uint64_t>(w));
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return db;
}

Task<Status> TpccDb::LoadWarehouse(Cluster& cluster, uint64_t w) {
  Node& node = cluster.node(0);
  const Partition& part = Part(w);
  Pcg32 rng(HashCombine(options_.load_seed, w));

  // Warehouse + districts.
  {
    auto tx = node.Begin(0);
    std::vector<uint8_t> wrow(kWarehouseBytes, 0);
    PutU32At(&wrow, 8, rng.Uniform(2000));  // tax
    Status s = co_await part.warehouse.Put(*tx, w, std::move(wrow));
    if (!s.ok()) {
      co_return s;
    }
    for (int d = 1; d <= options_.districts; d++) {
      std::vector<uint8_t> drow(kDistrictBytes, 0);
      PutU32At(&drow, 0, static_cast<uint32_t>(options_.init_orders + 1));  // next_o_id
      s = co_await part.district.Put(*tx, Wd(w, static_cast<uint64_t>(d)), std::move(drow));
      if (!s.ok()) {
        co_return s;
      }
    }
    s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
  }

  // Customers (batched).
  for (int d = 1; d <= options_.districts; d++) {
    for (int c = 1; c <= options_.customers; c += 8) {
      auto tx = node.Begin(0);
      for (int j = c; j < c + 8 && j <= options_.customers; j++) {
        std::vector<uint8_t> crow(kCustomerBytes, 0);
        PutU64At(&crow, 0, static_cast<uint64_t>(-1000));  // balance -10.00 (spec)
        Status s = co_await part.customer.Put(
            *tx, CustKey(w, static_cast<uint64_t>(d), static_cast<uint64_t>(j)),
            std::move(crow));
        if (!s.ok()) {
          co_return s;
        }
      }
      Status s = co_await tx->Commit();
      if (!s.ok()) {
        co_return s;
      }
    }
  }

  // Stock (batched).
  for (int i = 1; i <= options_.items; i += 8) {
    auto tx = node.Begin(0);
    for (int j = i; j < i + 8 && j <= options_.items; j++) {
      std::vector<uint8_t> srow(kStockBytes, 0);
      PutU32At(&srow, 0, rng.Uniform(90) + 10);  // quantity 10-99
      Status s =
          co_await part.stock.Put(*tx, StockKey(static_cast<uint64_t>(j)), std::move(srow));
      if (!s.ok()) {
        co_return s;
      }
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
  }

  // Initial orders with order lines and the new-order queue.
  for (int d = 1; d <= options_.districts; d++) {
    for (int o = 1; o <= options_.init_orders; o += 4) {
      auto tx = node.Begin(0);
      for (int j = o; j < o + 4 && j <= options_.init_orders; j++) {
        uint64_t ow = w;
        uint64_t od = static_cast<uint64_t>(d);
        uint64_t oo = static_cast<uint64_t>(j);
        uint32_t c_id = rng.Uniform(static_cast<uint32_t>(options_.customers)) + 1;
        uint32_t lines = rng.Uniform(6) + 5;
        std::vector<uint8_t> orow(kOrderBytes, 0);
        PutU32At(&orow, 0, c_id);
        PutU32At(&orow, 20, j > options_.init_orders * 7 / 10 ? 0 : 1);  // carrier
        PutU32At(&orow, 24, lines);
        Status s = co_await part.order.Put(*tx, OrderKey(ow, od, oo), std::move(orow));
        if (!s.ok()) {
          co_return s;
        }
        for (uint32_t l = 1; l <= lines; l++) {
          uint32_t item = rng.Uniform(static_cast<uint32_t>(options_.items)) + 1;
          s = co_await part.order_line.Insert(*tx, OlKey(ow, od, oo, l),
                                              PackOrderLine(item, 5, 500));
          if (!s.ok()) {
            co_return s;
          }
        }
        // The most recent 30% are undelivered: they sit in the new-order queue.
        if (j > options_.init_orders * 7 / 10) {
          s = co_await part.new_order.Insert(*tx, OrderKey(ow, od, oo), oo);
          if (!s.ok()) {
            co_return s;
          }
        }
      }
      Status s = co_await tx->Commit();
      if (!s.ok()) {
        co_return s;
      }
    }
  }
  co_return OkStatus();
}

std::vector<MachineId> TpccDb::ClientMachines(Cluster& cluster) const {
  (void)cluster;
  std::vector<MachineId> out = *homes_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t TpccDb::HomeWarehouse(Node& node, Pcg32& rng) const {
  std::vector<uint64_t> mine;
  for (size_t i = 0; i < homes_->size(); i++) {
    if ((*homes_)[i] == node.id()) {
      mine.push_back(i + 1);
    }
  }
  if (mine.empty()) {
    return rng.Uniform64(homes_->size()) + 1;
  }
  return mine[rng.Uniform64(mine.size())];
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Task<bool> TpccDb::NewOrder(Node& node, int thread, Pcg32& rng) const {
  uint64_t w = HomeWarehouse(node, rng);
  uint64_t d = rng.Uniform(static_cast<uint32_t>(options_.districts)) + 1;
  uint64_t c = rng.Uniform(static_cast<uint32_t>(options_.customers)) + 1;
  uint32_t lines = rng.Uniform(11) + 5;  // 5-15 order lines
  if (rng.Bernoulli(options_.rollback_fraction)) {
    stats_->rollbacks++;  // spec: ~1% of new-orders roll back (invalid item)
    co_return false;
  }
  struct Line {
    uint32_t item;
    uint64_t supply_w;
    uint32_t qty;
  };
  std::vector<Line> order_lines;
  for (uint32_t l = 0; l < lines; l++) {
    Line line;
    line.item = rng.Uniform(static_cast<uint32_t>(options_.items)) + 1;
    line.supply_w = w;
    if (options_.warehouses > 1 && rng.Bernoulli(options_.remote_item_fraction)) {
      do {
        line.supply_w = rng.Uniform64(static_cast<uint64_t>(options_.warehouses)) + 1;
      } while (line.supply_w == w);
    }
    line.qty = rng.Uniform(10) + 1;
    order_lines.push_back(line);
  }

  auto attempt_fn = [&]() -> Task<Status> {
    const Partition& part = Part(w);
    auto tx = node.Begin(thread);
    auto wrow = co_await part.warehouse.Get(*tx, w);
    if (!wrow.ok() || !wrow->has_value()) {
      co_return NotFoundStatus("warehouse");
    }
    auto drow = co_await part.district.Get(*tx, Wd(w, d));
    if (!drow.ok() || !drow->has_value()) {
      co_return NotFoundStatus("district");
    }
    std::vector<uint8_t> dnew = **drow;
    uint32_t o_id = U32At(dnew, 0);
    PutU32At(&dnew, 0, o_id + 1);
    Status s = co_await part.district.Put(*tx, Wd(w, d), std::move(dnew));
    if (!s.ok()) {
      co_return s;
    }
    auto crow = co_await part.customer.Get(*tx, CustKey(w, d, c));
    if (!crow.ok() || !crow->has_value()) {
      co_return NotFoundStatus("customer");
    }
    // Record the customer's latest order for ORDER-STATUS.
    std::vector<uint8_t> cnew = **crow;
    PutU32At(&cnew, 28, o_id);
    s = co_await part.customer.Put(*tx, CustKey(w, d, c), std::move(cnew));
    if (!s.ok()) {
      co_return s;
    }

    uint32_t total = 0;
    for (const Line& line : order_lines) {
      auto irow = co_await item_.Get(*tx, StockKey(line.item));
      if (!irow.ok() || !irow->has_value()) {
        co_return NotFoundStatus("item");
      }
      uint32_t price = U32At(**irow, 0);
      const Partition& spart = Part(line.supply_w);
      auto srow = co_await spart.stock.Get(*tx, StockKey(line.item));
      if (!srow.ok() || !srow->has_value()) {
        co_return NotFoundStatus("stock");
      }
      std::vector<uint8_t> snew = **srow;
      uint32_t qty = U32At(snew, 0);
      qty = qty >= line.qty + 10 ? qty - line.qty : qty + 91 - line.qty;
      PutU32At(&snew, 0, qty);
      PutU64At(&snew, 8, U64At(snew, 8) + line.qty);
      PutU32At(&snew, 16, U32At(snew, 16) + 1);
      if (line.supply_w != w) {
        PutU32At(&snew, 20, U32At(snew, 20) + 1);
      }
      s = co_await spart.stock.Put(*tx, StockKey(line.item), std::move(snew));
      if (!s.ok()) {
        co_return s;
      }
      total += price * line.qty;
    }

    std::vector<uint8_t> orow(kOrderBytes, 0);
    PutU32At(&orow, 0, static_cast<uint32_t>(c));
    PutU32At(&orow, 24, lines);
    s = co_await part.order.Put(*tx, OrderKey(w, d, o_id), std::move(orow));
    if (!s.ok()) {
      co_return s;
    }
    s = co_await part.new_order.Insert(*tx, OrderKey(w, d, o_id), o_id);
    if (!s.ok()) {
      co_return s;
    }
    uint32_t ol_no = 1;
    for (const Line& line : order_lines) {
      s = co_await part.order_line.Insert(*tx, OlKey(w, d, o_id, ol_no++),
                                          PackOrderLine(line.item, line.qty, total));
      if (!s.ok()) {
        co_return s;
      }
    }
    co_return co_await tx->Commit();
  };
  bool ok = co_await WithRetries(attempt_fn);
  if (ok) {
    stats_->new_order_committed++;
  }
  co_return ok;
}

Task<bool> TpccDb::Payment(Node& node, int thread, Pcg32& rng) const {
  uint64_t w = HomeWarehouse(node, rng);
  uint64_t d = rng.Uniform(static_cast<uint32_t>(options_.districts)) + 1;
  uint64_t cw = w;
  uint64_t cd = d;
  if (options_.warehouses > 1 && rng.Bernoulli(options_.remote_customer_fraction)) {
    do {
      cw = rng.Uniform64(static_cast<uint64_t>(options_.warehouses)) + 1;
    } while (cw == w);
    cd = rng.Uniform(static_cast<uint32_t>(options_.districts)) + 1;
  }
  uint64_t c = rng.Uniform(static_cast<uint32_t>(options_.customers)) + 1;
  uint64_t amount = rng.Uniform(5000) + 100;
  uint64_t hkey = Mix64(HashCombine((*history_seq_)++, node.id())) | 1;
  if (hkey == HashTable::kTombstoneKey) {
    hkey = 2;
  }

  auto attempt_fn = [&]() -> Task<Status> {
    const Partition& part = Part(w);
    const Partition& cpart = Part(cw);
    auto tx = node.Begin(thread);
    auto wrow = co_await part.warehouse.Get(*tx, w);
    if (!wrow.ok() || !wrow->has_value()) {
      co_return NotFoundStatus("warehouse");
    }
    std::vector<uint8_t> wnew = **wrow;
    PutU64At(&wnew, 0, U64At(wnew, 0) + amount);  // ytd
    Status s = co_await part.warehouse.Put(*tx, w, std::move(wnew));
    if (!s.ok()) {
      co_return s;
    }
    auto drow = co_await part.district.Get(*tx, Wd(w, d));
    if (!drow.ok() || !drow->has_value()) {
      co_return NotFoundStatus("district");
    }
    std::vector<uint8_t> dnew = **drow;
    PutU64At(&dnew, 8, U64At(dnew, 8) + amount);
    s = co_await part.district.Put(*tx, Wd(w, d), std::move(dnew));
    if (!s.ok()) {
      co_return s;
    }
    auto crow = co_await cpart.customer.Get(*tx, CustKey(cw, cd, c));
    if (!crow.ok() || !crow->has_value()) {
      co_return NotFoundStatus("customer");
    }
    std::vector<uint8_t> cnew = **crow;
    PutU64At(&cnew, 0, U64At(cnew, 0) - amount);            // balance
    PutU64At(&cnew, 8, U64At(cnew, 8) + amount);            // ytd payment
    PutU32At(&cnew, 16, U32At(cnew, 16) + 1);               // payment count
    s = co_await cpart.customer.Put(*tx, CustKey(cw, cd, c), std::move(cnew));
    if (!s.ok()) {
      co_return s;
    }
    std::vector<uint8_t> hrow(kHistoryBytes, 0);
    PutU64At(&hrow, 0, amount);
    s = co_await part.history.Put(*tx, hkey, std::move(hrow));
    if (!s.ok()) {
      co_return s;
    }
    co_return co_await tx->Commit();
  };
  bool ok = co_await WithRetries(attempt_fn);
  if (ok) {
    stats_->payment++;
  }
  co_return ok;
}

Task<bool> TpccDb::OrderStatus(Node& node, int thread, Pcg32& rng) const {
  uint64_t w = HomeWarehouse(node, rng);
  uint64_t d = rng.Uniform(static_cast<uint32_t>(options_.districts)) + 1;
  uint64_t c = rng.Uniform(static_cast<uint32_t>(options_.customers)) + 1;
  const Partition& part = Part(w);

  auto tx = node.Begin(thread);
  auto crow = co_await part.customer.Get(*tx, CustKey(w, d, c));
  if (!crow.ok() || !crow->has_value()) {
    co_return false;
  }
  uint32_t last_order = U32At(**crow, 28);
  if (last_order != 0) {
    auto orow = co_await part.order.Get(*tx, OrderKey(w, d, last_order));
    if (!orow.ok()) {
      co_return false;
    }
    auto ols = co_await part.order_line.Scan(*tx, OlKey(w, d, last_order, 0),
                                             OlKey(w, d, last_order + 1, 0), 20);
    if (!ols.ok()) {
      co_return false;
    }
  }
  Status s = co_await tx->Commit();
  if (s.ok()) {
    stats_->order_status++;
  }
  co_return s.ok();
}

Task<bool> TpccDb::Delivery(Node& node, int thread, Pcg32& rng) const {
  uint64_t w = HomeWarehouse(node, rng);
  const Partition& part = Part(w);
  int delivered = 0;
  // One transaction per district, as the spec permits.
  for (uint64_t d = 1; d <= static_cast<uint64_t>(options_.districts); d++) {
    auto attempt_fn = [&, d]() -> Task<Status> {
          auto tx = node.Begin(thread);
          auto oldest = co_await part.new_order.Scan(*tx, OrderKey(w, d, 0),
                                                     OrderKey(w, d + 1, 0), 1);
          if (!oldest.ok()) {
            co_return oldest.status();
          }
          if (oldest->empty()) {
            co_return NotFoundStatus("no undelivered order");
          }
          uint64_t okey = (*oldest)[0].first;
          uint64_t o = (*oldest)[0].second;
          Status s = co_await part.new_order.Remove(*tx, okey);
          if (!s.ok()) {
            co_return s;
          }
          auto orow = co_await part.order.Get(*tx, okey);
          if (!orow.ok() || !orow->has_value()) {
            co_return NotFoundStatus("order row");
          }
          std::vector<uint8_t> onew = **orow;
          uint32_t c = U32At(onew, 0);
          PutU32At(&onew, 20, 7);  // carrier id
          s = co_await part.order.Put(*tx, okey, std::move(onew));
          if (!s.ok()) {
            co_return s;
          }
          auto ols =
              co_await part.order_line.Scan(*tx, OlKey(w, d, o, 0), OlKey(w, d, o + 1, 0), 20);
          if (!ols.ok()) {
            co_return ols.status();
          }
          uint64_t total = 0;
          for (const auto& [k, v] : *ols) {
            (void)k;
            total += v & 0xffffff;
          }
          auto crow = co_await part.customer.Get(*tx, CustKey(w, d, c));
          if (!crow.ok() || !crow->has_value()) {
            co_return NotFoundStatus("customer");
          }
          std::vector<uint8_t> cnew = **crow;
          PutU64At(&cnew, 0, U64At(cnew, 0) + total);  // balance
          PutU32At(&cnew, 20, U32At(cnew, 20) + 1);    // delivery count
          s = co_await part.customer.Put(*tx, CustKey(w, d, c), std::move(cnew));
          if (!s.ok()) {
            co_return s;
          }
          co_return co_await tx->Commit();
    };
    bool ok = co_await WithRetries(attempt_fn, 4);
    if (ok) {
      delivered++;
    }
  }
  if (delivered > 0) {
    stats_->delivery++;
  }
  co_return delivered > 0;
}

Task<bool> TpccDb::StockLevel(Node& node, int thread, Pcg32& rng) const {
  uint64_t w = HomeWarehouse(node, rng);
  uint64_t d = rng.Uniform(static_cast<uint32_t>(options_.districts)) + 1;
  uint32_t threshold = rng.Uniform(11) + 10;
  const Partition& part = Part(w);

  auto tx = node.Begin(thread);
  auto drow = co_await part.district.Get(*tx, Wd(w, d));
  if (!drow.ok() || !drow->has_value()) {
    co_return false;
  }
  uint32_t next_o = U32At(**drow, 0);
  uint64_t lo_order = next_o > 20 ? next_o - 20 : 1;
  auto ols = co_await part.order_line.Scan(*tx, OlKey(w, d, lo_order, 0),
                                           OlKey(w, d, next_o, 0), 60);
  if (!ols.ok()) {
    co_return false;
  }
  std::set<uint32_t> seen;
  int low_stock = 0;
  for (const auto& [k, v] : *ols) {
    (void)k;
    uint32_t item = static_cast<uint32_t>(v >> 32);
    if (!seen.insert(item).second || seen.size() > 24) {
      continue;
    }
    auto srow = co_await part.stock.Get(*tx, StockKey(item));
    if (srow.ok() && srow->has_value() && U32At(**srow, 0) < threshold) {
      low_stock++;
    }
  }
  Status s = co_await tx->Commit();
  if (s.ok()) {
    stats_->stock_level++;
  }
  co_return s.ok();
}

Task<StatusOr<uint32_t>> TpccDb::DistrictRowForTest(Transaction& tx, uint64_t w,
                                                    uint64_t d) const {
  auto drow = co_await Part(w).district.Get(tx, Wd(w, d));
  if (!drow.ok()) {
    co_return drow.status();
  }
  if (!drow->has_value()) {
    co_return NotFoundStatus("district");
  }
  co_return U32At(**drow, 0);
}

Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> TpccDb::OrderLineScanForTest(
    Transaction& tx, uint64_t w, uint64_t d) const {
  co_return co_await Part(w).order_line.Scan(tx, OlKey(w, d, 0, 0), OlKey(w, d + 1, 0, 0),
                                             100000);
}

WorkloadFn TpccDb::MakeWorkload() const {
  TpccDb db = *this;
  return [db](Node& node, int thread, Pcg32& rng) -> Task<bool> {
    uint32_t dice = rng.Uniform(100);
    if (dice < 45) {
      co_return co_await db.NewOrder(node, thread, rng);
    } else if (dice < 88) {
      co_return co_await db.Payment(node, thread, rng);
    } else if (dice < 92) {
      co_return co_await db.OrderStatus(node, thread, rng);
    } else if (dice < 96) {
      co_return co_await db.Delivery(node, thread, rng);
    } else {
      co_return co_await db.StockLevel(node, thread, rng);
    }
  };
}

}  // namespace farm
