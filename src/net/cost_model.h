// Cost model for the simulated cluster.
//
// Calibrated against the paper's measured regime (90 machines, two 56 Gbps
// ConnectX-3 NICs each): one-sided RDMA reads sustain ~20 ops/us/machine and
// are CPU bound at small sizes; RPC over RDMA is ~4x slower because it
// additionally burns remote CPU (Figure 2). The absolute constants are
// tunable per experiment; the *structure* (one-sided ops charge no remote
// CPU, RPCs do) is what reproduces the paper's shapes.
#ifndef SRC_NET_COST_MODEL_H_
#define SRC_NET_COST_MODEL_H_

#include "src/sim/time.h"

namespace farm {

struct CostModel {
  // --- Network ---
  SimDuration wire_latency = 650;             // one-way propagation + switch, ns
  SimDuration nic_msg_gap = 35;               // per-message NIC occupancy (~28M msg/s)
  double nic_bytes_per_ns = 7.0;              // 56 Gbps line rate = 7 bytes/ns
  SimDuration rc_op_timeout = 1 * kMillisecond;  // failed one-sided op detection

  // --- CPU: one-sided verbs (initiator only; remote CPU is never charged) ---
  SimDuration cpu_rdma_issue = 450;           // build + post work request
  SimDuration cpu_rdma_completion = 350;      // poll completion queue, dispatch

  // --- CPU: RPC messaging (charged at both ends) ---
  SimDuration cpu_rpc_issue = 800;
  SimDuration cpu_rpc_completion = 450;
  SimDuration cpu_rpc_handler = 1800;         // receive, dispatch, post reply
  double cpu_per_byte = 0.5;                  // ns/byte touched by a CPU copy

  // --- CPU: FaRM ring-buffer log/message processing ---
  SimDuration cpu_log_poll = 250;             // notice + parse a polled record
  SimDuration cpu_lock_per_object = 180;      // version CAS + bookkeeping
  SimDuration cpu_apply_per_byte = 0.0 + 0;   // unused placeholder (kept 0)

  // --- CPU: transaction execution bookkeeping at the coordinator ---
  SimDuration cpu_tx_begin = 150;
  SimDuration cpu_tx_read_local = 250;        // local memory read incl. version check
  SimDuration cpu_tx_write_buffer = 200;      // buffer a write locally
  SimDuration cpu_tx_commit_setup = 400;      // reservations + record marshalling

  // --- Doorbell batching ---
  // Real RNICs let the driver post N work requests and ring the doorbell
  // once; the MMIO + per-message setup cost is paid once per batch, with a
  // much smaller per-op gap for the chained requests.
  SimDuration nic_doorbell_gap = 16;          // per chained op after the first
  SimDuration cpu_rdma_issue_batched = 150;   // per extra work request in a batch

  // NIC occupancy of one message carrying `bytes` of payload.
  SimDuration NicOccupancy(uint64_t bytes) const {
    SimDuration transfer = static_cast<SimDuration>(static_cast<double>(bytes) / nic_bytes_per_ns);
    return transfer > nic_msg_gap ? transfer : nic_msg_gap;
  }

  // NIC occupancy of a doorbell batch: `ops` messages totaling `bytes`,
  // posted with one doorbell. A batch of one degenerates to NicOccupancy
  // exactly, so unbatched runs keep their byte-identical traces.
  SimDuration NicOccupancyBatch(uint32_t ops, uint64_t bytes) const {
    if (ops <= 1) {
      return NicOccupancy(bytes);
    }
    SimDuration transfer = static_cast<SimDuration>(static_cast<double>(bytes) / nic_bytes_per_ns);
    SimDuration gaps = nic_msg_gap + static_cast<SimDuration>(ops - 1) * nic_doorbell_gap;
    return transfer > gaps ? transfer : gaps;
  }

  // CPU time to copy/touch `bytes` in a handler.
  SimDuration CpuBytes(uint64_t bytes) const {
    return static_cast<SimDuration>(static_cast<double>(bytes) * cpu_per_byte);
  }
};

}  // namespace farm

#endif  // SRC_NET_COST_MODEL_H_
