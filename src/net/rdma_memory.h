// Interface the fabric uses to access a machine's RDMA-registered memory.
//
// One-sided verbs act on the target's memory at NIC service time without
// involving the target's (simulated) CPU -- implementations must therefore
// be plain memory operations with no scheduling side effects.
#ifndef SRC_NET_RDMA_MEMORY_H_
#define SRC_NET_RDMA_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace farm {

class RdmaMemory {
 public:
  virtual ~RdmaMemory() = default;

  // Each returns false if [addr, addr+len) is not registered memory
  // (the NIC would complete the verb with a protection error).
  virtual bool RdmaRead(uint64_t addr, size_t len, uint8_t* out) = 0;
  virtual bool RdmaWrite(uint64_t addr, const uint8_t* data, size_t len) = 0;
  // 64-bit atomic compare-and-swap; *observed receives the pre-swap value.
  virtual bool RdmaCas(uint64_t addr, uint64_t expected, uint64_t desired, uint64_t* observed) = 0;
};

}  // namespace farm

#endif  // SRC_NET_RDMA_MEMORY_H_
