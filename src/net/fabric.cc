#include "src/net/fabric.h"

#include <cstring>

#include "src/obs/trace.h"

namespace farm {

namespace {

// Wire sizes of verb headers (request without payload / response framing).
constexpr uint32_t kVerbHeaderBytes = 32;
constexpr uint32_t kCasResponseBytes = 8;
constexpr uint32_t kAckBytes = 8;

// Per-op instant on the initiator's track plus the cumulative byte counter
// for the op's transport (counter_name may be null for datagrams).
// High-volume, so double-gated: global tracer present AND capture_net on.
void TraceOp(const char* name, MachineId src, HwThread* thread, const char* counter_name,
             uint64_t counter_value) {
#ifndef FARM_TRACE_DISABLED
  trace::Tracer* tracer = trace::Global();
  if (tracer == nullptr || !tracer->capture_net()) {
    return;
  }
  tracer->Instant(static_cast<uint32_t>(src), thread != nullptr ? static_cast<uint32_t>(thread->index()) : 0,
                  "net", name);
  if (counter_name != nullptr) {
    tracer->CounterValue(static_cast<uint32_t>(src), counter_name, counter_value);
  }
#else
  (void)name;
  (void)src;
  (void)thread;
  (void)counter_name;
  (void)counter_value;
#endif
}

}  // namespace

void FabricStats::BindTo(metrics::Registry& reg) {
  rdma_reads = reg.GetCounter("fabric_rdma_reads");
  rdma_writes = reg.GetCounter("fabric_rdma_writes");
  rdma_cas = reg.GetCounter("fabric_rdma_cas");
  rpcs = reg.GetCounter("fabric_rpcs");
  datagrams = reg.GetCounter("fabric_datagrams");
  rdma_bytes = reg.GetCounter("fabric_rdma_bytes");
  rpc_bytes = reg.GetCounter("fabric_rpc_bytes");
}

void FabricStats::Reset() {
  rdma_reads.Reset();
  rdma_writes.Reset();
  rdma_cas.Reset();
  rpcs.Reset();
  datagrams.Reset();
  rdma_bytes.Reset();
  rpc_bytes.Reset();
}

void Fabric::AddMachine(Machine* machine, RdmaMemory* memory, int num_nics) {
  MachineId id = machine->id();
  if (id >= endpoints_.size()) {
    endpoints_.resize(id + 1);
    partition_group_.resize(id + 1, 0);
  }
  Endpoint& ep = endpoints_[id];
  ep.machine = machine;
  ep.memory = memory;
  ep.nics.assign(static_cast<size_t>(num_nics), NicPort{});
}

bool Fabric::IsAlive(MachineId m) const {
  return m < endpoints_.size() && endpoints_[m].machine != nullptr && endpoints_[m].machine->alive();
}

Machine* Fabric::machine(MachineId m) const {
  FARM_CHECK(m < endpoints_.size() && endpoints_[m].machine != nullptr);
  return endpoints_[m].machine;
}

void Fabric::SetPartition(const std::vector<std::vector<MachineId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  int g = 0;
  for (const auto& group : groups) {
    for (MachineId m : group) {
      FARM_CHECK(m < partition_group_.size());
      partition_group_[m] = g;
    }
    g++;
  }
}

void Fabric::ClearPartition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

bool Fabric::Reachable(MachineId a, MachineId b) const {
  if (!partitioned_) {
    return true;
  }
  if (a >= partition_group_.size() || b >= partition_group_.size()) {
    return false;
  }
  return partition_group_[a] >= 0 && partition_group_[a] == partition_group_[b];
}

void Fabric::CompleteOnThread(Future<NetResult> done, NetResult result, HwThread* thread,
                              SimDuration cpu_cost) {
  if (thread != nullptr) {
    thread->Run(cpu_cost, [done, result = std::move(result)]() mutable {
      done.Set(std::move(result));
    });
  } else {
    done.Set(std::move(result));
  }
}

Future<NetResult> Fabric::Read(MachineId src, MachineId dst, uint64_t addr, uint32_t len,
                               HwThread* thread) {
  stats_.rdma_reads++;
  stats_.rdma_bytes += len;
  TraceOp("rdma_read", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kRead, src, dst, addr, len, {}, 0, 0, thread);
}

Future<NetResult> Fabric::Write(MachineId src, MachineId dst, uint64_t addr,
                                std::vector<uint8_t> data, HwThread* thread,
                                std::function<void()> on_delivered) {
  stats_.rdma_writes++;
  stats_.rdma_bytes += data.size();
  TraceOp("rdma_write", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kWrite, src, dst, addr, static_cast<uint32_t>(data.size()),
                  std::move(data), 0, 0, thread, std::move(on_delivered));
}

Future<NetResult> Fabric::Cas(MachineId src, MachineId dst, uint64_t addr, uint64_t expected,
                              uint64_t desired, HwThread* thread) {
  stats_.rdma_cas++;
  stats_.rdma_bytes += 16;
  TraceOp("rdma_cas", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kCas, src, dst, addr, 8, {}, expected, desired, thread);
}

Future<NetResult> Fabric::OneSided(Verb verb, MachineId src, MachineId dst, uint64_t addr,
                                   uint32_t len, std::vector<uint8_t> data, uint64_t expected,
                                   uint64_t desired, HwThread* thread,
                                   std::function<void()> on_delivered) {
  Future<NetResult> done;
  Ep(src);  // validate endpoints exist
  Ep(dst);

  // Request sizes: reads/CAS carry a header; writes carry the payload.
  uint64_t req_bytes = verb == Verb::kWrite ? kVerbHeaderBytes + len : kVerbHeaderBytes;
  uint64_t resp_bytes = verb == Verb::kRead ? len : (verb == Verb::kCas ? kCasResponseBytes : kAckBytes);

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rdma_issue) : sim_.Now();

  auto fail_later = [this, done, thread, src](SimTime from) {
    sim_.At(from + cost_.rc_op_timeout, [this, done, thread, src]() {
      if (!IsAlive(src)) {
        return;  // initiator died; nobody is polling the CQ
      }
      CompleteOnThread(done, NetResult{UnavailableStatus("one-sided op timed out"), {}}, thread,
                       cost_.cpu_rdma_completion);
    });
  };

  sim_.At(issue_done, [=, this, data = std::move(data)]() mutable {
    if (!IsAlive(src)) {
      return;
    }
    if (!Reachable(src, dst) || !IsAlive(dst)) {
      fail_later(sim_.Now());
      return;
    }
    NicPort& src_nic = PickNic(Ep(src));
    SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));
    SimTime arrival = sent + cost_.wire_latency;

    sim_.At(arrival, [=, this, data = std::move(data)]() mutable {
      if (!Reachable(src, dst) || !IsAlive(dst)) {
        fail_later(sim_.Now());
        return;
      }
      NicPort& dst_nic = PickNic(Ep(dst));
      // The target NIC serves the verb: DMA in/out of target memory.
      SimTime served = dst_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes + resp_bytes));

      sim_.At(served, [=, this, data = std::move(data)]() mutable {
        if (!Reachable(src, dst) || !IsAlive(dst)) {
          fail_later(sim_.Now());
          return;
        }
        Endpoint& dst_ep = Ep(dst);
        NetResult result;
        switch (verb) {
          case Verb::kRead: {
            result.data.resize(len);
            if (!dst_ep.memory->RdmaRead(addr, len, result.data.data())) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma read protection fault");
              result.data.clear();
            }
            break;
          }
          case Verb::kWrite: {
            if (!dst_ep.memory->RdmaWrite(addr, data.data(), data.size())) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma write protection fault");
            } else if (on_delivered) {
              on_delivered();
            }
            break;
          }
          case Verb::kCas: {
            uint64_t observed = 0;
            if (!dst_ep.memory->RdmaCas(addr, expected, desired, &observed)) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma cas protection fault");
            } else {
              result.data.resize(8);
              std::memcpy(result.data.data(), &observed, 8);
            }
            break;
          }
        }
        // Response (data / hardware ack) crosses back through the initiator NIC.
        NicPort& back_nic = PickNic(Ep(src));
        SimTime resp_arrival = sim_.Now() + cost_.wire_latency;
        SimTime delivered = back_nic.Acquire(resp_arrival, cost_.NicOccupancy(resp_bytes));
        sim_.At(delivered, [this, done, thread, src, result = std::move(result)]() mutable {
          if (!IsAlive(src)) {
            return;
          }
          CompleteOnThread(done, std::move(result), thread, cost_.cpu_rdma_completion);
        });
      });
    });
  });
  return done;
}

void Fabric::RegisterRpcService(MachineId m, uint16_t service, int thread_lo, int thread_hi,
                                RpcHandler handler) {
  Endpoint& ep = Ep(m);
  FARM_CHECK(thread_lo >= 0 && thread_hi >= thread_lo &&
             thread_hi < ep.machine->NumThreads());
  Endpoint::Service svc;
  svc.handler = std::move(handler);
  svc.thread_lo = thread_lo;
  svc.thread_hi = thread_hi;
  svc.next_thread = thread_lo;
  ep.services[service] = std::move(svc);
}

Future<NetResult> Fabric::Call(MachineId src, MachineId dst, uint16_t service,
                               std::vector<uint8_t> request, HwThread* thread,
                               SimDuration timeout) {
  stats_.rpcs++;
  stats_.rpc_bytes += request.size();
  TraceOp("rpc", src, thread, "rpc_bytes", stats_.rpc_bytes);
  Future<NetResult> done;
  auto decided = std::make_shared<bool>(false);
  auto complete = [this, done, decided, thread, src](NetResult r) {
    if (*decided) {
      return;
    }
    *decided = true;
    if (!IsAlive(src)) {
      return;
    }
    CompleteOnThread(done, std::move(r), thread, cost_.cpu_rpc_completion);
  };

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rpc_issue) : sim_.Now();
  sim_.At(issue_done + timeout, [complete]() {
    complete(NetResult{Status(StatusCode::kTimedOut, "rpc timeout"), {}});
  });

  uint64_t req_bytes = kVerbHeaderBytes + request.size();
  sim_.At(issue_done, [=, this, request = std::move(request)]() mutable {
    if (!IsAlive(src) || !Reachable(src, dst) || !IsAlive(dst)) {
      return;  // timeout will fire
    }
    Endpoint& src_ep = Ep(src);
    NicPort& src_nic = PickNic(src_ep);
    SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));
    SimTime arrival = sent + cost_.wire_latency;

    sim_.At(arrival, [=, this, request = std::move(request)]() mutable {
      if (!Reachable(src, dst) || !IsAlive(dst)) {
        return;
      }
      Endpoint& dst_ep = Ep(dst);
      NicPort& dst_nic = PickNic(dst_ep);
      SimTime received = dst_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));

      sim_.At(received, [=, this, request = std::move(request)]() mutable {
        if (!IsAlive(dst)) {
          return;
        }
        Endpoint& dep = Ep(dst);
        auto it = dep.services.find(service);
        if (it == dep.services.end()) {
          complete(NetResult{Status(StatusCode::kNotFound, "no such rpc service"), {}});
          return;
        }
        Endpoint::Service& svc = it->second;
        int tid = svc.next_thread;
        svc.next_thread = svc.next_thread >= svc.thread_hi ? svc.thread_lo : svc.next_thread + 1;
        HwThread& handler_thread = dep.machine->thread(tid);
        SimDuration handler_cost = cost_.cpu_rpc_handler + cost_.CpuBytes(request.size());

        ReplyFn reply = [=, this](std::vector<uint8_t> resp) {
          // Reply transport: dst NIC -> wire -> src NIC -> completion.
          if (!IsAlive(dst) || !Reachable(src, dst)) {
            return;
          }
          Endpoint& dep2 = Ep(dst);
          NicPort& out_nic = PickNic(dep2);
          uint64_t resp_bytes = kVerbHeaderBytes + resp.size();
          stats_.rpc_bytes += resp.size();
          SimTime resp_sent = out_nic.Acquire(sim_.Now(), cost_.NicOccupancy(resp_bytes));
          SimTime resp_arrival = resp_sent + cost_.wire_latency;
          sim_.At(resp_arrival, [=, this, resp = std::move(resp)]() mutable {
            if (!IsAlive(src)) {
              return;
            }
            Endpoint& sep = Ep(src);
            NicPort& in_nic = PickNic(sep);
            SimTime delivered = in_nic.Acquire(sim_.Now(), cost_.NicOccupancy(resp_bytes));
            sim_.At(delivered, [complete, resp = std::move(resp)]() mutable {
              complete(NetResult{OkStatus(), std::move(resp)});
            });
          });
        };

        handler_thread.Run(handler_cost,
                           [handler = svc.handler, src, request = std::move(request),
                            reply = std::move(reply)]() mutable {
                             handler(src, std::move(request), std::move(reply));
                           });
      });
    });
  });
  return done;
}

void Fabric::SetDatagramHandler(MachineId m, DatagramHandler handler) {
  Ep(m).datagram_handler = std::move(handler);
}

void Fabric::SendDatagram(MachineId src, MachineId dst, std::vector<uint8_t> payload,
                          bool bypass_nic_queue) {
  stats_.datagrams++;
  TraceOp("datagram", src, nullptr, nullptr, 0);
  if (!IsAlive(src) || !Reachable(src, dst) || !IsAlive(dst)) {
    return;
  }
  if (datagram_loss_ > 0 && loss_rng_.Bernoulli(datagram_loss_)) {
    return;
  }
  uint64_t bytes = kVerbHeaderBytes + payload.size();
  SimTime sent;
  if (bypass_nic_queue) {
    // Dedicated lease queue pair: pays transmission time but does not wait
    // behind data operations queued on the shared path.
    sent = sim_.Now() + cost_.NicOccupancy(bytes);
  } else {
    Endpoint& src_ep = Ep(src);
    sent = PickNic(src_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
  }
  SimTime arrival = sent + cost_.wire_latency;
  sim_.At(arrival, [=, this, payload = std::move(payload)]() mutable {
    if (!IsAlive(dst) || !Reachable(src, dst)) {
      return;
    }
    SimTime delivered;
    if (bypass_nic_queue) {
      delivered = sim_.Now() + cost_.NicOccupancy(bytes);
    } else {
      Endpoint& dst_ep = Ep(dst);
      delivered = PickNic(dst_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
    }
    sim_.At(delivered, [this, src, dst, payload = std::move(payload)]() mutable {
      if (!IsAlive(dst)) {
        return;
      }
      Endpoint& ep = Ep(dst);
      if (ep.datagram_handler) {
        ep.datagram_handler(src, std::move(payload));
      }
    });
  });
}

}  // namespace farm
