#include "src/net/fabric.h"

#include <cstring>

#include "src/obs/fault_hook.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

// Message-level flight records (msg-send at the caller, msg-recv at the
// handler). Service id in arg, peer machine in detail; no transaction id at
// this layer.
void FlightMsg(flight::Recorder* ring, SimTime now, flight::EventKind kind,
               uint16_t service, MachineId peer) {
  if (ring == nullptr) {
    return;
  }
  flight::Record r;
  r.time_ns = now;
  r.kind = static_cast<uint8_t>(kind);
  r.arg = static_cast<uint8_t>(service & 0xff);
  r.detail = peer;
  ring->Append(r);
}

// Wire sizes of verb headers (request without payload / response framing).
constexpr uint32_t kVerbHeaderBytes = 32;
constexpr uint32_t kCasResponseBytes = 8;
constexpr uint32_t kAckBytes = 8;

// Per-op instant on the initiator's track plus the cumulative byte counter
// for the op's transport (counter_name may be null for datagrams).
// High-volume, so double-gated: global tracer present AND capture_net on.
void TraceOp(const char* name, MachineId src, HwThread* thread, const char* counter_name,
             uint64_t counter_value) {
#ifndef FARM_TRACE_DISABLED
  trace::Tracer* tracer = trace::Global();
  if (tracer == nullptr || !tracer->capture_net()) {
    return;
  }
  tracer->Instant(static_cast<uint32_t>(src), thread != nullptr ? static_cast<uint32_t>(thread->index()) : 0,
                  "net", name);
  if (counter_name != nullptr) {
    tracer->CounterValue(static_cast<uint32_t>(src), counter_name, counter_value);
  }
#else
  (void)name;
  (void)src;
  (void)thread;
  (void)counter_name;
  (void)counter_value;
#endif
}

// Injected faults are rare and load-bearing for chaos debugging, so they
// trace whenever a tracer is attached (not gated on capture_net).
void TraceFault(const char* name, MachineId src) {
#ifndef FARM_TRACE_DISABLED
  trace::Tracer* tracer = trace::Global();
  if (tracer == nullptr) {
    return;
  }
  tracer->Instant(static_cast<uint32_t>(src), 0, "chaos", name);
#else
  (void)name;
  (void)src;
#endif
}

}  // namespace

void FabricStats::BindTo(metrics::Registry& reg) {
  rdma_reads = reg.GetCounter("fabric_rdma_reads");
  rdma_writes = reg.GetCounter("fabric_rdma_writes");
  rdma_cas = reg.GetCounter("fabric_rdma_cas");
  rpcs = reg.GetCounter("fabric_rpcs");
  datagrams = reg.GetCounter("fabric_datagrams");
  rdma_bytes = reg.GetCounter("fabric_rdma_bytes");
  rpc_bytes = reg.GetCounter("fabric_rpc_bytes");
  doorbells = reg.GetCounter("fabric_doorbells");
  faults_dropped = reg.GetCounter("fabric_fault_dropped");
  faults_delayed = reg.GetCounter("fabric_fault_delayed");
  faults_duplicated = reg.GetCounter("fabric_fault_duplicated");
  faults_reordered = reg.GetCounter("fabric_fault_reordered");
}

void FabricStats::Reset() {
  rdma_reads.Reset();
  rdma_writes.Reset();
  rdma_cas.Reset();
  rpcs.Reset();
  datagrams.Reset();
  rdma_bytes.Reset();
  rpc_bytes.Reset();
  doorbells.Reset();
  faults_dropped.Reset();
  faults_delayed.Reset();
  faults_duplicated.Reset();
  faults_reordered.Reset();
}

void Fabric::AddMachine(Machine* machine, RdmaMemory* memory, int num_nics) {
  MachineId id = machine->id();
  if (id >= endpoints_.size()) {
    endpoints_.resize(id + 1);
    partition_group_.resize(id + 1, 0);
  }
  Endpoint& ep = endpoints_[id];
  ep.machine = machine;
  ep.memory = memory;
  ep.nics.assign(static_cast<size_t>(num_nics), NicPort{});
}

bool Fabric::IsAlive(MachineId m) const {
  return m < endpoints_.size() && endpoints_[m].machine != nullptr && endpoints_[m].machine->alive();
}

Machine* Fabric::machine(MachineId m) const {
  FARM_CHECK(m < endpoints_.size() && endpoints_[m].machine != nullptr);
  return endpoints_[m].machine;
}

void Fabric::SetPartition(const std::vector<std::vector<MachineId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  int g = 0;
  for (const auto& group : groups) {
    for (MachineId m : group) {
      FARM_CHECK(m < partition_group_.size());
      partition_group_[m] = g;
    }
    g++;
  }
}

void Fabric::ClearPartition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

void Fabric::SetLinkFaults(MachineId src, MachineId dst, LinkFaults faults) {
  if (!faults.Any()) {
    link_faults_.erase({src, dst});
    return;
  }
  link_faults_[{src, dst}] = faults;
}

void Fabric::SetMachineLinkFaults(MachineId m, LinkFaults faults) {
  for (MachineId peer = 0; peer < endpoints_.size(); peer++) {
    if (peer == m || endpoints_[peer].machine == nullptr) {
      continue;
    }
    SetLinkFaults(m, peer, faults);
    SetLinkFaults(peer, m, faults);
  }
}

void Fabric::ClearLinkFaults(MachineId src, MachineId dst) {
  link_faults_.erase({src, dst});
}

Fabric::FaultOutcome Fabric::DrawFaults(MachineId src, MachineId dst) {
  FaultOutcome out;
  if (link_faults_.empty()) {
    return out;  // fault-free runs draw no randomness here
  }
  auto it = link_faults_.find({src, dst});
  if (it == link_faults_.end()) {
    return out;
  }
  const LinkFaults& f = it->second;
  // Draw order is fixed (drop, latency, reorder, dup) so a policy change in
  // one dimension does not shift the stream consumed by the others.
  if (f.drop > 0 && fault_rng_.Bernoulli(f.drop)) {
    out.drop = true;
    stats_.faults_dropped++;
    TraceFault("fault_drop", src);
    return out;
  }
  out.delay = f.extra_latency;
  if (f.jitter > 0) {
    out.delay += fault_rng_.Uniform64(f.jitter);
  }
  if (f.reorder > 0 && fault_rng_.Bernoulli(f.reorder)) {
    // Holding one message back past its successors is a bounded reorder on
    // an otherwise FIFO link.
    SimDuration window = f.reorder_window > 0 ? f.reorder_window : kMillisecond;
    out.delay += fault_rng_.Uniform64(window);
    stats_.faults_reordered++;
    TraceFault("fault_reorder", src);
  }
  if (out.delay > 0) {
    stats_.faults_delayed++;
    TraceFault("fault_delay", src);
  }
  if (f.dup > 0 && fault_rng_.Bernoulli(f.dup)) {
    out.duplicate = true;
    out.dup_delay = out.delay + (f.jitter > 0 ? fault_rng_.Uniform64(f.jitter) : 0);
    stats_.faults_duplicated++;
    TraceFault("fault_dup", src);
  }
  return out;
}

bool Fabric::Reachable(MachineId a, MachineId b) const {
  if (!partitioned_) {
    return true;
  }
  if (a >= partition_group_.size() || b >= partition_group_.size()) {
    return false;
  }
  return partition_group_[a] >= 0 && partition_group_[a] == partition_group_[b];
}

void Fabric::CompleteOnThread(Future<NetResult> done, NetResult result, HwThread* thread,
                              SimDuration cpu_cost) {
  if (thread != nullptr) {
    thread->Run(cpu_cost, [done, result = std::move(result)]() mutable {
      done.Set(std::move(result));
    });
  } else {
    done.Set(std::move(result));
  }
}

Future<NetResult> Fabric::Read(MachineId src, MachineId dst, uint64_t addr, uint32_t len,
                               HwThread* thread) {
  stats_.rdma_reads++;
  stats_.rdma_bytes += len;
  TraceOp("rdma_read", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kRead, src, dst, addr, len, {}, 0, 0, thread);
}

Future<NetResult> Fabric::Write(MachineId src, MachineId dst, uint64_t addr,
                                std::vector<uint8_t> data, HwThread* thread,
                                std::function<void()> on_delivered) {
  stats_.rdma_writes++;
  stats_.rdma_bytes += data.size();
  TraceOp("rdma_write", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kWrite, src, dst, addr, static_cast<uint32_t>(data.size()),
                  std::move(data), 0, 0, thread, std::move(on_delivered));
}

Future<NetResult> Fabric::WriteBatch(MachineId src, MachineId dst, std::vector<WriteSeg> segs,
                                     HwThread* thread, std::function<void()> on_delivered) {
  FARM_CHECK(!segs.empty());
  if (segs.size() == 1) {
    // A batch of one is a plain write and pays plain-write costs.
    return Write(src, dst, segs[0].addr, std::move(segs[0].data), thread,
                 std::move(on_delivered));
  }
  Ep(src);  // validate endpoints exist
  Ep(dst);

  uint64_t payload_bytes = 0;
  uint64_t req_bytes = 0;
  for (const WriteSeg& s : segs) {
    payload_bytes += s.data.size();
    req_bytes += kVerbHeaderBytes + s.data.size();
  }
  // Each segment is a real wire message; the batch amortizes only doorbell,
  // issue CPU, and the signaled completion.
  stats_.rdma_writes += segs.size();
  stats_.rdma_bytes += payload_bytes;
  stats_.doorbells++;
  TraceOp("rdma_write_batch", src, thread, "rdma_bytes", stats_.rdma_bytes);

  OneSidedOp* op = AcquireOneSided();
  op->verb = Verb::kWrite;
  op->src = src;
  op->dst = dst;
  op->addr = 0;
  op->len = static_cast<uint32_t>(payload_bytes);
  op->expected = 0;
  op->desired = 0;
  op->thread = thread;
  op->segs = std::move(segs);
  op->batch_ops = static_cast<uint32_t>(op->segs.size());
  op->on_delivered = std::move(on_delivered);
  op->done = Future<NetResult>();
  op->req_bytes = req_bytes;
  op->resp_bytes = kAckBytes;  // one signaled hardware ack for the batch

  SimDuration issue_cpu =
      cost_.cpu_rdma_issue + static_cast<SimDuration>(op->batch_ops - 1) * cost_.cpu_rdma_issue_batched;
  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(issue_cpu) : sim_.Now();
  sim_.At(issue_done, [op]() { op->fabric->OneSidedIssue(op); });
  return op->done;
}

Future<NetResult> Fabric::Cas(MachineId src, MachineId dst, uint64_t addr, uint64_t expected,
                              uint64_t desired, HwThread* thread) {
  stats_.rdma_cas++;
  stats_.rdma_bytes += 16;
  TraceOp("rdma_cas", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kCas, src, dst, addr, 8, {}, expected, desired, thread);
}

Fabric::OneSidedOp* Fabric::AcquireOneSided() {
  OneSidedOp* op = one_sided_free_;
  if (op != nullptr) {
    one_sided_free_ = op->next_free;
    op->next_free = nullptr;
  } else {
    one_sided_owned_.push_back(std::make_unique<OneSidedOp>());
    op = one_sided_owned_.back().get();
    op->fabric = this;
  }
  return op;
}

void Fabric::ReleaseOneSided(OneSidedOp* op) {
  op->data.clear();
  op->segs.clear();
  op->batch_ops = 1;
  op->on_delivered = nullptr;
  op->result.status = OkStatus();
  op->result.data.clear();
  op->next_free = one_sided_free_;
  one_sided_free_ = op;
}

Future<NetResult> Fabric::OneSided(Verb verb, MachineId src, MachineId dst, uint64_t addr,
                                   uint32_t len, std::vector<uint8_t> data, uint64_t expected,
                                   uint64_t desired, HwThread* thread,
                                   std::function<void()> on_delivered) {
  Ep(src);  // validate endpoints exist
  Ep(dst);

  OneSidedOp* op = AcquireOneSided();
  op->verb = verb;
  op->src = src;
  op->dst = dst;
  op->addr = addr;
  op->len = len;
  op->expected = expected;
  op->desired = desired;
  op->thread = thread;
  op->data = std::move(data);
  op->on_delivered = std::move(on_delivered);
  op->done = Future<NetResult>();
  // Request sizes: reads/CAS carry a header; writes carry the payload.
  op->req_bytes = verb == Verb::kWrite ? kVerbHeaderBytes + len : kVerbHeaderBytes;
  op->resp_bytes =
      verb == Verb::kRead ? len : (verb == Verb::kCas ? kCasResponseBytes : kAckBytes);

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rdma_issue) : sim_.Now();
  sim_.At(issue_done, [op]() { op->fabric->OneSidedIssue(op); });
  return op->done;
}

// RC transport gave up on an unreachable/dead peer: surface a timeout to the
// initiator one rc_op_timeout from now. The pending completion must not
// reference the record (it is released here), so it captures the future.
void Fabric::OneSidedFail(OneSidedOp* op) {
  Future<NetResult> done = op->done;
  HwThread* thread = op->thread;
  MachineId src = op->src;
  ReleaseOneSided(op);
  sim_.At(sim_.Now() + cost_.rc_op_timeout, [this, done, thread, src]() {
    if (!IsAlive(src)) {
      return;  // initiator died; nobody is polling the CQ
    }
    CompleteOnThread(done, NetResult{UnavailableStatus("one-sided op timed out"), {}}, thread,
                     cost_.cpu_rdma_completion);
  });
}

void Fabric::OneSidedIssue(OneSidedOp* op) {
  if (!IsAlive(op->src)) {
    ReleaseOneSided(op);
    return;
  }
  if (!Reachable(op->src, op->dst) || !IsAlive(op->dst)) {
    OneSidedFail(op);
    return;
  }
  NicPort& src_nic = PickNic(Ep(op->src));
  SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancyBatch(op->batch_ops, op->req_bytes));
  SimTime arrival = sent + cost_.wire_latency;
  sim_.At(arrival, [op]() { op->fabric->OneSidedArrive(op); });
}

void Fabric::OneSidedArrive(OneSidedOp* op) {
  if (!Reachable(op->src, op->dst) || !IsAlive(op->dst)) {
    OneSidedFail(op);
    return;
  }
  NicPort& dst_nic = PickNic(Ep(op->dst));
  // The target NIC serves the verb: DMA in/out of target memory.
  SimTime served =
      dst_nic.Acquire(sim_.Now(), cost_.NicOccupancyBatch(op->batch_ops, op->req_bytes + op->resp_bytes));
  sim_.At(served, [op]() { op->fabric->OneSidedServe(op); });
}

void Fabric::OneSidedServe(OneSidedOp* op) {
  if (!Reachable(op->src, op->dst) || !IsAlive(op->dst)) {
    OneSidedFail(op);
    return;
  }
  Endpoint& dst_ep = Ep(op->dst);
  NetResult& result = op->result;
  switch (op->verb) {
    case Verb::kRead: {
      result.data.resize(op->len);
      if (!dst_ep.memory->RdmaRead(op->addr, op->len, result.data.data())) {
        result.status = Status(StatusCode::kInvalidArgument, "rdma read protection fault");
        result.data.clear();
      }
      break;
    }
    case Verb::kWrite: {
      bool ok = true;
      if (!op->segs.empty()) {
        // Doorbell batch: segments land in posting order, then one ack.
        for (const WriteSeg& s : op->segs) {
          ok = dst_ep.memory->RdmaWrite(s.addr, s.data.data(), s.data.size()) && ok;
        }
      } else {
        ok = dst_ep.memory->RdmaWrite(op->addr, op->data.data(), op->data.size());
      }
      if (!ok) {
        result.status = Status(StatusCode::kInvalidArgument, "rdma write protection fault");
      } else if (op->on_delivered) {
        op->on_delivered();
      }
      break;
    }
    case Verb::kCas: {
      uint64_t observed = 0;
      if (!dst_ep.memory->RdmaCas(op->addr, op->expected, op->desired, &observed)) {
        result.status = Status(StatusCode::kInvalidArgument, "rdma cas protection fault");
      } else {
        result.data.resize(8);
        std::memcpy(result.data.data(), &observed, 8);
      }
      break;
    }
  }
  // Response (data / hardware ack) crosses back through the initiator NIC.
  NicPort& back_nic = PickNic(Ep(op->src));
  SimTime resp_arrival = sim_.Now() + cost_.wire_latency;
  SimTime delivered = back_nic.Acquire(resp_arrival, cost_.NicOccupancy(op->resp_bytes));
  sim_.At(delivered, [op]() { op->fabric->OneSidedComplete(op); });
}

void Fabric::OneSidedComplete(OneSidedOp* op) {
  if (!IsAlive(op->src)) {
    ReleaseOneSided(op);
    return;
  }
  if (op->thread != nullptr) {
    // The record stays alive until the completion poll runs; if the machine
    // dies first the guard drops the closure and the record is stranded.
    op->thread->Run(cost_.cpu_rdma_completion, [op]() {
      op->done.Set(std::move(op->result));
      op->fabric->ReleaseOneSided(op);
    });
  } else {
    op->done.Set(std::move(op->result));
    ReleaseOneSided(op);
  }
}

void Fabric::RegisterRpcService(MachineId m, uint16_t service, int thread_lo, int thread_hi,
                                RpcHandler handler) {
  Endpoint& ep = Ep(m);
  FARM_CHECK(thread_lo >= 0 && thread_hi >= thread_lo &&
             thread_hi < ep.machine->NumThreads());
  Endpoint::Service svc;
  svc.handler = std::move(handler);
  svc.thread_lo = thread_lo;
  svc.thread_hi = thread_hi;
  svc.next_thread = thread_lo;
  ep.services[service] = std::move(svc);
}

bool Fabric::InvokeRpcService(MachineId dst, uint16_t service, MachineId from,
                              std::vector<uint8_t>& request, ReplyFn reply) {
  if (!IsAlive(dst)) {
    return false;
  }
  Endpoint& dep = Ep(dst);
  auto it = dep.services.find(service);
  if (it == dep.services.end()) {
    return false;
  }
  Endpoint::Service& svc = it->second;
  int tid = svc.next_thread;
  svc.next_thread = svc.next_thread >= svc.thread_hi ? svc.thread_lo : svc.next_thread + 1;
  HwThread& handler_thread = dep.machine->thread(tid);
  SimDuration handler_cost = cost_.cpu_rpc_handler + cost_.CpuBytes(request.size());
  FlightMsg(dep.flight, sim_.Now(), flight::EventKind::kMsgRecv, service, from);
  // Same guard shape as the wire path: if the machine dies before the
  // handler runs, the thread's guard drops the event and the reply is never
  // produced (the caller's timeout covers it).
  handler_thread.Run(handler_cost, [this, dst, service, from, req = std::move(request),
                                    rep = std::move(reply)]() mutable {
    Endpoint& d = Ep(dst);
    auto i2 = d.services.find(service);
    if (i2 == d.services.end()) {
      return;  // service vanished while the request was queued
    }
    i2->second.handler(from, std::move(req), std::move(rep));
  });
  return true;
}

Fabric::RpcOp* Fabric::AcquireRpc() {
  RpcOp* op = rpc_free_;
  if (op != nullptr) {
    rpc_free_ = op->next_free;
    op->next_free = nullptr;
  } else {
    rpc_owned_.push_back(std::make_unique<RpcOp>());
    op = rpc_owned_.back().get();
    op->fabric = this;
  }
  return op;
}

void Fabric::DropRpcRef(RpcOp* op) {
  FARM_CHECK(op->refs > 0);
  if (--op->refs == 0) {
    op->request.clear();
    op->result.status = OkStatus();
    op->result.data.clear();
    op->next_free = rpc_free_;
    rpc_free_ = op;
  }
}

void Fabric::SetFlightRecorder(MachineId m, flight::Recorder* rec) {
  Ep(m).flight = rec;
}

Future<NetResult> Fabric::Call(MachineId src, MachineId dst, uint16_t service,
                               std::vector<uint8_t> request, HwThread* thread,
                               SimDuration timeout) {
  stats_.rpcs++;
  stats_.rpc_bytes += request.size();
  TraceOp("rpc", src, thread, "rpc_bytes", stats_.rpc_bytes);
  FlightMsg(Ep(src).flight, sim_.Now(), flight::EventKind::kMsgSend, service, dst);
  uint32_t effect = fault::HitPoint(static_cast<uint32_t>(src), "msg-send",
                                    static_cast<uint64_t>(dst));

  RpcOp* op = AcquireRpc();
  op->src = src;
  op->dst = dst;
  op->service = service;
  op->thread = thread;
  op->request = std::move(request);
  op->done = Future<NetResult>();
  op->req_bytes = kVerbHeaderBytes + op->request.size();
  op->decided = false;
  op->replied = false;
  op->refs = 2;  // the timeout event and the request chain

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rpc_issue) : sim_.Now();
  sim_.At(issue_done + timeout, [op]() { op->fabric->RpcTimeout(op); });
  if (effect & fault::kEffectDropMessage) {
    // Injected drop: the request never reaches the wire (same shape as the
    // request-leg drop in RpcSend); the timeout completes the call.
    sim_.At(issue_done, [op]() { op->fabric->DropRpcRef(op); });
  } else {
    sim_.At(issue_done, [op]() { op->fabric->RpcSend(op); });
  }
  return op->done;
}

// First completion (reply or timeout) wins: the `decided` guard makes the
// client-visible completion at-most-once over an at-least-once wire.
void Fabric::RpcComplete(RpcOp* op, NetResult r) {
  if (op->decided) {
    return;
  }
  op->decided = true;
  if (!IsAlive(op->src)) {
    return;
  }
  if (op->thread != nullptr) {
    op->result = std::move(r);
    op->refs++;  // the completion-poll event keeps the record alive
    op->thread->Run(cost_.cpu_rpc_completion, [op]() {
      op->done.Set(std::move(op->result));
      op->fabric->DropRpcRef(op);
    });
  } else {
    op->done.Set(std::move(r));
  }
}

void Fabric::RpcTimeout(RpcOp* op) {
  RpcComplete(op, NetResult{Status(StatusCode::kTimedOut, "rpc timeout"), {}});
  DropRpcRef(op);
}

void Fabric::RpcSend(RpcOp* op) {
  if (!IsAlive(op->src) || !Reachable(op->src, op->dst) || !IsAlive(op->dst)) {
    DropRpcRef(op);
    return;  // timeout will fire
  }
  // Request-leg faults: a dropped request models RC retry exhaustion and
  // surfaces as the client-side timeout.
  FaultOutcome req_fault = DrawFaults(op->src, op->dst);
  if (req_fault.drop) {
    DropRpcRef(op);
    return;  // timeout will fire
  }
  NicPort& src_nic = PickNic(Ep(op->src));
  SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancy(op->req_bytes));
  SimTime arrival = sent + cost_.wire_latency + req_fault.delay;
  sim_.At(arrival, [op]() { op->fabric->RpcArrive(op); });
}

void Fabric::RpcArrive(RpcOp* op) {
  if (!Reachable(op->src, op->dst) || !IsAlive(op->dst)) {
    DropRpcRef(op);
    return;
  }
  NicPort& dst_nic = PickNic(Ep(op->dst));
  SimTime received = dst_nic.Acquire(sim_.Now(), cost_.NicOccupancy(op->req_bytes));
  sim_.At(received, [op]() { op->fabric->RpcReceive(op); });
}

void Fabric::RpcReceive(RpcOp* op) {
  if (!IsAlive(op->dst)) {
    DropRpcRef(op);
    return;
  }
  Endpoint& dep = Ep(op->dst);
  auto it = dep.services.find(op->service);
  if (it == dep.services.end()) {
    RpcComplete(op, NetResult{Status(StatusCode::kNotFound, "no such rpc service"), {}});
    DropRpcRef(op);
    return;
  }
  Endpoint::Service& svc = it->second;
  int tid = svc.next_thread;
  svc.next_thread = svc.next_thread >= svc.thread_hi ? svc.thread_lo : svc.next_thread + 1;
  HwThread& handler_thread = dep.machine->thread(tid);
  SimDuration handler_cost = cost_.cpu_rpc_handler + cost_.CpuBytes(op->request.size());
  // The chain's ref rides into the handler event; if the machine dies before
  // the handler runs, the guard drops it and the record is stranded.
  handler_thread.Run(handler_cost, [op]() { op->fabric->RpcInvokeHandler(op); });
}

void Fabric::RpcInvokeHandler(RpcOp* op) {
  Endpoint& dep = Ep(op->dst);
  auto it = dep.services.find(op->service);
  if (it == dep.services.end()) {
    DropRpcRef(op);  // service vanished while the request was queued
    return;
  }
  FlightMsg(dep.flight, sim_.Now(), flight::EventKind::kMsgRecv, op->service, op->src);
  // The reply closure is two pointers wide, so the ReplyFn std::function the
  // handler receives stays in its small-object buffer. The handler may hold
  // it past this call; the chain's ref keeps the record alive until reply.
  ReplyFn reply = [op](std::vector<uint8_t> resp) { op->fabric->RpcReply(op, std::move(resp)); };
  it->second.handler(op->src, std::move(op->request), std::move(reply));
}

void Fabric::RpcReply(RpcOp* op, std::vector<uint8_t> resp) {
  if (op->replied) {
    return;  // handlers reply at most once; extra calls are ignored
  }
  op->replied = true;
  // Reply transport: dst NIC -> wire -> src NIC -> completion.
  if (!IsAlive(op->dst) || !Reachable(op->src, op->dst)) {
    DropRpcRef(op);
    return;
  }
  // Reply-leg faults: drops surface as the client timeout; a duplicated
  // reply is absorbed by the `decided` guard in RpcComplete.
  FaultOutcome resp_fault = DrawFaults(op->dst, op->src);
  if (resp_fault.drop) {
    DropRpcRef(op);
    return;  // timeout will fire
  }
  NicPort& out_nic = PickNic(Ep(op->dst));
  uint64_t resp_bytes = kVerbHeaderBytes + resp.size();
  stats_.rpc_bytes += resp.size();
  SimTime resp_sent = out_nic.Acquire(sim_.Now(), cost_.NicOccupancy(resp_bytes));
  if (resp_fault.duplicate) {
    op->refs++;  // the duplicate delivery chain holds its own ref
    SimTime dup_arrival = resp_sent + cost_.wire_latency + resp_fault.dup_delay;
    std::vector<uint8_t> dup = resp;
    sim_.At(dup_arrival, [op, copy = std::move(dup)]() mutable {
      op->fabric->RpcRespArrive(op, std::move(copy));
    });
  }
  SimTime resp_arrival = resp_sent + cost_.wire_latency + resp_fault.delay;
  sim_.At(resp_arrival, [op, copy = std::move(resp)]() mutable {
    op->fabric->RpcRespArrive(op, std::move(copy));
  });
}

void Fabric::RpcRespArrive(RpcOp* op, std::vector<uint8_t> copy) {
  if (!IsAlive(op->src)) {
    DropRpcRef(op);
    return;
  }
  NicPort& in_nic = PickNic(Ep(op->src));
  SimTime delivered = in_nic.Acquire(sim_.Now(), cost_.NicOccupancy(kVerbHeaderBytes + copy.size()));
  sim_.At(delivered, [op, copy = std::move(copy)]() mutable {
    op->fabric->RpcComplete(op, NetResult{OkStatus(), std::move(copy)});
    op->fabric->DropRpcRef(op);
  });
}

void Fabric::SetDatagramHandler(MachineId m, DatagramHandler handler) {
  Ep(m).datagram_handler = std::move(handler);
}

void Fabric::SendDatagram(MachineId src, MachineId dst, std::vector<uint8_t> payload,
                          bool bypass_nic_queue) {
  stats_.datagrams++;
  TraceOp("datagram", src, nullptr, nullptr, 0);
  if (!IsAlive(src) || !Reachable(src, dst) || !IsAlive(dst)) {
    return;
  }
  // The legacy global loss draw stays first so fault-free runs consume the
  // identical RNG stream they did before per-link policies existed.
  if (datagram_loss_ > 0 && fault_rng_.Bernoulli(datagram_loss_)) {
    return;
  }
  FaultOutcome fault = DrawFaults(src, dst);
  if (fault.drop) {
    return;
  }
  uint64_t bytes = kVerbHeaderBytes + payload.size();
  SimTime sent;
  if (bypass_nic_queue) {
    // Dedicated lease queue pair: pays transmission time but does not wait
    // behind data operations queued on the shared path.
    sent = sim_.Now() + cost_.NicOccupancy(bytes);
  } else {
    Endpoint& src_ep = Ep(src);
    sent = PickNic(src_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
  }
  // The stage captures below (this + payload + ids + flag) fit SmallFn's
  // inline buffer exactly, so datagram delivery never allocates.
  if (fault.duplicate) {
    SimTime dup_arrival = sent + cost_.wire_latency + fault.dup_delay;
    std::vector<uint8_t> dup = payload;
    sim_.At(dup_arrival, [this, src, dst, bypass_nic_queue, copy = std::move(dup)]() mutable {
      DatagramArrive(src, dst, bypass_nic_queue, std::move(copy));
    });
  }
  SimTime arrival = sent + cost_.wire_latency + fault.delay;
  sim_.At(arrival, [this, src, dst, bypass_nic_queue, copy = std::move(payload)]() mutable {
    DatagramArrive(src, dst, bypass_nic_queue, std::move(copy));
  });
}

void Fabric::DatagramArrive(MachineId src, MachineId dst, bool bypass_nic_queue,
                            std::vector<uint8_t> copy) {
  if (!IsAlive(dst) || !Reachable(src, dst)) {
    return;
  }
  uint64_t bytes = kVerbHeaderBytes + copy.size();
  SimTime delivered;
  if (bypass_nic_queue) {
    delivered = sim_.Now() + cost_.NicOccupancy(bytes);
  } else {
    Endpoint& dst_ep = Ep(dst);
    delivered = PickNic(dst_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
  }
  sim_.At(delivered, [this, src, dst, copy = std::move(copy)]() mutable {
    DatagramDeliver(src, dst, std::move(copy));
  });
}

void Fabric::DatagramDeliver(MachineId src, MachineId dst, std::vector<uint8_t> copy) {
  if (!IsAlive(dst)) {
    return;
  }
  Endpoint& ep = Ep(dst);
  if (ep.datagram_handler) {
    ep.datagram_handler(src, std::move(copy));
  }
}

}  // namespace farm
