#include "src/net/fabric.h"

#include <cstring>

#include "src/obs/trace.h"

namespace farm {

namespace {

// Wire sizes of verb headers (request without payload / response framing).
constexpr uint32_t kVerbHeaderBytes = 32;
constexpr uint32_t kCasResponseBytes = 8;
constexpr uint32_t kAckBytes = 8;

// Per-op instant on the initiator's track plus the cumulative byte counter
// for the op's transport (counter_name may be null for datagrams).
// High-volume, so double-gated: global tracer present AND capture_net on.
void TraceOp(const char* name, MachineId src, HwThread* thread, const char* counter_name,
             uint64_t counter_value) {
#ifndef FARM_TRACE_DISABLED
  trace::Tracer* tracer = trace::Global();
  if (tracer == nullptr || !tracer->capture_net()) {
    return;
  }
  tracer->Instant(static_cast<uint32_t>(src), thread != nullptr ? static_cast<uint32_t>(thread->index()) : 0,
                  "net", name);
  if (counter_name != nullptr) {
    tracer->CounterValue(static_cast<uint32_t>(src), counter_name, counter_value);
  }
#else
  (void)name;
  (void)src;
  (void)thread;
  (void)counter_name;
  (void)counter_value;
#endif
}

// Injected faults are rare and load-bearing for chaos debugging, so they
// trace whenever a tracer is attached (not gated on capture_net).
void TraceFault(const char* name, MachineId src) {
#ifndef FARM_TRACE_DISABLED
  trace::Tracer* tracer = trace::Global();
  if (tracer == nullptr) {
    return;
  }
  tracer->Instant(static_cast<uint32_t>(src), 0, "chaos", name);
#else
  (void)name;
  (void)src;
#endif
}

}  // namespace

void FabricStats::BindTo(metrics::Registry& reg) {
  rdma_reads = reg.GetCounter("fabric_rdma_reads");
  rdma_writes = reg.GetCounter("fabric_rdma_writes");
  rdma_cas = reg.GetCounter("fabric_rdma_cas");
  rpcs = reg.GetCounter("fabric_rpcs");
  datagrams = reg.GetCounter("fabric_datagrams");
  rdma_bytes = reg.GetCounter("fabric_rdma_bytes");
  rpc_bytes = reg.GetCounter("fabric_rpc_bytes");
  faults_dropped = reg.GetCounter("fabric_fault_dropped");
  faults_delayed = reg.GetCounter("fabric_fault_delayed");
  faults_duplicated = reg.GetCounter("fabric_fault_duplicated");
  faults_reordered = reg.GetCounter("fabric_fault_reordered");
}

void FabricStats::Reset() {
  rdma_reads.Reset();
  rdma_writes.Reset();
  rdma_cas.Reset();
  rpcs.Reset();
  datagrams.Reset();
  rdma_bytes.Reset();
  rpc_bytes.Reset();
  faults_dropped.Reset();
  faults_delayed.Reset();
  faults_duplicated.Reset();
  faults_reordered.Reset();
}

void Fabric::AddMachine(Machine* machine, RdmaMemory* memory, int num_nics) {
  MachineId id = machine->id();
  if (id >= endpoints_.size()) {
    endpoints_.resize(id + 1);
    partition_group_.resize(id + 1, 0);
  }
  Endpoint& ep = endpoints_[id];
  ep.machine = machine;
  ep.memory = memory;
  ep.nics.assign(static_cast<size_t>(num_nics), NicPort{});
}

bool Fabric::IsAlive(MachineId m) const {
  return m < endpoints_.size() && endpoints_[m].machine != nullptr && endpoints_[m].machine->alive();
}

Machine* Fabric::machine(MachineId m) const {
  FARM_CHECK(m < endpoints_.size() && endpoints_[m].machine != nullptr);
  return endpoints_[m].machine;
}

void Fabric::SetPartition(const std::vector<std::vector<MachineId>>& groups) {
  partitioned_ = true;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  int g = 0;
  for (const auto& group : groups) {
    for (MachineId m : group) {
      FARM_CHECK(m < partition_group_.size());
      partition_group_[m] = g;
    }
    g++;
  }
}

void Fabric::ClearPartition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

void Fabric::SetLinkFaults(MachineId src, MachineId dst, LinkFaults faults) {
  if (!faults.Any()) {
    link_faults_.erase({src, dst});
    return;
  }
  link_faults_[{src, dst}] = faults;
}

void Fabric::SetMachineLinkFaults(MachineId m, LinkFaults faults) {
  for (MachineId peer = 0; peer < endpoints_.size(); peer++) {
    if (peer == m || endpoints_[peer].machine == nullptr) {
      continue;
    }
    SetLinkFaults(m, peer, faults);
    SetLinkFaults(peer, m, faults);
  }
}

void Fabric::ClearLinkFaults(MachineId src, MachineId dst) {
  link_faults_.erase({src, dst});
}

Fabric::FaultOutcome Fabric::DrawFaults(MachineId src, MachineId dst) {
  FaultOutcome out;
  if (link_faults_.empty()) {
    return out;  // fault-free runs draw no randomness here
  }
  auto it = link_faults_.find({src, dst});
  if (it == link_faults_.end()) {
    return out;
  }
  const LinkFaults& f = it->second;
  // Draw order is fixed (drop, latency, reorder, dup) so a policy change in
  // one dimension does not shift the stream consumed by the others.
  if (f.drop > 0 && fault_rng_.Bernoulli(f.drop)) {
    out.drop = true;
    stats_.faults_dropped++;
    TraceFault("fault_drop", src);
    return out;
  }
  out.delay = f.extra_latency;
  if (f.jitter > 0) {
    out.delay += fault_rng_.Uniform64(f.jitter);
  }
  if (f.reorder > 0 && fault_rng_.Bernoulli(f.reorder)) {
    // Holding one message back past its successors is a bounded reorder on
    // an otherwise FIFO link.
    SimDuration window = f.reorder_window > 0 ? f.reorder_window : kMillisecond;
    out.delay += fault_rng_.Uniform64(window);
    stats_.faults_reordered++;
    TraceFault("fault_reorder", src);
  }
  if (out.delay > 0) {
    stats_.faults_delayed++;
    TraceFault("fault_delay", src);
  }
  if (f.dup > 0 && fault_rng_.Bernoulli(f.dup)) {
    out.duplicate = true;
    out.dup_delay = out.delay + (f.jitter > 0 ? fault_rng_.Uniform64(f.jitter) : 0);
    stats_.faults_duplicated++;
    TraceFault("fault_dup", src);
  }
  return out;
}

bool Fabric::Reachable(MachineId a, MachineId b) const {
  if (!partitioned_) {
    return true;
  }
  if (a >= partition_group_.size() || b >= partition_group_.size()) {
    return false;
  }
  return partition_group_[a] >= 0 && partition_group_[a] == partition_group_[b];
}

void Fabric::CompleteOnThread(Future<NetResult> done, NetResult result, HwThread* thread,
                              SimDuration cpu_cost) {
  if (thread != nullptr) {
    thread->Run(cpu_cost, [done, result = std::move(result)]() mutable {
      done.Set(std::move(result));
    });
  } else {
    done.Set(std::move(result));
  }
}

Future<NetResult> Fabric::Read(MachineId src, MachineId dst, uint64_t addr, uint32_t len,
                               HwThread* thread) {
  stats_.rdma_reads++;
  stats_.rdma_bytes += len;
  TraceOp("rdma_read", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kRead, src, dst, addr, len, {}, 0, 0, thread);
}

Future<NetResult> Fabric::Write(MachineId src, MachineId dst, uint64_t addr,
                                std::vector<uint8_t> data, HwThread* thread,
                                std::function<void()> on_delivered) {
  stats_.rdma_writes++;
  stats_.rdma_bytes += data.size();
  TraceOp("rdma_write", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kWrite, src, dst, addr, static_cast<uint32_t>(data.size()),
                  std::move(data), 0, 0, thread, std::move(on_delivered));
}

Future<NetResult> Fabric::Cas(MachineId src, MachineId dst, uint64_t addr, uint64_t expected,
                              uint64_t desired, HwThread* thread) {
  stats_.rdma_cas++;
  stats_.rdma_bytes += 16;
  TraceOp("rdma_cas", src, thread, "rdma_bytes", stats_.rdma_bytes);
  return OneSided(Verb::kCas, src, dst, addr, 8, {}, expected, desired, thread);
}

Future<NetResult> Fabric::OneSided(Verb verb, MachineId src, MachineId dst, uint64_t addr,
                                   uint32_t len, std::vector<uint8_t> data, uint64_t expected,
                                   uint64_t desired, HwThread* thread,
                                   std::function<void()> on_delivered) {
  Future<NetResult> done;
  Ep(src);  // validate endpoints exist
  Ep(dst);

  // Request sizes: reads/CAS carry a header; writes carry the payload.
  uint64_t req_bytes = verb == Verb::kWrite ? kVerbHeaderBytes + len : kVerbHeaderBytes;
  uint64_t resp_bytes = verb == Verb::kRead ? len : (verb == Verb::kCas ? kCasResponseBytes : kAckBytes);

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rdma_issue) : sim_.Now();

  auto fail_later = [this, done, thread, src](SimTime from) {
    sim_.At(from + cost_.rc_op_timeout, [this, done, thread, src]() {
      if (!IsAlive(src)) {
        return;  // initiator died; nobody is polling the CQ
      }
      CompleteOnThread(done, NetResult{UnavailableStatus("one-sided op timed out"), {}}, thread,
                       cost_.cpu_rdma_completion);
    });
  };

  sim_.At(issue_done, [=, this, data = std::move(data)]() mutable {
    if (!IsAlive(src)) {
      return;
    }
    if (!Reachable(src, dst) || !IsAlive(dst)) {
      fail_later(sim_.Now());
      return;
    }
    NicPort& src_nic = PickNic(Ep(src));
    SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));
    SimTime arrival = sent + cost_.wire_latency;

    sim_.At(arrival, [=, this, data = std::move(data)]() mutable {
      if (!Reachable(src, dst) || !IsAlive(dst)) {
        fail_later(sim_.Now());
        return;
      }
      NicPort& dst_nic = PickNic(Ep(dst));
      // The target NIC serves the verb: DMA in/out of target memory.
      SimTime served = dst_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes + resp_bytes));

      sim_.At(served, [=, this, data = std::move(data)]() mutable {
        if (!Reachable(src, dst) || !IsAlive(dst)) {
          fail_later(sim_.Now());
          return;
        }
        Endpoint& dst_ep = Ep(dst);
        NetResult result;
        switch (verb) {
          case Verb::kRead: {
            result.data.resize(len);
            if (!dst_ep.memory->RdmaRead(addr, len, result.data.data())) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma read protection fault");
              result.data.clear();
            }
            break;
          }
          case Verb::kWrite: {
            if (!dst_ep.memory->RdmaWrite(addr, data.data(), data.size())) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma write protection fault");
            } else if (on_delivered) {
              on_delivered();
            }
            break;
          }
          case Verb::kCas: {
            uint64_t observed = 0;
            if (!dst_ep.memory->RdmaCas(addr, expected, desired, &observed)) {
              result.status = Status(StatusCode::kInvalidArgument, "rdma cas protection fault");
            } else {
              result.data.resize(8);
              std::memcpy(result.data.data(), &observed, 8);
            }
            break;
          }
        }
        // Response (data / hardware ack) crosses back through the initiator NIC.
        NicPort& back_nic = PickNic(Ep(src));
        SimTime resp_arrival = sim_.Now() + cost_.wire_latency;
        SimTime delivered = back_nic.Acquire(resp_arrival, cost_.NicOccupancy(resp_bytes));
        sim_.At(delivered, [this, done, thread, src, result = std::move(result)]() mutable {
          if (!IsAlive(src)) {
            return;
          }
          CompleteOnThread(done, std::move(result), thread, cost_.cpu_rdma_completion);
        });
      });
    });
  });
  return done;
}

void Fabric::RegisterRpcService(MachineId m, uint16_t service, int thread_lo, int thread_hi,
                                RpcHandler handler) {
  Endpoint& ep = Ep(m);
  FARM_CHECK(thread_lo >= 0 && thread_hi >= thread_lo &&
             thread_hi < ep.machine->NumThreads());
  Endpoint::Service svc;
  svc.handler = std::move(handler);
  svc.thread_lo = thread_lo;
  svc.thread_hi = thread_hi;
  svc.next_thread = thread_lo;
  ep.services[service] = std::move(svc);
}

Future<NetResult> Fabric::Call(MachineId src, MachineId dst, uint16_t service,
                               std::vector<uint8_t> request, HwThread* thread,
                               SimDuration timeout) {
  stats_.rpcs++;
  stats_.rpc_bytes += request.size();
  TraceOp("rpc", src, thread, "rpc_bytes", stats_.rpc_bytes);
  Future<NetResult> done;
  auto decided = std::make_shared<bool>(false);
  auto complete = [this, done, decided, thread, src](NetResult r) {
    if (*decided) {
      return;
    }
    *decided = true;
    if (!IsAlive(src)) {
      return;
    }
    CompleteOnThread(done, std::move(r), thread, cost_.cpu_rpc_completion);
  };

  SimTime issue_done = thread != nullptr ? thread->AcquireCpu(cost_.cpu_rpc_issue) : sim_.Now();
  sim_.At(issue_done + timeout, [complete]() {
    complete(NetResult{Status(StatusCode::kTimedOut, "rpc timeout"), {}});
  });

  uint64_t req_bytes = kVerbHeaderBytes + request.size();
  sim_.At(issue_done, [=, this, request = std::move(request)]() mutable {
    if (!IsAlive(src) || !Reachable(src, dst) || !IsAlive(dst)) {
      return;  // timeout will fire
    }
    // Request-leg faults: a dropped request models RC retry exhaustion and
    // surfaces as the client-side timeout.
    FaultOutcome req_fault = DrawFaults(src, dst);
    if (req_fault.drop) {
      return;  // timeout will fire
    }
    Endpoint& src_ep = Ep(src);
    NicPort& src_nic = PickNic(src_ep);
    SimTime sent = src_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));
    SimTime arrival = sent + cost_.wire_latency + req_fault.delay;

    sim_.At(arrival, [=, this, request = std::move(request)]() mutable {
      if (!Reachable(src, dst) || !IsAlive(dst)) {
        return;
      }
      Endpoint& dst_ep = Ep(dst);
      NicPort& dst_nic = PickNic(dst_ep);
      SimTime received = dst_nic.Acquire(sim_.Now(), cost_.NicOccupancy(req_bytes));

      sim_.At(received, [=, this, request = std::move(request)]() mutable {
        if (!IsAlive(dst)) {
          return;
        }
        Endpoint& dep = Ep(dst);
        auto it = dep.services.find(service);
        if (it == dep.services.end()) {
          complete(NetResult{Status(StatusCode::kNotFound, "no such rpc service"), {}});
          return;
        }
        Endpoint::Service& svc = it->second;
        int tid = svc.next_thread;
        svc.next_thread = svc.next_thread >= svc.thread_hi ? svc.thread_lo : svc.next_thread + 1;
        HwThread& handler_thread = dep.machine->thread(tid);
        SimDuration handler_cost = cost_.cpu_rpc_handler + cost_.CpuBytes(request.size());

        ReplyFn reply = [=, this](std::vector<uint8_t> resp) {
          // Reply transport: dst NIC -> wire -> src NIC -> completion.
          if (!IsAlive(dst) || !Reachable(src, dst)) {
            return;
          }
          // Reply-leg faults: drops surface as the client timeout; a
          // duplicated reply is absorbed by the `decided` guard, modeling
          // an at-most-once completion over an at-least-once wire.
          FaultOutcome resp_fault = DrawFaults(dst, src);
          if (resp_fault.drop) {
            return;  // timeout will fire
          }
          Endpoint& dep2 = Ep(dst);
          NicPort& out_nic = PickNic(dep2);
          uint64_t resp_bytes = kVerbHeaderBytes + resp.size();
          stats_.rpc_bytes += resp.size();
          SimTime resp_sent = out_nic.Acquire(sim_.Now(), cost_.NicOccupancy(resp_bytes));
          auto deliver = [=, this](SimDuration extra, std::vector<uint8_t> copy) {
            SimTime resp_arrival = resp_sent + cost_.wire_latency + extra;
            sim_.At(resp_arrival, [=, this, copy = std::move(copy)]() mutable {
              if (!IsAlive(src)) {
                return;
              }
              Endpoint& sep = Ep(src);
              NicPort& in_nic = PickNic(sep);
              SimTime delivered = in_nic.Acquire(sim_.Now(), cost_.NicOccupancy(resp_bytes));
              sim_.At(delivered, [complete, copy = std::move(copy)]() mutable {
                complete(NetResult{OkStatus(), std::move(copy)});
              });
            });
          };
          if (resp_fault.duplicate) {
            deliver(resp_fault.dup_delay, resp);
          }
          deliver(resp_fault.delay, std::move(resp));
        };

        handler_thread.Run(handler_cost,
                           [handler = svc.handler, src, request = std::move(request),
                            reply = std::move(reply)]() mutable {
                             handler(src, std::move(request), std::move(reply));
                           });
      });
    });
  });
  return done;
}

void Fabric::SetDatagramHandler(MachineId m, DatagramHandler handler) {
  Ep(m).datagram_handler = std::move(handler);
}

void Fabric::SendDatagram(MachineId src, MachineId dst, std::vector<uint8_t> payload,
                          bool bypass_nic_queue) {
  stats_.datagrams++;
  TraceOp("datagram", src, nullptr, nullptr, 0);
  if (!IsAlive(src) || !Reachable(src, dst) || !IsAlive(dst)) {
    return;
  }
  // The legacy global loss draw stays first so fault-free runs consume the
  // identical RNG stream they did before per-link policies existed.
  if (datagram_loss_ > 0 && fault_rng_.Bernoulli(datagram_loss_)) {
    return;
  }
  FaultOutcome fault = DrawFaults(src, dst);
  if (fault.drop) {
    return;
  }
  uint64_t bytes = kVerbHeaderBytes + payload.size();
  SimTime sent;
  if (bypass_nic_queue) {
    // Dedicated lease queue pair: pays transmission time but does not wait
    // behind data operations queued on the shared path.
    sent = sim_.Now() + cost_.NicOccupancy(bytes);
  } else {
    Endpoint& src_ep = Ep(src);
    sent = PickNic(src_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
  }
  auto deliver = [=, this](SimDuration extra, std::vector<uint8_t> copy) {
    SimTime arrival = sent + cost_.wire_latency + extra;
    sim_.At(arrival, [=, this, copy = std::move(copy)]() mutable {
      if (!IsAlive(dst) || !Reachable(src, dst)) {
        return;
      }
      SimTime delivered;
      if (bypass_nic_queue) {
        delivered = sim_.Now() + cost_.NicOccupancy(bytes);
      } else {
        Endpoint& dst_ep = Ep(dst);
        delivered = PickNic(dst_ep).Acquire(sim_.Now(), cost_.NicOccupancy(bytes));
      }
      sim_.At(delivered, [this, src, dst, copy = std::move(copy)]() mutable {
        if (!IsAlive(dst)) {
          return;
        }
        Endpoint& ep = Ep(dst);
        if (ep.datagram_handler) {
          ep.datagram_handler(src, std::move(copy));
        }
      });
    });
  };
  if (fault.duplicate) {
    deliver(fault.dup_delay, payload);
  }
  deliver(fault.delay, std::move(payload));
}

}  // namespace farm
