// Hash functions and a consistent-hashing ring.
//
// FaRM uses consistent hashing in two places: choosing the k backup
// configuration managers (successors of the CM) and assigning recovery
// coordinators for the transactions of a failed coordinator (section 5.3).
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace farm {

// Fibonacci / splitmix-style 64-bit mixer. Good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// FNV-1a over arbitrary bytes; used for hashing string-like workload keys.
inline uint64_t Fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s) { return Fnv1a(s.data(), s.size()); }

// Consistent-hash ring over integer node ids with virtual nodes.
//
// Provides Successors(key, k): the first k distinct nodes at or after the
// key's position on the ring. Node sets change on reconfiguration.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int virtual_nodes_per_node = 16)
      : virtual_nodes_(virtual_nodes_per_node) {}

  void AddNode(uint64_t node_id);
  void RemoveNode(uint64_t node_id);
  bool Contains(uint64_t node_id) const;
  size_t NumNodes() const { return num_nodes_; }

  // First node clockwise from hash(key). Ring must be non-empty.
  uint64_t Owner(uint64_t key) const;

  // First k distinct nodes clockwise from hash(key) (fewer if the ring has
  // fewer than k nodes).
  std::vector<uint64_t> Successors(uint64_t key, size_t k) const;

 private:
  struct Point {
    uint64_t position;
    uint64_t node_id;
    bool operator<(const Point& other) const {
      return position < other.position ||
             (position == other.position && node_id < other.node_id);
    }
  };

  int virtual_nodes_;
  size_t num_nodes_ = 0;
  std::vector<Point> ring_;  // sorted by position
};

}  // namespace farm

#endif  // SRC_COMMON_HASH_H_
