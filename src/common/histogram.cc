#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace farm {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  int octave = 63 - std::countl_zero(value);  // index of the top set bit
  int shift = octave - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  int bucket = (octave - kSubBucketBits + 1) * kSubBuckets + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  int octave = bucket / kSubBuckets + kSubBucketBits - 1;
  int sub = bucket % kSubBuckets;
  int shift = octave - kSubBucketBits;
  uint64_t base = (1ULL << octave) + (static_cast<uint64_t>(sub) << shift);
  return base + (1ULL << shift) / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; i++) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least ceil(p/100 * count)
  // observations at or below it. The previous interpolation-flavored rank
  // (floor(p/100 * (count-1)) + 1) sat one rank low whenever
  // frac(p/100 * count) < p/100 -- e.g. p99 of 10 samples returned the 9th
  // largest, and p99 of {a, b} returned a -- underreporting every small-n
  // tail the figure benches quote.
  uint64_t target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::max<uint64_t>(target, 1);  // p=0 means the minimum, rank 1
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) {
      // Bucket midpoints can stray outside the observed range (a single
      // sample of 4242 lands in a bucket whose midpoint is below it; max_
      // lands in a bucket whose midpoint exceeds it), so clamp to the
      // exact extrema we track. This also makes p0 == min() and
      // p100 == max() identities rather than approximations.
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), Mean() / 1e3,
                static_cast<double>(Percentile(50)) / 1e3,
                static_cast<double>(Percentile(99)) / 1e3, static_cast<double>(max()) / 1e3);
  return buf;
}

void TimeSeries::Record(uint64_t time_ns, uint64_t count) {
  size_t idx = static_cast<size_t>(time_ns / interval_ns_);
  if (idx >= intervals_.size()) {
    intervals_.resize(idx + 1, 0);
  }
  intervals_[idx] += count;
}

double TimeSeries::AverageRate(uint64_t from_ns, uint64_t to_ns) const {
  FARM_CHECK(to_ns > from_ns);
  size_t first = static_cast<size_t>(from_ns / interval_ns_);
  size_t last = static_cast<size_t>(to_ns / interval_ns_);
  uint64_t total = 0;
  size_t n = 0;
  for (size_t i = first; i < last && i < intervals_.size(); i++) {
    total += intervals_[i];
    n++;
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

}  // namespace farm
