#include "src/common/rand.h"

#include "src/common/logging.h"

namespace farm {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

Zipf::Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
  FARM_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

uint64_t Zipf::Next(Pcg32& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double v = eta_ * u - eta_ + 1.0;
  uint64_t idx = static_cast<uint64_t>(static_cast<double>(n_) * std::pow(v, alpha_));
  if (idx >= n_) {
    idx = n_ - 1;
  }
  return idx;
}

}  // namespace farm
