#include "src/common/status.h"

namespace farm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace farm
