// Byte-buffer serialization for log records and wire messages.
//
// Records written into FaRM ring-buffer logs travel through (simulated)
// one-sided RDMA writes, so they must be flat byte sequences. BufWriter and
// BufReader provide bounds-checked little-endian packing.
#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace farm {

class BufWriter {
 public:
  BufWriter() = default;

  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { Append(&v, 2); }
  void PutU32(uint32_t v) { Append(&v, 4); }
  void PutU64(uint64_t v) { Append(&v, 8); }
  void PutBytes(const void* data, size_t len) {
    PutU32(static_cast<uint32_t>(len));
    Append(data, len);
  }
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  // Raw append without a length prefix.
  void Append(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class BufReader {
 public:
  BufReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit BufReader(const std::vector<uint8_t>& buf) : BufReader(buf.data(), buf.size()) {}

  uint8_t GetU8() { return Get<uint8_t>(); }
  uint16_t GetU16() { return Get<uint16_t>(); }
  uint32_t GetU32() { return Get<uint32_t>(); }
  uint64_t GetU64() { return Get<uint64_t>(); }

  std::vector<uint8_t> GetBytes() {
    uint32_t n = GetU32();
    FARM_CHECK(pos_ + n <= len_) << "BufReader overrun";
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  std::string GetString() {
    auto b = GetBytes();
    return std::string(b.begin(), b.end());
  }

  void ReadRaw(void* out, size_t len) {
    FARM_CHECK(pos_ + len <= len_) << "BufReader overrun";
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  template <typename T>
  T Get() {
    FARM_CHECK(pos_ + sizeof(T) <= len_) << "BufReader overrun";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace farm

#endif  // SRC_COMMON_SERDE_H_
