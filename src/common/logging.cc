#include "src/common/logging.h"

#include <cstring>

namespace farm {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("FARM_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return LogLevel::kWarn;
  }
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return static_cast<LogLevel>(env[0] - '0');
  }
  auto matches = [env](const char* name) {
    for (int i = 0;; i++) {
      char a = env[i];
      char b = name[i];
      if (a >= 'A' && a <= 'Z') {
        a = static_cast<char>(a - 'A' + 'a');
      }
      if (a != b) {
        return false;
      }
      if (a == '\0') {
        return true;
      }
    }
  };
  if (matches("debug")) return LogLevel::kDebug;
  if (matches("info")) return LogLevel::kInfo;
  if (matches("warn")) return LogLevel::kWarn;
  if (matches("error")) return LogLevel::kError;
  if (matches("none")) return LogLevel::kNone;
  std::fprintf(stderr, "[WARN] logging.cc:0 unrecognized FARM_LOG_LEVEL '%s', using warn\n", env);
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

struct LogClock {
  uint64_t (*now_ns)(void* ctx) = nullptr;
  void* ctx = nullptr;
  const void* owner = nullptr;
};

LogClock& Clock() {
  static LogClock clock;
  return clock;
}

thread_local LogTxScope* g_current_tx_scope = nullptr;

}  // namespace

LogLevel& GlobalLogLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

void SetLogClock(uint64_t (*now_ns)(void* ctx), void* ctx, const void* owner) {
  Clock() = LogClock{now_ns, ctx, owner};
}

void ClearLogClock(const void* owner) {
  if (Clock().owner == owner) {
    Clock() = LogClock{};
  }
}

LogTxScope::LogTxScope(uint64_t config, uint32_t machine, uint32_t thread, uint64_t local)
    : prev_(g_current_tx_scope),
      config_(config),
      machine_(machine),
      thread_(thread),
      local_(local) {
  g_current_tx_scope = this;
}

LogTxScope::~LogTxScope() { g_current_tx_scope = prev_; }

std::string LogTxScope::CurrentTag() {
  const LogTxScope* s = g_current_tx_scope;
  if (s == nullptr) {
    return std::string();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "tx<%llu,%u,%u,%llu>",
                static_cast<unsigned long long>(s->config_), s->machine_, s->thread_,
                static_cast<unsigned long long>(s->local_));
  return buf;
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  const LogClock& clock = Clock();
  std::string tag = LogTxScope::CurrentTag();
  const char* tx_sep = tag.empty() ? "" : " tx=";
  if (clock.now_ns != nullptr) {
    uint64_t ns = clock.now_ns(clock.ctx);
    std::fprintf(stderr, "[%s] t=%llu.%03lluus %s:%d %s%s%s\n", LevelName(level),
                 static_cast<unsigned long long>(ns / 1000),
                 static_cast<unsigned long long>(ns % 1000), Basename(file), line, msg.c_str(),
                 tx_sep, tag.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s:%d %s%s%s\n", LevelName(level), Basename(file), line,
                 msg.c_str(), tx_sep, tag.c_str());
  }
}

}  // namespace farm
