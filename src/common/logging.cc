#include "src/common/logging.h"

#include <cstring>

namespace farm {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), Basename(file), line, msg.c_str());
}

}  // namespace farm
