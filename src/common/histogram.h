// Log-bucketed latency histogram (HdrHistogram-style) and timeline series.
//
// The benches report median/99th latency (figures 7 and 8) and per-interval
// throughput timelines (figures 9-15).
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace farm {

// Records values with ~1.6% relative precision using 64 sub-buckets per
// power of two. Suitable for nanosecond latencies up to ~hours.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // p in [0, 100]. Returns a representative value for that percentile.
  uint64_t Percentile(double p) const;

  std::string Summary() const;  // "n=... mean=... p50=... p99=..." (in µs)

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// Accumulates event counts into fixed-width time intervals, producing the
// per-millisecond throughput timelines shown in the failure figures.
class TimeSeries {
 public:
  explicit TimeSeries(uint64_t interval_ns) : interval_ns_(interval_ns) {}

  void Record(uint64_t time_ns, uint64_t count = 1);

  uint64_t interval_ns() const { return interval_ns_; }
  // Counts per interval, index i covers [i*interval, (i+1)*interval).
  const std::vector<uint64_t>& intervals() const { return intervals_; }

  // Average events/interval over [from_ns, to_ns).
  double AverageRate(uint64_t from_ns, uint64_t to_ns) const;

 private:
  uint64_t interval_ns_;
  std::vector<uint64_t> intervals_;
};

}  // namespace farm

#endif  // SRC_COMMON_HISTOGRAM_H_
