#include "src/common/hash.h"

#include <algorithm>

#include "src/common/logging.h"

namespace farm {

void ConsistentHashRing::AddNode(uint64_t node_id) {
  if (Contains(node_id)) {
    return;
  }
  for (int v = 0; v < virtual_nodes_; v++) {
    uint64_t pos = Mix64(HashCombine(node_id, static_cast<uint64_t>(v) | 0xabcd0000ULL));
    ring_.push_back(Point{pos, node_id});
  }
  std::sort(ring_.begin(), ring_.end());
  num_nodes_++;
}

void ConsistentHashRing::RemoveNode(uint64_t node_id) {
  size_t before = ring_.size();
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node_id](const Point& p) { return p.node_id == node_id; }),
              ring_.end());
  if (ring_.size() != before) {
    num_nodes_--;
  }
}

bool ConsistentHashRing::Contains(uint64_t node_id) const {
  return std::any_of(ring_.begin(), ring_.end(),
                     [node_id](const Point& p) { return p.node_id == node_id; });
}

uint64_t ConsistentHashRing::Owner(uint64_t key) const {
  FARM_CHECK(!ring_.empty()) << "Owner() on empty ring";
  uint64_t pos = Mix64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{pos, 0});
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->node_id;
}

std::vector<uint64_t> ConsistentHashRing::Successors(uint64_t key, size_t k) const {
  std::vector<uint64_t> out;
  if (ring_.empty()) {
    return out;
  }
  uint64_t pos = Mix64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{pos, 0});
  size_t want = std::min(k, num_nodes_);
  size_t idx = static_cast<size_t>(it - ring_.begin());
  for (size_t scanned = 0; scanned < ring_.size() && out.size() < want; scanned++) {
    const Point& p = ring_[(idx + scanned) % ring_.size()];
    if (std::find(out.begin(), out.end(), p.node_id) == out.end()) {
      out.push_back(p.node_id);
    }
  }
  return out;
}

}  // namespace farm
