// Minimal leveled logging for the FaRM reproduction.
//
// Logging is synchronous and goes to stderr. The active level is a process
// global; benches set it to kWarn so timing loops are not perturbed.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace farm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Returns the mutable process-wide log level. Initialized from the
// FARM_LOG_LEVEL environment variable (debug|info|warn|error|none, or a
// digit 0-4) when set; defaults to kWarn.
LogLevel& GlobalLogLevel();

// Simulated-time tag for log lines. When a clock is installed (the running
// Cluster installs one), every line is prefixed with the simulated time in
// microseconds. `owner` identifies the installer so a cluster tearing down
// does not clear a clock a newer cluster installed.
void SetLogClock(uint64_t (*now_ns)(void* ctx), void* ctx, const void* owner);
void ClearLogClock(const void* owner);

// Internal sink used by the LOG macro; do not call directly.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

// Tags every FARM_LOG line emitted while in scope with ` tx=tx<c,m,t,l>`, so
// log lines cross-reference flight-recorder dumps. Scopes nest (the inner
// transaction wins and the outer tag is restored on exit) and must not span
// a co_await: a suspended coroutine would leave its tag on whatever runs
// next. The id is passed unpacked so common/ does not depend on core's TxId.
class LogTxScope {
 public:
  LogTxScope(uint64_t config, uint32_t machine, uint32_t thread, uint64_t local);
  ~LogTxScope();
  LogTxScope(const LogTxScope&) = delete;
  LogTxScope& operator=(const LogTxScope&) = delete;

  // The innermost active scope's tx id rendered as "tx<c,m,t,l>", or empty
  // when no transaction is active (used by LogMessage and tests).
  static std::string CurrentTag();

 private:
  LogTxScope* prev_;
  uint64_t config_;
  uint32_t machine_;
  uint32_t thread_;
  uint64_t local_;
};

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace farm

#define FARM_LOG(level)                                        \
  if (::farm::LogLevel::k##level < ::farm::GlobalLogLevel()) { \
  } else                                                       \
    ::farm::log_internal::LogLine(::farm::LogLevel::k##level, __FILE__, __LINE__)

#define FARM_CHECK(cond)                                                            \
  if (cond) {                                                                       \
  } else                                                                            \
    ::farm::log_internal::FatalLine(__FILE__, __LINE__) << "CHECK failed: " << #cond \
                                                        << " "

namespace farm {
namespace log_internal {

class FatalLine {
 public:
  FatalLine(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalLine() {
    std::fprintf(stderr, "[FATAL] %s:%d %s\n", file_, line_, stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  FatalLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace farm

#endif  // SRC_COMMON_LOGGING_H_
