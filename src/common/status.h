// Lightweight Status / StatusOr error-propagation types.
//
// The transaction and recovery protocols report failure categories rather
// than rich error payloads, so a compact enum-based status is sufficient.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace farm {

enum class StatusCode : int {
  kOk = 0,
  kAborted,           // transaction conflict (lock or validation failure)
  kNotFound,          // missing key / object / region
  kUnavailable,       // target machine dead or not in configuration
  kResourceExhausted, // out of memory / log space / capacity
  kInvalidArgument,
  kFailedPrecondition,
  kTimedOut,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status AbortedStatus(std::string msg = "") {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status NotFoundStatus(std::string msg = "") {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status UnavailableStatus(std::string msg = "") {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

// A value-or-status union. Value access requires ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    FARM_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    FARM_CHECK(ok()) << "value() on non-OK StatusOr: " << status_.ToString();
    return *value_;
  }
  const T& value() const {
    FARM_CHECK(ok()) << "value() on non-OK StatusOr: " << status_.ToString();
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace farm

#endif  // SRC_COMMON_STATUS_H_
