// Deterministic random number generation for the simulator and workloads.
//
// PCG32 keeps simulation runs reproducible from a single 64-bit seed; the
// helpers cover the distributions the benchmarks need (uniform, zipfian for
// skewed key access, exponential for think times).
#ifndef SRC_COMMON_RAND_H_
#define SRC_COMMON_RAND_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace farm {

// PCG-XSH-RR 64/32 (O'Neill 2014). Small state, good statistical quality.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    Next();
    state_ += seed;
    Next();
  }

  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t Next64() { return (static_cast<uint64_t>(Next()) << 32) | Next(); }

  // Uniform in [0, bound). Lemire's multiply-shift rejection method.
  uint32_t Uniform(uint32_t bound) {
    if (bound == 0) {
      return 0;
    }
    uint64_t m = static_cast<uint64_t>(Next()) * bound;
    uint32_t l = static_cast<uint32_t>(m);
    if (l < bound) {
      uint32_t t = -bound % bound;
      while (l < t) {
        m = static_cast<uint64_t>(Next()) * bound;
        l = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  uint64_t Uniform64(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Rejection sampling on the top bits.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next()) * (1.0 / 4294967296.0); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    return -mean * std::log(1.0 - u);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

// Zipfian generator over [0, n). Precomputes the harmonic sums; used by the
// skewed-access variants of the key-value workload.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);

  uint64_t Next(Pcg32& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace farm

#endif  // SRC_COMMON_RAND_H_
