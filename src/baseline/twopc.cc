#include "src/baseline/twopc.h"

#include "src/common/serde.h"

namespace farm {

namespace {

enum class Op : uint8_t {
  kPrepare = 1,
  kDecide = 2,
  kReplicate = 3,
};

constexpr SimDuration kRpcTimeout = 20 * kMillisecond;

}  // namespace

TwoPcSystem::TwoPcSystem(Fabric& fabric, std::vector<MachineId> machines, Options options)
    : fabric_(fabric), machines_(std::move(machines)), options_(options) {
  int total_groups = options_.groups + 1;  // + coordinator log group
  FARM_CHECK(static_cast<int>(machines_.size()) ==
             total_groups * options_.replicas_per_group);
  store_.resize(static_cast<size_t>(total_groups));
  prepared_.resize(static_cast<size_t>(total_groups));
  for (int g = 0; g < total_groups; g++) {
    for (int r = 0; r < options_.replicas_per_group; r++) {
      MachineId m = machines_[static_cast<size_t>(g) * options_.replicas_per_group +
                              static_cast<size_t>(r)];
      Machine* machine = fabric_.machine(m);
      fabric_.RegisterRpcService(
          m, kServiceId, 0, machine->NumThreads() - 1,
          [this, g, r](MachineId from, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
            HandleRpc(g, r, from, std::move(req), std::move(reply));
          });
    }
  }
}

void TwoPcSystem::HandleRpc(int group, int replica, MachineId from, std::vector<uint8_t> req,
                            Fabric::ReplyFn reply) {
  BufReader r(req);
  Op op = static_cast<Op>(r.GetU8());
  switch (op) {
    case Op::kReplicate: {
      (void)replica;
      // Follower: append to the (modeled) local log and ack.
      reply({1});
      break;
    }
    case Op::kPrepare: {
      uint64_t txid = r.GetU64();
      uint32_t n = r.GetU32();
      std::vector<uint64_t> keys;
      for (uint32_t i = 0; i < n; i++) {
        keys.push_back(r.GetU64());
      }
      HandlePrepare(group, from, txid, std::move(keys), std::move(reply));
      break;
    }
    case Op::kDecide: {
      uint64_t txid = r.GetU64();
      bool commit = r.GetU8() != 0;
      HandleDecide(group, from, txid, commit, std::move(reply));
      break;
    }
  }
}

Task<bool> TwoPcSystem::Replicate(int group, std::vector<uint8_t> entry) {
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kReplicate));
  w.Append(entry.data(), entry.size());
  std::vector<uint8_t> msg = w.Take();
  int majority = options_.replicas_per_group / 2 + 1;
  auto acks = std::make_shared<int>(1);  // leader itself
  WaitGroup wg;
  MachineId leader = GroupLeader(group);
  for (int r = 1; r < options_.replicas_per_group; r++) {
    MachineId follower = machines_[static_cast<size_t>(group) * options_.replicas_per_group +
                                   static_cast<size_t>(r)];
    if (!fabric_.IsAlive(follower)) {
      continue;  // a dead follower would only stall the quorum wait
    }
    wg.Add();
    fabric_.Call(leader, follower, kServiceId, msg, nullptr, kRpcTimeout)
        .OnReady([acks, wg](NetResult& res) {
          if (res.status.ok()) {
            (*acks)++;
          }
          wg.Done();
        });
  }
  co_await wg.Wait();
  co_return *acks >= majority;
}

Detached TwoPcSystem::HandlePrepare(int group, MachineId from, uint64_t txid,
                                    std::vector<uint64_t> keys, Fabric::ReplyFn reply) {
  (void)from;
  // Participant leader: log the prepare through its Paxos group.
  BufWriter entry;
  entry.PutU64(txid);
  bool ok = co_await Replicate(group, entry.Take());
  if (ok) {
    prepared_[static_cast<size_t>(group)][txid] = std::move(keys);
  }
  reply({static_cast<uint8_t>(ok ? 1 : 0)});
}

Detached TwoPcSystem::HandleDecide(int group, MachineId from, uint64_t txid, bool commit,
                                   Fabric::ReplyFn reply) {
  (void)from;
  BufWriter entry;
  entry.PutU64(txid);
  bool ok = co_await Replicate(group, entry.Take());
  auto it = prepared_[static_cast<size_t>(group)].find(txid);
  if (ok && commit && it != prepared_[static_cast<size_t>(group)].end()) {
    for (uint64_t key : it->second) {
      store_[static_cast<size_t>(group)][key].assign(options_.value_bytes, 1);
    }
  }
  if (it != prepared_[static_cast<size_t>(group)].end()) {
    prepared_[static_cast<size_t>(group)].erase(it);
  }
  reply({static_cast<uint8_t>(ok ? 1 : 0)});
}

Task<bool> TwoPcSystem::RunTx(MachineId client, const std::vector<uint64_t>& keys) {
  uint64_t txid = next_tx_++;
  // Which participant groups does this transaction touch?
  std::vector<int> groups;
  for (uint64_t key : keys) {
    int g = static_cast<int>(key % static_cast<uint64_t>(options_.groups));
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }

  // Phase 1: PREPARE at every participant leader.
  bool all_yes = true;
  for (int g : groups) {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(Op::kPrepare));
    w.PutU64(txid);
    std::vector<uint64_t> group_keys;
    for (uint64_t key : keys) {
      if (static_cast<int>(key % static_cast<uint64_t>(options_.groups)) == g) {
        group_keys.push_back(key);
      }
    }
    w.PutU32(static_cast<uint32_t>(group_keys.size()));
    for (uint64_t key : group_keys) {
      w.PutU64(key);
    }
    NetResult r = co_await fabric_.Call(client, GroupLeader(g), kServiceId, w.Take(), nullptr,
                                        kRpcTimeout);
    if (!r.status.ok() || r.data.empty() || r.data[0] != 1) {
      all_yes = false;
    }
  }

  // Replicate the commit decision through the coordinator's own group.
  {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(Op::kDecide));
    w.PutU64(txid);
    w.PutU8(all_yes ? 1 : 0);
    NetResult r = co_await fabric_.Call(client, GroupLeader(CoordinatorGroup()), kServiceId,
                                        w.Take(), nullptr, kRpcTimeout);
    if (!r.status.ok()) {
      all_yes = false;
    }
  }

  // Phase 2: COMMIT/ABORT at participants.
  for (int g : groups) {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(Op::kDecide));
    w.PutU64(txid);
    w.PutU8(all_yes ? 1 : 0);
    (void)co_await fabric_.Call(client, GroupLeader(g), kServiceId, w.Take(), nullptr,
                                kRpcTimeout);
  }
  if (all_yes) {
    committed_++;
  }
  co_return all_yes;
}

}  // namespace farm
