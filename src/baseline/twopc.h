// Two-phase commit over Paxos-replicated participants (Spanner stand-in).
//
// Section 4 argues analytically that a Spanner-style commit needs
// 4P(2f+1) messages versus FaRM's Pw(f+3) one-sided writes. This baseline
// makes the comparison measurable: data is sharded over participant groups
// of 2f+1 replicas; the coordinator log is itself a replicated group; every
// step is a message (RPC) that burns remote CPU.
//
// Protocol per transaction (all steps leader-driven):
//   1. client -> coordinator leader: BEGIN-COMMIT
//   2. coordinator -> each participant leader: PREPARE(writes)
//   3. participant leader -> its followers: replicate prepare (majority ack)
//   4. participant leader -> coordinator: VOTE
//   5. coordinator -> its followers: replicate decision (majority ack)
//   6. coordinator -> participant leaders: COMMIT
//   7. participant leaders replicate + apply + ACK; coordinator -> client.
#ifndef SRC_BASELINE_TWOPC_H_
#define SRC_BASELINE_TWOPC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/sim/task.h"

namespace farm {

class TwoPcSystem {
 public:
  struct Options {
    int groups = 3;              // participant groups (data shards)
    int replicas_per_group = 3;  // 2f+1
    uint32_t value_bytes = 64;
  };

  // machines must hold (groups + 1) * replicas_per_group entries: group g
  // uses machines [g*r, (g+1)*r), the last group is the coordinator log.
  TwoPcSystem(Fabric& fabric, std::vector<MachineId> machines, Options options);

  // Runs one transaction writing `keys` (key -> owning group = key % groups)
  // coordinated from `client`. Returns commit success.
  Task<bool> RunTx(MachineId client, const std::vector<uint64_t>& keys);

  uint64_t committed() const { return committed_; }

 private:
  static constexpr uint16_t kServiceId = 210;

  MachineId GroupLeader(int group) const {
    return machines_[static_cast<size_t>(group) * options_.replicas_per_group];
  }
  int CoordinatorGroup() const { return options_.groups; }

  void HandleRpc(int group, int replica, MachineId from, std::vector<uint8_t> req,
                 Fabric::ReplyFn reply);
  Detached HandlePrepare(int group, MachineId from, uint64_t txid,
                         std::vector<uint64_t> keys, Fabric::ReplyFn reply);
  Detached HandleDecide(int group, MachineId from, uint64_t txid, bool commit,
                        Fabric::ReplyFn reply);
  // Replicates a log entry within the group; resolves when a majority acked.
  Task<bool> Replicate(int group, std::vector<uint8_t> entry);

  Fabric& fabric_;
  std::vector<MachineId> machines_;
  Options options_;
  uint64_t next_tx_ = 1;
  uint64_t committed_ = 0;
  // Per-group storage (at the leader; follower copies are modeled by the
  // replication message flow, which is what the comparison measures).
  std::vector<std::map<uint64_t, std::vector<uint8_t>>> store_;
  std::vector<std::map<uint64_t, std::vector<uint64_t>>> prepared_;  // txid -> keys
};

}  // namespace farm

#endif  // SRC_BASELINE_TWOPC_H_
