#include "src/baseline/local_occ.h"

namespace farm {

LocalOccEngine::LocalOccEngine(Simulator& sim, Machine& machine, CostModel cost,
                               Options options)
    : sim_(sim), machine_(machine), cost_(cost), options_(options) {}

void LocalOccEngine::Seed(uint64_t key, uint32_t value_bytes) {
  Record rec;
  rec.value.assign(value_bytes, 0);
  store_[key] = std::move(rec);
}

Future<Unit> LocalOccEngine::JoinLogBatch() {
  Future<Unit> f;
  batch_waiters_.push_back(f);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim_.After(options_.log_flush_interval, [this]() { FlushBatch(); });
  }
  return f;
}

void LocalOccEngine::FlushBatch() {
  // One batched SSD write serves the whole epoch (group commit).
  auto waiters = std::exchange(batch_waiters_, {});
  flush_scheduled_ = false;
  sim_.After(options_.ssd_flush_latency, [waiters = std::move(waiters)]() {
    for (const auto& w : waiters) {
      w.Set(Unit{});
    }
  });
}

Task<bool> LocalOccEngine::RunTx(int thread, const std::vector<uint64_t>& reads,
                                 const std::vector<uint64_t>& writes, uint32_t value_bytes) {
  HwThread& cpu = machine_.thread(thread);
  // Execution: read versions and data.
  // farmlint: allow(unordered-decl): per-transaction scratch map; validation
  // walks the caller-ordered `reads` vector, never this map.
  std::unordered_map<uint64_t, uint64_t> read_versions;
  for (uint64_t key : reads) {
    co_await cpu.Execute(cost_.cpu_tx_read_local);
    auto it = store_.find(key);
    if (it == store_.end()) {
      Seed(key, value_bytes);
      it = store_.find(key);
    }
    read_versions[key] = it->second.version;
  }
  co_await cpu.Execute(cost_.cpu_tx_commit_setup);

  // Commit: lock writes, validate reads, apply, log, unlock (Silo protocol).
  std::vector<Record*> locked;
  bool ok = true;
  for (uint64_t key : writes) {
    co_await cpu.Execute(cost_.cpu_lock_per_object);
    auto it = store_.find(key);
    if (it == store_.end()) {
      Seed(key, value_bytes);
      it = store_.find(key);
    }
    Record& rec = it->second;
    if (rec.locked) {
      ok = false;
      break;
    }
    auto rv = read_versions.find(key);
    if (rv != read_versions.end() && rv->second != rec.version) {
      ok = false;
      break;
    }
    rec.locked = true;
    locked.push_back(&rec);
  }
  if (ok) {
    for (uint64_t key : reads) {
      auto it = store_.find(key);
      if (it->second.version != read_versions[key] ||
          (it->second.locked &&
           std::find(writes.begin(), writes.end(), key) == writes.end())) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    for (Record* rec : locked) {
      rec->locked = false;
    }
    aborted_++;
    co_return false;
  }
  for (Record* rec : locked) {
    co_await cpu.Execute(cost_.CpuBytes(value_bytes) + cost_.cpu_tx_write_buffer);
    rec->version++;
    rec->locked = false;
  }
  if (options_.logging && !writes.empty()) {
    // Durability: wait for the group-commit flush of this epoch.
    co_await JoinLogBatch();
  }
  committed_++;
  co_return true;
}

}  // namespace farm
