// Single-machine main-memory OCC engine (Silo/Hekaton stand-in).
//
// The paper compares FaRM against published Hekaton and Silo numbers
// (sections 6.3, 7). To compare shapes under one cost model, this baseline
// implements a Silo-style engine -- per-record versions, read-set
// validation, write locks, and batched logging to local SSD -- running on a
// single simulated machine with the same per-operation CPU costs as FaRM's
// local paths. There is no replication: a failure loses availability, and
// recovery would mean replaying the SSD log (section 7's comparison).
#ifndef SRC_BASELINE_LOCAL_OCC_H_
#define SRC_BASELINE_LOCAL_OCC_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/net/cost_model.h"
#include "src/sim/machine.h"
#include "src/sim/task.h"

namespace farm {

class LocalOccEngine {
 public:
  struct Options {
    int threads = 4;
    bool logging = true;                      // Silo-with-logging vs without
    SimDuration log_flush_interval = 50 * kMicrosecond;  // group commit epoch
    SimDuration ssd_flush_latency = 100 * kMicrosecond;  // one batched fsync
  };

  LocalOccEngine(Simulator& sim, Machine& machine, CostModel cost, Options options);

  // A transaction: read `reads`, then update `writes` (subset semantics are
  // the caller's business; keys identify records). Returns commit success.
  Task<bool> RunTx(int thread, const std::vector<uint64_t>& reads,
                   const std::vector<uint64_t>& writes, uint32_t value_bytes);

  // Pre-populates a record.
  void Seed(uint64_t key, uint32_t value_bytes);

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }

 private:
  struct Record {
    uint64_t version = 0;
    bool locked = false;
    std::vector<uint8_t> value;
  };

  // Group commit: transactions wait for the epoch's log flush.
  Future<Unit> JoinLogBatch();
  void FlushBatch();

  Simulator& sim_;
  Machine& machine_;
  CostModel cost_;
  Options options_;
  // farmlint: allow(unordered-decl): accessed only via find/insert with keys
  // ordered by the caller's (seeded) access pattern; never iterated.
  std::unordered_map<uint64_t, Record> store_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  std::vector<Future<Unit>> batch_waiters_;
  bool flush_scheduled_ = false;
};

}  // namespace farm

#endif  // SRC_BASELINE_LOCAL_OCC_H_
