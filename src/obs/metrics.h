// Named, labeled metrics: counters, gauges, and histograms in a registry.
//
// A Registry owns metric cells keyed by (name, sorted labels). Handles
// (Counter / Gauge / HistogramMetric) are cheap references to a cell:
//
//   metrics::Counter committed(reg, "tx_committed", {{"node", "m3"}});
//   committed.Inc();
//
// Handle semantics are chosen so existing plain-struct stats code keeps
// working after migrating onto the registry:
//   - default construction creates a private detached cell (not in any
//     registry), so aggregate structs like `NodeStats total;` still work;
//   - COPYING a handle snapshots the current value into a new detached cell
//     (value semantics: `FabricStats before = fabric.stats();` stays a
//     point-in-time snapshot);
//   - MOVING a handle transfers the binding (registry lookups return by
//     value via move, so `auto c = reg.GetCounter(...)` stays bound).
//
// Registries support snapshot/diff and text + JSON dumps. The process-wide
// default registry (`Registry::Default()`) serves code with no cluster
// context; each simulated Cluster owns its own registry so sequential
// clusters in one process do not bleed counts into each other.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace farm {
namespace metrics {

// Label set; order does not matter (keys are sorted for the cell key).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical cell key: name{k1="v1",k2="v2"} with labels sorted by key.
std::string CellKey(const std::string& name, Labels labels);

namespace internal {
struct CounterCell {
  uint64_t value = 0;
};
struct GaugeCell {
  int64_t value = 0;
};
using HistogramCell = ::farm::Histogram;
}  // namespace internal

class Registry;

// Monotonically increasing counter. Supports the operators the migrated
// plain-uint64 stats structs relied on (++, +=, implicit read).
class Counter {
 public:
  Counter() : cell_(std::make_shared<internal::CounterCell>()) {}
  // Binds to the cell in `reg` (creating it if needed).
  Counter(Registry& reg, const std::string& name, Labels labels = {});
  // Binds into the process-wide default registry.
  explicit Counter(const std::string& name, Labels labels = {});

  Counter(const Counter& other)
      : cell_(std::make_shared<internal::CounterCell>(*other.cell_)) {}
  Counter& operator=(const Counter& other) {
    cell_->value = other.cell_->value;
    return *this;
  }
  Counter(Counter&&) = default;
  Counter& operator=(Counter&&) = default;

  void Inc(uint64_t delta = 1) { cell_->value += delta; }
  // Zeroes the cell in place (keeps the registry binding, unlike assigning
  // a fresh default-constructed handle, which would rebind).
  void Reset() { cell_->value = 0; }
  uint64_t value() const { return cell_->value; }
  operator uint64_t() const { return cell_->value; }
  Counter& operator++() {
    cell_->value++;
    return *this;
  }
  uint64_t operator++(int) { return cell_->value++; }
  Counter& operator+=(uint64_t delta) {
    cell_->value += delta;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.value();
  }

 private:
  friend class Registry;
  explicit Counter(std::shared_ptr<internal::CounterCell> cell) : cell_(std::move(cell)) {}
  std::shared_ptr<internal::CounterCell> cell_;
};

// A settable signed value.
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<internal::GaugeCell>()) {}
  Gauge(Registry& reg, const std::string& name, Labels labels = {});
  explicit Gauge(const std::string& name, Labels labels = {});

  Gauge(const Gauge& other) : cell_(std::make_shared<internal::GaugeCell>(*other.cell_)) {}
  Gauge& operator=(const Gauge& other) {
    cell_->value = other.cell_->value;
    return *this;
  }
  Gauge(Gauge&&) = default;
  Gauge& operator=(Gauge&&) = default;

  void Set(int64_t v) { cell_->value = v; }
  void Add(int64_t delta) { cell_->value += delta; }
  int64_t value() const { return cell_->value; }
  operator int64_t() const { return cell_->value; }

  friend std::ostream& operator<<(std::ostream& os, const Gauge& g) {
    return os << g.value();
  }

 private:
  friend class Registry;
  explicit Gauge(std::shared_ptr<internal::GaugeCell> cell) : cell_(std::move(cell)) {}
  std::shared_ptr<internal::GaugeCell> cell_;
};

// Handle to a registry-owned farm::Histogram.
class HistogramMetric {
 public:
  HistogramMetric() : cell_(std::make_shared<internal::HistogramCell>()) {}
  HistogramMetric(Registry& reg, const std::string& name, Labels labels = {});
  explicit HistogramMetric(const std::string& name, Labels labels = {});

  HistogramMetric(const HistogramMetric& other)
      : cell_(std::make_shared<internal::HistogramCell>(*other.cell_)) {}
  HistogramMetric& operator=(const HistogramMetric& other) {
    *cell_ = *other.cell_;
    return *this;
  }
  HistogramMetric(HistogramMetric&&) = default;
  HistogramMetric& operator=(HistogramMetric&&) = default;

  void Record(uint64_t value) { cell_->Record(value); }
  const Histogram& histogram() const { return *cell_; }

 private:
  friend class Registry;
  explicit HistogramMetric(std::shared_ptr<internal::HistogramCell> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<internal::HistogramCell> cell_;
};

// Point-in-time view of every cell in a registry, keyed by CellKey.
// Histograms are summarized as count/sum-like scalars (count, p50, p99, max).
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, uint64_t> histogram_counts;

  // after - before, per key. Keys absent from `before` count from zero;
  // keys absent from `after` are dropped. Gauges diff signed.
  static Snapshot Diff(const Snapshot& after, const Snapshot& before);
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns a handle bound to the (name, labels) cell, creating it if
  // needed. Repeated lookups with the same name and label set (in any label
  // order) return handles to the same cell.
  Counter GetCounter(const std::string& name, Labels labels = {});
  Gauge GetGauge(const std::string& name, Labels labels = {});
  HistogramMetric GetHistogram(const std::string& name, Labels labels = {});

  size_t CellCount() const;
  Snapshot TakeSnapshot() const;
  void Reset();  // zeroes every cell (keeps registrations)

  // One line per cell: `key value`, sorted by key. Histograms dump
  // `key n=... p50=... p99=... max=...`.
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{key:{"count":..,...}}}
  std::string ToJson() const;

  // The process-wide registry.
  static Registry& Default();

 private:
  friend void SetDumpOnDestroy(const std::string& path);
  std::map<std::string, std::shared_ptr<internal::CounterCell>> counters_;
  std::map<std::string, std::shared_ptr<internal::GaugeCell>> gauges_;
  std::map<std::string, std::shared_ptr<internal::HistogramCell>> histograms_;
  int instance_ = 0;  // dump-section ordinal, assigned at construction
};

// When set to a non-empty path, every Registry destroyed afterwards appends
// its dump to that file (JSON if the path ends in ".json", text otherwise).
// Used by the bench --metrics-out flag: benches create clusters inside their
// Run() function, so the dump must happen when the cluster's registry dies.
void SetDumpOnDestroy(const std::string& path);
// Appends an explicitly provided registry dump (used for Registry::Default()
// at bench exit, which is never destroyed).
void AppendDump(const Registry& reg, const std::string& section);

}  // namespace metrics
}  // namespace farm

#endif  // SRC_OBS_METRICS_H_
