// Global fault-point hook: the seam between protocol code and the chaos
// explorer's fault injector.
//
// A fault point is a named place in the protocol where a fault can be
// injected: every flight-recorder event type is one (the tap lives in
// flight::Recorder::Append, so the taxonomy of src/obs/flight_recorder.h is
// the taxonomy of injectable sites), plus a handful of native points at
// spots the recorder does not cover or where the injector needs a
// synchronous effect (fabric msg-send for message drops, ringlog-append for
// torn NVRAM writes, lease-send for forced expiries, reconfiguration steps
// in cm.cc, lock-recovery start in recovery.cc).
//
// Protocol code calls HitPoint(machine, point, arg) and honors the returned
// effect mask; with no hook installed this is a single pointer load, so
// normal runs (including the byte-identity trace gates) are unaffected.
// Deferred actions (machine kills, partitions, lease expiries) are the
// hook's own business: it schedules them through the simulator rather than
// mutating state under the caller's feet.
//
// At most one hook may be installed at a time, and only one Cluster may run
// while it is installed (the hook is process-global).
#ifndef SRC_OBS_FAULT_HOOK_H_
#define SRC_OBS_FAULT_HOOK_H_

#include <cstdint>

namespace farm {
namespace fault {

// Effects a hook may request synchronously at the site that hit the point.
// Sites only honor the effects that make sense for them; everything else
// the hook does via deferred simulator events.
enum Effect : uint32_t {
  kEffectNone = 0,
  // fabric msg-send: swallow this message on the wire (the sender still
  // pays the issue cost and the RPC times out normally).
  kEffectDropMessage = 1u << 0,
  // ringlog-append: persist only a prefix of the frame (a torn NVRAM write;
  // the hook kills the writer at the same instant, modeling a crash mid-DMA).
  kEffectTornWrite = 1u << 1,
};

class Hook {
 public:
  virtual ~Hook() = default;
  // Called every time execution reaches a fault point. `machine` is the
  // machine the point fired on, `point` a static interned name (compare by
  // content, not address), `arg` a per-point scalar (peer, region, config).
  // Returns an Effect mask for the call site to honor.
  virtual uint32_t OnPoint(uint32_t machine, const char* point, uint64_t arg) = 0;
};

// The installed hook (nullptr outside chaos exploration). Exposed so
// HitPoint inlines to a load + branch on the hot path.
extern Hook* g_hook;

// Installs/removes the process-wide hook. Installing over an existing hook
// or removing a hook that is not installed is a programming error.
void InstallHook(Hook* h);
void RemoveHook(Hook* h);

inline bool HookActive() { return g_hook != nullptr; }

inline uint32_t HitPoint(uint32_t machine, const char* point, uint64_t arg = 0) {
  return g_hook == nullptr ? kEffectNone : g_hook->OnPoint(machine, point, arg);
}

}  // namespace fault
}  // namespace farm

#endif  // SRC_OBS_FAULT_HOOK_H_
