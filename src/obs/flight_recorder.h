// Transaction flight recorder: an always-on, per-machine ring buffer of
// fixed-size POD protocol records.
//
// Every machine keeps the newest ~8k protocol events (tx phase begin/end,
// lock acquire/reject, validation failures, abort reasons, recovery and
// reconfiguration steps, message-level sends/receives) in a preallocated
// ring. Appending is a single 32-byte store plus a counter bump: no
// allocation, no simulator events, no randomness -- the recorder observes
// the execution without perturbing it, so same-seed runs stay byte-identical
// with recording on (the 32-machine trace gate runs with it enabled).
//
// When a chaos run fails, the harness drains every machine's ring into a
// causally merged postmortem -- records sorted by (time, machine, seq) --
// whose text format round-trips through ParseRecordLine and is consumed by
// tools/trace/txdump to reconstruct one transaction's cross-machine
// timeline.
//
// Records must stay trivially copyable and pointer-free (they are retained
// past the lifetime of everything they describe); farmlint's `recorder-pod`
// rule enforces this for any struct named `*Record` in files that include
// this header.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.h"

namespace farm {
namespace flight {

// What a record describes. `arg` is interpreted per kind: a Phase for
// phase-begin/end, an AbortReason for abort, a RecoveryStep for recovery,
// and a small scalar (service id, reject cause) otherwise.
enum class EventKind : uint8_t {
  kPhaseBegin = 1,     // coordinator: commit phase entered (arg = Phase)
  kPhaseEnd,           // coordinator: commit phase completed (arg = Phase)
  kLockAcquire,        // primary: LOCK record locked all its objects
  kLockReject,         // primary: LOCK rejected (arg: 0 = conflict, 1 = non-member)
  kValidateFail,       // primary: kValidate RPC saw a changed version
  kAbort,              // coordinator: commit gave up (arg = AbortReason)
  kCommitBackupRecord,   // backup: COMMIT-BACKUP record arrived in the log
  kCommitPrimaryRecord,  // primary: COMMIT-PRIMARY applied, writes exposed
  kAbortRecord,        // primary: ABORT record processed, locks released
  kTruncateRecord,     // participant: truncation for a tx processed
  kMsgSend,            // fabric: RPC issued (arg = service, detail = dst)
  kMsgRecv,            // fabric: RPC handler invoked (arg = service, detail = src)
  kRecoveryStep,       // recovery machinery progressed (arg = RecoveryStep)
  kReconfig,           // new configuration installed (detail = config id)
  kBatchFlush,         // messenger: data-plane batch flushed (arg = records, detail = dst)
};
constexpr int kNumEventKinds = 15;

// Commit-protocol phases, in paper order (section 4). `execute` is the
// span from transaction begin to Commit(); `truncate` is coordinator-side
// queue-to-dispatch of the lazy truncation.
enum class Phase : uint8_t {
  kExecute = 0,
  kLock,
  kValidate,
  kCommitBackup,
  kCommitPrimary,
  kTruncate,
};
constexpr int kNumPhases = 6;

// Why a commit attempt ended without committing. The first four plus
// kRecoveryAbort are real aborts and move the tx_abort_reason counters;
// the kUnresolved* reasons mirror the tx_unresolved outcome (the
// coordinator could not learn the result) and appear only in flight
// records.
enum class AbortReason : uint8_t {
  kLockConflict = 1,
  kValidateConflict,
  kNoPlacement,
  kLogReservation,
  kRecoveryAbort,
  kUnresolvedLock,
  kUnresolvedBackupAck,
  kUnresolvedBackupFailure,
  kUnresolvedPrimaryAck,
};
constexpr int kNumAbortReasons = 9;
// Reasons [1, kNumCountedAbortReasons] are bona fide aborts: their
// counters sum to tx_aborted_lock + tx_aborted_validate + tx_recovered_abort.
constexpr int kNumCountedAbortReasons = 5;

// Steps of the section-5 recovery/reconfiguration flow (arg of
// kRecoveryStep records).
enum class RecoveryStep : uint8_t {
  kNewConfig = 1,        // NEW-CONFIG installed, regions blocked
  kTxStateStart,         // transaction-state recovery began (logs drained)
  kLockRecovery,         // lock recovery finished for a region (detail)
  kDecideCommit,         // vote coordinator decided commit for a tx
  kDecideAbort,          // vote coordinator decided abort for a tx
  kDecisionApply,        // participant applied a recovery decision
  kTruncateRecovery,     // TRUNCATE-RECOVERY processed for a tx
};
constexpr int kNumRecoverySteps = 7;

const char* EventKindName(EventKind k);
const char* PhaseName(Phase p);
const char* AbortReasonName(AbortReason r);
const char* RecoveryStepName(RecoveryStep s);

// Fault-point name for a record kind: the event-kind name, qualified with
// the symbolic arg where the kind defines one ("phase-begin:lock",
// "recovery:new-config"). Returns an interned static string, so hot paths
// can pass it around without allocating. Every name doubles as an
// injectable fault-point id (see src/obs/fault_hook.h).
const char* PointName(EventKind k, uint8_t arg);

// All point names a ring could ever emit, sorted; for tooling that wants to
// enumerate the taxonomy without observing a run.
std::vector<const char*> AllPointNames();

// One protocol event. Exactly 32 bytes, trivially copyable, pointer-free
// (enforced by the static_asserts below and the farmlint recorder-pod rule).
// The transaction id is stored unpacked (config truncated to 32 bits --
// configurations are small integers) and is only meaningful when the
// kHasTx flag is set.
struct Record {
  static constexpr uint16_t kHasTx = 1 << 0;

  uint64_t time_ns = 0;   // simulated time of the event
  uint64_t tx_local = 0;  // TxId.local
  uint32_t tx_config = 0; // TxId.config (low 32 bits)
  uint32_t detail = 0;    // region / peer machine / config, per kind
  uint16_t tx_machine = 0;  // TxId.machine (coordinator)
  uint16_t tx_thread = 0;   // TxId.thread
  uint8_t kind = 0;       // EventKind
  uint8_t arg = 0;        // per-kind argument (see EventKind)
  uint16_t flags = 0;
};
static_assert(sizeof(Record) == 32, "flight records are fixed 32-byte PODs");
static_assert(std::is_trivially_copyable_v<Record>,
              "flight records must be trivially copyable");

// A record drained from a ring, with its provenance: the machine whose ring
// held it and its per-ring append sequence number. (time, machine, seq) is
// the total merge order of a postmortem.
struct DrainedRecord {
  Record rec;
  uint64_t seq = 0;
  uint32_t machine = 0;
};
static_assert(std::is_trivially_copyable_v<DrainedRecord>);

// Per-machine ring. Single-threaded (the simulation is), fixed capacity,
// overwrites oldest; `dropped()` counts overwritten records so a postmortem
// states what it lost.
class Recorder {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Recorder(uint32_t machine, size_t capacity = kDefaultCapacity);

  void Append(const Record& r);

  uint32_t machine() const { return machine_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t appended() const { return appended_; }
  uint64_t dropped() const {
    return appended_ > ring_.size() ? appended_ - ring_.size() : 0;
  }

  // Retained records, oldest to newest, each with its append seq (seq of the
  // i-th ever appended record is i, so seqs stay continuous across wrap).
  std::vector<DrainedRecord> Drain() const;

 private:
  uint32_t machine_;
  uint64_t appended_ = 0;
  std::vector<Record> ring_;
};

// One line per record:
//   t=<ns> m=<machine> seq=<n> <event> <arg> tx=<c>,<m>,<t>,<l> d=<detail>
// with `tx=-` when the record carries no transaction and the arg rendered
// symbolically (phase / abort-reason / recovery-step name) where the kind
// defines one.
std::string FormatRecord(const DrainedRecord& r);
// Inverse of FormatRecord; returns false on any line that is not a record
// (headers, blank lines, garbage).
bool ParseRecordLine(const std::string& line, DrainedRecord* out);

// Causally merged postmortem of a set of rings: a `farm-flight-postmortem
// v1` header, one `ring ...` summary line per machine (appended/dropped
// counts), then every retained record sorted by (time, machine, seq). Pure
// function of ring contents, so same-seed failing runs produce
// byte-identical postmortems.
std::string BuildPostmortem(const std::vector<const Recorder*>& rings);

// --flight-out= support, mirroring metrics::SetDumpOnDestroy: when set to a
// non-empty path, every Cluster destroyed afterwards appends its merged
// flight timeline (with a section header) to that file.
void SetDumpOnDestroy(const std::string& path);
const std::string& DumpPath();
void AppendDump(const std::string& postmortem, const std::string& section);

// Per-cluster commit-phase latency histograms and the abort-reason counter
// taxonomy, layered on the PR-1 metrics registry:
//   tx_phase_ns{phase="lock"}          (histogram, one per Phase)
//   tx_abort_reason{reason="lock_conflict"}  (counter, one per AbortReason)
// Every node of a cluster binds to the same cells (the labels carry no node
// id), so the registry dump and the bench phase rows see cluster totals.
struct PhaseMetrics {
  metrics::HistogramMetric phase_ns[kNumPhases];
  metrics::Counter abort_reason[kNumAbortReasons];

  void BindTo(metrics::Registry& reg);
  void RecordPhase(Phase p, uint64_t ns) {
    phase_ns[static_cast<int>(p)].Record(ns);
  }
  void CountAbort(AbortReason r) {
    abort_reason[static_cast<int>(r) - 1].Inc();
  }
};

}  // namespace flight
}  // namespace farm

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
