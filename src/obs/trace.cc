#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"

namespace farm {
namespace trace {

namespace {

Tracer* g_tracer = nullptr;

// ts/dur are microseconds in the trace-event format; simulated time is
// nanoseconds. Emit "<us>.<ns remainder>" with fixed width so output is
// deterministic and loses no precision.
void AppendMicros(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
}

}  // namespace

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options options) : options_(options) {}

void Tracer::NameProcess(uint32_t pid, const std::string& name) {
  Event ev;
  ev.phase = 'M';
  ev.pid = pid;
  ev.name = "process_name";
  ev.id = name;
  metadata_.push_back(std::move(ev));
}

void Tracer::NameThread(uint32_t pid, uint32_t tid, const std::string& name) {
  Event ev;
  ev.phase = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.name = "thread_name";
  ev.id = name;
  metadata_.push_back(std::move(ev));
}

void Tracer::BeginSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
                       const std::string& id) {
  FARM_CHECK(sim_ != nullptr) << "tracer has no clock attached";
  Push(Event{'b', pid, tid, sim_->Now(), 0, cat, name, id, 0});
}

void Tracer::EndSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
                     const std::string& id) {
  FARM_CHECK(sim_ != nullptr) << "tracer has no clock attached";
  Push(Event{'e', pid, tid, sim_->Now(), 0, cat, name, id, 0});
}

void Tracer::CompleteSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
                          SimTime start) {
  FARM_CHECK(sim_ != nullptr) << "tracer has no clock attached";
  SimTime now = sim_->Now();
  Push(Event{'X', pid, tid, start, now - start, cat, name, {}, 0});
}

void Tracer::Instant(uint32_t pid, uint32_t tid, const char* cat, const char* name) {
  FARM_CHECK(sim_ != nullptr) << "tracer has no clock attached";
  Push(Event{'i', pid, tid, sim_->Now(), 0, cat, name, {}, 0});
}

void Tracer::CounterValue(uint32_t pid, const char* name, uint64_t value) {
  FARM_CHECK(sim_ != nullptr) << "tracer has no clock attached";
  Push(Event{'C', pid, 0, sim_->Now(), 0, nullptr, name, {}, value});
}

void Tracer::AppendEvent(std::string& out, const Event& ev) {
  char buf[96];
  if (ev.phase == 'M') {
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"ts\":0,\"name\":\"%s\"",
                  ev.pid, ev.tid, ev.name);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, ev.id);
    out += "\"}}";
    return;
  }
  std::snprintf(buf, sizeof(buf), "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":", ev.phase,
                ev.pid, ev.tid);
  out += buf;
  AppendMicros(out, ev.ts);
  if (ev.cat != nullptr) {
    out += ",\"cat\":\"";
    out += ev.cat;
    out += '"';
  }
  out += ",\"name\":\"";
  out += ev.name;
  out += '"';
  switch (ev.phase) {
    case 'X':
      out += ",\"dur\":";
      AppendMicros(out, ev.dur);
      break;
    case 'b':
    case 'e':
      out += ",\"id\":\"";
      AppendEscaped(out, ev.id);
      out += '"';
      break;
    case 'i':
      out += ",\"s\":\"t\"";
      break;
    case 'C': {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRIu64 "}", ev.value);
      out += buf;
      break;
    }
    default:
      break;
  }
  out += '}';
}

std::string Tracer::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const Event& ev : metadata_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    AppendEvent(out, ev);
  }
  for (const Event& ev : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    AppendEvent(out, ev);
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kInternal, "cannot open trace file: " + path);
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status(StatusCode::kInternal, "short write to trace file: " + path);
  }
  return OkStatus();
}

Tracer* Global() { return g_tracer; }

void SetGlobal(Tracer* tracer) { g_tracer = tracer; }

}  // namespace trace
}  // namespace farm
