#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace farm {
namespace metrics {

namespace {

// Dump-on-destroy state (see SetDumpOnDestroy).
std::string& DumpPath() {
  static std::string path;
  return path;
}

int& NextInstance() {
  static int next = 0;
  return next;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

}  // namespace

std::string CellKey(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) {
        key += ',';
      }
      first = false;
      key += k;
      key += "=\"";
      key += v;
      key += '"';
    }
    key += '}';
  }
  return key;
}

Counter::Counter(Registry& reg, const std::string& name, Labels labels)
    : Counter(reg.GetCounter(name, std::move(labels))) {}
Counter::Counter(const std::string& name, Labels labels)
    : Counter(Registry::Default().GetCounter(name, std::move(labels))) {}

Gauge::Gauge(Registry& reg, const std::string& name, Labels labels)
    : Gauge(reg.GetGauge(name, std::move(labels))) {}
Gauge::Gauge(const std::string& name, Labels labels)
    : Gauge(Registry::Default().GetGauge(name, std::move(labels))) {}

HistogramMetric::HistogramMetric(Registry& reg, const std::string& name, Labels labels)
    : HistogramMetric(reg.GetHistogram(name, std::move(labels))) {}
HistogramMetric::HistogramMetric(const std::string& name, Labels labels)
    : HistogramMetric(Registry::Default().GetHistogram(name, std::move(labels))) {}

Snapshot Snapshot::Diff(const Snapshot& after, const Snapshot& before) {
  Snapshot d;
  for (const auto& [k, v] : after.counters) {
    auto it = before.counters.find(k);
    d.counters[k] = v - (it == before.counters.end() ? 0 : it->second);
  }
  for (const auto& [k, v] : after.gauges) {
    auto it = before.gauges.find(k);
    d.gauges[k] = v - (it == before.gauges.end() ? 0 : it->second);
  }
  for (const auto& [k, v] : after.histogram_counts) {
    auto it = before.histogram_counts.find(k);
    d.histogram_counts[k] = v - (it == before.histogram_counts.end() ? 0 : it->second);
  }
  return d;
}

Registry::Registry() : instance_(NextInstance()++) {}

Registry::~Registry() {
  const std::string& path = DumpPath();
  if (!path.empty() && CellCount() > 0) {
    AppendDump(*this, "registry " + std::to_string(instance_));
  }
}

Counter Registry::GetCounter(const std::string& name, Labels labels) {
  auto& cell = counters_[CellKey(name, std::move(labels))];
  if (cell == nullptr) {
    cell = std::make_shared<internal::CounterCell>();
  }
  return Counter(cell);
}

Gauge Registry::GetGauge(const std::string& name, Labels labels) {
  auto& cell = gauges_[CellKey(name, std::move(labels))];
  if (cell == nullptr) {
    cell = std::make_shared<internal::GaugeCell>();
  }
  return Gauge(cell);
}

HistogramMetric Registry::GetHistogram(const std::string& name, Labels labels) {
  auto& cell = histograms_[CellKey(name, std::move(labels))];
  if (cell == nullptr) {
    cell = std::make_shared<internal::HistogramCell>();
  }
  return HistogramMetric(cell);
}

size_t Registry::CellCount() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot s;
  for (const auto& [k, cell] : counters_) {
    s.counters[k] = cell->value;
  }
  for (const auto& [k, cell] : gauges_) {
    s.gauges[k] = cell->value;
  }
  for (const auto& [k, cell] : histograms_) {
    s.histogram_counts[k] = cell->count();
  }
  return s;
}

void Registry::Reset() {
  for (auto& [k, cell] : counters_) {
    (void)k;
    cell->value = 0;
  }
  for (auto& [k, cell] : gauges_) {
    (void)k;
    cell->value = 0;
  }
  for (auto& [k, cell] : histograms_) {
    (void)k;
    cell->Reset();
  }
}

std::string Registry::ToText() const {
  std::ostringstream out;
  for (const auto& [k, cell] : counters_) {
    out << k << ' ' << cell->value << '\n';
  }
  for (const auto& [k, cell] : gauges_) {
    out << k << ' ' << cell->value << '\n';
  }
  for (const auto& [k, cell] : histograms_) {
    out << k << ' ' << cell->Summary() << '\n';
  }
  return out.str();
}

std::string Registry::ToJson() const {
  std::ostringstream out;
  auto emit_map = [&out](const char* kind, const auto& cells, auto value_fn, bool first) {
    if (!first) {
      out << ',';
    }
    out << '"' << kind << "\":{";
    bool f = true;
    for (const auto& [k, cell] : cells) {
      if (!f) {
        out << ',';
      }
      f = false;
      out << '"' << JsonEscape(k) << "\":";
      value_fn(*cell);
    }
    out << '}';
  };
  out << '{';
  emit_map("counters", counters_,
           [&out](const internal::CounterCell& c) { out << c.value; }, true);
  emit_map("gauges", gauges_, [&out](const internal::GaugeCell& g) { out << g.value; },
           false);
  emit_map("histograms", histograms_,
           [&out](const internal::HistogramCell& h) {
             out << "{\"count\":" << h.count() << ",\"min\":" << h.min()
                 << ",\"max\":" << h.max() << ",\"p50\":" << h.Percentile(50)
                 << ",\"p99\":" << h.Percentile(99) << '}';
           },
           false);
  out << '}';
  return out.str();
}

Registry& Registry::Default() {
  static Registry* reg = new Registry();  // leaked: outlives all static dtors
  return *reg;
}

void SetDumpOnDestroy(const std::string& path) { DumpPath() = path; }

void AppendDump(const Registry& reg, const std::string& section) {
  const std::string& path = DumpPath();
  if (path.empty()) {
    return;
  }
  bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::string content;
  if (json) {
    content = "{\"section\":\"" + JsonEscape(section) + "\",\"metrics\":" + reg.ToJson() + "}\n";
  } else {
    content = "# " + section + "\n" + reg.ToText();
  }
  AppendToFile(path, content);
}

}  // namespace metrics
}  // namespace farm
