#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/fault_hook.h"

namespace farm {
namespace flight {

namespace {

const char* const kEventKindNames[kNumEventKinds] = {
    "phase-begin",    "phase-end",      "lock-acquire",  "lock-reject",
    "validate-fail",  "abort",          "commit-backup", "commit-primary",
    "abort-record",   "truncate",       "msg-send",      "msg-recv",
    "recovery",       "reconfig",       "batch-flush",
};

const char* const kPhaseNames[kNumPhases] = {
    "execute", "lock", "validate", "commit_backup", "commit_primary", "truncate",
};

const char* const kAbortReasonNames[kNumAbortReasons] = {
    "lock_conflict",        "validate_conflict",
    "no_placement",         "log_reservation",
    "recovery_abort",       "unresolved_lock",
    "unresolved_backup_ack", "unresolved_backup_failure",
    "unresolved_primary_ack",
};

const char* const kRecoveryStepNames[kNumRecoverySteps] = {
    "new-config",   "tx-state-start",    "lock-recovery",     "decide-commit",
    "decide-abort", "decision-apply",    "truncate-recovery",
};

// Renders `arg` the way FormatRecord does for `kind`: a symbolic name where
// the kind defines one, the raw number otherwise.
std::string ArgText(uint8_t kind, uint8_t arg) {
  EventKind k = static_cast<EventKind>(kind);
  int a = static_cast<int>(arg);
  switch (k) {
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      if (a >= 0 && a < kNumPhases) {
        return kPhaseNames[a];
      }
      break;
    case EventKind::kAbort:
      if (a >= 1 && a <= kNumAbortReasons) {
        return kAbortReasonNames[a - 1];
      }
      break;
    case EventKind::kRecoveryStep:
      if (a >= 1 && a <= kNumRecoverySteps) {
        return kRecoveryStepNames[a - 1];
      }
      break;
    default:
      break;
  }
  return std::to_string(a);
}

// Inverse of ArgText: resolves a symbolic or numeric arg for `kind`.
bool ParseArg(uint8_t kind, const std::string& text, uint8_t* out) {
  EventKind k = static_cast<EventKind>(kind);
  if (k == EventKind::kPhaseBegin || k == EventKind::kPhaseEnd) {
    for (int i = 0; i < kNumPhases; i++) {
      if (text == kPhaseNames[i]) {
        *out = static_cast<uint8_t>(i);
        return true;
      }
    }
  } else if (k == EventKind::kAbort) {
    for (int i = 0; i < kNumAbortReasons; i++) {
      if (text == kAbortReasonNames[i]) {
        *out = static_cast<uint8_t>(i + 1);
        return true;
      }
    }
  } else if (k == EventKind::kRecoveryStep) {
    for (int i = 0; i < kNumRecoverySteps; i++) {
      if (text == kRecoveryStepNames[i]) {
        *out = static_cast<uint8_t>(i + 1);
        return true;
      }
    }
  }
  char* end = nullptr;
  unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v > 255) {
    return false;
  }
  *out = static_cast<uint8_t>(v);
  return true;
}

std::string& GlobalDumpPath() {
  static std::string path;
  return path;
}

}  // namespace

const char* EventKindName(EventKind k) {
  int i = static_cast<int>(k);
  return (i >= 1 && i <= kNumEventKinds) ? kEventKindNames[i - 1] : "?";
}

const char* PhaseName(Phase p) {
  int i = static_cast<int>(p);
  return (i >= 0 && i < kNumPhases) ? kPhaseNames[i] : "?";
}

const char* AbortReasonName(AbortReason r) {
  int i = static_cast<int>(r);
  return (i >= 1 && i <= kNumAbortReasons) ? kAbortReasonNames[i - 1] : "?";
}

const char* RecoveryStepName(RecoveryStep s) {
  int i = static_cast<int>(s);
  return (i >= 1 && i <= kNumRecoverySteps) ? kRecoveryStepNames[i - 1] : "?";
}

const char* PointName(EventKind k, uint8_t arg) {
  // Interned qualified names for the kinds whose arg selects a sub-site.
  static const char* const kPhaseBeginPoints[kNumPhases] = {
      "phase-begin:execute",        "phase-begin:lock",
      "phase-begin:validate",       "phase-begin:commit_backup",
      "phase-begin:commit_primary", "phase-begin:truncate",
  };
  static const char* const kPhaseEndPoints[kNumPhases] = {
      "phase-end:execute",        "phase-end:lock",
      "phase-end:validate",       "phase-end:commit_backup",
      "phase-end:commit_primary", "phase-end:truncate",
  };
  static const char* const kRecoveryPoints[kNumRecoverySteps] = {
      "recovery:new-config",    "recovery:tx-state-start",
      "recovery:lock-recovery", "recovery:decide-commit",
      "recovery:decide-abort",  "recovery:decision-apply",
      "recovery:truncate-recovery",
  };
  int a = static_cast<int>(arg);
  switch (k) {
    case EventKind::kPhaseBegin:
      if (a >= 0 && a < kNumPhases) {
        return kPhaseBeginPoints[a];
      }
      break;
    case EventKind::kPhaseEnd:
      if (a >= 0 && a < kNumPhases) {
        return kPhaseEndPoints[a];
      }
      break;
    case EventKind::kRecoveryStep:
      if (a >= 1 && a <= kNumRecoverySteps) {
        return kRecoveryPoints[a - 1];
      }
      break;
    default:
      break;
  }
  return EventKindName(k);
}

std::vector<const char*> AllPointNames() {
  std::vector<const char*> out;
  for (int k = 1; k <= kNumEventKinds; k++) {
    EventKind kind = static_cast<EventKind>(k);
    switch (kind) {
      case EventKind::kPhaseBegin:
      case EventKind::kPhaseEnd:
        for (int p = 0; p < kNumPhases; p++) {
          out.push_back(PointName(kind, static_cast<uint8_t>(p)));
        }
        break;
      case EventKind::kRecoveryStep:
        for (int s = 1; s <= kNumRecoverySteps; s++) {
          out.push_back(PointName(kind, static_cast<uint8_t>(s)));
        }
        break;
      default:
        out.push_back(EventKindName(kind));
        break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const char* a, const char* b) { return std::strcmp(a, b) < 0; });
  return out;
}

Recorder::Recorder(uint32_t machine, size_t capacity)
    : machine_(machine), ring_(capacity > 0 ? capacity : 1) {}

void Recorder::Append(const Record& r) {
  ring_[appended_ % ring_.size()] = r;
  appended_++;
  if (fault::HookActive()) {
    // Every flight record is an injectable fault point. msg-send is the one
    // exception: the fabric hits it natively (before committing the message
    // to the wire) so the hook's drop effect can take hold.
    EventKind k = static_cast<EventKind>(r.kind);
    if (k != EventKind::kMsgSend) {
      fault::HitPoint(machine_, PointName(k, r.arg), r.detail);
    }
  }
}

std::vector<DrainedRecord> Recorder::Drain() const {
  std::vector<DrainedRecord> out;
  uint64_t retained = appended_ < ring_.size() ? appended_ : ring_.size();
  out.reserve(retained);
  for (uint64_t seq = appended_ - retained; seq < appended_; seq++) {
    DrainedRecord d;
    d.rec = ring_[seq % ring_.size()];
    d.seq = seq;
    d.machine = machine_;
    out.push_back(d);
  }
  return out;
}

std::string FormatRecord(const DrainedRecord& r) {
  char buf[160];
  std::string tx = "-";
  if (r.rec.flags & Record::kHasTx) {
    std::snprintf(buf, sizeof(buf), "%u,%u,%u,%" PRIu64,
                  r.rec.tx_config, static_cast<uint32_t>(r.rec.tx_machine),
                  static_cast<uint32_t>(r.rec.tx_thread), r.rec.tx_local);
    tx = buf;
  }
  std::snprintf(buf, sizeof(buf), "t=%" PRIu64 " m=%u seq=%" PRIu64 " %s %s tx=%s d=%u",
                r.rec.time_ns, r.machine, r.seq, EventKindName(static_cast<EventKind>(r.rec.kind)),
                ArgText(r.rec.kind, r.rec.arg).c_str(), tx.c_str(), r.rec.detail);
  return buf;
}

bool ParseRecordLine(const std::string& line, DrainedRecord* out) {
  // Tokenize on single spaces; the format is fixed-field.
  std::vector<std::string> f;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) {
      sp = line.size();
    }
    if (sp > pos) {
      f.push_back(line.substr(pos, sp - pos));
    }
    pos = sp + 1;
  }
  if (f.size() != 7 || f[0].rfind("t=", 0) != 0 || f[1].rfind("m=", 0) != 0 ||
      f[2].rfind("seq=", 0) != 0 || f[5].rfind("tx=", 0) != 0 || f[6].rfind("d=", 0) != 0) {
    return false;
  }
  DrainedRecord d;
  char* end = nullptr;
  d.rec.time_ns = std::strtoull(f[0].c_str() + 2, &end, 10);
  if (*end != '\0') {
    return false;
  }
  d.machine = static_cast<uint32_t>(std::strtoul(f[1].c_str() + 2, &end, 10));
  if (*end != '\0') {
    return false;
  }
  d.seq = std::strtoull(f[2].c_str() + 4, &end, 10);
  if (*end != '\0') {
    return false;
  }
  int kind = 0;
  for (int i = 1; i <= kNumEventKinds; i++) {
    if (f[3] == kEventKindNames[i - 1]) {
      kind = i;
      break;
    }
  }
  if (kind == 0) {
    return false;
  }
  d.rec.kind = static_cast<uint8_t>(kind);
  if (!ParseArg(d.rec.kind, f[4], &d.rec.arg)) {
    return false;
  }
  std::string tx = f[5].substr(3);
  if (tx != "-") {
    unsigned long long c = 0, m = 0, t = 0, l = 0;
    if (std::sscanf(tx.c_str(), "%llu,%llu,%llu,%llu", &c, &m, &t, &l) != 4) {
      return false;
    }
    d.rec.tx_config = static_cast<uint32_t>(c);
    d.rec.tx_machine = static_cast<uint16_t>(m);
    d.rec.tx_thread = static_cast<uint16_t>(t);
    d.rec.tx_local = l;
    d.rec.flags |= Record::kHasTx;
  }
  d.rec.detail = static_cast<uint32_t>(std::strtoul(f[6].c_str() + 2, &end, 10));
  if (*end != '\0') {
    return false;
  }
  *out = d;
  return true;
}

std::string BuildPostmortem(const std::vector<const Recorder*>& rings) {
  std::vector<DrainedRecord> all;
  std::string out = "farm-flight-postmortem v1\n";
  out += "rings=" + std::to_string(rings.size()) + "\n";
  for (const Recorder* r : rings) {
    if (r == nullptr) {
      continue;
    }
    out += "ring m=" + std::to_string(r->machine()) +
           " appended=" + std::to_string(r->appended()) +
           " dropped=" + std::to_string(r->dropped()) + "\n";
    std::vector<DrainedRecord> drained = r->Drain();
    all.insert(all.end(), drained.begin(), drained.end());
  }
  std::sort(all.begin(), all.end(), [](const DrainedRecord& a, const DrainedRecord& b) {
    if (a.rec.time_ns != b.rec.time_ns) {
      return a.rec.time_ns < b.rec.time_ns;
    }
    if (a.machine != b.machine) {
      return a.machine < b.machine;
    }
    return a.seq < b.seq;
  });
  out += "records=" + std::to_string(all.size()) + "\n";
  for (const DrainedRecord& d : all) {
    out += FormatRecord(d);
    out += "\n";
  }
  return out;
}

void SetDumpOnDestroy(const std::string& path) { GlobalDumpPath() = path; }

const std::string& DumpPath() { return GlobalDumpPath(); }

void AppendDump(const std::string& postmortem, const std::string& section) {
  const std::string& path = GlobalDumpPath();
  if (path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return;
  }
  std::string header = "==== flight: " + section + " ====\n";
  std::fwrite(header.data(), 1, header.size(), f);
  std::fwrite(postmortem.data(), 1, postmortem.size(), f);
  std::fclose(f);
}

void PhaseMetrics::BindTo(metrics::Registry& reg) {
  for (int p = 0; p < kNumPhases; p++) {
    phase_ns[p] = reg.GetHistogram("tx_phase_ns", {{"phase", kPhaseNames[p]}});
  }
  for (int r = 0; r < kNumAbortReasons; r++) {
    abort_reason[r] = reg.GetCounter("tx_abort_reason", {{"reason", kAbortReasonNames[r]}});
  }
}

}  // namespace flight
}  // namespace farm
