#include "src/obs/fault_hook.h"

#include "src/common/logging.h"

namespace farm {
namespace fault {

Hook* g_hook = nullptr;

void InstallHook(Hook* h) {
  FARM_CHECK(g_hook == nullptr) << "a fault hook is already installed";
  FARM_CHECK(h != nullptr);
  g_hook = h;
}

void RemoveHook(Hook* h) {
  FARM_CHECK(g_hook == h) << "removing a fault hook that is not installed";
  g_hook = nullptr;
}

}  // namespace fault
}  // namespace farm
