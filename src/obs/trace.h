// Deterministic span tracer keyed on simulated time, exporting Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing.
//
// Mapping from simulation to trace concepts:
//   pid = simulated machine id (named via NameProcess, e.g. "machine 3")
//   tid = hardware-thread index on that machine ("worker 0", "lease")
//   ts  = simulated nanoseconds, emitted as fractional microseconds
//
// Three event shapes are used:
//   - nestable async spans ("b"/"e" keyed by category + id) for work that
//     interleaves on one thread, like concurrent transaction commits and
//     multi-step recovery flows;
//   - complete spans ("X") for contiguous stretches of one logical
//     activity, like a transaction read or a reconfiguration step;
//   - instants ("i") and counters ("C") for point events such as fabric
//     operations, milestones, and cumulative byte counts.
//
// Tracing must cost nothing when off: every call site goes through the
// FARM_TRACE macro, which compiles to nothing under FARM_TRACE_DISABLED and
// otherwise is a single null check of the global tracer pointer. All event
// fields derive from simulated state, so two runs with the same seed produce
// byte-identical trace files (pinned by tests/obs_test.cc).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace farm {
namespace trace {

class Tracer {
 public:
  struct Options {
    // Record per-operation fabric instants and byte counters (cat "net").
    // High-volume; disable for long runs where only tx/recovery spans matter.
    bool capture_net = true;
  };

  Tracer();
  explicit Tracer(Options options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Events are stamped with clock->Now(). The clock must be attached before
  // any recording; a cluster attaches its simulator at construction. The
  // tracer does not own the simulator and must not record after it dies.
  void AttachClock(const Simulator* sim) { sim_ = sim; }
  bool has_clock() const { return sim_ != nullptr; }
  bool capture_net() const { return options_.capture_net; }

  // Track naming (metadata events, ts 0).
  void NameProcess(uint32_t pid, const std::string& name);
  void NameThread(uint32_t pid, uint32_t tid, const std::string& name);

  // Nestable async span; begin/end pairs match on (cat, id). Spans with the
  // same id nest in Perfetto, so a transaction and its phases share one id.
  void BeginSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
                 const std::string& id);
  void EndSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
               const std::string& id);

  // Complete span from `start` to now on the (pid, tid) track.
  void CompleteSpan(uint32_t pid, uint32_t tid, const char* cat, const char* name,
                    SimTime start);

  void Instant(uint32_t pid, uint32_t tid, const char* cat, const char* name);
  void CounterValue(uint32_t pid, const char* name, uint64_t value);

  size_t event_count() const { return events_.size() + metadata_.size(); }
  SimTime Now() const { return sim_ == nullptr ? 0 : sim_->Now(); }

  // Chrome trace-event JSON ({"traceEvents":[...]}). Deterministic: event
  // order is insertion order (the simulator is single-threaded) and all
  // numbers are formatted with fixed precision.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'b','e','X','i','C','M'
    uint32_t pid = 0;
    uint32_t tid = 0;
    SimTime ts = 0;
    SimDuration dur = 0;       // X only
    const char* cat = nullptr;  // static strings at call sites
    const char* name = nullptr;
    std::string id;      // async spans; also thread/process names for M
    uint64_t value = 0;  // C only
  };

  void Push(Event ev) { events_.push_back(std::move(ev)); }
  static void AppendEvent(std::string& out, const Event& ev);

  Options options_;
  const Simulator* sim_ = nullptr;
  std::vector<Event> metadata_;
  std::vector<Event> events_;
};

// Process-global tracer; null when tracing is off. The simulation is
// single-threaded, so a plain pointer suffices.
Tracer* Global();
void SetGlobal(Tracer* tracer);

}  // namespace trace
}  // namespace farm

// Call-site guard: FARM_TRACE(Instant(pid, tid, "tx", "truncate")) expands
// to a null-checked call on the global tracer, or to nothing when tracing is
// compiled out.
#ifndef FARM_TRACE_DISABLED
#define FARM_TRACE(call)                                                    \
  do {                                                                      \
    if (::farm::trace::Tracer* farm_tracer_ = ::farm::trace::Global()) {    \
      farm_tracer_->call;                                                   \
    }                                                                       \
  } while (0)
#define FARM_TRACE_ACTIVE() (::farm::trace::Global() != nullptr)
#else
#define FARM_TRACE(call) \
  do {                   \
  } while (0)
#define FARM_TRACE_ACTIVE() (false)
#endif

namespace farm {
namespace trace {

// RAII async span for coroutines: begins on construction, ends on
// destruction (coroutine locals die at co_return, so every exit path of a
// traced coroutine closes its span at the simulated time it finishes).
class SpanGuard {
 public:
  SpanGuard(uint32_t pid, uint32_t tid, const char* cat, const char* name, std::string id)
      : pid_(pid), tid_(tid), cat_(cat), name_(name), id_(std::move(id)) {
    FARM_TRACE(BeginSpan(pid_, tid_, cat_, name_, id_));
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() { End(); }

  void End() {
    if (!ended_) {
      ended_ = true;
      FARM_TRACE(EndSpan(pid_, tid_, cat_, name_, id_));
    }
  }

 private:
  uint32_t pid_;
  uint32_t tid_;
  const char* cat_;
  const char* name_;
  std::string id_;
  bool ended_ = false;
};

}  // namespace trace
}  // namespace farm

#endif  // SRC_OBS_TRACE_H_
