// A local replica of a region: a contiguous range of NVRAM holding objects.
//
// Every object starts with an 8-byte header word (lock bit | alloc bit |
// version) followed by its payload. Remote machines read objects with
// one-sided RDMA reads of [header | payload] from the primary and lock them
// with CAS on the header word (section 4).
#ifndef SRC_CORE_REGION_H_
#define SRC_CORE_REGION_H_

#include <cstdint>
#include <cstring>

#include "src/common/logging.h"
#include "src/core/types.h"
#include "src/nvram/nvram.h"

namespace farm {

class RegionReplica {
 public:
  RegionReplica(RegionId id, uint32_t size, uint32_t object_stride, NvramStore* store)
      : id_(id), size_(size), object_stride_(object_stride), store_(store) {
    base_ = store_->Allocate(size);
  }

  RegionId id() const { return id_; }
  uint32_t size() const { return size_; }
  // App-managed regions have a fixed object stride (header + payload);
  // 0 means slab-managed (block headers define object sizes).
  uint32_t object_stride() const { return object_stride_; }
  // NVRAM base address: what remote machines target with one-sided verbs.
  uint64_t base() const { return base_; }
  uint64_t AddrOf(uint32_t offset) const { return base_ + offset; }

  uint8_t* Ptr(uint32_t offset, uint32_t len) {
    FARM_CHECK(static_cast<uint64_t>(offset) + len <= size_);
    return store_->Data(base_ + offset, len);
  }
  const uint8_t* Ptr(uint32_t offset, uint32_t len) const {
    return const_cast<RegionReplica*>(this)->Ptr(offset, len);
  }

  uint64_t ReadHeader(uint32_t offset) const {
    uint64_t w;
    std::memcpy(&w, Ptr(offset, 8), 8);
    return w;
  }
  void WriteHeader(uint32_t offset, uint64_t word) { std::memcpy(Ptr(offset, 8), &word, 8); }

  // Local CAS on the header (what LOCK-record processing does).
  bool CasHeader(uint32_t offset, uint64_t expected, uint64_t desired) {
    uint64_t observed;
    bool ok = store_->RdmaCas(base_ + offset, expected, desired, &observed);
    FARM_CHECK(ok);
    return observed == expected;
  }

  void WriteData(uint32_t offset, const uint8_t* data, uint32_t len) {
    if (len > 0) {
      std::memcpy(Ptr(offset + kObjectHeaderBytes, len), data, len);
    }
  }

  // Whether the region is serving (false while lock recovery runs after a
  // primary change; section 5.3 step 1).
  bool active() const { return active_; }
  void set_active(bool a) { active_ = a; }

 private:
  RegionId id_;
  uint32_t size_;
  uint32_t object_stride_;
  NvramStore* store_;
  uint64_t base_ = 0;
  bool active_ = true;
};

}  // namespace farm

#endif  // SRC_CORE_REGION_H_
