#include "src/core/ringlog.h"

#include <cstring>

#include "src/common/hash.h"
#include "src/obs/fault_hook.h"

namespace farm {

uint32_t FrameCheck(const uint8_t* payload, uint32_t len) {
  return static_cast<uint32_t>(HashCombine(Fnv1a(payload, len), len)) | 1u;
}

RingReceiver::RingReceiver(NvramStore* store, uint32_t capacity)
    : store_(store), cap_(capacity) {
  FARM_CHECK(capacity % 8 == 0 && capacity >= 64);
  base_ = store_->Allocate(8 + capacity);  // [u64 persisted head][data]
}

uint8_t* RingReceiver::At(uint64_t abs, uint32_t len) {
  uint64_t off = abs % cap_;
  FARM_CHECK(off + len <= cap_) << "frame straddles ring end";
  return store_->Data(data_base() + off, len);
}

uint32_t RingReceiver::PeekLen(uint64_t abs) {
  uint32_t len;
  std::memcpy(&len, At(abs, 4), 4);
  return len;
}

int RingReceiver::Drain(
    const std::function<void(uint64_t seq, std::vector<uint8_t> payload)>& fn) {
  int surfaced = 0;
  for (;;) {
    uint64_t off = parse_ % cap_;
    uint32_t contiguous = cap_ - static_cast<uint32_t>(off);
    if (contiguous < kFrameHeaderBytes) {
      // Degenerate tail; senders never leave <8 bytes (frames are 8-aligned).
      parse_ += contiguous;
      continue;
    }
    uint32_t len = PeekLen(parse_);
    if (len == 0) {
      break;  // nothing (yet) at the parse position
    }
    if (len == kWrapMarker) {
      frames_.push_back(Frame{parse_, contiguous, true, true, 0});
      parse_ += contiguous;
      AdvanceHead();
      continue;
    }
    uint32_t framed = FramedLen(len);
    if (len > cap_ || framed > contiguous) {
      // Implausible length: a torn header. The single writer appends frames
      // in order, so this can only be the tail of the log -- stop here.
      NoteTorn();
      break;
    }
    const uint8_t* f = At(parse_, framed);
    uint32_t check;
    std::memcpy(&check, f + 4, 4);
    if (check != FrameCheck(f + kFrameHeaderBytes, len)) {
      NoteTorn();  // torn payload (or checksum word): stop at the tear
      break;
    }
    std::vector<uint8_t> payload(len);
    std::memcpy(payload.data(), f + kFrameHeaderBytes, len);
    uint64_t seq = next_seq_++;
    frames_.push_back(Frame{parse_, framed, false, false, seq});
    parse_ += framed;
    surfaced++;
    fn(seq, std::move(payload));
  }
  return surfaced;
}

void RingReceiver::MarkFreeable(uint64_t seq) {
  for (Frame& f : frames_) {
    if (!f.is_marker && f.seq == seq) {
      f.freeable = true;
      break;
    }
  }
  AdvanceHead();
}

void RingReceiver::AdvanceHead() {
  bool moved = false;
  while (!frames_.empty() && frames_.front().freeable) {
    Frame f = frames_.front();
    frames_.pop_front();
    // Zero the freed range so a future wrap parses cleanly.
    std::memset(At(f.pos, f.framed_len), 0, f.framed_len);
    head_ += f.framed_len;
    bytes_freed_total_ += f.framed_len;
    moved = true;
  }
  if (moved) {
    // Persist the head so power-failure recovery knows where to re-parse.
    std::memcpy(store_->Data(base_, 8), &head_, 8);
  }
}

void RingReceiver::NoteTorn() {
  // Count each tear once even though every Drain poll re-observes it
  // (positions are absolute, so this also dedupes across RebuildFromNvram).
  if (torn_at_ != parse_ + 1) {
    torn_frames_++;
    torn_at_ = parse_ + 1;
  }
}

void RingReceiver::RebuildFromNvram() {
  frames_.clear();
  std::memcpy(&head_, store_->Data(base_, 8), 8);
  parse_ = head_;
  next_seq_ = 0;
}

RingSender::RingSender(Fabric* fabric, MachineId self, MachineId peer, uint64_t ring_data_base,
                       uint32_t capacity, uint64_t feedback_addr, NvramStore* self_store,
                       RingReceiver* local_receiver, std::function<void()> poke_receiver)
    : fabric_(fabric),
      self_(self),
      peer_(peer),
      data_base_(ring_data_base),
      cap_(capacity),
      feedback_addr_(feedback_addr),
      self_store_(self_store),
      local_receiver_(local_receiver),
      poke_receiver_(std::move(poke_receiver)) {}

uint64_t RingSender::HeadView() const {
  uint64_t head;
  std::memcpy(&head, self_store_->Data(feedback_addr_, 8), 8);
  return head;
}

uint64_t RingSender::FreeBytes() const {
  uint64_t used = tail_ - HeadView();
  FARM_CHECK(used <= cap_);
  return cap_ - used;
}

bool RingSender::Reserve(uint32_t payload_len) {
  // Doubled to cover worst-case wrap-marker waste.
  uint64_t need = 2ULL * FramedLen(payload_len);
  if (FreeBytes() < reserved_ + need) {
    return false;
  }
  reserved_ += need;
  return true;
}

void RingSender::ReleaseReservation(uint32_t payload_len) {
  uint64_t give = 2ULL * FramedLen(payload_len);
  FARM_CHECK(reserved_ >= give);
  reserved_ -= give;
}

Future<NetResult> RingSender::Append(std::vector<uint8_t> payload, uint32_t reserved_len,
                                     HwThread* thread) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  FARM_CHECK(len <= reserved_len) << "record larger than its reservation";
  uint32_t framed = FramedLen(len);
  uint32_t effect = fault::HitPoint(self_, "ringlog-append", peer_);
  ReleaseReservation(reserved_len);
  FARM_CHECK(tail_ - HeadView() + framed <= cap_) << "ring overflow despite reservation";

  uint32_t off = static_cast<uint32_t>(tail_ % cap_);
  uint32_t contiguous = cap_ - off;
  if (framed > contiguous) {
    // Emit a wrap marker and continue at the ring start.
    std::vector<uint8_t> marker(4);
    uint32_t m = kWrapMarker;
    std::memcpy(marker.data(), &m, 4);
    if (local_receiver_ != nullptr) {
      std::memcpy(self_store_->Data(data_base_ + off, 4), marker.data(), 4);
    } else {
      // Fire-and-forget; the record write below orders after it in the ring.
      (void)fabric_->Write(self_, peer_, data_base_ + off, std::move(marker), nullptr);
    }
    tail_ += contiguous;
    off = 0;
    FARM_CHECK(tail_ - HeadView() + framed <= cap_) << "ring overflow after wrap";
  }

  std::vector<uint8_t> frame(framed, 0);
  std::memcpy(frame.data(), &len, 4);
  uint32_t check = FrameCheck(payload.data(), len);
  std::memcpy(frame.data() + 4, &check, 4);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(), payload.size());
  tail_ += framed;

  // Torn write: only the first half of the frame reaches NVRAM (at least
  // the length word, never the whole frame), so the receiver sees a header
  // with a bad checksum -- exactly what a crash mid-DMA leaves behind.
  uint32_t torn_keep = framed / 2;

  if (local_receiver_ != nullptr) {
    // Local log write: a plain store into our own NVRAM, but routed through
    // RdmaWrite so an armed tear applies to it too.
    if (effect & fault::kEffectTornWrite) {
      self_store_->ArmTornWrite(torn_keep);
    }
    FARM_CHECK(self_store_->RdmaWrite(data_base_ + off, frame.data(), framed));
    poke_receiver_();
    Future<NetResult> done;
    done.Set(NetResult{OkStatus(), {}});
    return done;
  }
  if (effect & fault::kEffectTornWrite) {
    frame.resize(torn_keep);
  }
  return fabric_->Write(self_, peer_, data_base_ + off, std::move(frame), thread,
                        poke_receiver_);
}

namespace {

// Extends the last segment when `addr` continues it; otherwise starts a new
// one. Ring frames are consecutive, so a batch folds into one segment per
// contiguous run (two runs max: before and after a wrap).
void AppendSegBytes(std::vector<WriteSeg>& segs, uint64_t addr, const uint8_t* bytes,
                    size_t len) {
  if (segs.empty() || segs.back().addr + segs.back().data.size() != addr) {
    segs.push_back(WriteSeg{addr, {}});
  }
  segs.back().data.insert(segs.back().data.end(), bytes, bytes + len);
}

}  // namespace

std::vector<WriteSeg> RingSender::PrepareBatch(std::vector<BatchEntry> entries) {
  FARM_CHECK(local_receiver_ == nullptr) << "PrepareBatch is for remote rings";
  std::vector<WriteSeg> segs;
  bool torn = false;
  for (BatchEntry& e : entries) {
    uint32_t len = static_cast<uint32_t>(e.payload.size());
    FARM_CHECK(len <= e.reserved_len) << "record larger than its reservation";
    uint32_t framed = FramedLen(len);
    uint32_t effect = fault::HitPoint(self_, "ringlog-append", peer_);
    ReleaseReservation(e.reserved_len);
    FARM_CHECK(tail_ - HeadView() + framed <= cap_) << "ring overflow despite reservation";

    uint32_t off = static_cast<uint32_t>(tail_ % cap_);
    uint32_t contiguous = cap_ - off;
    if (framed > contiguous) {
      if (!torn) {
        uint32_t m = kWrapMarker;
        AppendSegBytes(segs, data_base_ + off, reinterpret_cast<const uint8_t*>(&m), 4);
      }
      tail_ += contiguous;
      off = 0;
      FARM_CHECK(tail_ - HeadView() + framed <= cap_) << "ring overflow after wrap";
    }

    tail_ += framed;
    if (torn) {
      continue;  // bytes after a torn frame never reach the wire
    }
    std::vector<uint8_t> frame(framed, 0);
    std::memcpy(frame.data(), &len, 4);
    uint32_t check = FrameCheck(e.payload.data(), len);
    std::memcpy(frame.data() + 4, &check, 4);
    std::memcpy(frame.data() + kFrameHeaderBytes, e.payload.data(), e.payload.size());
    if (effect & fault::kEffectTornWrite) {
      frame.resize(framed / 2);  // same tear shape as a single Append
      torn = true;
    }
    AppendSegBytes(segs, data_base_ + off, frame.data(), frame.size());
  }
  return segs;
}

}  // namespace farm
