// FaRM transactions: the application-facing API and the coordinator half of
// the commit protocol (section 4).
//
// Usage (inside a sim coroutine running on a node worker thread):
//
//   auto tx = node.Begin(thread);
//   auto v = co_await tx->Read(addr, size);
//   if (!v.ok()) { /* abort path */ }
//   tx->Write(addr, new_bytes);
//   Status s = co_await tx->Commit();
//
// Execution buffers writes locally and reads objects from their primaries
// (local access or one-sided RDMA). Commit runs LOCK / VALIDATE /
// COMMIT-BACKUP / COMMIT-PRIMARY / TRUNCATE. Committed read-write
// transactions serialize at the point all write locks were acquired;
// read-only transactions at their last read.
#ifndef SRC_CORE_TX_H_
#define SRC_CORE_TX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/core/wire.h"
#include "src/sim/task.h"

namespace farm {

class Node;

class Transaction {
 public:
  Transaction(Node* node, int thread);
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Reads `size` payload bytes of the object at addr. Guarantees: atomic,
  // committed data; repeated reads return the same value; reads of objects
  // written by this transaction return the written value. Cross-object
  // atomicity is NOT guaranteed during execution -- conflicting transactions
  // are caught at commit (section 3).
  Task<StatusOr<std::vector<uint8_t>>> Read(GlobalAddr addr, uint32_t size);

  // Buffers a write. The object must have been read or allocated by this
  // transaction (OCC needs the observed version).
  Status Write(GlobalAddr addr, std::vector<uint8_t> value);

  // Allocates an object of `payload_size` bytes in the given region (the
  // region's primary hands out a free slot). Visible on commit.
  Task<StatusOr<GlobalAddr>> Alloc(RegionId region, uint32_t payload_size);

  // Frees the object (clears its alloc bit on commit). Requires prior Read.
  Status Free(GlobalAddr addr);

  // Runs the commit protocol. OK = strictly serializable commit; kAborted =
  // conflict; kUnavailable = gave up due to failures (outcome resolved by
  // recovery; the write set was NOT applied unless recovery committed it).
  Task<Status> Commit();

  // True once Commit resolved successfully.
  bool committed() const { return committed_; }
  const TxId& id() const { return id_; }
  int thread() const { return thread_; }
  Node* node() const { return node_; }

  // --- internal: called by the node's message dispatch ---
  void OnLockReply(MachineId from, bool ok);
  void OnValidateReply(MachineId from, bool ok);
  // Called by recovery when this in-flight transaction's outcome was decided
  // by the recovery protocol instead of the normal path.
  void ResolveByRecovery(bool committed);
  // Reconfiguration turned this into a recovering transaction: hardware acks
  // are rejected from now on; recovery owns the outcome (section 5.3).
  void MarkRecovering() { marked_recovering_ = true; }
  bool marked_recovering() const { return marked_recovering_; }

 private:
  friend class Node;

  struct ReadEntry {
    uint64_t word = 0;  // unlocked view of the header observed at read time
    std::vector<uint8_t> value;
    MachineId read_from = kInvalidMachine;
  };

  struct WriteEntry {
    uint64_t expected_version = 0;
    bool expected_alloc = false;
    bool set_alloc = false;
    bool clear_alloc = false;
    std::vector<uint8_t> value;
  };

  // Commit-phase helpers (tx.cc).
  struct Participants {
    // primary machine -> writes shipped in its LOCK record
    std::map<MachineId, std::vector<WireWrite>> primary_writes;
    // backup machine -> writes shipped in its COMMIT-BACKUP record
    std::map<MachineId, std::vector<WireWrite>> backup_writes;
    std::vector<RegionId> written_regions;
    std::vector<MachineId> all_holders;  // every machine holding log records
  };
  StatusOr<Participants> BuildParticipants() const;
  bool ReserveLogs(const Participants& p);
  Status FinishFromRecovery();
  Task<Status> ValidatePhase();
  void AbortParticipants(const Participants& p);
  void ReleaseAllocs();
  TxLogRecord MakeRecord(LogRecordType type, MachineId dst,
                         const std::vector<WireWrite>* writes,
                         const std::vector<RegionId>& regions) const;

  // Wakes the commit coroutine from its current wait; each phase arms a
  // fresh future. Recovery resolution also fires it.
  void WakePhase();
  // Waits for WakePhase or the safety-net timeout; false on timeout.
  Task<bool> AwaitPhase();

  Node* node_;
  int thread_;
  TxId id_;  // assigned at commit start
  ConfigId begin_config_;
  uint64_t begin_time_ = 0;  // sim time of Begin(); start of the execute phase
  bool committed_ = false;
  bool commit_started_ = false;
  bool registered_ = false;

  std::map<GlobalAddr, ReadEntry> reads_;
  std::map<GlobalAddr, WriteEntry> writes_;
  std::vector<GlobalAddr> allocs_;  // reserved slots to release on abort

  Future<Unit> phase_wake_;
  bool phase_armed_ = false;

  // Lock / validate reply collection.
  int lock_replies_pending_ = 0;
  bool lock_all_ok_ = true;
  int validate_msgs_pending_ = 0;
  bool validate_all_ok_ = true;
  // Set when the recovery protocol decided this transaction's outcome.
  std::optional<bool> recovery_resolution_;
  bool marked_recovering_ = false;
  // Outlives the Transaction in completion closures; cleared by the dtor so
  // late acks never touch a dead object.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace farm

#endif  // SRC_CORE_TX_H_
