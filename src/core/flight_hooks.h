// Thin adapters between core protocol code and the flight recorder.
//
// flight::Record stores the transaction id unpacked (src/obs cannot depend
// on core's TxId), so every hook site would otherwise repeat the same field
// copies. These helpers are null-safe: a Node outside a cluster context may
// have no ring.
#ifndef SRC_CORE_FLIGHT_HOOKS_H_
#define SRC_CORE_FLIGHT_HOOKS_H_

#include "src/core/types.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/simulator.h"

namespace farm {

inline void FlightLog(flight::Recorder* ring, SimTime now, flight::EventKind kind,
                      uint8_t arg = 0, uint32_t detail = 0) {
  if (ring == nullptr) {
    return;
  }
  flight::Record r;
  r.time_ns = now;
  r.kind = static_cast<uint8_t>(kind);
  r.arg = arg;
  r.detail = detail;
  ring->Append(r);
}

inline void FlightLogTx(flight::Recorder* ring, SimTime now, flight::EventKind kind,
                        const TxId& id, uint8_t arg = 0, uint32_t detail = 0) {
  if (ring == nullptr) {
    return;
  }
  flight::Record r;
  r.time_ns = now;
  r.kind = static_cast<uint8_t>(kind);
  r.arg = arg;
  r.detail = detail;
  r.tx_config = static_cast<uint32_t>(id.config);
  r.tx_machine = static_cast<uint16_t>(id.machine);
  r.tx_thread = id.thread;
  r.tx_local = id.local;
  r.flags |= flight::Record::kHasTx;
  ring->Append(r);
}

}  // namespace farm

#endif  // SRC_CORE_FLIGHT_HOOKS_H_
