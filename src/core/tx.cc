#include "src/core/tx.h"

#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/flight_hooks.h"
#include "src/core/node.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

constexpr size_t kMaxPiggyback = 8;

// Span id for async tx spans; only pay for the string when tracing is on.
std::string TxTraceId(const TxId& id) {
  return FARM_TRACE_ACTIVE() ? id.ToString() : std::string();
}

// Reservation size for small records (COMMIT-PRIMARY / ABORT) with room for
// piggybacked truncation ids.
uint32_t SmallRecordReservation() {
  TxLogRecord rec;
  rec.truncate_ids.resize(kMaxPiggyback);
  return static_cast<uint32_t>(rec.SerializedSize());
}

}  // namespace

Transaction::Transaction(Node* node, int thread)
    : node_(node),
      thread_(thread),
      begin_config_(node->config().id),
      begin_time_(node->sim().Now()) {}

Transaction::~Transaction() {
  *alive_ = false;
  if (registered_) {
    node_->UnregisterInflight(id_);
  }
  if (!committed_) {
    // An abandoned or aborted transaction returns its reserved slots.
    ReleaseAllocs();
  }
}

// ---------------------------------------------------------------------------
// Execution phase
// ---------------------------------------------------------------------------

Task<StatusOr<std::vector<uint8_t>>> Transaction::Read(GlobalAddr addr, uint32_t size) {
  FARM_CHECK(!commit_started_) << "Read after Commit";
  // Read-your-writes.
  auto wit = writes_.find(addr);
  if (wit != writes_.end() && !wit->second.value.empty()) {
    co_return wit->second.value;
  }
  // Successive reads of the same object return the same data (section 3).
  auto rit = reads_.find(addr);
  if (rit != reads_.end()) {
    co_return rit->second.value;
  }

  const SimTime read_start = FARM_TRACE_ACTIVE() ? node_->sim().Now() : 0;
  auto ref = co_await node_->ResolveRef(addr.region, thread_);
  if (!ref.ok()) {
    co_return ref.status();
  }
  uint64_t word = 0;
  std::vector<uint8_t> value;
  if (ref->primary == node_->id()) {
    RegionReplica* rep = node_->replica(addr.region);
    if (rep == nullptr) {
      co_return NotFoundStatus("region moved");
    }
    co_await node_->worker(thread_).Execute(node_->fabric().cost().cpu_tx_read_local);
    word = rep->ReadHeader(addr.offset);
    const uint8_t* p = rep->Ptr(addr.offset + kObjectHeaderBytes, size);
    value.assign(p, p + size);
  } else {
    if (!node_->InConfig(ref->primary)) {
      co_return UnavailableStatus("primary not in configuration");
    }
    NetResult r = co_await node_->fabric().Read(node_->id(), ref->primary,
                                                ref->base + addr.offset,
                                                kObjectHeaderBytes + size,
                                                &node_->worker(thread_));
    if (!r.status.ok()) {
      co_return r.status;
    }
    std::memcpy(&word, r.data.data(), 8);
    value.assign(r.data.begin() + 8, r.data.end());
  }
  // A locked object may be mid-commit by another transaction; we record the
  // unlocked view of the header. If the writer commits, the version moves
  // and our validation/locking aborts; if it aborts, the header reverts to
  // exactly this word.
  ReadEntry entry;
  entry.word = VersionWord::WithoutLock(word);
  entry.value = value;
  entry.read_from = ref->primary;
  reads_[addr] = std::move(entry);
  FARM_TRACE(CompleteSpan(static_cast<uint32_t>(node_->id()), static_cast<uint32_t>(thread_),
                          "tx", "read", read_start));
  co_return value;
}

Status Transaction::Write(GlobalAddr addr, std::vector<uint8_t> value) {
  FARM_CHECK(!commit_started_) << "Write after Commit";
  auto wit = writes_.find(addr);
  if (wit != writes_.end()) {
    if (wit->second.clear_alloc) {
      return Status(StatusCode::kFailedPrecondition, "write to freed object");
    }
    wit->second.value = std::move(value);
    return OkStatus();
  }
  auto rit = reads_.find(addr);
  if (rit == reads_.end()) {
    return Status(StatusCode::kFailedPrecondition,
                  "write requires a prior read (or allocation) of the object");
  }
  WriteEntry e;
  e.expected_version = VersionWord::Version(rit->second.word);
  e.expected_alloc = VersionWord::IsAllocated(rit->second.word);
  e.value = std::move(value);
  writes_[addr] = std::move(e);
  return OkStatus();
}

Task<StatusOr<GlobalAddr>> Transaction::Alloc(RegionId region, uint32_t payload_size) {
  FARM_CHECK(!commit_started_) << "Alloc after Commit";
  auto slot = co_await node_->AllocSlot(region, payload_size, thread_);
  if (!slot.ok()) {
    co_return slot.status();
  }
  WriteEntry e;
  e.expected_version = VersionWord::Version(slot->header_word);
  e.expected_alloc = false;
  e.set_alloc = true;
  writes_[slot->addr] = std::move(e);
  allocs_.push_back(slot->addr);
  co_return slot->addr;
}

Status Transaction::Free(GlobalAddr addr) {
  FARM_CHECK(!commit_started_) << "Free after Commit";
  auto rit = reads_.find(addr);
  if (rit == reads_.end()) {
    return Status(StatusCode::kFailedPrecondition, "free requires a prior read");
  }
  WriteEntry e;
  e.expected_version = VersionWord::Version(rit->second.word);
  e.expected_alloc = VersionWord::IsAllocated(rit->second.word);
  e.clear_alloc = true;
  writes_[addr] = std::move(e);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Commit protocol
// ---------------------------------------------------------------------------

void Transaction::WakePhase() {
  if (phase_armed_ && !phase_wake_.Ready()) {
    phase_wake_.Set(Unit{});
  }
}

Task<bool> Transaction::AwaitPhase() {
  phase_armed_ = true;
  auto woke = co_await AwaitWithTimeout(node_->sim(), phase_wake_,
                                        node_->options().commit_resolution_timeout);
  phase_armed_ = false;
  phase_wake_ = Future<Unit>();  // fresh future for the next phase
  co_return woke.has_value();
}

void Transaction::OnLockReply(MachineId from, bool ok) {
  (void)from;
  if (lock_replies_pending_ <= 0) {
    return;  // stale (e.g. duplicate after recovery)
  }
  lock_all_ok_ = lock_all_ok_ && ok;
  if (--lock_replies_pending_ == 0) {
    WakePhase();
  }
}

void Transaction::OnValidateReply(MachineId from, bool ok) {
  (void)from;
  if (validate_msgs_pending_ <= 0) {
    return;
  }
  validate_all_ok_ = validate_all_ok_ && ok;
  if (--validate_msgs_pending_ == 0) {
    WakePhase();
  }
}

void Transaction::ResolveByRecovery(bool committed) {
  if (recovery_resolution_.has_value()) {
    return;
  }
  recovery_resolution_ = committed;
  WakePhase();
}

StatusOr<Transaction::Participants> Transaction::BuildParticipants() const {
  Participants p;
  const Configuration& cfg = node_->config();
  std::set<RegionId> regions;
  std::set<MachineId> holders;
  for (const auto& [addr, w] : writes_) {
    const RegionPlacement* placement = cfg.Placement(addr.region);
    if (placement == nullptr) {
      return NotFoundStatus("written region has no placement");
    }
    regions.insert(addr.region);
    WireWrite ww;
    ww.addr = addr;
    ww.expected_version = w.expected_version;
    ww.expected_alloc = w.expected_alloc;
    ww.set_alloc = w.set_alloc;
    ww.clear_alloc = w.clear_alloc;
    ww.value = w.value;
    p.primary_writes[placement->primary].push_back(ww);
    holders.insert(placement->primary);
    for (MachineId b : placement->backups) {
      p.backup_writes[b].push_back(ww);
      holders.insert(b);
    }
  }
  p.written_regions.assign(regions.begin(), regions.end());
  p.all_holders.assign(holders.begin(), holders.end());
  return p;
}

TxLogRecord Transaction::MakeRecord(LogRecordType type, MachineId dst,
                                    const std::vector<WireWrite>* writes,
                                    const std::vector<RegionId>& regions) const {
  TxLogRecord rec;
  rec.type = type;
  rec.tx = id_;
  rec.written_regions = regions;
  if (writes != nullptr) {
    rec.writes = *writes;
  }
  rec.truncate_ids = node_->TakeTruncationsFor(dst, kMaxPiggyback);
  return rec;
}

bool Transaction::ReserveLogs(const Participants& p) {
  // Reserve space for every record the commit may write -- LOCK +
  // COMMIT-PRIMARY/ABORT at primaries, COMMIT-BACKUP at backups, plus
  // truncation piggyback room -- before the protocol starts (section 4).
  struct Taken {
    MachineId m;
    uint32_t len;
  };
  std::vector<Taken> taken;
  auto reserve = [&](MachineId m, uint32_t len) {
    if (!node_->messenger().ReserveLog(m, len)) {
      return false;
    }
    taken.push_back({m, len});
    return true;
  };
  uint32_t small = SmallRecordReservation();
  bool ok = true;
  for (const auto& [m, writes] : p.primary_writes) {
    TxLogRecord probe;
    probe.tx = id_;
    probe.written_regions = p.written_regions;
    probe.writes = writes;
    probe.truncate_ids.resize(kMaxPiggyback);
    ok = ok && reserve(m, static_cast<uint32_t>(probe.SerializedSize()));  // LOCK
    ok = ok && reserve(m, small);                                          // CP / ABORT
    ok = ok && reserve(m, small);                                          // TRUNCATE
    if (!ok) {
      break;
    }
  }
  if (ok) {
    for (const auto& [m, writes] : p.backup_writes) {
      TxLogRecord probe;
      probe.tx = id_;
      probe.written_regions = p.written_regions;
      probe.writes = writes;
      probe.truncate_ids.resize(kMaxPiggyback);
      ok = ok && reserve(m, static_cast<uint32_t>(probe.SerializedSize()));  // CB
      ok = ok && reserve(m, small);                                          // TRUNCATE
      if (!ok) {
        break;
      }
    }
  }
  if (!ok) {
    for (const Taken& t : taken) {
      node_->messenger().ReleaseLogReservation(t.m, t.len);
    }
    return false;
  }
  return true;
}

Task<Status> Transaction::Commit() {
  FARM_CHECK(!commit_started_) << "Commit called twice";
  commit_started_ = true;
  const NodeOptions& opts = node_->options();
  CostModel& cost = node_->fabric().cost();

  // Read-only transactions: validation only, no logging (section 4:
  // serialization point is the last read).
  id_ = node_->NextTxId(thread_);
  node_->RegisterInflight(this);
  registered_ = true;

  // The execute phase ran from Begin() to here; the id only exists now, so
  // its begin record is stamped retroactively (the postmortem merge sorts by
  // time, not append order).
  flight::Recorder* ring = node_->flight();
  flight::PhaseMetrics& pm = node_->phase_metrics();
  FlightLogTx(ring, begin_time_, flight::EventKind::kPhaseBegin, id_,
              static_cast<uint8_t>(flight::Phase::kExecute));
  FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
              static_cast<uint8_t>(flight::Phase::kExecute));
  pm.RecordPhase(flight::Phase::kExecute, node_->sim().Now() - begin_time_);

  const uint32_t trace_pid = static_cast<uint32_t>(node_->id());
  const uint32_t trace_tid = static_cast<uint32_t>(thread_);
  trace::SpanGuard commit_span(trace_pid, trace_tid, "tx", "commit", TxTraceId(id_));

  co_await node_->worker(thread_).Execute(cost.cpu_tx_commit_setup);

  if (writes_.empty()) {
    const SimTime validate_start = node_->sim().Now();
    FlightLogTx(ring, validate_start, flight::EventKind::kPhaseBegin, id_,
                static_cast<uint8_t>(flight::Phase::kValidate));
    Status v = co_await ValidatePhase();
    if (recovery_resolution_.has_value()) {
      // A reconfiguration changed a read region's primary mid-validation;
      // recovery decided the outcome (always abort for read-only: there is
      // no log record to attest to the validation).
      co_return FinishFromRecovery();
    }
    node_->UnregisterInflight(id_);
    registered_ = false;
    if (v.ok()) {
      pm.RecordPhase(flight::Phase::kValidate, node_->sim().Now() - validate_start);
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
                  static_cast<uint8_t>(flight::Phase::kValidate));
      committed_ = true;
      node_->mutable_stats().tx_committed++;
    } else {
      node_->mutable_stats().tx_aborted_validate++;
      pm.CountAbort(flight::AbortReason::kValidateConflict);
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                  static_cast<uint8_t>(flight::AbortReason::kValidateConflict));
    }
    co_return v;
  }

  auto participants = BuildParticipants();
  if (!participants.ok()) {
    node_->UnregisterInflight(id_);
    registered_ = false;
    ReleaseAllocs();
    node_->mutable_stats().tx_aborted_lock++;
    pm.CountAbort(flight::AbortReason::kNoPlacement);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                static_cast<uint8_t>(flight::AbortReason::kNoPlacement));
    co_return participants.status();
  }
  Participants& p = *participants;

  if (!ReserveLogs(p)) {
    node_->UnregisterInflight(id_);
    registered_ = false;
    ReleaseAllocs();
    node_->mutable_stats().tx_aborted_lock++;
    pm.CountAbort(flight::AbortReason::kLogReservation);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                static_cast<uint8_t>(flight::AbortReason::kLogReservation));
    co_return Status(StatusCode::kResourceExhausted, "log reservation failed");
  }

  // ---- Phase 1: LOCK ----
  {
    trace::SpanGuard lock_span(trace_pid, trace_tid, "tx", "lock", TxTraceId(id_));
    const SimTime lock_start = node_->sim().Now();
    FlightLogTx(ring, lock_start, flight::EventKind::kPhaseBegin, id_,
                static_cast<uint8_t>(flight::Phase::kLock));
    lock_replies_pending_ = static_cast<int>(p.primary_writes.size());
    lock_all_ok_ = true;
    for (const auto& [m, writes] : p.primary_writes) {
      TxLogRecord rec = MakeRecord(LogRecordType::kLock, m, &writes, p.written_regions);
      uint32_t reserved = static_cast<uint32_t>(
          rec.SerializedSize() + PiggybackSlack(kMaxPiggyback, rec.truncate_ids.size()));
      (void)node_->messenger().AppendLog(m, rec, reserved, thread_);
    }
    // NSDI'14-protocol ablation: LOCK records also go to backups (and are
    // simply stored); the optimized protocol eliminates them.
    if (opts.backup_lock_records) {
      for (const auto& [m, writes] : p.backup_writes) {
        TxLogRecord rec = MakeRecord(LogRecordType::kLock, m, &writes, p.written_regions);
        uint32_t len = static_cast<uint32_t>(rec.SerializedSize());
        if (node_->messenger().ReserveLog(m, len)) {
          (void)node_->messenger().AppendLog(m, rec, len, thread_);
        }
      }
    }

    bool woke = co_await AwaitPhase();
    if (recovery_resolution_.has_value()) {
      co_return FinishFromRecovery();
    }
    if (!woke) {
      node_->mutable_stats().tx_unresolved++;
      node_->UnregisterInflight(id_);
      registered_ = false;
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                  static_cast<uint8_t>(flight::AbortReason::kUnresolvedLock));
      co_return UnavailableStatus("commit unresolved: lock phase");
    }
    if (!lock_all_ok_) {
      AbortParticipants(p);
      ReleaseAllocs();
      node_->UnregisterInflight(id_);
      registered_ = false;
      node_->mutable_stats().tx_aborted_lock++;
      pm.CountAbort(flight::AbortReason::kLockConflict);
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                  static_cast<uint8_t>(flight::AbortReason::kLockConflict));
      // Adaptive backoff (no-op unless opts.adaptive_backoff): bump the
      // conflict EWMA for every written region and hold the abort result
      // back for a bounded, deterministic delay so the application-level
      // retry de-synchronizes from the coordinators it just collided with.
      for (RegionId r : p.written_regions) {
        node_->NoteLockOutcome(thread_, r, /*conflict=*/true);
      }
      SimDuration backoff = node_->LockBackoffDelay(thread_, id_, p.written_regions);
      if (backoff > 0) {
        node_->mutable_stats().tx_backoff_waits++;
        node_->mutable_stats().tx_backoff_ns += backoff;
        co_await SleepFor(node_->sim(), backoff);
      }
      co_return AbortedStatus("lock conflict");
    }
    for (RegionId r : p.written_regions) {
      node_->NoteLockOutcome(thread_, r, /*conflict=*/false);
    }
    pm.RecordPhase(flight::Phase::kLock, node_->sim().Now() - lock_start);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
                static_cast<uint8_t>(flight::Phase::kLock));
  }

  // ---- Phase 2: VALIDATE (one-sided reads; RPC above threshold t_r) ----
  {
    trace::SpanGuard validate_span(trace_pid, trace_tid, "tx", "validate", TxTraceId(id_));
    const SimTime validate_start = node_->sim().Now();
    FlightLogTx(ring, validate_start, flight::EventKind::kPhaseBegin, id_,
                static_cast<uint8_t>(flight::Phase::kValidate));
    Status v = co_await ValidatePhase();
    if (recovery_resolution_.has_value()) {
      co_return FinishFromRecovery();
    }
    if (!v.ok()) {
      AbortParticipants(p);
      ReleaseAllocs();
      node_->UnregisterInflight(id_);
      registered_ = false;
      node_->mutable_stats().tx_aborted_validate++;
      pm.CountAbort(flight::AbortReason::kValidateConflict);
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                  static_cast<uint8_t>(flight::AbortReason::kValidateConflict));
      co_return v;
    }
    pm.RecordPhase(flight::Phase::kValidate, node_->sim().Now() - validate_start);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
                static_cast<uint8_t>(flight::Phase::kValidate));
  }

  // ---- Phase 3: COMMIT-BACKUP (one-sided writes; wait for NIC acks) ----
  {
    trace::SpanGuard cb_span(trace_pid, trace_tid, "tx", "commit-backup", TxTraceId(id_));
    const SimTime cb_start = node_->sim().Now();
    FlightLogTx(ring, cb_start, flight::EventKind::kPhaseBegin, id_,
                static_cast<uint8_t>(flight::Phase::kCommitBackup));
    WaitGroup wg;
    auto all_ok = std::make_shared<bool>(true);
    for (const auto& [m, writes] : p.backup_writes) {
      TxLogRecord rec = MakeRecord(LogRecordType::kCommitBackup, m, &writes,
                                   p.written_regions);
      uint32_t reserved = static_cast<uint32_t>(
          rec.SerializedSize() + PiggybackSlack(kMaxPiggyback, rec.truncate_ids.size()));
      wg.Add();
      auto alive = alive_;
      node_->messenger()
          .AppendLog(m, rec, reserved, thread_)
          .OnReady([wg, all_ok, alive, this](NetResult& r) {
            if (!r.status.ok()) {
              *all_ok = false;
            }
            wg.Done();
            // Under the skip-backup-ack ablation nobody waits on this phase;
            // waking would spuriously rouse the COMMIT-PRIMARY await.
            if (*alive && wg.pending() == 0 && !node_->options().chaos_skip_backup_ack) {
              WakePhase();
            }
          });
    }
    // Chaos-only ablation: race ahead to COMMIT-PRIMARY without waiting for
    // the backup hardware acks. This is the protocol bug the chaos oracle
    // must catch (see NodeOptions::chaos_skip_backup_ack).
    if (wg.pending() > 0 && !node_->options().chaos_skip_backup_ack) {
      bool woke2 = co_await AwaitPhase();
      if (recovery_resolution_.has_value()) {
        co_return FinishFromRecovery();
      }
      if (!woke2) {
        node_->mutable_stats().tx_unresolved++;
        node_->UnregisterInflight(id_);
        registered_ = false;
        FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                    static_cast<uint8_t>(flight::AbortReason::kUnresolvedBackupAck));
        co_return UnavailableStatus("commit unresolved: backup acks");
      }
    }
    // Serializability across failures requires ALL backup acks before any
    // COMMIT-PRIMARY is written (section 4, correctness). A missing ack
    // means a failure: wait for recovery to decide the outcome.
    if (!node_->options().chaos_skip_backup_ack && (!*all_ok || marked_recovering_)) {
      bool resolved = co_await AwaitPhase();
      if (recovery_resolution_.has_value()) {
        co_return FinishFromRecovery();
      }
      (void)resolved;
      node_->mutable_stats().tx_unresolved++;
      node_->UnregisterInflight(id_);
      registered_ = false;
      FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                  static_cast<uint8_t>(flight::AbortReason::kUnresolvedBackupFailure));
      co_return UnavailableStatus("commit unresolved: backup failure");
    }
    pm.RecordPhase(flight::Phase::kCommitBackup, node_->sim().Now() - cb_start);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
                static_cast<uint8_t>(flight::Phase::kCommitBackup));
  }

  // ---- Phase 4: COMMIT-PRIMARY (report committed on the first ack) ----
  {
    trace::SpanGuard cp_span(trace_pid, trace_tid, "tx", "commit-primary", TxTraceId(id_));
    const SimTime cp_start = node_->sim().Now();
    FlightLogTx(ring, cp_start, flight::EventKind::kPhaseBegin, id_,
                static_cast<uint8_t>(flight::Phase::kCommitPrimary));
    struct CpState {
      int pending = 0;
      bool any_ok = false;
      Node* node = nullptr;
      TxId id;
      std::vector<MachineId> holders;
      // Truncate-slot reservations were taken per role (a machine can be
      // both a primary and a backup); releases must mirror that exactly.
      std::vector<MachineId> reserved_slots;
    };
    auto cp = std::make_shared<CpState>();
    cp->pending = static_cast<int>(p.primary_writes.size());
    cp->node = node_;
    cp->id = id_;
    cp->holders = p.all_holders;
    for (const auto& [m, writes] : p.primary_writes) {
      (void)writes;
      cp->reserved_slots.push_back(m);
    }
    for (const auto& [m, writes] : p.backup_writes) {
      (void)writes;
      cp->reserved_slots.push_back(m);
    }
    for (const auto& [m, writes] : p.primary_writes) {
      (void)writes;
      // COMMIT-PRIMARY carries only the transaction id (Table 1).
      TxLogRecord rec = MakeRecord(LogRecordType::kCommitPrimary, m, nullptr, {});
      uint32_t reserved = static_cast<uint32_t>(
          rec.SerializedSize() + PiggybackSlack(kMaxPiggyback, rec.truncate_ids.size()));
      auto alive = alive_;
      node_->messenger()
          .AppendLog(m, rec, reserved, thread_)
          .OnReady([cp, alive, this](NetResult& r) {
            cp->pending--;
            // Hardware acks are rejected once the transaction is recovering.
            bool recovering = *alive && marked_recovering_;
            if (r.status.ok() && !cp->any_ok && !recovering) {
              cp->any_ok = true;
              if (*alive) {
                WakePhase();  // first hardware ack: report committed
              }
            }
            if (cp->pending == 0 && cp->any_ok && !recovering) {
              // All primaries acked: the coordinator may lazily truncate.
              // The per-role TRUNCATE reservations are handed back; the
              // flush path re-reserves when it actually writes records.
              uint32_t small_len = SmallRecordReservation();
              for (MachineId h : cp->reserved_slots) {
                cp->node->messenger().ReleaseLogReservation(h, small_len);
              }
              cp->node->QueueTruncation(cp->id, cp->holders);
            }
          });
    }
    if (!cp->any_ok) {
      bool woke3 = co_await AwaitPhase();
      if (recovery_resolution_.has_value()) {
        co_return FinishFromRecovery();
      }
      if (!woke3 || !cp->any_ok) {
        node_->mutable_stats().tx_unresolved++;
        node_->UnregisterInflight(id_);
        registered_ = false;
        FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kAbort, id_,
                    static_cast<uint8_t>(flight::AbortReason::kUnresolvedPrimaryAck));
        co_return UnavailableStatus("commit unresolved: primary acks");
      }
    }
    pm.RecordPhase(flight::Phase::kCommitPrimary, node_->sim().Now() - cp_start);
    FlightLogTx(ring, node_->sim().Now(), flight::EventKind::kPhaseEnd, id_,
                static_cast<uint8_t>(flight::Phase::kCommitPrimary));
  }

  committed_ = true;
  node_->mutable_stats().tx_committed++;
  node_->UnregisterInflight(id_);
  registered_ = false;
  co_return OkStatus();
}

Status Transaction::FinishFromRecovery() {
  LogTxScope log_tx(id_.config, id_.machine, id_.thread, id_.local);
  bool committed = *recovery_resolution_;
  committed_ = committed;
  if (registered_) {
    node_->UnregisterInflight(id_);
    registered_ = false;
  }
  if (committed) {
    node_->mutable_stats().tx_committed++;
    node_->mutable_stats().tx_recovered_commit++;
    return OkStatus();
  }
  node_->mutable_stats().tx_recovered_abort++;
  node_->phase_metrics().CountAbort(flight::AbortReason::kRecoveryAbort);
  FlightLogTx(node_->flight(), node_->sim().Now(), flight::EventKind::kAbort, id_,
              static_cast<uint8_t>(flight::AbortReason::kRecoveryAbort));
  ReleaseAllocs();
  return AbortedStatus("aborted by recovery");
}

Task<Status> Transaction::ValidatePhase() {
  // Group read-only objects by primary.
  std::map<MachineId, std::vector<std::pair<GlobalAddr, uint64_t>>> by_primary;
  for (const auto& [addr, entry] : reads_) {
    if (writes_.count(addr) != 0) {
      continue;  // locking covers written objects
    }
    const RegionPlacement* placement = node_->config().Placement(addr.region);
    if (placement == nullptr) {
      co_return UnavailableStatus("read region lost");
    }
    by_primary[placement->primary].push_back({addr, entry.word});
  }
  if (by_primary.empty()) {
    co_return OkStatus();
  }

  validate_all_ok_ = true;
  validate_msgs_pending_ = 0;
  WaitGroup rdma_wg;
  auto rdma_ok = std::make_shared<bool>(true);

  for (auto& [m, entries] : by_primary) {
    if (static_cast<int>(entries.size()) <= node_->options().validate_rpc_threshold) {
      // One-sided RDMA reads of the header words: no CPU at the primary.
      for (auto& [addr, word] : entries) {
        if (m == node_->id()) {
          RegionReplica* rep = node_->replica(addr.region);
          if (rep == nullptr || rep->ReadHeader(addr.offset) != word) {
            *rdma_ok = false;
          }
          continue;
        }
        auto ref = co_await node_->ResolveRef(addr.region, thread_);
        if (!ref.ok()) {
          co_return ref.status();
        }
        rdma_wg.Add();
        uint64_t expected_word = word;
        auto alive = alive_;
        node_->fabric()
            .Read(node_->id(), m, ref->base + addr.offset, 8, &node_->worker(thread_))
            .OnReady([rdma_wg, rdma_ok, expected_word, alive, this](NetResult& r) {
              if (!r.status.ok() || r.data.size() != 8) {
                *rdma_ok = false;
              } else {
                uint64_t current;
                std::memcpy(&current, r.data.data(), 8);
                if (current != expected_word) {
                  *rdma_ok = false;
                }
              }
              rdma_wg.Done();
              if (*alive && rdma_wg.pending() == 0) {
                WakePhase();
              }
            });
      }
    } else {
      // Validation over RPC (the VALIDATE message) above t_r objects.
      BufWriter w;
      PutTxId(w, id_);
      w.PutU32(static_cast<uint32_t>(entries.size()));
      for (auto& [addr, word] : entries) {
        PutAddr(w, addr);
        w.PutU64(word);
      }
      validate_msgs_pending_++;
      node_->messenger().SendMessage(m, MsgType::kValidate, w.Take(), thread_);
    }
  }

  while (rdma_wg.pending() > 0 || validate_msgs_pending_ > 0) {
    bool woke = co_await AwaitPhase();
    if (recovery_resolution_.has_value()) {
      co_return OkStatus();  // outcome handled by the caller
    }
    if (!woke) {
      co_return UnavailableStatus("validation unresolved");
    }
  }
  if (!*rdma_ok || !validate_all_ok_) {
    co_return AbortedStatus("validation conflict");
  }
  co_return OkStatus();
}

void Transaction::AbortParticipants(const Participants& p) {
  LogTxScope log_tx(id_.config, id_.machine, id_.thread, id_.local);
  for (const auto& [m, writes] : p.primary_writes) {
    (void)writes;
    TxLogRecord rec = MakeRecord(LogRecordType::kAbort, m, nullptr, {});
    uint32_t reserved = static_cast<uint32_t>(
        rec.SerializedSize() + PiggybackSlack(kMaxPiggyback, rec.truncate_ids.size()));
    (void)node_->messenger().AppendLog(m, rec, reserved, thread_);
  }
  uint32_t small_len = SmallRecordReservation();
  // Backups never saw a record for this transaction; release their
  // COMMIT-BACKUP and TRUNCATE reservations.
  for (const auto& [m, writes] : p.backup_writes) {
    TxLogRecord probe;
    probe.tx = id_;
    probe.written_regions = p.written_regions;
    probe.writes = writes;
    probe.truncate_ids.resize(kMaxPiggyback);
    node_->messenger().ReleaseLogReservation(m, static_cast<uint32_t>(probe.SerializedSize()));
    node_->messenger().ReleaseLogReservation(m, small_len);
  }
  for (const auto& [m, writes] : p.primary_writes) {
    (void)writes;
    node_->messenger().ReleaseLogReservation(m, small_len);  // TRUNCATE slot
  }
  // The aborted transaction's LOCK/ABORT records still get truncated.
  std::vector<MachineId> primaries;
  primaries.reserve(p.primary_writes.size());
  for (const auto& [m, writes] : p.primary_writes) {
    (void)writes;
    primaries.push_back(m);
  }
  node_->QueueTruncation(id_, primaries);
}

void Transaction::ReleaseAllocs() {
  for (const GlobalAddr& addr : allocs_) {
    node_->ReleaseAllocSlot(addr, thread_);
  }
  allocs_.clear();
}

}  // namespace farm
