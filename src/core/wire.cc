#include "src/core/wire.h"

#include "src/common/logging.h"

namespace farm {

const char* VoteName(Vote v) {
  switch (v) {
    case Vote::kCommitPrimary:
      return "commit-primary";
    case Vote::kCommitBackup:
      return "commit-backup";
    case Vote::kLock:
      return "lock";
    case Vote::kAbort:
      return "abort";
    case Vote::kTruncated:
      return "truncated";
    case Vote::kUnknown:
      return "unknown";
  }
  return "?";
}

void PutTxId(BufWriter& w, const TxId& id) {
  w.PutU64(id.config);
  w.PutU32(id.machine);
  w.PutU16(id.thread);
  w.PutU64(id.local);
}

TxId GetTxId(BufReader& r) {
  TxId id;
  id.config = r.GetU64();
  id.machine = r.GetU32();
  id.thread = r.GetU16();
  id.local = r.GetU64();
  return id;
}

void PutAddr(BufWriter& w, const GlobalAddr& a) { w.PutU64(a.Packed()); }

GlobalAddr GetAddr(BufReader& r) { return GlobalAddr::FromPacked(r.GetU64()); }

std::vector<uint8_t> TxLogRecord::Serialize() const {
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  PutTxId(w, tx);
  w.PutU32(static_cast<uint32_t>(written_regions.size()));
  for (RegionId rid : written_regions) {
    w.PutU32(rid);
  }
  w.PutU32(static_cast<uint32_t>(writes.size()));
  for (const WireWrite& ww : writes) {
    PutAddr(w, ww.addr);
    w.PutU64(ww.expected_version);
    w.PutU8(static_cast<uint8_t>((ww.set_alloc ? 1 : 0) | (ww.clear_alloc ? 2 : 0) |
                                 (ww.expected_alloc ? 4 : 0)));
    w.PutBytes(ww.value.data(), ww.value.size());
  }
  w.PutU32(static_cast<uint32_t>(truncate_ids.size()));
  for (const TxId& id : truncate_ids) {
    PutTxId(w, id);
  }
  return w.Take();
}

TxLogRecord TxLogRecord::Parse(BufReader& r) {
  TxLogRecord rec;
  rec.type = static_cast<LogRecordType>(r.GetU8());
  rec.tx = GetTxId(r);
  uint32_t nregions = r.GetU32();
  rec.written_regions.reserve(nregions);
  for (uint32_t i = 0; i < nregions; i++) {
    rec.written_regions.push_back(r.GetU32());
  }
  uint32_t nwrites = r.GetU32();
  rec.writes.reserve(nwrites);
  for (uint32_t i = 0; i < nwrites; i++) {
    WireWrite ww;
    ww.addr = GetAddr(r);
    ww.expected_version = r.GetU64();
    uint8_t flags = r.GetU8();
    ww.set_alloc = (flags & 1) != 0;
    ww.clear_alloc = (flags & 2) != 0;
    ww.expected_alloc = (flags & 4) != 0;
    ww.value = r.GetBytes();
    rec.writes.push_back(std::move(ww));
  }
  uint32_t ntrunc = r.GetU32();
  rec.truncate_ids.reserve(ntrunc);
  for (uint32_t i = 0; i < ntrunc; i++) {
    rec.truncate_ids.push_back(GetTxId(r));
  }
  return rec;
}

size_t TxLogRecord::SerializedSize() const {
  size_t n = 1 + kTxIdWireBytes + 4 + written_regions.size() * 4 + 4 + 4 +
             truncate_ids.size() * kTxIdWireBytes;
  for (const WireWrite& ww : writes) {
    n += 8 + 8 + 1 + 4 + ww.value.size();
  }
#ifndef NDEBUG
  // Log-space reservations depend on this formula tracking Serialize()
  // exactly; a drift bug would silently over- or under-reserve.
  FARM_CHECK(n == Serialize().size());
#endif
  return n;
}

std::vector<uint8_t> EncodeBatchBody(const std::vector<std::vector<uint8_t>>& subs) {
  BufWriter w;
  w.PutU32(static_cast<uint32_t>(subs.size()));
  for (const std::vector<uint8_t>& sub : subs) {
    w.PutBytes(sub.data(), sub.size());
  }
  return w.Take();
}

std::vector<std::vector<uint8_t>> DecodeBatchBody(BufReader& r) {
  uint32_t count = r.GetU32();
  std::vector<std::vector<uint8_t>> subs;
  subs.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    subs.push_back(r.GetBytes());
  }
  return subs;
}

}  // namespace farm
