// Per-node communication endpoint: the transaction log and message queue
// rings to/from every peer (section 3).
//
// Sending a log record is a one-sided RDMA write acked by the receiver's
// NIC; the returned future IS the hardware ack. Record processing happens
// later on a receiver worker thread (the poll loop), which is why backups do
// no foreground work during commit. Messages use the same rings but are
// freed as soon as they are handled; log records persist until truncated.
#ifndef SRC_CORE_MSGR_H_
#define SRC_CORE_MSGR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/ringlog.h"
#include "src/core/wire.h"
#include "src/net/fabric.h"
#include "src/nvram/nvram.h"
#include "src/obs/metrics.h"

namespace farm {

namespace flight {
class Recorder;
}  // namespace flight

// Data-plane batching counters (one set per node, "node" label). Copying
// takes a point-in-time snapshot, like FabricStats.
struct MsgrStats {
  metrics::Counter batch_flushes;  // batches flushed to the wire
  metrics::Counter batch_records;  // log records carried by batches
  metrics::Counter batch_msgs;     // messages carried by batches
  metrics::Counter batch_bytes;    // payload bytes carried by batches
  metrics::Counter batch_rpcs;     // RPCs relayed over the message plane
  metrics::HistogramMetric batch_size;  // records + messages per flush

  // Rebinds to cells in `reg` ("msgr_batch_flushes", ...), labeled with the
  // owning node so per-node batching behavior shows up in registry dumps.
  void BindTo(metrics::Registry& reg, const std::string& node_label);
};

class Messenger {
 public:
  struct Options {
    uint32_t txlog_capacity = 1 << 20;
    uint32_t msgq_capacity = 1 << 19;
    int worker_threads = 4;  // inbound processing runs on threads [0, n)

    // ---- data-plane batching (off by default: with `batch` false no
    // batching state is touched and traces stay byte-identical) ----
    bool batch = false;
    // Flush quantum: sends to one destination enqueued within this window
    // coalesce into a single wire transfer.
    SimDuration batch_flush_delay = 1000;
    // Early-flush thresholds (records + messages, payload bytes).
    uint32_t batch_max_records = 16;
    uint32_t batch_max_bytes = 16 * 1024;
  };

  // seq identifies the stored record for TruncateLogRecord.
  using LogRecordHandler =
      std::function<void(MachineId from, uint64_t seq, const TxLogRecord& rec)>;
  using MessageHandler =
      std::function<void(MachineId from, MsgType type, std::vector<uint8_t> payload)>;

  Messenger(Fabric& fabric, Machine& machine, NvramStore& store, Options options);

  void SetHandlers(LogRecordHandler log_handler, MessageHandler msg_handler);

  // Creates the ring pair between two nodes (both directions). Self-rings
  // (a == b) give the local fast path when the coordinator is itself a
  // participant.
  static void Connect(Messenger& a, Messenger& b);
  // Tears down any existing ring pair between the two nodes (both
  // directions) and wires a fresh one. Used when a machine rejoins with
  // empty state: the old rings' NVRAM space is abandoned (never recycled),
  // which mirrors a replacement process registering new queue pairs.
  static void Reconnect(Messenger& a, Messenger& b);
  // Drops all rings (a cold process restart forgetting its queue pairs).
  // Pending batches are discarded with them: their acks never complete,
  // mirroring the fabric dropping completions of a dead initiator's ops
  // (coordinators recover via the commit-resolution timeout).
  void Reset() {
    batches_.clear();
    calls_.clear();
    inbound_.clear();
    outbound_.clear();
  }
  bool ConnectedTo(MachineId peer) const { return outbound_.count(peer) != 0; }

  MachineId id() const { return machine_.id(); }
  Machine& machine() { return machine_; }

  // Binds the batching counters into `reg` with a per-node label.
  void BindStats(metrics::Registry& reg, const std::string& node_label) {
    stats_.BindTo(reg, node_label);
  }
  const MsgrStats& stats() const { return stats_; }
  // Attaches the node's flight recorder; batch flushes then leave
  // batch-flush records (which double as injectable fault points).
  void SetFlightRecorder(flight::Recorder* rec) { flight_ = rec; }

  // ---- transaction log ----
  bool ReserveLog(MachineId dst, uint32_t payload_len);
  void ReleaseLogReservation(MachineId dst, uint32_t payload_len);
  // Consumes a reservation of `reserved_len` bytes (>= the record's
  // serialized size). Future completes on the hardware ack.
  Future<NetResult> AppendLog(MachineId dst, const TxLogRecord& rec, uint32_t reserved_len,
                              int thread_idx);
  // Marks a stored inbound record truncated (space becomes reusable).
  void TruncateLogRecord(MachineId from, uint64_t seq);

  // ---- messages ----
  void SendMessage(MachineId dst, MsgType type, std::vector<uint8_t> payload, int thread_idx);

  // RPC over the message plane. With batching off (or to self, or with no
  // ring pair to `dst`) this delegates verbatim to Fabric::Call, so default
  // traces are unchanged. With batching on, the request and response ride
  // the batched message rings (kRpcReq/kRpcResp) and coalesce with
  // same-destination log appends and messages -- a function-shipped
  // operation then costs ring writes instead of dedicated RPC messages.
  // `thread_idx` is the issuing worker thread (< 0: none). The timeout
  // resolves the future with StatusCode::kTimedOut, matching the fabric.
  Future<NetResult> Call(MachineId dst, uint16_t service, std::vector<uint8_t> request,
                         int thread_idx, SimDuration timeout = 4 * kMillisecond);

  // ---- recovery support ----
  // Synchronously processes everything already in the inbound rings
  // (section 5.3 step 2, "drain logs"). CPU cost is charged as one lump on
  // thread 0 by the caller's recovery logic.
  void DrainAllNow();
  // Iterates stored (surfaced, non-truncated) inbound log records.
  void ForEachStoredLog(
      const std::function<void(MachineId from, uint64_t seq, const TxLogRecord&)>& fn) const;
  // Looks up one stored record (nullptr if truncated/unknown).
  const TxLogRecord* GetStoredLog(MachineId from, uint64_t seq) const;

  // Power-failure restart: drops all volatile ring state and re-parses the
  // NVRAM rings from their persisted heads. Non-truncated records surface
  // again through the normal handlers (which are idempotent).
  void RebuildFromNvram();

  // Total log payload bytes appended (stats).
  uint64_t log_bytes_sent() const { return log_bytes_sent_; }
  // Debug: outbound tx-log space (free bytes, reserved bytes).
  std::pair<uint64_t, uint64_t> LogSpace(MachineId dst) const {
    auto it = outbound_.find(dst);
    if (it == outbound_.end()) {
      return {0, 0};
    }
    return {it->second.txlog->FreeBytes(), it->second.txlog->reserved()};
  }

 private:
  struct Inbound {
    std::unique_ptr<RingReceiver> txlog;
    std::unique_ptr<RingReceiver> msgq;
    // Feedback words in the *peer's* NVRAM where we post freed heads.
    uint64_t peer_txlog_feedback = 0;
    uint64_t peer_msgq_feedback = 0;
    uint64_t reported_txlog_freed = 0;
    uint64_t reported_msgq_freed = 0;
    bool txlog_poll_scheduled = false;
    bool msgq_poll_scheduled = false;
    std::map<uint64_t, TxLogRecord> stored;  // surfaced log records by seq
  };

  struct Outbound {
    std::unique_ptr<RingSender> txlog;
    std::unique_ptr<RingSender> msgq;
  };

  // Per-destination batch being accumulated for the current flush quantum.
  // Ring reservations are taken at enqueue time (so commit-time reservation
  // semantics are unchanged); the wire write happens at flush.
  struct PendingBatch {
    std::vector<std::vector<uint8_t>> msgs;  // framed [type][body] messages
    std::vector<uint32_t> msg_reservations;  // per-message msgq reservations
    uint64_t msg_bytes = 0;
    std::vector<RingSender::BatchEntry> logs;
    std::vector<Future<NetResult>> log_acks;  // completed from the one wire ack
    uint64_t log_bytes = 0;
    int flush_thread = -1;  // first enqueuer's thread; charged the flush CPU
    bool flush_scheduled = false;
    // Flush-identity token: a scheduled flush event only fires if the batch
    // it was scheduled for still exists (an early threshold flush, Reset, or
    // Reconnect replaces the batch and bumps the generation).
    uint64_t gen = 0;
  };

  PendingBatch& BatchFor(MachineId dst, int thread_idx);
  void ScheduleFlush(MachineId dst);
  void FlushBatch(MachineId dst, uint64_t gen);

  void SchedulePoll(MachineId from, bool is_log);
  void ProcessInbound(MachineId from, bool is_log);
  // Routes one inbound message: intercepts the RPC relay types
  // (kRpcReq/kRpcResp), forwards everything else to msg_handler_.
  void DispatchMessage(MachineId from, MsgType type, std::vector<uint8_t> body);
  void MaybeSendFeedback(MachineId from);
  int WorkerFor(MachineId from) const {
    return static_cast<int>(from % static_cast<MachineId>(options_.worker_threads));
  }

  Fabric& fabric_;
  Machine& machine_;
  NvramStore& store_;
  Options options_;
  LogRecordHandler log_handler_;
  MessageHandler msg_handler_;
  std::map<MachineId, Inbound> inbound_;
  std::map<MachineId, Outbound> outbound_;
  std::map<MachineId, PendingBatch> batches_;
  uint64_t batch_gen_ = 0;
  // In-flight message-plane RPCs by call id (batching on only). A ring
  // teardown (Reset/Reconnect) strands the entry; the timeout resolves it.
  std::map<uint64_t, Future<NetResult>> calls_;
  uint64_t next_call_id_ = 1;
  MsgrStats stats_;
  flight::Recorder* flight_ = nullptr;
  uint64_t log_bytes_sent_ = 0;
};

}  // namespace farm

#endif  // SRC_CORE_MSGR_H_
