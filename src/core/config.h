// FaRM configurations (section 3): <i, S, F, CM> plus region placements.
//
// A configuration is the unit of agreement in Vertical Paxos: the CM stores
// it in the coordination service with an atomic CAS, then pushes it to all
// members in NEW-CONFIG. Region placements carry LastPrimaryChange /
// LastReplicaChange, which transaction-state recovery uses to identify
// recovering transactions (section 5.3, step 3).
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/serde.h"
#include "src/core/types.h"

namespace farm {

// Placement of one region: primary + f backups.
struct RegionPlacement {
  MachineId primary = kInvalidMachine;
  std::vector<MachineId> backups;
  uint32_t size = 0;
  // Configuration ids of the last primary / any-replica change.
  ConfigId last_primary_change = 0;
  ConfigId last_replica_change = 0;
  // Locality constraint: co-locate with this region (section 3).
  RegionId colocate_with = kInvalidRegion;
  // App-managed fixed object stride (0 = slab-managed); see Node::CreateRegion.
  uint32_t object_stride = 0;

  std::vector<MachineId> Replicas() const {
    std::vector<MachineId> r;
    r.reserve(backups.size() + 1);
    r.push_back(primary);
    for (MachineId b : backups) {
      r.push_back(b);
    }
    return r;
  }

  bool Contains(MachineId m) const {
    if (primary == m) {
      return true;
    }
    for (MachineId b : backups) {
      if (b == m) {
        return true;
      }
    }
    return false;
  }
};

struct Configuration {
  ConfigId id = 0;
  std::vector<MachineId> machines;            // S, sorted
  std::map<MachineId, int> failure_domains;   // F
  MachineId cm = kInvalidMachine;
  std::map<RegionId, RegionPlacement> regions;
  RegionId next_region_id = 0;

  bool Contains(MachineId m) const {
    for (MachineId x : machines) {
      if (x == m) {
        return true;
      }
    }
    return false;
  }

  const RegionPlacement* Placement(RegionId r) const {
    auto it = regions.find(r);
    return it == regions.end() ? nullptr : &it->second;
  }

  std::vector<uint8_t> Serialize() const;
  static Configuration Parse(BufReader& r);
  static Configuration ParseBytes(const std::vector<uint8_t>& bytes);
};

}  // namespace farm

#endif  // SRC_CORE_CONFIG_H_
