// Configuration-manager duties: region allocation (section 3) and the
// reconfiguration protocol (section 5.2).
#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/node.h"
#include "src/obs/fault_hook.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

constexpr SimDuration kPrepareTimeout = 50 * kMillisecond;
// A non-CM machine that asked a backup CM to reconfigure retries itself
// after this long if nothing changed.
constexpr SimDuration kBackupCmTimeout = 20 * kMillisecond;

}  // namespace

// ---------------------------------------------------------------------------
// Region allocation
// ---------------------------------------------------------------------------

void Node::HandleRegionCreate(MachineId from, BufReader& r) {
  uint64_t correlation = r.GetU64();
  uint32_t size = r.GetU32();
  uint32_t stride = r.GetU32();
  RegionId colocate = r.GetU32();
  RunRegionCreate(from, correlation, size, stride, colocate);
}

StatusOr<std::vector<MachineId>> Node::PickReplicas(uint32_t size, RegionId colocate_with,
                                                    const std::vector<MachineId>& exclude) const {
  (void)size;
  int need = options_.replication_factor;
  // Locality constraint: co-locate with the target region's replicas
  // (section 3) when they are all still members.
  if (colocate_with != kInvalidRegion) {
    const RegionPlacement* target = config_.Placement(colocate_with);
    if (target != nullptr) {
      std::vector<MachineId> same = target->Replicas();
      bool usable = static_cast<int>(same.size()) == need;
      for (MachineId m : same) {
        if (!config_.Contains(m) ||
            std::find(exclude.begin(), exclude.end(), m) != exclude.end()) {
          usable = false;
        }
      }
      if (usable) {
        return same;
      }
    }
  }
  // Balance the number of region replicas per machine, subject to one
  // replica per failure domain. Primary load is balanced separately --
  // otherwise deterministic tie-breaking concentrates every primary (and
  // therefore all lock/validation work) on a few machines.
  std::map<MachineId, int> load;
  std::map<MachineId, int> primary_load;
  for (MachineId m : config_.machines) {
    load[m] = 0;
    primary_load[m] = 0;
  }
  for (const auto& [rid, p] : config_.regions) {
    (void)rid;
    for (MachineId m : p.Replicas()) {
      if (load.count(m) != 0) {
        load[m]++;
      }
    }
    if (primary_load.count(p.primary) != 0) {
      primary_load[p.primary]++;
    }
  }
  std::vector<MachineId> candidates;
  for (MachineId m : config_.machines) {
    if (std::find(exclude.begin(), exclude.end(), m) == exclude.end()) {
      candidates.push_back(m);
    }
  }
  auto domain_of = [&](MachineId m) {
    auto fit = config_.failure_domains.find(m);
    return fit == config_.failure_domains.end() ? static_cast<int>(m) : fit->second;
  };
  std::vector<MachineId> chosen;
  std::set<int> domains;
  // The primary: least primaries first, then least replicas.
  std::sort(candidates.begin(), candidates.end(), [&](MachineId a, MachineId b) {
    if (primary_load[a] != primary_load[b]) {
      return primary_load[a] < primary_load[b];
    }
    return load[a] != load[b] ? load[a] < load[b] : a < b;
  });
  chosen.push_back(candidates.front());
  domains.insert(domain_of(candidates.front()));
  // Backups: least replicas first.
  std::sort(candidates.begin(), candidates.end(), [&](MachineId a, MachineId b) {
    return load[a] != load[b] ? load[a] < load[b] : a < b;
  });
  for (MachineId m : candidates) {
    if (static_cast<int>(chosen.size()) == need) {
      return chosen;
    }
    if (domains.count(domain_of(m)) != 0 ||
        std::find(chosen.begin(), chosen.end(), m) != chosen.end()) {
      continue;
    }
    chosen.push_back(m);
    domains.insert(domain_of(m));
  }
  if (static_cast<int>(chosen.size()) == need) {
    return chosen;
  }
  return Status(StatusCode::kResourceExhausted,
                "not enough machines in distinct failure domains");
}

Detached Node::RunRegionCreate(MachineId from, uint64_t correlation, uint32_t size,
                               uint32_t object_stride, RegionId colocate_with) {
  if (!IsCm()) {
    Respond(from, correlation, Status(StatusCode::kFailedPrecondition, "not the CM"), {}, -1);
    co_return;
  }
  auto replicas = PickReplicas(size, colocate_with, {});
  if (!replicas.ok()) {
    Respond(from, correlation, replicas.status(), {}, -1);
    co_return;
  }
  RegionId rid = config_.next_region_id++;

  // Two-phase: prepare at all replicas, then commit (section 3).
  bool all_ok = true;
  for (MachineId m : *replicas) {
    BufWriter w;
    w.PutU32(rid);
    w.PutU32(size);
    w.PutU32(object_stride);
    auto ack = co_await Request(m, MsgType::kRegionPrepare, w.Take(), -1, kPrepareTimeout);
    if (!ack.ok()) {
      all_ok = false;
      break;
    }
  }
  if (!all_ok) {
    Respond(from, correlation, UnavailableStatus("region prepare failed"), {}, -1);
    co_return;
  }

  RegionPlacement p;
  p.primary = (*replicas)[0];
  p.backups.assign(replicas->begin() + 1, replicas->end());
  p.size = size;
  p.last_primary_change = config_.id;
  p.last_replica_change = config_.id;
  p.colocate_with = colocate_with;
  p.object_stride = object_stride;
  config_.regions[rid] = p;

  // Broadcast the new mapping to every member (mappings are fetched/cached
  // by machines; the CM is their source of truth).
  BufWriter b;
  b.PutU32(rid);
  b.PutU32(p.primary);
  b.PutU32(static_cast<uint32_t>(p.backups.size()));
  for (MachineId m : p.backups) {
    b.PutU32(m);
  }
  b.PutU32(p.size);
  b.PutU64(p.last_primary_change);
  b.PutU64(p.last_replica_change);
  b.PutU32(p.colocate_with);
  b.PutU32(p.object_stride);
  std::vector<uint8_t> msg = b.Take();
  for (MachineId m : config_.machines) {
    if (m != id()) {
      messenger_->SendMessage(m, MsgType::kRegionCreateReply, msg, -1);
    }
  }
  BufWriter reply;
  reply.PutU32(rid);
  Respond(from, correlation, OkStatus(), reply.Take(), -1);
}

// ---------------------------------------------------------------------------
// Rejoin (restart with empty state)
// ---------------------------------------------------------------------------

Detached Node::RunJoin(uint64_t restart_epoch) {
  // Petition until a committed configuration includes us again: read the
  // configuration znode to locate the current CM, ask it to admit us, and
  // back off. Adoption arrives as a normal NEW-CONFIG.
  while (machine_->alive() && restart_epoch == restart_epoch_ &&
         !config_.Contains(id())) {
    auto znode = co_await cluster_->zk().Read(id(), nullptr);
    if (!machine_->alive() || restart_epoch != restart_epoch_ ||
        config_.Contains(id())) {
      co_return;
    }
    if (znode.ok() && !znode->data.empty()) {
      Configuration current = Configuration::ParseBytes(znode->data);
      if (!current.Contains(id()) && current.cm != kInvalidMachine &&
          current.cm != id() && messenger_->ConnectedTo(current.cm)) {
        BufWriter w;
        w.PutU32(static_cast<uint32_t>(cluster_->FailureDomainOf(id())));
        messenger_->SendMessage(current.cm, MsgType::kJoinRequest, w.Take(), -1);
      }
    }
    co_await SleepFor(sim(), options_.join_retry_interval);
  }
}

Detached Node::RunEvictionMonitor(uint64_t generation) {
  if (options_.eviction_check_interval == 0) {
    co_return;
  }
  while (machine_->alive() && generation == eviction_monitor_generation_) {
    co_await SleepFor(sim(), options_.eviction_check_interval);
    if (!machine_->alive() || generation != eviction_monitor_generation_) {
      co_return;
    }
    // Only members police their own eviction; a cold-restarted machine's
    // join loop owns the not-yet-admitted phase.
    if (config_.id == 0 || !config_.Contains(id())) {
      continue;
    }
    auto znode = co_await cluster_->zk().Read(id(), nullptr);
    if (!machine_->alive() || generation != eviction_monitor_generation_) {
      co_return;
    }
    if (!znode.ok() || znode->data.empty()) {
      continue;  // e.g. partitioned from the coordination service
    }
    Configuration current = Configuration::ParseBytes(znode->data);
    if (current.id >= config_.id && !current.Contains(id())) {
      FARM_LOG(Warn) << "node " << id() << ": evicted from configuration "
                     << current.id << "; restarting empty to rejoin";
      // Restart as a fresh instance and petition to rejoin (the paper treats
      // evicted machines as failed; a replacement process takes their slot).
      cluster_->RestartMachineEmpty(id());
      co_return;  // superseded: ColdRestart + BeginJoin arm fresh loops
    }
  }
}

void Node::HandleJoinRequest(MachineId from, BufReader& r) {
  int domain = static_cast<int>(r.GetU32());
  if (!IsCm() || config_.Contains(from)) {
    return;  // not the CM (the joiner retries) or already a member
  }
  FARM_LOG(Info) << "node " << id() << ": join request from machine " << from;
  pending_joins_[from] = domain;
  StartReconfiguration({}, "join request");
}

// ---------------------------------------------------------------------------
// Failure suspicion
// ---------------------------------------------------------------------------

void Node::OnMachineSuspected(MachineId m) {
  if (!IsCm() || !config_.Contains(m)) {
    return;
  }
  StartReconfiguration({m}, "lease expired at CM");
}

void Node::OnCmSuspected() {
  if (reconfig_in_flight_ || !config_.Contains(id())) {
    return;
  }
  MachineId cm = config_.cm;
  // Backup CMs are the k successors of the CM under consistent hashing; one
  // of them should reconfigure, others ask and fall back (section 5.2).
  ConsistentHashRing ring;
  for (MachineId m : config_.machines) {
    if (m != cm) {
      ring.AddNode(m);
    }
  }
  auto successors = ring.Successors(cm, static_cast<size_t>(options_.backup_cms));
  bool am_backup_cm =
      std::find(successors.begin(), successors.end(), id()) != successors.end();
  if (am_backup_cm) {
    StartReconfiguration({cm}, "cm lease expired (backup cm)");
    return;
  }
  if (!successors.empty()) {
    BufWriter w;
    w.PutU32(cm);
    messenger_->SendMessage(successors[0], MsgType::kReconfigRequest, w.Take(), -1);
  }
  // If nothing changes, attempt the reconfiguration ourselves.
  ConfigId cfg_then = config_.id;
  sim().After(kBackupCmTimeout, [this, cfg_then, cm]() {
    if (machine_->alive() && config_.id == cfg_then && config_.cm == cm) {
      StartReconfiguration({cm}, "cm lease expired (fallback)");
    }
  });
}

void Node::StartReconfiguration(std::vector<MachineId> suspects, const char* reason) {
  if (reconfig_in_flight_ || !machine_->alive()) {
    return;
  }
  FARM_LOG(Info) << "node " << id() << " starts reconfiguration (" << reason << ")";
  cluster_->NoteMilestone("suspect");
  FARM_TRACE(Instant(static_cast<uint32_t>(id()), 0, "recovery", "suspect"));
  reconfig_in_flight_ = true;
  RunReconfiguration(std::move(suspects));
}

// ---------------------------------------------------------------------------
// Reconfiguration (the 7 steps of section 5.2)
// ---------------------------------------------------------------------------

void Node::RemapRegions(Configuration& cfg) const {
  for (auto it = cfg.regions.begin(); it != cfg.regions.end();) {
    RegionPlacement& p = it->second;
    std::vector<MachineId> survivors;
    for (MachineId m : p.Replicas()) {
      if (cfg.Contains(m)) {
        survivors.push_back(m);
      }
    }
    if (survivors.empty()) {
      cluster_->NoteRegionLost(it->first);
      it = cfg.regions.erase(it);
      continue;
    }
    bool changed = static_cast<int>(survivors.size()) != options_.replication_factor ||
                   survivors[0] != p.primary;
    if (!changed) {
      ++it;
      continue;
    }
    // Promote a surviving backup when the primary failed (fast recovery:
    // no bulk data movement before the region serves again).
    bool primary_failed = !cfg.Contains(p.primary);
    MachineId new_primary = primary_failed ? survivors[0] : p.primary;
    // Re-replicate to restore f+1, balancing load and respecting failure
    // domains and locality.
    std::map<MachineId, int> load;
    for (MachineId m : cfg.machines) {
      load[m] = 0;
    }
    for (const auto& [orid, op] : cfg.regions) {
      (void)orid;
      for (MachineId m : op.Replicas()) {
        if (load.count(m) != 0) {
          load[m]++;
        }
      }
    }
    std::set<int> used_domains;
    auto domain_of = [&](MachineId m) {
      auto fit = cfg.failure_domains.find(m);
      return fit == cfg.failure_domains.end() ? static_cast<int>(m) : fit->second;
    };
    for (MachineId m : survivors) {
      used_domains.insert(domain_of(m));
    }
    std::vector<MachineId> additions;
    // Locality: try the colocation target's machines first.
    std::vector<MachineId> preferred;
    if (p.colocate_with != kInvalidRegion) {
      const RegionPlacement* target = cfg.Placement(p.colocate_with);
      if (target != nullptr) {
        preferred = target->Replicas();
      }
    }
    std::vector<MachineId> candidates = preferred;
    {
      std::vector<MachineId> rest = cfg.machines;
      std::sort(rest.begin(), rest.end(), [&](MachineId a, MachineId b) {
        return load[a] != load[b] ? load[a] < load[b] : a < b;
      });
      candidates.insert(candidates.end(), rest.begin(), rest.end());
    }
    for (MachineId m : candidates) {
      if (static_cast<int>(survivors.size() + additions.size()) >=
          options_.replication_factor) {
        break;
      }
      if (!cfg.Contains(m)) {
        continue;
      }
      if (std::find(survivors.begin(), survivors.end(), m) != survivors.end() ||
          std::find(additions.begin(), additions.end(), m) != additions.end()) {
        continue;
      }
      if (used_domains.count(domain_of(m)) != 0) {
        continue;
      }
      additions.push_back(m);
      used_domains.insert(domain_of(m));
    }
    p.primary = new_primary;
    p.backups.clear();
    for (MachineId m : survivors) {
      if (m != new_primary) {
        p.backups.push_back(m);
      }
    }
    for (MachineId m : additions) {
      p.backups.push_back(m);
    }
    if (primary_failed) {
      p.last_primary_change = cfg.id;
    }
    p.last_replica_change = cfg.id;
    ++it;
  }
}

Detached Node::RunReconfiguration(std::vector<MachineId> suspects) {
  Configuration old = config_;
  const uint32_t trace_pid = static_cast<uint32_t>(id());
  trace::SpanGuard reconfig_span(
      trace_pid, 0, "recovery", "reconfiguration",
      FARM_TRACE_ACTIVE() ? "cfg" + std::to_string(old.id + 1) : std::string());
  SimTime step_start = FARM_TRACE_ACTIVE() ? sim().Now() : 0;
  // Step 2: probe all machines (one-sided read of their control block);
  // any machine whose read fails is also suspected.
  std::vector<MachineId> responders;
  responders.push_back(id());
  {
    WaitGroup wg;
    auto alive = std::make_shared<std::vector<MachineId>>();
    for (MachineId m : old.machines) {
      if (m == id() ||
          std::find(suspects.begin(), suspects.end(), m) != suspects.end()) {
        continue;
      }
      wg.Add();
      uint64_t addr = cluster_->node(m).control_block_addr();
      fabric().Read(id(), m, addr, 8, nullptr).OnReady([wg, alive, m](NetResult& r) {
        if (r.status.ok()) {
          alive->push_back(m);
        }
        wg.Done();
      });
    }
    co_await wg.Wait();
    for (MachineId m : *alive) {
      responders.push_back(m);
    }
  }
  cluster_->NoteMilestone("probe");
  FARM_TRACE(CompleteSpan(trace_pid, 0, "recovery", "probe", step_start));
  step_start = FARM_TRACE_ACTIVE() ? sim().Now() : 0;
  // The new CM must obtain responses for a majority of the probes, which
  // guarantees it is not in a minority partition.
  if (responders.size() <= old.machines.size() / 2) {
    FARM_LOG(Warn) << "node " << id() << ": reconfiguration aborted (no probe majority)";
    reconfig_in_flight_ = false;
    co_return;
  }
  fault::HitPoint(static_cast<uint32_t>(id()), "reconfig-probe", old.id);

  // Step 3: atomically advance the configuration in the coordination
  // service (Vertical Paxos; znode CAS keyed by the old configuration id).
  Configuration next = old;
  next.id = old.id + 1;
  std::sort(responders.begin(), responders.end());
  next.machines = responders;
  next.cm = id();
  {
    std::map<MachineId, int> fd;
    for (MachineId m : next.machines) {
      auto it = old.failure_domains.find(m);
      fd[m] = it == old.failure_domains.end() ? static_cast<int>(m) : it->second;
    }
    next.failure_domains = std::move(fd);
  }
  // Admit machines waiting to rejoin after a restart with empty state. They
  // enter with no regions; RemapRegions below may immediately assign them as
  // replacement backups for under-replicated regions.
  std::map<MachineId, int> joins = pending_joins_;
  for (const auto& [j, domain] : joins) {
    if (std::find(next.machines.begin(), next.machines.end(), j) != next.machines.end() ||
        std::find(suspects.begin(), suspects.end(), j) != suspects.end()) {
      continue;
    }
    next.machines.push_back(j);
    next.failure_domains[j] = domain;
  }
  std::sort(next.machines.begin(), next.machines.end());
  // Step 4: remap regions mapped to failed machines.
  RemapRegions(next);

  auto cas = co_await cluster_->zk().CompareAndSwap(id(), old.id, next.Serialize(), nullptr);
  if (cas.ok()) {
    fault::HitPoint(static_cast<uint32_t>(id()), "reconfig-commit", next.id);
    cluster_->NoteMilestone("zookeeper");
    FARM_TRACE(CompleteSpan(trace_pid, 0, "recovery", "new-config-cas", step_start));
  }
  if (!cas.ok()) {
    FARM_LOG(Info) << "node " << id() << ": lost configuration CAS for id " << next.id;
    // Losing the CAS means someone committed a newer configuration. If its
    // CM died before distributing NEW-CONFIG, nobody else will ever tell us:
    // every machine still at the old id would lose this same CAS and wedge.
    // Read the committed configuration and adopt it; the lease machinery
    // then suspects its (possibly dead) CM and reconfigures on top of it.
    auto current = co_await cluster_->zk().Read(id(), nullptr);
    if (current.ok() && !current->data.empty()) {
      Configuration committed = Configuration::ParseBytes(current->data);
      // Only adopt configurations we belong to; if the committed one
      // evicted us, the eviction monitor (which compares against our old
      // membership) handles the restart-and-rejoin path.
      if (committed.id > config_.id && committed.Contains(id())) {
        OnNewConfig(committed.cm, std::move(committed));
      }
    }
    reconfig_in_flight_ = false;
    co_return;
  }
  // Joins folded into the committed configuration are no longer pending.
  for (const auto& [j, domain] : joins) {
    (void)domain;
    pending_joins_.erase(j);
  }

  // Step 5: NEW-CONFIG to all members.
  step_start = FARM_TRACE_ACTIVE() ? sim().Now() : 0;
  pending_reconfig_ = PendingReconfig{};
  pending_reconfig_->cfg = next;
  for (MachineId m : next.machines) {
    if (m != id()) {
      pending_reconfig_->ack_pending.insert(m);
    }
  }
  Future<Unit> acks_done;
  pending_reconfig_->acks_done = acks_done;
  std::vector<uint8_t> cfg_bytes = next.Serialize();
  bool cm_changed = old.cm != id();
  for (MachineId m : next.machines) {
    if (m == id()) {
      continue;
    }
    BufWriter w;
    w.Append(cfg_bytes.data(), cfg_bytes.size());
    messenger_->SendMessage(m, MsgType::kNewConfig, w.Take(), -1);
  }
  // Step 6 for ourselves.
  OnNewConfig(id(), next);

  if (!pending_reconfig_->ack_pending.empty()) {
    // A member can die between NEW-CONFIG and its ack; waiting forever would
    // wedge the cluster. On timeout, suspect the unresponsive members and
    // run another reconfiguration on top of the (already CAS'd) new one.
    auto acked = co_await AwaitWithTimeout(sim(), acks_done,
                                           4 * options_.lease.duration);
    if (!acked.has_value()) {
      std::vector<MachineId> unresponsive(pending_reconfig_->ack_pending.begin(),
                                          pending_reconfig_->ack_pending.end());
      pending_reconfig_.reset();
      reconfig_in_flight_ = false;
      StartReconfiguration(std::move(unresponsive), "members missed NEW-CONFIG ack");
      co_return;
    }
  }

  // Step 7: wait out any leases the *old* CM may have granted to machines
  // no longer in the configuration, then commit.
  if (cm_changed) {
    co_await SleepFor(sim(), options_.lease.duration);
  }
  cluster_->NoteMilestone("config-commit");
  FARM_TRACE(CompleteSpan(trace_pid, 0, "recovery", "new-config-commit", step_start));
  for (MachineId m : next.machines) {
    if (m != id()) {
      BufWriter w;
      w.PutU64(next.id);
      messenger_->SendMessage(m, MsgType::kNewConfigCommit, w.Take(), -1);
    }
  }
  OnNewConfigCommit(next.id);
  pending_reconfig_.reset();
  reconfig_in_flight_ = false;
}

void Node::OnNewConfigAck(MachineId from, ConfigId cid) {
  if (!pending_reconfig_.has_value() || pending_reconfig_->cfg.id != cid) {
    return;
  }
  pending_reconfig_->ack_pending.erase(from);
  if (pending_reconfig_->ack_pending.empty() && !pending_reconfig_->acks_done.Ready()) {
    pending_reconfig_->acks_done.Set(Unit{});
  }
}

// ---------------------------------------------------------------------------
// REGIONS-ACTIVE collection (CM side; section 5.4)
// ---------------------------------------------------------------------------

void Node::HandleRegionsActive(MachineId from, BufReader& r) {
  ConfigId cid = r.GetU64();
  if (!IsCm() || cid != config_.id) {
    return;
  }
  regions_active_pending_.erase(from);
  if (regions_active_pending_.empty()) {
    BroadcastAllRegionsActive();
  }
}

void Node::BroadcastAllRegionsActive() {
  cluster_->NoteMilestone("all-active");
  BufWriter w;
  w.PutU64(config_.id);
  for (MachineId m : config_.machines) {
    if (m != id()) {
      messenger_->SendMessage(m, MsgType::kAllRegionsActive, w.Take(), -1);
      w = BufWriter();
      w.PutU64(config_.id);
    }
  }
  OnAllRegionsActive();
}

}  // namespace farm
