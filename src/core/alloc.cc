#include "src/core/alloc.h"

#include <bit>

namespace farm {

RegionAllocator::RegionAllocator(RegionReplica* region, uint32_t block_size)
    : region_(region), block_size_(block_size), num_blocks_(region->size() / block_size) {
  FARM_CHECK(num_blocks_ > 0) << "region smaller than one block";
  block_payload_.assign(num_blocks_, 0);
  int classes = 0;
  for (uint32_t c = kMinPayload; c <= kMaxPayload; c *= 2) {
    classes++;
  }
  free_.resize(static_cast<size_t>(classes));
}

uint32_t RegionAllocator::ClassPayload(uint32_t payload_size) {
  uint32_t c = kMinPayload;
  while (c < payload_size) {
    c *= 2;
  }
  return c;
}

int RegionAllocator::ClassIndex(uint32_t class_payload) const {
  return std::countr_zero(class_payload) - std::countr_zero(kMinPayload);
}

bool RegionAllocator::FormatBlock(uint32_t class_payload) {
  if (next_unformatted_ >= num_blocks_) {
    return false;
  }
  uint32_t block = next_unformatted_++;
  block_payload_[block] = class_payload;
  pending_headers_.push_back(BlockHeader{block, class_payload});
  uint32_t slot_bytes = SlotBytes(class_payload);
  uint32_t base = block * block_size_;
  int ci = ClassIndex(class_payload);
  for (uint32_t off = 0; off + slot_bytes <= block_size_; off += slot_bytes) {
    free_[static_cast<size_t>(ci)].push_back(GlobalAddr{region_->id(), base + off});
  }
  return true;
}

StatusOr<RegionAllocator::Slot> RegionAllocator::Reserve(uint32_t payload_size) {
  if (payload_size > kMaxPayload) {
    return Status(StatusCode::kInvalidArgument, "object too large for slab allocator");
  }
  uint32_t cls = ClassPayload(payload_size);
  auto& list = free_[static_cast<size_t>(ClassIndex(cls))];
  if (list.empty()) {
    if (recovering_) {
      return Status(StatusCode::kResourceExhausted, "free lists recovering");
    }
    if (!FormatBlock(cls)) {
      return Status(StatusCode::kResourceExhausted, "region full");
    }
  }
  Slot s;
  s.addr = list.back();
  list.pop_back();
  s.header_word = region_->ReadHeader(s.addr.offset);
  FARM_CHECK(!VersionWord::IsAllocated(s.header_word))
      << "free-list slot " << s.addr.ToString() << " already allocated";
  return s;
}

void RegionAllocator::Release(GlobalAddr addr) {
  uint32_t cls = block_payload_[addr.offset / block_size_];
  FARM_CHECK(cls != 0);
  free_[static_cast<size_t>(ClassIndex(cls))].push_back(addr);
}

void RegionAllocator::OnFreeCommitted(GlobalAddr addr) {
  if (recovering_) {
    queued_frees_.push_back(addr);
    return;
  }
  Release(addr);
}

std::vector<RegionAllocator::BlockHeader> RegionAllocator::TakePendingBlockHeaders() {
  return std::exchange(pending_headers_, {});
}

void RegionAllocator::InstallBlockHeader(const BlockHeader& h) {
  FARM_CHECK(h.block_index < num_blocks_);
  block_payload_[h.block_index] = h.slot_payload;
  if (h.block_index >= next_unformatted_) {
    next_unformatted_ = h.block_index + 1;
  }
}

uint32_t RegionAllocator::PayloadSizeAt(uint32_t offset) const {
  uint32_t block = offset / block_size_;
  return block < num_blocks_ ? block_payload_[block] : 0;
}

void RegionAllocator::StartFreeListRecovery() {
  for (auto& list : free_) {
    list.clear();
  }
  recovering_ = true;
  scan_block_ = 0;
  scan_slot_ = 0;
}

int RegionAllocator::RecoveryScanStep(int max_objects) {
  if (!recovering_) {
    return 0;
  }
  int scanned = 0;
  while (scanned < max_objects) {
    if (scan_block_ >= num_blocks_) {
      // Scan complete: apply queued frees and resume normal operation.
      recovering_ = false;
      while (!queued_frees_.empty()) {
        Release(queued_frees_.front());
        queued_frees_.pop_front();
      }
      return scanned;
    }
    uint32_t cls = block_payload_[scan_block_];
    if (cls == 0) {
      scan_block_++;
      scan_slot_ = 0;
      continue;
    }
    uint32_t slot_bytes = SlotBytes(cls);
    uint32_t offset = scan_block_ * block_size_ + scan_slot_ * slot_bytes;
    if (offset + slot_bytes > (scan_block_ + 1) * block_size_) {
      scan_block_++;
      scan_slot_ = 0;
      continue;
    }
    uint64_t header = region_->ReadHeader(offset);
    if (!VersionWord::IsAllocated(header) && !VersionWord::IsLocked(header)) {
      free_[static_cast<size_t>(ClassIndex(cls))].push_back(
          GlobalAddr{region_->id(), offset});
    }
    scan_slot_++;
    scanned++;
  }
  return scanned;
}

size_t RegionAllocator::FreeSlots() const {
  size_t n = 0;
  for (const auto& list : free_) {
    n += list.size();
  }
  return n;
}

}  // namespace farm
