// Wire formats: log record types (Table 1) and message types (Table 2).
//
// Log records travel inside ring-buffer transaction logs written with
// one-sided RDMA; messages travel in ring-buffer message queues. Both are
// flat byte sequences produced with BufWriter.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/common/serde.h"
#include "src/core/types.h"

namespace farm {

// Table 1.
enum class LogRecordType : uint8_t {
  kLock = 1,
  kCommitBackup = 2,
  kCommitPrimary = 3,
  kAbort = 4,
  kTruncate = 5,
};

// Table 2, plus configuration-management and allocation messages that the
// paper describes in prose (sections 3, 5.2, 5.4, 5.5).
enum class MsgType : uint8_t {
  // Transaction protocol.
  kLockReply = 1,
  kValidate = 2,
  kValidateReply = 3,
  // Transaction state recovery (section 5.3).
  kNeedRecovery = 10,
  kFetchTxState = 11,
  kSendTxState = 12,
  kReplicateTxState = 13,
  kReplicateTxStateAck = 14,
  kRecoveryVote = 15,
  kRequestVote = 16,
  kCommitRecovery = 17,
  kAbortRecovery = 18,
  kTruncateRecovery = 19,
  kRecoveryDecisionAck = 20,
  // Reconfiguration (section 5.2).
  kNewConfig = 30,
  kNewConfigAck = 31,
  kNewConfigCommit = 32,
  kRegionsActive = 33,
  kAllRegionsActive = 34,
  kReconfigRequest = 35,  // non-CM asks a backup CM to reconfigure
  kJoinRequest = 36,      // restarted machine asks the CM to re-admit it
  // Region allocation (section 3) and slab allocation (section 5.5).
  kRegionPrepare = 40,
  kRegionPrepareAck = 41,
  kRegionCommit = 42,
  kRegionCreate = 43,     // app -> CM: allocate a new region
  kRegionCreateReply = 44,
  kAllocRequest = 45,
  kAllocReply = 46,
  kAllocRelease = 47,
  kBlockHeader = 48,      // primary -> backups: replicate slab block header
  kRefRequest = 49,       // fetch a region's RDMA reference from its primary
  // Generic correlated reply envelope for request/response messages.
  kReply = 60,
  // Lease handshake over the message queues (the RPC lease variant).
  kLeaseMsg = 70,
  // Data-plane batching envelope: count + length-prefixed sub-messages, each
  // a complete framed message ([u8 type][body]). The receiver unpacks and
  // dispatches the sub-messages in order.
  kBatch = 80,
  // RPC relayed over the batched message plane (Messenger::Call): request is
  // [u16 service][u64 call_id][u32 len|payload], response is
  // [u64 call_id][u8 code][u32 len|payload] with code 0 = ok.
  kRpcReq = 81,
  kRpcResp = 82,
};

// Recovery vote values (section 5.3, step 6).
enum class Vote : uint8_t {
  kCommitPrimary = 1,
  kCommitBackup = 2,
  kLock = 3,
  kAbort = 4,
  kTruncated = 5,
  kUnknown = 6,
};

const char* VoteName(Vote v);

// One buffered write carried by a LOCK / COMMIT-BACKUP record.
struct WireWrite {
  GlobalAddr addr;
  uint64_t expected_version = 0;  // version observed at read time
  bool expected_alloc = false;    // alloc bit observed at read time
  bool set_alloc = false;         // allocation: sets the alloc bit
  bool clear_alloc = false;       // free: clears the alloc bit
  std::vector<uint8_t> value;     // new object payload (empty for free)

  // The full header word this write expects to CAS-lock at the primary.
  uint64_t ExpectedWord() const {
    return (expected_version & ((1ULL << 62) - 1)) | (expected_alloc ? (1ULL << 62) : 0);
  }
  // The alloc bit after this write commits.
  bool AllocAfter() const { return set_alloc ? true : (clear_alloc ? false : expected_alloc); }
};

// The payload shared by LOCK and COMMIT-BACKUP records (and the tx-state
// recovery messages that carry lock-record contents).
struct TxLogRecord {
  LogRecordType type = LogRecordType::kLock;
  TxId tx;
  // IDs of all regions with objects written by the transaction.
  std::vector<RegionId> written_regions;
  // Writes for objects the destination is primary/backup for.
  std::vector<WireWrite> writes;
  // Piggybacked truncation: transactions whose log records the destination
  // may discard (Table 1's "low bound + IDs to truncate").
  std::vector<TxId> truncate_ids;

  std::vector<uint8_t> Serialize() const;
  static TxLogRecord Parse(BufReader& r);

  // Serialized size (used for log-space reservations before commit).
  size_t SerializedSize() const;
};

void PutTxId(BufWriter& w, const TxId& id);
TxId GetTxId(BufReader& r);
void PutAddr(BufWriter& w, const GlobalAddr& a);
GlobalAddr GetAddr(BufReader& r);

// Serialized size of a TxId (see PutTxId: u64 + u32 + u16 + u64).
constexpr uint32_t kTxIdWireBytes = 22;

// Bytes to reserve for truncation ids that may still be piggybacked onto a
// record that currently carries `used` of `max_slots` ids. Saturating: a
// record already carrying more than max_slots ids needs no extra slack.
constexpr size_t PiggybackSlack(size_t max_slots, size_t used) {
  return used >= max_slots ? 0 : (max_slots - used) * kTxIdWireBytes;
}

// Body of a MsgType::kBatch envelope: u32 count, then each sub-message as a
// length-prefixed byte string. Each sub-message is itself a complete framed
// message ([u8 type][body]).
std::vector<uint8_t> EncodeBatchBody(const std::vector<std::vector<uint8_t>>& subs);
std::vector<std::vector<uint8_t>> DecodeBatchBody(BufReader& r);

}  // namespace farm

#endif  // SRC_CORE_WIRE_H_
