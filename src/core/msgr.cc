#include "src/core/msgr.h"

#include <cstring>

#include "src/obs/flight_recorder.h"

namespace farm {

void MsgrStats::BindTo(metrics::Registry& reg, const std::string& node_label) {
  metrics::Labels labels = {{"node", node_label}};
  batch_flushes = reg.GetCounter("msgr_batch_flushes", labels);
  batch_records = reg.GetCounter("msgr_batch_records", labels);
  batch_msgs = reg.GetCounter("msgr_batch_msgs", labels);
  batch_bytes = reg.GetCounter("msgr_batch_bytes", labels);
  batch_rpcs = reg.GetCounter("msgr_batch_rpcs", labels);
  batch_size = reg.GetHistogram("msgr_batch_size", labels);
}

Messenger::Messenger(Fabric& fabric, Machine& machine, NvramStore& store, Options options)
    : fabric_(fabric), machine_(machine), store_(store), options_(options) {
  FARM_CHECK(options_.worker_threads >= 1 &&
             options_.worker_threads <= machine_.NumThreads());
}

void Messenger::SetHandlers(LogRecordHandler log_handler, MessageHandler msg_handler) {
  log_handler_ = std::move(log_handler);
  msg_handler_ = std::move(msg_handler);
}

void Messenger::Connect(Messenger& a, Messenger& b) {
  auto wire = [](Messenger& rx, Messenger& tx) {
    // rx hosts the inbound rings for tx; tx gets senders pointing at them.
    FARM_CHECK(rx.inbound_.count(tx.id()) == 0) << "already connected";
    Inbound in;
    in.txlog = std::make_unique<RingReceiver>(&rx.store_, rx.options_.txlog_capacity);
    in.msgq = std::make_unique<RingReceiver>(&rx.store_, rx.options_.msgq_capacity);
    // Feedback words live in the sender's NVRAM.
    uint64_t fb_log = tx.store_.Allocate(8);
    uint64_t fb_msg = tx.store_.Allocate(8);
    in.peer_txlog_feedback = fb_log;
    in.peer_msgq_feedback = fb_msg;

    bool local = &rx == &tx;
    MachineId rx_id = rx.id();
    Messenger* rxp = &rx;
    Outbound out;
    MachineId tx_id = tx.id();
    out.txlog = std::make_unique<RingSender>(
        &tx.fabric_, tx_id, rx_id, in.txlog->data_base(), rx.options_.txlog_capacity, fb_log,
        &tx.store_, local ? in.txlog.get() : nullptr,
        [rxp, tx_id]() { rxp->SchedulePoll(tx_id, /*is_log=*/true); });
    out.msgq = std::make_unique<RingSender>(
        &tx.fabric_, tx_id, rx_id, in.msgq->data_base(), rx.options_.msgq_capacity, fb_msg,
        &tx.store_, local ? in.msgq.get() : nullptr,
        [rxp, tx_id]() { rxp->SchedulePoll(tx_id, /*is_log=*/false); });

    rx.inbound_[tx_id] = std::move(in);
    tx.outbound_[rx_id] = std::move(out);
  };
  wire(a, b);
  if (&a != &b) {
    wire(b, a);
  }
}

void Messenger::Reconnect(Messenger& a, Messenger& b) {
  // Batches pending toward the torn-down rings are discarded with them;
  // their reservations die with the replaced senders and their acks never
  // complete (same shape as in-flight fabric ops of a dead machine).
  a.batches_.erase(b.id());
  b.batches_.erase(a.id());
  a.inbound_.erase(b.id());
  a.outbound_.erase(b.id());
  b.inbound_.erase(a.id());
  b.outbound_.erase(a.id());
  Connect(a, b);
}

bool Messenger::ReserveLog(MachineId dst, uint32_t payload_len) {
  auto it = outbound_.find(dst);
  FARM_CHECK(it != outbound_.end()) << "no ring to machine " << dst;
  return it->second.txlog->Reserve(payload_len);
}

void Messenger::ReleaseLogReservation(MachineId dst, uint32_t payload_len) {
  outbound_.at(dst).txlog->ReleaseReservation(payload_len);
}

Future<NetResult> Messenger::AppendLog(MachineId dst, const TxLogRecord& rec,
                                       uint32_t reserved_len, int thread_idx) {
  std::vector<uint8_t> payload = rec.Serialize();
  log_bytes_sent_ += payload.size();
  if (options_.batch && dst != id()) {
    PendingBatch& b = BatchFor(dst, thread_idx);
    b.log_bytes += payload.size();
    b.logs.push_back(RingSender::BatchEntry{std::move(payload), reserved_len});
    Future<NetResult> ack;
    b.log_acks.push_back(ack);
    ScheduleFlush(dst);
    return ack;
  }
  HwThread* thread = thread_idx >= 0 ? &machine_.thread(thread_idx) : nullptr;
  return outbound_.at(dst).txlog->Append(std::move(payload), reserved_len, thread);
}

void Messenger::TruncateLogRecord(MachineId from, uint64_t seq) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  it->second.stored.erase(seq);
  it->second.txlog->MarkFreeable(seq);
  MaybeSendFeedback(from);
}

void Messenger::SendMessage(MachineId dst, MsgType type, std::vector<uint8_t> payload,
                            int thread_idx) {
  auto it = outbound_.find(dst);
  FARM_CHECK(it != outbound_.end()) << "no ring to machine " << dst;
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.Append(payload.data(), payload.size());
  std::vector<uint8_t> framed = w.Take();
  uint32_t len = static_cast<uint32_t>(framed.size());
  // Messages are short-lived; if the queue is momentarily full the sender
  // spins on the reservation (receivers free messages as they process).
  FARM_CHECK(it->second.msgq->Reserve(len)) << "message queue to " << dst << " overflow";
  HwThread* thread = nullptr;
  if (thread_idx >= 0) {
    thread = &machine_.thread(thread_idx);
  } else {
    // Replies sent from handler context: charge the send cost to the worker
    // that routes traffic for this peer (the handler's thread).
    machine_.thread(WorkerFor(dst)).InjectBusy(fabric_.cost().cpu_rpc_issue / 2);
  }
  if (options_.batch && dst != id()) {
    // Marshalling was charged above; the wire issue cost is paid at flush.
    PendingBatch& b = BatchFor(dst, thread_idx);
    b.msg_bytes += framed.size();
    b.msgs.push_back(std::move(framed));
    b.msg_reservations.push_back(len);
    ScheduleFlush(dst);
    return;
  }
  (void)it->second.msgq->Append(std::move(framed), len, thread);
}

Future<NetResult> Messenger::Call(MachineId dst, uint16_t service,
                                  std::vector<uint8_t> request, int thread_idx,
                                  SimDuration timeout) {
  if (!options_.batch || dst == id() || !ConnectedTo(dst)) {
    HwThread* thread = thread_idx >= 0 ? &machine_.thread(thread_idx) : nullptr;
    return fabric_.Call(id(), dst, service, std::move(request), thread, timeout);
  }
  uint64_t call_id = next_call_id_++;
  BufWriter w;
  w.PutU16(service);
  w.PutU64(call_id);
  w.PutBytes(request.data(), request.size());
  Future<NetResult> fut;
  calls_[call_id] = fut;
  stats_.batch_rpcs++;
  SendMessage(dst, MsgType::kRpcReq, w.Take(), thread_idx);
  Simulator& sim = fabric_.sim();
  // Guarded like the flush event: if this machine dies first, the timeout is
  // dropped along with the stranded call entry (cleared by Reset).
  sim.AtGuarded(sim.Now() + timeout, machine_.guard_word(), machine_.live_guard(),
                [this, call_id]() {
                  auto it = calls_.find(call_id);
                  if (it == calls_.end()) {
                    return;  // reply already arrived
                  }
                  Future<NetResult> f = it->second;
                  calls_.erase(it);
                  f.Set(NetResult{Status(StatusCode::kTimedOut, "rpc timeout"), {}});
                });
  return fut;
}

Messenger::PendingBatch& Messenger::BatchFor(MachineId dst, int thread_idx) {
  auto it = batches_.find(dst);
  if (it == batches_.end()) {
    it = batches_.emplace(dst, PendingBatch{}).first;
    it->second.gen = ++batch_gen_;
  }
  PendingBatch& b = it->second;
  if (b.flush_thread < 0 && thread_idx >= 0) {
    b.flush_thread = thread_idx;
  }
  return b;
}

void Messenger::ScheduleFlush(MachineId dst) {
  PendingBatch& b = batches_.at(dst);
  if (b.logs.size() + b.msgs.size() >= options_.batch_max_records ||
      b.log_bytes + b.msg_bytes >= options_.batch_max_bytes) {
    FlushBatch(dst, b.gen);  // early flush; a scheduled event finds gen gone
    return;
  }
  if (b.flush_scheduled) {
    return;
  }
  b.flush_scheduled = true;
  uint64_t gen = b.gen;
  Simulator& sim = fabric_.sim();
  // Guarded like HwThread::Run: a kill before the quantum elapses drops the
  // flush (the batch's bytes never reached the wire -- that is the point of
  // the batched chaos coverage).
  sim.AtGuarded(sim.Now() + options_.batch_flush_delay, machine_.guard_word(),
                machine_.live_guard(), [this, dst, gen]() { FlushBatch(dst, gen); });
}

void Messenger::FlushBatch(MachineId dst, uint64_t gen) {
  auto it = batches_.find(dst);
  if (it == batches_.end() || it->second.gen != gen) {
    return;  // already flushed early, or discarded by Reset/Reconnect
  }
  PendingBatch b = std::move(it->second);
  batches_.erase(it);
  auto out_it = outbound_.find(dst);
  if (out_it == outbound_.end()) {
    return;  // rings torn down with the batch still pending
  }
  Outbound& out = out_it->second;

  size_t nlogs = b.logs.size();
  size_t nmsgs = b.msgs.size();
  uint64_t payload_bytes = b.log_bytes + b.msg_bytes;
  stats_.batch_flushes++;
  stats_.batch_records += nlogs;
  stats_.batch_msgs += nmsgs;
  stats_.batch_bytes += payload_bytes;
  stats_.batch_size.Record(nlogs + nmsgs);
  if (flight_ != nullptr) {
    flight::Record r;
    r.time_ns = fabric_.sim().Now();
    r.kind = static_cast<uint8_t>(flight::EventKind::kBatchFlush);
    uint64_t n = nlogs + nmsgs;
    r.arg = static_cast<uint8_t>(n > 255 ? 255 : n);
    r.detail = dst;
    flight_->Append(r);
  }

  // Consecutive log frames coalesce into contiguous ring segments.
  std::vector<WriteSeg> segs;
  if (nlogs > 0) {
    segs = out.txlog->PrepareBatch(std::move(b.logs));
  }
  if (nmsgs > 0) {
    // Reservation accounting mirrors SendMessage: release the per-message
    // reservations, then reserve the one frame actually appended. For a
    // single message that is the original frame; for several it is the
    // kBatch envelope (whose doubled reservation the released ones cover
    // for all but tiny batches -- the queue absorbs those like any other
    // transient reservation spike).
    for (uint32_t r : b.msg_reservations) {
      out.msgq->ReleaseReservation(r);
    }
    std::vector<uint8_t> frame;
    if (nmsgs == 1) {
      frame = std::move(b.msgs[0]);
    } else {
      BufWriter w;
      w.PutU8(static_cast<uint8_t>(MsgType::kBatch));
      std::vector<uint8_t> body = EncodeBatchBody(b.msgs);
      w.Append(body.data(), body.size());
      frame = w.Take();
    }
    uint32_t env_len = static_cast<uint32_t>(frame.size());
    FARM_CHECK(out.msgq->Reserve(env_len)) << "message queue to " << dst << " overflow";
    std::vector<RingSender::BatchEntry> env;
    env.push_back(RingSender::BatchEntry{std::move(frame), env_len});
    std::vector<WriteSeg> msegs = out.msgq->PrepareBatch(std::move(env));
    segs.insert(segs.end(), std::make_move_iterator(msegs.begin()),
                std::make_move_iterator(msegs.end()));
  }
  FARM_CHECK(!segs.empty());

  // One doorbell for everything queued to this destination, across both
  // rings; delivery pokes each ring that contributed.
  std::function<void()> on_delivered;
  if (nlogs > 0 && nmsgs > 0) {
    on_delivered = [log_poke = out.txlog->poke(), msg_poke = out.msgq->poke()]() {
      log_poke();
      msg_poke();
    };
  } else if (nlogs > 0) {
    on_delivered = out.txlog->poke();
  } else {
    on_delivered = out.msgq->poke();
  }
  HwThread* thread = b.flush_thread >= 0 ? &machine_.thread(b.flush_thread)
                                         : &machine_.thread(WorkerFor(dst));
  Future<NetResult> wire =
      fabric_.WriteBatch(id(), dst, std::move(segs), thread, std::move(on_delivered));
  if (!b.log_acks.empty()) {
    // The single hardware ack completes every record's future.
    wire.OnReady([acks = std::move(b.log_acks)](NetResult& r) {
      for (const Future<NetResult>& ack : acks) {
        ack.Set(NetResult{r.status, {}});
      }
    });
  }
}

void Messenger::SchedulePoll(MachineId from, bool is_log) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  bool& flag = is_log ? in.txlog_poll_scheduled : in.msgq_poll_scheduled;
  if (flag) {
    return;
  }
  flag = true;
  // The poll loop runs on a worker thread chosen by sender id; the cost of
  // noticing + dispatching records is charged per record in ProcessInbound.
  machine_.thread(WorkerFor(from)).Run(0, [this, from, is_log]() {
    ProcessInbound(from, is_log);
  });
}

void Messenger::ProcessInbound(MachineId from, bool is_log) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  HwThread& worker = machine_.thread(WorkerFor(from));
  CostModel& cost = fabric_.cost();
  if (is_log) {
    in.txlog_poll_scheduled = false;
    in.txlog->Drain([&](uint64_t seq, std::vector<uint8_t> payload) {
      worker.InjectBusy(cost.cpu_log_poll + cost.CpuBytes(payload.size()));
      BufReader r(payload);
      TxLogRecord rec = TxLogRecord::Parse(r);
      in.stored[seq] = rec;
      if (log_handler_) {
        log_handler_(from, seq, in.stored[seq]);
      }
    });
  } else {
    in.msgq_poll_scheduled = false;
    in.msgq->Drain([&](uint64_t seq, std::vector<uint8_t> payload) {
      worker.InjectBusy(cost.cpu_log_poll + cost.CpuBytes(payload.size()));
      BufReader r(payload);
      MsgType type = static_cast<MsgType>(r.GetU8());
      if (type == MsgType::kBatch) {
        // Coalesced envelope: unpack and dispatch each sub-message in send
        // order. The envelope's poll charge above covers the first; each
        // additional sub-message pays its own dispatch cost.
        std::vector<std::vector<uint8_t>> subs = DecodeBatchBody(r);
        in.msgq->MarkFreeable(seq);
        bool first = true;
        for (std::vector<uint8_t>& sub : subs) {
          if (!first) {
            worker.InjectBusy(cost.cpu_log_poll);
          }
          first = false;
          BufReader sr(sub);
          MsgType sub_type = static_cast<MsgType>(sr.GetU8());
          std::vector<uint8_t> body(sub.begin() + 1, sub.end());
          DispatchMessage(from, sub_type, std::move(body));
        }
        return;
      }
      std::vector<uint8_t> body(payload.begin() + 1, payload.end());
      in.msgq->MarkFreeable(seq);
      DispatchMessage(from, type, std::move(body));
    });
    MaybeSendFeedback(from);
  }
}

void Messenger::DispatchMessage(MachineId from, MsgType type, std::vector<uint8_t> body) {
  if (type == MsgType::kRpcReq) {
    BufReader r(body);
    uint16_t service = r.GetU16();
    uint64_t call_id = r.GetU64();
    std::vector<uint8_t> request = r.GetBytes();
    auto reply = [this, from, call_id](std::vector<uint8_t> resp) {
      if (!ConnectedTo(from)) {
        return;  // rings torn down while the handler ran; the caller times out
      }
      BufWriter w;
      w.PutU64(call_id);
      w.PutU8(0);
      w.PutBytes(resp.data(), resp.size());
      SendMessage(from, MsgType::kRpcResp, w.Take(), -1);
    };
    if (!fabric_.InvokeRpcService(id(), service, from, request, std::move(reply)) &&
        ConnectedTo(from)) {
      // No registered service: error reply so the caller fails fast instead
      // of burning its timeout (parity with the fabric's kNotFound).
      BufWriter w;
      w.PutU64(call_id);
      w.PutU8(1);
      w.PutU32(0);
      SendMessage(from, MsgType::kRpcResp, w.Take(), -1);
    }
    return;
  }
  if (type == MsgType::kRpcResp) {
    BufReader r(body);
    uint64_t call_id = r.GetU64();
    uint8_t code = r.GetU8();
    std::vector<uint8_t> resp = r.GetBytes();
    auto it = calls_.find(call_id);
    if (it == calls_.end()) {
      return;  // already timed out; drop the late reply
    }
    Future<NetResult> fut = it->second;
    calls_.erase(it);
    fut.Set(NetResult{code == 0 ? OkStatus() : NotFoundStatus("no such rpc service"),
                      std::move(resp)});
    return;
  }
  if (msg_handler_) {
    msg_handler_(from, type, std::move(body));
  }
}

void Messenger::MaybeSendFeedback(MachineId from) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  auto post = [&](RingReceiver& rx, uint64_t& reported, uint64_t peer_addr, uint32_t cap) {
    if (rx.bytes_freed_total() - reported < cap / 8) {
      return;
    }
    reported = rx.bytes_freed_total();
    uint64_t head = rx.head();
    std::vector<uint8_t> bytes(8);
    std::memcpy(bytes.data(), &head, 8);
    if (from == id()) {
      std::memcpy(store_.Data(peer_addr, 8), bytes.data(), 8);
    } else {
      (void)fabric_.Write(id(), from, peer_addr, std::move(bytes), nullptr);
    }
  };
  post(*in.txlog, in.reported_txlog_freed, in.peer_txlog_feedback, options_.txlog_capacity);
  post(*in.msgq, in.reported_msgq_freed, in.peer_msgq_feedback, options_.msgq_capacity);
}

void Messenger::RebuildFromNvram() {
  for (auto& [from, in] : inbound_) {
    (void)from;
    in.stored.clear();
    in.txlog_poll_scheduled = false;
    in.msgq_poll_scheduled = false;
    in.txlog->RebuildFromNvram();
    in.msgq->RebuildFromNvram();
  }
}

void Messenger::DrainAllNow() {
  for (auto& [from, in] : inbound_) {
    (void)in;
    ProcessInbound(from, /*is_log=*/true);
    ProcessInbound(from, /*is_log=*/false);
  }
}

const TxLogRecord* Messenger::GetStoredLog(MachineId from, uint64_t seq) const {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return nullptr;
  }
  auto rit = it->second.stored.find(seq);
  return rit == it->second.stored.end() ? nullptr : &rit->second;
}

void Messenger::ForEachStoredLog(
    const std::function<void(MachineId from, uint64_t seq, const TxLogRecord&)>& fn) const {
  for (const auto& [from, in] : inbound_) {
    for (const auto& [seq, rec] : in.stored) {
      fn(from, seq, rec);
    }
  }
}

}  // namespace farm
