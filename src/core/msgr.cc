#include "src/core/msgr.h"

#include <cstring>

namespace farm {

Messenger::Messenger(Fabric& fabric, Machine& machine, NvramStore& store, Options options)
    : fabric_(fabric), machine_(machine), store_(store), options_(options) {
  FARM_CHECK(options_.worker_threads >= 1 &&
             options_.worker_threads <= machine_.NumThreads());
}

void Messenger::SetHandlers(LogRecordHandler log_handler, MessageHandler msg_handler) {
  log_handler_ = std::move(log_handler);
  msg_handler_ = std::move(msg_handler);
}

void Messenger::Connect(Messenger& a, Messenger& b) {
  auto wire = [](Messenger& rx, Messenger& tx) {
    // rx hosts the inbound rings for tx; tx gets senders pointing at them.
    FARM_CHECK(rx.inbound_.count(tx.id()) == 0) << "already connected";
    Inbound in;
    in.txlog = std::make_unique<RingReceiver>(&rx.store_, rx.options_.txlog_capacity);
    in.msgq = std::make_unique<RingReceiver>(&rx.store_, rx.options_.msgq_capacity);
    // Feedback words live in the sender's NVRAM.
    uint64_t fb_log = tx.store_.Allocate(8);
    uint64_t fb_msg = tx.store_.Allocate(8);
    in.peer_txlog_feedback = fb_log;
    in.peer_msgq_feedback = fb_msg;

    bool local = &rx == &tx;
    MachineId rx_id = rx.id();
    Messenger* rxp = &rx;
    Outbound out;
    MachineId tx_id = tx.id();
    out.txlog = std::make_unique<RingSender>(
        &tx.fabric_, tx_id, rx_id, in.txlog->data_base(), rx.options_.txlog_capacity, fb_log,
        &tx.store_, local ? in.txlog.get() : nullptr,
        [rxp, tx_id]() { rxp->SchedulePoll(tx_id, /*is_log=*/true); });
    out.msgq = std::make_unique<RingSender>(
        &tx.fabric_, tx_id, rx_id, in.msgq->data_base(), rx.options_.msgq_capacity, fb_msg,
        &tx.store_, local ? in.msgq.get() : nullptr,
        [rxp, tx_id]() { rxp->SchedulePoll(tx_id, /*is_log=*/false); });

    rx.inbound_[tx_id] = std::move(in);
    tx.outbound_[rx_id] = std::move(out);
  };
  wire(a, b);
  if (&a != &b) {
    wire(b, a);
  }
}

void Messenger::Reconnect(Messenger& a, Messenger& b) {
  a.inbound_.erase(b.id());
  a.outbound_.erase(b.id());
  b.inbound_.erase(a.id());
  b.outbound_.erase(a.id());
  Connect(a, b);
}

bool Messenger::ReserveLog(MachineId dst, uint32_t payload_len) {
  auto it = outbound_.find(dst);
  FARM_CHECK(it != outbound_.end()) << "no ring to machine " << dst;
  return it->second.txlog->Reserve(payload_len);
}

void Messenger::ReleaseLogReservation(MachineId dst, uint32_t payload_len) {
  outbound_.at(dst).txlog->ReleaseReservation(payload_len);
}

Future<NetResult> Messenger::AppendLog(MachineId dst, const TxLogRecord& rec,
                                       uint32_t reserved_len, int thread_idx) {
  std::vector<uint8_t> payload = rec.Serialize();
  log_bytes_sent_ += payload.size();
  HwThread* thread = thread_idx >= 0 ? &machine_.thread(thread_idx) : nullptr;
  return outbound_.at(dst).txlog->Append(std::move(payload), reserved_len, thread);
}

void Messenger::TruncateLogRecord(MachineId from, uint64_t seq) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  it->second.stored.erase(seq);
  it->second.txlog->MarkFreeable(seq);
  MaybeSendFeedback(from);
}

void Messenger::SendMessage(MachineId dst, MsgType type, std::vector<uint8_t> payload,
                            int thread_idx) {
  auto it = outbound_.find(dst);
  FARM_CHECK(it != outbound_.end()) << "no ring to machine " << dst;
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.Append(payload.data(), payload.size());
  std::vector<uint8_t> framed = w.Take();
  uint32_t len = static_cast<uint32_t>(framed.size());
  // Messages are short-lived; if the queue is momentarily full the sender
  // spins on the reservation (receivers free messages as they process).
  FARM_CHECK(it->second.msgq->Reserve(len)) << "message queue to " << dst << " overflow";
  HwThread* thread = nullptr;
  if (thread_idx >= 0) {
    thread = &machine_.thread(thread_idx);
  } else {
    // Replies sent from handler context: charge the send cost to the worker
    // that routes traffic for this peer (the handler's thread).
    machine_.thread(WorkerFor(dst)).InjectBusy(fabric_.cost().cpu_rpc_issue / 2);
  }
  (void)it->second.msgq->Append(std::move(framed), len, thread);
}

void Messenger::SchedulePoll(MachineId from, bool is_log) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  bool& flag = is_log ? in.txlog_poll_scheduled : in.msgq_poll_scheduled;
  if (flag) {
    return;
  }
  flag = true;
  // The poll loop runs on a worker thread chosen by sender id; the cost of
  // noticing + dispatching records is charged per record in ProcessInbound.
  machine_.thread(WorkerFor(from)).Run(0, [this, from, is_log]() {
    ProcessInbound(from, is_log);
  });
}

void Messenger::ProcessInbound(MachineId from, bool is_log) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  HwThread& worker = machine_.thread(WorkerFor(from));
  CostModel& cost = fabric_.cost();
  if (is_log) {
    in.txlog_poll_scheduled = false;
    in.txlog->Drain([&](uint64_t seq, std::vector<uint8_t> payload) {
      worker.InjectBusy(cost.cpu_log_poll + cost.CpuBytes(payload.size()));
      BufReader r(payload);
      TxLogRecord rec = TxLogRecord::Parse(r);
      in.stored[seq] = rec;
      if (log_handler_) {
        log_handler_(from, seq, in.stored[seq]);
      }
    });
  } else {
    in.msgq_poll_scheduled = false;
    in.msgq->Drain([&](uint64_t seq, std::vector<uint8_t> payload) {
      worker.InjectBusy(cost.cpu_log_poll + cost.CpuBytes(payload.size()));
      BufReader r(payload);
      MsgType type = static_cast<MsgType>(r.GetU8());
      std::vector<uint8_t> body(payload.begin() + 1, payload.end());
      in.msgq->MarkFreeable(seq);
      if (msg_handler_) {
        msg_handler_(from, type, std::move(body));
      }
    });
    MaybeSendFeedback(from);
  }
}

void Messenger::MaybeSendFeedback(MachineId from) {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return;
  }
  Inbound& in = it->second;
  auto post = [&](RingReceiver& rx, uint64_t& reported, uint64_t peer_addr, uint32_t cap) {
    if (rx.bytes_freed_total() - reported < cap / 8) {
      return;
    }
    reported = rx.bytes_freed_total();
    uint64_t head = rx.head();
    std::vector<uint8_t> bytes(8);
    std::memcpy(bytes.data(), &head, 8);
    if (from == id()) {
      std::memcpy(store_.Data(peer_addr, 8), bytes.data(), 8);
    } else {
      (void)fabric_.Write(id(), from, peer_addr, std::move(bytes), nullptr);
    }
  };
  post(*in.txlog, in.reported_txlog_freed, in.peer_txlog_feedback, options_.txlog_capacity);
  post(*in.msgq, in.reported_msgq_freed, in.peer_msgq_feedback, options_.msgq_capacity);
}

void Messenger::RebuildFromNvram() {
  for (auto& [from, in] : inbound_) {
    (void)from;
    in.stored.clear();
    in.txlog_poll_scheduled = false;
    in.msgq_poll_scheduled = false;
    in.txlog->RebuildFromNvram();
    in.msgq->RebuildFromNvram();
  }
}

void Messenger::DrainAllNow() {
  for (auto& [from, in] : inbound_) {
    (void)in;
    ProcessInbound(from, /*is_log=*/true);
    ProcessInbound(from, /*is_log=*/false);
  }
}

const TxLogRecord* Messenger::GetStoredLog(MachineId from, uint64_t seq) const {
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    return nullptr;
  }
  auto rit = it->second.stored.find(seq);
  return rit == it->second.stored.end() ? nullptr : &rit->second;
}

void Messenger::ForEachStoredLog(
    const std::function<void(MachineId from, uint64_t seq, const TxLogRecord&)>& fn) const {
  for (const auto& [from, in] : inbound_) {
    for (const auto& [seq, rec] : in.stored) {
      fn(from, seq, rec);
    }
  }
}

}  // namespace farm
