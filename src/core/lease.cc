#include "src/core/lease.h"

#include "src/core/cluster.h"
#include "src/core/node.h"
#include "src/obs/fault_hook.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

constexpr uint8_t kLeaseMagic = 0x1e;

}  // namespace

LeaseManager::LeaseManager(Node* node, LeaseOptions options)
    : node_(node), options_(options) {}

void LeaseManager::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  OnNewConfig();
  ScheduleNoise();
}

void LeaseManager::OnNewConfig() {
  epoch_++;
  expiry_.clear();
  SimTime grace = node_->sim().Now() + options_.duration;
  const Configuration& cfg = node_->config();
  if (cfg.cm == node_->id()) {
    for (MachineId m : cfg.machines) {
      if (m != node_->id()) {
        expiry_[m] = grace;
      }
    }
  } else {
    expiry_[cfg.cm] = grace;
  }
  ScheduleRenewTimer();
  ScheduleExpiryTimer();
}

int LeaseManager::ProcessingThread() const {
  switch (options_.impl) {
    case LeaseImpl::kRpc:
    case LeaseImpl::kUdShared:
      return 0;  // a busy foreground worker
    case LeaseImpl::kUdDedicated:
    case LeaseImpl::kUdDedicatedHighPri:
      return node_->machine().NumThreads() - 1;  // the dedicated lease thread
  }
  return 0;
}

SimTime LeaseManager::Quantize(SimTime t) const {
  // The system timer limits when timer-driven work can be scheduled
  // (0.5 ms resolution in the paper's setup).
  SimDuration res = options_.timer_resolution;
  if (res == 0) {
    return t;
  }
  return (t + res - 1) / res * res;
}

void LeaseManager::Send(MachineId dst, uint8_t step) {
  if (!node_->fabric().IsAlive(node_->id())) {
    return;
  }
  fault::HitPoint(static_cast<uint32_t>(node_->id()), "lease-send",
                  static_cast<uint64_t>(dst));
  std::vector<uint8_t> payload = {kLeaseMagic, step};
  if (options_.impl == LeaseImpl::kRpc) {
    // Lease messages share the data-plane message queues: they wait behind
    // queued records at both NICs and busy worker threads.
    if (node_->messenger().ConnectedTo(dst)) {
      node_->messenger().SendMessage(dst, MsgType::kLeaseMsg, std::move(payload), -1);
    }
  } else {
    // Unreliable datagrams on a dedicated queue pair (one extra QP total).
    node_->fabric().SendDatagram(node_->id(), dst, std::move(payload),
                                 /*bypass_nic_queue=*/true);
  }
}

void LeaseManager::OnDatagram(MachineId from, std::vector<uint8_t> payload) {
  if (payload.size() != 2 || payload[0] != kLeaseMagic) {
    return;
  }
  uint8_t step = payload[1];
  switch (options_.impl) {
    case LeaseImpl::kUdDedicatedHighPri: {
      // Interrupt-driven at the highest user-space priority: preempts
      // whatever occupies the CPU, at the cost of interrupt latency.
      node_->sim().After(options_.interrupt_latency + options_.process_cost,
                         [this, from, step]() { Process(from, step); });
      break;
    }
    case LeaseImpl::kUdDedicated:
    case LeaseImpl::kUdShared: {
      node_->machine()
          .thread(ProcessingThread())
          .Run(options_.process_cost, [this, from, step]() { Process(from, step); });
      break;
    }
    case LeaseImpl::kRpc:
      // RPC leases do not arrive as datagrams.
      break;
  }
}

void LeaseManager::OnRingMessage(MachineId from, std::vector<uint8_t> payload) {
  // Reached via the normal message path (worker CPU already charged).
  if (payload.size() == 2 && payload[0] == kLeaseMagic) {
    Process(from, payload[1]);
  }
}

void LeaseManager::Process(MachineId from, uint8_t step) {
  const Configuration& cfg = node_->config();
  SimTime renewed = node_->sim().Now() + options_.duration;
  switch (step) {
    case kStepRequest:
      // At the CM: grant + request back (3-way handshake, message 2).
      if (cfg.cm == node_->id()) {
        expiry_[from] = renewed;
        Send(from, kStepGrantRequest);
      }
      break;
    case kStepGrantRequest:
      // At a member: our lease was granted; grant the CM its lease.
      if (from == cfg.cm) {
        expiry_[from] = renewed;
        Send(from, kStepGrant);
      }
      break;
    case kStepGrant:
      if (cfg.cm == node_->id()) {
        expiry_[from] = renewed;
      }
      break;
    default:
      break;
  }
}

void LeaseManager::ScheduleRenewTimer() {
  uint64_t epoch = epoch_;
  SimTime next = Quantize(node_->sim().Now() + options_.duration / 5);
  if (next <= node_->sim().Now()) {
    next = node_->sim().Now() + options_.duration / 5;
  }
  node_->sim().At(next, [this, epoch]() {
    if (epoch != epoch_ || !node_->machine().alive()) {
      return;
    }
    const Configuration& cfg = node_->config();
    if (cfg.cm != node_->id() && cfg.Contains(node_->id())) {
      Send(cfg.cm, kStepRequest);
    }
    ScheduleRenewTimer();
  });
}

void LeaseManager::ScheduleExpiryTimer() {
  uint64_t epoch = epoch_;
  SimDuration res = options_.timer_resolution > 0 ? options_.timer_resolution
                                                  : kMillisecond / 2;
  node_->sim().After(res, [this, epoch]() {
    if (epoch != epoch_ || !node_->machine().alive()) {
      return;
    }
    CheckExpiries();
    ScheduleExpiryTimer();
  });
}

void LeaseManager::CheckExpiries() {
  SimTime now = node_->sim().Now();
  const Configuration& cfg = node_->config();
  for (auto& [m, expiry] : expiry_) {
    if (now <= expiry) {
      continue;
    }
    expiry_events_++;
    expiry = now + options_.duration;  // re-arm so one failure counts once per period
    FARM_TRACE(Instant(static_cast<uint32_t>(node_->id()),
                       static_cast<uint32_t>(node_->machine().NumThreads() - 1), "recovery",
                       "lease-expired"));
    if (!options_.trigger_recovery) {
      continue;
    }
    if (cfg.cm == node_->id()) {
      node_->OnMachineSuspected(m);
    } else if (m == cfg.cm) {
      node_->OnCmSuspected();
    }
  }
}

void LeaseManager::ForceExpiry(MachineId peer) {
  auto it = expiry_.find(peer);
  if (it == expiry_.end()) {
    return;
  }
  it->second = 0;
  CheckExpiries();
}

void LeaseManager::SetPreemptionNoise(double events_per_sec, SimDuration burst) {
  noise_rate_ = events_per_sec;
  noise_burst_ = burst;
  ScheduleNoise();
}

void LeaseManager::ScheduleNoise() {
  if (noise_rate_ <= 0) {
    return;
  }
  double mean_ns = 1e9 / noise_rate_;
  SimDuration wait = static_cast<SimDuration>(noise_rng_.Exponential(mean_ns)) + 1;
  node_->sim().After(wait, [this]() {
    if (!node_->machine().alive()) {
      return;
    }
    // Background OS work preempts the lease thread unless the lease manager
    // runs interrupt-driven at high priority.
    if (options_.impl != LeaseImpl::kUdDedicatedHighPri) {
      node_->machine().thread(ProcessingThread()).InjectBusy(noise_burst_);
    }
    ScheduleNoise();
  });
}

}  // namespace farm
