// Ring-buffer logs and message queues (section 3).
//
// Each sender-receiver machine pair has its own ring, physically located in
// the receiver's NVRAM. The sender appends records with one-sided RDMA
// writes to the tail (acknowledged by the receiver's NIC without CPU); the
// receiver's CPU polls the head to process records. Records persist in the
// ring until truncated -- recovery re-reads non-truncated records -- so
// freeing space (advancing the head) is separate from processing. The
// receiver lazily reports the freed head position back to a feedback word
// in the sender's NVRAM so the sender can reuse space.
//
// Framing: 8-byte-aligned frames of [u32 payload_len][u32 check][payload]
// [pad]. A length of 0 means "no record here yet"; kWrapMarker means
// "continue at the ring start". `check` is a checksum of the payload (and
// length), making a torn append -- a crash or power cut after only a prefix
// of the frame's bytes reached NVRAM -- detectable: the receiver treats a
// frame with an implausible length or a mismatched checksum as the torn
// tail of the log and stops parsing there (a single writer appends frames
// in order, so a tear can only be the last write). Torn frames are counted
// (torn_frames()) for the chaos explorer's coverage report.
#ifndef SRC_CORE_RINGLOG_H_
#define SRC_CORE_RINGLOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/nvram/nvram.h"

namespace farm {

constexpr uint32_t kWrapMarker = 0xFFFFFFFFu;

// Frame header: [u32 payload_len][u32 check].
constexpr uint32_t kFrameHeaderBytes = 8;

// Payload checksum stored in the frame header. Folds the length in so a
// tear that garbles the length word cannot pair a stale checksum with a
// different-length payload; the |1 keeps valid checksums nonzero, so the
// all-zero bytes of freed ring space never validate.
uint32_t FrameCheck(const uint8_t* payload, uint32_t len);

inline uint32_t FramedLen(uint32_t payload_len) {
  return (kFrameHeaderBytes + payload_len + 7) & ~7u;
}

// Receiver half: owns the NVRAM ring, parses frames, tracks which records
// may be freed, and advances the head over freeable prefixes.
class RingReceiver {
 public:
  RingReceiver(NvramStore* store, uint32_t capacity);

  uint64_t data_base() const { return base_ + 8; }  // senders write here
  uint32_t capacity() const { return cap_; }

  // Parses complete records at the parse position. fn(seq, payload) is
  // invoked per record; seq identifies the record for MarkFreeable.
  // Returns the number of records surfaced.
  int Drain(const std::function<void(uint64_t seq, std::vector<uint8_t> payload)>& fn);

  // Marks a surfaced record freeable; frees (zeroes) any freeable prefix
  // and persists the new head to NVRAM.
  void MarkFreeable(uint64_t seq);

  uint64_t head() const { return head_; }
  uint64_t parse_pos() const { return parse_; }
  uint64_t bytes_freed_total() const { return bytes_freed_total_; }
  // Torn frames observed at the parse position (each tear counts once).
  uint64_t torn_frames() const { return torn_frames_; }

  // Power-failure recovery: forget volatile state and re-parse everything
  // still in the ring (head comes from the persisted NVRAM word).
  void RebuildFromNvram();

 private:
  struct Frame {
    uint64_t pos;
    uint32_t framed_len;
    bool is_marker;
    bool freeable;
    uint64_t seq;
  };

  uint8_t* At(uint64_t abs, uint32_t len);
  uint32_t PeekLen(uint64_t abs);
  void AdvanceHead();
  void NoteTorn();

  NvramStore* store_;
  uint64_t base_;
  uint32_t cap_;
  uint64_t head_ = 0;
  uint64_t parse_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t bytes_freed_total_ = 0;
  uint64_t torn_frames_ = 0;
  uint64_t torn_at_ = 0;  // parse position of the counted tear, +1 (0 = none)
  std::deque<Frame> frames_;  // unfreed frames in ring order
};

// Sender half: tracks the tail and the lazily-updated head view, enforces
// space reservations (section 4: coordinators reserve log space for all
// commit records before starting the commit), and issues the writes.
class RingSender {
 public:
  // `feedback_addr` is a u64 in the *sender's* NVRAM where the receiver
  // posts freed-head updates. For same-machine rings, local_receiver is the
  // receiver half and appends become local memory copies.
  RingSender(Fabric* fabric, MachineId self, MachineId peer, uint64_t ring_data_base,
             uint32_t capacity, uint64_t feedback_addr, NvramStore* self_store,
             RingReceiver* local_receiver, std::function<void()> poke_receiver);

  // Reserves space for one record of `payload_len` (conservatively doubled
  // to cover wrap-marker waste). Fails if the ring might not fit it.
  bool Reserve(uint32_t payload_len);
  void ReleaseReservation(uint32_t payload_len);

  // Appends one record, consuming a prior reservation made with
  // Reserve(reserved_len); payload.size() must be <= reserved_len. The
  // returned future completes on the NIC hardware ack (remote) or
  // immediately after the local copy (same machine).
  Future<NetResult> Append(std::vector<uint8_t> payload, uint32_t reserved_len,
                           HwThread* thread);

  // One record of a batched append (see PrepareBatch).
  struct BatchEntry {
    std::vector<uint8_t> payload;
    uint32_t reserved_len = 0;
  };

  // Places N records as consecutive frames -- exactly where sequential
  // Appends would put them -- consuming their reservations, and returns the
  // contiguous wire segments to transmit (at most two: one ring wrap)
  // instead of issuing the write itself. The caller posts the segments,
  // usually merged with segments for other rings on the same destination,
  // as a single Fabric::WriteBatch, and wires poke() into its delivery
  // callback. Remote rings only. A torn-write fault effect on entry i
  // truncates the wire bytes at that frame's torn prefix and drops all
  // later entries' bytes (partial-batch delivery), though the sender's
  // tail still advances past them as it would for sequential appends.
  std::vector<WriteSeg> PrepareBatch(std::vector<BatchEntry> entries);

  // Delivery callback for writes issued by the caller (PrepareBatch path).
  const std::function<void()>& poke() const { return poke_receiver_; }

  uint64_t FreeBytes() const;
  uint64_t tail() const { return tail_; }
  uint64_t reserved() const { return reserved_; }

 private:
  uint64_t HeadView() const;

  Fabric* fabric_;
  MachineId self_;
  MachineId peer_;
  uint64_t data_base_;
  uint32_t cap_;
  uint64_t feedback_addr_;
  NvramStore* self_store_;
  RingReceiver* local_receiver_;
  std::function<void()> poke_receiver_;
  uint64_t tail_ = 0;
  uint64_t reserved_ = 0;
};

}  // namespace farm

#endif  // SRC_CORE_RINGLOG_H_
