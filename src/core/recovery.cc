// Transaction state recovery (section 5.3): drain logs, identify recovering
// transactions, lock recovery, log replication, voting, and decisions.
#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/flight_hooks.h"
#include "src/core/node.h"
#include "src/obs/fault_hook.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

constexpr int kMaxVoteTimerRounds = 40;

Vote StrengthOf(LogRecordType t) {
  switch (t) {
    case LogRecordType::kCommitPrimary:
      return Vote::kCommitPrimary;
    case LogRecordType::kCommitBackup:
      return Vote::kCommitBackup;
    case LogRecordType::kLock:
      return Vote::kLock;
    default:
      return Vote::kUnknown;
  }
}

// Stronger = smaller enum value (kCommitPrimary=1 ... kUnknown=6).
bool Stronger(Vote a, Vote b) { return static_cast<int>(a) < static_cast<int>(b); }

}  // namespace

// ---------------------------------------------------------------------------
// Recovering-transaction identification (step 3)
// ---------------------------------------------------------------------------

bool Node::IsRecoveringTx(const TxLogRecord& rec, const Configuration& cfg) const {
  if (restart_recover_all_) {
    return true;  // power-failure restart: every logged transaction recovers
  }
  if (rec.tx.config >= cfg.id) {
    return false;  // started committing in the current configuration
  }
  if (!cfg.Contains(rec.tx.machine)) {
    return true;  // coordinator changed
  }
  for (RegionId r : rec.written_regions) {
    const RegionPlacement* p = cfg.Placement(r);
    if (p == nullptr || p->last_replica_change > rec.tx.config) {
      return true;  // some replica of a written object changed
    }
  }
  return false;
}

bool Node::TxIsRecovering(Transaction* tx, const Configuration& cfg) const {
  if (tx->id_.config == 0 || tx->id_.config >= cfg.id) {
    return false;
  }
  if (!cfg.Contains(id())) {
    return true;
  }
  for (const auto& [addr, w] : tx->writes_) {
    (void)w;
    const RegionPlacement* p = cfg.Placement(addr.region);
    if (p == nullptr || p->last_replica_change > tx->id_.config) {
      return true;
    }
  }
  for (const auto& [addr, r] : tx->reads_) {
    (void)r;
    const RegionPlacement* p = cfg.Placement(addr.region);
    if (p == nullptr || p->last_primary_change > tx->id_.config) {
      return true;  // some primary of a read object changed
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// NEW-CONFIG application (reconfiguration step 6)
// ---------------------------------------------------------------------------

void Node::OnNewConfig(MachineId from, Configuration new_config) {
  if (new_config.id <= config_.id) {
    if (new_config.id == config_.id && from == new_config.cm && from != id()) {
      BufWriter w;
      w.PutU64(new_config.id);
      messenger_->SendMessage(from, MsgType::kNewConfigAck, w.Take(), -1);
    }
    return;
  }
  stats_.reconfigurations++;
  FlightLog(flight_, sim().Now(), flight::EventKind::kReconfig, 0,
            static_cast<uint32_t>(new_config.id));
  FlightLog(flight_, sim().Now(), flight::EventKind::kRecoveryStep,
            static_cast<uint8_t>(flight::RecoveryStep::kNewConfig),
            static_cast<uint32_t>(new_config.id));
  config_ = std::move(new_config);
  const Configuration& cfg = config_;
  regions_active_sent_ = false;
  new_backup_regions_.clear();

  if (IsCm()) {
    regions_active_pending_.clear();
    for (MachineId m : cfg.machines) {
      regions_active_pending_.insert(m);
    }
  }

  for (const auto& [rid, p] : cfg.regions) {
    bool host = p.Contains(id());
    if (host && replicas_.count(rid) == 0) {
      InstallReplica(rid, p.size, p.object_stride);
      if (p.primary != id()) {
        // Freshly assigned backup: needs bulk data recovery (section 5.4).
        new_backup_regions_.insert(rid);
      }
    }
    if (p.primary == id() && p.last_primary_change == cfg.id) {
      RegionReplica* rep = replica(rid);
      if (rep != nullptr) {
        // Block access until lock recovery completes (section 5.3 step 1).
        rep->set_active(false);
      }
      if (allocator(rid) != nullptr) {
        promoted_regions_.insert(rid);
      }
    }
  }

  // Mark in-flight coordinated transactions whose outcome now belongs to
  // recovery; their hardware acks are rejected from here on.
  for (auto& [tid, tx] : inflight_) {
    (void)tid;
    if (TxIsRecovering(tx, cfg)) {
      tx->MarkRecovering();
    }
  }

  lease_->OnNewConfig();

  if (from != id()) {
    BufWriter w;
    w.PutU64(cfg.id);
    messenger_->SendMessage(cfg.cm, MsgType::kNewConfigAck, w.Take(), -1);
  }
}

// ---------------------------------------------------------------------------
// NEW-CONFIG-COMMIT: drain and start recovery (steps 2-3)
// ---------------------------------------------------------------------------

void Node::OnNewConfigCommit(ConfigId cid) {
  if (cid != config_.id || !machine_->alive()) {
    return;
  }
  BeginTransactionStateRecovery();
}

void Node::BeginTransactionStateRecovery() {
  FARM_TRACE(Instant(static_cast<uint32_t>(id()), 0, "recovery", "tx-state-recovery"));
  FlightLog(flight_, sim().Now(), flight::EventKind::kRecoveryStep,
            static_cast<uint8_t>(flight::RecoveryStep::kTxStateStart),
            static_cast<uint32_t>(config_.id));
  // Step 2: drain logs. Everything already delivered to our rings is
  // processed now; LastDrained is persisted to the control block that
  // reconfiguration probes read.
  messenger_->DrainAllNow();
  last_drained_ = config_.id > 0 ? config_.id - 1 : 0;
  std::memcpy(store_->Data(control_block_addr_, 8), &last_drained_, 8);

  region_recovery_.clear();

  // Step 3: identify recovering transactions from the non-truncated records
  // in our logs, grouped per hosted region.
  // Pass 1: per-transaction view. LOCK / COMMIT-BACKUP records carry the
  // written-region list and the writes; COMMIT-PRIMARY carries only the id,
  // so its strength is joined with the region list learned from the others.
  struct TxView {
    Vote strength = Vote::kUnknown;
    bool saw_abort = false;
    std::vector<RegionId> regions;
    TxLogRecord contents;
    bool has_contents = false;
  };
  std::map<TxId, TxView> by_tx;
  messenger_->ForEachStoredLog([&](MachineId lfrom, uint64_t seq, const TxLogRecord& rec) {
    (void)lfrom;
    (void)seq;
    if (rec.type == LogRecordType::kTruncate || rec.type == LogRecordType::kAbort) {
      return;
    }
    TxView& v = by_tx[rec.tx];
    Vote s = StrengthOf(rec.type);
    if (Stronger(s, v.strength)) {
      v.strength = s;
    }
    if (rec.type == LogRecordType::kLock || rec.type == LogRecordType::kCommitBackup) {
      v.regions = rec.written_regions;
      if (!v.has_contents) {
        v.has_contents = true;
        v.contents = rec;
      }
    }
  });

  // Recovery state that lives outside the inbound rings: lock records
  // replicated by a previous recovery round (step 5) and durable decision
  // memory (the paper's COMMIT-RECOVERY / ABORT-RECOVERY records). Without
  // these, a second failure during recovery can flip an outcome that was
  // already exposed to the application.
  for (const auto& [ptid, pend] : pending_) {
    if (WasTruncated(ptid)) {
      continue;
    }
    bool has_rec = !pend.lock_record.writes.empty();
    if (!has_rec && !pend.commit_recovered && !pend.abort_recovered) {
      continue;
    }
    TxView& v = by_tx[ptid];
    if (has_rec) {
      Vote s = StrengthOf(pend.lock_record.type);
      if (Stronger(s, v.strength)) {
        v.strength = s;
      }
      if (v.regions.empty()) {
        v.regions = pend.lock_record.written_regions;
      }
      if (!v.has_contents) {
        v.has_contents = true;
        v.contents = pend.lock_record;
      }
    }
    if (pend.commit_recovered && Stronger(Vote::kCommitPrimary, v.strength)) {
      v.strength = Vote::kCommitPrimary;
    }
    if (pend.abort_recovered) {
      v.saw_abort = true;
    }
  }

  // Pass 2: distribute per hosted region.
  struct LocalInfo {
    ReplicaTxState state;
  };
  std::map<RegionId, std::map<TxId, LocalInfo>> local;
  for (auto& [tid, v] : by_tx) {
    if (!v.has_contents) {
      continue;  // only a CP/ABORT trace: regions unknown, nothing to recover
    }
    if (!IsRecoveringTx(v.contents, config_)) {
      continue;
    }
    for (RegionId r : v.regions) {
      const RegionPlacement* p = config_.Placement(r);
      if (p == nullptr || !p->Contains(id())) {
        continue;
      }
      LocalInfo& info = local[r][tid];
      if (Stronger(v.strength, info.state.strength)) {
        info.state.strength = v.strength;
      }
      info.state.saw_abort_recovery = info.state.saw_abort_recovery || v.saw_abort;
      if (!info.state.has_contents) {
        info.state.has_contents = true;
        info.state.contents = v.contents;
        // Keep only the writes for this region.
        auto& ws = info.state.contents.writes;
        ws.erase(std::remove_if(ws.begin(), ws.end(),
                                [r](const WireWrite& w) { return w.addr.region != r; }),
                 ws.end());
      }
    }
  }

  // Primaries: set up per-region recovery state and wait for NEED-RECOVERY
  // from every backup. Backups: send NEED-RECOVERY to the primary.
  for (const auto& [rid, p] : config_.regions) {
    if (p.primary == id()) {
      RegionRecovery& rr = region_recovery_[rid];
      for (MachineId b : p.backups) {
        rr.backups_pending.insert(b);
      }
      auto lit = local.find(rid);
      if (lit != local.end()) {
        for (auto& [tid, info] : lit->second) {
          RegionRecoveryTx& t = rr.txs[tid];
          if (Stronger(info.state.strength, t.merged.strength)) {
            t.merged.strength = info.state.strength;
          }
          if (info.state.has_contents && !t.merged.has_contents) {
            t.merged.has_contents = true;
            t.merged.contents = info.state.contents;
          }
        }
      }
      MaybeStartLockRecovery(rid);
    } else if (p.Contains(id())) {
      // I back this region: report my recovering transactions.
      BufWriter w;
      w.PutU64(config_.id);
      w.PutU32(rid);
      auto lit = local.find(rid);
      uint32_t n = lit == local.end() ? 0 : static_cast<uint32_t>(lit->second.size());
      w.PutU32(n);
      if (lit != local.end()) {
        for (auto& [tid, info] : lit->second) {
          PutTxId(w, tid);
          w.PutU8(static_cast<uint8_t>(info.state.strength));
          w.PutU8(info.state.saw_abort_recovery ? 1 : 0);
          w.PutU8(info.state.has_contents ? 1 : 0);
        }
      }
      messenger_->SendMessage(p.primary, MsgType::kNeedRecovery, w.Take(), -1);
    }
  }

  // Coordinator side: decisions for our own in-flight recovering
  // transactions; votes will arrive from the regions' primaries (explicitly
  // requested after the vote timeout if needed).
  for (auto& [tid, tx] : inflight_) {
    if (!tx->marked_recovering() || decisions_.count(tid) != 0) {
      continue;
    }
    DecisionState& d = decisions_[tid];
    for (const auto& [addr, w] : tx->writes_) {
      (void)w;
      d.regions.insert(addr.region);
    }
    if (d.regions.empty()) {
      // Read-only (or read-validation pending): no participant holds state;
      // abort is always safe because nothing was exposed.
      Decide(tid, false);
    } else {
      stats_.recovering_txs_seen++;
      ArmVoteTimer(tid);
    }
  }

  // Ship full allocator block headers for regions whose replica set changed
  // (new primaries/backups need them for recovery; section 5.5).
  for (const auto& [rid, p] : config_.regions) {
    if (p.primary != id() || p.last_replica_change != config_.id) {
      continue;
    }
    RegionAllocator* alloc = allocator(rid);
    if (alloc == nullptr) {
      continue;
    }
    const auto& payloads = alloc->block_slot_payloads();
    BufWriter w;
    w.PutU32(rid);
    uint32_t count = 0;
    for (uint32_t b = 0; b < payloads.size(); b++) {
      if (payloads[b] != 0) {
        count++;
      }
    }
    w.PutU32(count);
    for (uint32_t b = 0; b < payloads.size(); b++) {
      if (payloads[b] != 0) {
        w.PutU32(b);
        w.PutU32(payloads[b]);
      }
    }
    for (MachineId bm : p.backups) {
      messenger_->SendMessage(bm, MsgType::kBlockHeader, w.bytes(), -1);
    }
  }

  CheckAllRegionsActive();
}

// ---------------------------------------------------------------------------
// NEED-RECOVERY / lock recovery (step 4) / log replication (step 5)
// ---------------------------------------------------------------------------

void Node::HandleNeedRecovery(MachineId from, BufReader& r) {
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  if (cid != config_.id) {
    return;
  }
  auto it = region_recovery_.find(rid);
  if (it == region_recovery_.end()) {
    return;
  }
  RegionRecovery& rr = it->second;
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n; i++) {
    TxId tid = GetTxId(r);
    Vote strength = static_cast<Vote>(r.GetU8());
    bool saw_abort = r.GetU8() != 0;
    bool has_contents = r.GetU8() != 0;
    RegionRecoveryTx& t = rr.txs[tid];
    if (Stronger(strength, t.merged.strength)) {
      t.merged.strength = strength;
    }
    t.merged.saw_abort_recovery = t.merged.saw_abort_recovery || saw_abort;
    if (has_contents) {
      t.backups_with_state.insert(from);
    } else {
      t.backups_missing_state.insert(from);
    }
  }
  // Backups that reported nothing for a transaction other backups know
  // about still need the replicated state; recompute when all reports are in.
  rr.backups_pending.erase(from);
  MaybeStartLockRecovery(rid);
}

void Node::MaybeStartLockRecovery(RegionId region) {
  auto it = region_recovery_.find(region);
  if (it == region_recovery_.end() || !it->second.backups_pending.empty() ||
      it->second.lock_recovery_done) {
    return;
  }
  it->second.lock_recovery_done = true;
  fault::HitPoint(static_cast<uint32_t>(id()), "lock-recovery-begin", region);
  FinishLockRecovery(region);
}

Detached Node::FinishLockRecovery(RegionId region) {
  trace::SpanGuard lock_rec_span(
      static_cast<uint32_t>(id()), 0, "recovery", "lock-recovery",
      FARM_TRACE_ACTIVE() ? "r" + std::to_string(region) : std::string());
  auto rit = region_recovery_.find(region);
  if (rit == region_recovery_.end()) {
    co_return;
  }
  const RegionPlacement* placement = config_.Placement(region);
  if (placement == nullptr) {
    co_return;
  }
  std::vector<MachineId> backups = placement->backups;

  // Fetch lock-record contents we lack from a backup that has them.
  for (auto& [tid, t] : rit->second.txs) {
    if (t.merged.has_contents || t.backups_with_state.empty()) {
      continue;
    }
    for (MachineId b : t.backups_with_state) {
      BufWriter w;
      w.PutU64(config_.id);
      w.PutU32(region);
      PutTxId(w, tid);
      auto reply =
          co_await Request(b, MsgType::kFetchTxState, w.Take(), 0, 20 * kMillisecond);
      if (reply.ok() && !reply->empty()) {
        BufReader rr2(*reply);
        t.merged.contents = TxLogRecord::Parse(rr2);
        t.merged.has_contents = true;
        break;
      }
    }
  }

  // The fetch loop above suspended, so `rit` may have been invalidated by a
  // concurrent reconfiguration erasing the recovery state. Re-resolve it.
  rit = region_recovery_.find(region);
  if (rit == region_recovery_.end()) {
    co_return;
  }

  // Lock recovery: lock every object modified by a recovering transaction.
  RegionReplica* rep = replica(region);
  if (rep == nullptr) {
    co_return;
  }
  HwThread& thread0 = machine_->thread(0);
  for (auto& [tid, t] : rit->second.txs) {
    (void)tid;
    if (!t.merged.has_contents) {
      continue;
    }
    for (const WireWrite& w : t.merged.contents.writes) {
      if (w.addr.region != region) {
        continue;
      }
      thread0.InjectBusy(fabric().cost().cpu_lock_per_object);
      uint64_t current = rep->ReadHeader(w.addr.offset);
      if (VersionWord::Version(current) == w.expected_version &&
          !VersionWord::IsLocked(current)) {
        rep->WriteHeader(w.addr.offset, VersionWord::WithLock(w.ExpectedWord()));
      }
    }
    t.locks_taken = true;
  }

  // The region becomes active: new transactions may read and commit here in
  // parallel with the remaining recovery steps (section 5.3 performance).
  rep->set_active(true);
  FlightLog(flight_, sim().Now(), flight::EventKind::kRecoveryStep,
            static_cast<uint8_t>(flight::RecoveryStep::kLockRecovery), region);
  auto dit = deferred_refs_.find(region);
  if (dit != deferred_refs_.end()) {
    for (const auto& [m, correlation] : dit->second) {
      BufWriter w;
      w.PutU64(rep->base());
      Respond(m, correlation, OkStatus(), w.Take(), -1);
    }
    deferred_refs_.erase(dit);
  }
  CheckAllRegionsActive();

  // Step 5: replicate log records to backups that miss them, then vote.
  for (auto& [tid, t] : rit->second.txs) {
    std::set<MachineId> missing;
    for (MachineId b : backups) {
      if (t.backups_with_state.count(b) == 0) {
        missing.insert(b);
      }
    }
    if (!t.merged.has_contents) {
      missing.clear();
    }
    t.replicate_acks_pending = static_cast<int>(missing.size());
    for (MachineId b : missing) {
      BufWriter w;
      w.PutU64(config_.id);
      w.PutU32(region);
      PutTxId(w, tid);
      std::vector<uint8_t> rec_bytes = t.merged.contents.Serialize();
      w.PutBytes(rec_bytes.data(), rec_bytes.size());
      messenger_->SendMessage(b, MsgType::kReplicateTxState, w.Take(), -1);
    }
  }
  SendVotesForRegion(region);
}

void Node::HandleFetchTxState(MachineId from, BufReader& r) {
  uint64_t correlation = r.GetU64();
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  TxId tid = GetTxId(r);
  (void)cid;
  // Look for a stored LOCK/COMMIT-BACKUP record for this transaction.
  const TxLogRecord* found = nullptr;
  messenger_->ForEachStoredLog([&](MachineId lf, uint64_t seq, const TxLogRecord& rec) {
    (void)lf;
    (void)seq;
    if (rec.tx == tid &&
        (rec.type == LogRecordType::kLock || rec.type == LogRecordType::kCommitBackup)) {
      found = &rec;
    }
  });
  if (found == nullptr) {
    Respond(from, correlation, NotFoundStatus("no state for tx"), {}, -1);
    return;
  }
  TxLogRecord copy = *found;
  copy.writes.erase(std::remove_if(copy.writes.begin(), copy.writes.end(),
                                   [rid](const WireWrite& w) { return w.addr.region != rid; }),
                    copy.writes.end());
  copy.truncate_ids.clear();
  Respond(from, correlation, OkStatus(), copy.Serialize(), -1);
}

void Node::HandleReplicateTxState(MachineId from, BufReader& r) {
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  TxId tid = GetTxId(r);
  auto bytes = r.GetBytes();
  if (cid == config_.id) {
    // Store the state as a synthetic pending entry so a future promotion of
    // this backup can recover it.
    BufReader rr(bytes);
    TxLogRecord rec = TxLogRecord::Parse(rr);
    auto& pending = pending_[tid];
    if (pending.lock_record.writes.empty()) {
      pending.coordinator = tid.machine;
      pending.lock_record = rec;
    }
  }
  BufWriter w;
  w.PutU64(cid);
  w.PutU32(rid);
  PutTxId(w, tid);
  messenger_->SendMessage(from, MsgType::kReplicateTxStateAck, w.Take(), -1);
}

void Node::HandleReplicateTxStateAck(MachineId from, BufReader& r) {
  (void)from;
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  TxId tid = GetTxId(r);
  if (cid != config_.id) {
    return;
  }
  auto it = region_recovery_.find(rid);
  if (it == region_recovery_.end()) {
    return;
  }
  auto tit = it->second.txs.find(tid);
  if (tit == it->second.txs.end()) {
    return;
  }
  if (tit->second.replicate_acks_pending > 0) {
    tit->second.replicate_acks_pending--;
  }
  SendVotesForRegion(rid);
}

// ---------------------------------------------------------------------------
// Voting (step 6)
// ---------------------------------------------------------------------------

Vote Node::ComputeVote(const RegionRecoveryTx& t) const {
  if (t.merged.strength == Vote::kCommitPrimary) {
    return Vote::kCommitPrimary;
  }
  if (t.merged.strength == Vote::kCommitBackup && !t.merged.saw_abort_recovery) {
    return Vote::kCommitBackup;
  }
  if (t.merged.strength == Vote::kLock && !t.merged.saw_abort_recovery) {
    return Vote::kLock;
  }
  return Vote::kAbort;
}

MachineId Node::RecoveryCoordinatorFor(const TxId& tid) const {
  if (config_.Contains(tid.machine)) {
    return tid.machine;  // the coordinator did not change
  }
  // Spread the failed coordinator's transactions across the cluster.
  ConsistentHashRing ring;
  for (MachineId m : config_.machines) {
    ring.AddNode(m);
  }
  return static_cast<MachineId>(ring.Owner(tid.Hash()));
}

void Node::SendVotesForRegion(RegionId region) {
  auto it = region_recovery_.find(region);
  if (it == region_recovery_.end() || !it->second.lock_recovery_done) {
    return;
  }
  // Snapshot first: a locally-handled vote can decide synchronously and
  // erase entries from the map being iterated (TRUNCATE-RECOVERY).
  struct PendingVote {
    TxId tid;
    Vote vote;
    std::vector<RegionId> regions;
  };
  std::vector<PendingVote> out;
  for (auto& [tid, t] : it->second.txs) {
    if (t.voted || t.replicate_acks_pending > 0) {
      continue;
    }
    t.voted = true;
    out.push_back({tid, ComputeVote(t), t.merged.contents.written_regions});
  }
  for (const PendingVote& pv : out) {
    MachineId coord = RecoveryCoordinatorFor(pv.tid);
    BufWriter w;
    w.PutU64(config_.id);
    w.PutU32(region);
    PutTxId(w, pv.tid);
    w.PutU32(static_cast<uint32_t>(pv.regions.size()));
    for (RegionId rr : pv.regions) {
      w.PutU32(rr);
    }
    w.PutU8(static_cast<uint8_t>(pv.vote));
    if (coord == id()) {
      std::vector<uint8_t> bytes = w.Take();
      BufReader rr(bytes);
      HandleRecoveryVote(id(), rr);
    } else {
      messenger_->SendMessage(coord, MsgType::kRecoveryVote, w.Take(), -1);
    }
  }
}

void Node::HandleRecoveryVote(MachineId from, BufReader& r) {
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  TxId tid = GetTxId(r);
  uint32_t n = r.GetU32();
  std::vector<RegionId> modified;
  for (uint32_t i = 0; i < n; i++) {
    modified.push_back(r.GetU32());
  }
  Vote v = static_cast<Vote>(r.GetU8());
  if (cid != config_.id) {
    return;
  }
  auto [it, inserted] = decisions_.try_emplace(tid);
  DecisionState& d = it->second;
  if (inserted) {
    stats_.recovering_txs_seen++;
  }
  if (d.decided) {
    // Late vote after the decision: resend the outcome to that region's
    // replicas so it can finish.
    const RegionPlacement* p = config_.Placement(rid);
    if (p != nullptr) {
      BufWriter w;
      PutTxId(w, tid);
      for (MachineId m : p->Replicas()) {
        if (m == id()) {
          continue;
        }
        messenger_->SendMessage(
            m, d.committed ? MsgType::kCommitRecovery : MsgType::kAbortRecovery, w.bytes(),
            -1);
      }
    }
    (void)from;
    return;
  }
  for (RegionId m : modified) {
    d.regions.insert(m);
  }
  auto& existing = d.votes[rid];
  if (existing == Vote{} || Stronger(v, existing)) {
    existing = v;
  }
  if (!d.vote_timer_armed) {
    ArmVoteTimer(tid);
  }
  MaybeDecide(tid);
}

void Node::ArmVoteTimer(const TxId& tid) {
  auto it = decisions_.find(tid);
  if (it == decisions_.end() || it->second.vote_timer_armed) {
    return;
  }
  it->second.vote_timer_armed = true;
  it->second.timer_rounds = 0;
  ConfigId cid = config_.id;
  std::function<void()> tick = [this, tid, cid]() {
    auto dit = decisions_.find(tid);
    if (dit == decisions_.end() || dit->second.decided || config_.id != cid ||
        !machine_->alive()) {
      return;
    }
    DecisionState& d = dit->second;
    d.timer_rounds++;
    if (d.timer_rounds > kMaxVoteTimerRounds) {
      // Regions never answered (lost or wedged): abort is the safe outcome
      // only if no region could have exposed the commit; a commit-primary
      // vote would have decided already, so abort here.
      Decide(tid, false);
      return;
    }
    // Explicit vote requests to regions that have not voted (step 6).
    for (RegionId r : d.regions) {
      if (d.votes.count(r) != 0) {
        continue;
      }
      const RegionPlacement* p = config_.Placement(r);
      if (p == nullptr) {
        d.votes[r] = Vote::kUnknown;
        continue;
      }
      BufWriter w;
      w.PutU64(config_.id);
      w.PutU32(r);
      PutTxId(w, tid);
      if (p->primary == id()) {
        std::vector<uint8_t> bytes = w.Take();
        BufReader rr(bytes);
        HandleRequestVote(id(), rr);
      } else {
        messenger_->SendMessage(p->primary, MsgType::kRequestVote, w.Take(), -1);
      }
    }
    MaybeDecide(tid);
    ArmVoteTimerTick(tid, cid);
  };
  vote_timers_[tid] = tick;
  sim().After(options_.vote_timeout, tick);
}

void Node::ArmVoteTimerTick(const TxId& tid, ConfigId cid) {
  auto fit = vote_timers_.find(tid);
  if (fit == vote_timers_.end()) {
    return;
  }
  (void)cid;
  sim().After(options_.vote_timeout, fit->second);
}

void Node::HandleRequestVote(MachineId from, BufReader& r) {
  ConfigId cid = r.GetU64();
  RegionId rid = r.GetU32();
  TxId tid = GetTxId(r);
  if (cid != config_.id) {
    return;
  }
  Vote v;
  std::vector<RegionId> modified;
  auto it = region_recovery_.find(rid);
  if (it != region_recovery_.end() && it->second.txs.count(tid) != 0) {
    RegionRecoveryTx& t = it->second.txs[tid];
    if (t.replicate_acks_pending > 0 || !it->second.lock_recovery_done) {
      return;  // vote after replication completes (SendVotesForRegion)
    }
    t.voted = true;
    v = ComputeVote(t);
    modified = t.merged.contents.written_regions;
  } else if (WasTruncated(tid)) {
    v = Vote::kTruncated;
  } else {
    v = Vote::kUnknown;
  }
  BufWriter w;
  w.PutU64(config_.id);
  w.PutU32(rid);
  PutTxId(w, tid);
  w.PutU32(static_cast<uint32_t>(modified.size()));
  for (RegionId m : modified) {
    w.PutU32(m);
  }
  w.PutU8(static_cast<uint8_t>(v));
  if (from == id()) {
    std::vector<uint8_t> bytes = w.Take();
    BufReader rr(bytes);
    HandleRecoveryVote(id(), rr);
  } else {
    messenger_->SendMessage(from, MsgType::kRecoveryVote, w.Take(), -1);
  }
}

// ---------------------------------------------------------------------------
// Decision (step 7)
// ---------------------------------------------------------------------------

void Node::MaybeDecide(const TxId& tid) {
  auto it = decisions_.find(tid);
  if (it == decisions_.end() || it->second.decided) {
    return;
  }
  DecisionState& d = it->second;
  bool any_cb = false;
  bool all_truncated = !d.votes.empty();
  for (const auto& [r, v] : d.votes) {
    (void)r;
    if (v == Vote::kCommitPrimary) {
      Decide(tid, true);
      return;
    }
    if (v == Vote::kCommitBackup) {
      any_cb = true;
    }
    if (v != Vote::kTruncated) {
      all_truncated = false;
    }
  }
  // Otherwise wait for every region to vote.
  for (RegionId r : d.regions) {
    if (d.votes.count(r) == 0) {
      return;
    }
  }
  if (d.regions.empty()) {
    return;
  }
  if (all_truncated) {
    // Every region truncated: the transaction committed and fully applied.
    Decide(tid, true);
    return;
  }
  bool commit = any_cb;
  if (commit) {
    for (const auto& [r, v] : d.votes) {
      (void)r;
      if (v != Vote::kLock && v != Vote::kCommitBackup && v != Vote::kTruncated) {
        commit = false;
      }
    }
  }
  Decide(tid, commit);
}

void Node::Decide(const TxId& tid, bool commit) {
  auto it = decisions_.find(tid);
  if (it == decisions_.end() || it->second.decided) {
    return;
  }
  DecisionState& d = it->second;
  d.decided = true;
  d.committed = commit;
  vote_timers_.erase(tid);
  LogTxScope log_tx(tid.config, tid.machine, tid.thread, tid.local);
  FARM_TRACE(Instant(static_cast<uint32_t>(id()), 0, "recovery",
                     commit ? "decide-commit" : "decide-abort"));
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kRecoveryStep, tid,
              static_cast<uint8_t>(commit ? flight::RecoveryStep::kDecideCommit
                                          : flight::RecoveryStep::kDecideAbort));

  std::set<MachineId> replicas;
  for (RegionId r : d.regions) {
    const RegionPlacement* p = config_.Placement(r);
    if (p == nullptr) {
      continue;
    }
    for (MachineId m : p->Replicas()) {
      replicas.insert(m);
    }
  }
  // Count all acks before delivering anything: the local delivery below acks
  // synchronously, and an early zero would broadcast TRUNCATE-RECOVERY ahead
  // of the decision itself.
  d.acks_pending = static_cast<int>(replicas.size());
  BufWriter w;
  PutTxId(w, tid);
  std::vector<uint8_t> msg = w.Take();
  MsgType type = commit ? MsgType::kCommitRecovery : MsgType::kAbortRecovery;
  for (MachineId m : replicas) {
    if (m != id()) {
      messenger_->SendMessage(m, type, msg, -1);
    }
  }
  if (commit) {
    stats_.tx_recovered_commit++;
  } else {
    stats_.tx_recovered_abort++;
  }
  if (replicas.empty()) {
    // No participant holds state (read-only abort): expose immediately.
    ResolveInflightByRecovery(tid, commit);
    return;
  }
  if (replicas.count(id()) != 0) {
    BufReader rr(msg);
    HandleRecoveryDecision(id(), type, rr);
  }
}

// The application-visible outcome is exposed only once every participant has
// acknowledged the decision, i.e. once the decision memory is durable at all
// surviving replicas of the written regions. Exposing at decide time is
// unsound: if the recovery coordinator dies before any COMMIT-RECOVERY
// lands, a later recovery round can re-derive the opposite outcome from the
// surviving (weaker) evidence.
void Node::ResolveInflightByRecovery(const TxId& tid, bool commit) {
  auto iit = inflight_.find(tid);
  if (iit != inflight_.end()) {
    iit->second->ResolveByRecovery(commit);
  }
}

void Node::HandleRecoveryDecision(MachineId from, MsgType type, BufReader& r) {
  TxId tid = GetTxId(r);
  bool commit = type == MsgType::kCommitRecovery;
  LogTxScope log_tx(tid.config, tid.machine, tid.thread, tid.local);
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kRecoveryStep, tid,
              static_cast<uint8_t>(flight::RecoveryStep::kDecisionApply),
              commit ? 1 : 0);

  // Durable memory of the decision (the paper's COMMIT-RECOVERY /
  // ABORT-RECOVERY records). If this machine survives into a later
  // configuration whose recovery round re-identifies the transaction, the
  // memory keeps the outcome stable: a commit already exposed to the
  // application cannot flip to abort, and an applied abort cannot be
  // resurrected from a stale COMMIT-BACKUP record.
  {
    auto& mem = pending_[tid];
    if (mem.coordinator == kInvalidMachine) {
      mem.coordinator = tid.machine;
    }
    if (commit) {
      mem.commit_recovered = true;
    } else {
      mem.abort_recovered = true;
    }
  }

  // Gather the lock-record contents we hold for this transaction.
  const TxLogRecord* contents = nullptr;
  auto pit = pending_.find(tid);
  if (pit != pending_.end() && !pit->second.lock_record.writes.empty()) {
    contents = &pit->second.lock_record;
  }
  std::vector<const TxLogRecord*> region_states;
  for (auto& [rid, rr] : region_recovery_) {
    (void)rid;
    auto tit = rr.txs.find(tid);
    if (tit != rr.txs.end() && tit->second.merged.has_contents) {
      region_states.push_back(&tit->second.merged.contents);
    }
  }
  if (contents == nullptr && region_states.empty()) {
    // Nothing to do here (e.g. we only coordinated).
    if (from != id()) {
      BufWriter w;
      PutTxId(w, tid);
      messenger_->SendMessage(from, MsgType::kRecoveryDecisionAck, w.Take(), -1);
    } else {
      OnRecoveryDecisionAck(id(), tid);
    }
    return;
  }

  auto apply = [&](const TxLogRecord& rec) {
    for (const WireWrite& w : rec.writes) {
      RegionReplica* rep = replica(w.addr.region);
      if (rep == nullptr) {
        continue;
      }
      uint64_t current = rep->ReadHeader(w.addr.offset);
      if (commit) {
        if (VersionWord::Version(current) <= w.expected_version) {
          rep->WriteData(w.addr.offset, w.value.data(),
                         static_cast<uint32_t>(w.value.size()));
          rep->WriteHeader(w.addr.offset,
                           VersionWord::Pack(w.expected_version + 1, w.AllocAfter(), false));
          if (w.clear_alloc && IsPrimaryOf(w.addr.region)) {
            RegionAllocator* alloc = allocator(w.addr.region);
            if (alloc != nullptr) {
              alloc->OnFreeCommitted(w.addr);
            }
          }
        }
      } else {
        // Abort: release the (recovery or normal) lock, restoring the
        // pre-transaction header.
        if (VersionWord::Version(current) == w.expected_version &&
            VersionWord::IsLocked(current)) {
          rep->WriteHeader(w.addr.offset, w.ExpectedWord());
        }
      }
    }
  };
  if (contents != nullptr) {
    apply(*contents);
    pit->second.applied = commit;
    pit->second.locks_held = false;
  }
  for (const TxLogRecord* rec : region_states) {
    apply(*rec);
  }
  if (!commit) {
    // Remember ABORT-RECOVERY for future votes (section 5.3 step 6).
    for (auto& [rid, rr] : region_recovery_) {
      (void)rid;
      auto tit = rr.txs.find(tid);
      if (tit != rr.txs.end()) {
        tit->second.merged.saw_abort_recovery = true;
      }
    }
  }

  if (from != id()) {
    BufWriter w;
    PutTxId(w, tid);
    messenger_->SendMessage(from, MsgType::kRecoveryDecisionAck, w.Take(), -1);
  } else {
    OnRecoveryDecisionAck(id(), tid);
  }
}

void Node::OnRecoveryDecisionAck(MachineId from, const TxId& tid) {
  (void)from;
  auto it = decisions_.find(tid);
  if (it == decisions_.end() || !it->second.decided) {
    return;
  }
  DecisionState& d = it->second;
  if (d.acks_pending > 0) {
    d.acks_pending--;
  }
  if (d.acks_pending == 0) {
    // Decision durable at every participant: expose the outcome, then
    // TRUNCATE-RECOVERY to every replica.
    ResolveInflightByRecovery(tid, d.committed);
    std::set<MachineId> replicas;
    for (RegionId r : d.regions) {
      const RegionPlacement* p = config_.Placement(r);
      if (p == nullptr) {
        continue;
      }
      for (MachineId m : p->Replicas()) {
        replicas.insert(m);
      }
    }
    // The truncation carries the decision: after an abort, stale
    // COMMIT-BACKUP records must be discarded, not applied.
    BufWriter w;
    PutTxId(w, tid);
    w.PutU8(d.committed ? 1 : 0);
    std::vector<uint8_t> msg = w.Take();
    for (MachineId m : replicas) {
      if (m == id()) {
        BufReader rr(msg);
        HandleTruncateRecovery(id(), rr);
      } else {
        messenger_->SendMessage(m, MsgType::kTruncateRecovery, msg, -1);
      }
    }
  }
}

void Node::HandleTruncateRecovery(MachineId from, BufReader& r) {
  (void)from;
  TxId tid = GetTxId(r);
  bool commit = r.GetU8() != 0;
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kRecoveryStep, tid,
              static_cast<uint8_t>(flight::RecoveryStep::kTruncateRecovery));
  ProcessTruncation(tid.machine, tid, /*apply_backup_writes=*/commit);
  for (auto& [rid, rr] : region_recovery_) {
    (void)rid;
    rr.txs.erase(tid);
  }
}

// ---------------------------------------------------------------------------
// REGIONS-ACTIVE
// ---------------------------------------------------------------------------

void Node::CheckAllRegionsActive() {
  if (regions_active_sent_) {
    return;
  }
  for (const auto& [rid, rep] : replicas_) {
    if (IsPrimaryOf(rid) && !rep->active()) {
      return;
    }
  }
  regions_active_sent_ = true;
  BufWriter w;
  w.PutU64(config_.id);
  if (IsCm()) {
    std::vector<uint8_t> bytes = w.Take();
    BufReader r(bytes);
    HandleRegionsActive(id(), r);
  } else {
    messenger_->SendMessage(config_.cm, MsgType::kRegionsActive, w.Take(), -1);
  }
}

}  // namespace farm
