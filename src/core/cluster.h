// Cluster harness: builds the simulator, machines, NVRAM stores, fabric,
// coordination service, and FaRM nodes, and wires them together.
//
// Machine ids 0..machines-1 run FaRM; ids machines..machines+zk_replicas-1
// host the coordination service (the paper's separate ZooKeeper machines).
#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/core/node.h"
#include "src/net/fabric.h"
#include "src/nvram/nvram.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/zk/coord.h"

namespace farm {

struct ClusterOptions {
  int machines = 5;
  int zk_replicas = 3;
  NodeOptions node;
  CostModel cost;
  int nics_per_machine = 2;
  // Machines are assigned round-robin to this many failure domains
  // (0 = every machine is its own domain).
  int failure_domains = 0;
  uint64_t seed = 1;
  // Seed for the fabric's fault RNG (datagram loss + per-link chaos
  // policies). The default reproduces pre-chaos traces byte-for-byte.
  uint64_t fault_seed = 0x10552ULL;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Installs the initial configuration (id 1, CM = machine 0) in the
  // coordination service and on every node, and starts lease exchange.
  void Start();

  Simulator& sim() { return sim_; }
  Fabric& fabric() { return *fabric_; }
  CoordinationService& zk() { return *zk_; }
  Pcg32& rng() { return rng_; }
  const ClusterOptions& options() const { return options_; }
  // Per-cluster metric cells (node + fabric counters bind here), so
  // sequential clusters in one process do not bleed counts into each other.
  metrics::Registry& metrics_registry() { return registry_; }
  // Per-machine flight-recorder ring (nullptr for zk machines).
  flight::Recorder* flight_recorder(MachineId m) {
    return m < flight_.size() ? flight_[m].get() : nullptr;
  }
  // Causally merged timeline of every machine's ring (the chaos postmortem).
  std::string FlightPostmortem() const;

  int num_machines() const { return options_.machines; }
  Node& node(MachineId m) { return *nodes_[m]; }
  Machine& machine(MachineId m) { return *machines_[m]; }
  NvramStore& store(MachineId m) { return *stores_[m]; }

  // Kills the FaRM process on a machine (it never comes back).
  void Kill(MachineId m) { machines_[m]->Kill(); }
  // Restarts a FaRM machine as an EMPTY replacement process: kills it (if
  // still alive), reboots the hardware, cold-restarts the node, re-wires
  // fresh rings to every peer, and starts the join-retry loop that asks the
  // CM to re-admit it. The machine comes back with no regions; data
  // recovery re-replicates onto it once it is back in the configuration.
  void RestartMachineEmpty(MachineId m);
  // Whole-cluster power failure: every machine reboots with its NVRAM
  // intact and runs restart recovery. Run the simulator afterwards so the
  // recovery votes/decisions complete.
  void PowerFailureRestart();
  void KillFailureDomain(int domain);
  int FailureDomainOf(MachineId m) const;

  // Runs the simulator.
  void RunFor(SimDuration d) { sim_.RunFor(d); }
  void RunUntilIdle() { sim_.Run(); }

  // ---- global observability ----
  // Recovery milestones (the annotations in figures 9-11): "suspect",
  // "probe", "zookeeper", "config-commit", "all-active", "data-rec-start".
  void NoteMilestone(const char* name) {
    milestones_.push_back({name, sim_.Now()});
    // Milestones land on the pseudo-process one past the last machine
    // (named "cluster" in the trace) so they are visible as a global track.
    FARM_TRACE(Instant(static_cast<uint32_t>(machines_.size()), 0, "milestone", name));
  }
  const std::vector<std::pair<std::string, SimTime>>& milestones() const { return milestones_; }
  void ClearMilestones() { milestones_.clear(); }
  // Last occurrence of a milestone at/after `from` (kSimTimeNever if none).
  SimTime MilestoneAfter(const std::string& name, SimTime from) const {
    for (const auto& [n, t] : milestones_) {
      if (n == name && t >= from) {
        return t;
      }
    }
    return kSimTimeNever;
  }

  void NoteRegionLost(RegionId r);
  bool AnyRegionLost() const { return !lost_regions_.empty(); }
  const std::vector<RegionId>& lost_regions() const { return lost_regions_; }
  // Data-recovery completions (Figure 9b/10b dashed lines).
  void NoteRegionRereplicated(RegionId r);
  uint64_t regions_rereplicated() const { return regions_rereplicated_; }
  const std::vector<SimTime>& rereplication_times() const { return rereplication_times_; }

  NodeStats TotalStats() const;

 private:
  ClusterOptions options_;
  // Declared before nodes/fabric so its dump-on-destroy (when enabled) runs
  // after every handle has recorded its final increments.
  metrics::Registry registry_;
  Simulator sim_;
  Pcg32 rng_;
  // Declared before fabric/nodes (which hold raw pointers into the rings) so
  // the rings outlive every appender.
  std::vector<std::unique_ptr<flight::Recorder>> flight_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;  // FaRM + zk machines
  std::vector<std::unique_ptr<NvramStore>> stores_;
  std::unique_ptr<CoordinationService> zk_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::pair<std::string, SimTime>> milestones_;
  std::vector<RegionId> lost_regions_;
  uint64_t regions_rereplicated_ = 0;
  std::vector<SimTime> rereplication_times_;
};

}  // namespace farm

#endif  // SRC_CORE_CLUSTER_H_
