#include "src/core/config.h"

namespace farm {

std::vector<uint8_t> Configuration::Serialize() const {
  BufWriter w;
  w.PutU64(id);
  w.PutU32(static_cast<uint32_t>(machines.size()));
  for (MachineId m : machines) {
    w.PutU32(m);
    auto it = failure_domains.find(m);
    w.PutU32(it == failure_domains.end() ? 0 : static_cast<uint32_t>(it->second));
  }
  w.PutU32(cm);
  w.PutU32(next_region_id);
  w.PutU32(static_cast<uint32_t>(regions.size()));
  for (const auto& [rid, p] : regions) {
    w.PutU32(rid);
    w.PutU32(p.primary);
    w.PutU32(static_cast<uint32_t>(p.backups.size()));
    for (MachineId b : p.backups) {
      w.PutU32(b);
    }
    w.PutU32(p.size);
    w.PutU64(p.last_primary_change);
    w.PutU64(p.last_replica_change);
    w.PutU32(p.colocate_with);
    w.PutU32(p.object_stride);
  }
  return w.Take();
}

Configuration Configuration::Parse(BufReader& r) {
  Configuration c;
  c.id = r.GetU64();
  uint32_t nm = r.GetU32();
  for (uint32_t i = 0; i < nm; i++) {
    MachineId m = r.GetU32();
    int fd = static_cast<int>(r.GetU32());
    c.machines.push_back(m);
    c.failure_domains[m] = fd;
  }
  c.cm = r.GetU32();
  c.next_region_id = r.GetU32();
  uint32_t nr = r.GetU32();
  for (uint32_t i = 0; i < nr; i++) {
    RegionId rid = r.GetU32();
    RegionPlacement p;
    p.primary = r.GetU32();
    uint32_t nb = r.GetU32();
    for (uint32_t j = 0; j < nb; j++) {
      p.backups.push_back(r.GetU32());
    }
    p.size = r.GetU32();
    p.last_primary_change = r.GetU64();
    p.last_replica_change = r.GetU64();
    p.colocate_with = r.GetU32();
    p.object_stride = r.GetU32();
    c.regions[rid] = std::move(p);
  }
  return c;
}

Configuration Configuration::ParseBytes(const std::vector<uint8_t>& bytes) {
  BufReader r(bytes);
  return Parse(r);
}

}  // namespace farm
