#include "src/core/cluster.h"

namespace farm {

namespace {

uint64_t SimNowForLog(void* ctx) { return static_cast<Simulator*>(ctx)->Now(); }

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  fabric_ = std::make_unique<Fabric>(sim_, options_.cost);
  fabric_->SeedFaultRng(options_.fault_seed);
  fabric_->BindStats(registry_);
  SetLogClock(&SimNowForLog, &sim_, this);

  int farm_machines = options_.machines;
  int total = farm_machines + options_.zk_replicas;
  for (int i = 0; i < total; i++) {
    bool is_farm = i < farm_machines;
    int threads = is_farm ? options_.node.worker_threads + 1 : 2;
    int domain = is_farm ? FailureDomainOf(static_cast<MachineId>(i)) : 1000 + i;
    machines_.push_back(
        std::make_unique<Machine>(sim_, static_cast<MachineId>(i), threads, domain));
    stores_.push_back(std::make_unique<NvramStore>());
    fabric_->AddMachine(machines_.back().get(), stores_.back().get(),
                        options_.nics_per_machine);
  }

  // One flight-recorder ring per FaRM machine; the fabric stamps
  // message-level records into the same rings.
  for (int i = 0; i < farm_machines; i++) {
    flight_.push_back(std::make_unique<flight::Recorder>(static_cast<uint32_t>(i)));
    fabric_->SetFlightRecorder(static_cast<MachineId>(i), flight_.back().get());
  }

  // Trace setup: name one process per machine with one track per hardware
  // thread, plus a "cluster" pseudo-process for global milestones.
  if (trace::Tracer* tracer = trace::Global()) {
    tracer->AttachClock(&sim_);
    for (int i = 0; i < total; i++) {
      bool is_farm = i < farm_machines;
      uint32_t pid = static_cast<uint32_t>(i);
      tracer->NameProcess(pid, (is_farm ? "machine " : "zk ") + std::to_string(i));
      int threads = machines_[static_cast<size_t>(i)]->NumThreads();
      for (int t = 0; t < threads; t++) {
        std::string tname;
        if (!is_farm) {
          tname = "zk " + std::to_string(t);
        } else if (t == threads - 1) {
          tname = "lease";
        } else {
          tname = "worker " + std::to_string(t);
        }
        tracer->NameThread(pid, static_cast<uint32_t>(t), tname);
      }
    }
    tracer->NameProcess(static_cast<uint32_t>(total), "cluster");
  }

  std::vector<MachineId> zk_ids;
  for (int i = 0; i < options_.zk_replicas; i++) {
    zk_ids.push_back(static_cast<MachineId>(farm_machines + i));
  }
  zk_ = std::make_unique<CoordinationService>(*fabric_, zk_ids);

  for (int i = 0; i < farm_machines; i++) {
    nodes_.push_back(std::make_unique<Node>(this, machines_[static_cast<size_t>(i)].get(),
                                            stores_[static_cast<size_t>(i)].get(),
                                            options_.node));
  }
  // Full-mesh ring wiring, including self-rings (local participation).
  for (int i = 0; i < farm_machines; i++) {
    for (int j = i; j < farm_machines; j++) {
      Messenger::Connect(nodes_[static_cast<size_t>(i)]->messenger(),
                         nodes_[static_cast<size_t>(j)]->messenger());
    }
  }
}

Cluster::~Cluster() {
  // Machine deaths park coroutine frames forever (see the cancellation model
  // in src/sim/task.h); destroy them before cluster state goes away, while
  // the tracer clock is still attached so their spans close at the final
  // simulated time.
  ReclaimParkedFrames();
  ClearLogClock(this);
  // --flight-out= support: append this cluster's merged timeline before the
  // rings go away.
  if (!flight::DumpPath().empty()) {
    flight::AppendDump(FlightPostmortem(), "cluster seed=" + std::to_string(options_.seed));
  }
  // The tracer outlives the cluster; detach so it cannot stamp events with a
  // dead simulator.
  if (trace::Tracer* tracer = trace::Global()) {
    tracer->AttachClock(nullptr);
  }
}

std::string Cluster::FlightPostmortem() const {
  std::vector<const flight::Recorder*> rings;
  rings.reserve(flight_.size());
  for (const auto& r : flight_) {
    rings.push_back(r.get());
  }
  return flight::BuildPostmortem(rings);
}

int Cluster::FailureDomainOf(MachineId m) const {
  if (options_.failure_domains > 0) {
    return static_cast<int>(m) % options_.failure_domains;
  }
  return static_cast<int>(m);
}

void Cluster::Start() {
  Configuration initial;
  initial.id = 1;
  for (int i = 0; i < options_.machines; i++) {
    MachineId m = static_cast<MachineId>(i);
    initial.machines.push_back(m);
    initial.failure_domains[m] = FailureDomainOf(m);
  }
  initial.cm = 0;

  for (auto& node : nodes_) {
    node->Bootstrap(initial);
  }

  // Seed the coordination service with the initial configuration so the
  // first reconfiguration's CAS (expected version 1) lands correctly.
  auto seed = [](Cluster* c, Configuration cfg) -> Task<void> {
    auto r = co_await c->zk().CompareAndSwap(0, 0, cfg.Serialize(), nullptr);
    FARM_CHECK(r.ok()) << "failed to seed coordination service: " << r.status().ToString();
  };
  Spawn(seed(this, initial));
}

void Cluster::PowerFailureRestart() {
  for (int i = 0; i < options_.machines; i++) {
    machines_[static_cast<size_t>(i)]->Kill();
    machines_[static_cast<size_t>(i)]->Reboot();
  }
  for (auto& node : nodes_) {
    node->RestartRecovery();
  }
}

void Cluster::RestartMachineEmpty(MachineId m) {
  FARM_CHECK(m < static_cast<MachineId>(options_.machines)) << "not a FaRM machine";
  if (machines_[m]->alive()) {
    machines_[m]->Kill();
  }
  machines_[m]->Reboot();
  nodes_[m]->ColdRestart();
  for (int j = 0; j < options_.machines; j++) {
    Messenger::Reconnect(nodes_[m]->messenger(),
                         nodes_[static_cast<size_t>(j)]->messenger());
  }
  nodes_[m]->BeginJoin();
}

void Cluster::KillFailureDomain(int domain) {
  for (int i = 0; i < options_.machines; i++) {
    if (FailureDomainOf(static_cast<MachineId>(i)) == domain) {
      Kill(static_cast<MachineId>(i));
    }
  }
}

void Cluster::NoteRegionLost(RegionId r) {
  FARM_LOG(Error) << "region " << r << " lost all replicas";
  lost_regions_.push_back(r);
}

void Cluster::NoteRegionRereplicated(RegionId r) {
  (void)r;
  regions_rereplicated_++;
  rereplication_times_.push_back(sim_.Now());
}

NodeStats Cluster::TotalStats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    const NodeStats& s = node->stats();
    total.tx_committed += s.tx_committed;
    total.tx_aborted_lock += s.tx_aborted_lock;
    total.tx_aborted_validate += s.tx_aborted_validate;
    total.tx_unresolved += s.tx_unresolved;
    total.tx_recovered_commit += s.tx_recovered_commit;
    total.tx_recovered_abort += s.tx_recovered_abort;
    total.lockfree_reads += s.lockfree_reads;
    total.recovering_txs_seen += s.recovering_txs_seen;
    total.regions_rereplicated += s.regions_rereplicated;
    total.reconfigurations += s.reconfigurations;
    total.tx_backoff_waits += s.tx_backoff_waits;
    total.tx_backoff_ns += s.tx_backoff_ns;
  }
  return total;
}

}  // namespace farm
