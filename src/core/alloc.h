// Slab allocator for objects inside a region (sections 3 and 5.5).
//
// Regions are split into blocks used as slabs for one object size class.
// Block headers (the object size of each block) are replicated to backups
// when a block is first formatted; slab free lists live only at the primary
// and are rebuilt after a failure by scanning the alloc bits of object
// headers (paced, 100 objects at a time).
#ifndef SRC_CORE_ALLOC_H_
#define SRC_CORE_ALLOC_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/core/region.h"
#include "src/core/types.h"

namespace farm {

class RegionAllocator {
 public:
  struct Slot {
    GlobalAddr addr;
    uint64_t header_word = 0;  // current (unallocated) header, for the CAS
  };

  struct BlockHeader {
    uint32_t block_index = 0;
    uint32_t slot_payload = 0;  // object payload capacity of this block's slots
  };

  RegionAllocator(RegionReplica* region, uint32_t block_size);

  // Reserves a free slot able to hold `payload_size` bytes. The slot leaves
  // the free list immediately; the allocation becomes durable when the
  // transaction commits (alloc bit set via the write). Release() undoes a
  // reservation for an aborted transaction.
  StatusOr<Slot> Reserve(uint32_t payload_size);
  void Release(GlobalAddr addr);

  // A committed free: the alloc bit was cleared; the slot becomes reusable.
  // While free lists are being recovered, frees are queued (section 5.5).
  void OnFreeCommitted(GlobalAddr addr);

  // Block header replication: Reserve() may format a new block; the caller
  // (the primary node) ships pending headers to backups.
  std::vector<BlockHeader> TakePendingBlockHeaders();
  // Installs a replicated header (at backups, and at a promoted primary).
  void InstallBlockHeader(const BlockHeader& h);
  const std::vector<uint32_t>& block_slot_payloads() const { return block_payload_; }

  // Object payload size at addr (0 if the block is unformatted).
  uint32_t PayloadSizeAt(uint32_t offset) const;

  // --- free-list recovery (after promotion to primary) ---
  // Drops free lists and enters recovering mode: Reserve() fails with
  // kResourceExhausted for unscanned blocks and frees are queued.
  void StartFreeListRecovery();
  bool recovering() const { return recovering_; }
  // Scans up to `max_objects` object headers, rebuilding free lists; returns
  // the number scanned (0 when the scan is complete, which also drains the
  // queued frees and leaves recovering mode).
  int RecoveryScanStep(int max_objects);

  uint32_t block_size() const { return block_size_; }
  size_t FreeSlots() const;

 private:
  static constexpr uint32_t kMinPayload = 16;
  static constexpr uint32_t kMaxPayload = 8192;

  static uint32_t ClassPayload(uint32_t payload_size);
  uint32_t SlotBytes(uint32_t class_payload) const { return class_payload + kObjectHeaderBytes; }
  int ClassIndex(uint32_t class_payload) const;

  // Formats the next unused block for the given class; returns false if the
  // region is full.
  bool FormatBlock(uint32_t class_payload);

  RegionReplica* region_;
  uint32_t block_size_;
  uint32_t num_blocks_;
  std::vector<uint32_t> block_payload_;          // 0 = unformatted
  std::vector<std::vector<GlobalAddr>> free_;    // per class
  std::vector<BlockHeader> pending_headers_;
  uint32_t next_unformatted_ = 0;

  bool recovering_ = false;
  uint32_t scan_block_ = 0;
  uint32_t scan_slot_ = 0;
  std::deque<GlobalAddr> queued_frees_;
};

}  // namespace farm

#endif  // SRC_CORE_ALLOC_H_
