// Data recovery (section 5.4) and allocator state recovery (section 5.5).
//
// After ALL-REGIONS-ACTIVE, new backups re-replicate regions by reading
// paced blocks from the primary with one-sided RDMA and applying recovered
// objects under a version check; promoted primaries rebuild slab free lists
// with a paced scan of the alloc bits.
#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/node.h"
#include "src/obs/trace.h"

namespace farm {

void Node::OnAllRegionsActive() {
  if (!new_backup_regions_.empty()) {
    cluster_->NoteMilestone("data-rec-start");
  }
  // Start paced re-replication of freshly-assigned backup regions.
  for (RegionId rid : new_backup_regions_) {
    const RegionPlacement* p = config_.Placement(rid);
    if (p == nullptr || !IsBackupOf(rid)) {
      continue;
    }
    data_recovery_inflight_++;
    ReplicateRegionFrom(rid, p->primary);
  }
  new_backup_regions_.clear();

  // Allocator recovery at promoted primaries (delayed until now to keep it
  // off the lock-recovery critical path; section 5.5).
  for (RegionId rid : promoted_regions_) {
    RegionAllocator* alloc = allocator(rid);
    if (alloc != nullptr && IsPrimaryOf(rid)) {
      alloc->StartFreeListRecovery();
      RunAllocatorRecovery(rid);
    }
  }
  promoted_regions_.clear();
}

Detached Node::ReplicateRegionFrom(RegionId region, MachineId primary) {
  trace::SpanGuard rerep_span(
      static_cast<uint32_t>(id()), 0, "recovery", "re-replication",
      FARM_TRACE_ACTIVE() ? "r" + std::to_string(region) : std::string());
  RegionReplica* rep = replica(region);
  const RegionPlacement* placement = config_.Placement(region);
  if (rep == nullptr || placement == nullptr) {
    data_recovery_inflight_--;
    co_return;
  }
  ConfigId cfg_at_start = config_.id;

  auto ref = co_await ResolveRef(region, 0);
  if (!ref.ok() || ref->primary != primary) {
    data_recovery_inflight_--;
    co_return;
  }

  // Build the fetch schedule: ranges that never split an object. Each
  // worker (thread) pulls the next range, reads it with a one-sided RDMA
  // read, applies it, and paces the next read at a random point within the
  // fetch interval (section 5.4).
  uint32_t target_bytes = options_.recovery_block_bytes;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;  // (offset, len)
  uint32_t stride = rep->object_stride();
  if (stride != 0) {
    uint32_t per = std::max<uint32_t>(1, target_bytes / stride);
    for (uint32_t off = 0; off < rep->size();) {
      uint32_t n = std::min<uint64_t>(per, (rep->size() - off) / stride);
      if (n == 0) {
        break;
      }
      ranges.push_back({off, n * stride});
      off += n * stride;
    }
  } else {
    RegionAllocator* alloc = allocator(region);
    uint32_t block = options_.block_size;
    for (uint32_t b = 0; b * block < rep->size(); b++) {
      uint32_t payload = alloc != nullptr ? alloc->PayloadSizeAt(b * block) : 0;
      if (payload == 0) {
        continue;  // unformatted block: nothing allocated, nothing to copy
      }
      uint32_t slot = payload + kObjectHeaderBytes;
      uint32_t per = std::max<uint32_t>(1, target_bytes / slot);
      uint32_t slots_in_block = block / slot;
      for (uint32_t s = 0; s < slots_in_block;) {
        uint32_t n = std::min(per, slots_in_block - s);
        ranges.push_back({b * block + s * slot, n * slot});
        s += n;
      }
    }
  }

  auto next_range = std::make_shared<size_t>(0);
  int fetchers = std::max(1, options_.recovery_concurrent_fetches);
  WaitGroup wg;
  for (int f = 0; f < fetchers; f++) {
    wg.Add();
    auto worker_loop = [](Node* node, RegionId rid, MachineId prim, uint64_t base,
                          std::shared_ptr<size_t> next,
                          std::vector<std::pair<uint32_t, uint32_t>> all, WaitGroup done,
                          ConfigId cfg) -> Task<void> {
      Pcg32 rng(node->cluster().rng().Next64());
      while (node->machine().alive() && node->config().id == cfg) {
        size_t i = (*next)++;
        if (i >= all.size()) {
          break;
        }
        auto [off, len] = all[i];
        // Pace: start at a random point within the interval window.
        SimDuration wait = rng.Uniform64(node->options().recovery_fetch_interval) + 1;
        co_await SleepFor(node->sim(), wait);
        NetResult r = co_await node->fabric().Read(node->id(), prim, base + off, len,
                                                   &node->worker(0));
        if (!r.status.ok()) {
          break;  // primary failed; the next reconfiguration reassigns
        }
        node->ApplyRecoveredBlock(rid, off, r.data);
      }
      done.Done();
    };
    Spawn(worker_loop(this, region, primary, ref->base, next_range, ranges, wg,
                      cfg_at_start));
  }
  co_await wg.Wait();
  data_recovery_inflight_--;
  if (*next_range >= ranges.size() && machine_->alive()) {
    stats_.regions_rereplicated++;
    cluster_->NoteRegionRereplicated(region);
  }
}

void Node::ApplyRecoveredBlock(RegionId region, uint32_t offset,
                               const std::vector<uint8_t>& bytes) {
  RegionReplica* rep = replica(region);
  if (rep == nullptr) {
    return;
  }
  uint32_t stride = rep->object_stride();
  uint32_t slot = stride;
  if (slot == 0) {
    RegionAllocator* alloc = allocator(region);
    uint32_t payload = alloc != nullptr ? alloc->PayloadSizeAt(offset) : 0;
    if (payload == 0) {
      return;
    }
    slot = payload + kObjectHeaderBytes;
  }
  for (uint32_t o = 0; o + slot <= bytes.size(); o += slot) {
    uint64_t recovered_word;
    std::memcpy(&recovered_word, bytes.data() + o, 8);
    uint32_t obj_off = offset + o;
    uint64_t local_word = rep->ReadHeader(obj_off);
    // Apply only if the recovered version is newer than the local one and
    // the local object is not locked by a recovering transaction.
    if (VersionWord::Version(recovered_word) <= VersionWord::Version(local_word) ||
        VersionWord::IsLocked(local_word)) {
      continue;
    }
    rep->WriteData(obj_off, bytes.data() + o + kObjectHeaderBytes, slot - kObjectHeaderBytes);
    rep->WriteHeader(obj_off, VersionWord::WithoutLock(recovered_word));
  }
}

Detached Node::RunAllocatorRecovery(RegionId region) {
  trace::SpanGuard alloc_rec_span(
      static_cast<uint32_t>(id()), 0, "recovery", "allocator-recovery",
      FARM_TRACE_ACTIVE() ? "r" + std::to_string(region) : std::string());
  RegionAllocator* alloc = allocator(region);
  if (alloc == nullptr) {
    co_return;
  }
  ConfigId cfg = config_.id;
  // Paced: scan a batch of objects every interval (100 objects / 100 us).
  while (machine_->alive() && config_.id == cfg && alloc->recovering()) {
    int scanned = alloc->RecoveryScanStep(options_.alloc_scan_objects);
    worker(0).InjectBusy(static_cast<SimDuration>(scanned) * 30);
    if (!alloc->recovering()) {
      break;
    }
    co_await SleepFor(sim(), options_.alloc_scan_interval);
  }
}

}  // namespace farm
