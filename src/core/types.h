// Core FaRM identifiers and object layout.
//
// The global address space consists of regions (section 3), each replicated
// on one primary and f backups. Objects live at (region, offset) and carry a
// 64-bit header word combining a lock bit, an allocated bit, and a version
// used for optimistic concurrency control.
#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "src/common/hash.h"
#include "src/sim/machine.h"

namespace farm {

using RegionId = uint32_t;
using ConfigId = uint64_t;

constexpr RegionId kInvalidRegion = UINT32_MAX;

// Address of an object (its header word) within the global address space.
struct GlobalAddr {
  RegionId region = kInvalidRegion;
  uint32_t offset = 0;

  bool valid() const { return region != kInvalidRegion; }
  bool operator==(const GlobalAddr& o) const = default;
  auto operator<=>(const GlobalAddr& o) const = default;
  uint64_t Packed() const { return (static_cast<uint64_t>(region) << 32) | offset; }
  static GlobalAddr FromPacked(uint64_t v) {
    return GlobalAddr{static_cast<RegionId>(v >> 32), static_cast<uint32_t>(v)};
  }
  std::string ToString() const {
    return "r" + std::to_string(region) + "+" + std::to_string(offset);
  }
};

// Transaction identifier <c, m, t, l> (section 5.3): the configuration in
// which the commit started, the coordinator machine and thread, and a
// thread-local sequence number.
struct TxId {
  ConfigId config = 0;
  MachineId machine = kInvalidMachine;
  uint16_t thread = 0;
  uint64_t local = 0;

  bool valid() const { return machine != kInvalidMachine; }
  bool operator==(const TxId& o) const = default;
  auto operator<=>(const TxId& o) const = default;

  uint64_t Hash() const {
    return HashCombine(HashCombine(config, machine), HashCombine(thread, local));
  }
  std::string ToString() const {
    return "tx<" + std::to_string(config) + "," + std::to_string(machine) + "," +
           std::to_string(thread) + "," + std::to_string(local) + ">";
  }
};

struct TxIdHasher {
  size_t operator()(const TxId& id) const { return static_cast<size_t>(id.Hash()); }
};

// The 64-bit object header word.
//
//   bit 63: write lock (taken by LOCK-record processing via CAS)
//   bit 62: allocated (set by allocation, cleared by free; see section 5.5)
//   bits 0..61: version
struct VersionWord {
  static constexpr uint64_t kLockBit = 1ULL << 63;
  static constexpr uint64_t kAllocBit = 1ULL << 62;
  static constexpr uint64_t kVersionMask = kAllocBit - 1;

  static bool IsLocked(uint64_t w) { return (w & kLockBit) != 0; }
  static bool IsAllocated(uint64_t w) { return (w & kAllocBit) != 0; }
  static uint64_t Version(uint64_t w) { return w & kVersionMask; }
  static uint64_t Pack(uint64_t version, bool allocated, bool locked) {
    return (version & kVersionMask) | (allocated ? kAllocBit : 0) | (locked ? kLockBit : 0);
  }
  static uint64_t WithLock(uint64_t w) { return w | kLockBit; }
  static uint64_t WithoutLock(uint64_t w) { return w & ~kLockBit; }
};

constexpr uint32_t kObjectHeaderBytes = 8;

}  // namespace farm

#endif  // SRC_CORE_TYPES_H_
