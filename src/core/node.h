// A FaRM node: one machine's worth of the system.
//
// Each node is simultaneously (a) storage: primary/backup region replicas in
// NVRAM plus inbound transaction logs and message queues, (b) a transaction
// participant: LOCK / COMMIT-PRIMARY / ABORT processing, validation, slab
// allocation, (c) a transaction coordinator for application threads running
// on it (unreplicated, per section 4), (d) a failure detector via leases,
// and (e) potentially the configuration manager (CM).
//
// Implementation is split across: node.cc (construction, config handling,
// participant processing, message dispatch), tx.cc (coordinator side),
// cm.cc (CM duties and reconfiguration), lease.cc (failure detection),
// recovery.cc (transaction state recovery), data_recovery.cc (region
// re-replication and allocator recovery).
#ifndef SRC_CORE_NODE_H_
#define SRC_CORE_NODE_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/core/alloc.h"
#include "src/core/config.h"
#include "src/core/lease.h"
#include "src/core/msgr.h"
#include "src/core/region.h"
#include "src/core/tx.h"
#include "src/core/types.h"
#include "src/core/wire.h"
#include "src/net/fabric.h"
#include "src/nvram/nvram.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/task.h"
#include "src/zk/coord.h"

namespace farm {

class Cluster;

struct NodeOptions {
  int worker_threads = 4;                    // foreground event-loop threads
  uint32_t region_size = 4 << 20;            // scaled down from the paper's 2 GB
  uint32_t block_size = 64 << 10;            // scaled down from 1 MB
  Messenger::Options msgr;
  LeaseOptions lease;
  int validate_rpc_threshold = 4;            // t_r: RDMA reads vs RPC validation
  int replication_factor = 3;                // f+1 copies per region
  // NSDI'14-protocol ablation: also send LOCK records to backups (the
  // optimized protocol eliminates these messages; see section 7).
  bool backup_lock_records = false;
  SimDuration commit_resolution_timeout = 500 * kMillisecond;  // safety net
  SimDuration truncate_flush_interval = 200 * kMicrosecond;
  // Recovery pacing (sections 5.4, 5.5).
  uint32_t recovery_block_bytes = 8 << 10;
  SimDuration recovery_fetch_interval = 4 * kMillisecond;  // randomized window
  int recovery_concurrent_fetches = 1;       // per region being re-replicated
  int alloc_scan_objects = 100;
  SimDuration alloc_scan_interval = 100 * kMicrosecond;
  SimDuration vote_timeout = 250 * kMicrosecond;
  int backup_cms = 2;                        // k backup CMs (CM successors)
  // How often a machine restarted with empty state re-asks the CM to admit
  // it until it appears in a committed configuration.
  SimDuration join_retry_interval = 10 * kMillisecond;
  // How often a live member checks the coordination service for its own
  // eviction (restart-and-rejoin trigger). 0 disables the monitor.
  SimDuration eviction_check_interval = 20 * kMillisecond;
  // Adaptive lock-conflict backoff (off by default: coordinators retry
  // immediately and no backoff state is touched, preserving traces).
  // When on, each (thread, region) pair tracks a conflict-rate EWMA; a lock
  // abort on a contended region sleeps a bounded, deterministic
  // (sim-clock-seeded) delay before surfacing the abort, de-synchronizing
  // colliding coordinators.
  bool adaptive_backoff = false;
  SimDuration backoff_base = 2 * kMicrosecond;
  SimDuration backoff_max = 256 * kMicrosecond;
  double backoff_ewma_alpha = 0.25;
  // Chaos-only protocol mutation: commit without waiting for COMMIT-BACKUP
  // hardware acks. Deliberately UNSAFE -- it exists so the chaos oracle can
  // demonstrate it catches the resulting serializability violations.
  bool chaos_skip_backup_ack = false;
};

// Per-node counters, backed by metrics cells. Copying a NodeStats snapshots
// the current values into detached cells, so aggregation code like
// Cluster::TotalStats and point-in-time comparisons keep value semantics.
struct NodeStats {
  metrics::Counter tx_committed;
  metrics::Counter tx_aborted_lock;
  metrics::Counter tx_aborted_validate;
  metrics::Counter tx_unresolved;      // gave up waiting (failures)
  metrics::Counter tx_recovered_commit;
  metrics::Counter tx_recovered_abort;
  metrics::Counter lockfree_reads;
  metrics::Counter recovering_txs_seen;   // counted at vote coordinators
  metrics::Counter regions_rereplicated;
  metrics::Counter reconfigurations;
  metrics::Counter tx_backoff_waits;   // lock-conflict aborts that backed off
  metrics::Counter tx_backoff_ns;      // total simulated ns spent backing off

  // Rebinds every field to labeled cells in `reg` (e.g. tx_committed{node="m3"}),
  // so the registry dump breaks counts down per node.
  void BindTo(metrics::Registry& reg, const std::string& node_label);
};

class Node {
 public:
  Node(Cluster* cluster, Machine* machine, NvramStore* store, NodeOptions options);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---------------- Application API ----------------

  // Starts a transaction coordinated by this node's `thread`.
  std::unique_ptr<Transaction> Begin(int thread);

  // Optimized single-object read-only transaction (lock-free read).
  Task<StatusOr<std::vector<uint8_t>>> LockFreeRead(GlobalAddr addr, uint32_t size, int thread);

  // Allocates a new region via the CM's two-phase protocol (section 3).
  // object_stride > 0 declares an app-managed fixed layout (stride = header
  // + payload per object); 0 means slab-managed.
  Task<StatusOr<RegionId>> CreateRegion(uint32_t size, uint32_t object_stride,
                                        RegionId colocate_with, int thread);

  // ---------------- Introspection ----------------

  MachineId id() const { return machine_->id(); }
  const Configuration& config() const { return config_; }
  bool IsCm() const { return config_.cm == id(); }
  bool IsPrimaryOf(RegionId r) const;
  bool IsBackupOf(RegionId r) const;
  RegionReplica* replica(RegionId r);
  RegionAllocator* allocator(RegionId r);
  const NodeStats& stats() const { return stats_; }
  NodeStats& mutable_stats() { return stats_; }
  // This machine's flight-recorder ring (may be null outside a cluster).
  flight::Recorder* flight() { return flight_; }
  // Cluster-wide commit-phase histograms + abort-reason counters.
  flight::PhaseMetrics& phase_metrics() { return phase_metrics_; }
  Machine& machine() { return *machine_; }
  Messenger& messenger() { return *messenger_; }
  LeaseManager& lease_manager() { return *lease_; }
  NodeOptions& options() { return options_; }
  Cluster& cluster() { return *cluster_; }
  ConfigId last_drained() const { return last_drained_; }
  uint64_t control_block_addr() const { return control_block_addr_; }
  // Regions hosted here that are currently blocked (lock recovery pending).
  int BlockedRegionCount() const;

  // ---------------- Lifecycle (called by Cluster) ----------------

  // Adopts the initial configuration and starts timers/leases.
  void Bootstrap(const Configuration& initial);
  // Whole-cluster power-failure restart (section 5's durability guarantee):
  // forgets volatile state and replays the non-truncated NVRAM log records,
  // re-applying any COMMIT-PRIMARY whose in-place update had not reached
  // region memory when power was lost. Replay is idempotent: a LOCK whose
  // object version already advanced fails its CAS and the transaction is
  // treated as already applied.
  void ReplayNvramLogs();
  // Full restart recovery after a whole-cluster power failure: replays the
  // NVRAM logs and then runs transaction-state recovery treating every
  // surviving (non-truncated) transaction as recovering, so in-flight
  // transactions caught by the power cut get voted, decided, and their
  // locks resolved (section 5's durability discussion). Call on every node,
  // then run the simulator so votes and decisions flow.
  void RestartRecovery();
  // Restart with EMPTY state (a replaced process): forgets all volatile
  // protocol state, regions, and the adopted configuration. The TxId counter
  // survives, standing in for the incarnation number a real system would
  // fold into transaction ids. Cluster re-wires rings, then BeginJoin()
  // petitions the CM until this machine is back in a configuration.
  void ColdRestart();
  // Spawns the join-retry loop (reads the configuration from the
  // coordination service, sends kJoinRequest to its CM).
  void BeginJoin();
  // Installs a replica for a region this node hosts (bootstrap/region-create).
  RegionReplica* InstallReplica(RegionId r, uint32_t size, uint32_t object_stride);

  // ---------------- Internal: used by Transaction (tx.cc) ----------------

  Simulator& sim();
  Fabric& fabric();
  HwThread& worker(int idx) { return machine_->thread(idx); }

  struct RegionRef {
    ConfigId as_of = 0;
    MachineId primary = kInvalidMachine;
    uint64_t base = 0;  // NVRAM base of the region at the primary
  };
  // Resolves the RDMA reference for a region (may wait for an active
  // primary; fails if the region is unknown or the primary unreachable).
  Task<StatusOr<RegionRef>> ResolveRef(RegionId region, int thread);

  TxId NextTxId(int thread);
  void RegisterInflight(Transaction* tx);
  void UnregisterInflight(const TxId& id);

  // Truncation: the coordinator calls this once a transaction got acks from
  // all primaries; ids are piggybacked on future records to each holder.
  void QueueTruncation(const TxId& id, const std::vector<MachineId>& holders);
  // Pops up to `max` pending truncation ids for records headed to `dst`.
  std::vector<TxId> TakeTruncationsFor(MachineId dst, size_t max);

  // Adaptive lock-conflict backoff (coordinator side; no-ops with
  // options_.adaptive_backoff off). NoteLockOutcome feeds the per-
  // (thread, region) conflict EWMA; LockBackoffDelay maps the hottest
  // region's EWMA to a bounded retry delay with deterministic jitter
  // seeded from (sim clock, tx id, thread) -- no global RNG state, so
  // same-seed runs replay identically.
  void NoteLockOutcome(int thread, RegionId region, bool conflict);
  SimDuration LockBackoffDelay(int thread, const TxId& id,
                               const std::vector<RegionId>& regions);

  // Generic request/reply over the message queues. Returns the reply body.
  Task<StatusOr<std::vector<uint8_t>>> Request(MachineId dst, MsgType type,
                                               std::vector<uint8_t> body, int thread,
                                               SimDuration timeout);
  void Respond(MachineId dst, uint64_t correlation, Status status,
               std::vector<uint8_t> body, int thread);

  // Precise membership check before issuing one-sided operations.
  bool InConfig(MachineId m) const { return config_.Contains(m); }

  // Object allocation on behalf of a transaction: reserves a free slot at
  // the region's primary (locally or via ALLOC-REQUEST message).
  Task<StatusOr<RegionAllocator::Slot>> AllocSlot(RegionId region, uint32_t payload_size,
                                                  int thread);
  void ReleaseAllocSlot(GlobalAddr addr, int thread);

  // ---------------- Internal: CM duties (cm.cc) ----------------

  // Starts reconfiguration suspecting the given machines (runs the 7-step
  // protocol of section 5.2; no-op if this node loses the ZK CAS race).
  void StartReconfiguration(std::vector<MachineId> suspects, const char* reason);
  // Called by the lease manager.
  void OnMachineSuspected(MachineId m);
  void OnCmSuspected();

  // ---------------- Internal: recovery (recovery.cc) ----------------

  void OnNewConfig(MachineId from, Configuration new_config);
  void OnNewConfigAck(MachineId from, ConfigId id);
  void OnNewConfigCommit(ConfigId id);
  void OnRecoveryDecisionAck(MachineId from, const TxId& id);
  void ResolveInflightByRecovery(const TxId& id, bool commit);

 private:
  friend class Transaction;

  // ---- participant-side processing (node.cc) ----
  void HandleLogRecord(MachineId from, uint64_t seq, const TxLogRecord& rec);
  void HandleMessage(MachineId from, MsgType type, std::vector<uint8_t> payload);
  void ProcessLock(MachineId from, uint64_t seq, const TxLogRecord& rec);
  void ProcessCommitPrimary(MachineId from, const TxLogRecord& rec);
  void ProcessAbort(MachineId from, const TxLogRecord& rec);
  // `apply_backup_writes` is false only for TRUNCATE-RECOVERY after an abort
  // decision: the stored COMMIT-BACKUP records must be discarded, not applied.
  void ProcessTruncation(MachineId from, const TxId& id, bool apply_backup_writes = true);
  void ApplyWriteAtPrimary(const WireWrite& w);
  void ApplyWriteAtBackup(const WireWrite& w);
  void RecordTruncated(const TxId& id);
  bool WasTruncated(const TxId& id) const;

  void HandleValidate(MachineId from, BufReader& r);
  void HandleAllocRequest(MachineId from, BufReader& r);
  void HandleRefRequest(MachineId from, BufReader& r);
  void HandleBlockHeader(MachineId from, BufReader& r);
  void FlushTruncations();  // periodic explicit TRUNCATE records
  // One holder's truncation id left the queue; records the truncate phase
  // once the last holder's copy is dispatched (or abandons it for dead peers).
  void TruncationDequeued(const TxId& id, bool dispatched);
  void ShipPendingBlockHeaders(RegionId r);

  // ---- CM-side duties (cm.cc) ----
  void HandleJoinRequest(MachineId from, BufReader& r);
  Detached RunJoin(uint64_t restart_epoch);
  // Eviction monitor: periodically reads the authoritative configuration
  // from the coordination service; a machine that finds itself evicted
  // (alive but excluded) restarts empty and rejoins as a new instance, the
  // paper's model for machines on the losing side of a healed partition.
  Detached RunEvictionMonitor(uint64_t generation);
  void StartEvictionMonitor() { RunEvictionMonitor(++eviction_monitor_generation_); }
  void HandleRegionCreate(MachineId from, BufReader& r);
  Detached RunRegionCreate(MachineId from, uint64_t correlation, uint32_t size,
                           uint32_t object_stride, RegionId colocate_with);
  Detached RunReconfiguration(std::vector<MachineId> suspects);
  StatusOr<std::vector<MachineId>> PickReplicas(uint32_t size, RegionId colocate_with,
                                                const std::vector<MachineId>& exclude) const;
  void RemapRegions(Configuration& cfg) const;
  void HandleRegionsActive(MachineId from, BufReader& r);
  void BroadcastAllRegionsActive();

  // ---- recovery (recovery.cc) ----
  struct ReplicaTxState {
    Vote strength = Vote::kUnknown;  // strongest record seen (CP > CB > LOCK)
    bool saw_abort_recovery = false;
    bool has_contents = false;
    TxLogRecord contents;  // lock-record contents (writes for this machine)
  };
  struct RegionRecoveryTx {
    ReplicaTxState merged;
    std::set<MachineId> backups_with_state;
    std::set<MachineId> backups_missing_state;
    int replicate_acks_pending = 0;
    bool locks_taken = false;
    bool voted = false;
  };
  struct RegionRecovery {
    std::set<MachineId> backups_pending;  // NEED-RECOVERY not yet received
    std::map<TxId, RegionRecoveryTx> txs;
    bool lock_recovery_done = false;
  };
  struct DecisionState {
    std::map<RegionId, Vote> votes;
    std::set<RegionId> regions;  // modified regions (from vote messages)
    bool decided = false;
    bool committed = false;
    int acks_pending = 0;
    bool vote_timer_armed = false;
    int timer_rounds = 0;
  };

  bool IsRecoveringTx(const TxLogRecord& rec, const Configuration& cfg) const;
  bool TxIsRecovering(Transaction* tx, const Configuration& cfg) const;
  void BeginTransactionStateRecovery();
  void SendNeedRecovery();
  void MaybeStartLockRecovery(RegionId region);
  Detached FinishLockRecovery(RegionId region);
  void CheckAllRegionsActive();
  void SendVotesForRegion(RegionId region);
  Vote ComputeVote(const RegionRecoveryTx& t) const;
  MachineId RecoveryCoordinatorFor(const TxId& id) const;
  void HandleNeedRecovery(MachineId from, BufReader& r);
  void HandleFetchTxState(MachineId from, BufReader& r);
  void HandleReplicateTxState(MachineId from, BufReader& r);
  void HandleReplicateTxStateAck(MachineId from, BufReader& r);
  void HandleRecoveryVote(MachineId from, BufReader& r);
  void HandleRequestVote(MachineId from, BufReader& r);
  void HandleRecoveryDecision(MachineId from, MsgType type, BufReader& r);
  void HandleTruncateRecovery(MachineId from, BufReader& r);
  void MaybeDecide(const TxId& id);
  void ArmVoteTimer(const TxId& id);
  void ArmVoteTimerTick(const TxId& id, ConfigId cid);
  void Decide(const TxId& id, bool commit);

  // ---- data recovery (data_recovery.cc) ----
  void OnAllRegionsActive();
  Detached ReplicateRegionFrom(RegionId region, MachineId primary);
  void ApplyRecoveredBlock(RegionId region, uint32_t offset,
                           const std::vector<uint8_t>& bytes);
  Detached RunAllocatorRecovery(RegionId region);

  Cluster* cluster_;
  Machine* machine_;
  NvramStore* store_;
  NodeOptions options_;
  std::unique_ptr<Messenger> messenger_;
  std::unique_ptr<LeaseManager> lease_;

  Configuration config_;
  ConfigId last_drained_ = 0;
  uint64_t control_block_addr_ = 0;  // probe target; holds LastDrained

  std::map<RegionId, std::unique_ptr<RegionReplica>> replicas_;
  std::map<RegionId, std::unique_ptr<RegionAllocator>> allocators_;
  std::map<RegionId, RegionRef> ref_cache_;
  // Ref requests deferred while a region is blocked (section 5.3 step 1).
  std::map<RegionId, std::vector<std::pair<MachineId, uint64_t>>> deferred_refs_;

  // Coordinator-side state.
  uint64_t next_local_tx_ = 0;
  // TxId-keyed protocol state lives in ordered maps: recovery iterates these
  // (e.g. BeginTransactionStateRecovery walks inflight_) and the visit order
  // feeds message order, so it must not depend on hash layout.
  std::map<TxId, Transaction*> inflight_;
  std::map<MachineId, std::deque<TxId>> pending_truncations_;
  bool truncate_flush_armed_ = false;
  // Truncate-phase tracking: queue time + holders still awaiting dispatch,
  // so the truncate histogram measures queue-to-last-dispatch latency.
  std::map<TxId, std::pair<SimTime, int>> truncate_pending_;

  // Participant-side state.
  struct PendingTx {
    MachineId coordinator = kInvalidMachine;
    TxLogRecord lock_record;
    bool locks_held = false;
    bool applied = false;
    // Durable memory of a recovery decision (section 5.3 step 7): the
    // COMMIT-RECOVERY / ABORT-RECOVERY records the paper logs at every
    // participant. A later recovery round must re-derive the same outcome
    // even when every machine that held the deciding evidence is gone.
    bool commit_recovered = false;
    bool abort_recovered = false;
  };
  std::map<TxId, PendingTx> pending_;
  // txid -> stored log records (from, seq) for truncation.
  std::map<TxId, std::vector<std::pair<MachineId, uint64_t>>> log_index_;
  // Truncated-transaction sets per coordinator (machine, thread), compacted
  // with a low bound on the local sequence component.
  struct TruncatedSet {
    uint64_t low_bound = 0;
    std::set<uint64_t> sparse;
    void Insert(uint64_t local) {
      if (local < low_bound) {
        return;
      }
      sparse.insert(local);
      while (!sparse.empty() && *sparse.begin() == low_bound) {
        sparse.erase(sparse.begin());
        low_bound++;
      }
    }
    bool Contains(uint64_t local) const {
      return local < low_bound || sparse.count(local) != 0;
    }
  };
  std::map<std::pair<MachineId, uint16_t>, TruncatedSet> truncated_;

  // Request/reply correlation.
  uint64_t next_correlation_ = 1;
  std::map<uint64_t, Future<StatusOr<std::vector<uint8_t>>>> pending_requests_;

  // True while a power-failure restart treats every logged transaction as
  // recovering (see RestartRecovery).
  bool restart_recover_all_ = false;

  // Reconfiguration / recovery state.
  struct PendingReconfig {
    Configuration cfg;
    std::set<MachineId> ack_pending;
    Future<Unit> acks_done;
  };
  std::optional<PendingReconfig> pending_reconfig_;  // CM side
  bool reconfig_in_flight_ = false;
  // CM side: machines that asked to rejoin (joiner -> failure domain),
  // folded into the next configuration's membership.
  std::map<MachineId, int> pending_joins_;
  // Bumped by ColdRestart so a superseded join loop exits.
  uint64_t restart_epoch_ = 0;
  // Bumped by StartEvictionMonitor so superseded monitor loops exit.
  uint64_t eviction_monitor_generation_ = 0;
  std::map<RegionId, RegionRecovery> region_recovery_;
  std::map<TxId, DecisionState> decisions_;
  std::map<TxId, std::function<void()>> vote_timers_;
  std::set<RegionId> new_backup_regions_;   // to re-replicate after active
  std::set<RegionId> promoted_regions_;     // allocator free lists to rebuild
  bool regions_active_sent_ = false;
  // CM-side: REGIONS-ACTIVE collection.
  std::set<MachineId> regions_active_pending_;
  // Data recovery progress (read by benches via cluster stats).
  int data_recovery_inflight_ = 0;

  // Conflict-rate EWMA per (coordinator thread, region); only populated
  // when adaptive backoff is on. std::map keeps iteration deterministic.
  std::map<std::pair<int, RegionId>, double> conflict_ewma_;

  NodeStats stats_;
  flight::Recorder* flight_ = nullptr;
  flight::PhaseMetrics phase_metrics_;
};

}  // namespace farm

#endif  // SRC_CORE_NODE_H_
