#include "src/core/node.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rand.h"
#include "src/core/cluster.h"
#include "src/core/flight_hooks.h"
#include "src/obs/trace.h"

namespace farm {

namespace {

// Piggybacked truncation ids per log record.
constexpr size_t kMaxPiggybackTruncations = 8;

constexpr SimDuration kRefRequestTimeout = 50 * kMillisecond;
constexpr SimDuration kBlockedRegionPollInterval = 500 * kMicrosecond;

}  // namespace

void NodeStats::BindTo(metrics::Registry& reg, const std::string& node_label) {
  metrics::Labels labels = {{"node", node_label}};
  tx_committed = reg.GetCounter("tx_committed", labels);
  tx_aborted_lock = reg.GetCounter("tx_aborted_lock", labels);
  tx_aborted_validate = reg.GetCounter("tx_aborted_validate", labels);
  tx_unresolved = reg.GetCounter("tx_unresolved", labels);
  tx_recovered_commit = reg.GetCounter("tx_recovered_commit", labels);
  tx_recovered_abort = reg.GetCounter("tx_recovered_abort", labels);
  lockfree_reads = reg.GetCounter("lockfree_reads", labels);
  recovering_txs_seen = reg.GetCounter("recovering_txs_seen", labels);
  regions_rereplicated = reg.GetCounter("regions_rereplicated", labels);
  reconfigurations = reg.GetCounter("reconfigurations", labels);
  tx_backoff_waits = reg.GetCounter("tx_backoff_waits", labels);
  tx_backoff_ns = reg.GetCounter("tx_backoff_ns", labels);
}

Node::Node(Cluster* cluster, Machine* machine, NvramStore* store, NodeOptions options)
    : cluster_(cluster), machine_(machine), store_(store), options_(options) {
  // Worker threads + one dedicated lease-manager thread (section 5.1).
  FARM_CHECK(machine_->NumThreads() == options_.worker_threads + 1)
      << "machine must have worker_threads + 1 hardware threads";
  stats_.BindTo(cluster_->metrics_registry(), "m" + std::to_string(machine_->id()));
  flight_ = cluster_->flight_recorder(id());
  // All nodes bind to the same cluster-wide phase cells (labels carry no
  // node id), so dumps and bench rows see cluster totals.
  phase_metrics_.BindTo(cluster_->metrics_registry());
  options_.msgr.worker_threads = options_.worker_threads;
  messenger_ = std::make_unique<Messenger>(fabric(), *machine_, *store_, options_.msgr);
  messenger_->BindStats(cluster_->metrics_registry(), "m" + std::to_string(machine_->id()));
  messenger_->SetFlightRecorder(flight_);
  messenger_->SetHandlers(
      [this](MachineId from, uint64_t seq, const TxLogRecord& rec) {
        HandleLogRecord(from, seq, rec);
      },
      [this](MachineId from, MsgType type, std::vector<uint8_t> payload) {
        HandleMessage(from, type, std::move(payload));
      });
  lease_ = std::make_unique<LeaseManager>(this, options_.lease);
  fabric().SetDatagramHandler(id(), [this](MachineId from, std::vector<uint8_t> payload) {
    lease_->OnDatagram(from, std::move(payload));
  });
  // Probe/control word: the CM's probe read targets this (it holds
  // LastDrained, read during reconfiguration probes).
  control_block_addr_ = store_->Allocate(8);
}

Node::~Node() = default;

Simulator& Node::sim() { return cluster_->sim(); }
Fabric& Node::fabric() { return cluster_->fabric(); }

void Node::Bootstrap(const Configuration& initial) {
  config_ = initial;
  lease_->Start();
  StartEvictionMonitor();
}

void Node::ReplayNvramLogs() {
  pending_.clear();
  log_index_.clear();
  messenger_->RebuildFromNvram();
  messenger_->DrainAllNow();
}

void Node::RestartRecovery() {
  ReplayNvramLogs();
  restart_recover_all_ = true;
  BeginTransactionStateRecovery();
  restart_recover_all_ = false;
  // A power failure parks the previous monitor's in-flight awaits forever;
  // arm a fresh one so the recovered instance still polices its membership.
  StartEvictionMonitor();
}

void Node::ColdRestart() {
  restart_epoch_++;
  config_ = Configuration{};
  last_drained_ = 0;
  std::memset(store_->Data(control_block_addr_, 8), 0, 8);
  replicas_.clear();
  allocators_.clear();
  ref_cache_.clear();
  deferred_refs_.clear();
  // next_local_tx_ is deliberately NOT reset: the machine id is reused, so
  // the monotonic counter is what keeps post-restart TxIds distinct from
  // pre-restart ones (the incarnation number of a real deployment).
  inflight_.clear();
  pending_truncations_.clear();
  truncate_flush_armed_ = false;
  truncate_pending_.clear();
  pending_.clear();
  log_index_.clear();
  truncated_.clear();
  pending_requests_.clear();
  restart_recover_all_ = false;
  pending_reconfig_.reset();
  reconfig_in_flight_ = false;
  pending_joins_.clear();
  region_recovery_.clear();
  decisions_.clear();
  vote_timers_.clear();
  new_backup_regions_.clear();
  promoted_regions_.clear();
  regions_active_sent_ = false;
  regions_active_pending_.clear();
  data_recovery_inflight_ = 0;
  messenger_->Reset();
  lease_->ColdRestart();
}

void Node::BeginJoin() {
  RunJoin(restart_epoch_);
  StartEvictionMonitor();
}

RegionReplica* Node::InstallReplica(RegionId r, uint32_t size, uint32_t object_stride) {
  FARM_CHECK(replicas_.count(r) == 0);
  auto rep = std::make_unique<RegionReplica>(r, size, object_stride, store_);
  RegionReplica* ptr = rep.get();
  replicas_[r] = std::move(rep);
  if (object_stride == 0) {
    allocators_[r] = std::make_unique<RegionAllocator>(ptr, options_.block_size);
  }
  return ptr;
}

bool Node::IsPrimaryOf(RegionId r) const {
  const RegionPlacement* p = config_.Placement(r);
  return p != nullptr && p->primary == id();
}

bool Node::IsBackupOf(RegionId r) const {
  const RegionPlacement* p = config_.Placement(r);
  if (p == nullptr) {
    return false;
  }
  return std::find(p->backups.begin(), p->backups.end(), id()) != p->backups.end();
}

RegionReplica* Node::replica(RegionId r) {
  auto it = replicas_.find(r);
  return it == replicas_.end() ? nullptr : it->second.get();
}

RegionAllocator* Node::allocator(RegionId r) {
  auto it = allocators_.find(r);
  return it == allocators_.end() ? nullptr : it->second.get();
}

int Node::BlockedRegionCount() const {
  int n = 0;
  for (const auto& [rid, rep] : replicas_) {
    if (IsPrimaryOf(rid) && !rep->active()) {
      n++;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

std::unique_ptr<Transaction> Node::Begin(int thread) {
  FARM_CHECK(thread >= 0 && thread < options_.worker_threads);
  return std::make_unique<Transaction>(this, thread);
}

Task<StatusOr<std::vector<uint8_t>>> Node::LockFreeRead(GlobalAddr addr, uint32_t size,
                                                        int thread) {
  stats_.lockfree_reads++;
  for (int attempt = 0; attempt < 64; attempt++) {
    auto ref = co_await ResolveRef(addr.region, thread);
    if (!ref.ok()) {
      co_return ref.status();
    }
    uint64_t word = 0;
    std::vector<uint8_t> value;
    if (ref->primary == id()) {
      RegionReplica* rep = replica(addr.region);
      if (rep == nullptr) {
        co_return NotFoundStatus("region moved");
      }
      co_await worker(thread).Execute(fabric().cost().cpu_tx_read_local);
      word = rep->ReadHeader(addr.offset);
      const uint8_t* p = rep->Ptr(addr.offset + kObjectHeaderBytes, size);
      value.assign(p, p + size);
    } else {
      if (!InConfig(ref->primary)) {
        co_return UnavailableStatus("primary not in configuration");
      }
      NetResult r = co_await fabric().Read(id(), ref->primary, ref->base + addr.offset,
                                           kObjectHeaderBytes + size, &worker(thread));
      if (!r.status.ok()) {
        co_return r.status;
      }
      std::memcpy(&word, r.data.data(), 8);
      value.assign(r.data.begin() + 8, r.data.end());
    }
    if (!VersionWord::IsLocked(word)) {
      co_return value;
    }
    // Locked: the writer serialized already but has not exposed the update;
    // returning the old value here would violate strictness. Retry shortly.
    co_await SleepFor(sim(), 2 * kMicrosecond);
  }
  co_return AbortedStatus("object persistently locked");
}

Task<StatusOr<RegionId>> Node::CreateRegion(uint32_t size, uint32_t object_stride,
                                            RegionId colocate_with, int thread) {
  BufWriter w;
  w.PutU32(size);
  w.PutU32(object_stride);
  w.PutU32(colocate_with);
  auto reply =
      co_await Request(config_.cm, MsgType::kRegionCreate, w.Take(), thread, 100 * kMillisecond);
  if (!reply.ok()) {
    co_return reply.status();
  }
  BufReader r(*reply);
  co_return RegionId{r.GetU32()};
}

// ---------------------------------------------------------------------------
// RDMA references
// ---------------------------------------------------------------------------

Task<StatusOr<Node::RegionRef>> Node::ResolveRef(RegionId region, int thread) {
  const RegionPlacement* p = config_.Placement(region);
  if (p == nullptr) {
    co_return NotFoundStatus("unknown region");
  }
  // `p` points into config_.regions; a reconfiguration during any await below
  // reassigns config_ and frees it. Copy what we need so the pointer is dead
  // before the first suspension point.
  const MachineId primary = p->primary;
  const ConfigId last_primary_change = p->last_primary_change;
  auto it = ref_cache_.find(region);
  if (it != ref_cache_.end() && it->second.primary == primary &&
      it->second.as_of >= last_primary_change) {
    co_return it->second;
  }
  if (primary == id()) {
    // Local references are blocked while the region recovers locks
    // (section 5.3 step 1).
    for (;;) {
      RegionReplica* rep = replica(region);
      if (rep == nullptr) {
        co_return NotFoundStatus("replica not installed");
      }
      if (rep->active()) {
        break;
      }
      co_await SleepFor(sim(), kBlockedRegionPollInterval);
    }
    RegionRef ref{config_.id, id(), replica(region)->base()};
    ref_cache_[region] = ref;
    co_return ref;
  }
  if (!InConfig(primary)) {
    co_return UnavailableStatus("primary not in configuration");
  }
  BufWriter w;
  w.PutU32(region);
  auto reply =
      co_await Request(primary, MsgType::kRefRequest, w.Take(), thread, kRefRequestTimeout);
  if (!reply.ok()) {
    co_return reply.status();
  }
  BufReader rr(*reply);
  RegionRef ref{config_.id, primary, rr.GetU64()};
  ref_cache_[region] = ref;
  co_return ref;
}

Task<StatusOr<RegionAllocator::Slot>> Node::AllocSlot(RegionId region, uint32_t payload_size,
                                                      int thread) {
  const RegionPlacement* p = config_.Placement(region);
  if (p == nullptr) {
    co_return NotFoundStatus("unknown region");
  }
  // Same pattern as ResolveRef: copy the primary so `p` is dead before the
  // awaits below can outlive the configuration it points into.
  const MachineId primary = p->primary;
  if (primary == id()) {
    RegionAllocator* alloc = allocator(region);
    if (alloc == nullptr) {
      co_return Status(StatusCode::kInvalidArgument, "region is app-managed");
    }
    co_await worker(thread).Execute(fabric().cost().cpu_tx_write_buffer);
    auto slot = alloc->Reserve(payload_size);
    if (slot.ok()) {
      ShipPendingBlockHeaders(region);
    }
    co_return slot;
  }
  BufWriter w;
  w.PutU32(region);
  w.PutU32(payload_size);
  auto reply =
      co_await Request(primary, MsgType::kAllocRequest, w.Take(), thread, 50 * kMillisecond);
  if (!reply.ok()) {
    co_return reply.status();
  }
  BufReader r(*reply);
  RegionAllocator::Slot slot;
  slot.addr = GetAddr(r);
  slot.header_word = r.GetU64();
  co_return slot;
}

void Node::ReleaseAllocSlot(GlobalAddr addr, int thread) {
  const RegionPlacement* p = config_.Placement(addr.region);
  if (p == nullptr) {
    return;
  }
  if (p->primary == id()) {
    RegionAllocator* alloc = allocator(addr.region);
    if (alloc != nullptr) {
      alloc->Release(addr);
    }
    return;
  }
  if (messenger_->ConnectedTo(p->primary) && fabric().IsAlive(p->primary)) {
    BufWriter w;
    PutAddr(w, addr);
    messenger_->SendMessage(p->primary, MsgType::kAllocRelease, w.Take(), thread);
  }
}

// ---------------------------------------------------------------------------
// Coordinator bookkeeping
// ---------------------------------------------------------------------------

TxId Node::NextTxId(int thread) {
  return TxId{config_.id, id(), static_cast<uint16_t>(thread), ++next_local_tx_};
}

void Node::RegisterInflight(Transaction* tx) { inflight_[tx->id()] = tx; }

void Node::UnregisterInflight(const TxId& id) { inflight_.erase(id); }

void Node::QueueTruncation(const TxId& tx_id, const std::vector<MachineId>& holders) {
  FARM_TRACE(Instant(static_cast<uint32_t>(id()), 0, "tx", "truncate"));
  for (MachineId m : holders) {
    pending_truncations_[m].push_back(tx_id);
  }
  if (!holders.empty() && truncate_pending_.count(tx_id) == 0) {
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kPhaseBegin, tx_id,
                static_cast<uint8_t>(flight::Phase::kTruncate));
    truncate_pending_[tx_id] = {sim().Now(), static_cast<int>(holders.size())};
  }
  if (!truncate_flush_armed_) {
    truncate_flush_armed_ = true;
    sim().After(options_.truncate_flush_interval, [this]() {
      truncate_flush_armed_ = false;
      FlushTruncations();
    });
  }
}

std::vector<TxId> Node::TakeTruncationsFor(MachineId dst, size_t max) {
  std::vector<TxId> out;
  auto it = pending_truncations_.find(dst);
  if (it == pending_truncations_.end()) {
    return out;
  }
  while (!it->second.empty() && out.size() < max) {
    out.push_back(it->second.front());
    it->second.pop_front();
  }
  if (it->second.empty()) {
    pending_truncations_.erase(it);
  }
  for (const TxId& t : out) {
    TruncationDequeued(t, /*dispatched=*/true);
  }
  return out;
}

void Node::NoteLockOutcome(int thread, RegionId region, bool conflict) {
  if (!options_.adaptive_backoff) {
    return;
  }
  const double alpha = options_.backoff_ewma_alpha;
  double& ewma = conflict_ewma_[{thread, region}];
  if (conflict) {
    ewma += alpha * (1.0 - ewma);
  } else {
    ewma *= 1.0 - alpha;
    // Drop cold entries so a long run's map stays bounded by the hot set.
    if (ewma < 1e-4) {
      conflict_ewma_.erase({thread, region});
    }
  }
}

SimDuration Node::LockBackoffDelay(int thread, const TxId& id,
                                   const std::vector<RegionId>& regions) {
  if (!options_.adaptive_backoff) {
    return 0;
  }
  // The hottest region the transaction touched decides the delay.
  double hottest = 0.0;
  for (RegionId r : regions) {
    auto it = conflict_ewma_.find({thread, r});
    if (it != conflict_ewma_.end() && it->second > hottest) {
      hottest = it->second;
    }
  }
  if (hottest <= 0.01) {
    return 0;  // essentially uncontended: retry immediately
  }
  // Delay window scales with the conflict rate, bounded by backoff_max.
  // Jitter is seeded from (sim clock, tx id, thread): pure function of
  // simulation state, so same-seed runs back off identically, yet two
  // coordinators colliding at the same instant draw different delays.
  SimDuration span = static_cast<SimDuration>(
      static_cast<double>(options_.backoff_max - options_.backoff_base) * hottest);
  Pcg32 jitter(HashCombine(HashCombine(sim().Now(), id.local), id.thread),
               static_cast<uint64_t>(thread));
  SimDuration delay = options_.backoff_base + jitter.Uniform64(span + 1);
  return delay < options_.backoff_max ? delay : options_.backoff_max;
}

void Node::TruncationDequeued(const TxId& tx_id, bool dispatched) {
  auto it = truncate_pending_.find(tx_id);
  if (it == truncate_pending_.end()) {
    return;
  }
  if (--it->second.second > 0) {
    return;
  }
  if (dispatched) {
    phase_metrics_.RecordPhase(flight::Phase::kTruncate, sim().Now() - it->second.first);
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kPhaseEnd, tx_id,
                static_cast<uint8_t>(flight::Phase::kTruncate));
  }
  truncate_pending_.erase(it);
}

void Node::FlushTruncations() {
  // Writes explicit TRUNCATE records for ids that found no carrier record
  // (needed for liveness when traffic to a peer stops; section 4).
  std::vector<MachineId> peers;
  peers.reserve(pending_truncations_.size());
  for (const auto& [m, q] : pending_truncations_) {
    (void)q;
    peers.push_back(m);
  }
  for (MachineId m : peers) {
    if (!InConfig(m) || !fabric().IsAlive(m)) {
      for (const TxId& t : pending_truncations_[m]) {
        TruncationDequeued(t, /*dispatched=*/false);
      }
      pending_truncations_.erase(m);
      continue;
    }
    TxLogRecord rec;
    rec.type = LogRecordType::kTruncate;
    rec.truncate_ids = TakeTruncationsFor(m, kMaxPiggybackTruncations);
    if (rec.truncate_ids.empty()) {
      continue;
    }
    uint32_t len = static_cast<uint32_t>(rec.SerializedSize());
    if (!messenger_->ReserveLog(m, len)) {
      // Log full; requeue and retry on the next flush.
      for (const TxId& t : rec.truncate_ids) {
        pending_truncations_[m].push_back(t);
      }
      continue;
    }
    (void)messenger_->AppendLog(m, rec, len, 0);
  }
  if (!pending_truncations_.empty() && !truncate_flush_armed_) {
    truncate_flush_armed_ = true;
    sim().After(options_.truncate_flush_interval, [this]() {
      truncate_flush_armed_ = false;
      FlushTruncations();
    });
  }
}

// ---------------------------------------------------------------------------
// Request / reply plumbing
// ---------------------------------------------------------------------------

Task<StatusOr<std::vector<uint8_t>>> Node::Request(MachineId dst, MsgType type,
                                                   std::vector<uint8_t> body, int thread,
                                                   SimDuration timeout) {
  if (!messenger_->ConnectedTo(dst)) {
    co_return UnavailableStatus("no channel to machine");
  }
  uint64_t correlation = next_correlation_++;
  BufWriter w;
  w.PutU64(correlation);
  w.Append(body.data(), body.size());
  Future<StatusOr<std::vector<uint8_t>>> fut;
  pending_requests_.emplace(correlation, fut);
  messenger_->SendMessage(dst, type, w.Take(), thread);
  auto result = co_await AwaitWithTimeout(sim(), fut, timeout);
  pending_requests_.erase(correlation);
  if (!result.has_value()) {
    co_return Status(StatusCode::kTimedOut, "request timed out");
  }
  co_return std::move(*result);
}

void Node::Respond(MachineId dst, uint64_t correlation, Status status,
                   std::vector<uint8_t> body, int thread) {
  BufWriter w;
  w.PutU64(correlation);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.Append(body.data(), body.size());
  messenger_->SendMessage(dst, MsgType::kReply, w.Take(), thread);
}

// ---------------------------------------------------------------------------
// Log record processing (participant side)
// ---------------------------------------------------------------------------

void Node::HandleLogRecord(MachineId from, uint64_t seq, const TxLogRecord& rec) {
  // `rec` references the messenger's stored copy, which TruncateLogRecord
  // erases; copy the piggybacked ids before any truncation can run.
  std::vector<TxId> piggyback = rec.truncate_ids;

  // Records from configurations already drained are rejected if their
  // transaction is recovering -- recovery owns its outcome (section 5.3).
  if (rec.type != LogRecordType::kTruncate && rec.tx.config <= last_drained_ &&
      rec.tx.config < config_.id && IsRecoveringTx(rec, config_)) {
    messenger_->TruncateLogRecord(from, seq);
    for (const TxId& t : piggyback) {
      ProcessTruncation(from, t);
    }
    return;
  }

  if (rec.type != LogRecordType::kTruncate) {
    log_index_[rec.tx].push_back({from, seq});
  }

  switch (rec.type) {
    case LogRecordType::kLock:
      ProcessLock(from, seq, rec);
      break;
    case LogRecordType::kCommitBackup:
      // No foreground CPU work at backups: the record just sits in the
      // non-volatile log until truncation applies it (section 4).
      FlightLogTx(flight_, sim().Now(), flight::EventKind::kCommitBackupRecord, rec.tx,
                  0, from);
      break;
    case LogRecordType::kCommitPrimary:
      ProcessCommitPrimary(from, rec);
      break;
    case LogRecordType::kAbort:
      ProcessAbort(from, rec);
      break;
    case LogRecordType::kTruncate:
      messenger_->TruncateLogRecord(from, seq);
      break;
  }
  for (const TxId& t : piggyback) {
    ProcessTruncation(from, t);
  }
}

void Node::ProcessLock(MachineId from, uint64_t seq, const TxLogRecord& rec) {
  (void)seq;
  LogTxScope log_tx(rec.tx.config, rec.tx.machine, rec.tx.thread, rec.tx.local);
  // The NSDI'14-protocol ablation also writes LOCK records to backups; a
  // backup just stores the record (no CAS, no reply) -- replies come only
  // from primaries in either protocol.
  bool any_primary = false;
  for (const WireWrite& w : rec.writes) {
    if (IsPrimaryOf(w.addr.region)) {
      any_primary = true;
      break;
    }
  }
  if (!any_primary) {
    return;
  }
  HwThread& worker_thread = machine_->thread(static_cast<int>(
      from % static_cast<MachineId>(options_.worker_threads)));
  PendingTx pending;
  pending.coordinator = from;
  pending.lock_record = rec;

  // Precise membership (section 3): reject lock requests from coordinators
  // outside our configuration -- e.g. a machine evicted by a partition that
  // is still running on a stale configuration. The failed lock reply makes
  // it abort cleanly.
  if (!config_.Contains(from)) {
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kLockReject, rec.tx,
                /*arg=*/1, from);
    BufWriter rej;
    PutTxId(rej, rec.tx);
    rej.PutU8(0);
    messenger_->SendMessage(from, MsgType::kLockReply, rej.Take(), -1);
    return;
  }

  bool ok = true;
  RegionId conflict_region = 0;
  std::vector<const WireWrite*> locked;
  for (const WireWrite& w : rec.writes) {
    RegionReplica* rep = replica(w.addr.region);
    if (rep == nullptr || !IsPrimaryOf(w.addr.region) || !rep->active()) {
      ok = false;
      conflict_region = w.addr.region;
      break;
    }
    worker_thread.InjectBusy(fabric().cost().cpu_lock_per_object);
    uint64_t expected = w.ExpectedWord();
    uint64_t desired = VersionWord::WithLock(expected);
    if (!rep->CasHeader(w.addr.offset, expected, desired)) {
      ok = false;
      conflict_region = w.addr.region;
      break;
    }
    locked.push_back(&w);
  }
  if (!ok) {
    // Roll back the locks taken by this record and report failure; the
    // coordinator will write an ABORT record.
    for (const WireWrite* w : locked) {
      RegionReplica* rep = replica(w->addr.region);
      rep->WriteHeader(w->addr.offset, w->ExpectedWord());
    }
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kLockReject, rec.tx,
                /*arg=*/0, conflict_region);
  } else {
    pending.locks_held = true;
    pending_[rec.tx] = std::move(pending);
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kLockAcquire, rec.tx,
                static_cast<uint8_t>(rec.writes.size() > 255 ? 255 : rec.writes.size()),
                rec.writes.empty() ? 0 : rec.writes.front().addr.region);
  }

  BufWriter w;
  PutTxId(w, rec.tx);
  w.PutU8(ok ? 1 : 0);
  messenger_->SendMessage(from, MsgType::kLockReply, w.Take(), -1);
}

void Node::ApplyWriteAtPrimary(const WireWrite& w) {
  RegionReplica* rep = replica(w.addr.region);
  FARM_CHECK(rep != nullptr);
  uint64_t word = VersionWord::Pack(w.expected_version + 1, w.AllocAfter(), false);
  rep->WriteData(w.addr.offset, w.value.data(), static_cast<uint32_t>(w.value.size()));
  rep->WriteHeader(w.addr.offset, word);
  if (w.clear_alloc) {
    RegionAllocator* alloc = allocator(w.addr.region);
    if (alloc != nullptr) {
      alloc->OnFreeCommitted(w.addr);
    }
  }
}

void Node::ApplyWriteAtBackup(const WireWrite& w) {
  RegionReplica* rep = replica(w.addr.region);
  if (rep == nullptr) {
    return;  // placement changed; data recovery will bring us up to date
  }
  uint64_t current = rep->ReadHeader(w.addr.offset);
  uint64_t new_version = w.expected_version + 1;
  if (VersionWord::Version(current) >= new_version) {
    return;  // a newer transaction already applied here
  }
  rep->WriteData(w.addr.offset, w.value.data(), static_cast<uint32_t>(w.value.size()));
  rep->WriteHeader(w.addr.offset, VersionWord::Pack(new_version, w.AllocAfter(), false));
}

void Node::ProcessCommitPrimary(MachineId from, const TxLogRecord& rec) {
  LogTxScope log_tx(rec.tx.config, rec.tx.machine, rec.tx.thread, rec.tx.local);
  auto it = pending_.find(rec.tx);
  if (it == pending_.end() || !it->second.locks_held || it->second.applied) {
    return;  // already handled (possibly by recovery)
  }
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kCommitPrimaryRecord, rec.tx, 0, from);
  HwThread& worker_thread = machine_->thread(static_cast<int>(
      rec.tx.machine % static_cast<MachineId>(options_.worker_threads)));
  for (const WireWrite& w : it->second.lock_record.writes) {
    worker_thread.InjectBusy(fabric().cost().cpu_lock_per_object);
    ApplyWriteAtPrimary(w);
  }
  it->second.applied = true;
  it->second.locks_held = false;
}

void Node::ProcessAbort(MachineId from, const TxLogRecord& rec) {
  LogTxScope log_tx(rec.tx.config, rec.tx.machine, rec.tx.thread, rec.tx.local);
  auto it = pending_.find(rec.tx);
  if (it == pending_.end()) {
    return;
  }
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kAbortRecord, rec.tx, 0, from);
  if (it->second.locks_held && !it->second.applied) {
    for (const WireWrite& w : it->second.lock_record.writes) {
      RegionReplica* rep = replica(w.addr.region);
      if (rep != nullptr) {
        rep->WriteHeader(w.addr.offset, w.ExpectedWord());
      }
    }
    it->second.locks_held = false;
  }
}

void Node::RecordTruncated(const TxId& id) {
  truncated_[{id.machine, id.thread}].Insert(id.local);
}

bool Node::WasTruncated(const TxId& id) const {
  auto it = truncated_.find({id.machine, id.thread});
  return it != truncated_.end() && it->second.Contains(id.local);
}

void Node::ProcessTruncation(MachineId from, const TxId& id, bool apply_backup_writes) {
  FlightLogTx(flight_, sim().Now(), flight::EventKind::kTruncateRecord, id, 0, from);
  RecordTruncated(id);
  auto it = log_index_.find(id);
  if (it != log_index_.end()) {
    for (const auto& [m, seq] : it->second) {
      // Backups apply the buffered updates to their region copies at
      // truncation time (section 4, step 5).
      const TxLogRecord* rec = messenger_->GetStoredLog(m, seq);
      if (apply_backup_writes && rec != nullptr &&
          rec->type == LogRecordType::kCommitBackup) {
        HwThread& worker_thread = machine_->thread(static_cast<int>(
            m % static_cast<MachineId>(options_.worker_threads)));
        for (const WireWrite& w : rec->writes) {
          worker_thread.InjectBusy(fabric().cost().cpu_lock_per_object);
          ApplyWriteAtBackup(w);
        }
      }
      messenger_->TruncateLogRecord(m, seq);
    }
    log_index_.erase(it);
  }
  auto pit = pending_.find(id);
  if (pit != pending_.end()) {
    pending_.erase(pit);
  }
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void Node::HandleMessage(MachineId from, MsgType type, std::vector<uint8_t> payload) {
  BufReader r(payload);
  switch (type) {
    case MsgType::kLockReply: {
      TxId tx_id = GetTxId(r);
      bool ok = r.GetU8() != 0;
      auto it = inflight_.find(tx_id);
      if (it != inflight_.end()) {
        it->second->OnLockReply(from, ok);
      }
      break;
    }
    case MsgType::kValidate:
      HandleValidate(from, r);
      break;
    case MsgType::kValidateReply: {
      TxId tx_id = GetTxId(r);
      bool ok = r.GetU8() != 0;
      auto it = inflight_.find(tx_id);
      if (it != inflight_.end()) {
        it->second->OnValidateReply(from, ok);
      }
      break;
    }
    case MsgType::kReply: {
      uint64_t correlation = r.GetU64();
      auto code = static_cast<StatusCode>(r.GetU8());
      std::vector<uint8_t> body(payload.begin() + 9, payload.end());
      auto it = pending_requests_.find(correlation);
      if (it != pending_requests_.end()) {
        auto fut = it->second;
        pending_requests_.erase(it);
        if (code == StatusCode::kOk) {
          fut.Set(std::move(body));
        } else {
          fut.Set(Status(code, "remote error"));
        }
      }
      break;
    }
    case MsgType::kAllocRequest:
      HandleAllocRequest(from, r);
      break;
    case MsgType::kAllocRelease: {
      GlobalAddr addr = GetAddr(r);
      RegionAllocator* alloc = allocator(addr.region);
      if (alloc != nullptr && IsPrimaryOf(addr.region)) {
        alloc->Release(addr);
      }
      break;
    }
    case MsgType::kRefRequest:
      HandleRefRequest(from, r);
      break;
    case MsgType::kBlockHeader:
      HandleBlockHeader(from, r);
      break;
    case MsgType::kRegionCreate:
      HandleRegionCreate(from, r);
      break;
    case MsgType::kRegionPrepare: {
      uint64_t correlation = r.GetU64();
      RegionId rid = r.GetU32();
      uint32_t size = r.GetU32();
      uint32_t stride = r.GetU32();
      if (replicas_.count(rid) == 0) {
        InstallReplica(rid, size, stride);
      }
      Respond(from, correlation, OkStatus(), {}, -1);
      break;
    }
    case MsgType::kRegionCommit: {
      // Mapping activation is carried by the kRegionCreateReply broadcast.
      break;
    }
    case MsgType::kRegionCreateReply: {
      // CM broadcast: new region mapping.
      RegionId rid = r.GetU32();
      RegionPlacement p;
      p.primary = r.GetU32();
      uint32_t nb = r.GetU32();
      for (uint32_t i = 0; i < nb; i++) {
        p.backups.push_back(r.GetU32());
      }
      p.size = r.GetU32();
      p.last_primary_change = r.GetU64();
      p.last_replica_change = r.GetU64();
      p.colocate_with = r.GetU32();
      p.object_stride = r.GetU32();
      config_.regions[rid] = p;
      if (rid >= config_.next_region_id) {
        config_.next_region_id = rid + 1;
      }
      break;
    }
    case MsgType::kRegionsActive:
      HandleRegionsActive(from, r);
      break;
    case MsgType::kAllRegionsActive:
      OnAllRegionsActive();
      break;
    case MsgType::kReconfigRequest: {
      MachineId suspect = r.GetU32();
      StartReconfiguration({suspect}, "reconfig request");
      break;
    }
    case MsgType::kJoinRequest:
      HandleJoinRequest(from, r);
      break;
    case MsgType::kNewConfig: {
      Configuration cfg = Configuration::Parse(r);
      OnNewConfig(from, std::move(cfg));
      break;
    }
    case MsgType::kNewConfigAck: {
      ConfigId cid = r.GetU64();
      OnNewConfigAck(from, cid);
      break;
    }
    case MsgType::kNewConfigCommit: {
      ConfigId cid = r.GetU64();
      OnNewConfigCommit(cid);
      break;
    }
    case MsgType::kNeedRecovery:
      HandleNeedRecovery(from, r);
      break;
    case MsgType::kFetchTxState:
      // The reply (SEND-TX-STATE) travels as a generic correlated kReply.
      HandleFetchTxState(from, r);
      break;
    case MsgType::kReplicateTxState:
      HandleReplicateTxState(from, r);
      break;
    case MsgType::kReplicateTxStateAck:
      HandleReplicateTxStateAck(from, r);
      break;
    case MsgType::kRecoveryVote:
      HandleRecoveryVote(from, r);
      break;
    case MsgType::kRequestVote:
      HandleRequestVote(from, r);
      break;
    case MsgType::kCommitRecovery:
    case MsgType::kAbortRecovery:
      HandleRecoveryDecision(from, type, r);
      break;
    case MsgType::kRecoveryDecisionAck: {
      TxId tx_id = GetTxId(r);
      OnRecoveryDecisionAck(from, tx_id);
      break;
    }
    case MsgType::kTruncateRecovery:
      HandleTruncateRecovery(from, r);
      break;
    case MsgType::kLeaseMsg:
      lease_->OnRingMessage(from, std::move(payload));
      break;
    default:
      FARM_LOG(Warn) << "node " << id() << ": unhandled message type "
                     << static_cast<int>(type);
  }
}

void Node::HandleValidate(MachineId from, BufReader& r) {
  TxId tx_id = GetTxId(r);
  LogTxScope log_tx(tx_id.config, tx_id.machine, tx_id.thread, tx_id.local);
  uint32_t n = r.GetU32();
  bool ok = true;
  RegionId fail_region = 0;
  for (uint32_t i = 0; i < n; i++) {
    GlobalAddr addr = GetAddr(r);
    uint64_t word = r.GetU64();
    RegionReplica* rep = replica(addr.region);
    if (rep == nullptr || !IsPrimaryOf(addr.region)) {
      ok = false;
      fail_region = addr.region;
      continue;
    }
    uint64_t current = rep->ReadHeader(addr.offset);
    if (current != word) {  // version moved, alloc changed, or locked
      ok = false;
      fail_region = addr.region;
    }
  }
  if (!ok) {
    FlightLogTx(flight_, sim().Now(), flight::EventKind::kValidateFail, tx_id, 0,
                fail_region);
  }
  BufWriter w;
  PutTxId(w, tx_id);
  w.PutU8(ok ? 1 : 0);
  messenger_->SendMessage(from, MsgType::kValidateReply, w.Take(), -1);
}

void Node::HandleAllocRequest(MachineId from, BufReader& r) {
  uint64_t correlation = r.GetU64();
  RegionId rid = r.GetU32();
  uint32_t size = r.GetU32();
  RegionAllocator* alloc = allocator(rid);
  if (alloc == nullptr || !IsPrimaryOf(rid)) {
    Respond(from, correlation, NotFoundStatus("not primary"), {}, -1);
    return;
  }
  auto slot = alloc->Reserve(size);
  if (!slot.ok()) {
    Respond(from, correlation, slot.status(), {}, -1);
    return;
  }
  ShipPendingBlockHeaders(rid);
  BufWriter w;
  PutAddr(w, slot->addr);
  w.PutU64(slot->header_word);
  Respond(from, correlation, OkStatus(), w.Take(), -1);
}

void Node::HandleRefRequest(MachineId from, BufReader& r) {
  uint64_t correlation = r.GetU64();
  RegionId rid = r.GetU32();
  RegionReplica* rep = replica(rid);
  if (rep == nullptr || !IsPrimaryOf(rid)) {
    Respond(from, correlation, NotFoundStatus("not primary"), {}, -1);
    return;
  }
  if (!rep->active()) {
    // Deferred until lock recovery completes (section 5.3 step 4).
    deferred_refs_[rid].push_back({from, correlation});
    return;
  }
  BufWriter w;
  w.PutU64(rep->base());
  Respond(from, correlation, OkStatus(), w.Take(), -1);
}

void Node::HandleBlockHeader(MachineId from, BufReader& r) {
  (void)from;
  RegionId rid = r.GetU32();
  uint32_t n = r.GetU32();
  RegionAllocator* alloc = allocator(rid);
  for (uint32_t i = 0; i < n; i++) {
    RegionAllocator::BlockHeader h;
    h.block_index = r.GetU32();
    h.slot_payload = r.GetU32();
    if (alloc != nullptr) {
      alloc->InstallBlockHeader(h);
    }
  }
}

void Node::ShipPendingBlockHeaders(RegionId rid) {
  RegionAllocator* alloc = allocator(rid);
  if (alloc == nullptr) {
    return;
  }
  auto headers = alloc->TakePendingBlockHeaders();
  if (headers.empty()) {
    return;
  }
  const RegionPlacement* p = config_.Placement(rid);
  if (p == nullptr) {
    return;
  }
  BufWriter w;
  w.PutU32(rid);
  w.PutU32(static_cast<uint32_t>(headers.size()));
  for (const auto& h : headers) {
    w.PutU32(h.block_index);
    w.PutU32(h.slot_payload);
  }
  std::vector<uint8_t> msg = w.Take();
  for (MachineId b : p->backups) {
    if (b != id()) {
      messenger_->SendMessage(b, MsgType::kBlockHeader, msg, -1);
    }
  }
}

}  // namespace farm
