// Lease-based failure detection (section 5.1).
//
// Every machine holds a lease at the CM and the CM holds a lease at every
// machine, granted by a 3-way handshake and renewed every 1/5 of the expiry
// period. Expiry of any lease triggers reconfiguration.
//
// Four implementations are modeled (Figure 16):
//   kRpc              - lease messages share the data-plane message queues
//                       and are processed on busy worker threads.
//   kUdShared         - unreliable datagrams, still handled on a worker.
//   kUdDedicated      - datagrams handled on the dedicated lease thread at
//                       normal priority (subject to preemption noise).
//   kUdDedicatedHighPri - dedicated thread, interrupt-driven at the highest
//                       user-space priority: immune to preemption noise but
//                       paying interrupt latency and system-timer quantization.
#ifndef SRC_CORE_LEASE_H_
#define SRC_CORE_LEASE_H_

#include <cstdint>
#include <map>

#include "src/common/rand.h"
#include "src/sim/machine.h"
#include "src/sim/task.h"

namespace farm {

class Node;

enum class LeaseImpl : uint8_t {
  kRpc = 0,
  kUdShared = 1,
  kUdDedicated = 2,
  kUdDedicatedHighPri = 3,
};

struct LeaseOptions {
  SimDuration duration = 10 * kMillisecond;
  LeaseImpl impl = LeaseImpl::kUdDedicatedHighPri;
  SimDuration timer_resolution = 500 * kMicrosecond;  // system timer granularity
  SimDuration interrupt_latency = 3 * kMicrosecond;   // interrupt-driven wakeup cost
  SimDuration process_cost = 400;                     // CPU ns per lease message
  // When false, expiries are only counted (Figure 16's methodology disables
  // recovery and measures false positives).
  bool trigger_recovery = true;
};

class LeaseManager {
 public:
  LeaseManager(Node* node, LeaseOptions options);

  void Start();
  // Reconfiguration resets the lease protocol (NEW-CONFIG acts as a lease
  // request from a new CM).
  void OnNewConfig();
  // Process restart with empty state: kill stale timer chains and forget
  // granted leases. Timers re-arm when the node adopts a configuration.
  void ColdRestart() {
    epoch_++;
    expiry_.clear();
  }

  // Entry points from the transports.
  void OnDatagram(MachineId from, std::vector<uint8_t> payload);
  void OnRingMessage(MachineId from, std::vector<uint8_t> payload);

  // Benchmark knobs: background OS activity preempting the (normal
  // priority) lease thread.
  void SetPreemptionNoise(double events_per_sec, SimDuration burst);

  // Chaos injection: expire the lease held for `peer` right now, as if every
  // renewal in the period had been lost, and run the expiry check. No-op if
  // no lease for `peer` is held (e.g. this node is not the CM and peer is
  // not its CM).
  void ForceExpiry(MachineId peer);

  uint64_t expiry_events() const { return expiry_events_; }
  const LeaseOptions& options() const { return options_; }
  void set_duration(SimDuration d) { options_.duration = d; }

 private:
  // Handshake steps.
  static constexpr uint8_t kStepRequest = 1;     // machine -> CM
  static constexpr uint8_t kStepGrantRequest = 2;  // CM -> machine
  static constexpr uint8_t kStepGrant = 3;       // machine -> CM

  int ProcessingThread() const;
  SimTime Quantize(SimTime t) const;
  void Send(MachineId dst, uint8_t step);
  void Process(MachineId from, uint8_t step);
  void ScheduleRenewTimer();
  void ScheduleExpiryTimer();
  void ScheduleNoise();
  void CheckExpiries();

  Node* node_;
  LeaseOptions options_;
  bool started_ = false;
  uint64_t epoch_ = 0;  // bumped on config change; stale timers drop out
  std::map<MachineId, SimTime> expiry_;  // CM: all members; member: {cm}
  uint64_t expiry_events_ = 0;
  double noise_rate_ = 0.0;
  SimDuration noise_burst_ = 0;
  Pcg32 noise_rng_{0x1ea5e};
};

}  // namespace farm

#endif  // SRC_CORE_LEASE_H_
