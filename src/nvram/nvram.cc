#include "src/nvram/nvram.h"

#include "src/common/logging.h"

namespace farm {

uint64_t NvramStore::Allocate(size_t len) {
  FARM_CHECK(len > 0);
  uint64_t base = next_addr_;
  auto seg = std::make_unique<Segment>();
  seg->base = base;
  seg->bytes.assign(len, 0);
  segments_[base] = std::move(seg);
  uint64_t advance = (len + kAlign - 1) / kAlign * kAlign;
  next_addr_ = base + advance;
  return base;
}

NvramStore::Segment* NvramStore::Find(uint64_t addr, size_t len) {
  if (segments_.empty() || len == 0) {
    return nullptr;
  }
  auto it = segments_.upper_bound(addr);
  if (it == segments_.begin()) {
    return nullptr;
  }
  --it;
  Segment* seg = it->second.get();
  if (addr < seg->base || addr + len > seg->base + seg->bytes.size()) {
    return nullptr;
  }
  return seg;
}

uint8_t* NvramStore::Data(uint64_t addr, size_t len) {
  Segment* seg = Find(addr, len);
  return seg == nullptr ? nullptr : seg->bytes.data() + (addr - seg->base);
}

const uint8_t* NvramStore::Data(uint64_t addr, size_t len) const {
  return const_cast<NvramStore*>(this)->Data(addr, len);
}

bool NvramStore::RdmaRead(uint64_t addr, size_t len, uint8_t* out) {
  uint8_t* p = Data(addr, len);
  if (p == nullptr) {
    return false;
  }
  std::memcpy(out, p, len);
  return true;
}

bool NvramStore::RdmaWrite(uint64_t addr, const uint8_t* data, size_t len) {
  uint8_t* p = Data(addr, len);
  if (p == nullptr) {
    return false;
  }
  if (torn_armed_) {
    torn_armed_ = false;
    torn_writes_++;
    std::memcpy(p, data, torn_keep_ < len ? torn_keep_ : len);
    return true;
  }
  std::memcpy(p, data, len);
  return true;
}

bool NvramStore::RdmaCas(uint64_t addr, uint64_t expected, uint64_t desired, uint64_t* observed) {
  uint8_t* p = Data(addr, 8);
  if (p == nullptr || (addr & 7) != 0) {
    return false;
  }
  uint64_t current;
  std::memcpy(&current, p, 8);
  *observed = current;
  if (current == expected) {
    std::memcpy(p, &desired, 8);
  }
  return true;
}

}  // namespace farm
