// Distributed-UPS energy model (section 2.1, Figure 1).
//
// On power failure the UPS battery powers the machine while DRAM contents
// are written to 1..N commodity SSDs. The paper measured ~110 J/GB with one
// SSD, ~90 J of which powers the two CPU sockets for the duration of the
// save; additional SSDs shorten the save and therefore the CPU energy.
#ifndef SRC_NVRAM_ENERGY_MODEL_H_
#define SRC_NVRAM_ENERGY_MODEL_H_

namespace farm {

struct UpsEnergyModel {
  double cpu_power_watts = 90.0;      // both sockets during the save
  double ssd_power_watts = 20.0;      // per SSD at full write rate
  double ssd_write_gb_per_sec = 1.0;  // sustained sequential write, per SSD
  double dollars_per_joule = 0.005;   // Li-ion LES provisioning cost
  double ssd_reserve_dollars_per_gb = 0.90;

  // Seconds to save `gb` gigabytes striped over num_ssds SSDs.
  double SaveSeconds(double gb, int num_ssds) const {
    return gb / (ssd_write_gb_per_sec * static_cast<double>(num_ssds));
  }

  // Joules to save `gb` gigabytes (CPU idle power + SSD write power).
  double SaveJoules(double gb, int num_ssds) const {
    double secs = SaveSeconds(gb, num_ssds);
    return secs * (cpu_power_watts + ssd_power_watts * static_cast<double>(num_ssds));
  }

  double JoulesPerGb(int num_ssds) const { return SaveJoules(1.0, num_ssds); }

  // Battery cost per GB of protected DRAM (worst case: provisioning energy).
  double BatteryDollarsPerGb(int num_ssds) const {
    return JoulesPerGb(num_ssds) * dollars_per_joule;
  }

  // Total additional cost of non-volatility per GB (battery + SSD reserve).
  double TotalDollarsPerGb(int num_ssds) const {
    return BatteryDollarsPerGb(num_ssds) + ssd_reserve_dollars_per_gb;
  }
};

}  // namespace farm

#endif  // SRC_NVRAM_ENERGY_MODEL_H_
