// Non-volatile DRAM store.
//
// Each machine owns one NvramStore holding all its RDMA-registered memory:
// region replicas, transaction logs, and message queues. The store exposes a
// flat 64-bit address space (addresses are what remote machines use in
// one-sided verbs) plus direct pointers for local access.
//
// Non-volatility: the store object is owned by the test/bench harness, not
// by the simulated Machine, so its contents survive Machine::Reboot() --
// modeling the distributed-UPS save/restore path of section 2.1. A Kill()ed
// machine never rejoins, so its NVRAM is simply unreachable.
#ifndef SRC_NVRAM_NVRAM_H_
#define SRC_NVRAM_NVRAM_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/net/rdma_memory.h"

namespace farm {

class NvramStore : public RdmaMemory {
 public:
  NvramStore() = default;
  NvramStore(const NvramStore&) = delete;
  NvramStore& operator=(const NvramStore&) = delete;

  // Allocates a zeroed, registered range; returns its base address.
  // Ranges are never recycled (region placement changes allocate anew).
  uint64_t Allocate(size_t len);

  // Direct pointer for local CPU access. The range must lie inside one
  // allocation. Returns nullptr if unregistered.
  uint8_t* Data(uint64_t addr, size_t len);
  const uint8_t* Data(uint64_t addr, size_t len) const;

  // Total registered bytes.
  uint64_t allocated_bytes() const { return next_addr_ - kBaseAddr; }

  // RdmaMemory implementation (what the simulated NIC executes).
  bool RdmaRead(uint64_t addr, size_t len, uint8_t* out) override;
  bool RdmaWrite(uint64_t addr, const uint8_t* data, size_t len) override;
  bool RdmaCas(uint64_t addr, uint64_t expected, uint64_t desired, uint64_t* observed) override;

  // ---- torn-write injection (chaos) ----
  // Arms a one-shot torn write: the NEXT RdmaWrite persists only its first
  // min(keep_bytes, len) bytes and then disarms, modeling power loss or a
  // crash cutting a DMA short. The write still reports success -- NVRAM has
  // no idea it is missing the suffix; detecting the tear is the log
  // format's job (per-frame checksums in src/core/ringlog).
  void ArmTornWrite(uint32_t keep_bytes) {
    torn_armed_ = true;
    torn_keep_ = keep_bytes;
  }
  bool torn_armed() const { return torn_armed_; }
  uint64_t torn_writes() const { return torn_writes_; }

 private:
  struct Segment {
    uint64_t base;
    std::vector<uint8_t> bytes;
  };

  // Finds the segment containing [addr, addr+len), or nullptr.
  Segment* Find(uint64_t addr, size_t len);

  static constexpr uint64_t kBaseAddr = 0x1000;  // 0 stays invalid
  static constexpr uint64_t kAlign = 64;

  uint64_t next_addr_ = kBaseAddr;
  // Keyed by base address; segments are non-overlapping and sorted.
  std::map<uint64_t, std::unique_ptr<Segment>> segments_;

  bool torn_armed_ = false;
  uint32_t torn_keep_ = 0;
  uint64_t torn_writes_ = 0;
};

}  // namespace farm

#endif  // SRC_NVRAM_NVRAM_H_
