#include "src/zk/coord.h"

#include "src/common/serde.h"

namespace farm {

namespace {

constexpr uint8_t kOpLocalGet = 4;  // internal: read replica-local state

enum class WireStatus : uint8_t {
  kOk = 0,
  kNotLeader = 1,
  kPrecondition = 2,
  kUnavailable = 3,
};

constexpr SimDuration kZkRpcTimeout = 2 * kMillisecond;

}  // namespace

CoordinationService::CoordinationService(Fabric& fabric, std::vector<MachineId> replicas)
    : fabric_(fabric), replicas_(std::move(replicas)) {
  FARM_CHECK(!replicas_.empty());
  state_.resize(replicas_.size());
  // The initial leader starts synced (nothing to recover at time zero).
  state_[0].synced = true;
  for (size_t i = 0; i < replicas_.size(); i++) {
    state_[i].id = replicas_[i];
    Machine* m = fabric_.machine(replicas_[i]);
    int hi = m->NumThreads() - 1;
    fabric_.RegisterRpcService(
        replicas_[i], kZkServiceId, 0, hi,
        [this, i](MachineId from, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
          HandleRpc(i, from, std::move(req), std::move(reply));
        });
  }
}

int CoordinationService::LeaderIndex() const {
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (fabric_.IsAlive(replicas_[i])) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void CoordinationService::HandleRpc(size_t replica_idx, MachineId from,
                                    std::vector<uint8_t> req, Fabric::ReplyFn reply) {
  (void)from;
  Replica& rep = state_[replica_idx];
  BufReader r(req);
  uint8_t op = r.GetU8();

  if (op == kOpLocalGet) {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(WireStatus::kOk));
    w.PutU64(rep.value.version);
    w.PutBytes(rep.value.data.data(), rep.value.data.size());
    reply(w.Take());
    return;
  }

  if (op == static_cast<uint8_t>(Op::kReplicate)) {
    uint64_t version = r.GetU64();
    auto data = r.GetBytes();
    if (version > rep.value.version) {
      rep.value.version = version;
      rep.value.data = std::move(data);
    }
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(WireStatus::kOk));
    reply(w.Take());
    return;
  }

  // Leadership check from this replica's viewpoint: the lowest-indexed
  // replica that is alive and reachable from here.
  int my_leader = -1;
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (fabric_.IsAlive(replicas_[i]) && fabric_.Reachable(replicas_[replica_idx], replicas_[i])) {
      my_leader = static_cast<int>(i);
      break;
    }
  }
  if (my_leader != static_cast<int>(replica_idx)) {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(WireStatus::kNotLeader));
    reply(w.Take());
    return;
  }

  auto serve = [this, replica_idx, op, req = std::move(req), reply]() mutable {
    Replica& me = state_[replica_idx];
    if (!me.synced) {
      BufWriter w;
      w.PutU8(static_cast<uint8_t>(WireStatus::kUnavailable));
      reply(w.Take());
      return;
    }
    if (op == static_cast<uint8_t>(Op::kRead)) {
      BufWriter w;
      w.PutU8(static_cast<uint8_t>(WireStatus::kOk));
      w.PutU64(me.value.version);
      w.PutBytes(me.value.data.data(), me.value.data.size());
      reply(w.Take());
      return;
    }
    if (op == static_cast<uint8_t>(Op::kCas)) {
      ProcessCas(replica_idx, std::move(req), std::move(reply));
      return;
    }
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(WireStatus::kUnavailable));
    reply(w.Take());
  };

  if (!rep.synced) {
    SyncAndServe(replica_idx, std::move(serve));
  } else {
    serve();
  }
}

Detached CoordinationService::SyncAndServe(size_t replica_idx, std::function<void()> then) {
  // farmlint: allow(await-hazard): state_ is sized once at construction and
  // never resized, so references into it survive every suspension here.
  Replica& rep = state_[replica_idx];
  size_t total = replicas_.size();
  size_t majority = total / 2 + 1;

  BufWriter w;
  w.PutU8(kOpLocalGet);
  std::vector<uint8_t> msg = w.Take();

  auto best = std::make_shared<ZnodeValue>(rep.value);
  auto responses = std::make_shared<size_t>(1);  // self
  WaitGroup wg;
  for (size_t i = 0; i < total; i++) {
    if (i == replica_idx || !fabric_.IsAlive(replicas_[i]) ||
        !fabric_.Reachable(rep.id, replicas_[i])) {
      continue;  // a dead/unreachable replica would only delay the quorum wait
    }
    wg.Add();
    fabric_.Call(rep.id, replicas_[i], kZkServiceId, msg, nullptr, kZkRpcTimeout)
        .OnReady([best, responses, wg](NetResult& r) {
          if (r.status.ok() && !r.data.empty()) {
            BufReader rr(r.data);
            if (rr.GetU8() == static_cast<uint8_t>(WireStatus::kOk)) {
              uint64_t version = rr.GetU64();
              auto data = rr.GetBytes();
              (*responses)++;
              if (version > best->version) {
                best->version = version;
                best->data = std::move(data);
              }
            }
          }
          wg.Done();
        });
  }
  co_await wg.Wait();

  if (*responses >= majority) {
    rep.value = *best;
    rep.synced = true;
    then();
  } else {
    // Cannot obtain a consistent view; refuse to serve.
    BufWriter out;
    out.PutU8(static_cast<uint8_t>(WireStatus::kUnavailable));
    (void)out;
    then();  // serve() will run against an unsynced replica; mark unavailable
  }
}

void CoordinationService::ProcessCas(size_t replica_idx, std::vector<uint8_t> req,
                                     Fabric::ReplyFn reply) {
  Replica& rep = state_[replica_idx];
  if (rep.cas_in_flight) {
    rep.pending.push_back([this, replica_idx, req = std::move(req), reply]() mutable {
      ProcessCas(replica_idx, std::move(req), std::move(reply));
    });
    return;
  }
  BufReader r(req);
  uint8_t op = r.GetU8();
  FARM_CHECK(op == static_cast<uint8_t>(Op::kCas));
  uint64_t expected = r.GetU64();
  auto data = r.GetBytes();
  rep.cas_in_flight = true;
  RunCas(replica_idx, expected, std::move(data), std::move(reply));
}

void CoordinationService::PumpPending(size_t replica_idx) {
  Replica& rep = state_[replica_idx];
  rep.cas_in_flight = false;
  if (!rep.pending.empty()) {
    auto next = std::move(rep.pending.front());
    rep.pending.pop_front();
    next();
  }
}

Detached CoordinationService::RunCas(size_t replica_idx, uint64_t expected_version,
                                     std::vector<uint8_t> value, Fabric::ReplyFn reply) {
  // farmlint: allow(await-hazard): state_ is sized once at construction and
  // never resized, so references into it survive every suspension here.
  Replica& rep = state_[replica_idx];
  if (!rep.synced || rep.value.version != expected_version) {
    BufWriter w;
    w.PutU8(static_cast<uint8_t>(rep.synced ? WireStatus::kPrecondition
                                            : WireStatus::kUnavailable));
    w.PutU64(rep.value.version);
    reply(w.Take());
    PumpPending(replica_idx);
    co_return;
  }

  uint64_t new_version = expected_version + 1;
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kReplicate));
  w.PutU64(new_version);
  w.PutBytes(value.data(), value.size());
  std::vector<uint8_t> msg = w.Take();

  size_t total = replicas_.size();
  size_t majority = total / 2 + 1;
  auto acks = std::make_shared<size_t>(1);  // self
  WaitGroup wg;
  for (size_t i = 0; i < total; i++) {
    if (i == replica_idx || !fabric_.IsAlive(replicas_[i]) ||
        !fabric_.Reachable(rep.id, replicas_[i])) {
      continue;  // a dead/unreachable replica would only delay the quorum wait
    }
    wg.Add();
    fabric_.Call(rep.id, replicas_[i], kZkServiceId, msg, nullptr, kZkRpcTimeout)
        .OnReady([acks, wg](NetResult& r) {
          if (r.status.ok() && !r.data.empty() &&
              r.data[0] == static_cast<uint8_t>(WireStatus::kOk)) {
            (*acks)++;
          }
          wg.Done();
        });
  }
  co_await wg.Wait();

  BufWriter out;
  if (*acks >= majority) {
    rep.value.version = new_version;
    rep.value.data = std::move(value);
    out.PutU8(static_cast<uint8_t>(WireStatus::kOk));
    out.PutU64(new_version);
  } else {
    out.PutU8(static_cast<uint8_t>(WireStatus::kUnavailable));
    out.PutU64(rep.value.version);
  }
  reply(out.Take());
  PumpPending(replica_idx);
}

Task<StatusOr<ZnodeValue>> CoordinationService::Read(MachineId src, HwThread* thread) {
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kRead));
  std::vector<uint8_t> msg = w.Take();
  for (size_t i = 0; i < replicas_.size(); i++) {
    NetResult r = co_await fabric_.Call(src, replicas_[i], kZkServiceId, msg, thread, kZkRpcTimeout);
    if (!r.status.ok() || r.data.empty()) {
      continue;
    }
    BufReader rr(r.data);
    auto ws = static_cast<WireStatus>(rr.GetU8());
    if (ws == WireStatus::kOk) {
      ZnodeValue v;
      v.version = rr.GetU64();
      v.data = rr.GetBytes();
      co_return v;
    }
    // NOT_LEADER / UNAVAILABLE: try the next replica.
  }
  co_return UnavailableStatus("no zk majority reachable");
}

Task<StatusOr<uint64_t>> CoordinationService::CompareAndSwap(MachineId src,
                                                             uint64_t expected_version,
                                                             std::vector<uint8_t> value,
                                                             HwThread* thread) {
  BufWriter w;
  w.PutU8(static_cast<uint8_t>(Op::kCas));
  w.PutU64(expected_version);
  w.PutBytes(value.data(), value.size());
  std::vector<uint8_t> msg = w.Take();
  for (size_t i = 0; i < replicas_.size(); i++) {
    NetResult r = co_await fabric_.Call(src, replicas_[i], kZkServiceId, msg, thread, kZkRpcTimeout);
    if (!r.status.ok() || r.data.empty()) {
      continue;
    }
    BufReader rr(r.data);
    auto ws = static_cast<WireStatus>(rr.GetU8());
    if (ws == WireStatus::kOk) {
      co_return rr.GetU64();
    }
    if (ws == WireStatus::kPrecondition) {
      co_return Status(StatusCode::kFailedPrecondition, "configuration version moved");
    }
    // NOT_LEADER / UNAVAILABLE: try the next replica.
  }
  co_return UnavailableStatus("no zk majority reachable");
}

}  // namespace farm
