// Quorum-replicated coordination service (ZooKeeper substitute).
//
// FaRM uses ZooKeeper only as the configuration store of Vertical Paxos: an
// atomic compare-and-swap on the configuration znode, invoked once per
// configuration change (section 3). This module provides exactly that: a
// versioned blob replicated over 2k+1 service machines, with linearizable
// read and CAS served by a leader that commits through a majority quorum.
//
// Simplification vs. real ZAB: leadership is ordered by replica index; a
// replica assumes leadership when every lower-indexed replica is dead, and
// re-syncs from a majority before serving. This matches the failure scope of
// the paper's experiments (the ZooKeeper ensemble itself is not the system
// under test).
#ifndef SRC_ZK_COORD_H_
#define SRC_ZK_COORD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/sim/task.h"

namespace farm {

struct ZnodeValue {
  uint64_t version = 0;
  std::vector<uint8_t> data;
};

constexpr uint16_t kZkServiceId = 100;

class CoordinationService {
 public:
  // Installs replica RPC services on the given machines (majority required
  // for progress). Machines must already be registered with the fabric.
  CoordinationService(Fabric& fabric, std::vector<MachineId> replicas);

  // Linearizable read of the configuration znode.
  Task<StatusOr<ZnodeValue>> Read(MachineId src, HwThread* thread = nullptr);

  // Atomic CAS: succeeds (returning the new version, expected_version + 1)
  // only if the stored version still equals expected_version; otherwise
  // kFailedPrecondition. kUnavailable if no majority is reachable.
  Task<StatusOr<uint64_t>> CompareAndSwap(MachineId src, uint64_t expected_version,
                                          std::vector<uint8_t> value,
                                          HwThread* thread = nullptr);

  const std::vector<MachineId>& replicas() const { return replicas_; }

 private:
  // Wire op codes within the zk RPC service.
  enum class Op : uint8_t { kRead = 1, kCas = 2, kReplicate = 3 };

  struct Replica {
    MachineId id = kInvalidMachine;
    ZnodeValue value;
    bool synced = false;  // leader has re-synced from a majority
    // Leader-side serialization of CAS processing.
    bool cas_in_flight = false;
    std::deque<std::function<void()>> pending;
  };

  // Index of the current leader: lowest-indexed live replica.
  int LeaderIndex() const;
  void HandleRpc(size_t replica_idx, MachineId from, std::vector<uint8_t> req,
                 Fabric::ReplyFn reply);
  void ProcessCas(size_t replica_idx, std::vector<uint8_t> req, Fabric::ReplyFn reply);
  Detached RunCas(size_t replica_idx, uint64_t expected_version, std::vector<uint8_t> value,
                  Fabric::ReplyFn reply);
  Detached SyncAndServe(size_t replica_idx, std::function<void()> then);
  void PumpPending(size_t replica_idx);

  Fabric& fabric_;
  std::vector<MachineId> replicas_;
  std::vector<Replica> state_;
};

}  // namespace farm

#endif  // SRC_ZK_COORD_H_
