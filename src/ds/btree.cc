#include "src/ds/btree.h"

#include <algorithm>
#include <cstring>

namespace farm {

namespace {

constexpr uint32_t kMetaStride = kObjectHeaderBytes + 24;
constexpr int kTraverseRetries = 6;

}  // namespace

// ---------------------------------------------------------------------------
// Node packing
// ---------------------------------------------------------------------------

std::vector<uint8_t> BTree::NodeData::Pack(uint32_t payload_size) const {
  std::vector<uint8_t> out(payload_size, 0);
  BufWriter w;
  w.PutU8(leaf ? 1 : 0);
  w.PutU16(static_cast<uint16_t>(entries.size()));
  w.PutU64(fence_low);
  w.PutU64(fence_high);
  w.PutU64(next.Packed());
  w.PutU64(child_low.Packed());
  for (const auto& [k, v] : entries) {
    w.PutU64(k);
    w.PutU64(v);
  }
  FARM_CHECK(w.size() <= payload_size) << "btree node overflow";
  std::memcpy(out.data(), w.bytes().data(), w.size());
  return out;
}

BTree::NodeData BTree::NodeData::Unpack(const std::vector<uint8_t>& bytes) {
  BufReader r(bytes.data(), bytes.size());
  NodeData n;
  n.leaf = r.GetU8() != 0;
  uint16_t count = r.GetU16();
  n.fence_low = r.GetU64();
  n.fence_high = r.GetU64();
  n.next = GlobalAddr::FromPacked(r.GetU64());
  n.child_low = GlobalAddr::FromPacked(r.GetU64());
  n.entries.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    uint64_t k = r.GetU64();
    uint64_t v = r.GetU64();
    n.entries.push_back({k, v});
  }
  return n;
}

// ---------------------------------------------------------------------------
// Creation / meta
// ---------------------------------------------------------------------------

Task<StatusOr<BTree>> BTree::Create(Node& node, Options options, int thread) {
  BTree tree;
  tree.options_ = options;
  tree.cache_ = std::make_shared<Cache>();

  auto meta_rid =
      co_await node.CreateRegion(node.options().region_size, kMetaStride,
                                 options.colocate_with, thread);
  if (!meta_rid.ok()) {
    co_return meta_rid.status();
  }
  tree.meta_region_ = *meta_rid;
  auto node_rid =
      co_await node.CreateRegion(node.options().region_size, 0, tree.meta_region_, thread);
  if (!node_rid.ok()) {
    co_return node_rid.status();
  }
  tree.node_region_ = *node_rid;

  // Root leaf + meta object, committed atomically.
  for (int attempt = 0; attempt < 4; attempt++) {
    auto tx = node.Begin(thread);
    auto root = co_await tx->Alloc(tree.node_region_, options.node_payload);
    if (!root.ok()) {
      co_return root.status();
    }
    NodeData leaf;
    leaf.leaf = true;
    (void)tx->Write(*root, leaf.Pack(options.node_payload));
    auto meta_obj = co_await tx->Read(GlobalAddr{tree.meta_region_, 0}, 24);
    if (!meta_obj.ok()) {
      co_return meta_obj.status();
    }
    BufWriter w;
    w.PutU64(root->Packed());
    w.PutU32(1);
    std::vector<uint8_t> mb = w.Take();
    mb.resize(24, 0);
    (void)tx->Write(GlobalAddr{tree.meta_region_, 0}, std::move(mb));
    Status s = co_await tx->Commit();
    if (s.ok()) {
      co_return tree;
    }
  }
  co_return AbortedStatus("btree creation kept aborting");
}

BTree BTree::Clone() const {
  BTree t = *this;
  t.cache_ = std::make_shared<Cache>();  // per-machine cache
  return t;
}

Task<StatusOr<BTree::Meta>> BTree::ReadMeta(Node& node, int thread) const {
  auto bytes = co_await node.LockFreeRead(GlobalAddr{meta_region_, 0}, 24, thread);
  if (!bytes.ok()) {
    co_return bytes.status();
  }
  BufReader r(bytes->data(), bytes->size());
  Meta m;
  m.root = GlobalAddr::FromPacked(r.GetU64());
  m.height = r.GetU32();
  co_return m;
}

Task<StatusOr<BTree::Meta>> BTree::ReadMetaTx(Transaction& tx) const {
  auto bytes = co_await tx.Read(GlobalAddr{meta_region_, 0}, 24);
  if (!bytes.ok()) {
    co_return bytes.status();
  }
  BufReader r(bytes->data(), bytes->size());
  Meta m;
  m.root = GlobalAddr::FromPacked(r.GetU64());
  m.height = r.GetU32();
  co_return m;
}

Task<Status> BTree::WriteMeta(Transaction& tx, const Meta& m) const {
  BufWriter w;
  w.PutU64(m.root.Packed());
  w.PutU32(m.height);
  std::vector<uint8_t> mb = w.Take();
  mb.resize(24, 0);
  co_return tx.Write(GlobalAddr{meta_region_, 0}, std::move(mb));
}

// ---------------------------------------------------------------------------
// Cached traversal
// ---------------------------------------------------------------------------

Task<StatusOr<BTree::NodeData>> BTree::ReadCached(Node& node, GlobalAddr addr,
                                                  int thread) const {
  auto it = cache_->nodes.find(addr.Packed());
  if (it != cache_->nodes.end()) {
    co_return it->second;
  }
  auto bytes = co_await node.LockFreeRead(addr, options_.node_payload, thread);
  if (!bytes.ok()) {
    co_return bytes.status();
  }
  NodeData n = NodeData::Unpack(*bytes);
  if (!n.leaf) {
    if (cache_->nodes.size() >= options_.cache_cap) {
      cache_->nodes.clear();
    }
    cache_->nodes[addr.Packed()] = n;
  }
  co_return n;
}

void BTree::Invalidate(GlobalAddr addr) const { cache_->nodes.erase(addr.Packed()); }

Task<StatusOr<GlobalAddr>> BTree::TraverseToLeaf(Node& node, uint64_t key, int thread,
                                                 std::vector<GlobalAddr>* path) const {
  auto meta = co_await ReadMeta(node, thread);
  if (!meta.ok()) {
    co_return meta.status();
  }
  GlobalAddr cur = meta->root;
  for (uint32_t depth = 1; depth < meta->height; depth++) {
    path->push_back(cur);
    auto n = co_await ReadCached(node, cur, thread);
    if (!n.ok()) {
      co_return n.status();
    }
    if (n->leaf || key < n->fence_low || key >= n->fence_high) {
      co_return AbortedStatus("stale btree cache");
    }
    // Child for `key`: child_low if key < first separator, else the child
    // of the greatest separator <= key.
    GlobalAddr child = n->child_low;
    for (const auto& [k, v] : n->entries) {
      if (key >= k) {
        child = GlobalAddr::FromPacked(v);
      } else {
        break;
      }
    }
    cur = child;
  }
  co_return cur;
}

Task<StatusOr<GlobalAddr>> BTree::FindLeaf(Transaction& tx, uint64_t key, int attempt,
                                           std::vector<GlobalAddr>* path) const {
  if (attempt < 2) {
    co_return co_await TraverseToLeaf(*tx.node(), key, tx.thread(), path);
  }
  auto tx_path = co_await TraverseTx(tx, key);
  if (!tx_path.ok()) {
    co_return tx_path.status();
  }
  co_return tx_path->back().first;
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

Task<StatusOr<std::optional<uint64_t>>> BTree::Get(Transaction& tx, uint64_t key) const {
  (void)0;
  for (int attempt = 0; attempt < kTraverseRetries; attempt++) {
    std::vector<GlobalAddr> path;
    auto leaf_addr = co_await FindLeaf(tx, key, attempt, &path);
    if (!leaf_addr.ok()) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    auto bytes = co_await tx.Read(*leaf_addr, options_.node_payload);
    if (!bytes.ok()) {
      co_return bytes.status();
    }
    NodeData leaf = NodeData::Unpack(*bytes);
    if (!leaf.leaf || key < leaf.fence_low || key >= leaf.fence_high) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;  // fence keys caught a stale cached path
    }
    for (const auto& [k, v] : leaf.entries) {
      if (k == key) {
        co_return std::optional<uint64_t>(v);
      }
    }
    co_return std::optional<uint64_t>(std::nullopt);
  }
  co_return AbortedStatus("btree traversal kept hitting stale caches");
}

Task<Status> BTree::Insert(Transaction& tx, uint64_t key, uint64_t value) const {
  (void)0;
  for (int attempt = 0; attempt < kTraverseRetries; attempt++) {
    std::vector<GlobalAddr> path;
    auto leaf_addr = co_await FindLeaf(tx, key, attempt, &path);
    if (!leaf_addr.ok()) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    auto bytes = co_await tx.Read(*leaf_addr, options_.node_payload);
    if (!bytes.ok()) {
      co_return bytes.status();
    }
    NodeData leaf = NodeData::Unpack(*bytes);
    if (!leaf.leaf || key < leaf.fence_low || key >= leaf.fence_high) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    auto pos = std::lower_bound(leaf.entries.begin(), leaf.entries.end(),
                                std::make_pair(key, uint64_t{0}));
    if (pos != leaf.entries.end() && pos->first == key) {
      pos->second = value;  // update in place
      co_return tx.Write(*leaf_addr, leaf.Pack(options_.node_payload));
    }
    if (leaf.entries.size() < MaxEntries()) {
      leaf.entries.insert(pos, {key, value});
      co_return tx.Write(*leaf_addr, leaf.Pack(options_.node_payload));
    }
    // Leaf full: structural change via the transactional slow path.
    co_return co_await InsertWithSplit(tx, key, value);
  }
  co_return AbortedStatus("btree traversal kept hitting stale caches");
}

Task<Status> BTree::Remove(Transaction& tx, uint64_t key) const {
  (void)0;
  for (int attempt = 0; attempt < kTraverseRetries; attempt++) {
    std::vector<GlobalAddr> path;
    auto leaf_addr = co_await FindLeaf(tx, key, attempt, &path);
    if (!leaf_addr.ok()) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    auto bytes = co_await tx.Read(*leaf_addr, options_.node_payload);
    if (!bytes.ok()) {
      co_return bytes.status();
    }
    NodeData leaf = NodeData::Unpack(*bytes);
    if (!leaf.leaf || key < leaf.fence_low || key >= leaf.fence_high) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    for (auto it = leaf.entries.begin(); it != leaf.entries.end(); ++it) {
      if (it->first == key) {
        leaf.entries.erase(it);
        // Nodes are left sparse; no rebalancing (write-optimized B-trees).
        co_return tx.Write(*leaf_addr, leaf.Pack(options_.node_payload));
      }
    }
    co_return NotFoundStatus("key not in btree");
  }
  co_return AbortedStatus("btree traversal kept hitting stale caches");
}

Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> BTree::Scan(Transaction& tx,
                                                                       uint64_t lo, uint64_t hi,
                                                                       size_t max) const {
  (void)0;
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (int attempt = 0; attempt < kTraverseRetries; attempt++) {
    out.clear();
    std::vector<GlobalAddr> path;
    auto leaf_addr = co_await FindLeaf(tx, lo, attempt, &path);
    if (!leaf_addr.ok()) {
      for (GlobalAddr a : path) {
        Invalidate(a);
      }
      continue;
    }
    GlobalAddr cur = *leaf_addr;
    bool first = true;
    bool stale = false;
    while (cur.valid() && out.size() < max) {
      auto bytes = co_await tx.Read(cur, options_.node_payload);
      if (!bytes.ok()) {
        co_return bytes.status();
      }
      NodeData leaf = NodeData::Unpack(*bytes);
      if (first && (!leaf.leaf || lo < leaf.fence_low || lo >= leaf.fence_high)) {
        for (GlobalAddr a : path) {
          Invalidate(a);
        }
        stale = true;
        break;
      }
      first = false;
      for (const auto& [k, v] : leaf.entries) {
        if (k >= lo && k < hi && out.size() < max) {
          out.push_back({k, v});
        }
      }
      if (leaf.fence_high >= hi) {
        break;
      }
      cur = leaf.next;
    }
    if (!stale) {
      co_return out;
    }
  }
  co_return AbortedStatus("btree traversal kept hitting stale caches");
}

// ---------------------------------------------------------------------------
// Structural changes
// ---------------------------------------------------------------------------

Task<StatusOr<std::vector<std::pair<GlobalAddr, BTree::NodeData>>>> BTree::TraverseTx(
    Transaction& tx, uint64_t key) const {
  auto meta = co_await ReadMetaTx(tx);
  if (!meta.ok()) {
    co_return meta.status();
  }
  std::vector<std::pair<GlobalAddr, NodeData>> path;
  GlobalAddr cur = meta->root;
  for (;;) {
    auto bytes = co_await tx.Read(cur, options_.node_payload);
    if (!bytes.ok()) {
      co_return bytes.status();
    }
    NodeData n = NodeData::Unpack(*bytes);
    path.push_back({cur, n});
    if (n.leaf) {
      co_return path;
    }
    GlobalAddr child = n.child_low;
    for (const auto& [k, v] : n.entries) {
      if (key >= k) {
        child = GlobalAddr::FromPacked(v);
      } else {
        break;
      }
    }
    cur = child;
  }
}

Task<Status> BTree::InsertWithSplit(Transaction& tx, uint64_t key, uint64_t value) const {
  auto path_or = co_await TraverseTx(tx, key);
  if (!path_or.ok()) {
    co_return path_or.status();
  }
  auto path = std::move(*path_or);  // root..leaf
  auto meta = co_await ReadMetaTx(tx);
  if (!meta.ok()) {
    co_return meta.status();
  }

  // Insert into the leaf (update-in-place if present after re-read).
  {
    NodeData& leaf = path.back().second;
    auto pos = std::lower_bound(leaf.entries.begin(), leaf.entries.end(),
                                std::make_pair(key, uint64_t{0}));
    if (pos != leaf.entries.end() && pos->first == key) {
      pos->second = value;
      co_return tx.Write(path.back().first, leaf.Pack(options_.node_payload));
    }
    leaf.entries.insert(pos, {key, value});
  }

  // Split bottom-up while nodes overflow.
  uint64_t up_key = 0;
  GlobalAddr up_child;
  bool have_carry = false;
  for (size_t level = path.size(); level-- > 0;) {
    GlobalAddr addr = path[level].first;
    NodeData& n = path[level].second;
    if (have_carry) {
      auto pos = std::lower_bound(n.entries.begin(), n.entries.end(),
                                  std::make_pair(up_key, uint64_t{0}));
      n.entries.insert(pos, {up_key, up_child.Packed()});
      have_carry = false;
    }
    if (n.entries.size() <= MaxEntries()) {
      Status ws = tx.Write(addr, n.Pack(options_.node_payload));
      if (!ws.ok()) {
        co_return ws;
      }
      Invalidate(addr);
      co_return OkStatus();
    }
    // Overflow: split into left (n) and right (fresh node).
    auto right_addr = co_await tx.Alloc(node_region_, options_.node_payload);
    if (!right_addr.ok()) {
      co_return right_addr.status();
    }
    NodeData right;
    size_t mid = n.entries.size() / 2;
    uint64_t sep;
    if (n.leaf) {
      sep = n.entries[mid].first;
      right.leaf = true;
      right.entries.assign(n.entries.begin() + static_cast<long>(mid), n.entries.end());
      n.entries.resize(mid);
      right.next = n.next;
      n.next = *right_addr;
    } else {
      sep = n.entries[mid].first;
      right.leaf = false;
      right.child_low = GlobalAddr::FromPacked(n.entries[mid].second);
      right.entries.assign(n.entries.begin() + static_cast<long>(mid) + 1, n.entries.end());
      n.entries.resize(mid);
    }
    right.fence_low = sep;
    right.fence_high = n.fence_high;
    n.fence_high = sep;
    Status w1 = tx.Write(addr, n.Pack(options_.node_payload));
    Status w2 = tx.Write(*right_addr, right.Pack(options_.node_payload));
    if (!w1.ok() || !w2.ok()) {
      co_return w1.ok() ? w2 : w1;
    }
    Invalidate(addr);
    up_key = sep;
    up_child = *right_addr;
    have_carry = true;
  }

  if (have_carry) {
    // The root split: grow the tree.
    auto new_root = co_await tx.Alloc(node_region_, options_.node_payload);
    if (!new_root.ok()) {
      co_return new_root.status();
    }
    NodeData root;
    root.leaf = false;
    root.child_low = path[0].first;
    root.entries = {{up_key, up_child.Packed()}};
    Status ws = tx.Write(*new_root, root.Pack(options_.node_payload));
    if (!ws.ok()) {
      co_return ws;
    }
    Meta m = *meta;
    m.root = *new_root;
    m.height++;
    co_return co_await WriteMeta(tx, m);
  }
  co_return OkStatus();
}

}  // namespace farm
