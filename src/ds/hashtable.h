// FaRM hash table (section 6.2; design from the NSDI'14 paper).
//
// A fixed array of multi-slot buckets laid out over app-managed regions
// (fixed object stride), probed with bounded linear probing. Single-row
// lookups use lock-free reads and usually complete with one one-sided RDMA
// read; updates run inside the caller's transaction so they get the full
// commit protocol.
//
// Bucket object payload: slots_per_bucket x [key u64 | value bytes].
// key 0 = empty slot (never probe past a bucket with an empty slot),
// key 2^64-1 = tombstone (reusable by inserts, skipped by lookups).
#ifndef SRC_DS_HASHTABLE_H_
#define SRC_DS_HASHTABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/node.h"
#include "src/core/tx.h"

namespace farm {

class HashTable {
 public:
  struct Options {
    uint64_t buckets = 1024;
    uint32_t value_size = 32;
    int slots_per_bucket = 4;
    int max_probe = 8;
    RegionId colocate_with = kInvalidRegion;  // locality hint for placement
  };

  // Allocates the bucket regions (via the CM) and returns the table handle.
  // The handle is a plain value: share it with every machine that uses the
  // table (applications exchange it out of band).
  static Task<StatusOr<HashTable>> Create(Node& node, Options options, int thread);

  HashTable() = default;

  // --- transactional operations (run inside the caller's transaction) ---
  Task<StatusOr<std::optional<std::vector<uint8_t>>>> Get(Transaction& tx, uint64_t key) const;
  Task<Status> Put(Transaction& tx, uint64_t key, std::vector<uint8_t> value) const;
  // kNotFound if absent.
  Task<Status> Remove(Transaction& tx, uint64_t key) const;

  // --- optimized single-row lookup (lock-free read, section 3) ---
  Task<StatusOr<std::optional<std::vector<uint8_t>>>> LockFreeGet(Node& node, uint64_t key,
                                                                  int thread) const;

  const Options& options() const { return options_; }
  const std::vector<RegionId>& regions() const { return regions_; }
  uint32_t bucket_stride() const { return kObjectHeaderBytes + BucketPayload(); }
  // Address of a key's home bucket (e.g. to find its primary machine for
  // function shipping).
  GlobalAddr KeyBucketAddr(uint64_t key) const { return BucketAddr(HomeBucket(key)); }

  // Keys must avoid the two sentinels.
  static constexpr uint64_t kEmptyKey = 0;
  static constexpr uint64_t kTombstoneKey = UINT64_MAX;

 private:
  uint32_t SlotBytes() const { return 8 + options_.value_size; }
  uint32_t BucketPayload() const {
    return static_cast<uint32_t>(options_.slots_per_bucket) * SlotBytes();
  }
  GlobalAddr BucketAddr(uint64_t bucket_index) const;
  uint64_t HomeBucket(uint64_t key) const { return Mix64(key) % options_.buckets; }

  Options options_;
  std::vector<RegionId> regions_;
  uint64_t buckets_per_region_ = 0;
};

}  // namespace farm

#endif  // SRC_DS_HASHTABLE_H_
