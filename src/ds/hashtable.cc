#include "src/ds/hashtable.h"

#include <cstring>

namespace farm {

namespace {

uint64_t SlotKey(const std::vector<uint8_t>& bucket, uint32_t slot_bytes, int slot) {
  uint64_t k;
  std::memcpy(&k, bucket.data() + static_cast<size_t>(slot) * slot_bytes, 8);
  return k;
}

std::vector<uint8_t> SlotValue(const std::vector<uint8_t>& bucket, uint32_t slot_bytes,
                               int slot, uint32_t value_size) {
  const uint8_t* p = bucket.data() + static_cast<size_t>(slot) * slot_bytes + 8;
  return std::vector<uint8_t>(p, p + value_size);
}

void SetSlot(std::vector<uint8_t>* bucket, uint32_t slot_bytes, int slot, uint64_t key,
             const std::vector<uint8_t>& value, uint32_t value_size) {
  uint8_t* p = bucket->data() + static_cast<size_t>(slot) * slot_bytes;
  std::memcpy(p, &key, 8);
  std::memset(p + 8, 0, value_size);
  if (!value.empty()) {  // empty vector's data() may be null: UB to memcpy
    std::memcpy(p + 8, value.data(), std::min<size_t>(value.size(), value_size));
  }
}

}  // namespace

Task<StatusOr<HashTable>> HashTable::Create(Node& node, Options options, int thread) {
  HashTable table;
  table.options_ = options;
  uint32_t stride = kObjectHeaderBytes + table.BucketPayload();
  uint32_t region_size = node.options().region_size;
  table.buckets_per_region_ = region_size / stride;
  FARM_CHECK(table.buckets_per_region_ > 0);
  uint64_t nregions =
      (options.buckets + table.buckets_per_region_ - 1) / table.buckets_per_region_;
  // Without an explicit locality hint the table's regions spread over the
  // cluster (the CM balances placement) so load fans out across primaries;
  // TATP relies on this (the paper runs it unpartitioned). Partitioned
  // workloads like TPC-C pass colocate_with to keep a partition together.
  for (uint64_t i = 0; i < nregions; i++) {
    auto rid = co_await node.CreateRegion(region_size, stride, options.colocate_with, thread);
    if (!rid.ok()) {
      co_return rid.status();
    }
    table.regions_.push_back(*rid);
  }
  co_return table;
}

GlobalAddr HashTable::BucketAddr(uint64_t bucket_index) const {
  uint64_t region_idx = bucket_index / buckets_per_region_;
  uint64_t within = bucket_index % buckets_per_region_;
  return GlobalAddr{regions_[region_idx],
                    static_cast<uint32_t>(within * bucket_stride())};
}

Task<StatusOr<std::optional<std::vector<uint8_t>>>> HashTable::Get(Transaction& tx,
                                                                   uint64_t key) const {
  uint32_t slot_bytes = SlotBytes();
  uint64_t home = HomeBucket(key);
  for (int probe = 0; probe < options_.max_probe; probe++) {
    GlobalAddr addr = BucketAddr((home + static_cast<uint64_t>(probe)) % options_.buckets);
    auto bucket = co_await tx.Read(addr, BucketPayload());
    if (!bucket.ok()) {
      co_return bucket.status();
    }
    bool has_empty = false;
    for (int s = 0; s < options_.slots_per_bucket; s++) {
      uint64_t k = SlotKey(*bucket, slot_bytes, s);
      if (k == key) {
        co_return std::optional<std::vector<uint8_t>>(
            SlotValue(*bucket, slot_bytes, s, options_.value_size));
      }
      if (k == kEmptyKey) {
        has_empty = true;
      }
    }
    if (has_empty) {
      co_return std::optional<std::vector<uint8_t>>(std::nullopt);
    }
  }
  co_return std::optional<std::vector<uint8_t>>(std::nullopt);
}

Task<Status> HashTable::Put(Transaction& tx, uint64_t key, std::vector<uint8_t> value) const {
  FARM_CHECK(key != kEmptyKey && key != kTombstoneKey) << "reserved key";
  uint32_t slot_bytes = SlotBytes();
  uint64_t home = HomeBucket(key);
  // First pass: update in place if present; remember the first insertable
  // slot (empty or tombstone) along the probe path.
  GlobalAddr insert_addr;
  int insert_slot = -1;
  std::vector<uint8_t> insert_bucket;
  for (int probe = 0; probe < options_.max_probe; probe++) {
    GlobalAddr addr = BucketAddr((home + static_cast<uint64_t>(probe)) % options_.buckets);
    auto bucket = co_await tx.Read(addr, BucketPayload());
    if (!bucket.ok()) {
      co_return bucket.status();
    }
    bool has_empty = false;
    for (int s = 0; s < options_.slots_per_bucket; s++) {
      uint64_t k = SlotKey(*bucket, slot_bytes, s);
      if (k == key) {
        // Update in place.
        std::vector<uint8_t> updated = *bucket;
        SetSlot(&updated, slot_bytes, s, key, value, options_.value_size);
        co_return tx.Write(addr, std::move(updated));
      }
      if ((k == kEmptyKey || k == kTombstoneKey) && insert_slot < 0) {
        insert_addr = addr;
        insert_slot = s;
        insert_bucket = *bucket;
      }
      if (k == kEmptyKey) {
        has_empty = true;
      }
    }
    if (has_empty) {
      break;  // the key cannot exist beyond a bucket with an empty slot
    }
  }
  if (insert_slot < 0) {
    co_return Status(StatusCode::kResourceExhausted, "hash table probe chain full");
  }
  SetSlot(&insert_bucket, slot_bytes, insert_slot, key, value, options_.value_size);
  co_return tx.Write(insert_addr, std::move(insert_bucket));
}

Task<Status> HashTable::Remove(Transaction& tx, uint64_t key) const {
  uint32_t slot_bytes = SlotBytes();
  uint64_t home = HomeBucket(key);
  for (int probe = 0; probe < options_.max_probe; probe++) {
    GlobalAddr addr = BucketAddr((home + static_cast<uint64_t>(probe)) % options_.buckets);
    auto bucket = co_await tx.Read(addr, BucketPayload());
    if (!bucket.ok()) {
      co_return bucket.status();
    }
    bool has_empty = false;
    for (int s = 0; s < options_.slots_per_bucket; s++) {
      uint64_t k = SlotKey(*bucket, slot_bytes, s);
      if (k == key) {
        std::vector<uint8_t> updated = *bucket;
        SetSlot(&updated, slot_bytes, s, kTombstoneKey, {}, options_.value_size);
        co_return tx.Write(addr, std::move(updated));
      }
      if (k == kEmptyKey) {
        has_empty = true;
      }
    }
    if (has_empty) {
      break;
    }
  }
  co_return NotFoundStatus("key not in table");
}

Task<StatusOr<std::optional<std::vector<uint8_t>>>> HashTable::LockFreeGet(Node& node,
                                                                           uint64_t key,
                                                                           int thread) const {
  uint32_t slot_bytes = SlotBytes();
  uint64_t home = HomeBucket(key);
  for (int probe = 0; probe < options_.max_probe; probe++) {
    GlobalAddr addr = BucketAddr((home + static_cast<uint64_t>(probe)) % options_.buckets);
    auto bucket = co_await node.LockFreeRead(addr, BucketPayload(), thread);
    if (!bucket.ok()) {
      co_return bucket.status();
    }
    bool has_empty = false;
    for (int s = 0; s < options_.slots_per_bucket; s++) {
      uint64_t k = SlotKey(*bucket, slot_bytes, s);
      if (k == key) {
        co_return std::optional<std::vector<uint8_t>>(
            SlotValue(*bucket, slot_bytes, s, options_.value_size));
      }
      if (k == kEmptyKey) {
        has_empty = true;
      }
    }
    if (has_empty) {
      co_return std::optional<std::vector<uint8_t>>(std::nullopt);
    }
  }
  co_return std::optional<std::vector<uint8_t>>(std::nullopt);
}

}  // namespace farm
