// FaRM B-tree (section 6.2): a distributed B+tree over FaRM objects with
// per-machine caching of internal nodes and fence keys for traversal
// consistency (as in Minuet).
//
// Traversal reads internal nodes from a local cache (filled with lock-free
// reads) WITHOUT adding them to the transaction's read set; only the leaf is
// read transactionally. Every node carries fence keys [low, high); if the
// reached leaf's fence range does not contain the key, a cached node was
// stale: the path is invalidated and the traversal retried. Lookups
// therefore need a single RDMA read (the leaf) in the common case.
//
// Inserts split full nodes by re-reading the path transactionally inside
// the caller's transaction (splits are rare); deletes leave nodes sparse
// (no rebalancing -- matching the write-optimized B-tree lineage).
#ifndef SRC_DS_BTREE_H_
#define SRC_DS_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/node.h"
#include "src/core/tx.h"

namespace farm {

class BTree {
 public:
  struct Options {
    uint32_t node_payload = 512;              // bytes per tree node object
    RegionId colocate_with = kInvalidRegion;  // locality hint
    size_t cache_cap = 8192;                  // cached internal nodes
  };

  // Creates the tree (meta region + first leaf). Each machine should hold
  // its own handle (the handle owns that machine's internal-node cache).
  static Task<StatusOr<BTree>> Create(Node& node, Options options, int thread);
  // A handle for an existing tree on another machine.
  BTree Clone() const;

  BTree() = default;

  Task<StatusOr<std::optional<uint64_t>>> Get(Transaction& tx, uint64_t key) const;
  // Upsert.
  Task<Status> Insert(Transaction& tx, uint64_t key, uint64_t value) const;
  // kNotFound if absent.
  Task<Status> Remove(Transaction& tx, uint64_t key) const;
  // Entries with lo <= key < hi, at most `max` of them, in key order.
  Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> Scan(Transaction& tx, uint64_t lo,
                                                                  uint64_t hi,
                                                                  size_t max) const;

  const Options& options() const { return options_; }
  RegionId meta_region() const { return meta_region_; }
  RegionId node_region() const { return node_region_; }

 private:
  friend class BTreeTestPeer;

  struct NodeData {
    bool leaf = true;
    uint64_t fence_low = 0;
    uint64_t fence_high = UINT64_MAX;
    GlobalAddr next;       // leaf chain
    GlobalAddr child_low;  // internal: child for keys < entries[0].first
    std::vector<std::pair<uint64_t, uint64_t>> entries;  // key -> value/child

    std::vector<uint8_t> Pack(uint32_t payload_size) const;
    static NodeData Unpack(const std::vector<uint8_t>& bytes);
  };

  struct Meta {
    GlobalAddr root;
    uint32_t height = 1;  // 1 = root is a leaf
  };

  size_t MaxEntries() const { return (options_.node_payload - 51) / 16; }

  Task<StatusOr<Meta>> ReadMeta(Node& node, int thread) const;
  Task<StatusOr<Meta>> ReadMetaTx(Transaction& tx) const;
  Task<Status> WriteMeta(Transaction& tx, const Meta& m) const;

  // Cached / lock-free read of an internal node (not in the tx read set).
  Task<StatusOr<NodeData>> ReadCached(Node& node, GlobalAddr addr, int thread) const;
  void Invalidate(GlobalAddr addr) const;

  // Descends via the cache; returns the leaf address for `key` plus the
  // internal path (for invalidation on fence mismatch).
  Task<StatusOr<GlobalAddr>> TraverseToLeaf(Node& node, uint64_t key, int thread,
                                            std::vector<GlobalAddr>* path) const;

  // Transactional descent used by structure-modifying operations.
  Task<StatusOr<std::vector<std::pair<GlobalAddr, NodeData>>>> TraverseTx(Transaction& tx,
                                                                          uint64_t key) const;
  // Finds the leaf for `key`: cached traversal on early attempts, falling
  // back to a transactional descent. The fallback is what makes a
  // transaction's own (buffered, uncommitted) splits visible to its later
  // operations -- the cache only ever sees committed state.
  Task<StatusOr<GlobalAddr>> FindLeaf(Transaction& tx, uint64_t key, int attempt,
                                      std::vector<GlobalAddr>* path) const;
  Task<Status> InsertWithSplit(Transaction& tx, uint64_t key, uint64_t value) const;

  Options options_;
  RegionId meta_region_ = kInvalidRegion;
  RegionId node_region_ = kInvalidRegion;

  struct Cache {
    // farmlint: allow(unordered-decl): keyed lookup/erase only, never
    // iterated, so hash order cannot reach reads or the fabric.
    std::unordered_map<uint64_t, NodeData> nodes;  // by packed address
  };
  std::shared_ptr<Cache> cache_;
};

}  // namespace farm

#endif  // SRC_DS_BTREE_H_
