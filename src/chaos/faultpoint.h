// Fault triggers and the injector driving them (the chaos explorer's
// execution half).
//
// A FaultTrigger names a fault point ("phase-begin:commit_backup",
// "msg-send", "ringlog-append", ...; see src/obs/fault_hook.h for the
// taxonomy), a hit count, and an action. The FaultInjector installs as the
// process-wide fault::Hook and counts point hits; when the current
// trigger's point reaches its hit count the action fires, and counting
// restarts for the next trigger -- trigger i's count starts when trigger
// i-1 fires, so a depth-2 schedule can target a point that only becomes
// reachable during recovery from the first fault.
//
// Counting is driven by the deterministic simulation, so a schedule that
// fired once fires identically on every replay of the same plan.
#ifndef SRC_CHAOS_FAULTPOINT_H_
#define SRC_CHAOS_FAULTPOINT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/fault_hook.h"

namespace farm {
namespace chaos {

enum class FaultAction : uint8_t {
  kKill = 1,        // kill the machine that hit the point
  kPartition = 2,   // isolate it for `param` ns, then heal
  kDropMsg = 3,     // swallow this message (msg-send points only)
  kTornWrite = 4,   // tear this NVRAM append AND kill the writer
                    // (ringlog-append points only; a torn write without a
                    // crash is not a fault NVRAM can produce)
  kLeaseExpiry = 5, // force the lease held for the point's peer to expire
                    // (lease-send points only)
  kAnchor = 6,      // no fault; re-anchors hit counting for the next trigger
};

const char* FaultActionName(FaultAction a);
// Returns false when `name` is not a known action.
bool FaultActionFromName(const std::string& name, FaultAction* out);

// Whether `action` makes sense at `point`. Synchronous-effect actions are
// tied to the one point whose call site honors their effect; kill,
// partition, and anchor apply anywhere.
bool ActionApplicable(FaultAction action, const std::string& point);

struct FaultTrigger {
  std::string point;
  uint64_t hit = 1;  // fire on the hit-th occurrence (1-based)
  FaultAction action = FaultAction::kKill;
  int machine = -1;  // only count hits on this machine; -1 = any machine
  uint64_t param = 0;  // kPartition: isolation window in ns (0 = default)
};

class FaultInjector : public fault::Hook {
 public:
  // How the injector acts on the cluster. Deferred actions (kill,
  // partition, lease expiry) must not mutate cluster state synchronously
  // under the fault point's caller; the harness's callbacks schedule them
  // through the simulator at the current time.
  struct Callbacks {
    std::function<uint64_t()> now;
    std::function<void(uint32_t machine)> kill;
    std::function<void(uint32_t machine, uint64_t window_ns)> partition;
    std::function<void(uint32_t machine, uint32_t peer)> lease_expiry;
    std::function<void(const std::string& line)> note;  // event-log hook
  };

  struct Firing {
    size_t trigger = 0;   // index into triggers()
    uint64_t at = 0;      // simulated time it fired
    uint32_t machine = 0; // machine that hit the point
  };

  // Hits before `arm_at` (startup) neither count toward triggers nor appear
  // in point_hits().
  FaultInjector(std::vector<FaultTrigger> triggers, Callbacks cb, uint64_t arm_at);

  uint32_t OnPoint(uint32_t machine, const char* point, uint64_t arg) override;

  const std::vector<FaultTrigger>& triggers() const { return triggers_; }
  // Hit counts per point since arm, over the whole run: the explorer's
  // discovery data.
  const std::map<std::string, uint64_t>& point_hits() const { return point_hits_; }
  const std::vector<Firing>& firings() const { return firings_; }
  bool all_fired() const { return next_ >= triggers_.size(); }
  uint64_t last_fire_time() const { return last_fire_time_; }

 private:
  std::vector<FaultTrigger> triggers_;
  Callbacks cb_;
  uint64_t arm_at_;
  size_t next_ = 0;      // current trigger
  uint64_t counted_ = 0; // hits of the current trigger's point since anchor
  std::map<std::string, uint64_t> point_hits_;
  std::vector<Firing> firings_;
  uint64_t last_fire_time_ = 0;
};

}  // namespace chaos
}  // namespace farm

#endif  // SRC_CHAOS_FAULTPOINT_H_
