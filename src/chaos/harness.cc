#include "src/chaos/harness.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>

#include "src/chaos/faultpoint.h"
#include "src/chaos/oracle.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/core/cluster.h"
#include "src/core/region.h"
#include "src/obs/fault_hook.h"

namespace farm {
namespace chaos {

namespace {

// Account layout: 8-byte object header + u64 sequence + i64 balance.
constexpr uint32_t kStride = 24;
constexpr uint32_t kPayload = 16;
// Accounts start at balance 0 (transfers may go negative); conservation
// means the final total is still 0, with no seeding transactions needed.
constexpr int64_t kInitialBalance = 0;
// The liveness watchdog: the cluster must commit within this window after
// the last fault heals.
constexpr SimDuration kLivenessWindow = 250 * kMillisecond;
// Isolation window for trigger-driven partitions when the trigger carries
// no explicit param: long enough to outlast the lease and get the isolated
// side evicted, matching the generated plans' partition durations.
constexpr SimDuration kDefaultPartitionWindow = 50 * kMillisecond;

// Installs a fault hook for the enclosing scope (every run installs one,
// even with no triggers -- the hit counts are the explorer's discovery
// data) and guarantees removal on every return path.
struct HookGuard {
  explicit HookGuard(fault::Hook* hook) : h(hook) { fault::InstallHook(h); }
  ~HookGuard() { fault::RemoveHook(h); }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;
  fault::Hook* h;
};

std::vector<uint8_t> EncodeAccount(uint64_t seq, int64_t balance) {
  std::vector<uint8_t> b(kPayload);
  std::memcpy(b.data(), &seq, 8);
  std::memcpy(b.data() + 8, &balance, 8);
  return b;
}

void DecodeAccount(const std::vector<uint8_t>& b, uint64_t* seq, int64_t* balance) {
  std::memcpy(seq, b.data(), 8);
  std::memcpy(balance, b.data() + 8, 8);
}

// Run-wide state shared by the driver, transfer, and chaos coroutines. Lives
// on RunChaosPlan's stack below the cluster; coroutines only touch it while
// the simulator is stepping.
struct RunState {
  Cluster* cluster = nullptr;
  RegionId rid = kInvalidRegion;
  int accounts = 0;
  BankOracle* oracle = nullptr;
  uint64_t next_uid = 0;
  uint64_t commits = 0;
  SimTime last_commit = 0;
  SimTime fault_deadline = 0;  // plan.LastFaultTime()
  SimTime first_commit_after_faults = kSimTimeNever;
  std::vector<std::string>* event_log = nullptr;
};

// The freshest configuration any live node has adopted: the best available
// approximation of "current membership" for target resolution and for
// picking coordinators (stale coordinators are precise-membership fodder,
// not useful load).
const Configuration* FreshestConfig(Cluster& c) {
  const Configuration* best = nullptr;
  for (int m = 0; m < c.num_machines(); m++) {
    if (!c.machine(static_cast<MachineId>(m)).alive()) {
      continue;
    }
    const Configuration& cfg = c.node(static_cast<MachineId>(m)).config();
    if (best == nullptr || cfg.id > best->id) {
      best = &cfg;
    }
  }
  return best;
}

MachineId PickCoordinator(Cluster& c, uint64_t salt) {
  const Configuration* cfg = FreshestConfig(c);
  if (cfg == nullptr || cfg->machines.empty()) {
    return kInvalidMachine;
  }
  for (size_t probe = 0; probe < cfg->machines.size(); probe++) {
    MachineId cand = cfg->machines[(salt + probe) % cfg->machines.size()];
    if (c.machine(cand).alive()) {
      return cand;
    }
  }
  return kInvalidMachine;
}

Task<void> Transfer(RunState* st, MachineId coord, int thread, int from, int to,
                    int64_t amount) {
  TransferOp op;
  op.begin = st->cluster->sim().Now();
  auto tx = st->cluster->node(coord).Begin(thread);
  auto rf = co_await tx->Read(GlobalAddr{st->rid, static_cast<uint32_t>(from) * kStride},
                              kPayload);
  if (!rf.ok()) {
    co_return;  // nothing shipped: the attempt took no effect
  }
  auto rt = co_await tx->Read(GlobalAddr{st->rid, static_cast<uint32_t>(to) * kStride},
                              kPayload);
  if (!rt.ok()) {
    co_return;
  }
  uint64_t fseq = 0;
  uint64_t tseq = 0;
  int64_t fbal = 0;
  int64_t tbal = 0;
  DecodeAccount(*rf, &fseq, &fbal);
  DecodeAccount(*rt, &tseq, &tbal);
  (void)tx->Write(GlobalAddr{st->rid, static_cast<uint32_t>(from) * kStride},
                  EncodeAccount(fseq + 1, fbal - amount));
  (void)tx->Write(GlobalAddr{st->rid, static_cast<uint32_t>(to) * kStride},
                  EncodeAccount(tseq + 1, tbal + amount));
  op.uid = st->next_uid++;
  op.outcome = OpOutcome::kUnknown;
  op.accesses = {{from, fseq, fbal, fbal - amount}, {to, tseq, tbal, tbal + amount}};
  // Record before Commit: if our coordinator dies mid-commit this coroutine
  // parks forever, and recovery still owns the op's outcome.
  size_t index = st->oracle->Record(op);
  Status s = co_await tx->Commit();
  if (s.ok()) {
    SimTime end = st->cluster->sim().Now();
    st->oracle->Resolve(index, OpOutcome::kCommitted, end, tx->id());
    st->commits++;
    st->last_commit = end;
    if (end >= st->fault_deadline && end < st->first_commit_after_faults) {
      st->first_commit_after_faults = end;
    }
  } else if (s.code() == StatusCode::kAborted) {
    st->oracle->Resolve(index, OpOutcome::kAborted, kSimTimeNever, tx->id());
  }
  // Anything else (kUnavailable): recovery decided; stays kUnknown.
}

// Open-loop driver: spawns transfers at a steady rate instead of running a
// fixed worker pool, so workers parked on dead coordinators never throttle
// the load (essential for liveness probing across power failures).
Task<void> Driver(RunState* st, uint64_t seed, SimTime until, int worker_threads) {
  Pcg32 rng(HashCombine(seed, 0x77a3110adULL));
  Simulator& sim = st->cluster->sim();
  while (sim.Now() < until) {
    uint64_t salt = rng.Next64();
    int from = static_cast<int>(rng.Uniform(static_cast<uint32_t>(st->accounts)));
    int to = static_cast<int>(rng.Uniform(static_cast<uint32_t>(st->accounts)));
    int64_t amount = 1 + rng.Uniform(49);
    MachineId coord = PickCoordinator(*st->cluster, salt);
    if (coord != kInvalidMachine && from != to) {
      Spawn(Transfer(st, coord, static_cast<int>(salt % static_cast<uint64_t>(worker_threads)),
                     from, to, amount));
    }
    co_await SleepFor(sim, (100 + rng.Uniform(150)) * kMicrosecond);
  }
}

// Gray failure: steals ~90% of the victim's worker-thread CPU (but not its
// lease thread -- the paper's dedicated lease manager keeps leases flowing
// on a busy machine, which is exactly the behavior worth stressing).
Task<void> SlowLoop(Cluster* c, MachineId m, std::shared_ptr<bool> active) {
  uint64_t epoch = c->machine(m).epoch();
  int workers = c->options().node.worker_threads;
  while (*active && c->machine(m).alive() && c->machine(m).epoch() == epoch) {
    for (int t = 0; t < workers; t++) {
      c->machine(m).thread(t).InjectBusy(180 * kMicrosecond);
    }
    co_await SleepFor(c->sim(), 200 * kMicrosecond);
  }
}

class ChaosExecutor {
 public:
  ChaosExecutor(RunState* st, const ChaosPlan* plan) : st_(st), plan_(plan) {}

  Task<void> Run() {
    Simulator& sim = st_->cluster->sim();
    for (const ChaosEvent& e : plan_->events) {
      if (sim.Now() < e.at) {
        co_await SleepFor(sim, e.at - sim.Now());
      }
      Execute(e);
    }
  }

 private:
  void Note(const ChaosEvent& e, const std::string& resolved) {
    Cluster& c = *st_->cluster;
    std::ostringstream line;
    line << "t=" << c.sim().Now() / kMillisecond << "ms " << EventKindName(e.kind)
         << (resolved.empty() ? "" : " -> ") << resolved;
    st_->event_log->push_back(line.str());
    FARM_LOG(Info) << "chaos: " << line.str();
    c.metrics_registry()
        .GetCounter("chaos_events", {{"kind", EventKindName(e.kind)}})
        .Inc();
    // The cluster pseudo-process track (one past the last machine id).
    FARM_TRACE(Instant(static_cast<uint32_t>(c.options().machines + c.options().zk_replicas),
                       0, "chaos", EventKindName(e.kind)));
  }

  std::vector<MachineId> LiveMembers() const {
    std::vector<MachineId> live;
    const Configuration* cfg = FreshestConfig(*st_->cluster);
    if (cfg == nullptr) {
      return live;
    }
    for (MachineId m : cfg->machines) {
      if (st_->cluster->machine(m).alive()) {
        live.push_back(m);
      }
    }
    return live;
  }

  const RegionPlacement* TrackedPlacement() const {
    const Configuration* cfg = FreshestConfig(*st_->cluster);
    return cfg == nullptr ? nullptr : cfg->Placement(st_->rid);
  }

  void Isolate(const ChaosEvent& e, std::vector<MachineId> minority) {
    Cluster& c = *st_->cluster;
    std::sort(minority.begin(), minority.end());
    std::vector<MachineId> majority;
    int total = c.options().machines + c.options().zk_replicas;
    for (int m = 0; m < total; m++) {
      if (!std::binary_search(minority.begin(), minority.end(), static_cast<MachineId>(m))) {
        majority.push_back(static_cast<MachineId>(m));
      }
    }
    c.fabric().SetPartition({majority, minority});
    std::ostringstream who;
    for (MachineId m : minority) {
      who << "m" << m << " ";
    }
    Note(e, "isolated " + who.str());
  }

  void Execute(const ChaosEvent& e) {
    Cluster& c = *st_->cluster;
    switch (e.kind) {
      case EventKind::kKillPrimary: {
        const RegionPlacement* p = TrackedPlacement();
        if (p == nullptr || !c.machine(p->primary).alive()) {
          Note(e, "skipped (no live primary)");
          return;
        }
        MachineId target = p->primary;
        c.Kill(target);
        Note(e, "m" + std::to_string(target));
        return;
      }
      case EventKind::kKillBackup: {
        const RegionPlacement* p = TrackedPlacement();
        if (p == nullptr || p->backups.empty()) {
          Note(e, "skipped (no backups)");
          return;
        }
        for (size_t probe = 0; probe < p->backups.size(); probe++) {
          MachineId cand = p->backups[(e.pick + probe) % p->backups.size()];
          if (c.machine(cand).alive()) {
            c.Kill(cand);
            Note(e, "m" + std::to_string(cand));
            return;
          }
        }
        Note(e, "skipped (no live backup)");
        return;
      }
      case EventKind::kKillCm: {
        const Configuration* cfg = FreshestConfig(c);
        if (cfg == nullptr || cfg->cm == kInvalidMachine || !c.machine(cfg->cm).alive()) {
          Note(e, "skipped (no live CM)");
          return;
        }
        MachineId target = cfg->cm;
        c.Kill(target);
        Note(e, "m" + std::to_string(target));
        return;
      }
      case EventKind::kPartitionMinority: {
        std::vector<MachineId> live = LiveMembers();
        size_t want = static_cast<size_t>(
            std::min<uint64_t>(e.param, live.empty() ? 0 : (live.size() - 1) / 2));
        if (want == 0) {
          Note(e, "skipped (too few live members)");
          return;
        }
        // Resolve `pick` into a subset by repeated index extraction.
        std::vector<MachineId> minority;
        uint64_t pick = e.pick;
        for (size_t i = 0; i < want; i++) {
          size_t idx = static_cast<size_t>(pick % live.size());
          pick /= live.size();
          minority.push_back(live[idx]);
          live.erase(live.begin() + static_cast<long>(idx));
        }
        Isolate(e, std::move(minority));
        return;
      }
      case EventKind::kPartitionBackup: {
        const RegionPlacement* p = TrackedPlacement();
        if (p == nullptr || p->backups.empty()) {
          Note(e, "skipped (no backups)");
          return;
        }
        for (size_t probe = 0; probe < p->backups.size(); probe++) {
          MachineId cand = p->backups[(e.pick + probe) % p->backups.size()];
          if (c.machine(cand).alive()) {
            Isolate(e, {cand});
            return;
          }
        }
        Note(e, "skipped (no live backup)");
        return;
      }
      case EventKind::kHeal:
        c.fabric().ClearPartition();
        Note(e, "");
        return;
      case EventKind::kLossBurstStart:
        c.fabric().set_datagram_loss(static_cast<double>(e.param) / 1000.0);
        Note(e, std::to_string(e.param) + "/1000 datagram loss");
        return;
      case EventKind::kLossBurstEnd:
        c.fabric().set_datagram_loss(0.0);
        Note(e, "");
        return;
      case EventKind::kSlowMachineStart: {
        std::vector<MachineId> live = LiveMembers();
        if (live.empty()) {
          Note(e, "skipped (no live members)");
          return;
        }
        MachineId target = live[e.pick % live.size()];
        auto active = std::make_shared<bool>(true);
        slow_.push_back(active);
        Spawn(SlowLoop(&c, target, active));
        Note(e, "m" + std::to_string(target));
        return;
      }
      case EventKind::kSlowMachineEnd:
        if (!slow_.empty()) {
          *slow_.back() = false;
          slow_.pop_back();
        }
        Note(e, "");
        return;
      case EventKind::kFlakyNicStart: {
        std::vector<MachineId> live = LiveMembers();
        if (live.empty()) {
          Note(e, "skipped (no live members)");
          return;
        }
        MachineId target = live[e.pick % live.size()];
        LinkFaults f;
        f.drop = std::min(0.2, static_cast<double>(e.param) / 1000.0);
        f.dup = 0.05;
        f.reorder = 0.1;
        f.extra_latency = 20 * kMicrosecond;
        f.jitter = 50 * kMicrosecond;
        f.reorder_window = kMillisecond;
        c.fabric().SetMachineLinkFaults(target, f);
        flaky_.push_back(target);
        Note(e, "m" + std::to_string(target));
        return;
      }
      case EventKind::kFlakyNicEnd:
        if (!flaky_.empty()) {
          c.fabric().SetMachineLinkFaults(flaky_.back(), LinkFaults{});
          flaky_.pop_back();
        }
        Note(e, "");
        return;
      case EventKind::kPowerFailure:
        c.PowerFailureRestart();
        Note(e, "all machines");
        return;
      case EventKind::kRestartEmpty: {
        std::vector<MachineId> dead;
        for (int m = 0; m < c.num_machines(); m++) {
          if (!c.machine(static_cast<MachineId>(m)).alive()) {
            dead.push_back(static_cast<MachineId>(m));
          }
        }
        if (dead.empty()) {
          Note(e, "skipped (no dead machine)");
          return;
        }
        MachineId target = dead[e.pick % dead.size()];
        c.RestartMachineEmpty(target);
        Note(e, "m" + std::to_string(target));
        return;
      }
    }
  }

  RunState* st_;
  const ChaosPlan* plan_;
  std::vector<std::shared_ptr<bool>> slow_;
  std::vector<MachineId> flaky_;
};

// Liveness watchdog: polls while the run executes and snapshots the flight
// recorders at the moment the liveness window expires with no commit, so a
// hung cluster's postmortem shows the stall -- not the settled state an
// end-of-run snapshot would show.
Task<void> Watchdog(RunState* st, std::string* snapshot) {
  Simulator& sim = st->cluster->sim();
  while (snapshot->empty()) {
    co_await SleepFor(sim, 2 * kMillisecond);
    SimTime deadline = st->fault_deadline + kLivenessWindow;
    if (sim.Now() <= deadline) {
      continue;
    }
    if (st->commits > 0 && st->first_commit_after_faults <= deadline) {
      continue;  // liveness satisfied (the deadline may still move later)
    }
    *snapshot = st->cluster->FlightPostmortem();
  }
}

// Satellite of the oracle detail: for each offending transaction, the
// record-seq window of its flight records on every machine, appended to the
// failure message so a postmortem reader can jump straight to the relevant
// slice of each ring.
std::string FlightSeqWindows(Cluster& c, const std::vector<TxId>& txs) {
  if (txs.empty()) {
    return "";
  }
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> windows;  // machine -> seq range
  for (int m = 0; m < c.num_machines(); m++) {
    flight::Recorder* rec = c.flight_recorder(static_cast<MachineId>(m));
    if (rec == nullptr) {
      continue;
    }
    for (const auto& dr : rec->Drain()) {
      if ((dr.rec.flags & flight::Record::kHasTx) == 0) {
        continue;
      }
      for (const TxId& tx : txs) {
        if (dr.rec.tx_local == tx.local &&
            dr.rec.tx_machine == static_cast<uint16_t>(tx.machine) &&
            dr.rec.tx_thread == tx.thread &&
            dr.rec.tx_config == static_cast<uint32_t>(tx.config)) {
          auto [it, fresh] = windows.emplace(dr.machine, std::make_pair(dr.seq, dr.seq));
          if (!fresh) {
            it->second.first = std::min(it->second.first, dr.seq);
            it->second.second = std::max(it->second.second, dr.seq);
          }
          break;
        }
      }
    }
  }
  std::ostringstream out;
  out << " [flight:";
  if (windows.empty()) {
    out << " no records for the offending txs";
  }
  for (const auto& [m, w] : windows) {
    out << " m" << m << " seq " << w.first << ".." << w.second << ";";
  }
  out << "]";
  return out.str();
}

// Minimal local RunTask (tests/test_util.h is not visible from src/).
template <typename T>
std::optional<T> RunToCompletion(Cluster& cluster, Task<T> task, SimDuration timeout) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrapper = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrapper(std::move(task), result));
  SimTime deadline = cluster.sim().Now() + timeout;
  while (!result->has_value() && cluster.sim().Now() < deadline) {
    if (!cluster.sim().Step()) {
      break;
    }
  }
  return *result;
}

}  // namespace

const char* FailureClassName(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kSetup:
      return "setup";
    case FailureClass::kRegionLost:
      return "region-lost";
    case FailureClass::kLiveness:
      return "liveness";
    case FailureClass::kOracle:
      return "oracle";
  }
  return "unknown";
}

ChaosRunResult RunChaos(const ChaosRunOptions& options) {
  PlanOptions popts = options.plan;
  popts.machines = options.machines;
  return RunChaosPlan(options, ChaosPlan::Generate(popts, options.seed));
}

ChaosRunResult RunChaosPlan(const ChaosRunOptions& options, const ChaosPlan& plan) {
  ChaosRunResult res;
  res.plan = plan;
  // Every failure return below snapshots the flight recorders so the
  // artifact shows the protocol timeline leading up to the violation. A
  // non-empty `postmortem` argument supplies an earlier snapshot (the
  // liveness watchdog's at-expiry capture) instead.
  auto fail = [&res](Cluster& c, FailureClass cls, const std::string& why,
                     std::string postmortem = std::string()) -> ChaosRunResult& {
    res.failure = why;
    res.failure_class = cls;
    res.postmortem = postmortem.empty() ? c.FlightPostmortem() : std::move(postmortem);
    return res;
  };

  ClusterOptions copts;
  copts.machines = plan.options.machines;
  copts.zk_replicas = 3;
  copts.seed = plan.seed;
  copts.fault_seed = HashCombine(plan.seed, 0xfa177ab1eULL);
  copts.node.worker_threads = 2;
  copts.node.region_size = 256 << 10;
  copts.node.block_size = 16 << 10;
  copts.node.replication_factor = plan.options.replication_factor;
  copts.node.lease.duration = 10 * kMillisecond;
  copts.node.chaos_skip_backup_ack = options.mutate_skip_backup_ack;
  copts.node.msgr.batch = options.batch_data_plane;
  copts.node.adaptive_backoff = options.adaptive_backoff;

  Cluster cluster(copts);
  cluster.Start();
  cluster.RunFor(5 * kMillisecond);

  auto create = [](Cluster* c) -> Task<StatusOr<RegionId>> {
    co_return co_await c->node(0).CreateRegion(64 << 10, kStride, kInvalidRegion, 0);
  };
  auto created = RunToCompletion(cluster, create(&cluster), 2 * kSecond);
  if (!created.has_value() || !created->ok()) {
    return fail(cluster, FailureClass::kSetup, "bank region creation failed");
  }

  BankOracle oracle(options.accounts, kInitialBalance);
  RunState st;
  st.cluster = &cluster;
  st.rid = created->value();
  st.accounts = options.accounts;
  st.oracle = &oracle;
  st.fault_deadline = plan.LastFaultTime();
  st.event_log = &res.event_log;

  // The fault injector observes every fault point (discovery data) and
  // fires the plan's triggers. Kills, partitions, and lease expiries are
  // deferred through sim.At(now) so they never mutate cluster state under
  // the protocol code that hit the point.
  Cluster* cp = &cluster;
  RunState* stp = &st;
  const int total_machines = copts.machines + copts.zk_replicas;
  // Trigger-driven faults move the liveness deadline: the run must commit
  // within the window after the LAST fault of any kind.
  auto extend_deadline = [stp](SimTime until) {
    if (until > stp->fault_deadline) {
      stp->fault_deadline = until;
      stp->first_commit_after_faults = kSimTimeNever;
    }
  };
  FaultInjector::Callbacks cb;
  cb.now = [cp] { return static_cast<uint64_t>(cp->sim().Now()); };
  cb.kill = [cp, extend_deadline, total_machines](uint32_t m) {
    extend_deadline(cp->sim().Now());
    cp->sim().At(cp->sim().Now(), [cp, m, total_machines] {
      if (m < static_cast<uint32_t>(total_machines) &&
          cp->machine(static_cast<MachineId>(m)).alive()) {
        cp->Kill(static_cast<MachineId>(m));
      }
    });
  };
  cb.partition = [cp, extend_deadline, total_machines](uint32_t m, uint64_t window_ns) {
    SimDuration w = window_ns == 0 ? kDefaultPartitionWindow
                                   : static_cast<SimDuration>(window_ns);
    extend_deadline(cp->sim().Now() + w);
    cp->sim().At(cp->sim().Now(), [cp, m, total_machines] {
      std::vector<MachineId> minority = {static_cast<MachineId>(m)};
      std::vector<MachineId> majority;
      for (int i = 0; i < total_machines; i++) {
        if (static_cast<uint32_t>(i) != m) {
          majority.push_back(static_cast<MachineId>(i));
        }
      }
      cp->fabric().SetPartition({majority, minority});
    });
    cp->sim().At(cp->sim().Now() + w, [cp] { cp->fabric().ClearPartition(); });
  };
  cb.lease_expiry = [cp, extend_deadline](uint32_t m, uint32_t peer) {
    extend_deadline(cp->sim().Now());
    cp->sim().At(cp->sim().Now(), [cp, m, peer] {
      if (m < static_cast<uint32_t>(cp->num_machines()) &&
          cp->machine(static_cast<MachineId>(m)).alive()) {
        cp->node(static_cast<MachineId>(m))
            .lease_manager()
            .ForceExpiry(static_cast<MachineId>(peer));
      }
    });
  };
  cb.note = [cp, stp](const std::string& line) {
    std::ostringstream full;
    full << "t=" << cp->sim().Now() / kMillisecond << "ms " << line;
    stp->event_log->push_back(full.str());
    FARM_LOG(Info) << "chaos: " << full.str();
    cp->metrics_registry().GetCounter("chaos_injections", {}).Inc();
  };
  FaultInjector injector(plan.triggers, cb, static_cast<uint64_t>(plan.options.start));
  HookGuard hook_guard(&injector);

  std::string liveness_postmortem;
  ChaosExecutor exec(&st, &plan);
  Spawn(Driver(&st, plan.seed, plan.options.horizon, copts.node.worker_threads));
  Spawn(exec.Run());
  Spawn(Watchdog(&st, &liveness_postmortem));

  SimTime now = cluster.sim().Now();
  if (plan.options.horizon > now) {
    cluster.RunFor(plan.options.horizon - now);
  }
  // Settle: let in-flight commits and recovery drain before the final read.
  cluster.RunFor(60 * kMillisecond);

  res.commits = st.commits;
  res.last_commit = st.last_commit;
  res.point_hits = injector.point_hits();
  res.triggers_fired = injector.firings().size();
  for (const auto& op : oracle.ops()) {
    res.unknown_outcomes += op.outcome == OpOutcome::kUnknown ? 1 : 0;
  }
  const Configuration* cfg = FreshestConfig(cluster);
  if (cfg != nullptr) {
    for (MachineId m : cfg->machines) {
      if (cluster.machine(m).alive()) {
        res.final_members.push_back(static_cast<uint32_t>(m));
      }
    }
  }

  if (cluster.AnyRegionLost()) {
    return fail(cluster, FailureClass::kRegionLost, "bank region lost all replicas");
  }
  if (st.commits == 0) {
    return fail(cluster, FailureClass::kLiveness, "liveness: no transfer ever committed",
                liveness_postmortem);
  }
  if (st.first_commit_after_faults == kSimTimeNever ||
      st.first_commit_after_faults > st.fault_deadline + kLivenessWindow) {
    return fail(cluster, FailureClass::kLiveness,
                "liveness: no commit within the recovery window after the last fault",
                liveness_postmortem);
  }

  // Final state, read from the surviving primary's replica.
  const RegionPlacement* placement = cfg == nullptr ? nullptr : cfg->Placement(st.rid);
  if (placement == nullptr || !cluster.machine(placement->primary).alive()) {
    return fail(cluster, FailureClass::kRegionLost,
                "no live primary for the bank region after settling");
  }
  RegionReplica* rep = cluster.node(placement->primary).replica(st.rid);
  if (rep == nullptr) {
    return fail(cluster, FailureClass::kRegionLost,
                "primary is missing its bank region replica");
  }
  std::vector<FinalAccount> final_state(static_cast<size_t>(options.accounts));
  for (int a = 0; a < options.accounts; a++) {
    FinalAccount& fin = final_state[static_cast<size_t>(a)];
    std::memcpy(&fin.seq, rep->Ptr(static_cast<uint32_t>(a) * kStride + 8, 8), 8);
    std::memcpy(&fin.balance, rep->Ptr(static_cast<uint32_t>(a) * kStride + 16, 8), 8);
  }

  std::string failure;
  CheckDetail detail;
  if (!oracle.Check(final_state, &failure, &detail)) {
    return fail(cluster, FailureClass::kOracle,
                failure + FlightSeqWindows(cluster, detail.txs));
  }
  res.ok = true;
  return res;
}

}  // namespace chaos
}  // namespace farm
