// Systematic fault-point exploration (the tentpole of the robustness PR).
//
// Instead of sampling random fault timelines (plan.cc), the explorer
// enumerates the protocol's own fault points: a baseline discovery run
// records every point the workload reaches; then, for each reachable point
// and each applicable fault action, one run injects exactly that fault at
// that point and checks the BankOracle plus the liveness watchdog. Depth 2
// targets points that only become reachable during recovery from a first
// fault (e.g. "lock-recovery-begin" exists only after a primary died).
//
// Every schedule is a ChaosPlan (trigger lines only), so a failing schedule
// dumps, shrinks to a minimal reproducer, and replays byte-identically with
// the standard chaos tooling.
#ifndef SRC_CHAOS_EXPLORE_H_
#define SRC_CHAOS_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/chaos/harness.h"
#include "src/obs/metrics.h"

namespace farm {
namespace chaos {

struct ExploreOptions {
  int machines = 5;
  int accounts = 16;
  uint64_t seed = 1;
  // Per-run workload horizon. Shorter than the sweep plans' 900 ms: each
  // schedule injects at most two faults, all anchored near `start`.
  SimTime horizon = 400 * kMillisecond;
  int max_depth = 1;       // 1 = one fault per run, 2 = nested second fault
  int depth2_budget = 24;  // cap on depth-2 schedules (they multiply fast)
  // Actions to sweep; per point, only the applicable subset runs.
  std::vector<FaultAction> actions = {FaultAction::kKill, FaultAction::kPartition,
                                      FaultAction::kDropMsg, FaultAction::kTornWrite,
                                      FaultAction::kLeaseExpiry};
  // Restrict the sweep to these points (empty = every discovered point).
  std::vector<std::string> points;
  // Thread the deliberate protocol mutation through to every run (the
  // explorer's own regression gate: the sweep must catch it).
  bool mutate_skip_backup_ack = false;
  // Run every schedule with data-plane batching on, so the sweep covers the
  // batch-flush fault point and partial-batch delivery after kills.
  bool batch_data_plane = false;
  // Run every schedule with adaptive lock-conflict backoff on.
  bool adaptive_backoff = false;
  // Minimize + replay-check the first failing schedule.
  bool shrink = true;
  // Coverage counters land here when non-null:
  //   explore_points{state=discovered|exercised|survived}
  //   explore_runs{outcome=pass|fail}
  metrics::Registry* metrics = nullptr;
  // Per-run progress line ("run 13/42 kill at phase-begin:lock ... pass").
  std::function<void(const std::string&)> progress;
};

struct ExploreFailure {
  ChaosPlan plan;    // the failing schedule as first found
  ChaosPlan shrunk;  // minimized reproducer (== plan when shrinking is off)
  std::string failure;
  FailureClass failure_class = FailureClass::kNone;
  std::string postmortem;
  // The shrunk plan re-ran with an identical failure message, event log,
  // and postmortem (byte-compared).
  bool replay_identical = false;
};

struct ExploreResult {
  // Coverage ledger. A point is `discovered` when the baseline (or any
  // deeper run) hit it, `exercised` when some schedule fired a fault at it,
  // and `survived` when every schedule that injected there passed.
  std::map<std::string, uint64_t> discovered;  // point -> baseline hit count
  std::set<std::string> exercised;
  std::set<std::string> survived;
  uint64_t runs = 0;
  uint64_t failures = 0;
  std::vector<ExploreFailure> failing;  // detail for the first few failures

  bool ok() const { return failures == 0; }
  // Human-readable coverage summary (one line per point plus totals).
  std::string Report() const;
};

ExploreResult Explore(const ExploreOptions& options);

}  // namespace chaos
}  // namespace farm

#endif  // SRC_CHAOS_EXPLORE_H_
