#include "src/chaos/faultpoint.h"

#include <sstream>

namespace farm {
namespace chaos {

namespace {

struct ActionNameRow {
  FaultAction action;
  const char* name;
};

constexpr ActionNameRow kActionNames[] = {
    {FaultAction::kKill, "kill"},
    {FaultAction::kPartition, "partition"},
    {FaultAction::kDropMsg, "drop-msg"},
    {FaultAction::kTornWrite, "torn-write"},
    {FaultAction::kLeaseExpiry, "lease-expiry"},
    {FaultAction::kAnchor, "anchor"},
};

}  // namespace

const char* FaultActionName(FaultAction a) {
  for (const auto& row : kActionNames) {
    if (row.action == a) {
      return row.name;
    }
  }
  return "unknown";
}

bool FaultActionFromName(const std::string& name, FaultAction* out) {
  for (const auto& row : kActionNames) {
    if (name == row.name) {
      *out = row.action;
      return true;
    }
  }
  return false;
}

bool ActionApplicable(FaultAction action, const std::string& point) {
  switch (action) {
    case FaultAction::kDropMsg:
      return point == "msg-send";
    case FaultAction::kTornWrite:
      return point == "ringlog-append";
    case FaultAction::kLeaseExpiry:
      return point == "lease-send";
    case FaultAction::kKill:
    case FaultAction::kPartition:
    case FaultAction::kAnchor:
      return true;
  }
  return false;
}

FaultInjector::FaultInjector(std::vector<FaultTrigger> triggers, Callbacks cb,
                             uint64_t arm_at)
    : triggers_(std::move(triggers)), cb_(std::move(cb)), arm_at_(arm_at) {}

uint32_t FaultInjector::OnPoint(uint32_t machine, const char* point, uint64_t arg) {
  uint64_t now = cb_.now();
  if (now < arm_at_) {
    return fault::kEffectNone;
  }
  point_hits_[point]++;
  if (next_ >= triggers_.size()) {
    return fault::kEffectNone;
  }
  const FaultTrigger& t = triggers_[next_];
  if (t.point != point ||
      (t.machine >= 0 && machine != static_cast<uint32_t>(t.machine))) {
    return fault::kEffectNone;
  }
  if (++counted_ < t.hit) {
    return fault::kEffectNone;
  }
  next_++;
  counted_ = 0;
  firings_.push_back(Firing{next_ - 1, now, machine});
  last_fire_time_ = now;
  if (cb_.note) {
    std::ostringstream line;
    line << "inject " << FaultActionName(t.action) << " at " << t.point << " hit "
         << t.hit << " -> m" << machine;
    cb_.note(line.str());
  }
  switch (t.action) {
    case FaultAction::kAnchor:
      return fault::kEffectNone;
    case FaultAction::kKill:
      cb_.kill(machine);
      return fault::kEffectNone;
    case FaultAction::kPartition:
      cb_.partition(machine, t.param);
      return fault::kEffectNone;
    case FaultAction::kDropMsg:
      return fault::kEffectDropMessage;
    case FaultAction::kTornWrite:
      // The tear models a crash mid-DMA: the writer dies at the same
      // instant, and recovery must cope with its half-written frame.
      cb_.kill(machine);
      return fault::kEffectTornWrite;
    case FaultAction::kLeaseExpiry:
      cb_.lease_expiry(machine, static_cast<uint32_t>(arg));
      return fault::kEffectNone;
  }
  return fault::kEffectNone;
}

}  // namespace chaos
}  // namespace farm
