#include "src/chaos/explore.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace farm {
namespace chaos {

namespace {

ChaosPlan MakePlan(const ExploreOptions& o, std::vector<FaultTrigger> triggers) {
  ChaosPlan plan;
  plan.seed = o.seed;
  plan.options.machines = o.machines;
  plan.options.horizon = o.horizon;
  plan.options.max_faults = static_cast<int>(triggers.size());
  plan.triggers = std::move(triggers);
  return plan;
}

ChaosRunResult RunPlan(const ExploreOptions& o, const ChaosPlan& plan) {
  ChaosRunOptions ro;
  ro.machines = o.machines;
  ro.accounts = o.accounts;
  ro.seed = o.seed;
  ro.mutate_skip_backup_ack = o.mutate_skip_backup_ack;
  ro.batch_data_plane = o.batch_data_plane;
  ro.adaptive_backoff = o.adaptive_backoff;
  return RunChaosPlan(ro, plan);
}

// Everything a replay must reproduce byte-for-byte: the failure, the
// resolved event log (includes every `inject` line with its fire time), and
// the merged flight postmortem.
std::string RunFingerprint(const ChaosRunResult& r) {
  std::ostringstream out;
  out << r.failure << "\n" << r.commits << "\n";
  for (const auto& line : r.event_log) {
    out << line << "\n";
  }
  out << r.postmortem;
  return out.str();
}

// Greedy 1-minimal shrink: repeatedly drop any single event or trigger
// whose removal preserves a failure of the same class. Quadratic in plan
// size, but explorer schedules have at most a handful of faults.
ChaosPlan ShrinkPlan(const ExploreOptions& o, const ChaosPlan& failing, FailureClass cls,
                     uint64_t* extra_runs) {
  ChaosPlan cur = failing;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cur.events.size() && !changed; i++) {
      ChaosPlan cand = cur;
      cand.events.erase(cand.events.begin() + static_cast<long>(i));
      ChaosRunResult r = RunPlan(o, cand);
      (*extra_runs)++;
      if (!r.ok && r.failure_class == cls) {
        cur = std::move(cand);
        changed = true;
      }
    }
    for (size_t i = 0; i < cur.triggers.size() && !changed; i++) {
      ChaosPlan cand = cur;
      cand.triggers.erase(cand.triggers.begin() + static_cast<long>(i));
      ChaosRunResult r = RunPlan(o, cand);
      (*extra_runs)++;
      if (!r.ok && r.failure_class == cls) {
        cur = std::move(cand);
        changed = true;
      }
    }
  }
  return cur;
}

}  // namespace

std::string ExploreResult::Report() const {
  std::ostringstream out;
  out << "fault-point exploration: " << discovered.size() << " points discovered, "
      << exercised.size() << " exercised, " << survived.size() << " survived; " << runs
      << " runs, " << failures << " failures\n";
  for (const auto& [point, hits] : discovered) {
    out << "  " << point << " hits=" << hits;
    if (exercised.count(point) == 0) {
      out << " NOT-EXERCISED";
    } else if (survived.count(point) == 0) {
      out << " FAILED";
    } else {
      out << " survived";
    }
    out << "\n";
  }
  for (const auto& f : failing) {
    out << "failure (" << FailureClassName(f.failure_class) << "): " << f.failure << "\n";
    out << "  shrunk to " << f.shrunk.triggers.size() << " trigger(s) + "
        << f.shrunk.events.size() << " event(s), replay "
        << (f.replay_identical ? "byte-identical" : "NOT byte-identical") << "\n";
  }
  return out.str();
}

ExploreResult Explore(const ExploreOptions& o) {
  ExploreResult res;
  auto say = [&o](const std::string& s) {
    if (o.progress) {
      o.progress(s);
    }
    FARM_LOG(Info) << "explore: " << s;
  };
  // Which points had a failing schedule (for the survived set).
  std::set<std::string> point_failed;
  uint64_t sweep_pass = 0;
  uint64_t sweep_fail = 0;

  auto handle_failure = [&](const ChaosPlan& plan, const ChaosRunResult& r) {
    res.failures++;
    sweep_fail++;
    if (res.failing.size() >= 8) {
      return;  // keep detail bounded; the counts still tell the story
    }
    ExploreFailure f;
    f.plan = plan;
    f.shrunk = plan;
    f.failure = r.failure;
    f.failure_class = r.failure_class;
    f.postmortem = r.postmortem;
    if (o.shrink && res.failing.size() < 4) {
      f.shrunk = ShrinkPlan(o, plan, r.failure_class, &res.runs);
      ChaosRunResult r1 = RunPlan(o, f.shrunk);
      ChaosRunResult r2 = RunPlan(o, f.shrunk);
      res.runs += 2;
      f.replay_identical = !r1.ok && RunFingerprint(r1) == RunFingerprint(r2);
      std::ostringstream line;
      line << "shrunk to " << f.shrunk.triggers.size() << " trigger(s), replay "
           << (f.replay_identical ? "byte-identical" : "NOT byte-identical");
      say(line.str());
    }
    res.failing.push_back(std::move(f));
  };

  // ---- discovery: a fault-free run enumerates every reachable point ----
  ChaosPlan baseline = MakePlan(o, {});
  ChaosRunResult base = RunPlan(o, baseline);
  res.runs++;
  if (!base.ok) {
    say("baseline (no-fault) run failed: " + base.failure);
    handle_failure(baseline, base);
    return res;
  }
  sweep_pass++;
  res.discovered = base.point_hits;
  say("discovered " + std::to_string(res.discovered.size()) + " fault points");

  std::vector<std::string> points;
  for (const auto& [p, hits] : res.discovered) {
    (void)hits;
    if (o.points.empty() ||
        std::find(o.points.begin(), o.points.end(), p) != o.points.end()) {
      points.push_back(p);
    }
  }

  // ---- depth 1: one fault per run, every applicable action ----
  // Depth-2 seeds: for each point first reached only under a depth-1 kill,
  // the schedule that revealed it.
  std::map<std::string, FaultTrigger> depth2_seeds;
  for (const std::string& p : points) {
    for (FaultAction a : o.actions) {
      if (!ActionApplicable(a, p)) {
        continue;
      }
      FaultTrigger t;
      t.point = p;
      t.action = a;
      ChaosPlan plan = MakePlan(o, {t});
      ChaosRunResult r = RunPlan(o, plan);
      res.runs++;
      if (r.triggers_fired > 0) {
        res.exercised.insert(p);
      }
      std::ostringstream line;
      line << "depth1 " << FaultActionName(a) << " at " << p
           << (r.triggers_fired > 0 ? "" : " (never fired)") << " -> "
           << (r.ok ? "pass" : r.failure);
      say(line.str());
      if (!r.ok) {
        point_failed.insert(p);
        handle_failure(plan, r);
      } else {
        sweep_pass++;
        if (o.max_depth >= 2 && a == FaultAction::kKill) {
          for (const auto& [np, hits] : r.point_hits) {
            (void)hits;
            if (res.discovered.count(np) == 0 && depth2_seeds.count(np) == 0) {
              depth2_seeds.emplace(np, t);
            }
          }
        }
      }
    }
  }

  // ---- depth 2: a second fault at a recovery-era point ----
  int depth2_done = 0;
  for (const auto& [np, seed_trigger] : depth2_seeds) {
    if (depth2_done >= o.depth2_budget) {
      say("depth2 budget exhausted; " +
          std::to_string(depth2_seeds.size() - static_cast<size_t>(depth2_done)) +
          " recovery-era points left unswept");
      break;
    }
    depth2_done++;
    FaultTrigger second;
    second.point = np;
    second.action = FaultAction::kKill;
    ChaosPlan plan = MakePlan(o, {seed_trigger, second});
    ChaosRunResult r = RunPlan(o, plan);
    res.runs++;
    res.discovered.emplace(np, 0);  // reachable only past the first fault
    if (r.triggers_fired >= 2) {
      res.exercised.insert(np);
    }
    std::ostringstream line;
    line << "depth2 kill at " << np << " (after kill at " << seed_trigger.point << ")"
         << (r.triggers_fired >= 2 ? "" : " (second never fired)") << " -> "
         << (r.ok ? "pass" : r.failure);
    say(line.str());
    if (!r.ok) {
      point_failed.insert(np);
      handle_failure(plan, r);
    } else {
      sweep_pass++;
    }
  }

  for (const std::string& p : res.exercised) {
    if (point_failed.count(p) == 0) {
      res.survived.insert(p);
    }
  }

  if (o.metrics != nullptr) {
    metrics::Registry& m = *o.metrics;
    m.GetCounter("explore_points", {{"state", "discovered"}}).Inc(res.discovered.size());
    m.GetCounter("explore_points", {{"state", "exercised"}}).Inc(res.exercised.size());
    m.GetCounter("explore_points", {{"state", "survived"}}).Inc(res.survived.size());
    m.GetCounter("explore_runs", {{"outcome", "pass"}}).Inc(sweep_pass);
    m.GetCounter("explore_runs", {{"outcome", "fail"}}).Inc(sweep_fail);
    uint64_t aux = res.runs - sweep_pass - sweep_fail;
    m.GetCounter("explore_runs", {{"outcome", "shrink"}}).Inc(aux);
  }
  return res;
}

}  // namespace chaos
}  // namespace farm
