// Chaos harness: runs a bank-transfer workload against a simulated cluster
// while executing a ChaosPlan's fault timeline, then checks the committed
// history with the BankOracle and a liveness watchdog.
//
// A run is a pure function of (ChaosRunOptions, plan): the workload, the
// fault schedule, and the fabric fault RNG are all derived from the plan
// seed, so a failing seed's dumped plan replays byte-identically.
#ifndef SRC_CHAOS_HARNESS_H_
#define SRC_CHAOS_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/chaos/plan.h"

namespace farm {
namespace chaos {

// Coarse classification of a run failure; tools/chaos maps these to
// distinct exit codes so CI and --until-fail scripts can tell an invariant
// violation from a stuck cluster without parsing messages.
enum class FailureClass : uint8_t {
  kNone = 0,        // run passed
  kSetup = 1,       // the cluster never got off the ground (region creation)
  kRegionLost = 2,  // the bank region lost every replica (or its primary)
  kLiveness = 3,    // the cluster stopped committing after the faults
  kOracle = 4,      // a consistency invariant was violated
};

const char* FailureClassName(FailureClass c);

struct ChaosRunOptions {
  int machines = 6;
  int accounts = 16;
  uint64_t seed = 1;
  PlanOptions plan;  // plan.machines is forced to `machines`
  // Deliberately UNSAFE protocol mutation (skip waiting for backup hardware
  // acks before COMMIT-PRIMARY); used to prove the oracle catches real
  // protocol bugs. Never set outside that test.
  bool mutate_skip_backup_ack = false;
  // Run the workload with data-plane batching (and its fault points: faults
  // landing inside a batch flush, partial-batch delivery after a kill).
  bool batch_data_plane = false;
  // Run coordinators with adaptive lock-conflict backoff, so the sweep also
  // covers faults landing while a coordinator sleeps out a backoff delay.
  bool adaptive_backoff = false;
};

struct ChaosRunResult {
  bool ok = false;
  std::string failure;  // first violated invariant, empty when ok
  FailureClass failure_class = FailureClass::kNone;
  ChaosPlan plan;       // the executed plan (dump this to reproduce)
  uint64_t commits = 0;
  uint64_t unknown_outcomes = 0;
  SimTime last_commit = 0;
  // Fault-point hit counts observed by the injector (from plan.options.start
  // on): the explorer's discovery data. Keyed by point name.
  std::map<std::string, uint64_t> point_hits;
  // How many of plan.triggers actually fired.
  uint64_t triggers_fired = 0;
  // Live members of the freshest configuration after settling, for rejoin
  // assertions in regression tests.
  std::vector<uint32_t> final_members;
  // Human-readable record of the events as resolved against cluster state
  // ("t=120ms kill-primary -> m2"); goes in failing-seed artifacts.
  std::vector<std::string> event_log;
  // Flight-recorder postmortem (merged per-machine protocol timeline),
  // captured at the moment an invariant fired; empty when ok.
  std::string postmortem;
};

// Generates a plan from (options.plan, options.seed) and runs it.
ChaosRunResult RunChaos(const ChaosRunOptions& options);

// Runs an explicit plan (replay path). The plan's own options govern the
// horizon and sizing; options.seed still seeds the workload and fabric.
ChaosRunResult RunChaosPlan(const ChaosRunOptions& options, const ChaosPlan& plan);

}  // namespace chaos
}  // namespace farm

#endif  // SRC_CHAOS_HARNESS_H_
