#include "src/chaos/oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace farm {
namespace chaos {

namespace {

// Reference to one account access: (op index in ops(), access index).
struct AccessRef {
  size_t op = 0;
  size_t access = 0;
};

// Resolved chain for one account: the op filling each write slot 1..S.
// Slots filled by committed ops are forced; gaps carry unknown-outcome ops
// found by ResolveChain.
using Chain = std::vector<AccessRef>;

// Backtracking fill of `chain` from `slot` onward. Committed claims are
// forced; a gap slot tries every unused unknown access whose read links to
// the running balance. Unknown candidates are rare (only transfers in
// flight when a fault hit), so the search stays tiny.
bool FillFrom(const std::vector<TransferOp>& ops, uint64_t final_seq, int64_t final_balance,
              const std::map<uint64_t, AccessRef>& committed_slots,
              const std::vector<AccessRef>& unknown_candidates, std::vector<bool>& used,
              uint64_t slot, int64_t balance, Chain& chain) {
  if (slot > final_seq) {
    return balance == final_balance;
  }
  auto it = committed_slots.find(slot);
  if (it != committed_slots.end()) {
    const AccountAccess& a = ops[it->second.op].accesses[it->second.access];
    if (a.bal_read != balance) {
      return false;
    }
    chain.push_back(it->second);
    if (FillFrom(ops, final_seq, final_balance, committed_slots, unknown_candidates, used,
                 slot + 1, a.bal_written, chain)) {
      return true;
    }
    chain.pop_back();
    return false;
  }
  for (size_t i = 0; i < unknown_candidates.size(); i++) {
    if (used[i]) {
      continue;
    }
    const AccessRef& ref = unknown_candidates[i];
    const AccountAccess& a = ops[ref.op].accesses[ref.access];
    if (a.seq_read + 1 != slot || a.bal_read != balance) {
      continue;
    }
    used[i] = true;
    chain.push_back(ref);
    if (FillFrom(ops, final_seq, final_balance, committed_slots, unknown_candidates, used,
                 slot + 1, a.bal_written, chain)) {
      return true;
    }
    chain.pop_back();
    used[i] = false;
  }
  return false;
}

std::string DescribeOp(const TransferOp& op) {
  std::ostringstream out;
  out << "op " << op.uid << " (tx m" << op.tx.machine << "/" << op.tx.local << ")";
  return out.str();
}

}  // namespace

uint64_t BankOracle::CommittedCount() const {
  uint64_t n = 0;
  for (const auto& op : ops_) {
    n += op.outcome == OpOutcome::kCommitted ? 1 : 0;
  }
  return n;
}

bool BankOracle::Check(const std::vector<FinalAccount>& final_state, std::string* failure,
                       CheckDetail* detail) const {
  std::ostringstream why;
  auto blame = [detail](const TxId& tx) {
    if (detail != nullptr) {
      detail->txs.push_back(tx);
    }
  };

  // ---- 1. at-most-once commit per TxId ----
  std::set<TxId> committed_ids;
  for (const auto& op : ops_) {
    if (op.outcome != OpOutcome::kCommitted) {
      continue;
    }
    if (!committed_ids.insert(op.tx).second) {
      why << "duplicate commit for TxId of " << DescribeOp(op);
      blame(op.tx);
      *failure = why.str();
      return false;
    }
  }

  // ---- 2. conservation ----
  int64_t total = 0;
  for (const auto& a : final_state) {
    total += a.balance;
  }
  int64_t expected = static_cast<int64_t>(accounts_) * initial_balance_;
  if (total != expected) {
    why << "conservation violated: final total " << total << " != " << expected;
    *failure = why.str();
    return false;
  }

  // ---- 3. per-account version chains ----
  std::vector<Chain> chains(static_cast<size_t>(accounts_));
  for (int acct = 0; acct < accounts_; acct++) {
    const FinalAccount& fin = final_state[static_cast<size_t>(acct)];
    std::map<uint64_t, AccessRef> committed_slots;
    std::vector<AccessRef> unknown_candidates;
    for (size_t i = 0; i < ops_.size(); i++) {
      const TransferOp& op = ops_[i];
      for (size_t j = 0; j < op.accesses.size(); j++) {
        const AccountAccess& a = op.accesses[j];
        if (a.account != acct) {
          continue;
        }
        if (op.outcome == OpOutcome::kCommitted) {
          uint64_t slot = a.seq_read + 1;
          if (slot > fin.seq) {
            why << "lost committed write: " << DescribeOp(op) << " wrote account " << acct
                << " slot " << slot << " but final seq is " << fin.seq;
            blame(op.tx);
            *failure = why.str();
            return false;
          }
          auto [it, inserted] = committed_slots.emplace(slot, AccessRef{i, j});
          if (!inserted) {
            why << "double write: " << DescribeOp(op) << " and "
                << DescribeOp(ops_[it->second.op]) << " both claim account " << acct
                << " slot " << slot;
            blame(op.tx);
            blame(ops_[it->second.op].tx);
            *failure = why.str();
            return false;
          }
        } else if (op.outcome == OpOutcome::kUnknown) {
          unknown_candidates.push_back(AccessRef{i, j});
        }
      }
    }
    std::vector<bool> used(unknown_candidates.size(), false);
    Chain& chain = chains[static_cast<size_t>(acct)];
    if (!FillFrom(ops_, fin.seq, fin.balance, committed_slots, unknown_candidates, used,
                  1, initial_balance_, chain)) {
      why << "account " << acct << " chain inconsistent: " << committed_slots.size()
          << " committed writes and " << unknown_candidates.size()
          << " unknown-outcome candidates cannot explain final (seq " << fin.seq
          << ", balance " << fin.balance << ")";
      // Greedy re-walk for the diagnostic: force committed claims (and any
      // matching unknown op) slot by slot until the first slot that cannot
      // be explained, then name the claimants around it.
      uint64_t stuck_slot = 0;
      int64_t stuck_balance = initial_balance_;
      {
        int64_t balance = initial_balance_;
        std::vector<bool> dused(unknown_candidates.size(), false);
        for (uint64_t slot = 1; slot <= fin.seq; slot++) {
          bool filled = false;
          auto it = committed_slots.find(slot);
          if (it != committed_slots.end()) {
            const AccountAccess& a = ops_[it->second.op].accesses[it->second.access];
            if (a.bal_read == balance) {
              balance = a.bal_written;
              filled = true;
            }
          } else {
            for (size_t i = 0; i < unknown_candidates.size(); i++) {
              const AccountAccess& a =
                  ops_[unknown_candidates[i].op].accesses[unknown_candidates[i].access];
              if (!dused[i] && a.seq_read + 1 == slot && a.bal_read == balance) {
                dused[i] = true;
                balance = a.bal_written;
                filled = true;
                break;
              }
            }
          }
          if (!filled) {
            stuck_slot = slot;
            stuck_balance = balance;
            break;
          }
        }
      }
      if (stuck_slot != 0) {
        why << "; first unexplained slot " << stuck_slot << " (running balance "
            << stuck_balance << ")";
        auto sit = committed_slots.find(stuck_slot);
        if (sit != committed_slots.end()) {
          const AccountAccess& a = ops_[sit->second.op].accesses[sit->second.access];
          why << ": claimant " << DescribeOp(ops_[sit->second.op]) << " read (seq "
              << a.seq_read << ", balance " << a.bal_read << ") wrote balance "
              << a.bal_written;
        } else {
          why << ": no committed or unknown-outcome claimant";
          // A write landed that nothing owns up to: look for an op the
          // application saw as aborted whose access matches the gap.
          for (size_t i = 0; i < ops_.size(); i++) {
            for (const AccountAccess& a : ops_[i].accesses) {
              if (a.account == acct && a.seq_read + 1 == stuck_slot &&
                  a.bal_read == stuck_balance) {
                why << "; aborted-but-applied suspect " << DescribeOp(ops_[i]);
                blame(ops_[i].tx);
              }
            }
          }
        }
        // Name the committed neighbors for context; they bound the gap.
        for (uint64_t s = stuck_slot > 2 ? stuck_slot - 2 : 1; s <= stuck_slot + 2; s++) {
          auto nit = committed_slots.find(s);
          if (nit != committed_slots.end()) {
            why << (s < stuck_slot ? "; before: " : (s == stuck_slot ? "; at: " : "; after: "))
                << "slot " << s << " " << DescribeOp(ops_[nit->second.op]);
            blame(ops_[nit->second.op].tx);
          }
        }
      }
      *failure = why.str();
      return false;
    }
  }

  // ---- 4. strict serializability ----
  // Graph nodes: one per op participating in any chain, plus one "clock"
  // node per distinct commit-completion time. Chain edges order conflicting
  // ops; clock nodes compress real-time precedence (A.end < B.begin) into
  // O(n) edges: A -> clock[A.end] -> ... -> clock[t] -> B for the largest
  // end time t before B began. A cycle means no serial order matches both
  // the conflict order and real time.
  std::set<size_t> active_ops;
  for (const auto& chain : chains) {
    for (const auto& ref : chain) {
      active_ops.insert(ref.op);
    }
  }
  std::map<size_t, size_t> op_node;  // op index -> graph node id
  std::vector<size_t> node_op;       // graph node id -> op index (clock nodes: npos)
  size_t next_node = 0;
  for (size_t op : active_ops) {
    op_node[op] = next_node++;
    node_op.push_back(op);
  }
  std::vector<SimTime> end_times;
  for (size_t op : active_ops) {
    if (ops_[op].outcome == OpOutcome::kCommitted) {
      end_times.push_back(ops_[op].end);
    }
  }
  std::sort(end_times.begin(), end_times.end());
  end_times.erase(std::unique(end_times.begin(), end_times.end()), end_times.end());
  std::map<SimTime, size_t> clock_node;
  for (SimTime t : end_times) {
    clock_node[t] = next_node++;
    node_op.push_back(static_cast<size_t>(-1));
  }

  std::vector<std::vector<size_t>> adj(next_node);
  for (const auto& chain : chains) {
    for (size_t k = 0; k + 1 < chain.size(); k++) {
      adj[op_node[chain[k].op]].push_back(op_node[chain[k + 1].op]);
    }
  }
  for (size_t k = 0; k + 1 < end_times.size(); k++) {
    adj[clock_node[end_times[k]]].push_back(clock_node[end_times[k + 1]]);
  }
  for (size_t op : active_ops) {
    if (ops_[op].outcome == OpOutcome::kCommitted) {
      adj[op_node[op]].push_back(clock_node[ops_[op].end]);
    }
    // Largest commit time strictly before this op began: that commit (and
    // everything before it) must serialize first.
    auto it = std::lower_bound(end_times.begin(), end_times.end(), ops_[op].begin);
    if (it != end_times.begin()) {
      adj[clock_node[*std::prev(it)]].push_back(op_node[op]);
    }
  }

  // Iterative three-color DFS for a cycle.
  std::vector<uint8_t> color(next_node, 0);  // 0 white, 1 gray, 2 black
  for (size_t start = 0; start < next_node; start++) {
    if (color[start] != 0) {
      continue;
    }
    std::vector<std::pair<size_t, size_t>> stack = {{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adj[node].size()) {
        size_t next = adj[node][edge++];
        if (color[next] == 1) {
          why << "strict serializability violated: conflict/real-time cycle through";
          // The cycle is the gray-stack suffix from `next` up; name its ops.
          size_t from = 0;
          while (from < stack.size() && stack[from].first != next) {
            from++;
          }
          for (size_t k = from; k < stack.size(); k++) {
            size_t op = node_op[stack[k].first];
            if (op != static_cast<size_t>(-1)) {
              why << " " << DescribeOp(ops_[op]);
              blame(ops_[op].tx);
            }
          }
          *failure = why.str();
          return false;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back({next, 0});
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }

  return true;
}

}  // namespace chaos
}  // namespace farm
