// Invariant oracle for the chaos harness's bank-transfer workload.
//
// The harness records every attempted transfer (committed, aborted, or
// unknown-outcome) with the versions and balances it observed; after the run
// the oracle checks the committed history against the final stored state:
//
//   1. at-most-once commit per TxId;
//   2. money conservation (transfers move balance, never create it);
//   3. per-account version chains: the final stored sequence number S means
//      exactly S writes took effect, every committed write must occupy its
//      claimed slot, and gaps are explainable only by unknown-outcome
//      transfers whose reads link into the chain (an unknown op may have
//      been committed by recovery);
//   4. strict serializability: the per-account chain orders plus real-time
//      precedence (op A committed before op B began => A serializes first)
//      must form an acyclic graph.
//
// Check 3 is what catches torn commit protocols: a coordinator that reports
// commit before its backups are durable produces a committed op whose write
// is missing from the final chain (or two committed ops claiming one slot)
// once a crash forces recovery to the surviving replicas.
#ifndef SRC_CHAOS_ORACLE_H_
#define SRC_CHAOS_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/time.h"

namespace farm {
namespace chaos {

enum class OpOutcome : uint8_t {
  kCommitted = 0,  // Commit() returned OK
  kAborted = 1,    // clean abort (kAborted): took no effect
  kUnknown = 2,    // failure mid-commit: recovery decided the outcome
};

// One account touched by a transfer: the (sequence, balance) observed at
// read time and the balance the transfer wrote. A committed transfer claims
// chain slot seq_read + 1 on this account.
struct AccountAccess {
  int account = 0;
  uint64_t seq_read = 0;
  int64_t bal_read = 0;
  int64_t bal_written = 0;
};

struct TransferOp {
  uint64_t uid = 0;  // harness-assigned, for failure messages
  TxId tx;
  OpOutcome outcome = OpOutcome::kAborted;
  SimTime begin = 0;             // taken before Begin()
  SimTime end = kSimTimeNever;   // taken after Commit() returned OK
  std::vector<AccountAccess> accesses;
};

// Final (sequence, balance) stored at an account, read from the surviving
// primary replica after the run settles.
struct FinalAccount {
  uint64_t seq = 0;
  int64_t balance = 0;
};

// Culprit transactions behind a Check failure. The harness resolves these
// against the flight recorders to append each machine's record-seq window
// for the offending transactions to the failure message.
struct CheckDetail {
  std::vector<TxId> txs;
};

class BankOracle {
 public:
  BankOracle(int accounts, int64_t initial_balance)
      : accounts_(accounts), initial_balance_(initial_balance) {}

  // Records an attempted transfer and returns its index. The harness records
  // ops as kUnknown BEFORE awaiting Commit() -- a coordinator killed
  // mid-commit parks its coroutine forever, and the op must still be in the
  // history for recovery-decided outcomes to be explainable.
  size_t Record(TransferOp op) {
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
  }
  // The TxId is assigned by the coordinator at commit start, so it is only
  // known once Commit() returns; parked ops keep an invalid id (uniqueness
  // is only checked for committed ops).
  void Resolve(size_t index, OpOutcome outcome, SimTime end, const TxId& tx) {
    ops_[index].outcome = outcome;
    ops_[index].end = end;
    ops_[index].tx = tx;
  }

  // Runs all checks; returns false and fills `failure` on the first
  // violation. `final_state` must have one entry per account. `detail`,
  // when non-null, receives the offending TxIds.
  bool Check(const std::vector<FinalAccount>& final_state, std::string* failure,
             CheckDetail* detail = nullptr) const;

  const std::vector<TransferOp>& ops() const { return ops_; }
  uint64_t CommittedCount() const;

 private:
  int accounts_;
  int64_t initial_balance_;
  std::vector<TransferOp> ops_;
};

}  // namespace chaos
}  // namespace farm

#endif  // SRC_CHAOS_ORACLE_H_
