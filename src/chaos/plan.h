// Seeded chaos schedules: a ChaosPlan is a timeline of fault events fully
// determined by (PlanOptions, seed). Plans serialize to a line-oriented text
// format so a failing seed's schedule can be dumped, attached to a bug
// report, edited by hand, and replayed byte-identically.
//
// Events carry pre-drawn randomness (`pick`) instead of drawing during
// execution: the executor resolves `pick` against cluster state at fire time
// (e.g. "pick mod number-of-backups"), so replaying a plan performs zero RNG
// draws and cannot perturb the simulation's deterministic streams.
#ifndef SRC_CHAOS_PLAN_H_
#define SRC_CHAOS_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/faultpoint.h"
#include "src/sim/time.h"

namespace farm {
namespace chaos {

enum class EventKind : uint8_t {
  kKillPrimary = 1,       // kill the bank region's current primary
  kKillBackup = 2,        // kill a backup of the bank region (pick selects)
  kKillCm = 3,            // kill the current configuration manager
  kPartitionMinority = 4, // isolate a minority of members (pick selects, param = size hint)
  kHeal = 5,              // clear the active partition
  kLossBurstStart = 6,    // datagram loss burst (param = loss in per-mille)
  kLossBurstEnd = 7,
  kSlowMachineStart = 8,  // gray failure: sustained CPU pressure (pick selects)
  kSlowMachineEnd = 9,
  kFlakyNicStart = 10,    // per-link drop/jitter/reorder/dup on one machine
                          // (pick selects, param = drop in per-mille)
  kFlakyNicEnd = 11,
  kPowerFailure = 12,     // whole-cluster power failure + restart recovery
  kRestartEmpty = 13,     // restart a killed machine empty and rejoin it
  kPartitionBackup = 14,  // isolate one backup of the tracked region
                          // (pick selects which); healed by kHeal
};

const char* EventKindName(EventKind k);
// Returns false when `name` is not a known event kind.
bool EventKindFromName(const std::string& name, EventKind* out);

struct ChaosEvent {
  SimTime at = 0;
  EventKind kind = EventKind::kHeal;
  // Pre-drawn randomness; resolved against cluster state when the event
  // fires (target selection). Meaning depends on `kind`.
  uint64_t pick = 0;
  // Kind-specific magnitude (e.g. loss per-mille, partition size hint).
  uint64_t param = 0;
};

struct PlanOptions {
  int machines = 6;
  int replication_factor = 3;
  SimTime start = 60 * kMillisecond;      // first fault at/after this time
  SimTime horizon = 900 * kMillisecond;   // run length; plans heal before it
  int max_faults = 6;
  bool allow_power_failure = true;
  bool allow_restart = true;
};

struct ChaosPlan {
  uint64_t seed = 0;
  PlanOptions options;
  std::vector<ChaosEvent> events;  // sorted by `at`
  // Fault-point triggers (the explorer's schedules): fired by execution
  // reaching named protocol points rather than by the clock, in order, with
  // chained hit counting (see src/chaos/faultpoint.h). Serialized as
  // `inject <point> <hit> <action> <machine> <param>` lines.
  std::vector<FaultTrigger> triggers;

  // Time of the last injected event; the cluster is fully healed after it
  // (every generated plan closes its partition/loss/slow/flaky windows).
  SimTime LastFaultTime() const;

  // Line-oriented text form; Parse(ToText()) round-trips exactly.
  std::string ToText() const;
  static bool Parse(const std::string& text, ChaosPlan* out);

  // Samples a fault timeline. Every draw comes from one Pcg32 seeded with
  // `seed` on the chaos stream, so the plan is a pure function of
  // (options, seed).
  static ChaosPlan Generate(const PlanOptions& options, uint64_t seed);
};

}  // namespace chaos
}  // namespace farm

#endif  // SRC_CHAOS_PLAN_H_
