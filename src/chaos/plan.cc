#include "src/chaos/plan.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rand.h"

namespace farm {
namespace chaos {

namespace {

// Dedicated PCG stream for plan generation, distinct from the simulator,
// workload, and fabric streams so chaos sampling can never perturb them.
constexpr uint64_t kChaosStream = 0xc4a05c4a05ULL;

struct KindNameRow {
  EventKind kind;
  const char* name;
};

constexpr KindNameRow kKindNames[] = {
    {EventKind::kKillPrimary, "kill-primary"},
    {EventKind::kKillBackup, "kill-backup"},
    {EventKind::kKillCm, "kill-cm"},
    {EventKind::kPartitionMinority, "partition-minority"},
    {EventKind::kHeal, "heal"},
    {EventKind::kLossBurstStart, "loss-burst-start"},
    {EventKind::kLossBurstEnd, "loss-burst-end"},
    {EventKind::kSlowMachineStart, "slow-machine-start"},
    {EventKind::kSlowMachineEnd, "slow-machine-end"},
    {EventKind::kFlakyNicStart, "flaky-nic-start"},
    {EventKind::kFlakyNicEnd, "flaky-nic-end"},
    {EventKind::kPowerFailure, "power-failure"},
    {EventKind::kRestartEmpty, "restart-empty"},
    {EventKind::kPartitionBackup, "partition-backup"},
};

}  // namespace

const char* EventKindName(EventKind k) {
  for (const auto& row : kKindNames) {
    if (row.kind == k) {
      return row.name;
    }
  }
  return "unknown";
}

bool EventKindFromName(const std::string& name, EventKind* out) {
  for (const auto& row : kKindNames) {
    if (name == row.name) {
      *out = row.kind;
      return true;
    }
  }
  return false;
}

SimTime ChaosPlan::LastFaultTime() const {
  SimTime last = 0;
  for (const auto& e : events) {
    last = std::max(last, e.at);
  }
  return last;
}

std::string ChaosPlan::ToText() const {
  std::ostringstream out;
  out << "farm-chaos-plan v1\n";
  out << "seed " << seed << "\n";
  out << "machines " << options.machines << "\n";
  out << "replication " << options.replication_factor << "\n";
  out << "start " << options.start << "\n";
  out << "horizon " << options.horizon << "\n";
  out << "max-faults " << options.max_faults << "\n";
  out << "allow-power-failure " << (options.allow_power_failure ? 1 : 0) << "\n";
  out << "allow-restart " << (options.allow_restart ? 1 : 0) << "\n";
  for (const auto& e : events) {
    out << "event " << e.at << " " << EventKindName(e.kind) << " " << e.pick
        << " " << e.param << "\n";
  }
  for (const auto& t : triggers) {
    out << "inject " << t.point << " " << t.hit << " " << FaultActionName(t.action)
        << " " << t.machine << " " << t.param << "\n";
  }
  return out.str();
}

bool ChaosPlan::Parse(const std::string& text, ChaosPlan* out) {
  ChaosPlan plan;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "farm-chaos-plan") {
      saw_magic = true;
    } else if (key == "seed") {
      ls >> plan.seed;
    } else if (key == "machines") {
      ls >> plan.options.machines;
    } else if (key == "replication") {
      ls >> plan.options.replication_factor;
    } else if (key == "start") {
      ls >> plan.options.start;
    } else if (key == "horizon") {
      ls >> plan.options.horizon;
    } else if (key == "max-faults") {
      ls >> plan.options.max_faults;
    } else if (key == "allow-power-failure") {
      int v = 0;
      ls >> v;
      plan.options.allow_power_failure = v != 0;
    } else if (key == "allow-restart") {
      int v = 0;
      ls >> v;
      plan.options.allow_restart = v != 0;
    } else if (key == "event") {
      ChaosEvent e;
      std::string kind_name;
      ls >> e.at >> kind_name >> e.pick >> e.param;
      if (ls.fail() || !EventKindFromName(kind_name, &e.kind)) {
        return false;
      }
      plan.events.push_back(e);
    } else if (key == "inject") {
      FaultTrigger t;
      std::string action_name;
      ls >> t.point >> t.hit >> action_name >> t.machine >> t.param;
      if (ls.fail() || !FaultActionFromName(action_name, &t.action)) {
        return false;
      }
      plan.triggers.push_back(t);
    } else {
      return false;
    }
    if (ls.fail()) {
      return false;
    }
  }
  if (!saw_magic) {
    return false;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  *out = std::move(plan);
  return true;
}

ChaosPlan ChaosPlan::Generate(const PlanOptions& options, uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.options = options;
  Pcg32 rng(seed, kChaosStream);

  // Kills are permanent (machines never rejoin unless a restart-empty event
  // follows); keep enough alive for a quorum and a full replica set.
  const int kill_budget =
      std::max(0, std::min(options.machines - options.replication_factor,
                           (options.machines - 1) / 2));
  int killed = 0;

  const int fault_count =
      1 + static_cast<int>(rng.Uniform(static_cast<uint32_t>(std::max(1, options.max_faults))));
  // Time after the last event for detection + recovery + the liveness probe.
  const SimDuration settle = 250 * kMillisecond;
  SimTime t = options.start;

  for (int i = 0; i < fault_count; i++) {
    t += 5 * kMillisecond + rng.Uniform(40) * kMillisecond;

    std::vector<EventKind> kinds = {EventKind::kPartitionMinority, EventKind::kPartitionBackup,
                                    EventKind::kLossBurstStart, EventKind::kSlowMachineStart,
                                    EventKind::kFlakyNicStart};
    if (killed < kill_budget) {
      kinds.push_back(EventKind::kKillPrimary);
      kinds.push_back(EventKind::kKillBackup);
      kinds.push_back(EventKind::kKillCm);
    }
    // A power failure reboots every machine with NVRAM intact; restrict it to
    // moments with no machines down so it cannot resurrect an evicted one
    // (that re-admission path is the restart-empty event's job).
    if (options.allow_power_failure && killed == 0) {
      kinds.push_back(EventKind::kPowerFailure);
    }
    if (options.allow_restart && killed > 0) {
      kinds.push_back(EventKind::kRestartEmpty);
    }
    EventKind kind = kinds[rng.Uniform(static_cast<uint32_t>(kinds.size()))];
    uint64_t pick = rng.Next64();
    // Partitions outlast the lease by a wide margin so the isolated side is
    // reliably evicted and recovery (not limbo) decides in-flight outcomes.
    SimDuration duration = (25 + rng.Uniform(40)) * kMillisecond;

    bool paired = kind == EventKind::kPartitionMinority ||
                  kind == EventKind::kPartitionBackup ||
                  kind == EventKind::kLossBurstStart ||
                  kind == EventKind::kSlowMachineStart || kind == EventKind::kFlakyNicStart;
    SimTime end_time = paired ? t + duration : t;
    if (end_time + settle > options.horizon) {
      break;
    }

    ChaosEvent e;
    e.at = t;
    e.kind = kind;
    e.pick = pick;
    switch (kind) {
      case EventKind::kKillPrimary:
      case EventKind::kKillBackup:
      case EventKind::kKillCm:
        killed++;
        plan.events.push_back(e);
        break;
      case EventKind::kPartitionMinority: {
        e.param = 1 + pick % static_cast<uint64_t>(std::max(1, (options.machines - 1) / 2));
        plan.events.push_back(e);
        plan.events.push_back({end_time, EventKind::kHeal, 0, 0});
        break;
      }
      case EventKind::kPartitionBackup:
        plan.events.push_back(e);
        plan.events.push_back({end_time, EventKind::kHeal, 0, 0});
        break;
      case EventKind::kLossBurstStart:
        e.param = 20 + rng.Uniform(180);  // 2% .. 20% datagram loss
        plan.events.push_back(e);
        plan.events.push_back({end_time, EventKind::kLossBurstEnd, 0, 0});
        break;
      case EventKind::kSlowMachineStart:
        plan.events.push_back(e);
        plan.events.push_back({end_time, EventKind::kSlowMachineEnd, 0, 0});
        break;
      case EventKind::kFlakyNicStart:
        e.param = 20 + rng.Uniform(180);  // 2% .. 20% per-link drop
        plan.events.push_back(e);
        plan.events.push_back({end_time, EventKind::kFlakyNicEnd, 0, 0});
        break;
      case EventKind::kPowerFailure:
        plan.events.push_back(e);
        // Restart recovery re-runs lease bootstrap and tx-state recovery on
        // every machine; leave it extra room before the next fault.
        t += 100 * kMillisecond;
        break;
      case EventKind::kRestartEmpty:
        killed--;
        plan.events.push_back(e);
        t += 50 * kMillisecond;  // join + re-replication headroom
        break;
      case EventKind::kHeal:
      case EventKind::kLossBurstEnd:
      case EventKind::kSlowMachineEnd:
      case EventKind::kFlakyNicEnd:
        FARM_CHECK(false) << "end kinds are emitted with their start";
        break;
    }
    t = end_time;
  }
  return plan;
}

}  // namespace chaos
}  // namespace farm
