// Small-buffer-optimized move-only callable for simulator events.
//
// The event queue processes tens of millions of closures per bench run;
// std::function heap-allocates any capture list larger than two pointers,
// which made allocation the simulator's wall-clock bottleneck. SmallFn
// stores captures up to kInlineBytes directly inside the object (the
// simulator's Event lives in a contiguous heap array, so inline captures
// move with the event and never touch the allocator). Larger callables
// fall back to a single heap allocation, exactly like std::function.
//
// Semantics: move-only (captures owning types like std::vector move for
// free; copying closures is never needed on the event path), void()
// signature only, and invocation is non-const (closures may mutate their
// captures).
#ifndef SRC_SIM_SMALL_FN_H_
#define SRC_SIM_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace farm {

class SmallFn {
 public:
  // Capture lists up to 48 bytes stay inline (six pointers / three
  // shared_ptrs); HwThread::Run needs no wrapper closure because liveness
  // guards live in the simulator Event itself, so this budget is available
  // to callers in full.
  static constexpr size_t kInlineBytes = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *HeapSlot() = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  // Replaces the held callable, constructing the new one directly in this
  // object's storage. The simulator schedules through this instead of the
  // converting constructor so a lambda passed to At()/After() is built in
  // its event slot in place, with no intermediate SmallFn to relocate.
  template <typename F, typename D = std::remove_cvref_t<F>>
  void Assign(F&& f) {
    if constexpr (std::is_same_v<D, SmallFn>) {
      *this = std::forward<F>(f);
    } else {
      static_assert(std::is_invocable_r_v<void, D&>);
      Reset();
      if constexpr (FitsInline<D>()) {
        ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
        ops_ = &kInlineOps<D>;
      } else {
        *HeapSlot() = new D(std::forward<F>(f));
        ops_ = &kHeapOps<D>;
      }
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
  };

  void** HeapSlot() { return reinterpret_cast<void**>(buf_); }

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace farm

#endif  // SRC_SIM_SMALL_FN_H_
