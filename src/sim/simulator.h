// Deterministic single-threaded discrete-event simulator.
//
// All cluster components (machines, NICs, the fabric, the coordination
// service) schedule closures on one Simulator instance. Events at equal
// timestamps fire in scheduling order, so a run is fully determined by the
// seed of the random number generators feeding it.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace farm {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at absolute time t (>= Now()).
  void At(SimTime t, std::function<void()> fn) {
    FARM_CHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  // Schedules fn after the given delay.
  void After(SimDuration delay, std::function<void()> fn) { At(now_ + delay, std::move(fn)); }

  // Processes the next event; returns false if the queue is empty.
  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    // Move the event out before popping so the closure survives the pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    events_processed_++;
    ev.fn();
    return true;
  }

  // Runs until the event queue is empty.
  void Run() {
    while (Step()) {
    }
  }

  // Runs all events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) {
      Step();
    }
    if (t > now_) {
      now_ = t;
    }
  }

  // Runs for the given additional duration of simulated time.
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  bool Idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for events at the same time
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      return time > other.time || (time == other.time && seq > other.seq);
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
};

}  // namespace farm

#endif  // SRC_SIM_SIMULATOR_H_
