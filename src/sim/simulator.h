// Deterministic single-threaded discrete-event simulator.
//
// All cluster components (machines, NICs, the fabric, the coordination
// service) schedule closures on one Simulator instance. Events at equal
// timestamps fire in scheduling order, so a run is fully determined by the
// seed of the random number generators feeding it.
//
// Hot-path design (this queue processes tens of millions of events per
// bench run):
//   - The ordering heap is a hand-written 4-ary min-heap over a contiguous
//     vector of 24-byte POD entries {time, seq, slot}; sift operations are
//     plain integer compares and trivial copies, never closure moves.
//   - Closures live in a separate slot array (recycled through an index
//     free list) and are held in SmallFn (small_fn.h), so capture lists up
//     to 48 bytes never touch the allocator. Each closure is moved exactly
//     once: out of its slot just before it runs.
//   - Popping moves the entry out before the heap is re-linked, so there
//     is no const_cast through priority_queue::top() (which was undefined
//     behavior) and a closure that throws or schedules new events
//     reentrantly leaves the queue consistent.
// The (time, seq) key is a total order, so pop order -- and therefore
// trace byte-identity -- is independent of the heap's internal layout.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/small_fn.h"
#include "src/sim/time.h"

namespace farm {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at absolute time t (>= Now()).
  template <typename F>
  void At(SimTime t, F&& fn) {
    AtGuarded(t, nullptr, 0, std::forward<F>(fn));
  }

  // Schedules fn after the given delay.
  template <typename F>
  void After(SimDuration delay, F&& fn) {
    At(now_ + delay, std::forward<F>(fn));
  }

  // Schedules fn at t, to run only if *guard still equals expected at fire
  // time. This is how HwThread drops work items whose machine died or
  // rebooted before completion, without wrapping every closure (and its
  // captures) in a second, larger closure. The guard word must stay valid
  // until the simulator itself is destroyed (machines are; they outlive all
  // stepping). A skipped event still counts as processed, matching the old
  // behavior where the epoch-check wrapper ran and did nothing.
  template <typename F>
  void AtGuarded(SimTime t, const uint64_t* guard, uint64_t expected, F&& fn) {
    FARM_CHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.guard = guard;
    s.guard_expected = expected;
    s.fn.Assign(std::forward<F>(fn));  // constructs the closure in place
    heap_.push_back(Entry{t, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
  }

  // Processes the next event; returns false if the queue is empty.
  bool Step() {
    if (heap_.empty()) {
      return false;
    }
    Entry ev = PopTop();
    now_ = ev.time;
    events_processed_++;
    // Move the closure out and release the slot *before* invoking: the
    // closure may schedule new events (growing/reusing the slot array) or
    // throw, and either must leave the queue consistent.
    Slot& s = slots_[ev.slot];
    bool runnable = s.guard == nullptr || *s.guard == s.guard_expected;
    SmallFn fn = std::move(s.fn);
    s.guard = nullptr;
    free_slots_.push_back(ev.slot);
    if (runnable) {
      fn();
    }
    return true;
  }

  // Runs until the event queue is empty.
  void Run() {
    while (Step()) {
    }
  }

  // Runs all events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t) {
    while (!heap_.empty() && heap_.front().time <= t) {
      Step();
    }
    if (t > now_) {
      now_ = t;
    }
  }

  // Runs for the given additional duration of simulated time.
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  bool Idle() const { return heap_.empty(); }
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return heap_.size(); }

 private:
  // Heap entry: POD, 24 bytes. The closure is looked up by slot only when
  // the entry actually fires.
  struct Entry {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for events at the same time
    uint32_t slot;
  };

  struct Slot {
    const uint64_t* guard = nullptr;  // nullptr = unconditional
    uint64_t guard_expected = 0;
    SmallFn fn;
  };

  // The (time, seq) pair compared as one 128-bit key. A single integer
  // compare lets the sift loops run branchlessly (cmov instead of a
  // data-dependent branch per child, which mispredicts half the time on
  // random timestamps and dominated pop cost at bench queue depths).
  static unsigned __int128 Key(const Entry& e) {
    return (static_cast<unsigned __int128>(e.time) << 64) | e.seq;
  }

  // Strict-weak order: a fires before b.
  static bool Before(const Entry& a, const Entry& b) { return Key(a) < Key(b); }

  // Children of node i are 4i+1 .. 4i+4; parent of i is (i-1)/4.
  void SiftUp(size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) >> 2;
      if (!Before(e, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Removes and returns the minimum entry, then re-links the heap by
  // sifting the displaced last entry down from the root. The min-of-four
  // child selection is written so the compiler emits conditional moves; the
  // only branch left per level is the well-predicted "keep descending".
  Entry PopTop() {
    Entry top = heap_.front();
    Entry last = heap_.back();
    heap_.pop_back();
    size_t n = heap_.size();
    if (n > 0) {
      unsigned __int128 last_key = Key(last);
      size_t i = 0;
      for (;;) {
        size_t child = 4 * i + 1;
        if (child >= n) {
          break;
        }
        size_t end = child + 4 < n ? child + 4 : n;
        size_t best = child;
        unsigned __int128 best_key = Key(heap_[child]);
        for (size_t c = child + 1; c < end; c++) {
          unsigned __int128 k = Key(heap_[c]);
          bool less = k < best_key;
          best = less ? c : best;
          best_key = less ? k : best_key;
        }
        if (best_key >= last_key) {
          break;
        }
        __builtin_prefetch(&heap_[4 * best + 1]);
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace farm

#endif  // SRC_SIM_SIMULATOR_H_
