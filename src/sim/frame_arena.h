// Size-class recycling arena for coroutine frames.
//
// Protocol code (src/core/tx.cc commit chains, recovery, lease renewal) is
// written as C++20 coroutines; every Task<T> and Detached frame is one
// heap allocation, and at bench load those dominate the allocator profile.
// Frames churn fast and cluster around a handful of sizes, so a per-size
// free list turns almost every frame allocation into a pointer pop.
//
// Design notes:
//   - The simulator is single-threaded, so plain static free lists suffice
//     (and keep the recycling order deterministic: LIFO per class).
//   - Requests are rounded up to 64-byte classes; anything over
//     kMaxRecycledBytes falls through to the global allocator.
//   - Recycled blocks are never returned to the OS; they stay reachable
//     from the static bins, so LeakSanitizer does not flag them.
//   - Under AddressSanitizer the arena is disabled entirely: recycling
//     would blind ASan to use-after-free on destroyed coroutine frames,
//     which is exactly the class of bug the sanitizer CI job exists to
//     catch.
#ifndef SRC_SIM_FRAME_ARENA_H_
#define SRC_SIM_FRAME_ARENA_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define FARM_FRAME_ARENA_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FARM_FRAME_ARENA_DISABLED 1
#endif
#endif

namespace farm {

class FrameArena {
 public:
  static constexpr size_t kClassBytes = 64;
  static constexpr size_t kMaxRecycledBytes = 4096;
  static constexpr size_t kNumClasses = kMaxRecycledBytes / kClassBytes;

  static void* Alloc(size_t n) {
#ifndef FARM_FRAME_ARENA_DISABLED
    size_t cls = ClassFor(n);
    if (cls < kNumClasses) {
      FreeNode*& head = Bins()[cls];
      if (head != nullptr) {
        FreeNode* node = head;
        head = node->next;
        recycled_hits_++;
        return node;
      }
      return ::operator new((cls + 1) * kClassBytes);
    }
#endif
    return ::operator new(n);
  }

  static void Free(void* p, size_t n) noexcept {
    (void)n;  // unused when the arena is compiled out under ASan
#ifndef FARM_FRAME_ARENA_DISABLED
    size_t cls = ClassFor(n);
    if (cls < kNumClasses) {
      FreeNode* node = static_cast<FreeNode*>(p);
      node->next = Bins()[cls];
      Bins()[cls] = node;
      return;
    }
#endif
    ::operator delete(p);
  }

  // Number of allocations served from a free list (telemetry for tests).
  static uint64_t recycled_hits() { return recycled_hits_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static size_t ClassFor(size_t n) { return (n - 1) / kClassBytes; }

  static std::array<FreeNode*, kNumClasses>& Bins() {
    static std::array<FreeNode*, kNumClasses> bins{};
    return bins;
  }

  static inline uint64_t recycled_hits_ = 0;
};

// Base class for coroutine promise types whose frames should be arena
// recycled. The compiler looks up operator new/delete in the promise type's
// scope, so inheriting is enough; the sized operator delete is required so
// the frame returns to the right size class.
struct ArenaFrame {
  static void* operator new(size_t n) { return FrameArena::Alloc(n); }
  static void operator delete(void* p, size_t n) noexcept { FrameArena::Free(p, n); }
};

}  // namespace farm

#endif  // SRC_SIM_FRAME_ARENA_H_
