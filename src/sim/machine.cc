#include "src/sim/machine.h"

namespace farm {

Future<Unit> HwThread::Execute(SimDuration cost) {
  Future<Unit> done;
  Run(cost, [done]() { done.Set(Unit{}); });
  return done;
}

void HwThread::InjectBusy(SimDuration cost) {
  SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + cost;
  total_busy_ += cost;
}

SimDuration HwThread::Backlog() const {
  SimTime now = sim_.Now();
  return busy_until_ > now ? busy_until_ - now : 0;
}

Machine::Machine(Simulator& sim, MachineId id, int num_threads, int failure_domain)
    : sim_(sim), id_(id), failure_domain_(failure_domain) {
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; i++) {
    threads_.push_back(std::make_unique<HwThread>(sim_, this, i));
  }
}

}  // namespace farm
