// Simulated machines and hardware threads.
//
// A hardware thread is modeled as a serial server with a busy-until horizon:
// executing a work item of CPU cost c that arrives at time t occupies the
// thread for [max(t, busy_until), max(t, busy_until) + c). Queueing delay --
// and therefore CPU saturation, the effect FaRM's one-sided-RDMA design is
// built around -- emerges from this model.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace farm {

using MachineId = uint32_t;
constexpr MachineId kInvalidMachine = UINT32_MAX;

class Machine;

class HwThread {
 public:
  HwThread(Simulator& sim, Machine* machine, int index)
      : sim_(sim), machine_(machine), index_(index) {}

  // Acquires the CPU for `cost`, then runs fn (at completion time). Work
  // items execute in FIFO order. If the machine dies or reboots before the
  // item completes, fn is dropped (via the simulator's event guard on the
  // machine's liveness word, so no wrapper closure is allocated).
  template <typename F>
  void Run(SimDuration cost, F&& fn);

  // Coroutine flavor: resumes the awaiter once the CPU work completes.
  Future<Unit> Execute(SimDuration cost);

  // Occupies the CPU without running anything (preemption by other system
  // activity; used by the lease false-positive experiments).
  void InjectBusy(SimDuration cost);

  // Occupies the CPU and returns the completion time of that work item.
  SimTime AcquireCpu(SimDuration cost) {
    InjectBusy(cost);
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  // Queueing backlog from `now`: how long a new item would wait to start.
  SimDuration Backlog() const;
  SimDuration total_busy() const { return total_busy_; }
  int index() const { return index_; }

 private:
  Simulator& sim_;
  Machine* machine_;
  int index_;
  SimTime busy_until_ = 0;
  SimDuration total_busy_ = 0;
};

// A simulated machine: a set of hardware threads plus liveness state.
// Kill() makes it permanently silent to the fabric; Reboot() (used only by
// whole-cluster power-failure tests) bumps the epoch so callbacks scheduled
// before the reboot are dropped.
class Machine {
 public:
  Machine(Simulator& sim, MachineId id, int num_threads, int failure_domain);

  MachineId id() const { return id_; }
  int failure_domain() const { return failure_domain_; }
  bool alive() const { return alive_; }
  uint64_t epoch() const { return epoch_; }
  Simulator& sim() const { return sim_; }

  int NumThreads() const { return static_cast<int>(threads_.size()); }
  HwThread& thread(int i) { return *threads_[static_cast<size_t>(i)]; }

  void Kill() {
    alive_ = false;
    guard_word_ = epoch_ << 1;
  }
  void Reboot() {
    alive_ = true;
    epoch_++;
    guard_word_ = (epoch_ << 1) | 1;
  }

  // Liveness guard for Simulator::AtGuarded: (epoch << 1) | alive. An event
  // scheduled while the machine is up fires only if the word is unchanged,
  // i.e. the machine is still alive in the same epoch.
  const uint64_t* guard_word() const { return &guard_word_; }
  uint64_t live_guard() const { return (epoch_ << 1) | 1; }

 private:
  Simulator& sim_;
  MachineId id_;
  int failure_domain_;
  bool alive_ = true;
  uint64_t epoch_ = 0;
  uint64_t guard_word_ = 1;  // (epoch_ << 1) | alive_
  std::vector<std::unique_ptr<HwThread>> threads_;
};

template <typename F>
void HwThread::Run(SimDuration cost, F&& fn) {
  SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + cost;
  total_busy_ += cost;
  sim_.AtGuarded(busy_until_, machine_->guard_word(), machine_->live_guard(),
                 std::forward<F>(fn));
}

}  // namespace farm

#endif  // SRC_SIM_MACHINE_H_
