// C++20 coroutine support for the simulator.
//
// Protocol sequences (transaction commit, reconfiguration, recovery) are
// written as coroutines returning sim Task<T>. Completions produced by
// callbacks (NIC acks, message replies, timers) are surfaced as Future<T>.
//
// Cancellation model: coroutines belonging to a killed machine are simply
// never resumed (their completions are dropped by the delivery layer). This
// keeps the protocol code free of cancellation plumbing. Every top-level
// (Detached) frame is tracked on an intrusive list, and simulation teardown
// calls ReclaimParkedFrames() to destroy the frames that are still suspended;
// destroying a Detached frame cascades down its ownership chain, so the
// child Task frames, futures, and wait groups it holds are released too.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/frame_arena.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace farm {

struct Unit {};

template <typename T>
class Task;

namespace task_internal {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

template <typename T>
struct TaskPromise : ArenaFrame {
  std::coroutine_handle<> continuation = nullptr;
  std::optional<T> value;

  Task<T> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_value(T v) { value.emplace(std::move(v)); }
  void unhandled_exception() { std::terminate(); }
};

template <>
struct TaskPromise<void> : ArenaFrame {
  std::coroutine_handle<> continuation = nullptr;

  Task<void> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { std::terminate(); }
};

}  // namespace task_internal

// A lazily-started coroutine. Ownership of the frame is held by the Task;
// the frame is destroyed when the Task is destroyed (after completion, in
// normal co_await usage).
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = task_internal::TaskPromise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          return std::move(*handle.promise().value);
        }
      }
    };
    FARM_CHECK(handle_ != nullptr) << "co_await on empty Task";
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

namespace task_internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace task_internal

namespace task_internal {

// Intrusive list node embedded in every Detached frame's promise so the
// simulation can find frames that were parked forever (their machine died
// and the delivery layer dropped the completion that would have resumed
// them). The simulator is single-threaded, so a plain global list suffices.
struct DetachedNode {
  DetachedNode* prev = nullptr;
  DetachedNode* next = nullptr;
  std::coroutine_handle<> frame;
};

inline DetachedNode*& DetachedListHead() {
  static DetachedNode* head = nullptr;
  return head;
}

inline void LinkDetached(DetachedNode* n) {
  DetachedNode*& head = DetachedListHead();
  n->next = head;
  if (head != nullptr) {
    head->prev = n;
  }
  head = n;
}

inline void UnlinkDetached(DetachedNode* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    DetachedListHead() = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  }
  n->prev = nullptr;
  n->next = nullptr;
}

}  // namespace task_internal

// Fire-and-forget coroutine; frame self-destructs on completion. Frames
// still alive when the simulation is torn down are reclaimed via
// ReclaimParkedFrames().
struct Detached {
  struct promise_type : task_internal::DetachedNode, ArenaFrame {
    promise_type() {
      frame = std::coroutine_handle<promise_type>::from_promise(*this);
      task_internal::LinkDetached(this);
    }
    ~promise_type() { task_internal::UnlinkDetached(this); }
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

// Destroys every Detached frame still suspended, newest first (creation
// order is deterministic, so reclaim order is too). Call only when the
// simulation has quiesced — i.e. nothing will resume these frames later.
// Returns the number of top-level frames reclaimed.
inline int ReclaimParkedFrames() {
  int reclaimed = 0;
  while (task_internal::DetachedNode* head = task_internal::DetachedListHead()) {
    head->frame.destroy();  // ~promise_type unlinks the node
    reclaimed++;
  }
  return reclaimed;
}

// Starts a Task and detaches from it. The Task's frame is owned by the
// wrapper coroutine and is destroyed when the task completes.
inline Detached Spawn(Task<void> task) { co_await std::move(task); }

// One-shot completion channel. Producer calls Set(); the single consumer
// either co_awaits it or registers an OnReady callback. Copyable handle to
// shared state, so callbacks can outlive the stack frame that created it.
template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<State>()) {}

  void Set(T v) const {
    FARM_CHECK(!state_->value.has_value()) << "Future::Set called twice";
    state_->value.emplace(std::move(v));
    if (state_->callback) {
      auto cb = std::move(state_->callback);
      state_->callback = nullptr;
      cb(*state_->value);
    }
  }

  bool Ready() const { return state_->value.has_value(); }

  T& Peek() const {
    FARM_CHECK(Ready());
    return *state_->value;
  }

  // Registers the single consumer callback; fired immediately if already set.
  void OnReady(std::function<void(T&)> cb) const {
    FARM_CHECK(!state_->callback) << "Future already has a consumer";
    if (state_->value.has_value()) {
      cb(*state_->value);
    } else {
      state_->callback = std::move(cb);
    }
  }

  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<State> state;
      bool await_ready() { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        FARM_CHECK(!state->callback) << "Future already has a consumer";
        state->callback = [h](T&) { h.resume(); };
      }
      T await_resume() { return std::move(*state->value); }
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    std::optional<T> value;
    std::function<void(T&)> callback;
  };
  std::shared_ptr<State> state_;
};

// Counts down outstanding work items; Wait() resumes when the count is zero.
class WaitGroup {
 public:
  WaitGroup() : state_(std::make_shared<State>()) {}

  void Add(int n = 1) const { state_->pending += n; }

  void Done() const {
    FARM_CHECK(state_->pending > 0) << "WaitGroup::Done without Add";
    state_->pending--;
    if (state_->pending == 0 && state_->waiter) {
      auto h = state_->waiter;
      state_->waiter = nullptr;
      h.resume();
    }
  }

  int pending() const { return state_->pending; }

  auto Wait() const {
    struct Awaiter {
      std::shared_ptr<State> state;
      bool await_ready() { return state->pending == 0; }
      void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
      void await_resume() {}
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    int pending = 0;
    std::coroutine_handle<> waiter = nullptr;
  };
  std::shared_ptr<State> state_;
};

// co_await SleepFor(sim, d): resumes after d of simulated time.
inline auto SleepFor(Simulator& sim, SimDuration d) {
  struct Awaiter {
    Simulator& sim;
    SimDuration d;
    bool await_ready() { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.After(d, [h]() { h.resume(); });
    }
    void await_resume() {}
  };
  return Awaiter{sim, d};
}

// Awaits the future with a deadline; nullopt on timeout. The losing side's
// completion is dropped.
template <typename T>
Task<std::optional<T>> AwaitWithTimeout(Simulator& sim, Future<T> future, SimDuration timeout) {
  Future<std::optional<T>> out;
  auto decided = std::make_shared<bool>(false);
  future.OnReady([out, decided](T& v) {
    if (!*decided) {
      *decided = true;
      out.Set(std::optional<T>(std::move(v)));
    }
  });
  sim.After(timeout, [out, decided]() {
    if (!*decided) {
      *decided = true;
      out.Set(std::nullopt);
    }
  });
  co_return co_await out;
}

}  // namespace farm

#endif  // SRC_SIM_TASK_H_
