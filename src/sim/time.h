// Simulated time: 64-bit nanoseconds since simulation start.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace farm {

using SimTime = uint64_t;      // absolute simulated time, ns
using SimDuration = uint64_t;  // simulated duration, ns

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimTime kSimTimeNever = UINT64_MAX;

}  // namespace farm

#endif  // SRC_SIM_TIME_H_
