// Tests for the distributed data structures: hash table and B-tree.
#include <gtest/gtest.h>

#include "src/ds/btree.h"
#include "src/ds/hashtable.h"
#include "tests/test_util.h"

namespace farm {
namespace {

class DsTest : public ::testing::Test {
 protected:
  void Boot(int machines = 4, uint64_t seed = 1) {
    ClusterOptions opts = SmallClusterOptions(machines, seed);
    opts.node.region_size = 512 << 10;
    cluster_ = MakeStartedCluster(opts);
  }

  HashTable MakeTable(uint64_t buckets = 256, uint32_t value_size = 16) {
    HashTable::Options o;
    o.buckets = buckets;
    o.value_size = value_size;
    auto create = [](Cluster* c, HashTable::Options opt) -> Task<StatusOr<HashTable>> {
      co_return co_await HashTable::Create(c->node(0), opt, 0);
    };
    auto t = RunTask(*cluster_, create(cluster_.get(), o));
    FARM_CHECK(t.has_value() && t->ok());
    return t->value();
  }

  BTree MakeTree() {
    auto create = [](Cluster* c) -> Task<StatusOr<BTree>> {
      co_return co_await BTree::Create(c->node(0), BTree::Options{}, 0);
    };
    auto t = RunTask(*cluster_, create(cluster_.get()));
    FARM_CHECK(t.has_value() && t->ok()) << (t.has_value() ? t->status().ToString() : "timeout");
    return t->value();
  }

  // One-shot transactional helpers (retry on conflict).
  Task<Status> HtPut(const HashTable& ht, MachineId node, uint64_t key,
                     std::vector<uint8_t> value) {
    for (int i = 0; i < 10; i++) {
      auto tx = cluster_->node(node).Begin(0);
      Status s = co_await ht.Put(*tx, key, value);
      if (!s.ok()) {
        co_return s;
      }
      s = co_await tx->Commit();
      if (s.code() != StatusCode::kAborted) {
        co_return s;
      }
    }
    co_return AbortedStatus("persistent conflict");
  }

  Task<StatusOr<std::optional<std::vector<uint8_t>>>> HtGet(const HashTable& ht, MachineId node,
                                                            uint64_t key) {
    auto tx = cluster_->node(node).Begin(0);
    auto v = co_await ht.Get(*tx, key);
    if (!v.ok()) {
      co_return v.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return *v;
  }

  Task<Status> BtInsert(const BTree& bt, MachineId node, uint64_t key, uint64_t value) {
    for (int i = 0; i < 10; i++) {
      auto tx = cluster_->node(node).Begin(0);
      Status s = co_await bt.Insert(*tx, key, value);
      if (!s.ok()) {
        co_return s;
      }
      s = co_await tx->Commit();
      if (s.code() != StatusCode::kAborted) {
        co_return s;
      }
    }
    co_return AbortedStatus("persistent conflict");
  }

  Task<StatusOr<std::optional<uint64_t>>> BtGet(const BTree& bt, MachineId node, uint64_t key) {
    auto tx = cluster_->node(node).Begin(0);
    auto v = co_await bt.Get(*tx, key);
    if (!v.ok()) {
      co_return v.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return *v;
  }

  std::unique_ptr<Cluster> cluster_;
};

std::vector<uint8_t> Val(uint64_t v) {
  std::vector<uint8_t> b(16, 0);
  std::memcpy(b.data(), &v, 8);
  return b;
}

TEST_F(DsTest, HashTablePutGet) {
  Boot();
  HashTable ht = MakeTable();
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 42, Val(100)))->ok());
  auto v = RunTask(*cluster_, HtGet(ht, 1, 42));
  ASSERT_TRUE(v.has_value() && v->ok());
  ASSERT_TRUE(v->value().has_value());
  EXPECT_EQ((*v->value())[0], 100);
}

TEST_F(DsTest, HashTableMissingKey) {
  Boot();
  HashTable ht = MakeTable();
  auto v = RunTask(*cluster_, HtGet(ht, 0, 777));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_FALSE(v->value().has_value());
}

TEST_F(DsTest, HashTableUpdateInPlace) {
  Boot();
  HashTable ht = MakeTable();
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 5, Val(1)))->ok());
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 1, 5, Val(2)))->ok());
  auto v = RunTask(*cluster_, HtGet(ht, 2, 5));
  ASSERT_TRUE(v.has_value() && v->ok() && v->value().has_value());
  EXPECT_EQ((*v->value())[0], 2);
}

TEST_F(DsTest, HashTableRemoveAndReinsert) {
  Boot();
  HashTable ht = MakeTable();
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 9, Val(1)))->ok());

  auto remove = [this, &ht]() -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    Status s = co_await ht.Remove(*tx, 9);
    if (!s.ok()) {
      co_return s;
    }
    co_return co_await tx->Commit();
  };
  ASSERT_TRUE(RunTask(*cluster_, remove())->ok());
  auto v = RunTask(*cluster_, HtGet(ht, 2, 9));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_FALSE(v->value().has_value());
  // Tombstone slot is reusable.
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 9, Val(3)))->ok());
  v = RunTask(*cluster_, HtGet(ht, 3, 9));
  ASSERT_TRUE(v.has_value() && v->ok() && v->value().has_value());
  EXPECT_EQ((*v->value())[0], 3);
}

TEST_F(DsTest, HashTableManyKeys) {
  Boot();
  HashTable ht = MakeTable(512);
  for (uint64_t k = 1; k <= 300; k++) {
    ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, static_cast<MachineId>(k % 4), k, Val(k * 10)))->ok())
        << "key " << k;
  }
  for (uint64_t k = 1; k <= 300; k++) {
    auto v = RunTask(*cluster_, HtGet(ht, static_cast<MachineId>((k + 1) % 4), k));
    ASSERT_TRUE(v.has_value() && v->ok() && v->value().has_value()) << "key " << k;
    uint64_t got = 0;
    std::memcpy(&got, v->value()->data(), 8);
    EXPECT_EQ(got, k * 10);
  }
}

TEST_F(DsTest, HashTableLockFreeGet) {
  Boot();
  HashTable ht = MakeTable();
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 1234, Val(77)))->ok());
  auto lf = [this, &ht]() -> Task<StatusOr<std::optional<std::vector<uint8_t>>>> {
    co_return co_await ht.LockFreeGet(cluster_->node(3), 1234, 0);
  };
  auto v = RunTask(*cluster_, lf());
  ASSERT_TRUE(v.has_value() && v->ok() && v->value().has_value());
  EXPECT_EQ((*v->value())[0], 77);
}

TEST_F(DsTest, HashTableCrossKeyAtomicity) {
  // A transaction updating two keys is all-or-nothing under contention.
  Boot(4, 5);
  HashTable ht = MakeTable();
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 100, Val(50)))->ok());
  ASSERT_TRUE(RunTask(*cluster_, HtPut(ht, 0, 200, Val(50)))->ok());

  auto move_units = [this, &ht](MachineId node, uint64_t from, uint64_t to) -> Task<void> {
    for (int i = 0; i < 20; i++) {
      auto tx = cluster_->node(node).Begin(0);
      auto vf = co_await ht.Get(*tx, from);
      auto vt = co_await ht.Get(*tx, to);
      if (!vf.ok() || !vt.ok() || !vf->has_value() || !vt->has_value()) {
        continue;
      }
      uint64_t bf = 0;
      uint64_t bt = 0;
      std::memcpy(&bf, (*vf)->data(), 8);
      std::memcpy(&bt, (*vt)->data(), 8);
      if (bf == 0) {
        continue;
      }
      (void)co_await ht.Put(*tx, from, Val(bf - 1));
      (void)co_await ht.Put(*tx, to, Val(bt + 1));
      (void)co_await tx->Commit();
    }
  };
  auto done = std::make_shared<int>(0);
  auto wrap = [&](MachineId n, uint64_t f, uint64_t t) -> Task<void> {
    co_await move_units(n, f, t);
    (*done)++;
  };
  Spawn(wrap(0, 100, 200));
  Spawn(wrap(1, 200, 100));
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *done == 2; }, 10 * kSecond));

  auto v1 = RunTask(*cluster_, HtGet(ht, 2, 100));
  auto v2 = RunTask(*cluster_, HtGet(ht, 2, 200));
  uint64_t b1 = 0;
  uint64_t b2 = 0;
  std::memcpy(&b1, v1->value()->data(), 8);
  std::memcpy(&b2, v2->value()->data(), 8);
  EXPECT_EQ(b1 + b2, 100u);
}

TEST_F(DsTest, BTreeInsertGet) {
  Boot();
  BTree bt = MakeTree();
  ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, 10, 1000))->ok());
  ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 1, 20, 2000))->ok());
  auto v = RunTask(*cluster_, BtGet(bt, 2, 10));
  ASSERT_TRUE(v.has_value() && v->ok());
  ASSERT_TRUE(v->value().has_value());
  EXPECT_EQ(*v->value(), 1000u);
  auto missing = RunTask(*cluster_, BtGet(bt, 2, 15));
  ASSERT_TRUE(missing.has_value() && missing->ok());
  EXPECT_FALSE(missing->value().has_value());
}

TEST_F(DsTest, BTreeSplitsAndStaysSorted) {
  Boot();
  BTree bt = MakeTree();
  // Enough keys to force multiple leaf splits and at least one root split.
  const uint64_t kKeys = 300;
  for (uint64_t k = 1; k <= kKeys; k++) {
    uint64_t shuffled = (k * 7919) % 1000 + 1;  // pseudo-random order
    ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, shuffled, shuffled * 2))->ok())
        << "key " << shuffled;
  }
  for (uint64_t k = 1; k <= kKeys; k++) {
    uint64_t key = (k * 7919) % 1000 + 1;
    auto v = RunTask(*cluster_, BtGet(bt, 1, key));
    ASSERT_TRUE(v.has_value() && v->ok() && v->value().has_value()) << "key " << key;
    EXPECT_EQ(*v->value(), key * 2);
  }
}

TEST_F(DsTest, BTreeRangeScan) {
  Boot();
  BTree bt = MakeTree();
  for (uint64_t k = 1; k <= 100; k++) {
    ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, k * 3, k))->ok());
  }
  auto scan = [this, &bt](uint64_t lo, uint64_t hi) -> Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> {
    auto tx = cluster_->node(2).Begin(0);
    auto r = co_await bt.Scan(*tx, lo, hi, 1000);
    if (!r.ok()) {
      co_return r.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return *r;
  };
  auto r = RunTask(*cluster_, scan(30, 90));
  ASSERT_TRUE(r.has_value() && r->ok());
  // keys 30,33,...,87: 20 keys.
  ASSERT_EQ(r->value().size(), 20u);
  EXPECT_EQ(r->value().front().first, 30u);
  EXPECT_EQ(r->value().back().first, 87u);
  for (size_t i = 1; i < r->value().size(); i++) {
    EXPECT_LT(r->value()[i - 1].first, r->value()[i].first);
  }
}

TEST_F(DsTest, BTreeRemove) {
  Boot();
  BTree bt = MakeTree();
  for (uint64_t k = 1; k <= 50; k++) {
    ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, k, k))->ok());
  }
  auto remove = [this, &bt](uint64_t key) -> Task<Status> {
    auto tx = cluster_->node(1).Begin(0);
    Status s = co_await bt.Remove(*tx, key);
    if (!s.ok()) {
      co_return s;
    }
    co_return co_await tx->Commit();
  };
  ASSERT_TRUE(RunTask(*cluster_, remove(25))->ok());
  auto v = RunTask(*cluster_, BtGet(bt, 2, 25));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_FALSE(v->value().has_value());
  // Neighbors unaffected.
  EXPECT_TRUE(RunTask(*cluster_, BtGet(bt, 2, 24))->value().has_value());
  EXPECT_TRUE(RunTask(*cluster_, BtGet(bt, 2, 26))->value().has_value());
}

TEST_F(DsTest, BTreeStaleCacheHealsViaFenceKeys) {
  Boot();
  BTree bt = MakeTree();
  BTree other = bt.Clone();  // second machine's handle with its own cache

  // Warm machine 1's cache with a small tree.
  for (uint64_t k = 1; k <= 20; k++) {
    ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, k, k))->ok());
  }
  auto warm = [this, &other](uint64_t key) -> Task<StatusOr<std::optional<uint64_t>>> {
    auto tx = cluster_->node(1).Begin(0);
    auto v = co_await other.Get(*tx, key);
    if (!v.ok()) {
      co_return v.status();
    }
    (void)co_await tx->Commit();
    co_return *v;
  };
  ASSERT_TRUE(RunTask(*cluster_, warm(5))->ok());

  // Grow the tree from machine 0 until it splits several times.
  for (uint64_t k = 21; k <= 400; k++) {
    ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, k, k))->ok()) << "key " << k;
  }
  // Machine 1 reads keys in the newly-split area through its stale cache;
  // fence keys must detect and heal.
  for (uint64_t k = 380; k <= 400; k++) {
    auto v = RunTask(*cluster_, warm(k));
    ASSERT_TRUE(v.has_value() && v->ok()) << "key " << k;
    ASSERT_TRUE(v->value().has_value()) << "key " << k;
    EXPECT_EQ(*v->value(), k);
  }
}

TEST_F(DsTest, PropertyBTreeMatchesStdMap) {
  Boot(4, 33);
  BTree bt = MakeTree();
  std::map<uint64_t, uint64_t> model;
  Pcg32 rng(99);
  for (int op = 0; op < 400; op++) {
    uint64_t key = rng.Uniform(200) + 1;
    int kind = static_cast<int>(rng.Uniform(3));
    if (kind == 0 || model.count(key) == 0) {
      uint64_t val = rng.Next64() | 1;
      ASSERT_TRUE(RunTask(*cluster_, BtInsert(bt, 0, key, val))->ok());
      model[key] = val;
    } else if (kind == 1) {
      auto remove = [this, &bt, key]() -> Task<Status> {
        auto tx = cluster_->node(0).Begin(0);
        Status s = co_await bt.Remove(*tx, key);
        if (!s.ok()) {
          co_return s;
        }
        co_return co_await tx->Commit();
      };
      ASSERT_TRUE(RunTask(*cluster_, remove())->ok());
      model.erase(key);
    } else {
      auto v = RunTask(*cluster_, BtGet(bt, 0, key));
      ASSERT_TRUE(v.has_value() && v->ok());
      if (model.count(key) != 0) {
        ASSERT_TRUE(v->value().has_value()) << "key " << key;
        EXPECT_EQ(*v->value(), model[key]);
      } else {
        EXPECT_FALSE(v->value().has_value()) << "key " << key;
      }
    }
  }
  // Final sweep.
  for (const auto& [k, v] : model) {
    auto got = RunTask(*cluster_, BtGet(bt, 1, k));
    ASSERT_TRUE(got.has_value() && got->ok());
    ASSERT_TRUE(got->value().has_value()) << "key " << k;
    EXPECT_EQ(*got->value(), v);
  }
}

}  // namespace
}  // namespace farm
