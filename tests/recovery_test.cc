// Failure and recovery tests: reconfiguration, transaction state recovery,
// data re-replication, allocator recovery, partitions, and durability
// invariants under failures (sections 5.1-5.5).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace farm {
namespace {

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

uint64_t BytesU64(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min<size_t>(8, b.size()));
  return v;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void Boot(int machines = 5, uint64_t seed = 1) {
    cluster_ = MakeStartedCluster(SmallClusterOptions(machines, seed));
  }

  Task<Status> WriteValue(MachineId node, GlobalAddr addr, uint64_t value, int thread = 0) {
    auto tx = cluster_->node(node).Begin(thread);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    (void)tx->Write(addr, U64Bytes(value));
    co_return co_await tx->Commit();
  }

  Task<StatusOr<uint64_t>> ReadValue(MachineId node, GlobalAddr addr) {
    auto tx = cluster_->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return BytesU64(*r);
  }

  // Waits until every live node has adopted a configuration excluding m.
  bool WaitEvicted(MachineId dead, SimDuration timeout = 500 * kMillisecond) {
    return RunUntil(
        *cluster_,
        [&]() {
          for (int i = 0; i < cluster_->num_machines(); i++) {
            MachineId m = static_cast<MachineId>(i);
            if (!cluster_->machine(m).alive()) {
              continue;
            }
            if (cluster_->node(m).config().Contains(dead)) {
              return false;
            }
          }
          return true;
        },
        timeout);
  }

  MachineId LiveCoordinator() {
    for (int i = 0; i < cluster_->num_machines(); i++) {
      if (cluster_->machine(static_cast<MachineId>(i)).alive()) {
        return static_cast<MachineId>(i);
      }
    }
    return kInvalidMachine;
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(RecoveryTest, LeaseExpiryDetectsFailure) {
  Boot();
  SimTime t0 = cluster_->sim().Now();
  cluster_->Kill(4);
  ASSERT_TRUE(WaitEvicted(4));
  SimTime detect = cluster_->sim().Now() - t0;
  // Detection + reconfiguration within a few lease periods (10 ms leases).
  EXPECT_LT(detect, 100 * kMillisecond);
  EXPECT_GE(detect, 5 * kMillisecond);
  EXPECT_EQ(cluster_->node(0).config().machines.size(), 4u);
}

TEST_F(RecoveryTest, KillBackupDataSurvivesAndRereplicates) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 42))->ok());

  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId victim = p->backups[0];
  cluster_->Kill(victim);
  ASSERT_TRUE(WaitEvicted(victim));

  // Data still readable.
  MachineId coord = LiveCoordinator();
  auto v = RunTask(*cluster_, ReadValue(coord, a));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(v->value(), 42u);

  // A replacement backup is re-replicated in the background.
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->regions_rereplicated() >= 1; },
                       2 * kSecond));
  const RegionPlacement* p2 = cluster_->node(coord).config().Placement(rid);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->Replicas().size(), 3u);
  EXPECT_FALSE(p2->Contains(victim));
  // The new backup holds the data.
  for (MachineId b : p2->backups) {
    RegionReplica* rep = cluster_->node(b).replica(rid);
    ASSERT_NE(rep, nullptr);
    uint64_t val = 0;
    std::memcpy(&val, rep->Ptr(8, 8), 8);
    EXPECT_EQ(val, 42u) << "backup " << b;
  }
}

TEST_F(RecoveryTest, KillPrimaryPromotesBackupAndPreservesData) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  for (uint32_t i = 0; i < 8; i++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(1, GlobalAddr{rid, i * 16}, 100 + i))->ok());
  }
  // Let backups apply via truncation before the kill.
  cluster_->RunFor(20 * kMillisecond);

  const RegionPlacement* p = cluster_->node(1).config().Placement(rid);
  MachineId old_primary = p->primary;
  std::vector<MachineId> old_backups = p->backups;
  cluster_->Kill(old_primary);
  ASSERT_TRUE(WaitEvicted(old_primary));

  MachineId coord = LiveCoordinator();
  const RegionPlacement* p2 = cluster_->node(coord).config().Placement(rid);
  ASSERT_NE(p2, nullptr);
  // A surviving backup was promoted (fast recovery, no data movement).
  EXPECT_TRUE(std::find(old_backups.begin(), old_backups.end(), p2->primary) !=
              old_backups.end());
  EXPECT_EQ(p2->last_primary_change, cluster_->node(coord).config().id);

  for (uint32_t i = 0; i < 8; i++) {
    auto v = RunTask(*cluster_, ReadValue(coord, GlobalAddr{rid, i * 16}));
    ASSERT_TRUE(v.has_value() && v->ok()) << "offset " << i;
    EXPECT_EQ(v->value(), 100 + i);
  }
  // And writes keep working against the new primary.
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(coord, GlobalAddr{rid, 0}, 999))->ok());
}

TEST_F(RecoveryTest, KillCmElectsNewCmAndContinues) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(1, a, 7))->ok());

  ASSERT_EQ(cluster_->node(0).config().cm, 0u);
  cluster_->Kill(0);
  ASSERT_TRUE(WaitEvicted(0, kSecond));

  MachineId coord = LiveCoordinator();
  const Configuration& cfg = cluster_->node(coord).config();
  EXPECT_NE(cfg.cm, 0u);
  EXPECT_TRUE(cfg.Contains(cfg.cm));

  // The system still serves transactions and can create regions (CM duty).
  auto v = RunTask(*cluster_, ReadValue(coord, a));
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(v->value(), 7u);
  RegionId rid2 = MustCreateRegion(*cluster_, 64 << 10, 16, kInvalidRegion, coord);
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(coord, GlobalAddr{rid2, 0}, 5))->ok());
}

TEST_F(RecoveryTest, InFlightTransactionsResolveAfterFailure) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId victim = p->primary;
  // Coordinator on a non-replica machine.
  MachineId coord = kInvalidMachine;
  for (int i = 0; i < cluster_->num_machines(); i++) {
    if (!p->Contains(static_cast<MachineId>(i))) {
      coord = static_cast<MachineId>(i);
      break;
    }
  }
  ASSERT_NE(coord, kInvalidMachine);

  // Start a stream of writes; kill the primary mid-stream.
  auto outcomes = std::make_shared<std::vector<Status>>();
  auto done = std::make_shared<bool>(false);
  auto writer = [](Cluster* c, MachineId node, GlobalAddr addr,
                   std::shared_ptr<std::vector<Status>> out,
                   std::shared_ptr<bool> fin) -> Task<void> {
    for (int i = 0; i < 50; i++) {
      auto tx = c->node(node).Begin(0);
      auto r = co_await tx->Read(addr, 8);
      if (!r.ok()) {
        out->push_back(r.status());
        continue;
      }
      std::vector<uint8_t> b(8);
      uint64_t v = static_cast<uint64_t>(i);
      std::memcpy(b.data(), &v, 8);
      (void)tx->Write(addr, b);
      out->push_back(co_await tx->Commit());
    }
    *fin = true;
  };
  Spawn(writer(cluster_.get(), coord, GlobalAddr{rid, 0}, outcomes, done));
  cluster_->RunFor(2 * kMillisecond);
  cluster_->Kill(victim);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *done; }, 5 * kSecond));

  // Every transaction resolved (no hangs); at least one committed after the
  // failure (the stream continued on the new primary).
  EXPECT_EQ(outcomes->size(), 50u);
  int ok_count = 0;
  for (const Status& s : *outcomes) {
    if (s.ok()) {
      ok_count++;
    }
  }
  EXPECT_GT(ok_count, 5);
}

// The central correctness property under failures: concurrent bank
// transfers with a primary killed mid-run must conserve the total.
TEST_F(RecoveryTest, PropertyBankInvariantSurvivesPrimaryFailure) {
  Boot(5, 23);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  constexpr int kAccounts = 8;
  constexpr uint64_t kInitial = 1000;
  for (uint32_t a = 0; a < kAccounts; a++) {
    ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, GlobalAddr{rid, a * 16}, kInitial))->ok());
  }

  auto finished = std::make_shared<int>(0);
  auto transfer = [](Cluster* c, RegionId r, int widx, std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(static_cast<uint64_t>(widx) * 71 + 3);
    for (int i = 0; i < 60; i++) {
      MachineId node = kInvalidMachine;
      for (int probe = 0; probe < c->num_machines(); probe++) {
        MachineId cand = static_cast<MachineId>((widx + probe) % c->num_machines());
        if (c->machine(cand).alive()) {
          node = cand;
          break;
        }
      }
      if (node == kInvalidMachine) {
        break;
      }
      uint32_t from = rng.Uniform(kAccounts);
      uint32_t to = rng.Uniform(kAccounts);
      if (from == to) {
        continue;
      }
      auto tx = c->node(node).Begin(widx % 2);
      auto vf = co_await tx->Read(GlobalAddr{r, from * 16}, 8);
      auto vt = co_await tx->Read(GlobalAddr{r, to * 16}, 8);
      if (!vf.ok() || !vt.ok()) {
        continue;
      }
      uint64_t bf = BytesU64(*vf);
      uint64_t bt = BytesU64(*vt);
      uint64_t amount = rng.Uniform(20) + 1;
      if (bf < amount) {
        continue;
      }
      std::vector<uint8_t> nf(8);
      std::vector<uint8_t> nt(8);
      uint64_t nbf = bf - amount;
      uint64_t nbt = bt + amount;
      std::memcpy(nf.data(), &nbf, 8);
      std::memcpy(nt.data(), &nbt, 8);
      (void)tx->Write(GlobalAddr{r, from * 16}, nf);
      (void)tx->Write(GlobalAddr{r, to * 16}, nt);
      (void)co_await tx->Commit();
    }
    (*fin)++;
  };
  constexpr int kWorkers = 6;
  for (int w = 0; w < kWorkers; w++) {
    Spawn(transfer(cluster_.get(), rid, w, finished));
  }

  cluster_->RunFor(3 * kMillisecond);
  const RegionPlacement* p = cluster_->node(4).config().Placement(rid);
  cluster_->Kill(p->primary);

  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *finished == kWorkers; }, 10 * kSecond));
  // Let recovery decisions and truncation settle before checking.
  cluster_->RunFor(300 * kMillisecond);

  MachineId coord = LiveCoordinator();
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; a++) {
    auto v = RunTask(*cluster_, ReadValue(coord, GlobalAddr{rid, a * 16}));
    ASSERT_TRUE(v.has_value() && v->ok()) << "account " << a;
    total += v->value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST_F(RecoveryTest, AllocatorFreeListsRecoverOnPromotedPrimary) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 256 << 10, 0);  // slab-managed

  // Allocate and commit a handful of objects.
  auto alloc_some = [this](RegionId r, int n, MachineId node) -> Task<Status> {
    for (int i = 0; i < n; i++) {
      auto tx = cluster_->node(node).Begin(0);
      auto a = co_await tx->Alloc(r, 32);
      if (!a.ok()) {
        co_return a.status();
      }
      std::vector<uint8_t> data(32, static_cast<uint8_t>(i));
      (void)tx->Write(*a, data);
      Status s = co_await tx->Commit();
      if (!s.ok()) {
        co_return s;
      }
    }
    co_return OkStatus();
  };
  ASSERT_TRUE(RunTask(*cluster_, alloc_some(rid, 10, 0))->ok());
  cluster_->RunFor(20 * kMillisecond);

  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId old_primary = p->primary;
  cluster_->Kill(old_primary);
  ASSERT_TRUE(WaitEvicted(old_primary));

  MachineId coord = LiveCoordinator();
  const RegionPlacement* p2 = cluster_->node(coord).config().Placement(rid);
  ASSERT_NE(p2, nullptr);
  Node& new_primary = cluster_->node(p2->primary);
  // Wait for allocator recovery (paced scan) to finish.
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        RegionAllocator* a = new_primary.allocator(rid);
        return a != nullptr && !a->recovering() && a->FreeSlots() > 0;
      },
      2 * kSecond));

  // New allocations work on the promoted primary.
  auto more = RunTask(*cluster_, alloc_some(rid, 5, coord));
  ASSERT_TRUE(more.has_value());
  EXPECT_TRUE(more->ok()) << more->ToString();
}

TEST_F(RecoveryTest, MinorityPartitionStalls) {
  Boot(5);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 1))->ok());

  // Partition machines {0,1} (including the CM) from {2,3,4}; the zk
  // replicas (ids 5,6,7) stay with the majority.
  cluster_->fabric().SetPartition({{0, 1}, {2, 3, 4, 5, 6, 7}});
  // The majority side reconfigures to evict 0 and 1.
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        for (MachineId m : {2u, 3u, 4u}) {
          const Configuration& cfg = cluster_->node(m).config();
          if (cfg.Contains(0) || cfg.Contains(1)) {
            return false;
          }
        }
        return true;
      },
      2 * kSecond));

  const Configuration& cfg = cluster_->node(2).config();
  EXPECT_EQ(cfg.machines.size(), 3u);
  EXPECT_TRUE(cfg.Contains(cfg.cm));

  // Majority side can still write (region re-replicated among survivors).
  auto s = RunTask(*cluster_, WriteValue(2, a, 2), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
}

TEST_F(RecoveryTest, PartitionHealEvictedMachinesRejoin) {
  Boot(5);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 1))->ok());

  // Isolate {0,1} (including the CM) exactly as MinorityPartitionStalls,
  // then heal after the majority has evicted them.
  cluster_->fabric().SetPartition({{0, 1}, {2, 3, 4, 5, 6, 7}});
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        for (MachineId m : {2u, 3u, 4u}) {
          const Configuration& cfg = cluster_->node(m).config();
          if (cfg.Contains(0) || cfg.Contains(1)) {
            return false;
          }
        }
        return true;
      },
      2 * kSecond));
  cluster_->fabric().ClearPartition();

  // Commits resume right away on the surviving members.
  auto s = RunTask(*cluster_, WriteValue(2, a, 2), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();

  // The healed minority discovers its eviction from the coordination
  // service, restarts empty, and rejoins as new instances: every machine
  // converges back to one five-member configuration.
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        for (int i = 0; i < 5; i++) {
          const Configuration& cfg = cluster_->node(static_cast<MachineId>(i)).config();
          if (cfg.machines.size() != 5u || !cfg.Contains(0) || !cfg.Contains(1)) {
            return false;
          }
        }
        return true;
      },
      3 * kSecond));

  // A rejoined machine works as a coordinator again.
  auto v = RunTask(*cluster_, ReadValue(0, a), 3 * kSecond);
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(v->value(), 2u);
  EXPECT_FALSE(cluster_->AnyRegionLost());
}

TEST_F(RecoveryTest, PowerFailureDuringPartitionRecovers) {
  Boot(5);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 7))->ok());
  cluster_->RunFor(30 * kMillisecond);  // truncation applies at backups

  // Cut the power while a partition is in force. The majority side (3 of 5
  // machines plus the zk replicas) must come back and recover on its own;
  // 3 replicas across 5 machines guarantees it holds at least one copy.
  cluster_->fabric().SetPartition({{0, 1}, {2, 3, 4, 5, 6, 7}});
  cluster_->RunFor(15 * kMillisecond);
  cluster_->PowerFailureRestart();
  cluster_->RunFor(500 * kMillisecond);

  auto v = RunTask(*cluster_, ReadValue(2, a), 3 * kSecond);
  ASSERT_TRUE(v.has_value() && v->ok()) << (v->ok() ? "" : v->status().ToString());
  EXPECT_EQ(v->value(), 7u);
  auto s = RunTask(*cluster_, WriteValue(2, a, 8), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
  EXPECT_FALSE(cluster_->AnyRegionLost());

  // After the partition heals everyone converges on one configuration and
  // the data is still there.
  cluster_->fabric().ClearPartition();
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        for (int i = 0; i < 5; i++) {
          const Configuration& cfg = cluster_->node(static_cast<MachineId>(i)).config();
          if (cfg.machines.size() != 5u) {
            return false;
          }
        }
        return true;
      },
      3 * kSecond));
  auto v2 = RunTask(*cluster_, ReadValue(LiveCoordinator(), a), 3 * kSecond);
  ASSERT_TRUE(v2.has_value() && v2->ok());
  EXPECT_EQ(v2->value(), 8u);
}

TEST_F(RecoveryTest, PowerFailureWithDatagramLossRecovers) {
  Boot(5);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 9))->ok());
  cluster_->RunFor(30 * kMillisecond);

  // Restart recovery (probes, votes, decisions) must ride out a lossy
  // datagram fabric: every RPC involved retries until acked.
  cluster_->fabric().set_datagram_loss(0.05);
  cluster_->PowerFailureRestart();
  cluster_->RunFor(500 * kMillisecond);

  auto v = RunTask(*cluster_, ReadValue(LiveCoordinator(), a), 3 * kSecond);
  ASSERT_TRUE(v.has_value() && v->ok()) << (v->ok() ? "" : v->status().ToString());
  EXPECT_EQ(v->value(), 9u);
  auto s = RunTask(*cluster_, WriteValue(LiveCoordinator(), a, 10), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
  EXPECT_FALSE(cluster_->AnyRegionLost());
  cluster_->fabric().set_datagram_loss(0.0);
}

TEST_F(RecoveryTest, RestartedEmptyMachineRejoins) {
  Boot(5);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 3))->ok());

  // Restart a backup as an empty replacement process: the old instance is
  // evicted, the new one petitions the CM and is admitted with no regions.
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId victim = p->backups[0];
  cluster_->RestartMachineEmpty(victim);
  ASSERT_TRUE(RunUntil(
      *cluster_,
      [&]() {
        for (int i = 0; i < 5; i++) {
          const Configuration& cfg = cluster_->node(static_cast<MachineId>(i)).config();
          if (cfg.machines.size() != 5u || !cfg.Contains(victim)) {
            return false;
          }
        }
        return true;
      },
      3 * kSecond));

  // The committed value survived (re-replication restores f+1 copies) and
  // the rejoined machine coordinates transactions again.
  auto v = RunTask(*cluster_, ReadValue(victim, a), 3 * kSecond);
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(v->value(), 3u);
  auto s = RunTask(*cluster_, WriteValue(victim, a, 4), 3 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok()) << s->ToString();
  EXPECT_FALSE(cluster_->AnyRegionLost());
}

TEST_F(RecoveryTest, CommittedDataIsInNvramOfAllReplicas) {
  Boot();
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 4242))->ok());
  cluster_->RunFor(30 * kMillisecond);  // truncation applies at backups

  // Simulate a whole-cluster power failure: machines reboot, NVRAM survives.
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  for (int m = 0; m < cluster_->num_machines(); m++) {
    cluster_->machine(static_cast<MachineId>(m)).Kill();
    cluster_->machine(static_cast<MachineId>(m)).Reboot();
  }
  // All f+1 NVRAM copies hold the committed value (durability, section 5).
  for (MachineId m : p->Replicas()) {
    RegionReplica* rep = cluster_->node(m).replica(rid);
    ASSERT_NE(rep, nullptr);
    uint64_t v = 0;
    std::memcpy(&v, rep->Ptr(8, 8), 8);
    EXPECT_EQ(v, 4242u) << "replica on machine " << m;
    EXPECT_EQ(VersionWord::Version(rep->ReadHeader(0)), 1u);
  }
}

TEST_F(RecoveryTest, TwoSequentialFailures) {
  Boot(6);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  GlobalAddr a{rid, 0};
  ASSERT_TRUE(RunTask(*cluster_, WriteValue(0, a, 10))->ok());

  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId first = p->backups[0];
  cluster_->Kill(first);
  ASSERT_TRUE(WaitEvicted(first, kSecond));
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->regions_rereplicated() >= 1; },
                       2 * kSecond));

  MachineId coord = LiveCoordinator();
  const RegionPlacement* p2 = cluster_->node(coord).config().Placement(rid);
  MachineId second = p2->primary;
  cluster_->Kill(second);
  ASSERT_TRUE(WaitEvicted(second, kSecond));

  coord = LiveCoordinator();
  auto v = RunTask(*cluster_, ReadValue(coord, a), 3 * kSecond);
  ASSERT_TRUE(v.has_value() && v->ok());
  EXPECT_EQ(v->value(), 10u);
  EXPECT_FALSE(cluster_->AnyRegionLost());
}

TEST_F(RecoveryTest, RegionLostWhenAllReplicasDie) {
  // Enough machines that a majority survives the triple failure (losing a
  // majority correctly stalls reconfiguration instead).
  Boot(8);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  const RegionPlacement p = *cluster_->node(0).config().Placement(rid);
  // Kill all replicas simultaneously so no re-replication can save it.
  for (MachineId m : p.Replicas()) {
    cluster_->Kill(m);
  }
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return cluster_->AnyRegionLost(); }, 2 * kSecond));
  EXPECT_EQ(cluster_->lost_regions()[0], rid);
}

// Parameterized failure-point sweep: kill the primary at different moments
// relative to a write burst; the system must always recover to a state
// where every committed write is durable and readable.
class FailurePointTest : public RecoveryTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(FailurePointTest, KillPrimaryAtVariousPoints) {
  int delay_us = GetParam();
  Boot(5, static_cast<uint64_t>(delay_us) + 100);
  RegionId rid = MustCreateRegion(*cluster_, 64 << 10, 16);
  const RegionPlacement* p = cluster_->node(0).config().Placement(rid);
  MachineId victim = p->primary;
  MachineId coord = kInvalidMachine;
  for (int i = 0; i < cluster_->num_machines(); i++) {
    if (!p->Contains(static_cast<MachineId>(i))) {
      coord = static_cast<MachineId>(i);
      break;
    }
  }
  ASSERT_NE(coord, kInvalidMachine);

  auto outcomes = std::make_shared<std::vector<std::pair<uint64_t, Status>>>();
  auto done = std::make_shared<bool>(false);
  auto writer = [](Cluster* c, MachineId node, RegionId r,
                   std::shared_ptr<std::vector<std::pair<uint64_t, Status>>> out,
                   std::shared_ptr<bool> fin) -> Task<void> {
    for (uint64_t i = 1; i <= 30; i++) {
      GlobalAddr addr{r, static_cast<uint32_t>((i % 8) * 16)};
      auto tx = c->node(node).Begin(0);
      auto rd = co_await tx->Read(addr, 8);
      if (!rd.ok()) {
        out->push_back({i, rd.status()});
        continue;
      }
      std::vector<uint8_t> b(8);
      std::memcpy(b.data(), &i, 8);
      (void)tx->Write(addr, b);
      out->push_back({i, co_await tx->Commit()});
    }
    *fin = true;
  };
  Spawn(writer(cluster_.get(), coord, rid, outcomes, done));
  cluster_->RunFor(static_cast<SimDuration>(delay_us) * kMicrosecond);
  cluster_->Kill(victim);
  ASSERT_TRUE(RunUntil(*cluster_, [&]() { return *done; }, 10 * kSecond));
  cluster_->RunFor(200 * kMillisecond);

  // Every committed write must be durable: for each slot, the stored value
  // must be the latest committed write to that slot.
  MachineId reader = LiveCoordinator();
  std::map<uint32_t, uint64_t> latest_committed;
  for (const auto& [i, s] : *outcomes) {
    if (s.ok()) {
      latest_committed[static_cast<uint32_t>((i % 8) * 16)] = i;
    }
  }
  for (const auto& [off, expect] : latest_committed) {
    auto v = RunTask(*cluster_, ReadValue(reader, GlobalAddr{rid, off}), 3 * kSecond);
    ASSERT_TRUE(v.has_value() && v->ok()) << "offset " << off;
    // The stored value is the latest committed write (an unresolved tx may
    // have been committed by recovery after the app gave up, so the value
    // may be from a later, unreported-but-recovered write; it must be at
    // least the committed one).
    EXPECT_GE(v->value(), expect) << "offset " << off;
  }
  EXPECT_EQ(outcomes->size(), 30u);
}

INSTANTIATE_TEST_SUITE_P(KillTimings, FailurePointTest,
                         ::testing::Values(100, 300, 700, 1200, 2000, 3500, 5000));

}  // namespace
}  // namespace farm
