// Cross-cutting consistency checks: TPC-C invariants after a concurrent
// run, the NSDI'14-protocol ablation's correctness, and lock-free read
// strictness around in-flight writers.
#include <gtest/gtest.h>

#include "src/workload/tpcc.h"
#include "tests/test_util.h"

namespace farm {
namespace {

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

// TPC-C consistency condition 1 (adapted): for every district, d_next_o_id-1
// equals the maximum order id present in the order table and the order-line
// index, even after a concurrent full-mix run.
TEST(TpccConsistency, DistrictOrderCountersMatchIndexes) {
  ClusterOptions opts = SmallClusterOptions(4, 3);
  opts.node.region_size = 2 << 20;
  auto cluster = MakeStartedCluster(opts);

  TpccOptions topts;
  topts.warehouses = 2;
  topts.districts = 4;
  topts.customers = 24;
  topts.items = 80;
  topts.init_orders = 8;
  auto db = RunTask(*cluster, [](Cluster* c, TpccOptions o) -> Task<StatusOr<TpccDb>> {
                      co_return co_await TpccDb::Create(*c, o);
                    }(cluster.get(), topts),
                    120 * kSecond);
  ASSERT_TRUE(db.has_value() && db->ok());

  // Concurrent new-orders from several workers.
  auto done = std::make_shared<int>(0);
  auto worker = [](Cluster* c, TpccDb d, int widx, std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(static_cast<uint64_t>(widx) * 7 + 1);
    Node& node = c->node(static_cast<MachineId>(widx % c->num_machines()));
    for (int i = 0; i < 15; i++) {
      (void)co_await d.NewOrder(node, widx % 2, rng);
    }
    (*fin)++;
  };
  for (int w = 0; w < 6; w++) {
    Spawn(worker(cluster.get(), db->value(), w, done));
  }
  ASSERT_TRUE(RunUntil(*cluster, [&]() { return *done == 6; }, 30 * kSecond));
  cluster->RunFor(50 * kMillisecond);

  // Verify the invariant through the public transactional API.
  auto check = [](Cluster* c, TpccDb d, TpccOptions o) -> Task<int> {
    int violations = 0;
    for (uint64_t w = 1; w <= static_cast<uint64_t>(o.warehouses); w++) {
      for (uint64_t dist = 1; dist <= static_cast<uint64_t>(o.districts); dist++) {
        // Repeat on conflict: the check itself is a transaction.
        for (int attempt = 0; attempt < 5; attempt++) {
          auto tx = c->node(0).Begin(0);
          // The district row's next_o_id.
          // (Peeking through the same hash-table API the workload uses.)
          auto drow = co_await d.DistrictRowForTest(*tx, w, dist);
          if (!drow.ok()) {
            continue;
          }
          uint32_t next_o = *drow;
          // The largest order id in the order-line B-tree for (w, d).
          auto ols = co_await d.OrderLineScanForTest(*tx, w, dist);
          if (!ols.ok()) {
            continue;
          }
          Status s = co_await tx->Commit();
          if (!s.ok()) {
            continue;
          }
          uint64_t max_order = 0;
          for (const auto& [k, v] : *ols) {
            (void)v;
            uint64_t order_id = (k >> 8) & 0xffffffffULL;
            max_order = std::max(max_order, order_id);
          }
          if (max_order != static_cast<uint64_t>(next_o) - 1) {
            violations++;
          }
          break;
        }
      }
    }
    co_return violations;
  };
  auto violations = RunTask(*cluster, check(cluster.get(), db->value(), topts), 60 * kSecond);
  ASSERT_TRUE(violations.has_value());
  EXPECT_EQ(*violations, 0);
}

// The NSDI'14 protocol variant (LOCK records also written to backups) must
// preserve correctness; it only costs messages.
TEST(Nsdi14Ablation, BankInvariantHolds) {
  ClusterOptions opts = SmallClusterOptions(5, 9);
  opts.node.backup_lock_records = true;
  auto cluster = MakeStartedCluster(opts);
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
  constexpr int kAccounts = 6;
  constexpr uint64_t kInitial = 300;

  auto write_value = [](Cluster* c, GlobalAddr addr, uint64_t value) -> Task<Status> {
    auto tx = c->node(0).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    (void)tx->Write(addr, U64Bytes(value));
    co_return co_await tx->Commit();
  };
  for (uint32_t a = 0; a < kAccounts; a++) {
    ASSERT_TRUE(RunTask(*cluster, write_value(cluster.get(), GlobalAddr{rid, a * 16}, kInitial))
                    ->ok());
  }

  auto done = std::make_shared<int>(0);
  auto transfer = [](Cluster* c, RegionId r, int widx, std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(static_cast<uint64_t>(widx) * 3 + 11);
    for (int i = 0; i < 30; i++) {
      MachineId node = static_cast<MachineId>(widx % c->num_machines());
      if (!c->machine(node).alive()) {
        node = 0;
      }
      uint32_t from = rng.Uniform(kAccounts);
      uint32_t to = rng.Uniform(kAccounts);
      if (from == to) {
        continue;
      }
      auto tx = c->node(node).Begin(0);
      auto vf = co_await tx->Read(GlobalAddr{r, from * 16}, 8);
      auto vt = co_await tx->Read(GlobalAddr{r, to * 16}, 8);
      if (!vf.ok() || !vt.ok()) {
        continue;
      }
      uint64_t bf = 0;
      uint64_t bt = 0;
      std::memcpy(&bf, vf->data(), 8);
      std::memcpy(&bt, vt->data(), 8);
      if (bf < 10) {
        continue;
      }
      (void)tx->Write(GlobalAddr{r, from * 16}, U64Bytes(bf - 10));
      (void)tx->Write(GlobalAddr{r, to * 16}, U64Bytes(bt + 10));
      (void)co_await tx->Commit();
    }
    (*fin)++;
  };
  for (int w = 0; w < 4; w++) {
    Spawn(transfer(cluster.get(), rid, w, done));
  }
  cluster->RunFor(2 * kMillisecond);
  const RegionPlacement placement = *cluster->node(0).config().Placement(rid);
  cluster->Kill(placement.primary);  // failure with backup LOCK records in logs
  ASSERT_TRUE(RunUntil(*cluster, [&]() { return *done == 4; }, 20 * kSecond));
  cluster->RunFor(300 * kMillisecond);

  MachineId reader = placement.primary == 0 ? 1 : 0;
  auto read_value = [](Cluster* c, MachineId node, GlobalAddr addr) -> Task<StatusOr<uint64_t>> {
    auto tx = c->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    uint64_t v = 0;
    std::memcpy(&v, r->data(), 8);
    co_return v;
  };
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; a++) {
    auto v = RunTask(*cluster, read_value(cluster.get(), reader, GlobalAddr{rid, a * 16}),
                     5 * kSecond);
    ASSERT_TRUE(v.has_value() && v->ok());
    total += v->value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

// A lock-free read concurrent with a writer never observes the lock window
// as data: it either reads the pre-commit or the post-commit value.
TEST(LockFreeStrictness, ReadsNeverSeeTornOrLockedState) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 21));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 24);
  GlobalAddr addr{rid, 0};

  // Writer: value pairs (x, x) -- readers must never see mismatched halves.
  auto writer = [](Cluster* c, GlobalAddr a, std::shared_ptr<bool> stop) -> Task<void> {
    uint64_t x = 1;
    while (!*stop) {
      auto tx = c->node(0).Begin(0);
      auto r = co_await tx->Read(a, 16);
      if (r.ok()) {
        std::vector<uint8_t> v(16);
        std::memcpy(v.data(), &x, 8);
        std::memcpy(v.data() + 8, &x, 8);
        (void)tx->Write(a, v);
        (void)co_await tx->Commit();
        x++;
      }
    }
  };
  auto stop = std::make_shared<bool>(false);
  Spawn(writer(cluster.get(), addr, stop));

  auto bad_reads = std::make_shared<int>(0);
  auto reader = [](Cluster* c, GlobalAddr a, std::shared_ptr<bool> s,
                   std::shared_ptr<int> bad) -> Task<void> {
    while (!*s) {
      auto v = co_await c->node(2).LockFreeRead(a, 16, 0);
      if (v.ok()) {
        uint64_t lo = 0;
        uint64_t hi = 0;
        std::memcpy(&lo, v->data(), 8);
        std::memcpy(&hi, v->data() + 8, 8);
        if (lo != hi) {
          (*bad)++;
        }
      }
    }
  };
  Spawn(reader(cluster.get(), addr, stop, bad_reads));
  cluster->RunFor(20 * kMillisecond);
  *stop = true;
  cluster->RunFor(kMillisecond);
  EXPECT_EQ(*bad_reads, 0);
}

}  // namespace
}  // namespace farm

namespace farm {
namespace {

std::vector<uint8_t> U64BytesPf(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

// The paper's durability guarantee: after whole-cluster power loss, all
// committed state is recoverable from the regions and logs in NVRAM. A
// burst of writes is cut off by a power failure at an arbitrary instant;
// after replaying the logs, every write that was REPORTED committed must be
// present (the in-place update may still have been sitting, unapplied, in
// the primary's non-volatile log), and the object must be consistent.
TEST(PowerFailure, CommittedWritesSurviveMidBurstPowerCut) {
  for (uint64_t offset_us : {150, 300, 450, 700, 900}) {
    auto cluster = MakeStartedCluster(SmallClusterOptions(4, 61 + offset_us));
    RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
    GlobalAddr addr{rid, 0};
    const RegionPlacement placement = *cluster->node(0).config().Placement(rid);
    MachineId coord = kInvalidMachine;
    for (int m = 0; m < cluster->num_machines(); m++) {
      if (!placement.Contains(static_cast<MachineId>(m))) {
        coord = static_cast<MachineId>(m);
        break;
      }
    }
    ASSERT_NE(coord, kInvalidMachine);

    // Writer: monotonically increasing values; records the last value whose
    // commit was reported to the application. Stops at the power cut (the
    // application process is gone).
    auto last_reported = std::make_shared<uint64_t>(0);
    auto powered = std::make_shared<bool>(true);
    auto burst = [](Cluster* c, MachineId node, GlobalAddr a,
                    std::shared_ptr<uint64_t> reported,
                    std::shared_ptr<bool> power) -> Task<void> {
      for (uint64_t v = 1; v <= 200 && *power; v++) {
        auto tx = c->node(node).Begin(0);
        auto r = co_await tx->Read(a, 8);
        if (!r.ok()) {
          co_return;
        }
        (void)tx->Write(a, U64BytesPf(v));
        if ((co_await tx->Commit()).ok() && *power) {
          *reported = v;
        }
      }
    };
    Spawn(burst(cluster.get(), coord, addr, last_reported, powered));
    cluster->RunFor(offset_us * kMicrosecond);  // power cut mid-burst
    *powered = false;

    cluster->PowerFailureRestart();
    cluster->RunFor(100 * kMillisecond);  // votes + decisions + truncation
    RegionReplica* rep = cluster->node(placement.primary).replica(rid);
    ASSERT_NE(rep, nullptr);
    uint64_t stored = 0;
    std::memcpy(&stored, rep->Ptr(8, 8), 8);
    uint64_t header = rep->ReadHeader(0);
    // Every reported commit is durable. The one transaction in flight at
    // the cut may additionally have been committed by restart recovery.
    EXPECT_GE(stored, *last_reported) << "cut at " << offset_us << "us";
    EXPECT_LE(stored, *last_reported + 1) << "cut at " << offset_us << "us";
    EXPECT_FALSE(VersionWord::IsLocked(header)) << "cut at " << offset_us << "us";
    ASSERT_GT(*last_reported, 0u);  // the burst made progress before the cut
  }
}

// Replay must be idempotent: rebooting twice (or replaying logs whose
// transactions were already applied) changes nothing.
TEST(PowerFailure, ReplayIsIdempotent) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 67));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
  GlobalAddr addr{rid, 0};
  auto write_value = [](Cluster* c, GlobalAddr a, uint64_t v) -> Task<Status> {
    auto tx = c->node(1).Begin(0);
    auto r = co_await tx->Read(a, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    (void)tx->Write(a, U64BytesPf(v));
    co_return co_await tx->Commit();
  };
  for (uint64_t v = 1; v <= 5; v++) {
    ASSERT_TRUE(RunTask(*cluster, write_value(cluster.get(), addr, v))->ok());
  }
  const RegionPlacement placement = *cluster->node(0).config().Placement(rid);
  RegionReplica* rep = cluster->node(placement.primary).replica(rid);
  uint64_t version_before = VersionWord::Version(rep->ReadHeader(0));

  for (int round = 0; round < 3; round++) {
    cluster->PowerFailureRestart();
    cluster->RunFor(50 * kMillisecond);
  }
  uint64_t stored = 0;
  std::memcpy(&stored, rep->Ptr(8, 8), 8);
  EXPECT_EQ(stored, 5u);
  EXPECT_EQ(VersionWord::Version(rep->ReadHeader(0)), version_before);
  EXPECT_FALSE(VersionWord::IsLocked(rep->ReadHeader(0)));
}

}  // namespace
}  // namespace farm
