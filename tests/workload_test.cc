// Tests for the TATP / TPC-C / KV workloads and the load driver.
#include <gtest/gtest.h>

#include "src/workload/kv.h"
#include "src/workload/tatp.h"
#include "src/workload/tpcc.h"
#include "tests/test_util.h"

namespace farm {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void Boot(int machines = 4, uint64_t seed = 1, uint32_t region_kb = 1024) {
    ClusterOptions opts = SmallClusterOptions(machines, seed);
    opts.node.region_size = region_kb << 10;
    cluster_ = MakeStartedCluster(opts);
  }

  TatpDb MakeTatp(uint64_t subscribers = 400) {
    TatpOptions o;
    o.subscribers = subscribers;
    auto create = [](Cluster* c, TatpOptions opt) -> Task<StatusOr<TatpDb>> {
      co_return co_await TatpDb::Create(*c, opt);
    };
    auto db = RunTask(*cluster_, create(cluster_.get(), o), 60 * kSecond);
    FARM_CHECK(db.has_value() && db->ok())
        << (db.has_value() ? db->status().ToString() : "timeout");
    db->value().RegisterServices(*cluster_);
    return db->value();
  }

  TpccDb MakeTpcc(int warehouses = 2) {
    TpccOptions o;
    o.warehouses = warehouses;
    o.customers = 32;
    o.items = 100;
    o.init_orders = 10;
    auto create = [](Cluster* c, TpccOptions opt) -> Task<StatusOr<TpccDb>> {
      co_return co_await TpccDb::Create(*c, opt);
    };
    auto db = RunTask(*cluster_, create(cluster_.get(), o), 120 * kSecond);
    FARM_CHECK(db.has_value() && db->ok())
        << (db.has_value() ? db->status().ToString() : "timeout");
    return db->value();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(WorkloadTest, TatpIndividualTransactions) {
  Boot();
  TatpDb db = MakeTatp();
  auto run_all = [this, &db]() -> Task<int> {
    Pcg32 rng(5);
    int ok = 0;
    Node& node = cluster_->node(1);
    for (int i = 0; i < 10; i++) {
      ok += co_await db.GetSubscriberData(node, 0, rng) ? 1 : 0;
    }
    ok += co_await db.GetNewDestination(node, 0, rng) ? 1 : 0;
    ok += co_await db.GetAccessData(node, 0, rng) ? 1 : 0;
    ok += co_await db.UpdateSubscriberData(node, 0, rng) ? 1 : 0;
    ok += co_await db.UpdateLocation(node, 0, rng) ? 1 : 0;
    ok += co_await db.InsertCallForwarding(node, 0, rng) ? 1 : 0;
    co_return ok;
  };
  auto ok = RunTask(*cluster_, run_all(), 10 * kSecond);
  ASSERT_TRUE(ok.has_value());
  // The 10 subscriber lookups always hit; the rest mostly succeed.
  EXPECT_GE(*ok, 12);
}

TEST_F(WorkloadTest, TatpMixRunsAtThroughput) {
  Boot();
  TatpDb db = MakeTatp();
  DriverOptions opts;
  opts.threads_per_machine = 2;
  opts.concurrency_per_thread = 2;
  opts.warmup = 5 * kMillisecond;
  opts.measure = 50 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster_, db.MakeWorkload(), opts);
  EXPECT_GT(r.committed, 500u);
  EXPECT_GT(r.CommittedPerSecond(), 10000.0);
  // Read-dominated mix: lock-free reads dominate.
  EXPECT_GT(cluster_->TotalStats().lockfree_reads, r.committed / 2);
  // Latencies are in the tens of microseconds at this load.
  EXPECT_LT(r.latency.Percentile(50), 500 * kMicrosecond);
}

TEST_F(WorkloadTest, TatpUpdatesAreDurable) {
  Boot();
  TatpDb db = MakeTatp(100);
  auto update_then_read = [this, &db]() -> Task<bool> {
    Pcg32 rng(7);
    Node& node = cluster_->node(1);
    bool updated = co_await db.UpdateLocation(node, 0, rng);
    co_return updated;
  };
  auto ok = RunTask(*cluster_, update_then_read(), 5 * kSecond);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
}

TEST_F(WorkloadTest, TpccNewOrderAndPayment) {
  Boot(4, 2, 2048);
  TpccDb db = MakeTpcc();
  auto run = [this, &db]() -> Task<std::pair<int, int>> {
    Pcg32 rng(3);
    Node& node = cluster_->node(0);
    int no = 0;
    int pay = 0;
    for (int i = 0; i < 10; i++) {
      no += co_await db.NewOrder(node, 0, rng) ? 1 : 0;
      pay += co_await db.Payment(node, 0, rng) ? 1 : 0;
    }
    co_return std::make_pair(no, pay);
  };
  auto r = RunTask(*cluster_, run(), 30 * kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->first, 8);   // ~1% intentional rollbacks
  EXPECT_GE(r->second, 9);
  EXPECT_EQ(db.stats()->new_order_committed, static_cast<uint64_t>(r->first));
}

TEST_F(WorkloadTest, TpccOrderLifecycle) {
  Boot(4, 2, 2048);
  TpccDb db = MakeTpcc();
  auto run = [this, &db]() -> Task<bool> {
    Pcg32 rng(9);
    Node& node = cluster_->node(0);
    // Create orders, check status, deliver, check stock.
    for (int i = 0; i < 5; i++) {
      (void)co_await db.NewOrder(node, 0, rng);
    }
    bool status_ok = co_await db.OrderStatus(node, 0, rng);
    bool delivery_ok = co_await db.Delivery(node, 0, rng);
    bool stock_ok = co_await db.StockLevel(node, 0, rng);
    co_return status_ok && delivery_ok && stock_ok;
  };
  auto ok = RunTask(*cluster_, run(), 30 * kSecond);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
}

TEST_F(WorkloadTest, TpccFullMixRuns) {
  Boot(4, 2, 2048);
  TpccDb db = MakeTpcc();
  DriverOptions opts;
  opts.threads_per_machine = 2;
  opts.concurrency_per_thread = 2;
  opts.warmup = 5 * kMillisecond;
  opts.measure = 50 * kMillisecond;
  opts.machines = db.ClientMachines(*cluster_);
  DriverResult r = RunClosedLoop(*cluster_, db.MakeWorkload(), opts);
  EXPECT_GT(r.committed, 50u);
  EXPECT_GT(db.stats()->new_order_committed, 10u);
  EXPECT_GT(db.stats()->payment, 10u);
}

TEST_F(WorkloadTest, KvLookupWorkload) {
  Boot();
  KvOptions o;
  o.keys = 2000;
  auto create = [](Cluster* c, KvOptions opt) -> Task<StatusOr<KvDb>> {
    co_return co_await KvDb::Create(*c, opt);
  };
  auto db = RunTask(*cluster_, create(cluster_.get(), o), 60 * kSecond);
  ASSERT_TRUE(db.has_value() && db->ok());

  DriverOptions opts;
  opts.threads_per_machine = 2;
  opts.concurrency_per_thread = 4;
  opts.warmup = 5 * kMillisecond;
  opts.measure = 30 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster_, db->value().MakeWorkload(), opts);
  EXPECT_GT(r.committed, 1000u);
  // Lookups are one-sided: median latency stays in single-digit us at
  // moderate load.
  EXPECT_LT(r.latency.Percentile(50), 100 * kMicrosecond);
}

TEST_F(WorkloadTest, DriverMeasuresOnlyAfterWarmup) {
  Boot();
  KvOptions o;
  o.keys = 200;
  auto create = [](Cluster* c, KvOptions opt) -> Task<StatusOr<KvDb>> {
    co_return co_await KvDb::Create(*c, opt);
  };
  auto db = RunTask(*cluster_, create(cluster_.get(), o), 30 * kSecond);
  ASSERT_TRUE(db.has_value() && db->ok());

  DriverOptions opts;
  opts.threads_per_machine = 1;
  opts.concurrency_per_thread = 1;
  opts.warmup = 20 * kMillisecond;
  opts.measure = 20 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster_, db->value().MakeWorkload(), opts);
  // Nothing before measure_start is recorded.
  uint64_t pre_window = 0;
  for (size_t ms = 0; ms < r.measure_start / kMillisecond && ms < r.throughput.intervals().size();
       ms++) {
    pre_window += r.throughput.intervals()[ms];
  }
  EXPECT_EQ(pre_window, 0u);
  EXPECT_GT(r.committed, 0u);
}

}  // namespace
}  // namespace farm
