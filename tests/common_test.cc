// Unit tests for src/common: rand, hash, histogram, serde, status.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/serde.h"
#include "src/common/status.h"

namespace farm {
namespace {

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, UniformBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    EXPECT_LT(rng.Uniform64(1000003), 1000003u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform64(0), 0u);
}

TEST(Pcg32Test, UniformIsRoughlyUniform) {
  Pcg32 rng(12345);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    counts[rng.Uniform(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);
  }
}

TEST(Pcg32Test, BernoulliProbability) {
  Pcg32 rng(99);
  int hits = 0;
  for (int i = 0; i < 100000; i++) {
    if (rng.Bernoulli(0.3)) {
      hits++;
    }
  }
  EXPECT_NEAR(hits, 30000, 1000);
}

TEST(ZipfTest, SkewsTowardLowIndices) {
  Pcg32 rng(5);
  Zipf zipf(1000, 0.99);
  int low = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; i++) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) {
      low++;
    }
  }
  // With theta=0.99 the top-10 of 1000 keys draw a large share of accesses.
  EXPECT_GT(low, kSamples / 4);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; bit++) {
    uint64_t a = Mix64(0x123456789abcdefULL);
    uint64_t b = Mix64(0x123456789abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

TEST(HashTest, Fnv1aDistinct) {
  EXPECT_NE(Fnv1a("hello"), Fnv1a("world"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

TEST(ConsistentHashTest, OwnerStableAcrossUnrelatedRemovals) {
  ConsistentHashRing ring;
  for (uint64_t n = 0; n < 10; n++) {
    ring.AddNode(n);
  }
  // Record owners, remove one node, verify only keys owned by it move.
  std::vector<uint64_t> owners;
  for (uint64_t k = 0; k < 1000; k++) {
    owners.push_back(ring.Owner(k));
  }
  ring.RemoveNode(3);
  for (uint64_t k = 0; k < 1000; k++) {
    uint64_t now = ring.Owner(k);
    if (owners[k] != 3) {
      EXPECT_EQ(now, owners[k]) << "key " << k << " moved needlessly";
    } else {
      EXPECT_NE(now, 3u);
    }
  }
}

TEST(ConsistentHashTest, SuccessorsDistinct) {
  ConsistentHashRing ring;
  for (uint64_t n = 0; n < 8; n++) {
    ring.AddNode(n);
  }
  auto succ = ring.Successors(0xdeadbeef, 3);
  ASSERT_EQ(succ.size(), 3u);
  std::set<uint64_t> uniq(succ.begin(), succ.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(ConsistentHashTest, SuccessorsCappedAtRingSize) {
  ConsistentHashRing ring;
  ring.AddNode(1);
  ring.AddNode(2);
  EXPECT_EQ(ring.Successors(42, 5).size(), 2u);
}

TEST(ConsistentHashTest, BalancedOwnership) {
  ConsistentHashRing ring(32);
  for (uint64_t n = 0; n < 10; n++) {
    ring.AddNode(n);
  }
  std::vector<int> counts(10, 0);
  for (uint64_t k = 0; k < 100000; k++) {
    counts[ring.Owner(k)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 2000);  // no node starves
    EXPECT_LT(c, 30000);
  }
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 10000u);
  uint64_t p50 = h.Percentile(50);
  uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 300.0);
}

TEST(HistogramTest, MinMaxMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(100);
  b.Record(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 200u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  uint64_t big = 3'600'000'000'000ULL;  // one hour in ns
  h.Record(big);
  // Log-bucketing keeps ~1.6% relative precision.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), static_cast<double>(big), 0.02 * static_cast<double>(big));
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(4242);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 4242u);
  EXPECT_EQ(h.max(), 4242u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4242.0);
  // Every percentile of a single-value distribution is that value
  // (to within log-bucket precision).
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(static_cast<double>(h.Percentile(p)), 4242.0, 0.02 * 4242.0);
  }
}

TEST(HistogramTest, MergeDisjointRanges) {
  Histogram low;
  Histogram high;
  for (uint64_t v = 1; v <= 1000; v++) {
    low.Record(v);
  }
  for (uint64_t v = 1'000'000; v < 1'001'000; v++) {
    high.Record(v);
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), 2000u);
  EXPECT_EQ(low.min(), 1u);
  EXPECT_EQ(low.max(), 1'000'999u);
  // Half the mass is below 1000, half at ~1e6: p25 in the low range, p75 high.
  EXPECT_LT(low.Percentile(25), 2000u);
  EXPECT_GT(low.Percentile(75), 900'000u);
}

TEST(HistogramTest, NearestRankCountOne) {
  // Values below the histogram's linear range (64) are bucketed exactly, so
  // boundary percentiles can be asserted with EXPECT_EQ.
  Histogram h;
  h.Record(7);
  EXPECT_EQ(h.Percentile(0), 7u);
  EXPECT_EQ(h.Percentile(50), 7u);
  EXPECT_EQ(h.Percentile(100), 7u);
}

TEST(HistogramTest, MergeEmptyIntoNonEmptyKeepsExtrema) {
  Histogram h;
  h.Record(100);
  Histogram empty;
  h.Merge(empty);
  // Merging an empty histogram must not poison min/max (empty's min
  // sentinel is UINT64_MAX, its max 0).
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.Percentile(50), 100u);
}

TEST(HistogramTest, MergeNonEmptyIntoEmpty) {
  Histogram empty;
  Histogram h;
  h.Record(100);
  h.Record(300);
  empty.Merge(h);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 100u);
  EXPECT_EQ(empty.max(), 300u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 200.0);
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  // A single large sample sits in a log bucket whose midpoint differs from
  // the sample; percentiles must still return the exact observed extrema,
  // never a value outside [min, max].
  Histogram h;
  h.Record(4242);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 4242u) << "p" << p;
  }
  Histogram two;
  two.Record(1000);
  two.Record(1001);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(two.Percentile(p), 1000u) << "p" << p;
    EXPECT_LE(two.Percentile(p), 1001u) << "p" << p;
  }
}

TEST(HistogramTest, NearestRankCountTwo) {
  Histogram h;
  h.Record(5);
  h.Record(50);
  // Rank ceil(p/100 * 2): p in (0, 50] is the first sample, p in (50, 100]
  // the second. The old floor(p/100 * (count-1)) + 1 rank returned the FIRST
  // sample for p99 -- the min as the tail.
  EXPECT_EQ(h.Percentile(0), 5u);
  EXPECT_EQ(h.Percentile(50), 5u);
  EXPECT_EQ(h.Percentile(51), 50u);
  EXPECT_EQ(h.Percentile(99), 50u);
  EXPECT_EQ(h.Percentile(100), 50u);
}

TEST(HistogramTest, NearestRankSmallCountTail) {
  // Ten distinct samples: p99 is rank ceil(9.9) = 10, the largest; p90 is
  // rank 9. The old formula reported rank 9 for p99.
  Histogram h;
  for (uint64_t v = 1; v <= 10; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(99), 10u);
  EXPECT_EQ(h.Percentile(90), 9u);
  EXPECT_EQ(h.Percentile(91), 10u);
  EXPECT_EQ(h.Percentile(100), 10u);
  EXPECT_EQ(h.Percentile(0), 1u);
  EXPECT_EQ(h.Percentile(10), 1u);
  EXPECT_EQ(h.Percentile(11), 2u);
}

TEST(HistogramTest, NearestRankLargeCount) {
  // Two observations of each value in [1, 50]: count = 100, so pN is simply
  // the Nth rank. All values sit in the exact linear range.
  Histogram h;
  for (uint64_t v = 1; v <= 50; v++) {
    h.Record(v);
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0), 1u);
  EXPECT_EQ(h.Percentile(1), 1u);
  EXPECT_EQ(h.Percentile(50), 25u);
  EXPECT_EQ(h.Percentile(98), 49u);
  EXPECT_EQ(h.Percentile(99), 50u);
  EXPECT_EQ(h.Percentile(100), 50u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  // Recording after Reset starts from scratch.
  h.Record(7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(TimeSeriesTest, BucketsByInterval) {
  TimeSeries ts(1000);
  ts.Record(0);
  ts.Record(999);
  ts.Record(1000);
  ts.Record(2500, 3);
  ASSERT_EQ(ts.intervals().size(), 3u);
  EXPECT_EQ(ts.intervals()[0], 2u);
  EXPECT_EQ(ts.intervals()[1], 1u);
  EXPECT_EQ(ts.intervals()[2], 3u);
  EXPECT_DOUBLE_EQ(ts.AverageRate(0, 2000), 1.5);
}

TEST(TimeSeriesTest, AverageRatePartialIntervals) {
  TimeSeries ts(1000);
  ts.Record(500, 2);   // bucket 0
  ts.Record(1500, 4);  // bucket 1
  ts.Record(2500, 6);  // bucket 2
  // A partial trailing interval is excluded: [0, 1500) covers only bucket 0.
  EXPECT_DOUBLE_EQ(ts.AverageRate(0, 1500), 2.0);
  // A partial leading interval still counts its full bucket.
  EXPECT_DOUBLE_EQ(ts.AverageRate(500, 2000), 3.0);
  // A window inside one interval spans no complete interval: rate 0.
  EXPECT_DOUBLE_EQ(ts.AverageRate(500, 999), 0.0);
  // A window entirely past the recorded data: rate 0.
  EXPECT_DOUBLE_EQ(ts.AverageRate(5000, 10000), 0.0);
  // Exact interval boundaries cover all three buckets.
  EXPECT_DOUBLE_EQ(ts.AverageRate(0, 3000), 4.0);
}

TEST(SerdeTest, RoundTrip) {
  BufWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("farm");
  auto bytes = w.Take();

  BufReader r(bytes);
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetString(), "farm");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, BytesWithEmbeddedZeros) {
  BufWriter w;
  std::vector<uint8_t> blob = {0, 1, 0, 2, 0};
  w.PutBytes(blob.data(), blob.size());
  BufReader r(w.bytes());
  EXPECT_EQ(r.GetBytes(), blob);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  Status s = AbortedStatus("conflict");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.ToString(), "ABORTED: conflict");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);

  StatusOr<int> e = NotFoundStatus("missing");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace farm
