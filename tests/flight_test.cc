// Tests for the transaction flight recorder (src/obs/flight_recorder.h):
// ring semantics, the postmortem text format, the chaos postmortem pipeline,
// the abort-reason counter taxonomy, and tx-tagged logging.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/chaos/harness.h"
#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/workload/driver.h"
#include "src/workload/tatp.h"
#include "tests/test_util.h"

namespace farm {
namespace {

flight::Record MakeRec(uint64_t t, flight::EventKind kind, uint8_t arg = 0,
                       uint32_t detail = 0) {
  flight::Record r;
  r.time_ns = t;
  r.kind = static_cast<uint8_t>(kind);
  r.arg = arg;
  r.detail = detail;
  return r;
}

TEST(RecorderTest, WraparoundKeepsNewestWithContinuousSeqs) {
  flight::Recorder ring(/*machine=*/3, /*capacity=*/8);
  for (uint64_t i = 0; i < 20; i++) {
    ring.Append(MakeRec(100 + i, flight::EventKind::kMsgSend, 1, 0));
  }
  EXPECT_EQ(ring.appended(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<flight::DrainedRecord> got = ring.Drain();
  ASSERT_EQ(got.size(), 8u);
  for (size_t i = 0; i < got.size(); i++) {
    EXPECT_EQ(got[i].seq, 12 + i) << "seqs stay continuous across wrap";
    EXPECT_EQ(got[i].rec.time_ns, 112 + i) << "newest records survive";
    EXPECT_EQ(got[i].machine, 3u);
  }
}

TEST(RecorderTest, DrainBelowCapacityKeepsEverything) {
  flight::Recorder ring(0, 8);
  for (uint64_t i = 0; i < 5; i++) {
    ring.Append(MakeRec(i, flight::EventKind::kLockAcquire));
  }
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<flight::DrainedRecord> got = ring.Drain();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got.front().seq, 0u);
  EXPECT_EQ(got.back().seq, 4u);
}

TEST(RecorderTest, FormatParseRoundTrip) {
  std::vector<flight::DrainedRecord> cases;
  {
    flight::DrainedRecord d;
    d.rec = MakeRec(12345, flight::EventKind::kPhaseBegin,
                    static_cast<uint8_t>(flight::Phase::kCommitBackup), 7);
    d.rec.tx_config = 2;
    d.rec.tx_machine = 5;
    d.rec.tx_thread = 1;
    d.rec.tx_local = 99;
    d.rec.flags = flight::Record::kHasTx;
    d.seq = 17;
    d.machine = 5;
    cases.push_back(d);
  }
  {
    flight::DrainedRecord d;
    d.rec = MakeRec(0, flight::EventKind::kMsgSend, /*service=*/4, /*detail=*/31);
    d.seq = 0;
    d.machine = 0;
    cases.push_back(d);
  }
  {
    flight::DrainedRecord d;
    d.rec = MakeRec(987654321, flight::EventKind::kAbort,
                    static_cast<uint8_t>(flight::AbortReason::kValidateConflict));
    d.rec.tx_config = 1;
    d.rec.tx_machine = 0;
    d.rec.tx_thread = 0;
    d.rec.tx_local = 3;
    d.rec.flags = flight::Record::kHasTx;
    d.seq = 8191;
    d.machine = 31;
    cases.push_back(d);
  }
  {
    flight::DrainedRecord d;
    d.rec = MakeRec(42, flight::EventKind::kRecoveryStep,
                    static_cast<uint8_t>(flight::RecoveryStep::kDecideCommit), 6);
    d.seq = 3;
    d.machine = 2;
    cases.push_back(d);
  }
  for (const flight::DrainedRecord& d : cases) {
    std::string line = flight::FormatRecord(d);
    flight::DrainedRecord back;
    ASSERT_TRUE(flight::ParseRecordLine(line, &back)) << line;
    EXPECT_EQ(back.rec.time_ns, d.rec.time_ns);
    EXPECT_EQ(back.rec.kind, d.rec.kind);
    EXPECT_EQ(back.rec.arg, d.rec.arg);
    EXPECT_EQ(back.rec.detail, d.rec.detail);
    EXPECT_EQ(back.rec.tx_config, d.rec.tx_config);
    EXPECT_EQ(back.rec.tx_machine, d.rec.tx_machine);
    EXPECT_EQ(back.rec.tx_thread, d.rec.tx_thread);
    EXPECT_EQ(back.rec.tx_local, d.rec.tx_local);
    EXPECT_EQ(back.rec.flags & flight::Record::kHasTx,
              d.rec.flags & flight::Record::kHasTx);
    EXPECT_EQ(back.seq, d.seq);
    EXPECT_EQ(back.machine, d.machine);
    EXPECT_EQ(flight::FormatRecord(back), line) << "format is a fixed point";
  }
}

TEST(RecorderTest, ParseRejectsNonRecordLines) {
  flight::DrainedRecord out;
  EXPECT_FALSE(flight::ParseRecordLine("", &out));
  EXPECT_FALSE(flight::ParseRecordLine("farm-flight-postmortem v1", &out));
  EXPECT_FALSE(flight::ParseRecordLine("rings=3", &out));
  EXPECT_FALSE(flight::ParseRecordLine("ring m=0 appended=12 dropped=0", &out));
  EXPECT_FALSE(flight::ParseRecordLine("complete garbage", &out));
}

TEST(RecorderTest, PostmortemMergesByTimeMachineSeq) {
  flight::Recorder a(0, 16);
  flight::Recorder b(1, 16);
  // Interleave times so the merge has real work; include an exact tie at
  // t=50 (machine breaks it) and same-machine ties (seq breaks them).
  a.Append(MakeRec(50, flight::EventKind::kLockAcquire));
  a.Append(MakeRec(10, flight::EventKind::kMsgSend, 2, 1));
  a.Append(MakeRec(70, flight::EventKind::kMsgRecv, 2, 1));
  b.Append(MakeRec(50, flight::EventKind::kLockReject, 0, 9));
  b.Append(MakeRec(50, flight::EventKind::kValidateFail, 0, 9));
  b.Append(MakeRec(5, flight::EventKind::kReconfig, 0, 2));
  std::string pm = flight::BuildPostmortem({&a, &b});
  EXPECT_NE(pm.find("farm-flight-postmortem v1"), std::string::npos);
  EXPECT_NE(pm.find("rings=2"), std::string::npos);
  EXPECT_NE(pm.find("records=6"), std::string::npos);

  std::vector<flight::DrainedRecord> recs;
  std::istringstream in(pm);
  std::string line;
  while (std::getline(in, line)) {
    flight::DrainedRecord d;
    if (flight::ParseRecordLine(line, &d)) {
      recs.push_back(d);
    }
  }
  ASSERT_EQ(recs.size(), 6u);
  for (size_t i = 1; i < recs.size(); i++) {
    auto key = [](const flight::DrainedRecord& d) {
      return std::make_tuple(d.rec.time_ns, d.machine, d.seq);
    };
    EXPECT_LE(key(recs[i - 1]), key(recs[i])) << "merge order at record " << i;
  }
}

// ---------------------------------------------------------------------------
// Chaos postmortems (the acceptance scenario: mutate seed 9)
// ---------------------------------------------------------------------------

TEST(ChaosPostmortemTest, BrokenProtocolRunYieldsDeterministicPostmortem) {
  chaos::ChaosRunOptions opts;
  opts.seed = 9;
  opts.mutate_skip_backup_ack = true;
  chaos::ChaosRunResult first = chaos::RunChaos(opts);
  ASSERT_FALSE(first.ok) << "mutated protocol must violate the oracle";
  ASSERT_FALSE(first.postmortem.empty());

  // Same seed, same failure, byte-identical postmortem.
  chaos::ChaosRunResult second = chaos::RunChaos(opts);
  EXPECT_EQ(first.failure, second.failure);
  EXPECT_EQ(first.postmortem, second.postmortem);

  // The postmortem must let txdump reconstruct a commit across machines:
  // some transaction's records (coordinator phases + participant
  // commit-backup/commit-primary records) span at least 3 machines, and the
  // timeline shows COMMIT-BACKUP activity.
  std::map<std::string, std::set<uint32_t>> tx_machines;
  std::map<std::string, bool> tx_commit_backup;
  std::istringstream in(first.postmortem);
  std::string line;
  size_t records = 0;
  while (std::getline(in, line)) {
    flight::DrainedRecord d;
    if (!flight::ParseRecordLine(line, &d)) {
      continue;
    }
    records++;
    if ((d.rec.flags & flight::Record::kHasTx) == 0) {
      continue;
    }
    std::ostringstream id;
    id << d.rec.tx_config << "," << d.rec.tx_machine << "," << d.rec.tx_thread << ","
       << d.rec.tx_local;
    tx_machines[id.str()].insert(d.machine);
    flight::EventKind k = static_cast<flight::EventKind>(d.rec.kind);
    if (k == flight::EventKind::kCommitBackupRecord ||
        (k == flight::EventKind::kPhaseEnd &&
         d.rec.arg == static_cast<uint8_t>(flight::Phase::kCommitBackup))) {
      tx_commit_backup[id.str()] = true;
    }
  }
  EXPECT_GT(records, 0u);
  bool spans_three = false;
  for (const auto& [id, machines] : tx_machines) {
    if (machines.size() >= 3 && tx_commit_backup.count(id) != 0) {
      spans_three = true;
      break;
    }
  }
  EXPECT_TRUE(spans_three)
      << "expected a transaction with COMMIT-BACKUP records spanning >= 3 machines";
}

TEST(ChaosPostmortemTest, CleanRunHasNoPostmortem) {
  chaos::ChaosRunOptions opts;
  opts.seed = 9;
  chaos::ChaosRunResult res = chaos::RunChaos(opts);
  ASSERT_TRUE(res.ok) << res.failure;
  EXPECT_TRUE(res.postmortem.empty());
}

// ---------------------------------------------------------------------------
// Abort-reason taxonomy
// ---------------------------------------------------------------------------

TEST(AbortReasonTest, CountersSumToAbortTotalsUnderContention) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, /*seed=*/21));
  TatpOptions topts;
  topts.subscribers = 100;  // tiny key space: heavy lock/validate conflicts
  auto db = RunTask(
      *cluster,
      [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
        co_return co_await TatpDb::Create(*c, o);
      }(cluster.get(), topts),
      60 * kSecond);
  ASSERT_TRUE(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 8;
  dopts.warmup = 5 * kMillisecond;
  dopts.measure = 40 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster, db->value().MakeWorkload(), dopts);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.aborted, 0u) << "100 subscribers at 64-way concurrency must conflict";

  uint64_t by_reason = 0;
  for (int i = 1; i <= flight::kNumCountedAbortReasons; i++) {
    by_reason += cluster->metrics_registry()
                     .GetCounter("tx_abort_reason",
                                 {{"reason", flight::AbortReasonName(
                                                 static_cast<flight::AbortReason>(i))}})
                     .value();
  }
  NodeStats total = cluster->TotalStats();
  uint64_t aborts = total.tx_aborted_lock.value() + total.tx_aborted_validate.value() +
                    total.tx_recovered_abort.value();
  EXPECT_EQ(by_reason, aborts)
      << "every counted abort carries exactly one reason";
  EXPECT_GT(by_reason, 0u);
}

// ---------------------------------------------------------------------------
// Tx-tagged logging
// ---------------------------------------------------------------------------

TEST(LogTxScopeTest, TagsNestAndRestore) {
  EXPECT_EQ(LogTxScope::CurrentTag(), "");
  {
    LogTxScope outer(1, 2, 0, 77);
    EXPECT_EQ(LogTxScope::CurrentTag(), "tx<1,2,0,77>");
    {
      LogTxScope inner(1, 3, 1, 78);
      EXPECT_EQ(LogTxScope::CurrentTag(), "tx<1,3,1,78>");
    }
    EXPECT_EQ(LogTxScope::CurrentTag(), "tx<1,2,0,77>");
  }
  EXPECT_EQ(LogTxScope::CurrentTag(), "");
}

}  // namespace
}  // namespace farm
