// Shared test helpers for cluster-level tests.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>
#include <optional>

#include "src/core/cluster.h"

namespace farm {

// Runs a coroutine to completion against the cluster's simulator. Lease
// timers keep the event queue non-empty forever, so we step with a simulated
// deadline instead of draining the queue. Returns nullopt on timeout.
template <typename T>
std::optional<T> RunTask(Cluster& cluster, Task<T> task, SimDuration timeout = 2 * kSecond) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrapper = [](Task<T> inner, std::shared_ptr<std::optional<T>> out) -> Task<void> {
    out->emplace(co_await std::move(inner));
  };
  Spawn(wrapper(std::move(task), result));
  SimTime deadline = cluster.sim().Now() + timeout;
  while (!result->has_value() && cluster.sim().Now() < deadline) {
    if (!cluster.sim().Step()) {
      break;
    }
  }
  return *result;
}

// Steps the simulator until pred() holds or the timeout elapses.
template <typename Pred>
bool RunUntil(Cluster& cluster, Pred pred, SimDuration timeout) {
  SimTime deadline = cluster.sim().Now() + timeout;
  while (!pred() && cluster.sim().Now() < deadline) {
    if (!cluster.sim().Step()) {
      break;
    }
  }
  return pred();
}

inline ClusterOptions SmallClusterOptions(int machines = 4, uint64_t seed = 1) {
  ClusterOptions opts;
  opts.machines = machines;
  opts.zk_replicas = 3;
  opts.seed = seed;
  opts.node.worker_threads = 2;
  opts.node.region_size = 256 << 10;
  opts.node.block_size = 16 << 10;
  opts.node.replication_factor = 3;
  opts.node.lease.duration = 10 * kMillisecond;
  return opts;
}

// Creates a cluster, starts it, and lets bootstrap traffic settle.
inline std::unique_ptr<Cluster> MakeStartedCluster(ClusterOptions opts) {
  auto cluster = std::make_unique<Cluster>(opts);
  cluster->Start();
  cluster->RunFor(5 * kMillisecond);
  return cluster;
}

// Creates a region from the given node and returns its id.
inline RegionId MustCreateRegion(Cluster& cluster, uint32_t size, uint32_t stride,
                                 RegionId colocate = kInvalidRegion, MachineId from = 0) {
  auto create = [](Cluster* c, uint32_t sz, uint32_t st, RegionId co,
                   MachineId node) -> Task<StatusOr<RegionId>> {
    co_return co_await c->node(node).CreateRegion(sz, st, co, 0);
  };
  auto r = RunTask(cluster, create(&cluster, size, stride, colocate, from));
  FARM_CHECK(r.has_value() && r->ok()) << "region creation failed: "
                                       << (r.has_value() ? r->status().ToString() : "timeout");
  return r->value();
}

}  // namespace farm

#endif  // TESTS_TEST_UTIL_H_
