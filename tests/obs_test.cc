// Tests for the observability subsystem (src/obs): metrics registry
// semantics and trace determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace farm {
namespace {

TEST(CellKeyTest, SortsLabelsAndFormats) {
  EXPECT_EQ(metrics::CellKey("tx_committed", {}), "tx_committed");
  EXPECT_EQ(metrics::CellKey("tx_committed", {{"node", "m3"}}),
            "tx_committed{node=\"m3\"}");
  // Label order does not matter: keys are sorted.
  EXPECT_EQ(metrics::CellKey("x", {{"b", "2"}, {"a", "1"}}),
            metrics::CellKey("x", {{"a", "1"}, {"b", "2"}}));
  EXPECT_EQ(metrics::CellKey("x", {{"b", "2"}, {"a", "1"}}), "x{a=\"1\",b=\"2\"}");
}

TEST(RegistryTest, LookupSharesCellAcrossLabelOrder) {
  metrics::Registry reg;
  metrics::Counter a = reg.GetCounter("ops", {{"node", "m0"}, {"kind", "read"}});
  metrics::Counter b = reg.GetCounter("ops", {{"kind", "read"}, {"node", "m0"}});
  a.Inc(5);
  EXPECT_EQ(b.value(), 5u);  // same cell, despite different label order
  EXPECT_EQ(reg.CellCount(), 1u);

  metrics::Counter c = reg.GetCounter("ops", {{"kind", "write"}, {"node", "m0"}});
  c.Inc();
  EXPECT_EQ(a.value(), 5u);  // different label set, different cell
  EXPECT_EQ(reg.CellCount(), 2u);
}

TEST(RegistryTest, CounterCopySnapshotsMoveBinds) {
  metrics::Registry reg;
  metrics::Counter bound = reg.GetCounter("n");  // lookup returns by value: move-bound
  bound.Inc(3);
  EXPECT_EQ(reg.GetCounter("n").value(), 3u);

  // Copying snapshots the value into a detached cell.
  metrics::Counter snap = bound;
  bound.Inc(4);
  EXPECT_EQ(snap.value(), 3u);
  EXPECT_EQ(bound.value(), 7u);
  snap.Inc();  // mutating the snapshot does not touch the registry
  EXPECT_EQ(reg.GetCounter("n").value(), 7u);

  // Reset zeroes in place, keeping the binding.
  bound.Reset();
  EXPECT_EQ(reg.GetCounter("n").value(), 0u);
  bound.Inc();
  EXPECT_EQ(reg.GetCounter("n").value(), 1u);
}

TEST(RegistryTest, CounterOperators) {
  metrics::Registry reg;
  metrics::Counter c = reg.GetCounter("c");
  ++c;
  c++;
  c += 10;
  uint64_t v = c;  // implicit conversion, as the migrated stats structs use
  EXPECT_EQ(v, 12u);
}

TEST(RegistryTest, GaugeAndHistogram) {
  metrics::Registry reg;
  metrics::Gauge g = reg.GetGauge("depth");
  g.Set(5);
  g.Add(-8);
  EXPECT_EQ(g.value(), -3);

  metrics::HistogramMetric h = reg.GetHistogram("latency");
  h.Record(100);
  h.Record(200);
  EXPECT_EQ(reg.GetHistogram("latency").histogram().count(), 2u);
  EXPECT_EQ(reg.CellCount(), 2u);
}

TEST(RegistryTest, SnapshotDiff) {
  metrics::Registry reg;
  metrics::Counter c = reg.GetCounter("tx", {{"node", "m0"}});
  metrics::Gauge g = reg.GetGauge("backlog");
  c.Inc(10);
  g.Set(4);

  metrics::Snapshot before = reg.TakeSnapshot();
  c.Inc(7);
  g.Set(1);
  metrics::Counter fresh = reg.GetCounter("aborts");  // created after `before`
  fresh.Inc(2);
  metrics::Snapshot after = reg.TakeSnapshot();

  metrics::Snapshot d = metrics::Snapshot::Diff(after, before);
  EXPECT_EQ(d.counters.at("tx{node=\"m0\"}"), 7u);
  EXPECT_EQ(d.counters.at("aborts"), 2u);  // absent from `before`: counts from 0
  EXPECT_EQ(d.gauges.at("backlog"), -3);   // gauges diff signed
}

TEST(RegistryTest, ResetKeepsRegistrations) {
  metrics::Registry reg;
  metrics::Counter c = reg.GetCounter("c");
  c.Inc(9);
  reg.Reset();
  EXPECT_EQ(reg.CellCount(), 1u);
  EXPECT_EQ(c.value(), 0u);  // the handle stays bound to the zeroed cell
  c.Inc();
  EXPECT_EQ(reg.GetCounter("c").value(), 1u);
}

TEST(RegistryTest, DumpsContainCells) {
  metrics::Registry reg;
  reg.GetCounter("hits", {{"node", "m1"}}).Inc(3);
  std::string text = reg.ToText();
  EXPECT_NE(text.find("hits{node=\"m1\"} 3"), std::string::npos);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"hits{node=\\\"m1\\\"}\":3"), std::string::npos);
}

TEST(RegistryTest, EmptyHistogramDumpsZeroMin) {
  // A registered-but-never-recorded histogram must dump min 0, not the
  // UINT64_MAX sentinel the live cell uses internally. Bench JSON consumers
  // read these dumps and a sentinel min wrecks axis autoscaling.
  metrics::Registry reg;
  reg.GetHistogram("latency_empty");
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"latency_empty\":{\"count\":0,\"min\":0,\"max\":0,\"p50\":0,\"p99\":0}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("18446744073709551615"), std::string::npos) << json;
  // And recording afterwards reports the true minimum.
  reg.GetHistogram("latency_empty").Record(9);
  std::string json2 = reg.ToJson();
  EXPECT_NE(json2.find("\"latency_empty\":{\"count\":1,\"min\":9"), std::string::npos) << json2;
}

TEST(TraceTest, MacroIsNullSafeWithoutGlobalTracer) {
  ASSERT_EQ(trace::Global(), nullptr);
  EXPECT_FALSE(FARM_TRACE_ACTIVE());
  FARM_TRACE(Instant(0, 0, "tx", "noop"));  // no tracer installed: no-op
  { trace::SpanGuard guard(0, 0, "tx", "noop", "id"); }
}

// Runs a fixed workload on a seeded cluster with a tracer installed and
// returns the serialized trace.
std::string TracedRunJson(uint64_t seed) {
  trace::Tracer tracer;
  trace::SetGlobal(&tracer);
  {
    auto cluster = MakeStartedCluster(SmallClusterOptions(4, seed));
    RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
    auto work = [](Cluster* c, RegionId r) -> Task<int> {
      int committed = 0;
      for (int i = 0; i < 8; i++) {
        auto tx = c->node(i % 4).Begin(0);
        GlobalAddr addr{r, static_cast<uint32_t>((i % 4) * 16)};
        auto rd = co_await tx->Read(addr, 8);
        if (!rd.ok()) {
          continue;
        }
        std::vector<uint8_t> bytes(8, static_cast<uint8_t>(i + 1));
        (void)tx->Write(addr, bytes);
        Status s = co_await tx->Commit();
        if (s.ok()) {
          committed++;
        }
      }
      co_return committed;
    };
    auto committed = RunTask(*cluster, work(cluster.get(), rid));
    EXPECT_TRUE(committed.has_value());
    EXPECT_GT(*committed, 0);
  }
  trace::SetGlobal(nullptr);
  return tracer.ToJson();
}

TEST(TraceTest, RecordsTxPhasesOnMachineTracks) {
  std::string json = TracedRunJson(1);
  // Track metadata names the simulated machines and threads.
  EXPECT_NE(json.find("\"machine 0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"lease\""), std::string::npos);
  // Transaction lifecycle spans are present.
  for (const char* name : {"\"commit\"", "\"lock\"", "\"validate\"",
                           "\"commit-backup\"", "\"commit-primary\"", "\"read\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span " << name;
  }
  // Nestable async begin/end pairs balance.
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"b\"", pos)) != std::string::npos; pos++) {
    begins++;
  }
  for (size_t pos = 0; (pos = json.find("\"ph\":\"e\"", pos)) != std::string::npos; pos++) {
    ends++;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

TEST(TraceTest, ByteIdenticalAcrossSameSeedRuns) {
  std::string first = TracedRunJson(7);
  std::string second = TracedRunJson(7);
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, second);
}

// Determinism gate for the event-queue and fabric hot paths at bench scale:
// a 32-machine cluster run twice from the same seed must serialize the
// byte-identical trace AND the byte-identical flight-recorder postmortem
// (the recorder is always on, so this also proves it observes without
// perturbing the schedule). This is what licenses the 4-ary heap's layout
// freedom and the pooled fabric records -- (time, seq) is a total order, so
// none of it may be observable.
struct Run32Output {
  std::string trace_json;
  std::string postmortem;
};

Run32Output TracedRun32(uint64_t seed) {
  Run32Output out;
  trace::Tracer tracer;
  trace::SetGlobal(&tracer);
  {
    auto cluster = MakeStartedCluster(SmallClusterOptions(32, seed));
    RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
    auto work = [](Cluster* c, RegionId r) -> Task<int> {
      int committed = 0;
      for (int i = 0; i < 48; i++) {
        auto tx = c->node(i % 32).Begin(0);
        GlobalAddr addr{r, static_cast<uint32_t>((i % 16) * 16)};
        auto rd = co_await tx->Read(addr, 8);
        if (!rd.ok()) {
          continue;
        }
        std::vector<uint8_t> bytes(8, static_cast<uint8_t>(i + 1));
        (void)tx->Write(addr, bytes);
        Status s = co_await tx->Commit();
        if (s.ok()) {
          committed++;
        }
      }
      co_return committed;
    };
    auto committed = RunTask(*cluster, work(cluster.get(), rid));
    EXPECT_TRUE(committed.has_value());
    EXPECT_GT(*committed, 0);
    out.postmortem = cluster->FlightPostmortem();
  }
  trace::SetGlobal(nullptr);
  out.trace_json = tracer.ToJson();
  return out;
}

TEST(TraceTest, ByteIdenticalAt32Machines) {
  Run32Output first = TracedRun32(11);
  Run32Output second = TracedRun32(11);
  EXPECT_GT(first.trace_json.size(), 0u);
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_GT(first.postmortem.size(), 0u);
  EXPECT_EQ(first.postmortem, second.postmortem);
}

}  // namespace
}  // namespace farm
