// Tests for the systematic fault-point explorer: coverage of the depth-1
// sweep, the mutation regression gate (a deliberately broken protocol must
// be caught and shrunk to a minimal byte-identical reproducer), trigger
// serialization, injection determinism, and targeted recovery regressions.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/chaos/explore.h"
#include "src/chaos/harness.h"
#include "src/chaos/plan.h"
#include "src/obs/metrics.h"

namespace farm {
namespace chaos {
namespace {

// Explorer options sized for test runtime: the full point set but a short
// horizon. CI runs the full-horizon sweep via chaos_repro --explore.
ExploreOptions TestOptions() {
  ExploreOptions eo;
  eo.machines = 5;
  eo.seed = 1;
  eo.horizon = 250 * kMillisecond;
  return eo;
}

TEST(ExploreTest, Depth1ExercisesEveryDiscoveredPoint) {
  ExploreOptions eo = TestOptions();
  metrics::Registry reg;
  eo.metrics = &reg;
  ExploreResult res = Explore(eo);

  EXPECT_TRUE(res.ok()) << res.Report();
  EXPECT_FALSE(res.discovered.empty());
  // 100% coverage: every point the baseline discovered had a fault injected
  // at it, and every such schedule passed the oracle + watchdog.
  for (const auto& [point, hits] : res.discovered) {
    (void)hits;
    EXPECT_EQ(res.exercised.count(point), 1u) << "not exercised: " << point;
    EXPECT_EQ(res.survived.count(point), 1u) << "did not survive: " << point;
  }
  EXPECT_EQ(reg.GetCounter("explore_points", {{"state", "discovered"}}).value(),
            res.discovered.size());
  EXPECT_EQ(reg.GetCounter("explore_points", {{"state", "exercised"}}).value(),
            res.exercised.size());
  EXPECT_EQ(reg.GetCounter("explore_points", {{"state", "survived"}}).value(),
            res.survived.size());
  EXPECT_EQ(reg.GetCounter("explore_runs", {{"outcome", "pass"}}).value(), res.runs);
  EXPECT_EQ(reg.GetCounter("explore_runs", {{"outcome", "fail"}}).value(), 0u);
}

TEST(ExploreTest, MutatedProtocolCaughtAndShrunk) {
  ExploreOptions eo = TestOptions();
  eo.mutate_skip_backup_ack = true;
  ExploreResult res = Explore(eo);

  ASSERT_FALSE(res.ok()) << "the sweep must catch chaos_skip_backup_ack";
  ASSERT_FALSE(res.failing.empty());
  const ExploreFailure& f = res.failing.front();
  EXPECT_EQ(f.failure_class, FailureClass::kOracle) << f.failure;
  // Minimal reproducer: at most two faults, and the shrunk schedule re-ran
  // with a byte-identical failure, event log, and postmortem.
  EXPECT_LE(f.shrunk.triggers.size() + f.shrunk.events.size(), 2u);
  EXPECT_TRUE(f.replay_identical);
}

TEST(ExploreTest, TriggerPlanRoundTrips) {
  ChaosPlan plan;
  plan.seed = 42;
  plan.options.machines = 5;
  plan.triggers.push_back(FaultTrigger{"commit-backup", 3, FaultAction::kKill, -1, 0});
  plan.triggers.push_back(
      FaultTrigger{"lock-recovery-begin", 1, FaultAction::kPartition, 2, 5000000});
  plan.triggers.push_back(FaultTrigger{"msg-send", 7, FaultAction::kDropMsg, -1, 0});

  std::string text = plan.ToText();
  ChaosPlan parsed;
  ASSERT_TRUE(ChaosPlan::Parse(text, &parsed));
  ASSERT_EQ(parsed.triggers.size(), 3u);
  EXPECT_EQ(parsed.triggers[0].point, "commit-backup");
  EXPECT_EQ(parsed.triggers[0].hit, 3u);
  EXPECT_EQ(parsed.triggers[0].action, FaultAction::kKill);
  EXPECT_EQ(parsed.triggers[1].machine, 2);
  EXPECT_EQ(parsed.triggers[1].param, 5000000u);
  EXPECT_EQ(parsed.triggers[2].action, FaultAction::kDropMsg);
  // Text form is a fixed point.
  EXPECT_EQ(parsed.ToText(), text);
}

TEST(ExploreTest, InjectionIsDeterministic) {
  ChaosPlan plan;
  plan.seed = 1;
  plan.options.machines = 5;
  plan.options.horizon = 250 * kMillisecond;
  plan.triggers.push_back(FaultTrigger{"commit-backup", 1, FaultAction::kKill, -1, 0});
  plan.triggers.push_back(
      FaultTrigger{"lock-recovery-begin", 1, FaultAction::kKill, -1, 0});

  ChaosRunOptions opts;
  opts.machines = plan.options.machines;
  opts.seed = plan.seed;
  ChaosRunResult a = RunChaosPlan(opts, plan);
  ChaosRunResult b = RunChaosPlan(opts, plan);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.triggers_fired, b.triggers_fired);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.final_members, b.final_members);
}

// Regression (recovery §5.3): the CM dies mid-reconfiguration. One kill
// forces a reconfiguration; the second kills the new CM right at the
// ZooKeeper CAS commit, before NEW-CONFIG reaches anyone. The survivors
// must discover the committed configuration and reconfigure on top of it
// rather than wedging on a lost CAS.
TEST(ExploreTest, CmDiesMidReconfiguration) {
  ChaosPlan plan;
  plan.seed = 1;
  plan.options.machines = 5;
  plan.options.horizon = 400 * kMillisecond;
  plan.triggers.push_back(FaultTrigger{"commit-backup", 1, FaultAction::kKill, -1, 0});
  plan.triggers.push_back(
      FaultTrigger{"reconfig-commit", 1, FaultAction::kKill, -1, 0});

  ChaosRunOptions opts;
  opts.machines = plan.options.machines;
  opts.seed = plan.seed;
  ChaosRunResult r = RunChaosPlan(opts, plan);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.triggers_fired, 2u);
  EXPECT_GT(r.commits, 0u);
  // Both killed machines are out; the surviving majority runs on.
  EXPECT_EQ(r.final_members.size(), 3u);
}

// Regression (recovery §5.3): a backup is promoted to primary by the first
// reconfiguration, then dies before lock recovery completes. The next
// recovery round must re-derive the same outcomes from the replicated lock
// records and decision memory -- no phantom writes, no outcome flips.
TEST(ExploreTest, PromotedPrimaryDiesBeforeLockRecovery) {
  ChaosPlan plan;
  plan.seed = 1;
  plan.options.machines = 5;
  plan.options.horizon = 400 * kMillisecond;
  plan.triggers.push_back(FaultTrigger{"commit-backup", 1, FaultAction::kKill, -1, 0});
  plan.triggers.push_back(
      FaultTrigger{"lock-recovery-begin", 1, FaultAction::kKill, -1, 0});
  // Rejoin check: restart one killed machine empty late in the run; it must
  // be readmitted to the configuration.
  plan.events.push_back(
      ChaosEvent{250 * kMillisecond, EventKind::kRestartEmpty, 0, 0});

  ChaosRunOptions opts;
  opts.machines = plan.options.machines;
  opts.seed = plan.seed;
  ChaosRunResult r = RunChaosPlan(opts, plan);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.triggers_fired, 2u);
  EXPECT_GT(r.commits, 0u);
  // Two machines died, one rejoined: 4 members in the final configuration.
  EXPECT_EQ(r.final_members.size(), 4u);
}

// The original coordinator dies at the instant it decides commit for a
// recovering transaction. The outcome must not be exposed until the
// decision is durable at every participant, so a later round can never
// contradict what the application saw.
TEST(ExploreTest, CoordinatorDiesAtRecoveryDecision) {
  ChaosPlan plan;
  plan.seed = 1;
  plan.options.machines = 5;
  plan.options.horizon = 400 * kMillisecond;
  plan.triggers.push_back(FaultTrigger{"commit-backup", 1, FaultAction::kKill, -1, 0});
  plan.triggers.push_back(
      FaultTrigger{"recovery:decide-commit", 1, FaultAction::kKill, -1, 0});

  ChaosRunOptions opts;
  opts.machines = plan.options.machines;
  opts.seed = plan.seed;
  ChaosRunResult r = RunChaosPlan(opts, plan);
  EXPECT_TRUE(r.ok) << r.failure;
}

}  // namespace
}  // namespace chaos
}  // namespace farm
