// Tests for the simulated RDMA fabric and NVRAM store.
#include <gtest/gtest.h>

#include <cstring>

#include "src/net/fabric.h"
#include "src/nvram/energy_model.h"
#include "src/nvram/nvram.h"

namespace farm {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  static constexpr int kMachines = 4;

  FabricTest() : fabric_(sim_, CostModel{}) {
    for (int i = 0; i < kMachines; i++) {
      machines_.push_back(std::make_unique<Machine>(sim_, static_cast<MachineId>(i), 4, i));
      stores_.push_back(std::make_unique<NvramStore>());
      fabric_.AddMachine(machines_.back().get(), stores_.back().get());
    }
  }

  Simulator sim_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<NvramStore>> stores_;
};

TEST_F(FabricTest, WriteThenReadRemote) {
  uint64_t addr = stores_[1]->Allocate(64);
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  bool done = false;

  auto coro = [&]() -> Task<void> {
    NetResult w = co_await fabric_.Write(0, 1, addr, payload);
    EXPECT_TRUE(w.status.ok());
    NetResult r = co_await fabric_.Read(0, 1, addr, 5);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, payload);
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(FabricTest, ReadHasNetworkLatency) {
  uint64_t addr = stores_[1]->Allocate(64);
  SimTime completed = 0;
  auto coro = [&]() -> Task<void> {
    (void)co_await fabric_.Read(0, 1, addr, 8);
    completed = sim_.Now();
  };
  Spawn(coro());
  sim_.Run();
  // At least two wire latencies plus NIC occupancy.
  EXPECT_GE(completed, 2 * fabric_.cost().wire_latency);
  EXPECT_LT(completed, 100 * kMicrosecond);
}

TEST_F(FabricTest, OneSidedOpsChargeNoRemoteCpu) {
  uint64_t addr = stores_[1]->Allocate(4096);
  auto coro = [&]() -> Task<void> {
    for (int i = 0; i < 100; i++) {
      NetResult r = co_await fabric_.Read(0, 1, addr, 256, &machines_[0]->thread(0));
      EXPECT_TRUE(r.status.ok());
    }
  };
  Spawn(coro());
  sim_.Run();
  // Initiator burned CPU; target burned none.
  EXPECT_GT(machines_[0]->thread(0).total_busy(), 0u);
  for (int t = 0; t < 4; t++) {
    EXPECT_EQ(machines_[1]->thread(t).total_busy(), 0u);
  }
}

TEST_F(FabricTest, CasAtomicSemantics) {
  uint64_t addr = stores_[1]->Allocate(64);
  uint64_t* word = reinterpret_cast<uint64_t*>(stores_[1]->Data(addr, 8));
  *word = 100;

  auto coro = [&]() -> Task<void> {
    NetResult r1 = co_await fabric_.Cas(0, 1, addr, 100, 200);
    EXPECT_TRUE(r1.status.ok());
    uint64_t observed;
    std::memcpy(&observed, r1.data.data(), 8);
    EXPECT_EQ(observed, 100u);  // swap happened

    NetResult r2 = co_await fabric_.Cas(0, 1, addr, 100, 300);
    std::memcpy(&observed, r2.data.data(), 8);
    EXPECT_EQ(observed, 200u);  // mismatch: no swap
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_EQ(*word, 200u);
}

TEST_F(FabricTest, ReadUnregisteredAddressFaults) {
  auto coro = [&]() -> Task<void> {
    NetResult r = co_await fabric_.Read(0, 1, 0xdead0000, 8);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  };
  Spawn(coro());
  sim_.Run();
}

TEST_F(FabricTest, OpsToDeadMachineTimeOut) {
  uint64_t addr = stores_[1]->Allocate(64);
  machines_[1]->Kill();
  Status status = OkStatus();
  auto coro = [&]() -> Task<void> {
    NetResult r = co_await fabric_.Read(0, 1, addr, 8);
    status = r.status;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_GE(sim_.Now(), fabric_.cost().rc_op_timeout);
}

TEST_F(FabricTest, PartitionBlocksTraffic) {
  uint64_t addr = stores_[1]->Allocate(64);
  fabric_.SetPartition({{0, 2}, {1, 3}});
  Status status = OkStatus();
  auto coro = [&]() -> Task<void> {
    NetResult r = co_await fabric_.Read(0, 1, addr, 8);
    status = r.status;
    // Same-side traffic still flows.
    uint64_t addr2 = stores_[2]->Allocate(64);
    NetResult r2 = co_await fabric_.Read(0, 2, addr2, 8);
    EXPECT_TRUE(r2.status.ok());
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);

  fabric_.ClearPartition();
  EXPECT_TRUE(fabric_.Reachable(0, 1));
}

TEST_F(FabricTest, RpcRoundTrip) {
  fabric_.RegisterRpcService(1, 7, 0, 3,
                             [](MachineId from, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
                               EXPECT_EQ(from, 0u);
                               req.push_back(0xee);
                               reply(std::move(req));
                             });
  bool done = false;
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> req = {1, 2, 3};
    NetResult r = co_await fabric_.Call(0, 1, 7, req);
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, (std::vector<uint8_t>{1, 2, 3, 0xee}));
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(FabricTest, RpcChargesRemoteCpu) {
  fabric_.RegisterRpcService(1, 7, 0, 0,
                             [](MachineId, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
                               reply(std::move(req));
                             });
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> req = {1};
    for (int i = 0; i < 10; i++) {
      (void)co_await fabric_.Call(0, 1, 7, req);
    }
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_GE(machines_[1]->thread(0).total_busy(), 10 * fabric_.cost().cpu_rpc_handler);
}

TEST_F(FabricTest, RpcToDeadMachineTimesOut) {
  machines_[1]->Kill();
  Status status = OkStatus();
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> req = {1};
    NetResult r = co_await fabric_.Call(0, 1, 7, req, nullptr, 500 * kMicrosecond);
    status = r.status;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
}

TEST_F(FabricTest, RpcUnknownServiceFails) {
  Status status = OkStatus();
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> req = {1};
    NetResult r = co_await fabric_.Call(0, 1, 99, req);
    status = r.status;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(FabricTest, DatagramDelivered) {
  std::vector<uint8_t> got;
  MachineId got_from = kInvalidMachine;
  fabric_.SetDatagramHandler(2, [&](MachineId from, std::vector<uint8_t> p) {
    got_from = from;
    got = std::move(p);
  });
  fabric_.SendDatagram(0, 2, {9, 8, 7});
  sim_.Run();
  EXPECT_EQ(got_from, 0u);
  EXPECT_EQ(got, (std::vector<uint8_t>{9, 8, 7}));
}

TEST_F(FabricTest, DatagramLossDropsSilently) {
  fabric_.set_datagram_loss(1.0);
  int delivered = 0;
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { delivered++; });
  for (int i = 0; i < 50; i++) {
    fabric_.SendDatagram(0, 2, {1});
  }
  sim_.Run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(FabricTest, LinkFaultDropKillsOneDirectedLink) {
  LinkFaults lf;
  lf.drop = 1.0;
  fabric_.SetLinkFaults(0, 2, lf);
  int to2 = 0;
  int to3 = 0;
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { to2++; });
  fabric_.SetDatagramHandler(3, [&](MachineId, std::vector<uint8_t>) { to3++; });
  for (int i = 0; i < 20; i++) {
    fabric_.SendDatagram(0, 2, {1});  // faulted link
    fabric_.SendDatagram(0, 3, {1});  // clean link
    fabric_.SendDatagram(1, 2, {1});  // clean link, same destination
  }
  sim_.Run();
  EXPECT_EQ(to2, 20);  // only the 1->2 copies
  EXPECT_EQ(to3, 20);
  EXPECT_EQ(fabric_.stats().faults_dropped, 20u);
  fabric_.ClearLinkFaults(0, 2);
  fabric_.SendDatagram(0, 2, {1});
  sim_.Run();
  EXPECT_EQ(to2, 21);  // link works again after clearing
}

TEST_F(FabricTest, LinkFaultDuplicatesAndCounts) {
  LinkFaults lf;
  lf.dup = 1.0;
  fabric_.SetLinkFaults(0, 2, lf);
  int delivered = 0;
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { delivered++; });
  for (int i = 0; i < 10; i++) {
    fabric_.SendDatagram(0, 2, {1});
  }
  sim_.Run();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(fabric_.stats().faults_duplicated, 10u);
}

TEST_F(FabricTest, LinkFaultExtraLatencyDelaysDelivery) {
  SimTime baseline = 0;
  SimTime slowed = 0;
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { baseline = sim_.Now(); });
  fabric_.SendDatagram(0, 2, {1});
  sim_.Run();

  LinkFaults lf;
  lf.extra_latency = kMillisecond;
  fabric_.SetLinkFaults(0, 2, lf);
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { slowed = sim_.Now(); });
  SimTime sent_at = sim_.Now();
  fabric_.SendDatagram(0, 2, {1});
  sim_.Run();
  EXPECT_GE(slowed - sent_at, baseline + kMillisecond);
  EXPECT_EQ(fabric_.stats().faults_delayed, 1u);
}

TEST_F(FabricTest, MachineLinkFaultsCoverBothDirections) {
  LinkFaults lf;
  lf.drop = 1.0;
  fabric_.SetMachineLinkFaults(2, lf);
  int at2 = 0;
  int at0 = 0;
  fabric_.SetDatagramHandler(2, [&](MachineId, std::vector<uint8_t>) { at2++; });
  fabric_.SetDatagramHandler(0, [&](MachineId, std::vector<uint8_t>) { at0++; });
  fabric_.SendDatagram(0, 2, {1});  // into the flaky NIC
  fabric_.SendDatagram(2, 0, {1});  // out of the flaky NIC
  fabric_.SendDatagram(1, 0, {1});  // unrelated link
  sim_.Run();
  EXPECT_EQ(at2, 0);
  EXPECT_EQ(at0, 1);
}

// Same fault seed => identical drop/dup/reorder/jitter decisions, delivery
// times and all. The chaos replay path depends on this.
TEST(FabricFaultDeterminism, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    Fabric fabric(sim, CostModel{});
    std::vector<std::unique_ptr<Machine>> machines;
    std::vector<std::unique_ptr<NvramStore>> stores;
    for (int i = 0; i < 2; i++) {
      machines.push_back(std::make_unique<Machine>(sim, static_cast<MachineId>(i), 4, i));
      stores.push_back(std::make_unique<NvramStore>());
      fabric.AddMachine(machines.back().get(), stores.back().get());
    }
    fabric.SeedFaultRng(seed);
    LinkFaults lf;
    lf.drop = 0.3;
    lf.dup = 0.2;
    lf.reorder = 0.3;
    lf.reorder_window = 200 * kMicrosecond;
    lf.jitter = 50 * kMicrosecond;
    fabric.SetLinkFaults(0, 1, lf);
    std::vector<std::pair<SimTime, uint8_t>> deliveries;
    fabric.SetDatagramHandler(1, [&](MachineId, std::vector<uint8_t> p) {
      deliveries.emplace_back(sim.Now(), p[0]);
    });
    for (int i = 0; i < 64; i++) {
      fabric.SendDatagram(0, 1, {static_cast<uint8_t>(i)});
    }
    sim.Run();
    return deliveries;
  };
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(a, b);
  auto c = run(8);
  EXPECT_NE(a, c) << "different seeds should draw a different schedule";
}

TEST_F(FabricTest, StatsCountOps) {
  uint64_t addr = stores_[1]->Allocate(64);
  auto coro = [&]() -> Task<void> {
    (void)co_await fabric_.Read(0, 1, addr, 8);
    std::vector<uint8_t> payload = {1, 2};
    (void)co_await fabric_.Write(0, 1, addr, payload);
    (void)co_await fabric_.Cas(0, 1, addr, 0, 1);
  };
  Spawn(coro());
  fabric_.SendDatagram(0, 1, {1});
  sim_.Run();
  EXPECT_EQ(fabric_.stats().rdma_reads, 1u);
  EXPECT_EQ(fabric_.stats().rdma_writes, 1u);
  EXPECT_EQ(fabric_.stats().rdma_cas, 1u);
  EXPECT_EQ(fabric_.stats().datagrams, 1u);
}

TEST_F(FabricTest, NicRateLimitsThroughput) {
  // Saturating one target with tiny reads from three initiators should take
  // at least ops * per-message occupancy of simulated time at the target.
  uint64_t addr = stores_[3]->Allocate(64);
  const int kOpsPerSrc = 200;
  int completed = 0;
  // Captureless lambda: a loop-scoped capturing lambda dies before its
  // coroutine finishes (the frame reads captures through the dead closure);
  // parameters are copied into the coroutine frame and are safe.
  auto reader = [](Fabric* fabric, MachineId src, uint64_t a, int ops,
                   int* done) -> Task<void> {
    for (int i = 0; i < ops; i++) {
      (void)co_await fabric->Read(src, 3, a, 8);
      (*done)++;
    }
  };
  for (MachineId src = 0; src < 3; src++) {
    Spawn(reader(&fabric_, src, addr, kOpsPerSrc, &completed));
  }
  sim_.Run();
  EXPECT_EQ(completed, 3 * kOpsPerSrc);
  EXPECT_GT(sim_.Now(), static_cast<SimTime>(kOpsPerSrc) * fabric_.cost().nic_msg_gap);
}

TEST(NvramTest, AllocateAndAccess) {
  NvramStore store;
  uint64_t a = store.Allocate(128);
  uint64_t b = store.Allocate(256);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  uint8_t* pa = store.Data(a, 128);
  ASSERT_NE(pa, nullptr);
  pa[0] = 42;
  EXPECT_EQ(store.Data(a, 1)[0], 42);
}

TEST(NvramTest, OutOfRangeAccessRejected) {
  NvramStore store;
  uint64_t a = store.Allocate(64);
  EXPECT_EQ(store.Data(a + 60, 8), nullptr);   // straddles the end
  EXPECT_EQ(store.Data(a + 64, 1), nullptr);   // past the end
  EXPECT_EQ(store.Data(0, 1), nullptr);        // never valid
  uint8_t buf[8];
  EXPECT_FALSE(store.RdmaRead(a + 100, 8, buf));
}

TEST(NvramTest, CasRequiresAlignment) {
  NvramStore store;
  uint64_t a = store.Allocate(64);
  uint64_t observed;
  EXPECT_TRUE(store.RdmaCas(a, 0, 1, &observed));
  EXPECT_FALSE(store.RdmaCas(a + 3, 0, 1, &observed));
}

TEST(NvramTest, ZeroInitialized) {
  NvramStore store;
  uint64_t a = store.Allocate(1024);
  const uint8_t* p = store.Data(a, 1024);
  for (int i = 0; i < 1024; i++) {
    EXPECT_EQ(p[i], 0);
  }
}

TEST(EnergyModelTest, MatchesPaperCalibration) {
  UpsEnergyModel model;
  // Paper: ~110 J/GB with one SSD, ~90 J of it CPU.
  EXPECT_NEAR(model.JoulesPerGb(1), 110.0, 5.0);
  // More SSDs shorten the save: strictly decreasing energy.
  EXPECT_GT(model.JoulesPerGb(1), model.JoulesPerGb(2));
  EXPECT_GT(model.JoulesPerGb(2), model.JoulesPerGb(3));
  EXPECT_GT(model.JoulesPerGb(3), model.JoulesPerGb(4));
  // Paper: worst-case energy cost $0.55/GB.
  EXPECT_NEAR(model.BatteryDollarsPerGb(1), 0.55, 0.05);
  // Combined cost below 15% of $12/GB DRAM.
  EXPECT_LT(model.TotalDollarsPerGb(1), 0.15 * 12.0);
}

}  // namespace
}  // namespace farm
