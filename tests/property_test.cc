// Property-based sweeps: serializability under randomized failures,
// model-checked hash table, ring stress with random record sizes, racing
// coordination-service CAS, and simulation determinism.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/ds/hashtable.h"
#include "tests/test_util.h"

namespace farm {
namespace {

std::vector<uint8_t> U64Bytes(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

uint64_t BytesU64(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  std::memcpy(&v, b.data(), std::min<size_t>(8, b.size()));
  return v;
}

// ---------------------------------------------------------------------------
// Bank invariant under randomized failure scenarios (seed-parameterized).
// ---------------------------------------------------------------------------

struct FailureScenario {
  uint64_t seed;
  int victim_kind;  // 0 = backup, 1 = primary, 2 = CM, 3 = idle machine
};

class BankInvariantSweep : public ::testing::TestWithParam<FailureScenario> {};

TEST_P(BankInvariantSweep, TotalConservedThroughFailure) {
  const FailureScenario scenario = GetParam();
  auto cluster = MakeStartedCluster(SmallClusterOptions(6, scenario.seed));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
  constexpr int kAccounts = 8;
  constexpr uint64_t kInitial = 500;

  auto write_value = [](Cluster* c, MachineId node, GlobalAddr addr,
                        uint64_t value) -> Task<Status> {
    auto tx = c->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    (void)tx->Write(addr, U64Bytes(value));
    co_return co_await tx->Commit();
  };
  for (uint32_t a = 0; a < kAccounts; a++) {
    auto s = RunTask(*cluster, write_value(cluster.get(), 0, GlobalAddr{rid, a * 16}, kInitial));
    ASSERT_TRUE(s.has_value() && s->ok());
  }

  auto finished = std::make_shared<int>(0);
  auto transfer = [](Cluster* c, RegionId r, uint64_t seed, int widx,
                     std::shared_ptr<int> fin) -> Task<void> {
    Pcg32 rng(HashCombine(seed, static_cast<uint64_t>(widx)));
    for (int i = 0; i < 40; i++) {
      MachineId node = kInvalidMachine;
      for (int probe = 0; probe < c->num_machines(); probe++) {
        MachineId cand = static_cast<MachineId>((widx + probe) % c->num_machines());
        if (c->machine(cand).alive()) {
          node = cand;
          break;
        }
      }
      uint32_t from = rng.Uniform(kAccounts);
      uint32_t to = rng.Uniform(kAccounts);
      if (from == to) {
        continue;
      }
      auto tx = c->node(node).Begin(widx % 2);
      auto vf = co_await tx->Read(GlobalAddr{r, from * 16}, 8);
      auto vt = co_await tx->Read(GlobalAddr{r, to * 16}, 8);
      if (!vf.ok() || !vt.ok()) {
        continue;
      }
      uint64_t bf = BytesU64(*vf);
      uint64_t bt = BytesU64(*vt);
      uint64_t amount = rng.Uniform(25) + 1;
      if (bf < amount) {
        continue;
      }
      (void)tx->Write(GlobalAddr{r, from * 16}, U64Bytes(bf - amount));
      (void)tx->Write(GlobalAddr{r, to * 16}, U64Bytes(bt + amount));
      (void)co_await tx->Commit();
    }
    (*fin)++;
  };
  constexpr int kWorkers = 5;
  for (int w = 0; w < kWorkers; w++) {
    Spawn(transfer(cluster.get(), rid, scenario.seed, w, finished));
  }
  cluster->RunFor(2 * kMillisecond);

  // Pick the victim by scenario kind.
  const RegionPlacement placement = *cluster->node(5).config().Placement(rid);
  MachineId victim = kInvalidMachine;
  switch (scenario.victim_kind) {
    case 0:
      victim = placement.backups[scenario.seed % placement.backups.size()];
      break;
    case 1:
      victim = placement.primary;
      break;
    case 2:
      victim = cluster->node(5).config().cm;
      break;
    default:
      for (int m = 0; m < cluster->num_machines(); m++) {
        if (!placement.Contains(static_cast<MachineId>(m))) {
          victim = static_cast<MachineId>(m);
          break;
        }
      }
  }
  ASSERT_NE(victim, kInvalidMachine);
  cluster->Kill(victim);

  ASSERT_TRUE(RunUntil(*cluster, [&]() { return *finished == kWorkers; }, 20 * kSecond));
  cluster->RunFor(300 * kMillisecond);

  MachineId reader = 0;
  while (reader == victim) {
    reader++;
  }
  auto read_value = [](Cluster* c, MachineId node, GlobalAddr addr) -> Task<StatusOr<uint64_t>> {
    auto tx = c->node(node).Begin(0);
    auto r = co_await tx->Read(addr, 8);
    if (!r.ok()) {
      co_return r.status();
    }
    Status s = co_await tx->Commit();
    if (!s.ok()) {
      co_return s;
    }
    co_return BytesU64(*r);
  };
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; a++) {
    auto v = RunTask(*cluster, read_value(cluster.get(), reader, GlobalAddr{rid, a * 16}),
                     5 * kSecond);
    ASSERT_TRUE(v.has_value() && v->ok()) << "account " << a;
    total += v->value();
  }
  EXPECT_EQ(total, kAccounts * kInitial)
      << "seed " << scenario.seed << " victim_kind " << scenario.victim_kind;
  EXPECT_FALSE(cluster->AnyRegionLost());
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, BankInvariantSweep,
    ::testing::Values(FailureScenario{101, 0}, FailureScenario{202, 0},
                      FailureScenario{303, 1}, FailureScenario{404, 1},
                      FailureScenario{505, 2}, FailureScenario{606, 3},
                      FailureScenario{707, 1}, FailureScenario{808, 2}));

// ---------------------------------------------------------------------------
// Hash table model check against std::unordered_map.
// ---------------------------------------------------------------------------

TEST(HashTableModelCheck, RandomOpsMatchModel) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 77));
  HashTable::Options o;
  o.buckets = 256;
  o.value_size = 16;
  auto created = RunTask(*cluster, [](Cluster* c, HashTable::Options opt) -> Task<StatusOr<HashTable>> {
                           co_return co_await HashTable::Create(c->node(0), opt, 0);
                         }(cluster.get(), o));
  ASSERT_TRUE(created.has_value() && created->ok());
  HashTable table = created->value();

  std::unordered_map<uint64_t, uint64_t> model;
  Pcg32 rng(55);
  auto one_op = [](Cluster* c, HashTable t, int kind, uint64_t key,
                   uint64_t val) -> Task<StatusOr<std::optional<uint64_t>>> {
    for (int attempt = 0; attempt < 8; attempt++) {
      auto tx = c->node(static_cast<MachineId>(key % 4)).Begin(0);
      if (kind == 0) {  // put
        std::vector<uint8_t> row(16, 0);
        std::memcpy(row.data(), &val, 8);
        Status s = co_await t.Put(*tx, key, std::move(row));
        if (!s.ok()) {
          co_return s;
        }
        s = co_await tx->Commit();
        if (s.ok()) {
          co_return std::optional<uint64_t>(val);
        }
        if (s.code() != StatusCode::kAborted) {
          co_return s;
        }
      } else if (kind == 1) {  // remove
        Status s = co_await t.Remove(*tx, key);
        if (s.code() == StatusCode::kNotFound) {
          co_return std::optional<uint64_t>(std::nullopt);
        }
        if (!s.ok()) {
          co_return s;
        }
        s = co_await tx->Commit();
        if (s.ok()) {
          co_return std::optional<uint64_t>(std::nullopt);
        }
        if (s.code() != StatusCode::kAborted) {
          co_return s;
        }
      } else {  // get
        auto v = co_await t.Get(*tx, key);
        if (!v.ok()) {
          co_return v.status();
        }
        Status s = co_await tx->Commit();
        if (s.ok()) {
          if (!v->has_value()) {
            co_return std::optional<uint64_t>(std::nullopt);
          }
          uint64_t got = 0;
          std::memcpy(&got, (*v)->data(), 8);
          co_return std::optional<uint64_t>(got);
        }
        if (s.code() != StatusCode::kAborted) {
          co_return s;
        }
      }
    }
    co_return AbortedStatus("persistent conflict");
  };

  for (int op = 0; op < 300; op++) {
    uint64_t key = rng.Uniform(60) + 1;
    int kind = static_cast<int>(rng.Uniform(3));
    uint64_t val = rng.Next64() | 1;
    auto r = RunTask(*cluster, one_op(cluster.get(), table, kind, key, val));
    ASSERT_TRUE(r.has_value() && r->ok()) << "op " << op;
    if (kind == 0) {
      model[key] = val;
    } else if (kind == 1) {
      model.erase(key);
    } else {
      if (model.count(key) != 0) {
        ASSERT_TRUE(r->value().has_value()) << "op " << op << " key " << key;
        EXPECT_EQ(*r->value(), model[key]);
      } else {
        EXPECT_FALSE(r->value().has_value()) << "op " << op << " key " << key;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ring stress: random record sizes across many wraps.
// ---------------------------------------------------------------------------

TEST(RingProperty, RandomSizesSurviveWraps) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  Machine m0(sim, 0, 2, 0);
  Machine m1(sim, 1, 2, 1);
  NvramStore s0;
  NvramStore s1;
  fabric.AddMachine(&m0, &s0);
  fabric.AddMachine(&m1, &s1);

  const uint32_t kCap = 1024;
  RingReceiver rx(&s1, kCap);
  uint64_t fb = s0.Allocate(8);
  RingSender tx(&fabric, 0, 1, rx.data_base(), kCap, fb, &s0, nullptr, []() {});

  Pcg32 rng(13);
  uint64_t sent_crc = 0;
  uint64_t recv_crc = 0;
  int received = 0;
  for (int i = 0; i < 500; i++) {
    uint32_t len = rng.Uniform(120) + 1;
    std::vector<uint8_t> payload(len);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    sent_crc = HashCombine(sent_crc, Fnv1a(payload.data(), payload.size()));
    ASSERT_TRUE(tx.Reserve(len)) << "iteration " << i;
    (void)tx.Append(payload, len, nullptr);
    sim.Run();
    rx.Drain([&](uint64_t seq, std::vector<uint8_t> p) {
      recv_crc = HashCombine(recv_crc, Fnv1a(p.data(), p.size()));
      received++;
      rx.MarkFreeable(seq);
    });
    uint64_t head = rx.head();
    std::memcpy(s0.Data(fb, 8), &head, 8);
  }
  EXPECT_EQ(received, 500);
  EXPECT_EQ(sent_crc, recv_crc);
}

// Same stress through the batched path: random record counts per batch,
// random sizes, across many wraps. The receiver must not be able to tell
// batches from sequential appends.
TEST(RingProperty, RandomBatchesSurviveWraps) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  Machine m0(sim, 0, 2, 0);
  Machine m1(sim, 1, 2, 1);
  NvramStore s0;
  NvramStore s1;
  fabric.AddMachine(&m0, &s0);
  fabric.AddMachine(&m1, &s1);

  const uint32_t kCap = 2048;
  RingReceiver rx(&s1, kCap);
  uint64_t fb = s0.Allocate(8);
  RingSender tx(&fabric, 0, 1, rx.data_base(), kCap, fb, &s0, nullptr, []() {});

  Pcg32 rng(29);
  uint64_t sent_crc = 0;
  uint64_t recv_crc = 0;
  int sent = 0;
  int received = 0;
  for (int round = 0; round < 200; round++) {
    uint32_t n = rng.Uniform(4) + 1;
    std::vector<RingSender::BatchEntry> entries;
    for (uint32_t i = 0; i < n; i++) {
      uint32_t len = rng.Uniform(100) + 1;
      std::vector<uint8_t> payload(len);
      for (auto& b : payload) {
        b = static_cast<uint8_t>(rng.Next());
      }
      if (!tx.Reserve(len)) {
        break;  // ring momentarily full: flush what we have
      }
      sent_crc = HashCombine(sent_crc, Fnv1a(payload.data(), payload.size()));
      sent++;
      entries.push_back({std::move(payload), len});
    }
    ASSERT_FALSE(entries.empty()) << "round " << round;
    auto segs = tx.PrepareBatch(std::move(entries));
    ASSERT_LE(segs.size(), 2u) << "one wrap max per batch";
    (void)fabric.WriteBatch(0, 1, std::move(segs), nullptr, nullptr);
    sim.Run();
    rx.Drain([&](uint64_t seq, std::vector<uint8_t> p) {
      recv_crc = HashCombine(recv_crc, Fnv1a(p.data(), p.size()));
      received++;
      rx.MarkFreeable(seq);
    });
    uint64_t head = rx.head();
    std::memcpy(s0.Data(fb, 8), &head, 8);
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(sent_crc, recv_crc);
}

// ---------------------------------------------------------------------------
// Wire records: SerializedSize() must track Serialize() exactly (log-space
// reservations are computed from it), over randomized record shapes.
// ---------------------------------------------------------------------------

TEST(WireProperty, SerializedSizeMatchesSerialize) {
  Pcg32 rng(71);
  const LogRecordType kTypes[] = {LogRecordType::kLock, LogRecordType::kCommitBackup,
                                  LogRecordType::kCommitPrimary, LogRecordType::kAbort,
                                  LogRecordType::kTruncate};
  for (int iter = 0; iter < 300; iter++) {
    TxLogRecord rec;
    rec.type = kTypes[rng.Uniform(5)];
    rec.tx = TxId{rng.Next() % 7, static_cast<MachineId>(rng.Uniform(32)),
                  static_cast<uint16_t>(rng.Uniform(4)), rng.Next64()};
    uint32_t regions = rng.Uniform(4);
    for (uint32_t i = 0; i < regions; i++) {
      rec.written_regions.push_back(rng.Next() % 16);
    }
    uint32_t writes = rng.Uniform(6);  // may be zero
    for (uint32_t i = 0; i < writes; i++) {
      WireWrite w;
      w.addr = GlobalAddr{rng.Next() % 16, rng.Next() % 4096};
      w.expected_version = rng.Next64();
      w.expected_alloc = rng.Bernoulli(0.5);
      w.set_alloc = rng.Bernoulli(0.25);
      w.value.resize(rng.Uniform(101));  // includes zero-length values
      for (auto& b : w.value) {
        b = static_cast<uint8_t>(rng.Next());
      }
      rec.writes.push_back(std::move(w));
    }
    // Past kMaxPiggyback on purpose: reservation code must saturate, and
    // the size formula must still match for oversize id lists.
    uint32_t truncs = rng.Uniform(13);
    for (uint32_t i = 0; i < truncs; i++) {
      rec.truncate_ids.push_back(TxId{1, static_cast<MachineId>(i), 0, rng.Next64()});
    }

    auto bytes = rec.Serialize();
    ASSERT_EQ(bytes.size(), rec.SerializedSize()) << "iteration " << iter;
    BufReader r(bytes);
    TxLogRecord parsed = TxLogRecord::Parse(r);
    EXPECT_EQ(parsed.tx, rec.tx);
    EXPECT_EQ(parsed.writes.size(), rec.writes.size());
    EXPECT_EQ(parsed.truncate_ids.size(), rec.truncate_ids.size());
  }
}

// ---------------------------------------------------------------------------
// Coordination service: many racers, one winner per version step.
// ---------------------------------------------------------------------------

TEST(ZkProperty, RacingCasAlwaysSingleWinner) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<NvramStore>> stores;
  const int kClients = 6;
  for (MachineId i = 0; i < 3 + kClients; i++) {
    machines.push_back(std::make_unique<Machine>(sim, i, 2, static_cast<int>(i)));
    stores.push_back(std::make_unique<NvramStore>());
    fabric.AddMachine(machines.back().get(), stores.back().get());
  }
  CoordinationService zk(fabric, {0, 1, 2});

  auto wins = std::make_shared<std::vector<int>>(10, 0);
  auto racer = [](CoordinationService* svc, MachineId client, uint64_t round,
                  std::shared_ptr<std::vector<int>> w) -> Task<void> {
    std::vector<uint8_t> blob = {static_cast<uint8_t>(client)};
    auto r = co_await svc->CompareAndSwap(client, round, blob);
    if (r.ok()) {
      (*w)[static_cast<size_t>(round)]++;
    }
  };
  for (uint64_t round = 0; round < 10; round++) {
    for (int c = 0; c < kClients; c++) {
      Spawn(racer(&zk, static_cast<MachineId>(3 + c), round, wins));
    }
    sim.RunFor(20 * kMillisecond);
  }
  for (size_t round = 0; round < 10; round++) {
    EXPECT_EQ((*wins)[round], 1) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds give identical results.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, SameSeedSameOutcome) {
  auto run_once = [](uint64_t seed) {
    auto cluster = MakeStartedCluster(SmallClusterOptions(4, seed));
    RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
    auto work = [](Cluster* c, RegionId r) -> Task<uint64_t> {
      Pcg32 rng(9);
      uint64_t committed = 0;
      for (int i = 0; i < 60; i++) {
        auto tx = c->node(static_cast<MachineId>(i % 4)).Begin(0);
        GlobalAddr addr{r, (rng.Uniform(8)) * 16};
        auto v = co_await tx->Read(addr, 8);
        if (!v.ok()) {
          continue;
        }
        std::vector<uint8_t> b(8, static_cast<uint8_t>(i));
        (void)tx->Write(addr, b);
        if ((co_await tx->Commit()).ok()) {
          committed++;
        }
      }
      co_return committed;
    };
    auto committed = RunTask(*cluster, work(cluster.get(), rid));
    return std::make_pair(*committed, cluster->sim().Now());
  };
  auto a = run_once(42);
  auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  auto c = run_once(43);
  (void)c;  // different seed may differ; just must not crash
}

}  // namespace
}  // namespace farm
