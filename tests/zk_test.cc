// Tests for the coordination (ZooKeeper-substitute) service.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/nvram/nvram.h"
#include "src/zk/coord.h"

namespace farm {
namespace {

class ZkTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 5;
  static constexpr MachineId kClient = 5;
  static constexpr MachineId kClient2 = 6;

  ZkTest() : fabric_(sim_, CostModel{}) {
    for (MachineId i = 0; i < kReplicas + 2; i++) {
      machines_.push_back(std::make_unique<Machine>(sim_, i, 2, static_cast<int>(i)));
      stores_.push_back(std::make_unique<NvramStore>());
      fabric_.AddMachine(machines_.back().get(), stores_.back().get());
    }
    zk_ = std::make_unique<CoordinationService>(fabric_, std::vector<MachineId>{0, 1, 2, 3, 4});
  }

  Simulator sim_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<NvramStore>> stores_;
  std::unique_ptr<CoordinationService> zk_;
};

TEST_F(ZkTest, InitialReadIsEmptyVersionZero) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    auto v = co_await zk_->Read(kClient);
    EXPECT_TRUE(v.ok());
    if (!v.ok()) {
      co_return;
    }
    EXPECT_EQ(v->version, 0u);
    EXPECT_TRUE(v->data.empty());
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, CasThenRead) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> blob = {1, 2, 3};
    auto r = co_await zk_->CompareAndSwap(kClient, 0, blob);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) {
      co_return;
    }
    EXPECT_EQ(*r, 1u);
    auto v = co_await zk_->Read(kClient);
    EXPECT_TRUE(v.ok());
    if (!v.ok()) {
      co_return;
    }
    EXPECT_EQ(v->version, 1u);
    EXPECT_EQ(v->data, blob);
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, StaleCasRejected) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> one = {1};
    std::vector<uint8_t> two = {2};
    auto r1 = co_await zk_->CompareAndSwap(kClient, 0, one);
    EXPECT_TRUE(r1.ok());
    auto r2 = co_await zk_->CompareAndSwap(kClient, 0, two);
    EXPECT_FALSE(r2.ok());
    if (r2.ok()) {
      co_return;
    }
    EXPECT_EQ(r2.status().code(), StatusCode::kFailedPrecondition);
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, ConcurrentCasOnlyOneWins) {
  // Two clients race to move version 0 -> 1: exactly one must win.
  int wins = 0;
  int losses = 0;
  auto racer = [&](MachineId client, uint8_t tag) -> Task<void> {
    std::vector<uint8_t> blob = {tag};
    auto r = co_await zk_->CompareAndSwap(client, 0, blob);
    if (r.ok()) {
      wins++;
    } else {
      losses++;
    }
  };
  Spawn(racer(kClient, 10));
  Spawn(racer(kClient2, 20));
  sim_.Run();
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(losses, 1);
}

TEST_F(ZkTest, SurvivesLeaderFailure) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> one = {1};
    std::vector<uint8_t> two = {2};
    auto r1 = co_await zk_->CompareAndSwap(kClient, 0, one);
    EXPECT_TRUE(r1.ok());
    if (!r1.ok()) {
      co_return;
    }
    machines_[0]->Kill();  // kill the leader replica
    auto v = co_await zk_->Read(kClient);
    EXPECT_TRUE(v.ok());
    if (!v.ok()) {
      co_return;
    }
    EXPECT_EQ(v->version, 1u);
    EXPECT_EQ(v->data, one);
    auto r2 = co_await zk_->CompareAndSwap(kClient, 1, two);
    EXPECT_TRUE(r2.ok());
    if (!r2.ok()) {
      co_return;
    }
    EXPECT_EQ(*r2, 2u);
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, SurvivesTwoReplicaFailures) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    std::vector<uint8_t> blob = {7};
    auto r1 = co_await zk_->CompareAndSwap(kClient, 0, blob);
    EXPECT_TRUE(r1.ok());
    if (!r1.ok()) {
      co_return;
    }
    machines_[0]->Kill();
    machines_[1]->Kill();
    auto v = co_await zk_->Read(kClient);
    EXPECT_TRUE(v.ok());
    if (!v.ok()) {
      co_return;
    }
    EXPECT_EQ(v->version, 1u);
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, NoMajorityNoProgress) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    machines_[0]->Kill();
    machines_[1]->Kill();
    machines_[2]->Kill();  // 3 of 5 dead: no quorum for writes
    std::vector<uint8_t> blob = {1};
    auto r = co_await zk_->CompareAndSwap(kClient, 0, blob);
    EXPECT_FALSE(r.ok());
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ZkTest, MinorityPartitionCannotCommit) {
  bool done = false;
  auto coro = [&]() -> Task<void> {
    // Leader (replica 0) and the client land in the minority partition.
    fabric_.SetPartition({{0, 1, kClient}, {2, 3, 4, kClient2}});
    std::vector<uint8_t> one = {1};
    std::vector<uint8_t> two = {2};
    auto r = co_await zk_->CompareAndSwap(kClient, 0, one);
    EXPECT_FALSE(r.ok());
    // Majority side still makes progress.
    auto r2 = co_await zk_->CompareAndSwap(kClient2, 0, two);
    EXPECT_TRUE(r2.ok());
    done = true;
  };
  Spawn(coro());
  sim_.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace farm
