// Edge-case tests: fabric CAS races, datagram loss statistics, B-tree under
// failure, transactions vs region creation races, TATP key packing, driver
// edge behaviors, and miscellaneous boundary conditions.
#include <gtest/gtest.h>

#include <set>

#include "src/ds/btree.h"
#include "src/workload/driver.h"
#include "src/workload/tatp.h"
#include "tests/test_util.h"

namespace farm {
namespace {

// ---------------------------------------------------------------------------
// Fabric edges
// ---------------------------------------------------------------------------

TEST(FabricEdge, ConcurrentCasExactlyOneWinnerPerRound) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<NvramStore>> stores;
  for (MachineId i = 0; i < 5; i++) {
    machines.push_back(std::make_unique<Machine>(sim, i, 2, static_cast<int>(i)));
    stores.push_back(std::make_unique<NvramStore>());
    fabric.AddMachine(machines.back().get(), stores.back().get());
  }
  uint64_t addr = stores[0]->Allocate(8);

  // Rounds of CAS(expected=round, desired=round+1) from 4 racing machines:
  // exactly one must observe the expected value each round.
  auto winners = std::make_shared<std::vector<int>>(10, 0);
  auto racer = [](Fabric* f, MachineId m, uint64_t a, uint64_t round,
                  std::shared_ptr<std::vector<int>> w) -> Task<void> {
    NetResult r = co_await f->Cas(m, 0, a, round, round + 1);
    if (r.status.ok()) {
      uint64_t observed;
      std::memcpy(&observed, r.data.data(), 8);
      if (observed == round) {
        (*w)[static_cast<size_t>(round)]++;
      }
    }
  };
  for (uint64_t round = 0; round < 10; round++) {
    for (MachineId m = 1; m < 5; m++) {
      Spawn(racer(&fabric, m, addr, round, winners));
    }
    sim.RunFor(kMillisecond);
  }
  for (size_t round = 0; round < 10; round++) {
    EXPECT_EQ((*winners)[round], 1) << "round " << round;
  }
}

TEST(FabricEdge, DatagramLossRateIsRespected) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  Machine m0(sim, 0, 2, 0);
  Machine m1(sim, 1, 2, 1);
  NvramStore s0;
  NvramStore s1;
  fabric.AddMachine(&m0, &s0);
  fabric.AddMachine(&m1, &s1);
  fabric.set_datagram_loss(0.25);

  int delivered = 0;
  fabric.SetDatagramHandler(1, [&](MachineId, std::vector<uint8_t>) { delivered++; });
  const int kSent = 4000;
  for (int i = 0; i < kSent; i++) {
    fabric.SendDatagram(0, 1, {1, 2});
  }
  sim.Run();
  EXPECT_NEAR(delivered, kSent * 3 / 4, kSent / 20);
}

TEST(FabricEdge, PartitionHealingRestoresTraffic) {
  Simulator sim;
  Fabric fabric(sim, CostModel{});
  Machine m0(sim, 0, 2, 0);
  Machine m1(sim, 1, 2, 1);
  NvramStore s0;
  NvramStore s1;
  fabric.AddMachine(&m0, &s0);
  fabric.AddMachine(&m1, &s1);
  uint64_t addr = s1.Allocate(64);

  fabric.SetPartition({{0}, {1}});
  Status first = OkStatus();
  Status second = Status(StatusCode::kInternal, "unset");
  auto probe = [&](Status* out) -> Task<void> {
    NetResult r = co_await fabric.Read(0, 1, addr, 8);
    *out = r.status;
  };
  Spawn(probe(&first));
  sim.Run();
  EXPECT_FALSE(first.ok());

  fabric.ClearPartition();
  Spawn(probe(&second));
  sim.Run();
  EXPECT_TRUE(second.ok());
}

// ---------------------------------------------------------------------------
// B-tree under failure: ordered-index invariants survive a primary kill.
// ---------------------------------------------------------------------------

TEST(BTreeFailure, OrderedIndexSurvivesPrimaryKill) {
  ClusterOptions opts = SmallClusterOptions(5, 43);
  opts.node.region_size = 512 << 10;
  auto cluster = MakeStartedCluster(opts);
  auto created = RunTask(*cluster, [](Cluster* c) -> Task<StatusOr<BTree>> {
                           co_return co_await BTree::Create(c->node(0), BTree::Options{}, 0);
                         }(cluster.get()));
  ASSERT_TRUE(created.has_value() && created->ok());
  BTree bt = created->value();

  auto insert = [](Cluster* c, BTree t, MachineId node, uint64_t key,
                   uint64_t value) -> Task<bool> {
    for (int attempt = 0; attempt < 8; attempt++) {
      if (!c->machine(node).alive()) {
        node = (node + 1) % static_cast<MachineId>(c->num_machines());
        continue;
      }
      auto tx = c->node(node).Begin(0);
      Status s = co_await t.Insert(*tx, key, value);
      if (s.ok() && (co_await tx->Commit()).ok()) {
        co_return true;
      }
      co_await SleepFor(c->sim(), 500 * kMicrosecond);
    }
    co_return false;
  };

  // Insert half the keys, kill the node-region primary, insert the rest.
  std::set<uint64_t> committed;
  for (uint64_t k = 1; k <= 60; k++) {
    auto ok = RunTask(*cluster, insert(cluster.get(), bt, static_cast<MachineId>(k % 5), k * 7,
                                       k),
                      5 * kSecond);
    if (ok.has_value() && *ok) {
      committed.insert(k * 7);
    }
    if (k == 30) {
      const RegionPlacement* p = cluster->node(0).config().Placement(bt.node_region());
      cluster->Kill(p->primary);
    }
  }
  cluster->RunFor(200 * kMillisecond);

  // Scan from a survivor: all committed keys present, in order.
  MachineId reader = 0;
  while (!cluster->machine(reader).alive()) {
    reader++;
  }
  BTree handle = bt.Clone();
  auto scan = RunTask(*cluster, [](Cluster* c, BTree t, MachineId node)
                                    -> Task<StatusOr<std::vector<std::pair<uint64_t, uint64_t>>>> {
                        for (int attempt = 0; attempt < 8; attempt++) {
                          auto tx = c->node(node).Begin(0);
                          auto r = co_await t.Scan(*tx, 0, UINT64_MAX, 1000);
                          if (!r.ok()) {
                            continue;
                          }
                          if ((co_await tx->Commit()).ok()) {
                            co_return *r;
                          }
                        }
                        co_return AbortedStatus("scan kept aborting");
                      }(cluster.get(), handle, reader),
                      10 * kSecond);
  ASSERT_TRUE(scan.has_value() && scan->ok());
  std::set<uint64_t> found;
  uint64_t prev = 0;
  for (const auto& [k, v] : scan->value()) {
    (void)v;
    EXPECT_GT(k, prev);  // strictly ordered
    prev = k;
    found.insert(k);
  }
  for (uint64_t k : committed) {
    EXPECT_TRUE(found.count(k) != 0) << "committed key " << k << " missing after failure";
  }
}

// ---------------------------------------------------------------------------
// Region creation racing with reconfiguration.
// ---------------------------------------------------------------------------

TEST(RegionCreateRace, CreateDuringFailureEitherSucceedsOrFailsCleanly) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(6, 47));
  // Start several region creations, kill a machine mid-stream.
  auto results = std::make_shared<std::vector<Status>>();
  auto done = std::make_shared<int>(0);
  auto create = [](Cluster* c, int i, std::shared_ptr<std::vector<Status>> out,
                   std::shared_ptr<int> fin) -> Task<void> {
    MachineId node = static_cast<MachineId>(i % 3);  // machines 0-2 stay alive
    auto r = co_await c->node(node).CreateRegion(64 << 10, 16, kInvalidRegion, 0);
    out->push_back(r.ok() ? OkStatus() : r.status());
    (*fin)++;
  };
  for (int i = 0; i < 8; i++) {
    Spawn(create(cluster.get(), i, results, done));
  }
  cluster->RunFor(200 * kMicrosecond);
  cluster->Kill(5);
  ASSERT_TRUE(RunUntil(*cluster, [&]() { return *done == 8; }, 10 * kSecond));
  cluster->RunFor(100 * kMillisecond);

  // Whatever succeeded must be usable afterwards.
  int usable = 0;
  for (const auto& [rid, p] : cluster->node(0).config().regions) {
    (void)p;
    auto write = [](Cluster* c, RegionId r) -> Task<Status> {
      auto tx = c->node(0).Begin(0);
      auto v = co_await tx->Read(GlobalAddr{r, 0}, 8);
      if (!v.ok()) {
        co_return v.status();
      }
      std::vector<uint8_t> b(8, 7);
      (void)tx->Write(GlobalAddr{r, 0}, b);
      co_return co_await tx->Commit();
    };
    auto s = RunTask(*cluster, write(cluster.get(), rid), 5 * kSecond);
    if (s.has_value() && s->ok()) {
      usable++;
    }
  }
  EXPECT_GT(usable, 0);
  EXPECT_FALSE(cluster->AnyRegionLost());
}

// ---------------------------------------------------------------------------
// TATP details
// ---------------------------------------------------------------------------

TEST(TatpKeys, CompositeKeysAreInjective) {
  std::set<uint64_t> keys;
  for (uint64_t s = 1; s <= 50; s++) {
    ASSERT_TRUE(keys.insert(TatpDb::SubKey(s)).second);
  }
  for (uint64_t s = 1; s <= 50; s++) {
    for (uint32_t t = 1; t <= 4; t++) {
      ASSERT_TRUE(keys.insert(TatpDb::AiKey(s, t) << 32).second);  // distinct tables
      for (uint32_t st = 0; st < 24; st += 8) {
        ASSERT_TRUE(keys.insert((TatpDb::CfKey(s, t, st) << 8) | 1).second)
            << "s=" << s << " t=" << t << " st=" << st;
      }
    }
  }
  // And none of the keys collide with the hash-table sentinels.
  EXPECT_EQ(keys.count(HashTable::kEmptyKey), 0u);
  EXPECT_EQ(keys.count(HashTable::kTombstoneKey), 0u);
}

TEST(TatpMix, InsertThenDeleteCallForwardingRoundTrips) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 53));
  TatpOptions topts;
  topts.subscribers = 100;
  auto db = RunTask(*cluster, [](Cluster* c, TatpOptions o) -> Task<StatusOr<TatpDb>> {
                      co_return co_await TatpDb::Create(*c, o);
                    }(cluster.get(), topts),
                    60 * kSecond);
  ASSERT_TRUE(db.has_value() && db->ok());
  db->value().RegisterServices(*cluster);

  // Drive inserts and deletes until both have succeeded at least once; the
  // round trip exercises tombstone reuse in the hash table.
  auto run = [](Cluster* c, TatpDb d) -> Task<std::pair<int, int>> {
    Pcg32 rng(77);
    int inserts = 0;
    int deletes = 0;
    for (int i = 0; i < 120 && (inserts == 0 || deletes == 0); i++) {
      if (co_await d.InsertCallForwarding(c->node(1), 0, rng)) {
        inserts++;
      }
      if (co_await d.DeleteCallForwarding(c->node(2), 0, rng)) {
        deletes++;
      }
    }
    co_return std::make_pair(inserts, deletes);
  };
  auto r = RunTask(*cluster, run(cluster.get(), db->value()), 60 * kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->first, 0);
  EXPECT_GT(r->second, 0);
}

// ---------------------------------------------------------------------------
// Driver edges
// ---------------------------------------------------------------------------

TEST(DriverEdge, WorkersOnDeadMachinesExitCleanly) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 59));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);

  auto fn = [rid](Node& node, int thread, Pcg32& rng) -> Task<bool> {
    (void)rng;
    auto tx = node.Begin(thread);
    auto v = co_await tx->Read(GlobalAddr{rid, 0}, 8);
    if (!v.ok()) {
      co_return false;
    }
    co_return (co_await tx->Commit()).ok();
  };
  DriverOptions dopts;
  dopts.threads_per_machine = 2;
  dopts.concurrency_per_thread = 2;
  dopts.warmup = kMillisecond;
  DriverRun run = StartWorkers(*cluster, fn, dopts);
  cluster->RunFor(5 * kMillisecond);
  cluster->Kill(3);
  cluster->RunFor(100 * kMillisecond);
  StopWorkers(*cluster, run);
  // Workers on machine 3 died with it; the rest exit on the stop flag.
  ASSERT_TRUE(RunUntil(*cluster, [&]() { return *run.active_workers <= 4; }, 5 * kSecond));
  EXPECT_GT(run.result->committed, 0u);
}

TEST(DriverEdge, MachineSubsetRestrictsWorkers) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 71));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
  auto seen = std::make_shared<std::set<MachineId>>();
  auto fn = [rid, seen](Node& node, int thread, Pcg32& rng) -> Task<bool> {
    (void)rng;
    seen->insert(node.id());
    auto tx = node.Begin(thread);
    auto v = co_await tx->Read(GlobalAddr{rid, 0}, 8);
    if (!v.ok()) {
      co_return false;
    }
    co_return (co_await tx->Commit()).ok();
  };
  DriverOptions dopts;
  dopts.machines = {1, 2};
  dopts.warmup = kMillisecond;
  dopts.measure = 5 * kMillisecond;
  DriverResult r = RunClosedLoop(*cluster, fn, dopts);
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(seen->count(0), 0u);
  EXPECT_EQ(seen->count(3), 0u);
  EXPECT_GT(seen->count(1) + seen->count(2), 0u);
}

// ---------------------------------------------------------------------------
// Transaction API edges
// ---------------------------------------------------------------------------

TEST(TxEdge, EmptyTransactionCommits) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 73));
  auto run = [](Cluster* c) -> Task<Status> {
    auto tx = c->node(0).Begin(0);
    co_return co_await tx->Commit();
  };
  auto s = RunTask(*cluster, run(cluster.get()));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->ok());
}

TEST(TxEdge, ReadOfUnknownRegionFails) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 79));
  auto run = [](Cluster* c) -> Task<Status> {
    auto tx = c->node(0).Begin(0);
    auto v = co_await tx->Read(GlobalAddr{999, 0}, 8);
    co_return v.ok() ? OkStatus() : v.status();
  };
  auto s = RunTask(*cluster, run(cluster.get()));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->code(), StatusCode::kNotFound);
}

TEST(TxEdge, FreeRequiresPriorRead) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 83));
  RegionId rid = MustCreateRegion(*cluster, 64 << 10, 16);
  auto tx = cluster->node(0).Begin(0);
  EXPECT_EQ(tx->Free(GlobalAddr{rid, 0}).code(), StatusCode::kFailedPrecondition);
}

TEST(TxEdge, WriteAfterFreeRejected) {
  auto cluster = MakeStartedCluster(SmallClusterOptions(4, 89));
  RegionId rid = MustCreateRegion(*cluster, 256 << 10, 0);  // slab-managed
  auto run = [](Cluster* c, RegionId r) -> Task<Status> {
    // Allocate + commit, then read-free-write in a second transaction.
    auto tx1 = c->node(0).Begin(0);
    auto a = co_await tx1->Alloc(r, 32);
    if (!a.ok()) {
      co_return a.status();
    }
    std::vector<uint8_t> d(32, 1);
    (void)tx1->Write(*a, d);
    Status s = co_await tx1->Commit();
    if (!s.ok()) {
      co_return s;
    }
    auto tx2 = c->node(0).Begin(0);
    auto v = co_await tx2->Read(*a, 32);
    if (!v.ok()) {
      co_return v.status();
    }
    s = tx2->Free(*a);
    if (!s.ok()) {
      co_return s;
    }
    co_return tx2->Write(*a, d);  // must be rejected
  };
  auto s = RunTask(*cluster, run(cluster.get(), rid), 5 * kSecond);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace farm
