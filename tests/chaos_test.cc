// Chaos subsystem tests: seeded plan generation, schedule dump/replay,
// the multi-seed sweep, and the oracle's ability to catch a deliberately
// broken commit protocol.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/harness.h"
#include "src/chaos/oracle.h"
#include "src/chaos/plan.h"

namespace farm {
namespace chaos {
namespace {

// ---------------------------------------------------------------------------
// ChaosPlan: generation + text round-trip
// ---------------------------------------------------------------------------

TEST(ChaosPlanTest, GenerationIsDeterministic) {
  PlanOptions opts;
  ChaosPlan a = ChaosPlan::Generate(opts, 42);
  ChaosPlan b = ChaosPlan::Generate(opts, 42);
  EXPECT_EQ(a.ToText(), b.ToText());
  ChaosPlan c = ChaosPlan::Generate(opts, 43);
  EXPECT_NE(a.ToText(), c.ToText()) << "different seeds must differ";
}

TEST(ChaosPlanTest, EventsStayInsideTheHorizon) {
  PlanOptions opts;
  for (uint64_t seed = 1; seed <= 50; seed++) {
    ChaosPlan p = ChaosPlan::Generate(opts, seed);
    EXPECT_FALSE(p.events.empty()) << "seed " << seed;
    for (const ChaosEvent& e : p.events) {
      EXPECT_GE(e.at, opts.start) << "seed " << seed;
      EXPECT_LT(e.at, opts.horizon) << "seed " << seed;
    }
  }
}

TEST(ChaosPlanTest, TextRoundTripIsExact) {
  ChaosPlan p = ChaosPlan::Generate(PlanOptions{}, 1234);
  std::string text = p.ToText();
  ChaosPlan parsed;
  ASSERT_TRUE(ChaosPlan::Parse(text, &parsed));
  EXPECT_EQ(parsed.ToText(), text);
  EXPECT_EQ(parsed.seed, p.seed);
  ASSERT_EQ(parsed.events.size(), p.events.size());
  for (size_t i = 0; i < p.events.size(); i++) {
    EXPECT_EQ(parsed.events[i].at, p.events[i].at);
    EXPECT_EQ(parsed.events[i].kind, p.events[i].kind);
    EXPECT_EQ(parsed.events[i].pick, p.events[i].pick);
    EXPECT_EQ(parsed.events[i].param, p.events[i].param);
  }
}

TEST(ChaosPlanTest, ParseRejectsGarbage) {
  ChaosPlan p;
  EXPECT_FALSE(ChaosPlan::Parse("", &p));
  EXPECT_FALSE(ChaosPlan::Parse("not a plan\n", &p));
  EXPECT_FALSE(ChaosPlan::Parse("farm-chaos-plan v1\nevent 10 no-such-kind 0 0\n", &p));
}

TEST(ChaosPlanTest, KindNamesRoundTrip) {
  for (int k = 1; k <= 14; k++) {
    EventKind kind = static_cast<EventKind>(k);
    EventKind back;
    ASSERT_TRUE(EventKindFromName(EventKindName(kind), &back)) << k;
    EXPECT_EQ(back, kind);
  }
  EventKind unused;
  EXPECT_FALSE(EventKindFromName("bogus", &unused));
}

// ---------------------------------------------------------------------------
// Harness: sweep, replay, mutation catch
// ---------------------------------------------------------------------------

TEST(ChaosHarnessTest, MultiSeedSweepHoldsInvariants) {
  for (uint64_t seed = 1; seed <= 20; seed++) {
    ChaosRunOptions opts;
    opts.seed = seed;
    ChaosRunResult res = RunChaos(opts);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.failure;
    EXPECT_GT(res.commits, 1000u) << "seed " << seed;
  }
}

TEST(ChaosHarnessTest, BatchedSweepHoldsInvariants) {
  // The same seeds with data-plane batching on: kills land mid-quantum so
  // pending batches are discarded, faults fire inside batch flushes, and a
  // killed sender's partial batch reaches the ring as a torn suffix. The
  // BankOracle and liveness watchdog must hold regardless.
  for (uint64_t seed = 1; seed <= 12; seed++) {
    ChaosRunOptions opts;
    opts.seed = seed;
    opts.batch_data_plane = true;
    ChaosRunResult res = RunChaos(opts);
    EXPECT_TRUE(res.ok) << "batched seed " << seed << ": " << res.failure;
    EXPECT_GT(res.commits, 1000u) << "batched seed " << seed;
  }
}

TEST(ChaosHarnessTest, BatchedDumpedPlanReplaysByteIdentically) {
  ChaosRunOptions opts;
  opts.seed = 8;
  opts.batch_data_plane = true;
  ChaosRunResult first = RunChaos(opts);
  ASSERT_TRUE(first.ok) << first.failure;
  std::string dumped = first.plan.ToText();
  ChaosPlan parsed;
  ASSERT_TRUE(ChaosPlan::Parse(dumped, &parsed));
  ChaosRunResult replay = RunChaosPlan(opts, parsed);
  EXPECT_EQ(replay.commits, first.commits);
  EXPECT_EQ(replay.event_log, first.event_log);
}

TEST(ChaosHarnessTest, DumpedPlanReplaysByteIdentically) {
  ChaosRunOptions opts;
  opts.seed = 8;  // a seed whose plan has several faults
  ChaosRunResult first = RunChaos(opts);
  ASSERT_TRUE(first.ok) << first.failure;

  // Dump -> parse -> replay must reproduce the run exactly: same commits,
  // same resolved event log, same outcome.
  std::string dumped = first.plan.ToText();
  ChaosPlan parsed;
  ASSERT_TRUE(ChaosPlan::Parse(dumped, &parsed));
  ChaosRunResult replay = RunChaosPlan(opts, parsed);
  EXPECT_EQ(replay.ok, first.ok);
  EXPECT_EQ(replay.commits, first.commits);
  EXPECT_EQ(replay.unknown_outcomes, first.unknown_outcomes);
  EXPECT_EQ(replay.last_commit, first.last_commit);
  EXPECT_EQ(replay.event_log, first.event_log);
  EXPECT_EQ(replay.plan.ToText(), dumped);
}

TEST(ChaosHarnessTest, BrokenCommitProtocolIsCaught) {
  // Skipping the wait for backup hardware acks is the paper's canonical
  // serializability bug: a commit can be reported while a partitioned backup
  // is missing the record, and a later primary failure surfaces the stale
  // replica. Seed 9's schedule (partition + kill) exposes it.
  ChaosRunOptions opts;
  opts.seed = 9;
  opts.mutate_skip_backup_ack = true;
  ChaosRunResult res = RunChaos(opts);
  EXPECT_FALSE(res.ok) << "mutated protocol must violate the oracle";
  EXPECT_NE(res.failure.find("claim"), std::string::npos) << res.failure;

  // The same schedule under the correct protocol is clean.
  opts.mutate_skip_backup_ack = false;
  ChaosRunResult clean = RunChaos(opts);
  EXPECT_TRUE(clean.ok) << clean.failure;
}

// ---------------------------------------------------------------------------
// Oracle unit tests (synthetic histories, no cluster)
// ---------------------------------------------------------------------------

TransferOp MakeOp(uint64_t uid, OpOutcome outcome, SimTime begin, SimTime end,
                  std::vector<AccountAccess> accesses) {
  TransferOp op;
  op.uid = uid;
  op.tx = TxId{1, static_cast<MachineId>(uid % 4), 0, uid};
  op.outcome = outcome;
  op.begin = begin;
  op.end = end;
  op.accesses = std::move(accesses);
  return op;
}

TEST(BankOracleTest, AcceptsACleanHistory) {
  BankOracle oracle(2, 0);
  // a -> b for 5, then b -> a for 3.
  oracle.Record(MakeOp(1, OpOutcome::kCommitted, 10, 20,
                       {{0, 0, 0, -5}, {1, 0, 0, 5}}));
  oracle.Record(MakeOp(2, OpOutcome::kCommitted, 30, 40,
                       {{0, 1, -5, -2}, {1, 1, 5, 2}}));
  std::string failure;
  EXPECT_TRUE(oracle.Check({{2, -2}, {2, 2}}, &failure)) << failure;
}

TEST(BankOracleTest, RejectsDuplicateTxId) {
  BankOracle oracle(2, 0);
  TransferOp a = MakeOp(1, OpOutcome::kCommitted, 10, 20, {{0, 0, 0, -5}, {1, 0, 0, 5}});
  TransferOp b = MakeOp(2, OpOutcome::kCommitted, 30, 40, {{0, 1, -5, -2}, {1, 1, 5, 2}});
  b.tx = a.tx;
  oracle.Record(a);
  oracle.Record(b);
  std::string failure;
  EXPECT_FALSE(oracle.Check({{2, -2}, {2, 2}}, &failure));
  EXPECT_NE(failure.find("duplicate commit"), std::string::npos) << failure;
}

TEST(BankOracleTest, RejectsConservationViolation) {
  BankOracle oracle(2, 0);
  oracle.Record(MakeOp(1, OpOutcome::kCommitted, 10, 20,
                       {{0, 0, 0, -5}, {1, 0, 0, 5}}));
  std::string failure;
  // Account 1 ends with 6: money was created.
  EXPECT_FALSE(oracle.Check({{1, -5}, {1, 6}}, &failure));
  EXPECT_NE(failure.find("conservation"), std::string::npos) << failure;
}

TEST(BankOracleTest, RejectsLostCommittedWrite) {
  BankOracle oracle(2, 0);
  oracle.Record(MakeOp(1, OpOutcome::kCommitted, 10, 20,
                       {{0, 0, 0, -5}, {1, 0, 0, 5}}));
  std::string failure;
  // Final state never saw the committed write (seq still 0 on both).
  EXPECT_FALSE(oracle.Check({{0, 0}, {0, 0}}, &failure));
  EXPECT_NE(failure.find("lost committed write"), std::string::npos) << failure;
}

TEST(BankOracleTest, RejectsDoubleWrite) {
  BankOracle oracle(2, 0);
  // Both ops read seq 0 on account 0 and both claim slot 1.
  oracle.Record(MakeOp(1, OpOutcome::kCommitted, 10, 20,
                       {{0, 0, 0, -5}, {1, 0, 0, 5}}));
  oracle.Record(MakeOp(2, OpOutcome::kCommitted, 30, 40,
                       {{0, 0, 0, -3}, {1, 1, 5, 8}}));
  std::string failure;
  // Final balances conserve (sum 0) so the chain check is what fires.
  EXPECT_FALSE(oracle.Check({{1, -5}, {2, 5}}, &failure));
  EXPECT_NE(failure.find("both claim"), std::string::npos) << failure;
}

TEST(BankOracleTest, UnknownOutcomeMayFillGaps) {
  BankOracle oracle(2, 0);
  // The unknown op read seq 0 and would have written -7/7; the final state
  // shows its effects, so recovery must have committed it.
  oracle.Record(MakeOp(1, OpOutcome::kUnknown, 10, kSimTimeNever,
                       {{0, 0, 0, -7}, {1, 0, 0, 7}}));
  std::string failure;
  EXPECT_TRUE(oracle.Check({{1, -7}, {1, 7}}, &failure)) << failure;
  // ...and a final state without its effects is equally explainable
  // (recovery aborted it).
  BankOracle oracle2(2, 0);
  oracle2.Record(MakeOp(1, OpOutcome::kUnknown, 10, kSimTimeNever,
                        {{0, 0, 0, -7}, {1, 0, 0, 7}}));
  EXPECT_TRUE(oracle2.Check({{0, 0}, {0, 0}}, &failure)) << failure;
}

TEST(BankOracleTest, RejectsRealTimeOrderViolation) {
  BankOracle oracle(2, 0);
  // Op 1 commits (end=20) strictly before op 2 even begins (30), yet the
  // chains put op 2's writes in the EARLIER slots: real-time edge 1 -> 2
  // plus chain edges 2 -> 1 form a cycle. Conservation and the per-account
  // chains are individually fine.
  oracle.Record(MakeOp(1, OpOutcome::kCommitted, 10, 20,
                       {{0, 1, -4, -6}, {1, 1, 4, 6}}));
  oracle.Record(MakeOp(2, OpOutcome::kCommitted, 30, 40,
                       {{0, 0, 0, -4}, {1, 0, 0, 4}}));
  std::string failure;
  EXPECT_FALSE(oracle.Check({{2, -6}, {2, 6}}, &failure));
}

}  // namespace
}  // namespace chaos
}  // namespace farm
