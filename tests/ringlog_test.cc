// Tests for ring-buffer logs, the messenger, the slab allocator, and wire
// serialization.
#include <gtest/gtest.h>

#include "src/core/alloc.h"
#include "src/core/msgr.h"
#include "src/core/region.h"
#include "src/core/ringlog.h"
#include "src/core/wire.h"
#include "src/nvram/nvram.h"

namespace farm {
namespace {

TEST(WireTest, TxLogRecordRoundTrip) {
  TxLogRecord rec;
  rec.type = LogRecordType::kLock;
  rec.tx = TxId{3, 7, 2, 99};
  rec.written_regions = {1, 5};
  WireWrite w1;
  w1.addr = GlobalAddr{1, 128};
  w1.expected_version = 42;
  w1.expected_alloc = true;
  w1.value = {9, 8, 7};
  rec.writes.push_back(w1);
  WireWrite w2;
  w2.addr = GlobalAddr{5, 64};
  w2.set_alloc = true;
  w2.value = {1};
  rec.writes.push_back(w2);
  rec.truncate_ids.push_back(TxId{2, 3, 1, 50});

  auto bytes = rec.Serialize();
  EXPECT_EQ(bytes.size(), rec.SerializedSize());
  BufReader r(bytes);
  TxLogRecord parsed = TxLogRecord::Parse(r);
  EXPECT_EQ(parsed.type, LogRecordType::kLock);
  EXPECT_EQ(parsed.tx, rec.tx);
  EXPECT_EQ(parsed.written_regions, rec.written_regions);
  ASSERT_EQ(parsed.writes.size(), 2u);
  EXPECT_EQ(parsed.writes[0].addr, w1.addr);
  EXPECT_EQ(parsed.writes[0].expected_version, 42u);
  EXPECT_TRUE(parsed.writes[0].expected_alloc);
  EXPECT_EQ(parsed.writes[0].value, w1.value);
  EXPECT_TRUE(parsed.writes[1].set_alloc);
  ASSERT_EQ(parsed.truncate_ids.size(), 1u);
  EXPECT_EQ(parsed.truncate_ids[0], rec.truncate_ids[0]);
}

TEST(WireTest, ExpectedWordMatchesVersionWord) {
  WireWrite w;
  w.expected_version = 77;
  w.expected_alloc = true;
  EXPECT_EQ(w.ExpectedWord(), VersionWord::Pack(77, true, false));
  w.expected_alloc = false;
  EXPECT_EQ(w.ExpectedWord(), VersionWord::Pack(77, false, false));
}

TEST(VersionWordTest, PackUnpack) {
  uint64_t w = VersionWord::Pack(123456, true, true);
  EXPECT_TRUE(VersionWord::IsLocked(w));
  EXPECT_TRUE(VersionWord::IsAllocated(w));
  EXPECT_EQ(VersionWord::Version(w), 123456u);
  EXPECT_FALSE(VersionWord::IsLocked(VersionWord::WithoutLock(w)));
}

class RingTest : public ::testing::Test {
 protected:
  RingTest() : fabric_(sim_, CostModel{}) {
    for (MachineId i = 0; i < 2; i++) {
      machines_.push_back(std::make_unique<Machine>(sim_, i, 2, static_cast<int>(i)));
      stores_.push_back(std::make_unique<NvramStore>());
      fabric_.AddMachine(machines_.back().get(), stores_.back().get());
    }
  }

  Simulator sim_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<NvramStore>> stores_;
};

TEST_F(RingTest, AppendDrainTruncate) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  int pokes = 0;
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr,
                [&]() { pokes++; });

  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(tx.Reserve(5));
  (void)tx.Append(payload, 5, nullptr);
  sim_.Run();
  EXPECT_EQ(pokes, 1);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> got;
  rx.Drain([&](uint64_t seq, std::vector<uint8_t> p) { got.push_back({seq, std::move(p)}); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, payload);
  EXPECT_EQ(rx.head(), 0u);
  rx.MarkFreeable(got[0].first);
  EXPECT_GT(rx.head(), 0u);
}

TEST_F(RingTest, WrapAround) {
  const uint32_t kCap = 256;
  RingReceiver rx(stores_[1].get(), kCap);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), kCap, fb, stores_[0].get(), nullptr, []() {});

  // Send enough records to wrap several times, freeing as we go.
  int received = 0;
  for (int i = 0; i < 40; i++) {
    std::vector<uint8_t> payload(20, static_cast<uint8_t>(i));
    ASSERT_TRUE(tx.Reserve(20)) << "iteration " << i;
    (void)tx.Append(payload, 20, nullptr);
    sim_.Run();
    rx.Drain([&](uint64_t seq, std::vector<uint8_t> p) {
      EXPECT_EQ(p.size(), 20u);
      EXPECT_EQ(p[0], static_cast<uint8_t>(received));
      received++;
      rx.MarkFreeable(seq);
    });
    // Propagate head feedback manually (normally the messenger does this).
    uint64_t head = rx.head();
    std::memcpy(stores_[0]->Data(fb, 8), &head, 8);
  }
  EXPECT_EQ(received, 40);
}

TEST_F(RingTest, ReservationBlocksWhenFull) {
  const uint32_t kCap = 256;
  RingReceiver rx(stores_[1].get(), kCap);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), kCap, fb, stores_[0].get(), nullptr, []() {});

  int granted = 0;
  while (tx.Reserve(24)) {
    granted++;
    if (granted > 100) {
      break;
    }
  }
  // 24-byte payload => 32 framed => 64 with slack; 256/64 = 4 reservations.
  EXPECT_EQ(granted, 4);
}

TEST_F(RingTest, TruncateOutOfOrderStillFreesPrefix) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr, []() {});

  for (int i = 0; i < 3; i++) {
    std::vector<uint8_t> p(16, static_cast<uint8_t>(i));
    ASSERT_TRUE(tx.Reserve(16));
    (void)tx.Append(p, 16, nullptr);
  }
  sim_.Run();
  std::vector<uint64_t> seqs;
  rx.Drain([&](uint64_t seq, std::vector<uint8_t>) { seqs.push_back(seq); });
  ASSERT_EQ(seqs.size(), 3u);
  // Free the middle record: the head must not move (record 0 not freeable).
  rx.MarkFreeable(seqs[1]);
  EXPECT_EQ(rx.head(), 0u);
  rx.MarkFreeable(seqs[0]);
  // Now records 0 and 1 free together.
  EXPECT_EQ(rx.head(), 2 * 24u);
}

TEST_F(RingTest, RebuildFromNvramReparsesUntruncated) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr, []() {});
  for (int i = 0; i < 3; i++) {
    std::vector<uint8_t> p(16, static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(tx.Reserve(16));
    (void)tx.Append(p, 16, nullptr);
  }
  sim_.Run();
  std::vector<uint64_t> seqs;
  rx.Drain([&](uint64_t seq, std::vector<uint8_t>) { seqs.push_back(seq); });
  rx.MarkFreeable(seqs[0]);  // truncate the first record only

  rx.RebuildFromNvram();  // power failure: volatile state lost
  std::vector<std::vector<uint8_t>> again;
  rx.Drain([&](uint64_t, std::vector<uint8_t> p) { again.push_back(std::move(p)); });
  ASSERT_EQ(again.size(), 2u);  // the truncated record does not reappear
  EXPECT_EQ(again[0][0], 2);
  EXPECT_EQ(again[1][0], 3);
}

TEST(NvramTornWriteTest, ArmedTearKeepsOnlyPrefix) {
  NvramStore store;
  uint64_t addr = store.Allocate(16);
  uint8_t before[8] = {0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA};
  ASSERT_TRUE(store.RdmaWrite(addr, before, 8));

  uint8_t next[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  store.ArmTornWrite(3);
  EXPECT_TRUE(store.torn_armed());
  // The torn write still reports success; NVRAM cannot know it is short.
  ASSERT_TRUE(store.RdmaWrite(addr, next, 8));
  EXPECT_FALSE(store.torn_armed());
  EXPECT_EQ(store.torn_writes(), 1u);
  const uint8_t* got = store.Data(addr, 8);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 3);
  for (int i = 3; i < 8; i++) {
    EXPECT_EQ(got[i], 0xAA) << "byte " << i << " past the tear changed";
  }
  // One-shot: the next write lands whole.
  ASSERT_TRUE(store.RdmaWrite(addr, next, 8));
  EXPECT_EQ(store.Data(addr, 8)[7], 8);
  EXPECT_EQ(store.torn_writes(), 1u);
}

TEST_F(RingTest, TornAppendDetectedAndDrainStopsCleanly) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr, []() {});

  std::vector<uint8_t> good(16, 0x5A);
  ASSERT_TRUE(tx.Reserve(16));
  (void)tx.Append(good, 16, nullptr);
  sim_.Run();
  int surfaced = rx.Drain([&](uint64_t, std::vector<uint8_t> p) { EXPECT_EQ(p, good); });
  EXPECT_EQ(surfaced, 1);
  EXPECT_EQ(rx.torn_frames(), 0u);

  // Tear the next append mid-frame: only the header reaches NVRAM, so the
  // checksum cannot match the (absent) payload.
  std::vector<uint8_t> torn(16, 0x77);
  ASSERT_TRUE(tx.Reserve(16));
  stores_[1]->ArmTornWrite(kFrameHeaderBytes);
  (void)tx.Append(torn, 16, nullptr);
  sim_.Run();

  surfaced = rx.Drain([&](uint64_t, std::vector<uint8_t>) { FAIL() << "torn record surfaced"; });
  EXPECT_EQ(surfaced, 0);
  EXPECT_EQ(rx.torn_frames(), 1u);
  // Re-polling the same tear does not recount it.
  rx.Drain([&](uint64_t, std::vector<uint8_t>) {});
  EXPECT_EQ(rx.torn_frames(), 1u);
}

TEST_F(RingTest, RebuildFromNvramStopsAtTear) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr, []() {});

  std::vector<uint8_t> first(16, 0x11);
  ASSERT_TRUE(tx.Reserve(16));
  (void)tx.Append(first, 16, nullptr);
  sim_.Run();
  std::vector<uint8_t> second(16, 0x22);
  ASSERT_TRUE(tx.Reserve(16));
  stores_[1]->ArmTornWrite(kFrameHeaderBytes + 4);  // header + part of payload
  (void)tx.Append(second, 16, nullptr);
  sim_.Run();

  // Power failure before the receiver ever polled: recovery re-parses from
  // the persisted head, surfaces the intact record, and stops at the tear.
  rx.RebuildFromNvram();
  std::vector<std::vector<uint8_t>> got;
  rx.Drain([&](uint64_t, std::vector<uint8_t> p) { got.push_back(std::move(p)); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], first);
  EXPECT_EQ(rx.torn_frames(), 1u);
}

TEST_F(RingTest, MessengerLogRoundTrip) {
  Messenger::Options opts;
  opts.txlog_capacity = 64 << 10;
  opts.msgq_capacity = 32 << 10;
  opts.worker_threads = 2;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);

  std::vector<TxLogRecord> received;
  std::vector<std::pair<MsgType, std::vector<uint8_t>>> messages;
  b.SetHandlers(
      [&](MachineId from, uint64_t seq, const TxLogRecord& rec) {
        EXPECT_EQ(from, 0u);
        (void)seq;
        received.push_back(rec);
      },
      [&](MachineId, MsgType t, std::vector<uint8_t> p) { messages.push_back({t, std::move(p)}); });

  TxLogRecord rec;
  rec.type = LogRecordType::kLock;
  rec.tx = TxId{1, 0, 0, 1};
  rec.written_regions = {0};
  uint32_t len = static_cast<uint32_t>(rec.SerializedSize());
  ASSERT_TRUE(a.ReserveLog(1, len));
  bool acked = false;
  a.AppendLog(1, rec, len, 0).OnReady([&](NetResult& r) {
    EXPECT_TRUE(r.status.ok());
    acked = true;
  });
  a.SendMessage(1, MsgType::kLockReply, {0xaa}, 0);
  sim_.Run();

  EXPECT_TRUE(acked);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].tx, rec.tx);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].first, MsgType::kLockReply);
  EXPECT_EQ(messages[0].second, (std::vector<uint8_t>{0xaa}));

  // The record is stored until truncated.
  int stored = 0;
  b.ForEachStoredLog([&](MachineId, uint64_t, const TxLogRecord&) { stored++; });
  EXPECT_EQ(stored, 1);
}

TEST_F(RingTest, MessengerSelfRings) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger::Connect(a, a);

  int got = 0;
  a.SetHandlers([&](MachineId, uint64_t, const TxLogRecord&) {},
                [&](MachineId from, MsgType, std::vector<uint8_t>) {
                  EXPECT_EQ(from, 0u);
                  got++;
                });
  a.SendMessage(0, MsgType::kLockReply, {1}, 0);
  sim_.Run();
  EXPECT_EQ(got, 1);
}

TEST(WireTest, BatchEnvelopeRoundTrip) {
  std::vector<std::vector<uint8_t>> subs = {{1, 2, 3}, {}, {0xFF}, std::vector<uint8_t>(300, 7)};
  auto body = EncodeBatchBody(subs);
  BufReader r(body);
  auto back = DecodeBatchBody(r);
  ASSERT_EQ(back.size(), subs.size());
  for (size_t i = 0; i < subs.size(); i++) {
    EXPECT_EQ(back[i], subs[i]) << "sub-message " << i;
  }
}

TEST(WireTest, PiggybackSlackSaturates) {
  EXPECT_EQ(PiggybackSlack(8, 0), 8 * kTxIdWireBytes);
  EXPECT_EQ(PiggybackSlack(8, 8), 0u);
  // Regression: more ids than slots must not wrap to a huge reservation.
  EXPECT_EQ(PiggybackSlack(8, 9), 0u);
  EXPECT_EQ(PiggybackSlack(8, 1000), 0u);
}

TEST_F(RingTest, PrepareBatchMatchesSequentialAppends) {
  RingReceiver rx(stores_[1].get(), 4096);
  uint64_t fb = stores_[0]->Allocate(8);
  int pokes = 0;
  RingSender tx(&fabric_, 0, 1, rx.data_base(), 4096, fb, stores_[0].get(), nullptr,
                [&]() { pokes++; });

  std::vector<RingSender::BatchEntry> entries;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(tx.Reserve(20));
    entries.push_back({std::vector<uint8_t>(20, static_cast<uint8_t>(i + 1)), 20});
  }
  auto segs = tx.PrepareBatch(std::move(entries));
  // Consecutive frames fold into one contiguous segment.
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].addr, rx.data_base());
  EXPECT_EQ(segs[0].data.size(), 3 * FramedLen(20));
  EXPECT_EQ(tx.reserved(), 0u);

  (void)fabric_.WriteBatch(0, 1, std::move(segs), nullptr, [&]() { pokes++; });
  sim_.Run();
  EXPECT_EQ(pokes, 1);
  std::vector<std::vector<uint8_t>> got;
  rx.Drain([&](uint64_t, std::vector<uint8_t> p) { got.push_back(std::move(p)); });
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(got[static_cast<size_t>(i)][0], static_cast<uint8_t>(i + 1));
  }
}

TEST_F(RingTest, PrepareBatchWrapsWithMarker) {
  const uint32_t kCap = 256;
  RingReceiver rx(stores_[1].get(), kCap);
  uint64_t fb = stores_[0]->Allocate(8);
  RingSender tx(&fabric_, 0, 1, rx.data_base(), kCap, fb, stores_[0].get(), nullptr, []() {});

  // Advance the tail to 240 (5 x 48-byte frames), freeing as we go.
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(tx.Reserve(40));
    (void)tx.Append(std::vector<uint8_t>(40, 0x11), 40, nullptr);
    sim_.Run();
    rx.Drain([&](uint64_t seq, std::vector<uint8_t>) { rx.MarkFreeable(seq); });
    uint64_t head = rx.head();
    std::memcpy(stores_[0]->Data(fb, 8), &head, 8);
  }

  // The next 48-byte frame does not fit in the 16 bytes before the ring
  // end: the batch emits a wrap marker there and restarts at offset 0,
  // producing two segments.
  ASSERT_TRUE(tx.Reserve(40));
  std::vector<RingSender::BatchEntry> entries;
  entries.push_back({std::vector<uint8_t>(40, 0x22), 40});
  auto segs = tx.PrepareBatch(std::move(entries));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].addr, rx.data_base() + 240);
  EXPECT_EQ(segs[0].data.size(), 4u);  // just the wrap marker
  EXPECT_EQ(segs[1].addr, rx.data_base());
  EXPECT_EQ(segs[1].data.size(), FramedLen(40));

  (void)fabric_.WriteBatch(0, 1, std::move(segs), nullptr, nullptr);
  sim_.Run();
  std::vector<std::vector<uint8_t>> got;
  rx.Drain([&](uint64_t, std::vector<uint8_t> p) { got.push_back(std::move(p)); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], std::vector<uint8_t>(40, 0x22));
}

TEST_F(RingTest, MessengerBatchedCoalescesLogsAndMessages) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  opts.batch = true;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);

  std::vector<TxLogRecord> received;
  std::vector<std::vector<uint8_t>> messages;
  b.SetHandlers(
      [&](MachineId, uint64_t, const TxLogRecord& rec) { received.push_back(rec); },
      [&](MachineId, MsgType t, std::vector<uint8_t> p) {
        EXPECT_EQ(t, MsgType::kLockReply);
        messages.push_back(std::move(p));
      });

  TxLogRecord rec;
  rec.type = LogRecordType::kLock;
  rec.tx = TxId{1, 0, 0, 1};
  rec.written_regions = {0};
  uint32_t len = static_cast<uint32_t>(rec.SerializedSize());
  int acks = 0;
  for (int i = 0; i < 2; i++) {
    rec.tx.local = static_cast<uint64_t>(i + 1);
    ASSERT_TRUE(a.ReserveLog(1, len));
    a.AppendLog(1, rec, len, 0).OnReady([&](NetResult& r) {
      EXPECT_TRUE(r.status.ok());
      acks++;
    });
  }
  a.SendMessage(1, MsgType::kLockReply, {0x01}, 0);
  a.SendMessage(1, MsgType::kLockReply, {0x02}, 0);
  sim_.Run();

  // Everything was delivered, and both log acks fanned out from the single
  // wire completion.
  EXPECT_EQ(acks, 2);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].tx.local, 1u);
  EXPECT_EQ(received[1].tx.local, 2u);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], (std::vector<uint8_t>{0x01}));
  EXPECT_EQ(messages[1], (std::vector<uint8_t>{0x02}));

  // One flush, one doorbell for all four sends.
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_flushes), 1u);
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_records), 2u);
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_msgs), 2u);
  EXPECT_EQ(static_cast<uint64_t>(fabric_.stats().doorbells), 1u);
}

TEST_F(RingTest, MessengerBatchedSelfRingsStayImmediate) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  opts.batch = true;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger::Connect(a, a);

  int got = 0;
  a.SetHandlers([&](MachineId, uint64_t, const TxLogRecord&) {},
                [&](MachineId, MsgType, std::vector<uint8_t>) { got++; });
  a.SendMessage(0, MsgType::kLockReply, {1}, 0);
  sim_.Run();
  EXPECT_EQ(got, 1);
  // The local fast path never batches.
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_flushes), 0u);
}

TEST_F(RingTest, MessengerRpcRidesBatchedRings) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  opts.batch = true;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);
  a.SetHandlers(nullptr, nullptr);
  b.SetHandlers(nullptr, nullptr);

  fabric_.RegisterRpcService(1, 7, 0, 1,
                             [](MachineId, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
                               req.push_back(0xEE);  // echo with a marker
                               reply(std::move(req));
                             });

  NetResult got;
  bool done = false;
  a.Call(1, 7, {1, 2, 3}, 0).OnReady([&](NetResult& r) {
    got = r;
    done = true;
  });
  sim_.Run();

  ASSERT_TRUE(done);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.data, (std::vector<uint8_t>{1, 2, 3, 0xEE}));
  // The exchange used the message rings, not the fabric RPC transport.
  EXPECT_EQ(static_cast<uint64_t>(fabric_.stats().rpcs), 0u);
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_rpcs), 1u);
  EXPECT_GE(static_cast<uint64_t>(a.stats().batch_flushes), 1u);
}

TEST_F(RingTest, MessengerRpcUnknownServiceFailsFast) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  opts.batch = true;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);
  a.SetHandlers(nullptr, nullptr);
  b.SetHandlers(nullptr, nullptr);

  NetResult got;
  bool done = false;
  SimTime done_at = 0;
  a.Call(1, 99, {0}, 0).OnReady([&](NetResult& r) {
    got = r;
    done = true;
    done_at = sim_.Now();
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status.code(), StatusCode::kNotFound);
  // The error reply came back well before the 4ms default timeout.
  EXPECT_LT(done_at, kMillisecond);
}

TEST_F(RingTest, MessengerRpcTimesOutOnDeadPeer) {
  Messenger::Options opts;
  opts.worker_threads = 2;
  opts.batch = true;
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);
  a.SetHandlers(nullptr, nullptr);
  b.SetHandlers(nullptr, nullptr);

  fabric_.RegisterRpcService(1, 7, 0, 1,
                             [](MachineId, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
                               reply(std::move(req));
                             });
  machines_[1]->Kill();

  NetResult got;
  bool done = false;
  a.Call(1, 7, {1}, 0, 2 * kMillisecond).OnReady([&](NetResult& r) {
    got = r;
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status.code(), StatusCode::kTimedOut);
}

TEST_F(RingTest, MessengerRpcUnbatchedDelegatesToFabric) {
  Messenger::Options opts;
  opts.worker_threads = 2;  // batch stays false: default config
  Messenger a(fabric_, *machines_[0], *stores_[0], opts);
  Messenger b(fabric_, *machines_[1], *stores_[1], opts);
  Messenger::Connect(a, b);
  a.SetHandlers(nullptr, nullptr);
  b.SetHandlers(nullptr, nullptr);

  fabric_.RegisterRpcService(1, 7, 0, 1,
                             [](MachineId, std::vector<uint8_t> req, Fabric::ReplyFn reply) {
                               reply(std::move(req));
                             });

  NetResult got;
  bool done = false;
  a.Call(1, 7, {9}, 0).OnReady([&](NetResult& r) {
    got = r;
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.data, (std::vector<uint8_t>{9}));
  // Verbatim fabric RPC: counted by the fabric, no batching state touched.
  EXPECT_EQ(static_cast<uint64_t>(fabric_.stats().rpcs), 1u);
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_rpcs), 0u);
  EXPECT_EQ(static_cast<uint64_t>(a.stats().batch_flushes), 0u);
}

TEST(AllocatorTest, ReserveFormatsBlocksAndReturnsSlots) {
  NvramStore store;
  RegionReplica region(0, 64 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);

  auto s1 = alloc.Reserve(40);  // class 64
  ASSERT_TRUE(s1.ok());
  auto s2 = alloc.Reserve(40);
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1->addr, s2->addr);
  auto headers = alloc.TakePendingBlockHeaders();
  ASSERT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers[0].slot_payload, 64u);
  EXPECT_EQ(alloc.PayloadSizeAt(s1->addr.offset), 64u);
}

TEST(AllocatorTest, ReleaseReturnsSlot) {
  NvramStore store;
  RegionReplica region(0, 64 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);
  auto s = alloc.Reserve(16);
  ASSERT_TRUE(s.ok());
  size_t before = alloc.FreeSlots();
  alloc.Release(s->addr);
  EXPECT_EQ(alloc.FreeSlots(), before + 1);
}

TEST(AllocatorTest, DistinctSizeClassesUseDistinctBlocks) {
  NvramStore store;
  RegionReplica region(0, 64 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);
  auto a = alloc.Reserve(16);
  auto b = alloc.Reserve(1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->addr.offset / (16 << 10), b->addr.offset / (16 << 10));
  EXPECT_EQ(alloc.PayloadSizeAt(b->addr.offset), 1024u);
}

TEST(AllocatorTest, RegionFull) {
  NvramStore store;
  RegionReplica region(0, 32 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);
  // Two blocks of 16 KB, slots of 8192+8 bytes: one slot per block.
  int got = 0;
  for (int i = 0; i < 10; i++) {
    auto s = alloc.Reserve(8192);
    if (!s.ok()) {
      EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    got++;
  }
  EXPECT_EQ(got, 2);
}

TEST(AllocatorTest, ObjectTooLargeRejected) {
  NvramStore store;
  RegionReplica region(0, 64 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);
  auto s = alloc.Reserve(100000);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(AllocatorTest, FreeListRecoveryRebuildsFromAllocBits) {
  NvramStore store;
  RegionReplica region(0, 64 << 10, 0, &store);
  RegionAllocator alloc(&region, 16 << 10);

  // Allocate three slots; mark two as committed-allocated in the headers.
  auto s1 = alloc.Reserve(64);
  auto s2 = alloc.Reserve(64);
  auto s3 = alloc.Reserve(64);
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  region.WriteHeader(s1->addr.offset, VersionWord::Pack(1, true, false));
  region.WriteHeader(s2->addr.offset, VersionWord::Pack(1, true, false));
  // s3 was reserved but never committed: header still unallocated.

  alloc.StartFreeListRecovery();
  EXPECT_TRUE(alloc.recovering());
  // During recovery, frees are queued.
  alloc.OnFreeCommitted(s1->addr);
  while (alloc.RecoveryScanStep(64) > 0) {
  }
  EXPECT_FALSE(alloc.recovering());

  // All non-allocated slots are back (including s3), plus the queued free.
  size_t slots_per_block = (16 << 10) / (64 + 8);
  EXPECT_EQ(alloc.FreeSlots(), slots_per_block - 2 + 1);
}

}  // namespace
}  // namespace farm
