// Unit tests for the discrete-event simulator, CPU model, and coroutines.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace farm {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(30, [&]() { order.push_back(3); });
  sim.After(10, [&]() { order.push_back(1); });
  sim.After(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(100, [&, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.After(50, [&]() { fired++; });
  sim.After(150, [&]() { fired++; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  SimTime second_fire = 0;
  sim.After(10, [&]() { sim.After(10, [&]() { second_fire = sim.Now(); }); });
  sim.Run();
  EXPECT_EQ(second_fire, 20u);
}

TEST(HwThreadTest, SerializesWork) {
  Simulator sim;
  Machine m(sim, 0, 2, 0);
  std::vector<SimTime> completions;
  m.thread(0).Run(100, [&]() { completions.push_back(sim.Now()); });
  m.thread(0).Run(100, [&]() { completions.push_back(sim.Now()); });
  // Different thread runs in parallel.
  m.thread(1).Run(100, [&]() { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 100u);  // thread 0 first item
  EXPECT_EQ(completions[1], 100u);  // thread 1 item, concurrent
  EXPECT_EQ(completions[2], 200u);  // thread 0 second item, queued
}

TEST(HwThreadTest, BacklogReflectsQueueing) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  m.thread(0).Run(1000, []() {});
  EXPECT_EQ(m.thread(0).Backlog(), 1000u);
  sim.Run();
  EXPECT_EQ(m.thread(0).Backlog(), 0u);
}

TEST(HwThreadTest, KilledMachineDropsWork) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  bool ran = false;
  m.thread(0).Run(100, [&]() { ran = true; });
  m.Kill();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(HwThreadTest, RebootDropsPreRebootWork) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  bool old_ran = false;
  bool new_ran = false;
  m.thread(0).Run(100, [&]() { old_ran = true; });
  m.Kill();
  m.Reboot();
  m.thread(0).Run(100, [&]() { new_ran = true; });
  sim.Run();
  EXPECT_FALSE(old_ran);  // scheduled under the old epoch
  EXPECT_TRUE(new_ran);
}

TEST(TaskTest, BasicCoroutineCompletes) {
  Simulator sim;
  int result = 0;
  auto coro = [&]() -> Task<void> {
    co_await SleepFor(sim, 100);
    result = 7;
  };
  Spawn(coro());
  EXPECT_EQ(result, 0);
  sim.Run();
  EXPECT_EQ(result, 7);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(TaskTest, NestedTasksReturnValues) {
  Simulator sim;
  int result = 0;
  auto inner = [&](int x) -> Task<int> {
    co_await SleepFor(sim, 10);
    co_return x * 2;
  };
  auto outer = [&]() -> Task<void> {
    int a = co_await inner(21);
    result = a;
  };
  Spawn(outer());
  sim.Run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, FutureSetBeforeAwait) {
  Simulator sim;
  Future<int> f;
  f.Set(5);
  int got = 0;
  auto coro = [&]() -> Task<void> { got = co_await f; };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(got, 5);
}

TEST(TaskTest, FutureSetAfterAwait) {
  Simulator sim;
  Future<int> f;
  int got = 0;
  auto coro = [&]() -> Task<void> { got = co_await f; };
  Spawn(coro());
  sim.After(100, [&]() { f.Set(9); });
  sim.Run();
  EXPECT_EQ(got, 9);
}

TEST(TaskTest, WaitGroupGathersAll) {
  Simulator sim;
  WaitGroup wg;
  int done_at = -1;
  for (int i = 1; i <= 3; i++) {
    wg.Add();
    sim.After(static_cast<SimDuration>(i * 100), [wg]() { wg.Done(); });
  }
  auto coro = [&]() -> Task<void> {
    co_await wg.Wait();
    done_at = static_cast<int>(sim.Now());
  };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(done_at, 300);
}

TEST(TaskTest, WaitGroupAlreadyZero) {
  Simulator sim;
  WaitGroup wg;
  bool done = false;
  auto coro = [&]() -> Task<void> {
    co_await wg.Wait();
    done = true;
  };
  Spawn(coro());
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(TaskTest, AwaitWithTimeoutValueWins) {
  Simulator sim;
  Future<int> f;
  std::optional<int> got;
  auto coro = [&]() -> Task<void> { got = co_await AwaitWithTimeout(sim, f, 1000); };
  Spawn(coro());
  sim.After(100, [&]() { f.Set(3); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3);
}

TEST(TaskTest, AwaitWithTimeoutTimerWins) {
  Simulator sim;
  Future<int> f;
  std::optional<int> got = 1;
  bool finished = false;
  auto coro = [&]() -> Task<void> {
    got = co_await AwaitWithTimeout(sim, f, 1000);
    finished = true;
  };
  Spawn(coro());
  sim.After(5000, [&]() {
    if (!f.Ready()) {
      f.Set(3);  // late value must be dropped
    }
  });
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(got.has_value());
}

TEST(TaskTest, ExecuteChargesCpu) {
  Simulator sim;
  Machine m(sim, 0, 1, 0);
  SimTime end = 0;
  auto coro = [&]() -> Task<void> {
    co_await m.thread(0).Execute(250);
    co_await m.thread(0).Execute(250);
    end = sim.Now();
  };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(end, 500u);
  EXPECT_EQ(m.thread(0).total_busy(), 500u);
}

// NOTE: a coroutine lambda's captures live in the lambda *object*, not the
// coroutine frame. A capturing lambda must therefore outlive its coroutine.
// For loop-spawned coroutines, pass state as parameters instead.
Task<void> SleepAndCount(Simulator& sim, int delay, int& counter) {
  co_await SleepFor(sim, static_cast<SimDuration>(delay));
  counter++;
}

TEST(TaskTest, ManyConcurrentCoroutines) {
  Simulator sim;
  int completed = 0;
  for (int i = 0; i < 1000; i++) {
    Spawn(SleepAndCount(sim, i % 17 + 1, completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 1000);
}

}  // namespace
}  // namespace farm
